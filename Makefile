GO ?= go

.PHONY: build vet test race chaos ci bench-skew

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full suite under the race detector (the resilience layer is
# concurrency-heavy: fanout, async half-open probes, injector state).
race:
	$(GO) test -race ./...

# Fault-injection suite, repeated to shake out timing flakes in the
# breaker/flap recovery paths.
chaos:
	$(GO) test -race -count=5 -run 'TestChaos' .

ci: build vet race chaos

# Skewed-workload benchmark: fixed-r vs adaptive hot-key replication
# (internal/hotspot) across a Zipf-exponent sweep, machine-readable
# output in BENCH_hotspot.json.
bench-skew:
	$(GO) run ./cmd/rnbsim -json BENCH_hotspot.json hotspot
