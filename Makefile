GO ?= go

.PHONY: build vet lint lint-annotate lint-regress fix-check test race chaos chaos-resize stress-binary bench-alloc obs-smoke trace-smoke smoke-placement ci bench-skew bench-pool bench-topology bench-placement bench-trace

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Repo-specific static analysis (internal/lint via cmd/rnblint):
# interprocedural lock-order cycles, publish-freeze enforcement,
# blocked-forever goroutines, lock discipline, atomic-only fields,
# seeded RNGs, metric-name hygiene, %w wrapping, t.Helper(). Suppress
# a finding with //rnblint:ignore <analyzer> <reason> — the reason is
# mandatory, and a directive that stops matching anything is itself an
# error. The whole-repo run carries a wall-clock budget: the suite is
# meant to run on every push, and an analysis that creeps past
# $(LINT_BUDGET_SECS)s stops being one people run.
LINT_BUDGET_SECS ?= 120
lint:
	@start=$$(date +%s); \
	$(GO) run ./cmd/rnblint ./... || exit $$?; \
	elapsed=$$(( $$(date +%s) - start )); \
	echo "rnblint: clean in $${elapsed}s (budget $(LINT_BUDGET_SECS)s)"; \
	if [ $$elapsed -gt $(LINT_BUDGET_SECS) ]; then \
		echo "rnblint: exceeded the $(LINT_BUDGET_SECS)s budget — profile the analyzers before adding more"; \
		exit 1; \
	fi

# CI variant of lint: same run, but findings are re-emitted as GitHub
# Actions ::error annotations so they land inline on the PR diff.
lint-annotate:
	./scripts/lint_annotate.sh

# Regression lint: the distilled reproductions of bugs this repo
# actually shipped (dial-slot cond misuse, SetBase published-snapshot
# mutation) must keep tripping their analyzers forever.
lint-regress:
	$(GO) test -count=1 -run 'TestHistoricalRegressions' -v ./internal/lint

# Fail if any file is not gofmt-formatted (fixtures included).
fix-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

test:
	$(GO) test ./...

# Full suite under the race detector (the resilience layer is
# concurrency-heavy: fanout, async half-open probes, injector state).
race:
	$(GO) test -race ./...

# Fault-injection suite, repeated to shake out timing flakes in the
# breaker/flap recovery paths.
chaos:
	$(GO) test -race -count=5 -run 'TestChaos' .

# Live-elasticity suite under the race detector: the seeded resize
# storm (membership churn + crashes under load, zero failed idempotent
# reads, leakcheck) plus the rest of the topology e2e scenarios.
chaos-resize:
	$(GO) test -race -count=3 -run 'TestResize|TestRejoin|TestSetServers' .

# Binary-transport stress under the race detector: 64 goroutines on a
# binary-pooled client (quiet-get pipelining) plus the kill-mid-pipeline
# chaos drill, both ending in a goroutine leakcheck.
stress-binary:
	$(GO) test -race -count=2 -run 'TestBinaryPooledClient' .

# Allocation-budget regression gates (testing.AllocsPerRun) on the
# transport and planner hot paths: text/binary encode+decode, the
# end-to-end pooled multiget, and core's Plan build. Run without -race —
# the race runtime's shadow allocations distort the counts, so the
# gates are build-tagged !race.
bench-alloc:
	$(GO) test -count=1 -run 'TestAllocBudget' -v ./internal/memcache ./internal/core

# Observability smoke: boot rnbmemd backends + rnbproxy -debug-addr,
# drive traffic, and assert /metrics serves the promised families and
# /debug/requests dumps flight-recorder spans.
obs-smoke:
	./scripts/obs_smoke.sh

# Distributed-tracing smoke: boot a traced rnbmemd + rnbproxy -trace,
# drive a multiget through the chain, and assert the trace propagated
# (memd_traced_transactions > 0), /debug/trace/<id> serves Chrome
# trace-event JSON, and the -trace-dump file is written on shutdown.
trace-smoke:
	./scripts/trace_smoke.sh

# Placement smoke: a small-parameter run of the placement experiment
# (CBC vs random vs adaptive under adversarial traffic) plus the
# property tests behind it — the construction's <= t guarantee, the
# balanced-assignment solver, and the adversarial generator.
smoke-placement:
	$(GO) run ./cmd/rnbbench -requests 400 -warmup 400 -scale 40 placement
	$(GO) test -run 'CBC|Balanced|Adversarial' ./internal/cbc ./internal/core ./internal/workload

ci: build vet lint fix-check race chaos chaos-resize stress-binary bench-alloc obs-smoke trace-smoke smoke-placement
	# Transport smoke: a tiny pooled-vs-single sweep proving the pool
	# mode still runs end to end (full sweep lives in bench-pool).
	$(GO) run ./cmd/rnbbench -ops 60 pool

# Skewed-workload benchmark: fixed-r vs adaptive hot-key replication
# (internal/hotspot) across a Zipf-exponent sweep, machine-readable
# output in BENCH_hotspot.json.
bench-skew:
	$(GO) run ./cmd/rnbsim -json BENCH_hotspot.json hotspot

# Transport benchmark: single-connection vs pooled/pipelined transport
# across a load-generator concurrency sweep, machine-readable output in
# BENCH_pool.json.
bench-pool:
	$(GO) run ./cmd/rnbbench -json BENCH_pool.json pool

# Placement benchmark: per-request bottleneck (keys at the busiest
# server) for random replication vs adaptive boosting vs the
# Combinatorial Batch Code placement, under Zipf and adversarial
# traffic — machine-readable output in BENCH_placement.json.
bench-placement:
	$(GO) run ./cmd/rnbbench -json BENCH_placement.json placement

# Trace-attribution benchmark: end-to-end distributed tracing as a
# measuring instrument. Zipf-skewed multigets against traced in-process
# servers; per-server queue/parse/exec/flush attribution aggregated
# from the returned server timings — hot-server queue-wait
# concentration at r=1, relief from bundling and balanced planning at
# r=3 — machine-readable output in BENCH_trace.json.
bench-trace:
	$(GO) run ./cmd/rnbbench -servers 8 -skew 1.5 -ops 3000 -json BENCH_trace.json trace

# Resize benchmark: ring continuum vs jump consistent hash on a live
# resize — key-movement fraction (add/remove) and post-resize load
# skew — machine-readable output in BENCH_topology.json.
bench-topology:
	$(GO) run ./cmd/rnbsim -json BENCH_topology.json topology
