GO ?= go

.PHONY: build vet test race chaos ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full suite under the race detector (the resilience layer is
# concurrency-heavy: fanout, async half-open probes, injector state).
race:
	$(GO) test -race ./...

# Fault-injection suite, repeated to shake out timing flakes in the
# breaker/flap recovery paths.
chaos:
	$(GO) test -race -count=5 -run 'TestChaos' .

ci: build vet race chaos
