package rnb

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"rnb/internal/leakcheck"
	"rnb/internal/memcache"
)

// TestAdaptiveEndToEnd drives a real client against in-process servers
// with adaptive replication on: a hot key must be promoted from the
// request stream alone, reads must keep returning the right value
// through the promotion (boosted replicas start cold and fill via
// round 2 + write-back), and an update after promotion must never
// serve the old value afterwards (the invalidation set covers boosted
// copies).
func TestAdaptiveEndToEnd(t *testing.T) {
	leakcheck.Check(t)
	cl, _ := newTestClient(t, 8,
		WithReplicas(2),
		WithAdaptiveReplication(AdaptiveConfig{
			MaxBoost:    2,
			PromoteFrac: 0.05,
			EpochOps:    150,
		}),
	)
	if !cl.AdaptiveEnabled() {
		t.Fatal("AdaptiveEnabled() = false with WithAdaptiveReplication on")
	}

	const hot = "celebrity:0:profile"
	if err := cl.Set(&Item{Key: hot, Value: []byte("v1")}); err != nil {
		t.Fatal(err)
	}
	batch := make([]string, 0, 9)
	for i := 0; i < 200; i++ {
		if err := cl.Set(&Item{Key: fmt.Sprintf("cold:%04d", i), Value: []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	// Skewed traffic: the hot key rides in every multi-get.
	for round := 0; cl.HotKeyCount() == 0 && round < 40; round++ {
		batch = batch[:0]
		batch = append(batch, hot)
		for i := 0; i < 8; i++ {
			batch = append(batch, fmt.Sprintf("cold:%04d", (round*8+i)%200))
		}
		items, _, err := cl.GetMulti(batch)
		if err != nil {
			t.Fatal(err)
		}
		if got := items[hot]; got == nil || !bytes.Equal(got.Value, []byte("v1")) {
			t.Fatalf("round %d: hot key wrong mid-promotion: %v", round, got)
		}
	}
	if cl.HotKeyCount() == 0 {
		t.Fatalf("hot key never promoted: %v", cl.Hotspot().Snapshot())
	}
	if cl.Hotspot().Promotions.Load() == 0 {
		t.Fatalf("promotion counter not exported: %v", cl.Hotspot().Snapshot())
	}

	// Update while boosted: every future read, bundled or single, must
	// see v2 — stale boosted copies would surface here.
	if err := cl.Update(&Item{Key: hot, Value: []byte("v2")}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		it, err := cl.Get(hot)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(it.Value, []byte("v2")) {
			t.Fatalf("read %d after update: got %q, want v2", i, it.Value)
		}
		items, _, err := cl.GetMulti([]string{hot, fmt.Sprintf("cold:%04d", i)})
		if err != nil {
			t.Fatal(err)
		}
		if got := items[hot]; got == nil || !bytes.Equal(got.Value, []byte("v2")) {
			t.Fatalf("bundled read %d after update: got %v, want v2", i, got)
		}
	}

	// Delete while (possibly still) boosted: gone everywhere.
	if err := cl.Delete(hot); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get(hot); err != ErrCacheMiss {
		t.Fatalf("get after delete: %v, want miss", err)
	}
}

// TestSetClearsMaxBoostSet pins down the demote → Set → re-promote
// staleness hazard: a boosted copy materialized by write-back can
// outlive a demotion in a server LRU, and because the boost walk is
// deterministic the same server rejoins the replica set when the key
// re-heats. A Set issued while the key is cold must therefore clear
// the whole max-boost set, not just the current replicas — otherwise
// the lingering copy shadows the new value after re-promotion.
func TestSetClearsMaxBoostSet(t *testing.T) {
	leakcheck.Check(t)
	cl, servers := newTestClient(t, 8,
		WithReplicas(2),
		WithAdaptiveReplication(AdaptiveConfig{
			MaxBoost:    2,
			PromoteFrac: 0.05,
			EpochOps:    150,
		}),
	)

	const hot = "celebrity:9:profile"
	current := cl.replicaServers(hot)
	maxSet := cl.invalidationServers(cl.cur.Load(), hot)
	if len(maxSet) <= len(current) {
		t.Fatalf("max-boost set %v does not extend the current set %v", maxSet, current)
	}

	// Plant stale copies on every boosted-walk server, simulating
	// copies materialized during an earlier promotion that survived
	// demotion.
	for _, s := range maxSet {
		if containsServer(current, s) {
			continue
		}
		err := servers[s].Store().Set(&memcache.Item{Key: hot, Value: []byte("v0-stale")})
		if err != nil {
			t.Fatal(err)
		}
	}

	if err := cl.Set(&Item{Key: hot, Value: []byte("v1")}); err != nil {
		t.Fatal(err)
	}
	for _, s := range maxSet {
		if containsServer(current, s) {
			continue
		}
		if _, err := servers[s].Store().Peek(hot); !errors.Is(err, memcache.ErrCacheMiss) {
			t.Fatalf("server %d still holds a copy after Set (err=%v); it would resurface stale on re-promotion", s, err)
		}
	}

	// End-to-end: heat the key until it is promoted and confirm every
	// read — single and bundled — sees the Set value.
	for i := 0; i < 200; i++ {
		if err := cl.Set(&Item{Key: fmt.Sprintf("cold:%04d", i), Value: []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	batch := make([]string, 0, 9)
	for round := 0; cl.adaptive.Boost(keyID(hot)) == 0 && round < 40; round++ {
		batch = batch[:0]
		batch = append(batch, hot)
		for i := 0; i < 8; i++ {
			batch = append(batch, fmt.Sprintf("cold:%04d", (round*8+i)%200))
		}
		if _, _, err := cl.GetMulti(batch); err != nil {
			t.Fatal(err)
		}
	}
	if cl.adaptive.Boost(keyID(hot)) == 0 {
		t.Fatalf("hot key never promoted: %v", cl.Hotspot().Snapshot())
	}
	for i := 0; i < 30; i++ {
		it, err := cl.Get(hot)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(it.Value, []byte("v1")) {
			t.Fatalf("read %d after re-promotion: got %q, want v1", i, it.Value)
		}
		items, _, err := cl.GetMulti([]string{hot, fmt.Sprintf("cold:%04d", i)})
		if err != nil {
			t.Fatal(err)
		}
		if got := items[hot]; got == nil || !bytes.Equal(got.Value, []byte("v1")) {
			t.Fatalf("bundled read %d after re-promotion: got %v, want v1", i, got)
		}
	}
}
