package rnb

import (
	"bytes"
	"fmt"
	"testing"
)

// TestAdaptiveEndToEnd drives a real client against in-process servers
// with adaptive replication on: a hot key must be promoted from the
// request stream alone, reads must keep returning the right value
// through the promotion (boosted replicas start cold and fill via
// round 2 + write-back), and an update after promotion must never
// serve the old value afterwards (the invalidation set covers boosted
// copies).
func TestAdaptiveEndToEnd(t *testing.T) {
	cl, _ := newTestClient(t, 8,
		WithReplicas(2),
		WithAdaptiveReplication(AdaptiveConfig{
			MaxBoost:    2,
			PromoteFrac: 0.05,
			EpochOps:    150,
		}),
	)
	if !cl.AdaptiveEnabled() {
		t.Fatal("AdaptiveEnabled() = false with WithAdaptiveReplication on")
	}

	const hot = "celebrity:0:profile"
	if err := cl.Set(&Item{Key: hot, Value: []byte("v1")}); err != nil {
		t.Fatal(err)
	}
	batch := make([]string, 0, 9)
	for i := 0; i < 200; i++ {
		if err := cl.Set(&Item{Key: fmt.Sprintf("cold:%04d", i), Value: []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	// Skewed traffic: the hot key rides in every multi-get.
	for round := 0; cl.HotKeyCount() == 0 && round < 40; round++ {
		batch = batch[:0]
		batch = append(batch, hot)
		for i := 0; i < 8; i++ {
			batch = append(batch, fmt.Sprintf("cold:%04d", (round*8+i)%200))
		}
		items, _, err := cl.GetMulti(batch)
		if err != nil {
			t.Fatal(err)
		}
		if got := items[hot]; got == nil || !bytes.Equal(got.Value, []byte("v1")) {
			t.Fatalf("round %d: hot key wrong mid-promotion: %v", round, got)
		}
	}
	if cl.HotKeyCount() == 0 {
		t.Fatalf("hot key never promoted: %v", cl.Hotspot().Snapshot())
	}
	if cl.Hotspot().Promotions.Load() == 0 {
		t.Fatalf("promotion counter not exported: %v", cl.Hotspot().Snapshot())
	}

	// Update while boosted: every future read, bundled or single, must
	// see v2 — stale boosted copies would surface here.
	if err := cl.Update(&Item{Key: hot, Value: []byte("v2")}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		it, err := cl.Get(hot)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(it.Value, []byte("v2")) {
			t.Fatalf("read %d after update: got %q, want v2", i, it.Value)
		}
		items, _, err := cl.GetMulti([]string{hot, fmt.Sprintf("cold:%04d", i)})
		if err != nil {
			t.Fatal(err)
		}
		if got := items[hot]; got == nil || !bytes.Equal(got.Value, []byte("v2")) {
			t.Fatalf("bundled read %d after update: got %v, want v2", i, got)
		}
	}

	// Delete while (possibly still) boosted: gone everywhere.
	if err := cl.Delete(hot); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get(hot); err != ErrCacheMiss {
		t.Fatalf("get after delete: %v, want miss", err)
	}
}
