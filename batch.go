package rnb

import (
	"errors"
	"sync"
	"time"
)

// Batcher merges concurrent GetMulti calls into single planned fetches
// — cross-request bundling (paper §III-E). Real-world memcached proxies
// (moxi, spymemcached) do the same to cut transactions; under RnB the
// merged request is re-planned as a whole, so items from unrelated
// requests that happen to share replicas bundle too.
//
// A batch flushes when MaxBatch requests are pending or MaxDelay has
// elapsed since the first pending request, whichever comes first.
// Merging trades a little latency for fewer transactions; the paper
// also notes (and fig. 9 shows) that merging unrelated requests can
// dilute request locality, so measure before enabling it everywhere.
type Batcher struct {
	client   *Client
	maxBatch int
	maxDelay time.Duration

	mu      sync.Mutex
	pending []*batchCall
	timer   *time.Timer
	closed  bool
}

type batchCall struct {
	keys []string
	done chan batchResult
}

type batchResult struct {
	items map[string]*Item
	stats Stats
	err   error
}

// ErrBatcherClosed is returned by GetMulti after Close.
var ErrBatcherClosed = errors.New("rnb: batcher closed")

// NewBatcher wraps the client in a cross-request batcher. maxBatch < 1
// is treated as 1 (no count-based batching); maxDelay <= 0 flushes
// every request immediately (useful only for tests).
func (c *Client) NewBatcher(maxBatch int, maxDelay time.Duration) *Batcher {
	if maxBatch < 1 {
		maxBatch = 1
	}
	return &Batcher{client: c, maxBatch: maxBatch, maxDelay: maxDelay}
}

// GetMulti enqueues the keys and blocks until the batch containing them
// is flushed, returning this call's slice of the merged result. The
// reported Stats are those of the whole merged fetch (shared by every
// call in the batch).
func (b *Batcher) GetMulti(keys []string) (map[string]*Item, Stats, error) {
	call := &batchCall{keys: keys, done: make(chan batchResult, 1)}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, Stats{}, ErrBatcherClosed
	}
	b.pending = append(b.pending, call)
	switch {
	case len(b.pending) >= b.maxBatch || b.maxDelay <= 0:
		b.flushLocked()
	case b.timer == nil:
		b.timer = time.AfterFunc(b.maxDelay, func() {
			b.mu.Lock()
			defer b.mu.Unlock()
			b.flushLocked()
		})
	}
	b.mu.Unlock()
	res := <-call.done
	return res.items, res.stats, res.err
}

// Flush forces any pending batch out immediately.
func (b *Batcher) Flush() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.flushLocked()
}

// Close flushes pending work and rejects future calls.
func (b *Batcher) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.flushLocked()
	b.closed = true
}

// flushLocked takes the pending calls and executes them as one merged
// fetch. Called with b.mu held; the fetch itself runs without the lock
// on a separate goroutine so new calls can queue meanwhile.
func (b *Batcher) flushLocked() {
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	calls := b.pending
	b.pending = nil
	if len(calls) == 0 {
		return
	}
	go runBatch(b.client, calls)
}

func runBatch(client *Client, calls []*batchCall) {
	// Merge with deduplication; remember which calls want each key.
	var merged []string
	seen := make(map[string]bool)
	for _, call := range calls {
		for _, k := range call.keys {
			if !seen[k] {
				seen[k] = true
				merged = append(merged, k)
			}
		}
	}
	items, stats, err := client.GetMulti(merged)
	for _, call := range calls {
		if err != nil {
			call.done <- batchResult{err: err}
			continue
		}
		mine := make(map[string]*Item, len(call.keys))
		for _, k := range call.keys {
			if it, ok := items[k]; ok {
				mine[k] = it
			}
		}
		call.done <- batchResult{items: mine, stats: stats}
	}
}
