package rnb

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestBatcherMergesConcurrentRequests(t *testing.T) {
	cl, _ := newTestClient(t, 8, WithReplicas(3))
	ks := keys(40)
	for _, k := range ks {
		if err := cl.Set(&Item{Key: k, Value: []byte("v")}); err != nil {
			t.Fatal(err)
		}
	}
	before := cl.Transactions()
	b := cl.NewBatcher(4, 100*time.Millisecond)
	defer b.Close()

	var wg sync.WaitGroup
	results := make([]map[string]*Item, 4)
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Each caller wants a 10-key slice of the 40.
			results[i], _, errs[i] = b.GetMulti(ks[i*10 : (i+1)*10])
		}(i)
	}
	wg.Wait()
	for i := 0; i < 4; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if len(results[i]) != 10 {
			t.Fatalf("caller %d got %d items", i, len(results[i]))
		}
		for _, k := range ks[i*10 : (i+1)*10] {
			if results[i][k] == nil {
				t.Fatalf("caller %d missing key %s", i, k)
			}
		}
		// No leakage of other callers' keys.
		for k := range results[i] {
			found := false
			for _, own := range ks[i*10 : (i+1)*10] {
				if k == own {
					found = true
				}
			}
			if !found {
				t.Fatalf("caller %d got foreign key %s", i, k)
			}
		}
	}
	// The merged fetch should use far fewer transactions than 4 separate
	// fetches would: it runs as ONE plan.
	used := cl.Transactions() - before
	if used > 8 {
		t.Fatalf("merged batch used %d transactions", used)
	}
}

func TestBatcherOverlappingKeys(t *testing.T) {
	cl, _ := newTestClient(t, 4, WithReplicas(2))
	ks := keys(10)
	for _, k := range ks {
		_ = cl.Set(&Item{Key: k, Value: []byte("v")})
	}
	b := cl.NewBatcher(2, time.Second)
	defer b.Close()
	var wg sync.WaitGroup
	var r1, r2 map[string]*Item
	wg.Add(2)
	go func() { defer wg.Done(); r1, _, _ = b.GetMulti(ks[:6]) }()
	go func() { defer wg.Done(); r2, _, _ = b.GetMulti(ks[4:]) }()
	wg.Wait()
	if len(r1) != 6 || len(r2) != 6 {
		t.Fatalf("overlap handling: %d and %d items", len(r1), len(r2))
	}
	// The shared keys must appear in both results.
	for _, k := range ks[4:6] {
		if r1[k] == nil || r2[k] == nil {
			t.Fatalf("shared key %s missing from a caller", k)
		}
	}
}

func TestBatcherDelayFlush(t *testing.T) {
	cl, _ := newTestClient(t, 4)
	_ = cl.Set(&Item{Key: "k", Value: []byte("v")})
	b := cl.NewBatcher(100, 20*time.Millisecond) // count will not trigger
	defer b.Close()
	start := time.Now()
	items, _, err := b.GetMulti([]string{"k"})
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 {
		t.Fatalf("items: %v", items)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("flushed after %v, before the delay window", elapsed)
	}
}

func TestBatcherImmediateWhenNoDelay(t *testing.T) {
	cl, _ := newTestClient(t, 4)
	_ = cl.Set(&Item{Key: "k", Value: []byte("v")})
	b := cl.NewBatcher(100, 0)
	defer b.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, _, err := b.GetMulti([]string{"k"}); err != nil {
			t.Error(err)
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("zero-delay batcher did not flush immediately")
	}
}

func TestBatcherFlushAndClose(t *testing.T) {
	cl, _ := newTestClient(t, 4)
	_ = cl.Set(&Item{Key: "k", Value: []byte("v")})
	b := cl.NewBatcher(100, time.Hour) // nothing flushes on its own
	done := make(chan error, 1)
	go func() {
		_, _, err := b.GetMulti([]string{"k"})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	b.Flush()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Flush did not release the caller")
	}
	b.Close()
	if _, _, err := b.GetMulti([]string{"k"}); !errors.Is(err, ErrBatcherClosed) {
		t.Fatalf("closed batcher: %v", err)
	}
}

func TestGetMultiBudget(t *testing.T) {
	cl, _ := newTestClient(t, 8, WithReplicas(2))
	ks := keys(40)
	for _, k := range ks {
		if err := cl.Set(&Item{Key: k, Value: []byte("v")}); err != nil {
			t.Fatal(err)
		}
	}
	for _, budget := range []int{1, 2, 3} {
		items, stats, err := cl.GetMultiBudget(ks, budget)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Transactions > budget {
			t.Fatalf("budget %d exceeded: %d transactions", budget, stats.Transactions)
		}
		if len(items) == 0 {
			t.Fatalf("budget %d fetched nothing", budget)
		}
	}
	// Larger budgets fetch at least as much.
	a, _, _ := cl.GetMultiBudget(ks, 1)
	b, _, _ := cl.GetMultiBudget(ks, 4)
	if len(b) < len(a) {
		t.Fatalf("budget 4 fetched fewer items (%d) than budget 1 (%d)", len(b), len(a))
	}
	// Degenerate budgets.
	empty, stats, err := cl.GetMultiBudget(ks, 0)
	if err != nil || len(empty) != 0 || stats.Transactions != 0 {
		t.Fatalf("zero budget: %v %+v %v", empty, stats, err)
	}
}

func TestLoaderFetchesTrueMisses(t *testing.T) {
	var loaderCalls int
	var loadedKeys []string
	loader := func(keys []string) (map[string][]byte, error) {
		loaderCalls++
		loadedKeys = append(loadedKeys, keys...)
		out := map[string][]byte{}
		for _, k := range keys {
			if k != "nonexistent" {
				out[k] = []byte("db:" + k)
			}
		}
		return out, nil
	}
	cl, _ := newTestClient(t, 4, WithReplicas(2), WithLoader(loader))
	_ = cl.Set(&Item{Key: "cached", Value: []byte("mem")})

	items, stats, err := cl.GetMulti([]string{"cached", "db-only", "nonexistent"})
	if err != nil {
		t.Fatal(err)
	}
	if string(items["cached"].Value) != "mem" {
		t.Fatal("cached value wrong")
	}
	if string(items["db-only"].Value) != "db:db-only" {
		t.Fatalf("loader value wrong: %v", items["db-only"])
	}
	if items["nonexistent"] != nil {
		t.Fatal("nonexistent key materialized")
	}
	if loaderCalls != 1 {
		t.Fatalf("loader called %d times, want 1", loaderCalls)
	}
	if stats.Loaded != 1 {
		t.Fatalf("stats.Loaded = %d", stats.Loaded)
	}

	// The loaded key is now cached: a second fetch needs no loader.
	loaderCalls = 0
	items, stats, err = cl.GetMulti([]string{"db-only"})
	if err != nil || loaderCalls != 0 || stats.Loaded != 0 {
		t.Fatalf("loaded key not cached: calls=%d stats=%+v err=%v", loaderCalls, stats, err)
	}
	if string(items["db-only"].Value) != "db:db-only" {
		t.Fatal("cached loaded value wrong")
	}
}

func TestLoaderErrorPropagates(t *testing.T) {
	boom := errors.New("db down")
	cl, _ := newTestClient(t, 2, WithLoader(func([]string) (map[string][]byte, error) {
		return nil, boom
	}))
	if _, _, err := cl.GetMulti([]string{"missing"}); !errors.Is(err, boom) {
		t.Fatalf("loader error lost: %v", err)
	}
}

func TestBatcherManyWaves(t *testing.T) {
	cl, _ := newTestClient(t, 4, WithReplicas(2))
	for i := 0; i < 20; i++ {
		_ = cl.Set(&Item{Key: fmt.Sprintf("w%02d", i), Value: []byte("v")})
	}
	b := cl.NewBatcher(3, 5*time.Millisecond)
	defer b.Close()
	for wave := 0; wave < 5; wave++ {
		var wg sync.WaitGroup
		for i := 0; i < 3; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				k := fmt.Sprintf("w%02d", (i*7)%20)
				items, _, err := b.GetMulti([]string{k})
				if err != nil || items[k] == nil {
					t.Errorf("wave fetch %s: %v %v", k, items, err)
				}
			}(i)
		}
		wg.Wait()
	}
}
