// Benchmark harness: one benchmark per paper table/figure (fig2–fig14)
// plus ablation benchmarks for the design choices called out in
// DESIGN.md. Figure benchmarks execute the corresponding experiment
// driver end to end at a reduced scale and report the figure's
// headline quantity as a custom metric, so
//
//	go test -bench=Fig -benchmem
//
// regenerates every result. For paper-sized runs use cmd/rnbsim with
// -scale 1.
package rnb_test

import (
	"math/rand"
	"net"
	"testing"
	"time"

	"rnb/internal/bitset"
	"rnb/internal/cluster"
	"rnb/internal/core"
	"rnb/internal/fanoutbench"
	"rnb/internal/hashring"
	"rnb/internal/memcache"
	"rnb/internal/memslap"
	"rnb/internal/setcover"
	"rnb/internal/sim"
	"rnb/internal/workload"
)

// benchCfg keeps figure benchmarks fast enough to iterate while
// preserving every shape; it mirrors the unit tests' quick config.
var benchCfg = sim.Config{Seed: 1, Scale: 40, Requests: 600, Warmup: 600}

// runFigure executes a sim driver b.N times and reports a headline
// metric extracted from the resulting table.
func runFigure(b *testing.B, id string, metric string, extract func(sim.Table) float64) {
	b.Helper()
	var last float64
	for i := 0; i < b.N; i++ {
		tab, err := sim.Run(id, benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		last = extract(tab)
	}
	b.ReportMetric(last, metric)
}

func seriesByLabel(b *testing.B, tab sim.Table, substr string) sim.Series {
	b.Helper()
	for _, s := range tab.Series {
		if contains(s.Label, substr) {
			return s
		}
	}
	b.Fatalf("no series matching %q in %s", substr, tab.ID)
	return sim.Series{}
}

func contains(hay, needle string) bool {
	for i := 0; i+len(needle) <= len(hay); i++ {
		if hay[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}

// BenchmarkFig2 regenerates fig. 2 and reports the doubling scaling
// factor at N=M=50 (paper: ~1.5).
func BenchmarkFig2(b *testing.B) {
	runFigure(b, "fig2", "scale-factor@N=M=50", func(tab sim.Table) float64 {
		return seriesByLabel(b, tab, "50 items").Y[49]
	})
}

// BenchmarkFig3 regenerates fig. 3 and reports the relative throughput
// at 64 servers (ideal: 64; the hole keeps it far lower).
func BenchmarkFig3(b *testing.B) {
	runFigure(b, "fig3", "rel-throughput@64srv", func(tab sim.Table) float64 {
		s := seriesByLabel(b, tab, "measured")
		return s.Y[len(s.Y)-1]
	})
}

// BenchmarkFig4 regenerates the Slashdot degree histogram and reports
// the number of non-empty log buckets.
func BenchmarkFig4(b *testing.B) {
	runFigure(b, "fig4", "degree-buckets", func(tab sim.Table) float64 {
		return float64(len(tab.Series[0].X))
	})
}

// BenchmarkFig5 is BenchmarkFig4 for the Epinions-like graph.
func BenchmarkFig5(b *testing.B) {
	runFigure(b, "fig5", "degree-buckets", func(tab sim.Table) float64 {
		return float64(len(tab.Series[0].X))
	})
}

// BenchmarkFig6 regenerates fig. 6 and reports TPR(4 replicas)/TPR(1)
// on the Slashdot-like workload (paper: ~0.5 or better).
func BenchmarkFig6(b *testing.B) {
	runFigure(b, "fig6", "tpr-ratio@4replicas", func(tab sim.Table) float64 {
		s := seriesByLabel(b, tab, "slashdot")
		return s.Y[3] / s.Y[0]
	})
}

// BenchmarkFig8 regenerates fig. 8 and reports the TPR ratio of 4
// logical replicas at 2.5x memory (paper: ~0.5).
func BenchmarkFig8(b *testing.B) {
	runFigure(b, "fig8", "tpr-ratio@4rep-2.5x", func(tab sim.Table) float64 {
		s := seriesByLabel(b, tab, "4 logical")
		for i, x := range s.X {
			if x == 2.5 {
				return s.Y[i]
			}
		}
		return -1
	})
}

// BenchmarkFig9 regenerates fig. 9 (merged requests) and reports the
// same quantity as fig. 8.
func BenchmarkFig9(b *testing.B) {
	runFigure(b, "fig9", "tpr-ratio@4rep-2.5x", func(tab sim.Table) float64 {
		s := seriesByLabel(b, tab, "4 logical")
		for i, x := range s.X {
			if x == 2.5 {
				return s.Y[i]
			}
		}
		return -1
	})
}

// BenchmarkFig10 regenerates fig. 10 and reports merged-2 TPR at 4
// replicas and 4x memory.
func BenchmarkFig10(b *testing.B) {
	runFigure(b, "fig10", "tpr@merged2-4rep-4x", func(tab sim.Table) float64 {
		s := seriesByLabel(b, tab, "merged-2, 4 logical")
		return s.Y[len(s.Y)-1]
	})
}

// BenchmarkFig11 regenerates fig. 11 and reports the TPR of a 90%
// fetch of 100 items on 32 servers without replication.
func BenchmarkFig11(b *testing.B) {
	runFigure(b, "fig11", "tpr@M100-90pct-32srv", func(tab sim.Table) float64 {
		s := seriesByLabel(b, tab, "M=100, fetch 90%")
		return s.Y[3]
	})
}

// BenchmarkFig12 regenerates fig. 12 and reports the 5-replica /
// no-replication TPR ratio at a 90% fetch of 100 items on 32 servers
// (paper: ~0.3).
func BenchmarkFig12(b *testing.B) {
	runFigure(b, "fig12", "tpr-ratio@5rep-90pct", func(tab sim.Table) float64 {
		r1 := seriesByLabel(b, tab, "M=100, fetch 90%, no replication")
		r5 := seriesByLabel(b, tab, "M=100, fetch 90%, 5 replicas")
		return r5.Y[3] / r1.Y[3]
	})
}

// BenchmarkFig13 runs the single-client micro-benchmark over loopback
// TCP and reports items/s at 256-item transactions.
func BenchmarkFig13(b *testing.B) {
	cfg := benchCfg
	cfg.Requests = 400
	var last float64
	for i := 0; i < b.N; i++ {
		tab, err := sim.Microbench(cfg, 1)
		if err != nil {
			b.Fatal(err)
		}
		s := tab.Series[0]
		last = s.Y[len(s.Y)-1]
	}
	b.ReportMetric(last, "items/s@k=256")
}

// BenchmarkFig14 is the two-client variant.
func BenchmarkFig14(b *testing.B) {
	cfg := benchCfg
	cfg.Requests = 400
	var last float64
	for i := 0; i < b.N; i++ {
		tab, err := sim.Microbench(cfg, 2)
		if err != nil {
			b.Fatal(err)
		}
		s := tab.Series[0]
		last = s.Y[len(s.Y)-1]
	}
	b.ReportMetric(last, "items/s@k=256")
}

// --- extension experiments (no corresponding paper figure) -----------

// BenchmarkGrowth regenerates the growth extension and reports the
// replica-churn fraction for RCH at 16 servers.
func BenchmarkGrowth(b *testing.B) {
	runFigure(b, "growth", "rch-churn@16srv", func(tab sim.Table) float64 {
		s := seriesByLabel(b, tab, "ranged consistent hashing")
		for i, x := range s.X {
			if x == 16 {
				return s.Y[i]
			}
		}
		return -1
	})
}

// BenchmarkLatency regenerates the latency extension and reports the
// baseline/RnB p99 ratio at the baseline's nominal capacity.
func BenchmarkLatency(b *testing.B) {
	runFigure(b, "latency", "p99-ratio@fullload", func(tab sim.Table) float64 {
		base := seriesByLabel(b, tab, "1 replica(s)")
		rnb4 := seriesByLabel(b, tab, "4 replica(s)")
		for i, x := range base.X {
			if x == 1.0 && rnb4.Y[i] > 0 {
				return base.Y[i] / rnb4.Y[i]
			}
		}
		return -1
	})
}

// BenchmarkFailure regenerates the failure extension and reports the
// unreplicated DB-fetch rate (per 1000 items) with one dead server.
func BenchmarkFailure(b *testing.B) {
	runFigure(b, "failure", "db-per-1k@1fail-1rep", func(tab sim.Table) float64 {
		s := seriesByLabel(b, tab, "1 replica(s)")
		for i, x := range s.X {
			if x == 1 {
				return s.Y[i]
			}
		}
		return -1
	})
}

// --- ablation benchmarks (design choices from DESIGN.md) -------------

func randomCoverInstance(r *rand.Rand, universeSize, nSets, density int) (*bitset.Set, []*bitset.Set) {
	universe := bitset.New(universeSize)
	for i := 0; i < universeSize; i++ {
		universe.Set(i)
	}
	ss := make([]*bitset.Set, nSets)
	for i := range ss {
		ss[i] = bitset.New(universeSize)
		for j := 0; j < universeSize; j++ {
			if r.Intn(density) == 0 {
				ss[i].Set(j)
			}
		}
	}
	return universe, ss
}

// BenchmarkAblationCoverGreedy measures the eager greedy cover on an
// RnB-typical instance (requests of ~100 items, 16 candidate servers).
func BenchmarkAblationCoverGreedy(b *testing.B) {
	r := rand.New(rand.NewSource(11))
	universe, ss := randomCoverInstance(r, 100, 16, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		setcover.Greedy(universe, ss)
	}
}

// BenchmarkAblationCoverLazy is the lazy-greedy variant on the same
// instance.
func BenchmarkAblationCoverLazy(b *testing.B) {
	r := rand.New(rand.NewSource(11))
	universe, ss := randomCoverInstance(r, 100, 16, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		setcover.GreedyLazy(universe, ss, 100)
	}
}

// BenchmarkAblationCoverExact bounds the cost of optimal covers on a
// small instance, and reports how much greedy overshoots optimal.
func BenchmarkAblationCoverExact(b *testing.B) {
	r := rand.New(rand.NewSource(12))
	universe, ss := randomCoverInstance(r, 24, 8, 3)
	var greedyLen, exactLen int
	for i := 0; i < b.N; i++ {
		g := setcover.Greedy(universe, ss)
		e, ok := setcover.Exact(universe, ss, 0)
		if !ok {
			b.Fatal("uncoverable ablation instance")
		}
		greedyLen, exactLen = len(g.Picked), len(e.Picked)
	}
	b.ReportMetric(float64(greedyLen)/float64(exactLen), "greedy/optimal")
}

// benchProtocolItemsPerSec runs a small memslap load in the given
// protocol and reports items/s.
func benchProtocolItemsPerSec(b *testing.B, binaryProto bool) {
	b.Helper()
	srv := memcache.NewServer(memcache.NewStore(0))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	if err := memslap.Preload(ln.Addr().String(), 5000, 10, 10*time.Second); err != nil {
		b.Fatal(err)
	}
	var rate float64
	for i := 0; i < b.N; i++ {
		res, err := memslap.Run(memslap.Config{
			Addr: ln.Addr().String(), Concurrency: 2, TxnSize: 32,
			Keys: 5000, Transactions: 600, Seed: 1, Binary: binaryProto,
		})
		if err != nil {
			b.Fatal(err)
		}
		rate = res.ItemsPerSecond()
	}
	b.ReportMetric(rate, "items/s")
}

// BenchmarkAblationProtocolText measures the text protocol under the
// memaslap-style load (k=32).
func BenchmarkAblationProtocolText(b *testing.B) { benchProtocolItemsPerSec(b, false) }

// BenchmarkAblationProtocolBinary is the binary-protocol counterpart
// (quiet-get pipelines).
func BenchmarkAblationProtocolBinary(b *testing.B) { benchProtocolItemsPerSec(b, true) }

// BenchmarkAblationPlacementRCH measures ranged-consistent-hashing
// replica lookup.
func BenchmarkAblationPlacementRCH(b *testing.B) {
	p := hashring.NewRCHPlacement(hashring.NewWithServers(16, 128), 4)
	var buf []int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = p.Replicas(uint64(i), buf)
	}
}

// BenchmarkAblationPlacementMultiHash measures independent multi-hash
// replica lookup.
func BenchmarkAblationPlacementMultiHash(b *testing.B) {
	p := hashring.NewMultiHashPlacement(16, 4, 1)
	var buf []int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = p.Replicas(uint64(i), buf)
	}
}

// enhancementTPR runs a memory-constrained cluster with the given
// enhancement switches and returns the measured TPR.
func enhancementTPR(b *testing.B, hitchhike, distinguishedSingles bool, replicas int) float64 {
	b.Helper()
	c, err := cluster.New(cluster.Config{
		Servers: 16, Items: 4000, Replicas: replicas, MemoryFactor: 2.0,
		Planner: core.Options{Hitchhike: hitchhike, DistinguishedSingles: distinguishedSingles},
	})
	if err != nil {
		b.Fatal(err)
	}
	gen := workload.NewUniformGenerator(4000, 20, 5)
	if err := c.Run(gen, 1500); err != nil {
		b.Fatal(err)
	}
	c.ResetTally()
	if err := c.Run(gen, 1500); err != nil {
		b.Fatal(err)
	}
	return c.Tally().TPR()
}

// BenchmarkAblationEnhancementsAllOn measures TPR with hitchhiking and
// distinguished-single redirection enabled (the paper's configuration).
func BenchmarkAblationEnhancementsAllOn(b *testing.B) {
	var tpr float64
	for i := 0; i < b.N; i++ {
		tpr = enhancementTPR(b, true, true, 4)
	}
	b.ReportMetric(tpr, "TPR")
}

// BenchmarkAblationEnhancementsAllOff measures TPR with both
// enhancements disabled, isolating their contribution.
func BenchmarkAblationEnhancementsAllOff(b *testing.B) {
	var tpr float64
	for i := 0; i < b.N; i++ {
		tpr = enhancementTPR(b, false, false, 4)
	}
	b.ReportMetric(tpr, "TPR")
}

// BenchmarkAblationOverbooking sweeps the logical replication level at
// fixed physical memory (2x), reporting TPR per level — the overbooking
// trade-off of §III-C-1.
func BenchmarkAblationOverbooking(b *testing.B) {
	for _, replicas := range []int{1, 2, 4, 6} {
		replicas := replicas
		b.Run(benchName("logical", replicas), func(b *testing.B) {
			var tpr float64
			for i := 0; i < b.N; i++ {
				tpr = enhancementTPR(b, true, true, replicas)
			}
			b.ReportMetric(tpr, "TPR")
		})
	}
}

func benchName(prefix string, v int) string {
	return prefix + "=" + string(rune('0'+v))
}

// BenchmarkFanoutConcurrency measures rnb.Client multi-get throughput
// as client concurrency grows, single-connection transport versus the
// pooled, pipelined one (rnb.WithPoolSize). The headline comparison is
// at 8+ goroutines, where the single connection per server serializes
// the planner's fan-out and the pool does not; `make bench-pool`
// (cmd/rnbbench pool) runs the full sweep and records BENCH_pool.json.
func BenchmarkFanoutConcurrency(b *testing.B) {
	for _, g := range []int{1, 8, 32} {
		for _, pool := range []int{1, 4} {
			name := "g=" + itoa(g) + "/pool=" + itoa(pool)
			b.Run(name, func(b *testing.B) {
				var last fanoutbench.Result
				for i := 0; i < b.N; i++ {
					res, err := fanoutbench.Run(fanoutbench.Config{
						Servers: 4, Replicas: 3, PoolSize: pool,
						Goroutines: g, Ops: 1200, TxnSize: 16, Keys: 2048,
					})
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				b.ReportMetric(last.OpsPerSec, "multigets/s")
				b.ReportMetric(last.ItemsPerSec, "items/s")
			})
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkHotspot regenerates the hotspot extension experiment at a
// pinned s=1.2 and reports how much hottest-server load adaptive
// hot-key replication sheds versus fixed r at equal RAM (percent; see
// EXPERIMENTS.md and `make bench-skew` for the full sweep).
func BenchmarkHotspot(b *testing.B) {
	cfg := benchCfg
	cfg.Skew = 1.2
	cfg.Requests = 1500
	cfg.Warmup = 1500
	var last float64
	for i := 0; i < b.N; i++ {
		tab, err := sim.Run("hotspot", cfg)
		if err != nil {
			b.Fatal(err)
		}
		fixed := seriesByLabel(b, tab, "fixed").Y[0]
		adapt := seriesByLabel(b, tab, "adaptive").Y[0]
		last = 100 * (fixed - adapt) / fixed
	}
	b.ReportMetric(last, "maxload-reduction-%")
}
