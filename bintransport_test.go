package rnb

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"rnb/internal/chaos"
)

// TestBinaryPooledClientStress is TestPooledClientStress over the
// binary wire: 64 goroutines hammering one binary-pooled client with
// mixed multi-gets, sets, and deletes. Under -race it is the data-race
// proof for the quiet-get transport end to end; values are a pure
// function of the key, so demux cross-wiring surfaces as a corrupt
// read regardless of interleaving. The goroutine baseline check
// doubles as the leak proof for the binary pool's writer/reader loops.
func TestBinaryPooledClientStress(t *testing.T) {
	addrs, _ := startServers(t, 4, 0)
	baseline := runtime.NumGoroutine()
	cl, err := NewClient(addrs, WithReplicas(3), WithPoolSize(4), WithBinaryProtocol())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	const (
		G     = 64
		iters = 60
		space = 200
	)
	key := func(i int) string { return fmt.Sprintf("bstress:%04d", i%space) }
	val := func(k string) []byte { return []byte("v:" + k) }
	for i := 0; i < space; i++ {
		if err := cl.Set(&Item{Key: key(i), Value: val(key(i))}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, G)
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < iters; i++ {
				switch g % 3 {
				case 0: // reader: bundled multi-get over a distinct-key block
					start := rng.Intn(space)
					n := 1 + rng.Intn(12)
					if start+n > space {
						n = space - start
					}
					ks := make([]string, 0, n)
					for j := 0; j < n; j++ {
						ks = append(ks, key(start+j))
					}
					items, _, err := cl.GetMulti(ks)
					if err != nil {
						errs <- fmt.Errorf("reader %d: %w", g, err)
						return
					}
					for k, it := range items {
						if !bytes.Equal(it.Value, val(k)) {
							errs <- fmt.Errorf("reader %d: %s cross-wired: %q", g, k, it.Value)
							return
						}
					}
				case 1: // writer
					k := key(rng.Intn(space))
					if err := cl.Set(&Item{Key: k, Value: val(k)}); err != nil {
						errs <- fmt.Errorf("writer %d: %w", g, err)
						return
					}
				default: // deleter (miss is fine: someone else got there)
					if err := cl.Delete(key(rng.Intn(space))); err != nil && !errors.Is(err, ErrCacheMiss) {
						errs <- fmt.Errorf("deleter %d: %w", g, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if cl.Failures() != 0 {
		t.Fatalf("healthy tier recorded %d failures", cl.Failures())
	}
	g := cl.PoolGauges()
	if g == nil {
		t.Fatal("binary pooled client has no gauges")
	}
	if g.PipelineHighWater.Load() < 2 {
		t.Fatalf("pipeline high water %d: stress never pipelined", g.PipelineHighWater.Load())
	}
	if q, inf := g.Queued.Load(), g.InFlight.Load(); q != 0 || inf != 0 {
		t.Fatalf("gauges not drained after quiesce: queued=%d in_flight=%d", q, inf)
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	awaitGoroutines(t, baseline)
}

// TestBinaryPooledClientChaosKillMidPipeline is the kill-mid-pipeline
// chaos drill over the binary wire: a backend dies while quiet-get
// batches are in flight. In-flight requests must fail fast, the
// breaker must open, re-plans must keep reads complete off the
// survivors, and teardown must leak no pool goroutines — identical
// failure semantics to the text transport.
func TestBinaryPooledClientChaosKillMidPipeline(t *testing.T) {
	addrs, _, injectors := startChaosServers(t, 3,
		map[int]chaos.Profile{0: {Seed: 1}, 1: {Seed: 1}, 2: {Seed: 1}})
	baseline := runtime.NumGoroutine()
	cl, err := NewClient(addrs,
		WithReplicas(2), WithPoolSize(4), WithBinaryProtocol(),
		WithFailureCooldown(time.Minute), // stays open for the whole test
		WithRetry(2, time.Millisecond),
		WithTimeout(500*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	ks := keys(60)
	seedKeys(t, cl, ks)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				cl.GetMulti(ks[:16]) // errors expected during the kill
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	victim := 0
	start := time.Now()
	injectors[victim].Kill()
	deadline := time.Now().Add(5 * time.Second)
	for cl.Failures() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("kill produced no observed failure")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("first failure took %v; in-flight requests did not fail fast", elapsed)
	}
	close(stop)
	wg.Wait()

	states := cl.ServerStates()
	if states[victim].State == BreakerClosed {
		t.Fatalf("victim breaker still closed: %+v", states[victim])
	}
	for round := 0; round < 5; round++ {
		items, _, err := cl.GetMulti(ks)
		if err != nil {
			t.Fatalf("post-kill GetMulti: %v", err)
		}
		if len(items) != len(ks) {
			t.Fatalf("post-kill round %d: %d/%d items (re-plan did not exclude the victim)", round, len(items), len(ks))
		}
	}
	for _, s := range cl.ServerStates() {
		if s.State != BreakerClosed && s.Addr != states[victim].Addr {
			t.Fatalf("survivor %s tripped: %+v", s.Addr, s)
		}
	}

	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	awaitGoroutines(t, baseline)
}

// TestBinaryMatchesTextTransports is the rnb-level three-way
// differential: the same tier read through a text single-connection
// client, a text pooled client, and a binary pooled client must yield
// identical results for identical seeded multi-gets.
func TestBinaryMatchesTextTransports(t *testing.T) {
	addrs, _ := startServers(t, 4, 0)
	single, err := NewClient(addrs, WithReplicas(2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { single.Close() })
	pooled, err := NewClient(addrs, WithReplicas(2), WithPoolSize(4))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pooled.Close() })
	binary, err := NewClient(addrs, WithReplicas(2), WithPoolSize(4), WithBinaryProtocol())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { binary.Close() })

	ks := keys(100)
	for i, k := range ks {
		if i%4 == 3 {
			continue // deliberate misses
		}
		if err := binary.Set(&Item{Key: k, Value: []byte("val:" + k)}); err != nil {
			t.Fatal(err)
		}
	}
	clients := map[string]*Client{"single": single, "pooled": pooled, "binary": binary}
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 20; round++ {
		perm := rng.Perm(len(ks))
		sub := make([]string, 0, 30)
		for _, idx := range perm[:1+rng.Intn(30)] {
			sub = append(sub, ks[idx])
		}
		ref, _, err := single.GetMulti(sub)
		if err != nil {
			t.Fatalf("single: %v", err)
		}
		for name, cl := range clients {
			got, _, err := cl.GetMulti(sub)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if len(got) != len(ref) {
				t.Fatalf("round %d: %s %d items, single %d", round, name, len(got), len(ref))
			}
			for k, it := range ref {
				g, ok := got[k]
				if !ok || !bytes.Equal(g.Value, it.Value) {
					t.Fatalf("round %d: %s diverges from single on %s", round, name, k)
				}
			}
		}
	}
}

// TestWithBinaryProtocolImpliesPool: the option must ride the pooled
// transport even when WithPoolSize was never given — quiet-get
// pipelining has no single-connection mode.
func TestWithBinaryProtocolImpliesPool(t *testing.T) {
	cl, _ := newTestClient(t, 2, WithReplicas(2), WithBinaryProtocol())
	if err := cl.Set(&Item{Key: "bk", Value: []byte("bv")}); err != nil {
		t.Fatal(err)
	}
	items, _, err := cl.GetMulti([]string{"bk"})
	if err != nil || string(items["bk"].Value) != "bv" {
		t.Fatalf("binary round trip: %v %v", items, err)
	}
	if cl.PoolGauges() == nil {
		t.Fatal("binary client did not ride the pooled transport")
	}
}
