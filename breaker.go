package rnb

import (
	"sync"
	"time"
)

// BreakerState is a per-server circuit-breaker state, exposed through
// Client.ServerStates for operators.
type BreakerState int32

const (
	// BreakerClosed: the server is healthy and participates in plans.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the server tripped on consecutive failures; plans
	// route around it until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed; the server is still
	// excluded from plans, but a single probe request is allowed to
	// decide between re-closing and re-opening.
	BreakerHalfOpen
)

// String renders the state the way operators see it in stats output.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// breaker is one server's circuit breaker:
//
//	closed --threshold consecutive failures--> open
//	open --cooldown elapses--> half-open
//	half-open --probe succeeds--> closed
//	half-open --probe fails--> open (cooldown restarts)
//
// A cooldown <= 0 disables tripping entirely (failures are still
// counted). The zero threshold is treated as 1: the first failure
// trips, matching the old WithFailureCooldown quarantine behaviour.
type breaker struct {
	mu        sync.Mutex
	state     BreakerState
	fails     int // consecutive failures observed while closed
	threshold int
	cooldown  time.Duration
	openedAt  time.Time
	probing   bool

	// onTransition, when set, is called (with the lock held; keep it
	// cheap) for every state change — the metrics hook.
	onTransition func(from, to BreakerState)
}

func newBreaker(threshold int, cooldown time.Duration, onTransition func(from, to BreakerState)) *breaker {
	if threshold < 1 {
		threshold = 1
	}
	return &breaker{threshold: threshold, cooldown: cooldown, onTransition: onTransition}
}

// transitionLocked moves to state to, firing the hook.
func (b *breaker) transitionLocked(to BreakerState) {
	if b.state == to {
		return
	}
	from := b.state
	b.state = to
	if b.onTransition != nil {
		b.onTransition(from, to)
	}
}

// tickLocked advances open -> half-open once the cooldown has elapsed.
func (b *breaker) tickLocked() {
	if b.state == BreakerOpen && time.Since(b.openedAt) >= b.cooldown {
		b.transitionLocked(BreakerHalfOpen)
	}
}

// available reports whether plans may route to this server. Open and
// half-open servers are both excluded — a half-open server re-enters
// plans only after its probe succeeds.
func (b *breaker) available() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tickLocked()
	return b.state == BreakerClosed
}

// onFailure records a failed operation, tripping the breaker at the
// consecutive-failure threshold (no-op when cooldown <= 0).
func (b *breaker) onFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.cooldown <= 0 {
		return
	}
	if b.state == BreakerHalfOpen {
		// A regular operation (e.g. a write, which does not consult
		// the breaker) failed while waiting on the probe: re-open.
		b.openedAt = time.Now()
		b.transitionLocked(BreakerOpen)
		return
	}
	if b.state == BreakerClosed && b.fails >= b.threshold {
		b.openedAt = time.Now()
		b.transitionLocked(BreakerOpen)
	}
}

// onSuccess records a successful operation, resetting the failure run
// (and closing a half-open breaker if a regular request somehow got
// through ahead of the probe).
func (b *breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	if b.state == BreakerHalfOpen {
		b.transitionLocked(BreakerClosed)
	}
}

// tryAcquireProbe grants the half-open state's single probe slot.
func (b *breaker) tryAcquireProbe() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tickLocked()
	if b.state != BreakerHalfOpen || b.probing {
		return false
	}
	b.probing = true
	return true
}

// onProbeResult settles the probe: success closes the breaker, failure
// re-opens it and restarts the cooldown.
func (b *breaker) onProbeResult(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if ok {
		b.fails = 0
		b.transitionLocked(BreakerClosed)
		return
	}
	b.openedAt = time.Now()
	b.transitionLocked(BreakerOpen)
}

// snapshot returns the current state (ticking open -> half-open) and
// the consecutive-failure count.
func (b *breaker) snapshot() (BreakerState, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tickLocked()
	return b.state, b.fails
}
