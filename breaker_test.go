package rnb

import (
	"testing"
	"time"
)

func TestBreakerThreshold(t *testing.T) {
	b := newBreaker(3, time.Hour, nil)
	b.onFailure()
	b.onFailure()
	if !b.available() {
		t.Fatal("breaker tripped below threshold")
	}
	b.onFailure()
	if b.available() {
		t.Fatal("breaker did not trip at threshold")
	}
	if st, fails := b.snapshot(); st != BreakerOpen || fails != 3 {
		t.Fatalf("snapshot: %v %d", st, fails)
	}
}

func TestBreakerSuccessResetsRun(t *testing.T) {
	b := newBreaker(2, time.Hour, nil)
	b.onFailure()
	b.onSuccess()
	b.onFailure()
	if !b.available() {
		t.Fatal("non-consecutive failures tripped the breaker")
	}
}

func TestBreakerDisabledByZeroCooldown(t *testing.T) {
	b := newBreaker(1, 0, nil)
	for i := 0; i < 10; i++ {
		b.onFailure()
	}
	if !b.available() {
		t.Fatal("disabled breaker tripped")
	}
	if _, fails := b.snapshot(); fails != 10 {
		t.Fatalf("failure run not counted: %d", fails)
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b := newBreaker(1, 20*time.Millisecond, nil)
	b.onFailure()
	if b.tryAcquireProbe() {
		t.Fatal("probe granted while open")
	}
	time.Sleep(30 * time.Millisecond)
	if b.available() {
		t.Fatal("half-open breaker reported available")
	}
	if !b.tryAcquireProbe() {
		t.Fatal("probe slot not granted when half-open")
	}
	if b.tryAcquireProbe() {
		t.Fatal("second concurrent probe granted")
	}
	b.onProbeResult(true)
	if !b.available() {
		t.Fatal("successful probe did not close the breaker")
	}
	if _, fails := b.snapshot(); fails != 0 {
		t.Fatalf("failure run survived the probe: %d", fails)
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	b := newBreaker(1, 20*time.Millisecond, nil)
	b.onFailure()
	time.Sleep(30 * time.Millisecond)
	if !b.tryAcquireProbe() {
		t.Fatal("probe slot not granted")
	}
	b.onProbeResult(false)
	if st, _ := b.snapshot(); st != BreakerOpen {
		t.Fatalf("failed probe left state %v", st)
	}
	// The cooldown restarts: half-open again after another interval,
	// and the probe slot is usable again.
	time.Sleep(30 * time.Millisecond)
	if !b.tryAcquireProbe() {
		t.Fatal("probe slot not re-granted after second cooldown")
	}
}

func TestBreakerFailureWhileHalfOpenReopens(t *testing.T) {
	b := newBreaker(1, 20*time.Millisecond, nil)
	b.onFailure()
	time.Sleep(30 * time.Millisecond)
	if st, _ := b.snapshot(); st != BreakerHalfOpen {
		t.Fatalf("state %v, want half-open", st)
	}
	b.onFailure() // e.g. a write, which does not consult the breaker
	if st, _ := b.snapshot(); st != BreakerOpen {
		t.Fatalf("failure while half-open left state %v", st)
	}
}

func TestBreakerTransitionHook(t *testing.T) {
	var seq []BreakerState
	b := newBreaker(1, 20*time.Millisecond, func(from, to BreakerState) {
		seq = append(seq, to)
	})
	b.onFailure()
	b.snapshot() // no transition yet: still open
	time.Sleep(30 * time.Millisecond)
	b.snapshot() // ticks open -> half-open
	if !b.tryAcquireProbe() {
		t.Fatal("probe slot not granted")
	}
	b.onProbeResult(true)
	want := []BreakerState{BreakerOpen, BreakerHalfOpen, BreakerClosed}
	if len(seq) != len(want) {
		t.Fatalf("transitions %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("transitions %v, want %v", seq, want)
		}
	}
}

func TestBreakerStateString(t *testing.T) {
	cases := map[BreakerState]string{
		BreakerClosed:   "closed",
		BreakerOpen:     "open",
		BreakerHalfOpen: "half-open",
		BreakerState(9): "unknown",
	}
	for st, want := range cases {
		if st.String() != want {
			t.Fatalf("%d.String() = %q, want %q", st, st.String(), want)
		}
	}
}
