package rnb

import (
	"net"
	"testing"
	"time"

	"rnb/internal/chaos"
	"rnb/internal/leakcheck"
	"rnb/internal/memcache"
)

// startChaosServers is startServers with fault injectors: servers whose
// index appears in profiles serve from behind a chaos.Injector. The
// injectors start DISABLED so tests can seed data over clean
// connections; enable with SetEnabled(true) and sever the client's
// clean pooled connections with Kill()+Revive() so the reconnects run
// through the fault profile.
func startChaosServers(t *testing.T, n int, profiles map[int]chaos.Profile) ([]string, []*memcache.Server, map[int]*chaos.Injector) {
	t.Helper()
	addrs := make([]string, n)
	servers := make([]*memcache.Server, n)
	injectors := make(map[int]*chaos.Injector, len(profiles))
	for i := 0; i < n; i++ {
		srv := memcache.NewServer(memcache.NewStore(0))
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		wrapped := ln
		if prof, ok := profiles[i]; ok {
			in := chaos.New(prof)
			in.SetEnabled(false)
			injectors[i] = in
			wrapped = in.Wrap(ln)
		}
		go srv.Serve(wrapped)
		t.Cleanup(func() { srv.Close() })
		addrs[i] = ln.Addr().String()
		servers[i] = srv
	}
	return addrs, servers, injectors
}

func newChaosClient(t *testing.T, n int, profiles map[int]chaos.Profile, opts ...Option) (*Client, []*memcache.Server, map[int]*chaos.Injector) {
	t.Helper()
	addrs, servers, injectors := startChaosServers(t, n, profiles)
	cl, err := NewClient(addrs, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl, servers, injectors
}

// unleash enables the injector and severs every connection established
// while it was disabled, so the client's next round trips reconnect
// through the fault profile.
func unleash(in *chaos.Injector) {
	in.SetEnabled(true)
	in.Kill()
	in.Revive()
}

func seedKeys(t *testing.T, cl *Client, ks []string) {
	t.Helper()
	for _, k := range ks {
		if err := cl.Set(&Item{Key: k, Value: []byte("v")}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestChaosScriptedFaultsFullRecovery is the headline chaos scenario:
// one of four backends misbehaves per a deterministic fault script
// (stale resets, then a black hole, then refusals) while GetMulti over
// 3-replica data must keep returning 100% of the requested items —
// first via the stale-connection replay in the memcache client, then
// via mid-request re-planning onto the surviving replicas, then via the
// open breaker keeping the backend out of plans entirely.
func TestChaosScriptedFaultsFullRecovery(t *testing.T) {
	leakcheck.Check(t)
	prof := chaos.Profile{Seed: 7, Script: []chaos.ConnPlan{
		{ResetAfterWrites: 1}, // serves one response, then dies mid-stream
		{Blackhole: true},     // accepts, never answers: deadline failure
		{Refuse: true},        // connection reset on first use
	}}
	cl, _, injectors := newChaosClient(t, 4, map[int]chaos.Profile{0: prof},
		WithReplicas(3), WithTimeout(250*time.Millisecond),
		WithFailureCooldown(30*time.Second), WithRetry(2, 5*time.Millisecond))
	ks := keys(40)
	seedKeys(t, cl, ks)
	unleash(injectors[0])

	for trial := 0; trial < 8; trial++ {
		items, _, err := cl.GetMulti(ks)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(items) != len(ks) {
			t.Fatalf("trial %d: %d/%d items under chaos", trial, len(items), len(ks))
		}
	}
	if cl.Failures() == 0 {
		t.Fatal("no failure recorded though the backend black-holed a connection")
	}
	if got := cl.Resilience().Snapshot(); got["replans"] == 0 {
		t.Fatalf("missing keys were never re-planned: %v", got)
	}
	st := injectors[0].Stats()
	if st.Resets == 0 || st.Blackholed == 0 {
		t.Fatalf("fault script not exercised: %+v", st)
	}
}

// TestChaosSeededFaultsFullRecovery runs the probabilistic profile:
// whatever mix of resets and black holes the seed draws on backend 0,
// every GetMulti must still return the full item set.
func TestChaosSeededFaultsFullRecovery(t *testing.T) {
	leakcheck.Check(t)
	prof := chaos.Profile{Seed: 42, PReset: 0.5, PBlackhole: 0.25, ResetAfterWrites: 1}
	cl, _, injectors := newChaosClient(t, 4, map[int]chaos.Profile{0: prof},
		WithReplicas(3), WithTimeout(250*time.Millisecond),
		WithFailureCooldown(30*time.Second), WithRetry(2, 5*time.Millisecond))
	ks := keys(40)
	seedKeys(t, cl, ks)
	unleash(injectors[0])

	for trial := 0; trial < 12; trial++ {
		items, _, err := cl.GetMulti(ks)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(items) != len(ks) {
			t.Fatalf("trial %d: %d/%d items under chaos", trial, len(items), len(ks))
		}
	}
	if injectors[0].Stats().Accepted == 0 {
		t.Fatal("injector saw no traffic; test proves nothing")
	}
}

// TestChaosKillReviveBreakerLifecycle kills a backend via the injector,
// watches its breaker go closed -> open -> half-open, revives the
// backend, and verifies a successful probe closes the breaker and the
// server re-enters plans (its distinguished keys are served by it
// again, with zero failed transactions).
func TestChaosKillReviveBreakerLifecycle(t *testing.T) {
	leakcheck.Check(t)
	const victim = 1
	cl, servers, injectors := newChaosClient(t, 4, map[int]chaos.Profile{victim: {}},
		WithReplicas(3), WithTimeout(300*time.Millisecond),
		WithFailureCooldown(150*time.Millisecond), WithRetry(2, 5*time.Millisecond))
	ks := keys(40)
	seedKeys(t, cl, ks)

	// Keys homed (distinguished) on the victim: single-key fetches for
	// these are routed straight at it, which both trips the breaker
	// after the kill and proves re-admission after the revive.
	var homed []string
	for _, k := range ks {
		if cl.replicaServers(k)[0] == victim {
			homed = append(homed, k)
		}
	}
	if len(homed) == 0 {
		t.Skip("ring homed no test key on the victim server")
	}

	injectors[victim].SetEnabled(true)
	injectors[victim].Kill()

	// Trip the breaker: single-key fetches route to the victim's
	// distinguished copies, still return the item (re-planned onto
	// survivors), and open the victim's breaker.
	deadline := time.Now().Add(5 * time.Second)
	for cl.ServerStates()[victim].State != BreakerOpen {
		if time.Now().After(deadline) {
			t.Fatal("breaker never opened after kill")
		}
		for _, k := range homed {
			one, _, err := cl.GetMulti([]string{k})
			if err != nil {
				t.Fatal(err)
			}
			if len(one) != 1 {
				t.Fatalf("key %s lost while victim down", k)
			}
		}
	}

	// After the cooldown the breaker turns half-open — still excluded
	// from plans until a probe succeeds.
	time.Sleep(250 * time.Millisecond)
	if st := cl.ServerStates()[victim]; st.State != BreakerHalfOpen {
		t.Fatalf("state after cooldown: %+v", st)
	}
	if !cl.isDown(victim) {
		t.Fatal("half-open server admitted to plans before its probe")
	}

	// Revive; the next GetMulti launches a probe, which succeeds and
	// closes the breaker within (well under) one cooldown's worth of
	// traffic.
	injectors[victim].Revive()
	deadline = time.Now().Add(5 * time.Second)
	for cl.ServerStates()[victim].State != BreakerClosed {
		if time.Now().After(deadline) {
			t.Fatalf("revived server not re-admitted: %+v (resilience %v)",
				cl.ServerStates()[victim], cl.Resilience().Snapshot())
		}
		if _, _, err := cl.GetMulti(ks); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Re-entry: the victim's distinguished keys are served by it again.
	before := servers[victim].Stats().Transactions.Load()
	for _, k := range homed {
		items, stats, err := cl.GetMulti([]string{k})
		if err != nil {
			t.Fatal(err)
		}
		if len(items) != 1 {
			t.Fatalf("key %s lost after revive", k)
		}
		if stats.Failed != 0 {
			t.Fatalf("failed txns against a revived server: %+v", stats)
		}
	}
	if after := servers[victim].Stats().Transactions.Load(); after == before {
		t.Fatal("revived server served no transactions; not re-admitted to plans")
	}

	snap := cl.Resilience().Snapshot()
	for _, counter := range []string{"breaker_opened", "breaker_half_open", "breaker_closed", "probe_successes"} {
		if snap[counter] == 0 {
			t.Fatalf("lifecycle counter %s never incremented: %v", counter, snap)
		}
	}
}

// TestChaosFlappingBackendFullRecovery runs GetMulti in a loop against
// a backend that flaps — refuses bursts of connections, serves a few,
// dies mid-stream, repeats — and requires 100% of the items back on
// every single call. This is the failover test the fixed-cooldown
// design could not pass stably: the breaker absorbs each down phase,
// and half-open probes re-admit the backend during up phases.
func TestChaosFlappingBackendFullRecovery(t *testing.T) {
	leakcheck.Check(t)
	const victim = 2
	prof := chaos.Profile{Seed: 9, FlapDown: 2, FlapUp: 4, PReset: 1, ResetAfterWrites: 2}
	cl, _, injectors := newChaosClient(t, 4, map[int]chaos.Profile{victim: prof},
		WithReplicas(3), WithTimeout(400*time.Millisecond),
		WithFailureCooldown(40*time.Millisecond), WithRetry(2, 5*time.Millisecond))
	ks := keys(30)
	seedKeys(t, cl, ks)

	// Keys homed on the victim: single-key fetches for these route to
	// its distinguished copy, guaranteeing the flap schedule is hit
	// (a batch cover over 3-replica data may legally bypass one server).
	var homed []string
	for _, k := range ks {
		if cl.replicaServers(k)[0] == victim {
			homed = append(homed, k)
		}
	}
	if len(homed) == 0 {
		t.Skip("ring homed no test key on the victim server")
	}
	unleash(injectors[victim])

	for trial := 0; trial < 25; trial++ {
		items, _, err := cl.GetMulti(ks)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(items) != len(ks) {
			t.Fatalf("trial %d: %d/%d items under flapping", trial, len(items), len(ks))
		}
		for _, k := range homed {
			one, _, err := cl.GetMulti([]string{k})
			if err != nil {
				t.Fatalf("trial %d key %s: %v", trial, k, err)
			}
			if len(one) != 1 {
				t.Fatalf("trial %d: key %s lost under flapping", trial, k)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if injectors[victim].Stats().Refused == 0 {
		t.Fatal("flap schedule refused no connections; test proves nothing")
	}

	// The flap always cycles back to an up phase, so the breaker must
	// eventually sit closed again (probes succeed during up phases).
	deadline := time.Now().Add(5 * time.Second)
	for cl.ServerStates()[victim].State != BreakerClosed {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never re-closed on a flapping backend: %+v (resilience %v)",
				cl.ServerStates()[victim], cl.Resilience().Snapshot())
		}
		if _, _, err := cl.GetMulti(ks); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
