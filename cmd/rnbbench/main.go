// Command rnbbench runs the memcached micro-benchmark of the paper's
// Appendix A (figs. 13–14): an in-process memcached clone on loopback
// TCP slammed by memaslap-style clients with a swept multi-get
// transaction size. It prints items/s per transaction size and the
// fitted affine cost model used to calibrate the simulator.
//
// Usage:
//
//	rnbbench one        # fig 13: one client
//	rnbbench two        # fig 14: two concurrent clients
//	rnbbench -clients 4 # any client count
package main

import (
	"flag"
	"fmt"
	"os"

	"rnb/internal/calibrate"
	"rnb/internal/sim"
	"rnb/internal/textplot"
)

func main() {
	var (
		clients = flag.Int("clients", 0, "number of concurrent clients (overrides the positional mode)")
		items   = flag.Int("items", 200000, "items fetched per sweep point")
		seed    = flag.Int64("seed", 1, "random seed")
		skew    = flag.Float64("skew", 0, "Zipf exponent for key selection (0 = uniform)")
	)
	flag.Parse()

	n := *clients
	if n == 0 {
		switch flag.Arg(0) {
		case "", "one":
			n = 1
		case "two":
			n = 2
		default:
			fmt.Fprintf(os.Stderr, "rnbbench: unknown mode %q (want one or two)\n", flag.Arg(0))
			os.Exit(2)
		}
	}
	cfg := sim.Config{Seed: *seed, Requests: *items / 25, Skew: *skew}
	table, err := sim.Microbench(cfg, n)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rnbbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(textplot.Render(table))

	// Fit the affine cost model from the measured sweep: this is the
	// calibration step of §III-B.
	var pts []calibrate.Point
	s := table.Series[0]
	for i := range s.X {
		k := int(s.X[i])
		if s.Y[i] > 0 {
			pts = append(pts, calibrate.Point{K: k, TxnPerSec: s.Y[i] / float64(k)})
		}
	}
	model, err := calibrate.Fit(pts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rnbbench: fit: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\nfitted cost model: %.2f us/transaction + %.3f us/item\n",
		model.Fixed*1e6, model.PerItem*1e6)
	fmt.Printf("(simulator default: %.2f us/transaction + %.3f us/item)\n",
		calibrate.DefaultModel.Fixed*1e6, calibrate.DefaultModel.PerItem*1e6)
}
