// Command rnbbench runs the memcached micro-benchmark of the paper's
// Appendix A (figs. 13–14): an in-process memcached clone on loopback
// TCP slammed by memaslap-style clients with a swept multi-get
// transaction size. It prints items/s per transaction size and the
// fitted affine cost model used to calibrate the simulator.
//
// Usage:
//
//	rnbbench one        # fig 13: one client
//	rnbbench two        # fig 14: two concurrent clients
//	rnbbench -clients 4 # any client count
//	rnbbench pool       # pooled vs single-connection transport sweep
//	rnbbench placement  # placement-family bottleneck benchmark
//	rnbbench trace      # distributed-tracing attribution experiment
//
// The "pool" mode exercises the client-side transport instead of the
// server: it sweeps load-generator concurrency for the single-connection
// and pooled/pipelined transports and reports multiget throughput for
// each, optionally as JSON (-json) for BENCH_pool.json.
//
// The "placement" mode runs the placement-family comparison (random
// replication vs adaptive boosting vs the Combinatorial Batch Code
// placement, under Zipf and adversarial traffic; see internal/sim's
// "placement" experiment) and reports the per-request bottleneck,
// optionally as JSON (-json) for BENCH_placement.json.
//
// The "trace" mode uses end-to-end distributed tracing as a measuring
// instrument: it drives Zipf-skewed multi-gets through a traced client
// against traced in-process servers at replication levels 1 and 3, and
// reports where the tier's server-side queue wait concentrated. Under
// skew with r=1 the hot keys' home server absorbs most of the queue
// wait; RnB replication+bundling spreads it. -json writes
// BENCH_trace.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"rnb/internal/calibrate"
	"rnb/internal/fanoutbench"
	"rnb/internal/sim"
	"rnb/internal/textplot"
)

func main() {
	var (
		clients = flag.Int("clients", 0, "number of concurrent clients (overrides the positional mode)")
		items   = flag.Int("items", 200000, "items fetched per sweep point")
		seed    = flag.Int64("seed", 1, "random seed")
		skew    = flag.Float64("skew", 0, "Zipf exponent for key selection (0 = uniform)")

		jsonOut  = flag.String("json", "", "pool/placement mode: also write the sweep as JSON to this file")
		poolSize = flag.Int("pool-size", 4, "pool mode: connections per server for the pooled transport")
		servers  = flag.Int("servers", 4, "pool mode: in-process backend count")
		ops      = flag.Int("ops", 1200, "pool mode: multi-gets per sweep point")

		requests = flag.Int("requests", 4000, "placement mode: measured requests per data point")
		warmup   = flag.Int("warmup", 4000, "placement mode: warm-up requests per data point")
		scale    = flag.Int("scale", 8, "placement mode: item-universe downscale factor")
	)
	flag.Parse()

	if flag.Arg(0) == "placement" {
		if *requests < 1 || *warmup < 0 || *scale < 1 {
			fmt.Fprintln(os.Stderr, "rnbbench: placement needs -requests >= 1, -warmup >= 0, -scale >= 1")
			os.Exit(2)
		}
		cfg := sim.Config{Seed: *seed, Scale: *scale, Requests: *requests, Warmup: *warmup, Skew: *skew}
		if err := placementBench(*jsonOut, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "rnbbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if flag.Arg(0) == "trace" {
		skew := *skew
		if skew == 0 {
			skew = 1.2
		}
		if err := traceBench(*jsonOut, *servers, *poolSize, *ops, skew, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "rnbbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if flag.Arg(0) == "pool" {
		if *servers < 1 {
			fmt.Fprintf(os.Stderr, "rnbbench: -servers must be >= 1 (got %d)\n", *servers)
			os.Exit(2)
		}
		if *poolSize < 1 {
			fmt.Fprintf(os.Stderr, "rnbbench: -pool-size must be >= 1 (got %d)\n", *poolSize)
			os.Exit(2)
		}
		if *ops < 1 {
			fmt.Fprintf(os.Stderr, "rnbbench: -ops must be >= 1 (got %d)\n", *ops)
			os.Exit(2)
		}
		if err := poolSweep(*jsonOut, *poolSize, *servers, *ops); err != nil {
			fmt.Fprintf(os.Stderr, "rnbbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	n := *clients
	if n == 0 {
		switch flag.Arg(0) {
		case "", "one":
			n = 1
		case "two":
			n = 2
		default:
			fmt.Fprintf(os.Stderr, "rnbbench: unknown mode %q (want one, two, or pool)\n", flag.Arg(0))
			os.Exit(2)
		}
	}
	cfg := sim.Config{Seed: *seed, Requests: *items / 25, Skew: *skew}
	table, err := sim.Microbench(cfg, n)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rnbbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(textplot.Render(table))

	// Fit the affine cost model from the measured sweep: this is the
	// calibration step of §III-B.
	var pts []calibrate.Point
	s := table.Series[0]
	for i := range s.X {
		k := int(s.X[i])
		if s.Y[i] > 0 {
			pts = append(pts, calibrate.Point{K: k, TxnPerSec: s.Y[i] / float64(k)})
		}
	}
	model, err := calibrate.Fit(pts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rnbbench: fit: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\nfitted cost model: %.2f us/transaction + %.3f us/item\n",
		model.Fixed*1e6, model.PerItem*1e6)
	fmt.Printf("(simulator default: %.2f us/transaction + %.3f us/item)\n",
		calibrate.DefaultModel.Fixed*1e6, calibrate.DefaultModel.PerItem*1e6)
}

// placementBench runs the placement-family experiment and records the
// table as machine-readable JSON (e.g. `make bench-placement` producing
// BENCH_placement.json).
func placementBench(jsonOut string, cfg sim.Config) error {
	table, err := sim.Run("placement", cfg)
	if err != nil {
		return err
	}
	fmt.Print(textplot.Render(table))
	if jsonOut == "" {
		return nil
	}
	blob, err := json.MarshalIndent(struct {
		GeneratedBy string      `json:"generated_by"`
		Config      sim.Config  `json:"config"`
		Tables      []sim.Table `json:"tables"`
	}{"rnbbench", cfg, []sim.Table{table}}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(jsonOut, append(blob, '\n'), 0o644)
}

// traceBench runs the distributed-tracing attribution experiment under
// the given Zipf skew and prints, for each configuration, the hot
// server's share of the tier's server-side queue wait — the number the
// trace machinery exists to expose. Three configurations tell the
// story: r=1 has no placement choice (hot keys' home absorbs the
// skew), r=3 with the default deterministic tie-break still bundles
// hot keys onto their lowest-id replica, and r=3 with balanced
// planning spreads the same bundles across the replica set.
func traceBench(jsonOut string, servers, poolSize, ops int, skew float64, seed int64) error {
	var results []fanoutbench.TraceResult
	fmt.Printf("%-14s %7s %11s %13s %14s %11s %9s %9s\n",
		"config", "traces", "traced rtts", "hot q us/op", "tier q us/op", "hot q share", "p50 ms", "p99 ms")
	for _, c := range []struct {
		name     string
		replicas int
		balance  bool
	}{
		{"r=1", 1, false},
		{"r=3", 3, false},
		{"r=3 balanced", 3, true},
	} {
		res, err := fanoutbench.TraceRun(fanoutbench.TraceConfig{
			Servers:  servers,
			Replicas: c.replicas,
			PoolSize: poolSize,
			Ops:      ops,
			Skew:     skew,
			Balance:  c.balance,
			Seed:     seed,
		})
		if err != nil {
			return err
		}
		fmt.Printf("%-14s %7d %11d %13.1f %14.1f %11.3f %9.2f %9.2f\n",
			c.name, res.Traces, res.TracedRTTs,
			res.HotQueueNSPerOp/1e3, res.TotalQueueNSPerOp/1e3, res.HotQueueShare,
			float64(res.LatencyP50)/1e6, float64(res.LatencyP99)/1e6)
		results = append(results, res)
	}
	even := 1.0 / float64(servers)
	fmt.Printf("\nZipf skew %.2f over %d servers (even queue share would be %.3f): at r=1 "+
		"the hot keys' home server absorbs a multiple of its even share of the tier's queue "+
		"wait; bundling (r=3) cuts the tier total by issuing fewer transactions, and balanced "+
		"planning spreads the remaining bundles off the hot replica.\n",
		skew, servers, even)
	if jsonOut == "" {
		return nil
	}
	blob, err := json.MarshalIndent(struct {
		GeneratedBy string                    `json:"generated_by"`
		Results     []fanoutbench.TraceResult `json:"results"`
	}{"rnbbench", results}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(jsonOut, append(blob, '\n'), 0o644)
}

// poolSweep measures multiget throughput for the single-connection,
// text-pooled, and binary-pooled transports across a goroutine sweep,
// printing a table and optionally recording the raw results as JSON.
func poolSweep(jsonOut string, poolSize, servers, ops int) error {
	type row struct {
		Goroutines int                `json:"goroutines"`
		Single     fanoutbench.Result `json:"single"`
		Pooled     fanoutbench.Result `json:"pooled"`
		Binary     fanoutbench.Result `json:"binary"`
		// LoadgenSaturated flags sweep points where the load generator
		// itself contends for CPU (≥64 goroutines on few cores): latency
		// there measures goroutine scheduling, not the transport. Read
		// the plateau story from the unflagged rows, or rerun on
		// multicore hardware (see EXPERIMENTS.md).
		LoadgenSaturated bool `json:"loadgen_saturated,omitempty"`
	}
	var rows []row
	ms := func(d time.Duration) float64 { return float64(d) / 1e6 }
	fmt.Printf("%-10s %18s %9s %18s %9s %18s %9s %8s\n",
		"goroutines", "single multiget/s", "p99 ms",
		"pooled multiget/s", "p99 ms",
		"binary multiget/s", "p99 ms", "speedup")
	for _, g := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		base := fanoutbench.Config{Servers: servers, Goroutines: g, Ops: ops}
		single, err := fanoutbench.Run(base)
		if err != nil {
			return err
		}
		base.PoolSize = poolSize
		pooled, err := fanoutbench.Run(base)
		if err != nil {
			return err
		}
		base.Binary = true
		bin, err := fanoutbench.Run(base)
		if err != nil {
			return err
		}
		speedup := 0.0
		if single.OpsPerSec > 0 {
			speedup = bin.OpsPerSec / single.OpsPerSec
		}
		fmt.Printf("%-10d %18.0f %9.2f %18.0f %9.2f %18.0f %9.2f %7.2fx\n",
			g, single.OpsPerSec, ms(single.LatencyP99),
			pooled.OpsPerSec, ms(pooled.LatencyP99),
			bin.OpsPerSec, ms(bin.LatencyP99), speedup)
		rows = append(rows, row{
			Goroutines: g, Single: single, Pooled: pooled, Binary: bin,
			LoadgenSaturated: g >= 64,
		})
	}
	if jsonOut == "" {
		return nil
	}
	buf, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(jsonOut, append(buf, '\n'), 0o644)
}
