// Command rnbgraph generates and inspects the social graphs behind the
// RnB workloads (paper figs. 4–5).
//
// Usage:
//
//	rnbgraph slashdot            # degree histogram of the Slashdot-like graph
//	rnbgraph epinions            # same for the Epinions-like graph
//	rnbgraph -stats <file>       # histogram of a SNAP edge-list file
//	rnbgraph -out g.txt slashdot # also write the graph as a SNAP edge list
package main

import (
	"flag"
	"fmt"
	"os"

	"rnb/internal/graph"
	"rnb/internal/textplot"
)

func main() {
	var (
		seed  = flag.Int64("seed", 1, "generator seed")
		scale = flag.Int("scale", 1, "downscale factor (1 = paper-sized)")
		out   = flag.String("out", "", "write the generated graph to this SNAP edge-list file")
		stats = flag.String("stats", "", "read a SNAP edge-list file instead of generating")
	)
	flag.Parse()

	var g *graph.Graph
	switch {
	case *stats != "":
		f, err := os.Open(*stats)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		parsed, err := graph.ReadEdgeList(f, *stats)
		if err != nil {
			fatal(err)
		}
		g = parsed
	default:
		switch flag.Arg(0) {
		case "slashdot", "":
			g = graph.ScaledSlashdotLike(*seed, *scale)
		case "epinions":
			g = graph.ScaledEpinionsLike(*seed, *scale)
		default:
			fmt.Fprintf(os.Stderr, "rnbgraph: unknown graph %q (want slashdot or epinions)\n", flag.Arg(0))
			os.Exit(2)
		}
	}

	st := graph.OutDegreeStats(g)
	fmt.Printf("graph %s: %d nodes, %d edges, mean out-degree %.2f (min %d, max %d)\n",
		g.Name(), g.NumNodes(), g.NumEdges(), st.Mean, st.Min, st.Max)
	var xs, ys []float64
	for _, b := range graph.LogBuckets(st.Histogram) {
		xs = append(xs, float64(b.Lo))
		ys = append(ys, float64(b.Count))
	}
	fmt.Printf("degree histogram (log buckets): %s\n", textplot.Sparkline(ys))
	for i := range xs {
		fmt.Printf("  degree >= %-6.0f %8.0f nodes\n", xs[i], ys[i])
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := graph.WriteEdgeList(f, g); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rnbgraph: %v\n", err)
	os.Exit(1)
}
