// Command annotate converts rnblint -json output (one JSON object per
// line on stdin) into GitHub Actions ::error workflow commands, so CI
// findings render as inline annotations on the PR diff. It exists so
// scripts/lint_annotate.sh needs no jq: the repo is zero-dependency
// and stays that way.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

type diag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// escapeData applies the workflow-command data escaping rules: %, CR,
// and LF must be URL-style encoded or the runner truncates the message
// at the first newline.
func escapeData(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// escapeProp additionally encodes the property delimiters : and , .
func escapeProp(s string) string {
	s = escapeData(s)
	s = strings.ReplaceAll(s, ":", "%3A")
	s = strings.ReplaceAll(s, ",", "%2C")
	return s
}

func main() {
	// rnblint reports absolute paths; GitHub matches annotations to the
	// diff by repo-relative path, so strip the working directory (the
	// script runs from the repo root).
	cwd, _ := os.Getwd()
	relify := func(p string) string {
		if cwd != "" {
			if r, err := filepath.Rel(cwd, p); err == nil && !strings.HasPrefix(r, "..") {
				return filepath.ToSlash(r)
			}
		}
		return p
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var d diag
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			fmt.Fprintf(os.Stderr, "annotate: bad input line %q: %v\n", line, err)
			os.Exit(2)
		}
		fmt.Printf("::error file=%s,line=%d,col=%d,title=%s::%s\n",
			escapeProp(relify(d.File)), d.Line, d.Column,
			escapeProp("rnblint/"+d.Analyzer), escapeData(d.Message))
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "annotate:", err)
		os.Exit(2)
	}
}
