// Command rnblint runs the repository's static-analysis suite
// (internal/lint) over the given package patterns and reports every
// invariant violation with its position. It exits 0 when the tree is
// clean, 1 when diagnostics were reported, and 2 when loading or
// type-checking failed.
//
// Usage:
//
//	rnblint [-only analyzer[,analyzer...]] [-json] [-list] [packages...]
//
// With no patterns it checks ./... . -json emits one JSON object per
// finding (file, line, column, analyzer, message), one per line, for
// tooling such as scripts/lint_annotate.sh. Suppress a finding with a
// trailing or preceding comment naming the analyzer and a reason:
//
//	//rnblint:ignore blockleak the leak is the point — this test wants a parked goroutine
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"rnb/internal/lint"
)

// jsonDiag is the machine-readable finding record emitted by -json.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer subset to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	asJSON := flag.Bool("json", false, "emit findings as JSON objects, one per line")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rnblint [flags] [packages...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.Analyzers()
	if *only != "" {
		var err error
		analyzers, err = lint.ByName(strings.Split(*only, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	loadFailed := false
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "rnblint: %s: %v\n", p.Path, terr)
			loadFailed = true
		}
	}
	if loadFailed {
		os.Exit(2)
	}

	diags := lint.Run(pkgs, analyzers)
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		for _, d := range diags {
			rec := jsonDiag{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			}
			if err := enc.Encode(rec); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "rnblint: %d issue(s)\n", len(diags))
		os.Exit(1)
	}
}
