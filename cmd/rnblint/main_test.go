package main

import (
	"encoding/json"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildRnblint compiles the binary once into a test temp dir and
// returns its path.
func buildRnblint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "rnblint")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// runRnblint executes the binary from the repo root against the given
// arguments and returns stdout, stderr, and the exit code.
func runRnblint(t *testing.T, bin string, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = "../.." // repo root, so fixture patterns resolve
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("run rnblint: %v", err)
		}
		code = ee.ExitCode()
	}
	return stdout.String(), stderr.String(), code
}

func TestRnblintFindsViolations(t *testing.T) {
	bin := buildRnblint(t)
	stdout, stderr, code := runRnblint(t, bin, "./internal/lint/testdata/src/errwrap/bad")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "errwrap: error operand formatted with %v") {
		t.Errorf("stdout missing errwrap diagnostic:\n%s", stdout)
	}
	if !strings.Contains(stdout, "bad.go:13:") {
		t.Errorf("stdout missing positional prefix for the first finding:\n%s", stdout)
	}
	if !strings.Contains(stderr, "rnblint: 4 issue(s)") {
		t.Errorf("stderr missing issue count:\n%s", stderr)
	}
}

func TestRnblintCleanPackageExitsZero(t *testing.T) {
	bin := buildRnblint(t)
	stdout, stderr, code := runRnblint(t, bin, "./internal/lint/testdata/src/errwrap/good")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("clean run should print nothing, got:\n%s", stdout)
	}
}

func TestRnblintOnlySubset(t *testing.T) {
	bin := buildRnblint(t)
	// thelper has nothing to say about the errwrap fixture, so the
	// subset run must be clean even though the package has violations.
	_, _, code := runRnblint(t, bin, "-only", "thelper", "./internal/lint/testdata/src/errwrap/bad")
	if code != 0 {
		t.Fatalf("-only thelper exit code = %d, want 0", code)
	}
	_, stderr, code := runRnblint(t, bin, "-only", "nosuch", "./internal/lint/testdata/src/errwrap/bad")
	if code != 2 {
		t.Fatalf("-only nosuch exit code = %d, want 2\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, `unknown analyzer "nosuch"`) {
		t.Errorf("stderr missing unknown-analyzer error:\n%s", stderr)
	}
}

func TestRnblintList(t *testing.T) {
	bin := buildRnblint(t)
	stdout, _, code := runRnblint(t, bin, "-list")
	if code != 0 {
		t.Fatalf("-list exit code = %d, want 0", code)
	}
	for _, name := range []string{
		"atomiconly", "blockleak", "errwrap", "frozen", "lockheld",
		"lockorder", "metricname", "seededrand", "thelper",
	} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout)
		}
	}
}

func TestRnblintJSONOutput(t *testing.T) {
	bin := buildRnblint(t)
	stdout, _, code := runRnblint(t, bin, "-json", "./internal/lint/testdata/src/errwrap/bad")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s", code, stdout)
	}
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d JSON lines, want 4:\n%s", len(lines), stdout)
	}
	for _, line := range lines {
		var rec struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad JSON line %q: %v", line, err)
		}
		if rec.File == "" || rec.Line == 0 || rec.Column == 0 {
			t.Errorf("record missing position: %q", line)
		}
		if rec.Analyzer != "errwrap" || rec.Message == "" {
			t.Errorf("record missing analyzer/message: %q", line)
		}
	}
}
