// Command rnbmemd is a standalone RnB-memcached server: a
// memcached-text-protocol daemon with LRU-bounded memory and the RnB
// "setp" pinning extension for distinguished copies (paper §IV).
//
// Usage:
//
//	rnbmemd -addr :11211 -memory 256MB
//
// Point any memcached client at it, or an rnb.Client for the full
// Replicate-and-Bundle path. Stats are served via the standard "stats"
// command.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"rnb/internal/memcache"
	"rnb/internal/obs"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:11211", "listen address (TCP; serves text and binary protocols)")
		udpAddr   = flag.String("udp", "", "optional UDP listen address (e.g. 127.0.0.1:11211)")
		memory    = flag.String("memory", "64MB", "memory budget (e.g. 512KB, 256MB, 2GB; 0 = unbounded)")
		protocols = flag.String("protocols", "both", "wire formats to accept: text, binary, or both")
		debugAddr = flag.String("debug-addr", "", "serve /metrics (Prometheus text) and /debug/pprof on this address (empty disables)")
	)
	flag.Parse()

	capacity, err := parseSize(*memory)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rnbmemd: %v\n", err)
		os.Exit(2)
	}
	store := memcache.NewStore(capacity)
	srv := memcache.NewServer(store)
	if err := srv.SetProtocols(*protocols); err != nil {
		fmt.Fprintf(os.Stderr, "rnbmemd: %v\n", err)
		os.Exit(2)
	}

	if *debugAddr != "" {
		reg := obs.NewRegistry()
		registerServerMetrics(reg, srv, store)
		srv.Recorder().RegisterMetrics(reg)
		mux := obs.NewMux(reg, nil)
		obs.HandleServerSpans(mux, srv.Recorder())
		ln, err := obs.ListenAndServe(*debugAddr, mux)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rnbmemd: debug endpoint: %v\n", err)
			os.Exit(1)
		}
		defer ln.Close()
		fmt.Printf("rnbmemd: debug endpoint on http://%s (/metrics, /debug/spans, /debug/pprof)\n", ln.Addr())
	}

	var udp *memcache.UDPServer
	if *udpAddr != "" {
		udp = memcache.NewUDPServer(srv, 0)
		go func() {
			if err := udp.ListenAndServe(*udpAddr); err != nil {
				fmt.Fprintf(os.Stderr, "rnbmemd: udp: %v\n", err)
			}
		}()
		fmt.Printf("rnbmemd: also serving UDP on %s\n", *udpAddr)
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "rnbmemd: shutting down")
		if udp != nil {
			udp.Close()
		}
		srv.Close()
	}()

	fmt.Printf("rnbmemd: serving memcached protocol on %s (memory %s)\n", *addr, *memory)
	if err := srv.ListenAndServe(*addr); err != nil {
		fmt.Fprintf(os.Stderr, "rnbmemd: %v\n", err)
		os.Exit(1)
	}
}

// registerServerMetrics exports the daemon's protocol counters and
// store gauges — the same numbers the "stats" command reports, under
// stable memd_* names.
func registerServerMetrics(reg *obs.Registry, srv *memcache.Server, store *memcache.Store) {
	st := srv.Stats()
	counter := func(name, help string, load func() uint64) {
		reg.RegisterFunc(name, help, obs.Counter, func() float64 { return float64(load()) })
	}
	counter("memd_cmd_get", "get/gets commands served.", st.CmdGet.Load)
	counter("memd_cmd_set", "store commands served.", st.CmdSet.Load)
	counter("memd_get_hits", "keys found by get.", st.GetHits.Load)
	counter("memd_get_misses", "keys missed by get.", st.GetMisses.Load)
	counter("memd_transactions", "client command lines processed.", st.Transactions.Load)
	counter("memd_total_connections", "connections accepted.", st.TotalConns.Load)
	counter("memd_evictions", "items evicted by the LRU.", store.Evictions)
	reg.RegisterFunc("memd_curr_connections", "currently open connections.",
		obs.Gauge, func() float64 { return float64(st.CurrConns.Load()) })
	reg.RegisterFunc("memd_curr_items", "items currently stored.",
		obs.Gauge, func() float64 { return float64(store.Len()) })
	reg.RegisterFunc("memd_bytes", "bytes currently stored.",
		obs.Gauge, func() float64 { return float64(store.Bytes()) })
}

// parseSize parses "512KB" / "256MB" / "2GB" / plain bytes.
func parseSize(s string) (int64, error) {
	s = strings.TrimSpace(strings.ToUpper(s))
	mult := int64(1)
	for _, suffix := range []struct {
		tag string
		m   int64
	}{{"KB", 1 << 10}, {"MB", 1 << 20}, {"GB", 1 << 30}, {"B", 1}} {
		if strings.HasSuffix(s, suffix.tag) {
			mult = suffix.m
			s = strings.TrimSuffix(s, suffix.tag)
			break
		}
	}
	v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	if v < 0 {
		return 0, fmt.Errorf("negative size %d", v)
	}
	return v * mult, nil
}
