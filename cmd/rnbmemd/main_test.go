package main

import "testing"

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		err  bool
	}{
		{"0", 0, false},
		{"1024", 1024, false},
		{"512KB", 512 << 10, false},
		{"256MB", 256 << 20, false},
		{"2GB", 2 << 30, false},
		{"64mb", 64 << 20, false},
		{" 8 MB ", 8 << 20, false},
		{"10B", 10, false},
		{"-5", 0, true},
		{"abc", 0, true},
		{"12TB", 0, true}, // unknown suffix leaves "12TB"... actually TB->T parse fails
		{"", 0, true},
	}
	for _, c := range cases {
		got, err := parseSize(c.in)
		if c.err {
			if err == nil {
				t.Errorf("parseSize(%q) accepted, got %d", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseSize(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("parseSize(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}
