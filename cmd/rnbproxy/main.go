// Command rnbproxy is an RnB-aware memcached proxy: legacy clients
// speak plain memcached to it, and it replicates writes and bundles
// multi-gets across the backend tier (paper §I-C: "relatively easy to
// incorporate in existing systems" — repoint the memcached address,
// change nothing else).
//
// Usage:
//
//	rnbproxy -listen :11211 -replicas 3 10.0.0.1:11211 10.0.0.2:11211 ...
//
// or, for live membership changes without a restart:
//
//	rnbproxy -listen :11211 -replicas 3 -topology servers.conf
//
// With -topology the backend list comes from the config file (one or
// more addresses per line; '#' comments). The file is polled (interval
// set by -topology-poll) and every content change is applied as a live
// resize: new servers join and warm up, removed servers drain
// gracefully, and reads never miss mid-transition. SIGHUP forces an
// immediate re-read of the file.
//
// Backend servers should be this repository's rnbmemd (for the "setp"
// distinguished-copy pinning extension); pass -no-pin for stock
// memcached backends.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rnb"
	"rnb/internal/memcache"
	"rnb/internal/obs"
	"rnb/internal/proxy"
	"rnb/internal/topology"
)

func main() {
	var (
		listen     = flag.String("listen", "127.0.0.1:11222", "address to serve legacy clients on")
		replicas   = flag.Int("replicas", 3, "logical replication level")
		noPin      = flag.Bool("no-pin", false, "backends are stock memcached (no setp pinning)")
		timeout    = flag.Duration("timeout", 5*time.Second, "backend operation timeout")
		cooldown   = flag.Duration("cooldown", 10*time.Second, "circuit-breaker cooldown before a failed backend is probed (0 disables breakers)")
		threshold  = flag.Int("breaker-threshold", 1, "consecutive failures before a backend's breaker opens")
		retries    = flag.Int("retries", 1, "re-plan rounds for keys lost to a failed backend (0 disables)")
		backoff    = flag.Duration("retry-backoff", 15*time.Millisecond, "base jittered backoff between re-plan rounds")
		statsEvery = flag.Duration("stats-every", 0, "log backend breaker states at this interval (0 disables)")
		poolSize   = flag.Int("pool-size", 1, "pipelined connections per backend (1 = single-connection transport)")
		binary     = flag.Bool("binary", false, "speak the binary protocol to backends (quiet-get pipelining; implies the pooled transport)")
		debugAddr  = flag.String("debug-addr", "", "serve /metrics (Prometheus text), /debug/requests (flight recorder) and /debug/pprof on this address (empty disables)")
		slowLog    = flag.Duration("slow-log", 0, "log requests slower than this threshold (0 disables)")
		ringSize   = flag.Int("flight-recorder", 0, "flight-recorder capacity in request spans (0 = default 256)")
		topoFile   = flag.String("topology", "", "backend list config file; watched for changes and re-read on SIGHUP (replaces positional backends)")
		topoPoll   = flag.Duration("topology-poll", 2*time.Second, "poll interval for the -topology file")

		trace       = flag.Bool("trace", false, "distributed tracing: propagate trace contexts to rnbmemd backends and keep tail-sampled traces (/debug/traces on -debug-addr)")
		traceSample = flag.Int("trace-sample", 1, "head-sampling rate: every Nth multi-get starts a trace (with -trace)")
		traceSlow   = flag.Duration("trace-slow", 10*time.Millisecond, "tail-sampling slow threshold: traces at least this slow are always kept (with -trace)")
		traceDump   = flag.String("trace-dump", "", "write kept traces as Chrome trace-event JSON to this file on shutdown (with -trace; load in Perfetto)")

		adaptive    = flag.Bool("adaptive", false, "adaptive hot-key replication: boost replication of keys that dominate recent traffic")
		maxBoost    = flag.Int("adaptive-max-boost", 2, "extra replicas a hot key can earn (with -adaptive)")
		promoteFrac = flag.Float64("adaptive-promote-frac", 0.002, "fraction of epoch traffic a key needs to be promoted (with -adaptive)")
		epochOps    = flag.Int("adaptive-epoch-ops", 50000, "observed keys per heat epoch (with -adaptive)")
	)
	flag.Parse()
	backends := flag.Args()
	if *topoFile != "" {
		if len(backends) != 0 {
			fmt.Fprintln(os.Stderr, "rnbproxy: -topology and positional backends are mutually exclusive")
			os.Exit(2)
		}
		list, err := topology.LoadFile(*topoFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rnbproxy: %v\n", err)
			os.Exit(2)
		}
		backends = list
	} else if len(backends) == 0 {
		fmt.Fprintln(os.Stderr, "rnbproxy: need at least one backend address (or -topology <file>)")
		os.Exit(2)
	} else {
		// Validate positional backends the same way the config file is:
		// trimmed, no empties, no duplicates.
		list, err := topology.ParseServerList(backends)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rnbproxy: %v\n", err)
			os.Exit(2)
		}
		backends = list
	}

	opts := []rnb.Option{
		rnb.WithReplicas(*replicas),
		rnb.WithTimeout(*timeout),
		rnb.WithFailureCooldown(*cooldown),
		rnb.WithBreakerThreshold(*threshold),
		rnb.WithRetry(*retries, *backoff),
		rnb.WithPoolSize(*poolSize),
		rnb.WithObservability(rnb.ObsConfig{
			RingSize:      *ringSize,
			SlowThreshold: *slowLog,
		}),
	}
	if *binary {
		opts = append(opts, rnb.WithBinaryProtocol())
	}
	if *trace {
		opts = append(opts, rnb.WithTracing(rnb.TraceConfig{
			SampleEvery:   *traceSample,
			SlowThreshold: *traceSlow,
		}))
	}
	if *noPin {
		opts = append(opts, rnb.WithPinnedDistinguished(false))
	}
	if *adaptive {
		opts = append(opts, rnb.WithAdaptiveReplication(rnb.AdaptiveConfig{
			MaxBoost:    *maxBoost,
			PromoteFrac: *promoteFrac,
			EpochOps:    *epochOps,
		}))
	}
	client, err := rnb.NewClient(backends, opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rnbproxy: %v\n", err)
		os.Exit(1)
	}
	defer client.Close()

	if *topoFile != "" {
		// Membership changes arrive one at a time through the watcher's
		// callback goroutine, which matches SetServers' single-caller
		// contract. SIGHUP forces a re-read even if the content is
		// unchanged (a no-op resize).
		watcher, err := topology.Watch(*topoFile, topology.WatchConfig{
			Interval: *topoPoll,
			OnChange: func(list []string) {
				if err := client.SetServers(list); err != nil {
					fmt.Fprintf(os.Stderr, "rnbproxy: topology reload: %v\n", err)
					return
				}
				fmt.Fprintf(os.Stderr, "rnbproxy: topology reloaded: %d backends, epoch %d\n",
					len(list), client.Epoch())
			},
			OnError: func(err error) {
				fmt.Fprintf(os.Stderr, "rnbproxy: topology watch: %v\n", err)
			},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "rnbproxy: %v\n", err)
			os.Exit(1)
		}
		defer watcher.Close()
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				fmt.Fprintln(os.Stderr, "rnbproxy: SIGHUP, re-reading topology")
				watcher.Reload()
			}
		}()
	}

	pxy := proxy.New(client)
	srv := memcache.NewServerBackend(pxy)
	if *debugAddr != "" {
		reg := obs.NewRegistry()
		pxy.RegisterMetrics(reg)
		srv.Recorder().RegisterMetrics(reg)
		mux := obs.NewMux(reg, client.Tracer())
		endpoints := "/metrics, /debug/requests, /debug/pprof"
		if buf := client.TraceBuffer(); buf != nil {
			obs.HandleTraces(mux, buf)
			obs.HandleServerSpans(mux, srv.Recorder())
			endpoints += ", /debug/traces, /debug/trace/<id>, /debug/spans"
		}
		ln, err := obs.ListenAndServe(*debugAddr, mux)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rnbproxy: debug endpoint: %v\n", err)
			os.Exit(1)
		}
		defer ln.Close()
		fmt.Printf("rnbproxy: debug endpoint on http://%s (%s)\n", ln.Addr(), endpoints)
	}
	if *statsEvery > 0 {
		go func() {
			tick := time.NewTicker(*statsEvery)
			defer tick.Stop()
			for range tick.C {
				line := ""
				for _, st := range client.ServerStates() {
					line += fmt.Sprintf(" %s=%s", st.Addr, st.State)
					if st.ConsecutiveFailures > 0 {
						line += fmt.Sprintf("(%d)", st.ConsecutiveFailures)
					}
				}
				status := fmt.Sprintf("rnbproxy: backends%s; %s", line, client.Resilience())
				if *topoFile != "" {
					status += "; " + client.Topology().String()
				}
				if client.AdaptiveEnabled() {
					status += "; " + client.Hotspot().String()
				}
				if g := client.PoolGauges(); g != nil {
					status += "; " + g.String()
				}
				fmt.Fprintln(os.Stderr, status)
			}
		}()
	}
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "rnbproxy: shutting down")
		srv.Close()
	}()

	fmt.Printf("rnbproxy: %s -> %d backends, %d replicas\n", *listen, len(backends), *replicas)
	if err := srv.ListenAndServe(*listen); err != nil {
		fmt.Fprintf(os.Stderr, "rnbproxy: %v\n", err)
		os.Exit(1)
	}
	if *traceDump != "" {
		if buf := client.TraceBuffer(); buf != nil {
			if err := dumpTraces(*traceDump, buf); err != nil {
				fmt.Fprintf(os.Stderr, "rnbproxy: trace dump: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "rnbproxy: wrote kept traces to %s\n", *traceDump)
		}
	}
}

// dumpTraces writes every kept trace as one Chrome trace-event JSON
// file — drag it into Perfetto (ui.perfetto.dev) to see the causal
// timeline.
func dumpTraces(path string, buf *obs.TraceBuffer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteTraceEvents(f, buf.Traces()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
