// Command rnbsim regenerates the RnB paper's simulation figures.
//
// Usage:
//
//	rnbsim [flags] <experiment>...
//	rnbsim -list
//	rnbsim all
//
// Experiments are the paper's figure ids: fig2, fig3, fig4, fig5,
// fig6, fig8, fig9, fig10, fig11, fig12, fig13, fig14. The defaults
// run scaled-down graphs for interactive latency; use -scale 1
// -requests 20000 for paper-sized runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"rnb/internal/sim"
	"rnb/internal/textplot"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "random seed (equal seeds give equal tables)")
		scale    = flag.Int("scale", 8, "social graph downscale factor (1 = paper-sized)")
		requests = flag.Int("requests", 4000, "measured requests per data point")
		warmup   = flag.Int("warmup", 4000, "warm-up requests per data point")
		graph    = flag.String("graph", "slashdot", "workload graph: slashdot or epinions")
		live     = flag.Bool("live", false, "calibrate the throughput model from a live micro-benchmark (fig3)")
		skew     = flag.Float64("skew", 0, "pin the Zipf exponent for skew-parameterized experiments (0 = sweep defaults)")
		jsonOut  = flag.String("json", "", "also write result tables as JSON to this file")
		list     = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *scale < 1 {
		fmt.Fprintf(os.Stderr, "rnbsim: -scale must be >= 1 (got %d)\n", *scale)
		os.Exit(2)
	}
	if *requests < 1 {
		fmt.Fprintf(os.Stderr, "rnbsim: -requests must be >= 1 (got %d)\n", *requests)
		os.Exit(2)
	}
	if *warmup < 0 {
		fmt.Fprintf(os.Stderr, "rnbsim: -warmup must be >= 0 (got %d)\n", *warmup)
		os.Exit(2)
	}
	if *list {
		for _, id := range sim.IDs() {
			fmt.Println(id)
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: rnbsim [flags] <experiment>... (or: rnbsim -list)")
		os.Exit(2)
	}
	if len(args) == 1 && args[0] == "all" {
		args = sim.IDs()
	}
	cfg := sim.Config{
		Seed:          *seed,
		Scale:         *scale,
		Requests:      *requests,
		Warmup:        *warmup,
		Graph:         *graph,
		CalibrateLive: *live,
		Skew:          *skew,
	}
	var tables []sim.Table
	for _, id := range args {
		start := time.Now()
		table, err := sim.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rnbsim: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Print(textplot.Render(table))
		fmt.Printf("  (%s in %.1fs)\n\n", id, time.Since(start).Seconds())
		tables = append(tables, table)
	}
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, cfg, tables); err != nil {
			fmt.Fprintf(os.Stderr, "rnbsim: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeJSON records the run's configuration and result tables —
// machine-readable benchmark output (e.g. `make bench-skew` producing
// BENCH_hotspot.json).
func writeJSON(path string, cfg sim.Config, tables []sim.Table) error {
	blob, err := json.MarshalIndent(struct {
		GeneratedBy string      `json:"generated_by"`
		Config      sim.Config  `json:"config"`
		Tables      []sim.Table `json:"tables"`
	}{"rnbsim", cfg, tables}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}
