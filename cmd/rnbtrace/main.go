// Command rnbtrace records, inspects, and replays request traces.
//
// The paper could not obtain real memcached traces (§III-B); this tool
// makes the workload boundary explicit. Record a synthetic social
// trace once, then replay the *same byte-identical stream* against any
// cluster configuration for clean comparisons — or bring your own
// production trace in the same one-line-per-request text format.
//
// Usage:
//
//	rnbtrace record -graph slashdot -n 20000 -out trace.txt
//	rnbtrace info trace.txt
//	rnbtrace replay -servers 16 -replicas 4 -memory 2.0 trace.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"rnb/internal/cluster"
	"rnb/internal/core"
	"rnb/internal/graph"
	"rnb/internal/trace"
	"rnb/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: rnbtrace record|info|replay [flags] [file]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rnbtrace: %v\n", err)
	os.Exit(1)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	graphName := fs.String("graph", "slashdot", "workload graph: slashdot or epinions")
	scale := fs.Int("scale", 8, "graph downscale factor")
	seed := fs.Int64("seed", 1, "random seed")
	n := fs.Int("n", 10000, "number of requests")
	merge := fs.Int("merge", 1, "merge window (>=1)")
	limit := fs.Float64("limit", 1.0, "LIMIT fraction in (0,1]")
	out := fs.String("out", "trace.txt", "output file")
	fs.Parse(args)

	var g *graph.Graph
	switch *graphName {
	case "slashdot":
		g = graph.ScaledSlashdotLike(*seed, *scale)
	case "epinions":
		g = graph.ScaledEpinionsLike(*seed, *scale)
	default:
		fatal(fmt.Errorf("unknown graph %q", *graphName))
	}
	var gen workload.Generator = workload.NewEgoGenerator(g, *seed+1)
	if *merge > 1 {
		gen = workload.NewMergeGenerator(gen, *merge)
	}
	if *limit < 1.0 {
		gen = workload.NewLimitGenerator(gen, *limit)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := trace.Record(gen, *n, f); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("recorded %d requests from %s to %s\n", *n, g.Name(), *out)
}

func loadTrace(path string) []workload.Request {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	reqs, err := trace.LoadAll(f)
	if err != nil {
		fatal(err)
	}
	return reqs
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	st := trace.Summarize(loadTrace(fs.Arg(0)))
	fmt.Printf("requests:        %d\n", st.Requests)
	fmt.Printf("item references: %d (%d distinct)\n", st.Items, st.DistinctItems)
	fmt.Printf("request size:    min %d, mean %.2f, max %d\n", st.MinSize, st.MeanSize, st.MaxSize)
	fmt.Printf("LIMIT requests:  %d\n", st.LimitRequests)
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	servers := fs.Int("servers", 16, "number of servers")
	replicas := fs.Int("replicas", 4, "logical replication level")
	memory := fs.Float64("memory", 2.0, "memory factor (0 = unlimited)")
	warmupFrac := fs.Float64("warmup", 0.5, "fraction of the trace used as warm-up")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	reqs := loadTrace(fs.Arg(0))
	st := trace.Summarize(reqs)

	c, err := cluster.New(cluster.Config{
		Servers:      *servers,
		Items:        int(st.MaxItem) + 1, // cluster pins distinguished copies for ids 0..Items-1
		Replicas:     *replicas,
		MemoryFactor: *memory,
		Planner:      core.Options{Hitchhike: true, DistinguishedSingles: true},
	})
	if err != nil {
		fatal(err)
	}
	warm := int(float64(len(reqs)) * *warmupFrac)
	rep := trace.NewReplay(reqs, false)
	if err := c.Run(rep, warm); err != nil {
		fatal(err)
	}
	c.ResetTally()
	if err := c.Run(rep, len(reqs)-warm); err != nil {
		fatal(err)
	}
	t := c.Tally()
	fmt.Printf("replayed %d requests (%d warm-up) on %d servers, %d replicas, memory %.2fx\n",
		len(reqs), warm, *servers, *replicas, *memory)
	fmt.Printf("TPR:        %.3f (TPRPS %.4f)\n", t.TPR(), t.TPRPS(*servers))
	fmt.Printf("miss rate:  %.4f  round-2 txns/request: %.3f\n",
		t.MissRate(), float64(t.Round2)/float64(t.Requests))
	fmt.Printf("txn sizes:  %s\n", t.TxnSize.String())
}
