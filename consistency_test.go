package rnb

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"rnb/internal/memcache"
)

// TestConcurrentReadWriteConsistency hammers a small key space with
// concurrent Sets (monotonically versioned values) and GetMultis, and
// checks the paper's §IV claim in executable form: RnB's consistency
// is "no worse than memcached" — a read never returns a value that was
// never written, and per-key versions never run backwards by more than
// the in-flight write window under single-writer-per-key load.
func TestConcurrentReadWriteConsistency(t *testing.T) {
	cl, _ := newTestClient(t, 4, WithReplicas(3))
	const keysN = 16
	ks := make([]string, keysN)
	for i := range ks {
		ks[i] = fmt.Sprintf("cons:%02d", i)
		if err := cl.Set(&Item{Key: ks[i], Value: []byte("v0")}); err != nil {
			t.Fatal(err)
		}
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, keysN+4)

	// One writer per key: version counter in the value.
	for i := 0; i < keysN; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for v := 1; !stop.Load(); v++ {
				it := &Item{Key: ks[i], Value: []byte(fmt.Sprintf("v%d", v))}
				if err := cl.Set(it); err != nil {
					errCh <- err
					return
				}
			}
		}(i)
	}
	// Readers: multi-gets over all keys; every value must parse as some
	// written version.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 50; n++ {
				items, _, err := cl.GetMulti(ks)
				if err != nil {
					errCh <- err
					return
				}
				for k, it := range items {
					var v int
					if _, err := fmt.Sscanf(string(it.Value), "v%d", &v); err != nil {
						errCh <- fmt.Errorf("torn value %q for %s", it.Value, k)
						return
					}
				}
			}
			stop.Store(true)
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestUpdateCASLostRaces runs competing read-modify-write cycles with
// UpdateCAS and verifies exactly one winner per round.
func TestUpdateCASLostRaces(t *testing.T) {
	cl, _ := newTestClient(t, 4, WithReplicas(3))
	const key = "counter"
	if err := cl.Set(&Item{Key: key, Value: []byte("start")}); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 10; round++ {
		items, err := cl.GetsDistinguished([]string{key})
		if err != nil || items[key] == nil {
			t.Fatalf("gets: %v %v", items, err)
		}
		base := *items[key]

		var wins atomic.Int32
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				it := base // copy; same CAS token
				it.Value = []byte(fmt.Sprintf("round%d-writer%d", round, w))
				switch err := cl.UpdateCAS(&it); {
				case err == nil:
					wins.Add(1)
				case errors.Is(err, memcache.ErrCASConflict):
				default:
					t.Errorf("unexpected UpdateCAS error: %v", err)
				}
			}(w)
		}
		wg.Wait()
		if got := wins.Load(); got != 1 {
			t.Fatalf("round %d: %d CAS winners, want exactly 1", round, got)
		}
	}
}
