package rnb

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rnb/internal/core"
	"rnb/internal/hashring"
	"rnb/internal/hotspot"
	"rnb/internal/memcache"
	"rnb/internal/metrics"
	"rnb/internal/topology"
)

// This file is the dynamic-topology layer: servers can be added to and
// drained from a live Client with zero read downtime.
//
// The request paths never lock. Every request loads one immutable
// *tier snapshot (an atomic pointer) and works entirely against it: the
// tier's placement, planner, and slot table cannot change under a
// request. Membership changes build a new tier and swap the pointer.
//
// Correctness across the swap rests on the superset invariant
// (topology.Union): while any epoch is inside its transition window,
// the tier's placement is the union of all windowed epochs, oldest
// first — so a plan built against the previous tier only ever names
// servers the new tier still reaches, and entry 0 (the replica the
// round-2 recovery walk trusts) stays the oldest epoch's pinned
// distinguished copy. Writes fan out over the same union, so no
// epoch's replica can serve stale data.
//
// Slots — the per-server connection, breaker, and in-flight counter —
// are index-stable: a server keeps its slot index for its whole life,
// and a server that leaves and later rejoins revives its old index
// (mirroring hashring.Ring). Tiers share slot pointers; each tier owns
// only the slice header, so a rejoin replacing a slot is invisible to
// in-flight requests holding the old tier.

// errServerGone is returned by slot.do for a server whose drain has
// completed. Plans stop naming such servers as soon as the tier swaps;
// only requests planned against an older tier can see it, and they
// recover through the ordinary failure path (breaker + re-plan).
var errServerGone = errors.New("rnb: server has left the tier")

// slot is one server's long-lived request-path state. A slot is
// created when its server joins and closed when its drain completes;
// everything in between is lock-free atomics.
type slot struct {
	addr    string
	conn    memcache.Conn
	breaker *breaker
	// inflight counts operations currently inside conn. The janitor
	// closes a draining slot's connection only once this reaches zero
	// (or the drain timeout forces it), so pipelined requests already
	// on the wire are never cut.
	inflight atomic.Int64
	// closed flips once, just before the connection is torn down. New
	// operations are refused from then on.
	closed atomic.Bool
}

// do runs one operation against the slot's connection, tracked by the
// in-flight counter. The closed check and the increment race benignly
// with the janitor: at worst an operation reaches a just-closed
// connection and gets its error, which feeds the breaker like any
// other network failure.
func (s *slot) do(fn func(memcache.Conn) error) error {
	if s.closed.Load() {
		return errServerGone
	}
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	return fn(s.conn)
}

// tier is one immutable routing snapshot: everything a request needs,
// captured at a single membership epoch.
//
//rnb:frozen-after-publish
type tier struct {
	// epoch is the membership state machine's epoch this tier reflects.
	epoch uint64
	// view is the membership roster at that epoch.
	view topology.View
	// placement is what the planner consults: the newest epoch's
	// baseline, union-layered during a transition, adaptive-wrapped
	// when hot-key replication is on.
	placement hashring.Placement
	// union is non-nil while a transition window is open (placement's
	// baseline is then a multi-epoch union).
	union *topology.Union
	// newest is the newest epoch's baseline placement — the tier's
	// target layout. Writes pin its distinguished copies during a
	// transition so the never-miss guarantee survives the cutover.
	newest hashring.Placement
	// adaptive is the snapshot's bound view of the hot-key controller
	// (nil when adaptive replication is off). It shares the client-wide
	// heat table but is fixed to this tier's baseline, so its replica
	// indices never escape this tier's slot table even after newer
	// epochs grow the server space.
	adaptive *hotspot.Bound
	// planner bundles multi-gets against placement.
	planner *core.Planner
	// slots is the index-stable slot table (shared pointers, private
	// slice header). Indices come from placements; closed slots are
	// drained-and-gone servers still referenced by older epochs.
	slots []*slot
}

// replicas returns the key's replica servers under this tier, oldest
// distinguished copy first.
func (t *tier) replicas(key string) []int {
	return t.placement.Replicas(keyID(key), nil)
}

// isDown reports whether reads should route around server s.
func (t *tier) isDown(s int) bool {
	return !t.slots[s].breaker.available()
}

// epochSnap is one membership epoch still inside its transition
// window: a private ring clone and the placement over it.
type epochSnap struct {
	ring *hashring.Ring
	plc  hashring.Placement
	// superseded is when a newer epoch replaced this one (zero while
	// newest). The epoch retires transitionWindow after that.
	superseded time.Time
}

func (e *epochSnap) has(addr string) bool {
	for _, name := range e.ring.Servers() {
		if name == addr {
			return true
		}
	}
	return false
}

// drainEntry tracks one departing server until its connection can be
// closed.
type drainEntry struct {
	slot *slot
	addr string
	// forceAt is the drain deadline, set once the server has left
	// every windowed epoch; past it the connection is closed even with
	// requests still in flight.
	forceAt time.Time
}

// janitorInterval is how often the background janitor retires expired
// epochs and completes drains.
const janitorInterval = 50 * time.Millisecond

// maxHotNames bounds the id -> key-name map kept for warm handoff.
const maxHotNames = 1024

// hotNames remembers the string names of currently boosted keys.
// The hotspot tracker works in hashed ids; prewarming a new owner
// needs the actual key to fetch and store, so the client records the
// mapping as boosted keys flow through reads.
type hotNames struct {
	mu sync.Mutex
	m  map[uint64]string
}

func (h *hotNames) record(id uint64, key string) {
	h.mu.Lock()
	if h.m == nil {
		h.m = make(map[uint64]string)
	}
	if _, ok := h.m[id]; ok || len(h.m) < maxHotNames {
		h.m[id] = key
	}
	h.mu.Unlock()
}

func (h *hotNames) snapshot() map[uint64]string {
	h.mu.Lock()
	out := make(map[uint64]string, len(h.m))
	for id, key := range h.m {
		out[id] = key
	}
	h.mu.Unlock()
	return out
}

// prune drops entries whose keys are no longer boosted.
func (h *hotNames) prune(stillHot func(uint64) bool) {
	h.mu.Lock()
	for id := range h.m {
		if !stillHot(id) {
			delete(h.m, id)
		}
	}
	h.mu.Unlock()
}

// WithTransitionWindow sets how long a superseded membership epoch
// stays layered into the read/write placement union (default 5s).
// Within the window, reads consult both the old and the new layout, so
// no multi-get misses because a resize moved its keys; the window
// should cover a client's longest in-flight request plus the time
// write-back needs to warm the new owners. Shorter windows cut over
// faster but lean harder on the loader for moved cold keys.
func WithTransitionWindow(d time.Duration) Option {
	return func(c *clientConfig) { c.transitionWindow = d }
}

// WithDrainTimeout bounds how long a departing server's connection may
// wait for its in-flight requests after the server has left every
// windowed epoch (default 5s). Past the timeout the connection is
// closed anyway; the affected requests fail into the ordinary
// breaker/re-plan recovery.
func WithDrainTimeout(d time.Duration) Option {
	return func(c *clientConfig) { c.drainTimeout = d }
}

// ensureJanitorLocked starts the background janitor on the first
// membership change (static clients never pay the goroutine). Caller
// holds topoMu.
func (c *Client) ensureJanitorLocked() {
	if c.janitorOn {
		return
	}
	c.janitorOn = true
	c.wg.Add(1)
	go c.janitor()
}

func (c *Client) janitor() {
	defer c.wg.Done()
	tick := time.NewTicker(janitorInterval)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case now := <-tick.C:
			c.janitorTick(now)
		}
	}
}

// janitorTick retires epochs whose transition window has passed,
// completes drains whose servers are out of every remaining epoch, and
// prunes the hot-name map.
func (c *Client) janitorTick(now time.Time) {
	c.topoMu.Lock()
	changed := false
	for len(c.epochs) > 1 && now.Sub(c.epochs[0].superseded) >= c.cfg.transitionWindow {
		c.epochs = c.epochs[1:]
		c.topo.EpochsRetired.Add(1)
		changed = true
	}
	kept := c.draining[:0]
	for _, d := range c.draining {
		if c.anyEpochHasLocked(d.addr) {
			kept = append(kept, d)
			continue
		}
		if d.forceAt.IsZero() {
			d.forceAt = now.Add(c.cfg.drainTimeout)
		}
		inflight := d.slot.inflight.Load()
		if inflight > 0 && now.Before(d.forceAt) {
			kept = append(kept, d)
			continue
		}
		c.closeSlotLocked(d.slot)
		c.machine.Finish(d.addr)
		if inflight > 0 {
			c.topo.DrainsForced.Add(1)
		} else {
			c.topo.DrainsCompleted.Add(1)
		}
		changed = true
	}
	c.draining = kept
	if changed {
		c.rebuildLocked()
	}
	c.topoMu.Unlock()

	if c.adaptive != nil {
		c.hot.prune(func(id uint64) bool { return c.adaptive.Boost(id) > 0 })
	}
}

func (c *Client) anyEpochHasLocked(addr string) bool {
	for _, e := range c.epochs {
		if e.has(addr) {
			return true
		}
	}
	return false
}

// closeSlotLocked tears a slot down exactly once, folding its
// transaction count into the client-lifetime total so Transactions()
// stays monotonic across membership changes. Caller holds topoMu.
func (c *Client) closeSlotLocked(s *slot) {
	if s.closed.Swap(true) {
		return
	}
	c.closedTxns.Add(s.conn.Transactions())
	s.conn.Close()
}

// pushEpochLocked opens a new membership epoch: the previous newest
// epoch enters its transition window and a fresh ring clone becomes
// the target layout. Caller holds topoMu.
func (c *Client) pushEpochLocked() {
	if n := len(c.epochs); n > 0 {
		c.epochs[n-1].superseded = time.Now()
	}
	clone := c.master.Clone()
	c.epochs = append(c.epochs, &epochSnap{ring: clone, plc: hashring.NewRCHPlacement(clone, c.cfg.replicas)})
	c.rebuildLocked()
}

// rebuildLocked publishes a fresh tier snapshot from the current
// epochs and slot table. Caller holds topoMu.
func (c *Client) rebuildLocked() {
	eps := make([]hashring.Placement, len(c.epochs))
	for i, e := range c.epochs {
		eps[i] = e.plc
	}
	var (
		base  hashring.Placement
		union *topology.Union
	)
	if len(eps) == 1 {
		base = eps[0]
	} else {
		union = topology.NewUnion(len(c.slots), eps...)
		base = union
	}
	placement := base
	var bound *hotspot.Bound
	if c.adaptive != nil {
		// Each tier binds the shared controller to its own baseline:
		// heat flows through, but this snapshot's replica indices are
		// fixed to its slot table forever (older snapshots must not see
		// indices a later epoch allocated).
		bound = c.adaptive.Bind(base)
		placement = bound
	}
	t := &tier{
		epoch:     c.machine.Epoch(),
		view:      c.machine.View(),
		placement: placement,
		union:     union,
		newest:    c.epochs[len(c.epochs)-1].plc,
		adaptive:  bound,
		planner: core.NewPlanner(placement, core.Options{
			Hitchhike:            c.cfg.hitchhike,
			DistinguishedSingles: true,
			BalanceTieBreak:      c.cfg.balancePlan,
		}),
		slots: append([]*slot(nil), c.slots...),
	}
	c.cur.Store(t)
	c.topo.Epoch.Store(t.epoch)
}

// Topology exposes the dynamic-membership counters.
func (c *Client) Topology() *metrics.Topology { return &c.topo }

// Epoch returns the current membership epoch.
func (c *Client) Epoch() uint64 { return c.cur.Load().epoch }

// View returns the current membership roster.
func (c *Client) View() topology.View { return c.cur.Load().view }

// AddServer adds a server to the live tier with zero read downtime.
// The server is dialed, joins the membership state machine, and enters
// the placement in a new epoch; until the transition window closes,
// reads consult the union of the old and new layouts, so nothing
// misses because keys moved. With adaptive replication on, tracked hot
// keys the new server will own are copied over before the server is
// activated (warm handoff). Re-adding a server whose drain is still in
// progress is an error until the drain completes.
func (c *Client) AddServer(addr string) error {
	list, err := topology.ParseServerList([]string{addr})
	if err != nil {
		return err
	}
	addr = list[0]

	c.topoMu.Lock()
	if c.shut.Load() {
		c.topoMu.Unlock()
		return errors.New("rnb: client is closed")
	}
	// Refuse live members before dialing (Join would refuse them too,
	// but failing fast keeps the no-op error path free of network I/O).
	if mem, ok := c.machine.View().Find(addr); ok && mem.State != topology.StateGone {
		c.topoMu.Unlock()
		return fmt.Errorf("rnb: add %s: server is already %s", addr, mem.State)
	}
	// Dial before any bookkeeping: a refused connection — the common
	// failure — must leave the machine and ring exactly as they were. A
	// rollback that burned a fresh index in one allocator but not the
	// other would desync machine indices from ring/slot indices for
	// every later join.
	conn, err := c.dial(addr)
	if err != nil {
		c.topoMu.Unlock()
		return fmt.Errorf("rnb: add %s: %w", addr, err)
	}
	if _, err := c.machine.Join(addr); err != nil {
		conn.Close()
		c.topoMu.Unlock()
		return err
	}
	idx, err := c.master.AddServer(addr)
	if err != nil {
		conn.Close()
		// Abort (not Drain+Finish) restores the machine exactly: a
		// member this Join created is removed outright, so its index is
		// not burned while the ring never grew.
		c.machine.Abort(addr)
		c.topoMu.Unlock()
		return fmt.Errorf("rnb: add %s: %w", addr, err)
	}
	if mem, ok := c.machine.View().Find(addr); !ok || mem.Index != idx {
		// Can't happen: both allocators append (and revive) in lockstep.
		// Refuse to publish a tier whose slot table would be misindexed.
		conn.Close()
		c.master.RemoveServer(addr)
		c.machine.Abort(addr)
		c.topoMu.Unlock()
		return fmt.Errorf("rnb: add %s: machine/ring index mismatch", addr)
	}
	s := &slot{addr: addr, conn: conn, breaker: newBreaker(c.cfg.breakerThreshold, c.cfg.cooldown, c.onBreaker)}
	if idx < len(c.slots) {
		// Revived index: the old slot was closed when the drain
		// finished (Join refuses draining members), so nothing still
		// routes to it through the slot table.
		c.slots[idx] = s
		c.topo.Rejoins.Add(1)
	} else {
		c.slots = append(c.slots, s)
	}
	c.topo.Joins.Add(1)
	c.ensureJanitorLocked()
	c.pushEpochLocked()
	c.topoMu.Unlock()

	// Warm handoff, outside the lock: requests already run against the
	// union, so the copies land on a serving-but-cold member.
	c.prewarmHotKeys(idx, true)

	c.topoMu.Lock()
	if _, err := c.machine.Activate(addr); err == nil {
		c.rebuildLocked()
	}
	c.topoMu.Unlock()
	return nil
}

// RemoveServer gracefully drains a server out of the live tier. The
// server leaves the target layout immediately, but stays readable
// through the union until the transition window closes; its tracked
// hot keys are copied onto their new owners first (warm handoff, when
// adaptive replication is on). The connection is closed by the
// background janitor only after in-flight requests finish (bounded by
// WithDrainTimeout). Removing the last live server is an error.
func (c *Client) RemoveServer(addr string) error {
	list, err := topology.ParseServerList([]string{addr})
	if err != nil {
		return err
	}
	addr = list[0]

	c.topoMu.Lock()
	if c.shut.Load() {
		c.topoMu.Unlock()
		return errors.New("rnb: client is closed")
	}
	v := c.machine.View()
	mem, ok := v.Find(addr)
	if !ok || (mem.State != topology.StateActive && mem.State != topology.StateJoining) {
		c.topoMu.Unlock()
		return fmt.Errorf("rnb: remove %s: not a live member", addr)
	}
	// Draining members are still readable but already leaving — they
	// must not count toward "someone will still be here". Counting them
	// would let a 2-server tier drain both members back to back and
	// retire to an empty ring.
	if v.Count(topology.StateActive)+v.Count(topology.StateJoining) <= 1 {
		c.topoMu.Unlock()
		return fmt.Errorf("rnb: remove %s: cannot remove the last server", addr)
	}
	if _, err := c.machine.Drain(addr); err != nil {
		c.topoMu.Unlock()
		return err
	}
	if err := c.master.RemoveServer(addr); err != nil {
		c.topoMu.Unlock()
		return fmt.Errorf("rnb: remove %s: %w", addr, err)
	}
	c.topo.Drains.Add(1)
	c.draining = append(c.draining, &drainEntry{slot: c.slots[mem.Index], addr: addr})
	c.ensureJanitorLocked()
	c.pushEpochLocked()
	c.topoMu.Unlock()

	c.prewarmHotKeys(mem.Index, false)
	return nil
}

// SetServers reconciles the live tier to the target list: servers not
// yet members are added, members not in the list are drained. This is
// the config-reload entry point (file watch, SIGHUP). Additions run
// before removals so a full replacement never passes through an empty
// tier. Individual failures (for example re-adding a server whose
// drain is still in progress) are collected, not fatal; the reload is
// retried in full on the next config change. Not safe for concurrent
// use with itself — serialize reloads (the topology watcher does).
func (c *Client) SetServers(addrs []string) error {
	list, err := topology.ParseServerList(addrs)
	if err != nil {
		c.topo.ReloadErrors.Add(1)
		return err
	}
	want := make(map[string]bool, len(list))
	for _, a := range list {
		want[a] = true
	}
	c.topoMu.Lock()
	have := make(map[string]bool)
	for _, m := range c.machine.View().Members {
		if m.State == topology.StateActive || m.State == topology.StateJoining {
			have[m.Addr] = true
		}
	}
	c.topoMu.Unlock()

	var errs []error
	for _, a := range list {
		if !have[a] {
			if err := c.AddServer(a); err != nil {
				errs = append(errs, err)
			}
		}
	}
	for a := range have {
		if !want[a] {
			if err := c.RemoveServer(a); err != nil {
				errs = append(errs, err)
			}
		}
	}
	c.topo.Reloads.Add(1)
	if len(errs) > 0 {
		c.topo.ReloadErrors.Add(1)
	}
	return errors.Join(errs...)
}

// WaitSettled blocks until no transition is in progress — a single
// epoch, no draining connections, every member active or gone — or the
// timeout passes. Mainly for tests and orderly shutdown sequences.
func (c *Client) WaitSettled(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		c.topoMu.Lock()
		settled := len(c.epochs) == 1 && len(c.draining) == 0
		if settled {
			for _, m := range c.machine.View().Members {
				if m.State == topology.StateJoining || m.State == topology.StateDraining {
					settled = false
					break
				}
			}
		}
		c.topoMu.Unlock()
		if settled {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// prewarmHotKeys is the warm-handoff pass: every tracked hot key that
// slot idx is gaining (joining) or losing (draining) is fetched
// through the normal read path and copied onto its owners under the
// newest layout, so the hottest traffic never cold-starts after a
// resize. Best effort: errors are counted, never fatal. A no-op
// without adaptive replication (nothing tracks heat).
func (c *Client) prewarmHotKeys(idx int, joining bool) {
	if c.adaptive == nil {
		return
	}
	t := c.cur.Load()
	for id, key := range c.hot.snapshot() {
		newSet := t.newest.Replicas(id, nil)
		var targets []int
		if joining {
			if !containsServer(newSet, idx) {
				continue
			}
			targets = []int{idx}
		} else {
			if !containsServer(t.placement.Replicas(id, nil), idx) {
				continue
			}
			for _, s := range newSet {
				if s != idx {
					targets = append(targets, s)
				}
			}
		}
		it, err := c.Get(key)
		if err != nil {
			if !errors.Is(err, ErrCacheMiss) {
				c.topo.PrewarmErrors.Add(1)
			}
			continue
		}
		for _, dst := range targets {
			pin := c.cfg.pinDistinguished && dst == newSet[0]
			err := t.slots[dst].do(func(conn memcache.Conn) error {
				if pin {
					return conn.SetPinned(it)
				}
				return conn.Set(it)
			})
			if err != nil && !errors.Is(err, memcache.ErrNotStored) {
				c.topo.PrewarmErrors.Add(1)
				continue
			}
			c.topo.PrewarmKeys.Add(1)
		}
	}
}
