package rnb_test

import (
	"fmt"
	"log"
	"time"

	"rnb"
)

// The examples below are compiled (not executed) documentation: they
// assume a running memcached-protocol tier, e.g. several cmd/rnbmemd
// processes.

func ExampleNewClient() {
	client, err := rnb.NewClient(
		[]string{"10.0.0.1:11211", "10.0.0.2:11211", "10.0.0.3:11211"},
		rnb.WithReplicas(3),
		rnb.WithTimeout(2*time.Second),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	if err := client.Set(&rnb.Item{Key: "user:42:status", Value: []byte("hello")}); err != nil {
		log.Fatal(err)
	}
	it, err := client.Get("user:42:status")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(it.Value))
}

func ExampleClient_GetMulti() {
	client, err := rnb.NewClient([]string{"10.0.0.1:11211", "10.0.0.2:11211"})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	keys := []string{"friend:1:status", "friend:2:status", "friend:3:status"}
	items, stats, err := client.GetMulti(keys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d items in %d transactions (%d hitchhikers)\n",
		len(items), stats.Transactions, stats.Hitchhikers)
}

func ExampleClient_GetMultiLimit() {
	client, err := rnb.NewClient([]string{"10.0.0.1:11211", "10.0.0.2:11211"})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// "Fetch at least 90 of these 100 candidate posts" — the planner
	// skips the stragglers that would each cost an extra transaction.
	keys := make([]string, 100)
	for i := range keys {
		keys[i] = fmt.Sprintf("post:%04d", i)
	}
	items, stats, err := client.GetMultiLimit(keys, 90)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d items in %d transactions\n", len(items), stats.Transactions)
}

func ExampleClient_NewBatcher() {
	client, err := rnb.NewClient([]string{"10.0.0.1:11211"})
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// Merge concurrent requests arriving within 500µs (or 16 requests,
	// whichever first) into single bundled fetches.
	batcher := client.NewBatcher(16, 500*time.Microsecond)
	defer batcher.Close()

	items, _, err := batcher.GetMulti([]string{"a", "b"})
	if err != nil {
		log.Fatal(err)
	}
	_ = items
}

func ExampleWithLoader() {
	loadFromDB := func(keys []string) (map[string][]byte, error) {
		out := make(map[string][]byte, len(keys))
		for _, k := range keys {
			out[k] = []byte("row for " + k) // SELECT ... WHERE key IN (...)
		}
		return out, nil
	}
	client, err := rnb.NewClient([]string{"10.0.0.1:11211"}, rnb.WithLoader(loadFromDB))
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// Keys missing from the whole cache tier are fetched through the
	// loader and written back — classic cache-aside, RnB-shaped.
	items, stats, err := client.GetMulti([]string{"maybe-cached"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(items), stats.Loaded)
}
