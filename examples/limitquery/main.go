// Limitquery: "fetch me at least X of these items" (paper §III-F).
// Social and search feeds rarely need *every* candidate item; RnB
// exploits that slack by letting the greedy bundler stop adding
// servers once enough items are covered, skipping exactly the items
// that would cost extra transactions.
//
// Run with:
//
//	go run ./examples/limitquery
package main

import (
	"fmt"
	"log"

	"rnb/internal/core"
	"rnb/internal/hashring"
	"rnb/internal/workload"
)

func main() {
	const (
		servers  = 32
		items    = 100
		universe = 100000
		trials   = 2000
	)

	fmt.Printf("requests of %d random items over %d servers, %d trials each\n\n",
		items, servers, trials)
	fmt.Printf("%-12s %10s %10s %10s %10s\n",
		"replicas", "fetch 100%", "fetch 95%", "fetch 90%", "fetch 50%")

	for _, replicas := range []int{1, 2, 3, 5} {
		placement := hashring.NewMultiHashPlacement(servers, replicas, 1)
		planner := core.NewPlanner(placement, core.Options{})
		fmt.Printf("%-12d", replicas)
		for _, frac := range []float64{1.00, 0.95, 0.90, 0.50} {
			gen := workload.NewUniformGenerator(universe, items, int64(replicas*1000)+int64(frac*100))
			total := 0
			for i := 0; i < trials; i++ {
				req := workload.WithLimit(gen.Next(), frac)
				plan, err := planner.Build(req.Items, req.Target)
				if err != nil {
					log.Fatal(err)
				}
				if plan.Assigned < req.Target {
					log.Fatalf("plan covered %d < target %d", plan.Assigned, req.Target)
				}
				total += plan.NumTransactions()
			}
			fmt.Printf(" %10.2f", float64(total)/float64(trials))
		}
		fmt.Println()
	}

	fmt.Println("\nReading across a row: giving up 5-10% of the items saves real")
	fmt.Println("transactions even without replication. Reading down a column:")
	fmt.Println("replication multiplies the effect — 5 replicas at a 90% target cut")
	fmt.Println("transactions to roughly a third of the single-copy cost (fig. 12).")
}
