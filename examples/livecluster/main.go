// Livecluster: RnB against real, memory-constrained memcached servers.
//
// Eight in-process servers get only ~1.5x the memory one full copy of
// the data needs, while the client declares 3 logical replicas — the
// paper's *overbooking* (§III-C-1). Cold replicas fall out of the
// server LRUs; the client recovers via bundled second-round fetches to
// distinguished copies and writes the items back where the planner
// wants them. After a warm-up, the physical layout has adapted to the
// workload and multi-gets run at RnB efficiency.
//
// Run with:
//
//	go run ./examples/livecluster
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net"

	"rnb"
	"rnb/internal/memcache"
)

const (
	numServers = 8
	numKeys    = 4000
	valueSize  = 64
	replicas   = 3
	reqSize    = 25
	warmups    = 800
	measured   = 400
)

func main() {
	// Size each server so the cluster holds ~1.5 copies of the data.
	perItem := int64(valueSize + 16 + 56) // value + key + entry overhead
	capacity := perItem * numKeys * 3 / 2 / numServers

	var addrs []string
	var servers []*memcache.Server
	for i := 0; i < numServers; i++ {
		srv := memcache.NewServer(memcache.NewStore(capacity))
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go srv.Serve(ln)
		defer srv.Close()
		addrs = append(addrs, ln.Addr().String())
		servers = append(servers, srv)
	}

	client, err := rnb.NewClient(addrs, rnb.WithReplicas(replicas))
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	fmt.Printf("%d servers, %d keys, %d declared replicas, memory for ~1.5 copies\n",
		numServers, numKeys, replicas)

	value := make([]byte, valueSize)
	for i := range value {
		value[i] = byte('a' + i%26)
	}
	for i := 0; i < numKeys; i++ {
		if err := client.Set(&rnb.Item{Key: key(i), Value: value}); err != nil {
			log.Fatal(err)
		}
	}

	// A zipf-ish focus set gives requests the locality real feeds have.
	rng := rand.New(rand.NewSource(99))
	zipf := rand.NewZipf(rng, 1.3, 8, numKeys-1)
	makeRequest := func() []string {
		seen := map[string]bool{}
		keys := make([]string, 0, reqSize)
		for len(keys) < reqSize {
			k := key(int(zipf.Uint64()))
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
		return keys
	}

	run := func(n int) (txns, round2, itemsGot int) {
		for i := 0; i < n; i++ {
			items, stats, err := client.GetMulti(makeRequest())
			if err != nil {
				log.Fatal(err)
			}
			txns += stats.Transactions
			round2 += stats.Round2
			itemsGot += len(items)
		}
		return
	}

	fmt.Println("\nwarming up (LRUs shed cold replicas, write-back installs hot ones)...")
	wtxns, wround2, _ := run(warmups)
	fmt.Printf("  warm-up: %.2f transactions/request, %.3f round-2/request\n",
		float64(wtxns)/warmups, float64(wround2)/warmups)

	txns, round2, items := run(measured)
	fmt.Printf("\nmeasured over %d requests of %d items:\n", measured, reqSize)
	fmt.Printf("  transactions/request: %.2f (vs %.2f for no-replication placement)\n",
		float64(txns)/measured, expectedSingleCopyTPR())
	fmt.Printf("  round-2 fetches/request: %.3f\n", float64(round2)/measured)
	fmt.Printf("  items fetched: %d/%d\n", items, measured*reqSize)

	var evictions uint64
	for _, srv := range servers {
		evictions += srv.Store().Evictions()
	}
	fmt.Printf("  server LRU evictions during the run: %d (overbooking at work)\n", evictions)
}

func key(i int) string { return fmt.Sprintf("item:%05d", i) }

// expectedSingleCopyTPR is the urn-model expectation N(1-(1-1/N)^M) for
// comparison against the measured RnB figure.
func expectedSingleCopyTPR() float64 {
	n, m := float64(numServers), float64(reqSize)
	p := 1.0
	for i := 0; i < reqSize; i++ {
		p *= 1 - 1/n
	}
	_ = m
	return n * (1 - p)
}
