// Proxydemo: adopting RnB without changing application code.
//
// A "legacy application" (a plain memcached client) first talks to a
// single cache server directly, then to an RnB proxy fronting an
// 8-server tier with 3-way replication. Same client code, same
// protocol — but multi-gets now cost a fraction of the backend
// transactions, as the proxy's stats show.
//
// Run with:
//
//	go run ./examples/proxydemo
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"rnb"
	"rnb/internal/memcache"
	"rnb/internal/proxy"
)

func startServer() (*memcache.Server, string) {
	srv := memcache.NewServer(memcache.NewStore(0))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	return srv, ln.Addr().String()
}

func main() {
	// The backend tier: eight RnB-memcached servers.
	var addrs []string
	var servers []*memcache.Server
	for i := 0; i < 8; i++ {
		srv, addr := startServer()
		defer srv.Close()
		addrs = append(addrs, addr)
		servers = append(servers, srv)
	}

	// The proxy: replicates writes 3 ways, bundles reads.
	client, err := rnb.NewClient(addrs, rnb.WithReplicas(3))
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	front := memcache.NewServerBackend(proxy.New(client))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go front.Serve(ln)
	defer front.Close()

	// The "legacy application": a bone-stock memcached client. It has
	// no idea RnB exists.
	app, err := memcache.Dial(ln.Addr().String(), 5*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer app.Close()

	keys := make([]string, 50)
	for i := range keys {
		keys[i] = fmt.Sprintf("timeline:%04d", i)
		if err := app.Set(&memcache.Item{Key: keys[i], Value: []byte("post")}); err != nil {
			log.Fatal(err)
		}
	}

	var before uint64
	for _, srv := range servers {
		before += srv.Stats().Transactions.Load()
	}
	items, err := app.GetMulti(keys)
	if err != nil {
		log.Fatal(err)
	}
	var after uint64
	for _, srv := range servers {
		after += srv.Stats().Transactions.Load()
	}

	fmt.Printf("legacy client fetched %d items through the proxy\n", len(items))
	fmt.Printf("backend transactions for that multi-get: %d (8 servers, so naive\n", after-before)
	fmt.Printf("consistent hashing would have used ~8)\n\n")

	st, err := app.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("proxy stats (via the standard memcached `stats` command):")
	for _, k := range []string{"proxy_servers", "proxy_replicas", "proxy_requests",
		"proxy_backend_txns", "proxy_tpr_milli", "proxy_hitchhikers"} {
		fmt.Printf("  %-20s %s\n", k, st[k])
	}
	fmt.Println("\nThe application changed nothing but an address — that is the")
	fmt.Println("deployment story of paper §I-C.")
}
