// Quickstart: spin up four in-process memcached servers, store items
// with 3-way replication, and fetch a 30-item request — comparing the
// transactions an RnB client needs against a classic
// consistent-hashing client (1 replica, no bundling choice).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"net"

	"rnb"
	"rnb/internal/memcache"
)

func main() {
	// Start four memcached-protocol servers on loopback.
	var addrs []string
	for i := 0; i < 4; i++ {
		srv := memcache.NewServer(memcache.NewStore(0))
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go srv.Serve(ln)
		defer srv.Close()
		addrs = append(addrs, ln.Addr().String())
	}
	fmt.Printf("started %d memcached servers: %v\n\n", len(addrs), addrs)

	keys := make([]string, 30)
	for i := range keys {
		keys[i] = fmt.Sprintf("user:%03d:status", i)
	}

	for _, replicas := range []int{1, 3} {
		client, err := rnb.NewClient(addrs, rnb.WithReplicas(replicas))
		if err != nil {
			log.Fatal(err)
		}
		for _, k := range keys {
			if err := client.Set(&rnb.Item{Key: k, Value: []byte("hello from " + k)}); err != nil {
				log.Fatal(err)
			}
		}
		items, stats, err := client.GetMulti(keys)
		if err != nil {
			log.Fatal(err)
		}
		mode := "consistent hashing (no replication)"
		if replicas > 1 {
			mode = fmt.Sprintf("RnB with %d replicas", replicas)
		}
		fmt.Printf("%-38s -> %d items in %d transactions (%d hitchhikers)\n",
			mode, len(items), stats.Transactions, stats.Hitchhikers)
		client.Close()
	}

	fmt.Println("\nWith one replica every key has exactly one home, so the request")
	fmt.Println("touches nearly every server. With three replicas the greedy bundler")
	fmt.Println("picks a small set of servers that jointly hold all 30 items — that")
	fmt.Println("difference is the Replicate-and-Bundle effect (paper fig. 6).")
}
