// Socialfeed: the paper's motivating workload end to end. A social
// network's "fetch my friends' statuses" requests are simulated
// against a 16-server memcached tier at several replication levels,
// reporting transactions per request and the calibrated maximum
// throughput — the numbers behind figs. 3 and 6.
//
// Run with:
//
//	go run ./examples/socialfeed
package main

import (
	"fmt"
	"log"

	"rnb/internal/calibrate"
	"rnb/internal/cluster"
	"rnb/internal/core"
	"rnb/internal/graph"
	"rnb/internal/workload"
)

func main() {
	// A Slashdot-shaped social graph at 1/8 scale: ~10k users, heavy-
	// tailed friend counts (mean ~11.5).
	g := graph.ScaledSlashdotLike(42, 8)
	st := graph.OutDegreeStats(g)
	fmt.Printf("social graph: %d users, %d friendships, mean friends %.1f (max %d)\n\n",
		g.NumNodes(), g.NumEdges(), st.Mean, st.Max)

	const servers = 16
	const requests = 5000
	model := calibrate.DefaultModel

	fmt.Printf("%-28s %8s %14s %12s\n", "configuration", "TPR", "txn size p50", "max req/s")
	for _, replicas := range []int{1, 2, 3, 4} {
		c, err := cluster.New(cluster.Config{
			Servers:  servers,
			Items:    g.NumNodes(),
			Replicas: replicas,
			Planner:  core.Options{Hitchhike: true, DistinguishedSingles: true},
		})
		if err != nil {
			log.Fatal(err)
		}
		gen := workload.NewEgoGenerator(g, 7)
		if err := c.Run(gen, requests); err != nil {
			log.Fatal(err)
		}
		t := c.Tally()
		tput := calibrate.Throughput(model, &t.TxnSize, t.Requests, servers)
		label := fmt.Sprintf("%d replica(s)", replicas)
		if replicas == 1 {
			label += " (baseline)"
		}
		fmt.Printf("%-28s %8.2f %14d %12.0f\n",
			label, t.TPR(), t.TxnSize.Quantile(0.5), tput)
	}

	fmt.Println("\nEach added replica lets the bundler cover the same friend list with")
	fmt.Println("fewer servers, so per-request server work falls and the calibrated")
	fmt.Println("throughput rises — without adding a single CPU (the paper's thesis).")
}
