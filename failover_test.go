package rnb

import (
	"fmt"
	"testing"
	"time"
)

// TestReadFailoverToSurvivingReplicas kills one backend server and
// verifies multi-gets keep returning every item via the surviving
// replicas and acting-distinguished copies.
func TestReadFailoverToSurvivingReplicas(t *testing.T) {
	cl, servers := newTestClient(t, 4, WithReplicas(3),
		WithFailureCooldown(30*time.Second))
	ks := keys(40)
	for _, k := range ks {
		if err := cl.Set(&Item{Key: k, Value: []byte("v")}); err != nil {
			t.Fatal(err)
		}
	}
	// Kill backend 1 hard.
	servers[1].Close()

	// Batch fetch: everything must come back via surviving replicas (3
	// replicas on 4 servers leave >= 2 live copies per key). Whether
	// this particular plan touches the dead server depends on the
	// (port-derived) ring, so the failure counter is checked later.
	items, stats, err := cl.GetMulti(ks)
	if err != nil {
		t.Fatalf("fetch during failure: %v", err)
	}
	if len(items) != len(ks) {
		t.Fatalf("only %d/%d items during failover (stats %+v)", len(items), len(ks), stats)
	}

	// Single-key fetches route to each key's distinguished server;
	// ~1/4 of the keys are homed on the dead one, so this reliably
	// exercises the failure path.
	for _, k := range ks {
		one, _, err := cl.GetMulti([]string{k})
		if err != nil {
			t.Fatalf("single fetch %s: %v", k, err)
		}
		if len(one) != 1 {
			t.Fatalf("key %s lost during failover", k)
		}
	}
	if cl.Failures() == 0 {
		t.Fatal("failure not recorded after touching every distinguished server")
	}

	// Subsequent fetches plan around the quarantined server: no new
	// failures, everything served in round 1 or 2.
	for trial := 0; trial < 3; trial++ {
		items, stats, err = cl.GetMulti(ks)
		if err != nil {
			t.Fatal(err)
		}
		if len(items) != len(ks) {
			t.Fatalf("trial %d: %d/%d items", trial, len(items), len(ks))
		}
		if stats.Failed != 0 {
			t.Fatalf("trial %d: %d failed txns though the server is quarantined", trial, stats.Failed)
		}
	}
}

// TestReadFailoverWithLoaderCoversOrphans kills a server while running
// with 1 replica: orphaned keys must be served by the loader.
func TestReadFailoverWithLoaderCoversOrphans(t *testing.T) {
	loader := func(missing []string) (map[string][]byte, error) {
		out := map[string][]byte{}
		for _, k := range missing {
			out[k] = []byte("db:" + k)
		}
		return out, nil
	}
	cl, servers := newTestClient(t, 4, WithReplicas(1),
		WithFailureCooldown(30*time.Second), WithLoader(loader))
	ks := keys(40)
	for _, k := range ks {
		if err := cl.Set(&Item{Key: k, Value: []byte("v")}); err != nil {
			t.Fatal(err)
		}
	}
	servers[2].Close()

	// First fetch trips the failure; by the second fetch the planner
	// avoids the server entirely and the loader fills the orphans.
	if _, _, err := cl.GetMulti(ks); err != nil {
		t.Fatalf("fetch during failure: %v", err)
	}
	items, stats, err := cl.GetMulti(ks)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != len(ks) {
		t.Fatalf("%d/%d items with loader failover", len(items), len(ks))
	}
	if stats.Failed != 0 {
		t.Fatalf("failed txns after quarantine: %+v", stats)
	}
	// Some keys were homed on the dead server and must show DB values;
	// loader writes could not be replicated onto the dead server, so
	// they keep coming from the loader or a live cache write.
	dbServed := 0
	for _, it := range items {
		if string(it.Value[:3]) == "db:" {
			dbServed++
		}
	}
	if dbServed == 0 {
		t.Fatal("no keys served from the loader though their only replica died")
	}
}

// TestCooldownExpiresAndServerReturns verifies the breaker lifecycle:
// a tripped server turns half-open once the cooldown elapses — still
// routed around — and is re-admitted by a successful probe.
func TestCooldownExpiresAndServerReturns(t *testing.T) {
	cl, _ := newTestClient(t, 2, WithReplicas(2),
		WithFailureCooldown(50*time.Millisecond))
	cl.markDown(cl.cur.Load(), 0)
	if !cl.isDown(0) {
		t.Fatal("server not quarantined")
	}
	if st := cl.ServerStates()[0]; st.State != BreakerOpen || st.ConsecutiveFailures != 1 {
		t.Fatalf("state after failure: %+v", st)
	}
	time.Sleep(80 * time.Millisecond)
	if st := cl.ServerStates()[0]; st.State != BreakerHalfOpen {
		t.Fatalf("state after cooldown: %+v", st)
	}
	if !cl.isDown(0) {
		t.Fatal("half-open server admitted to plans before its probe")
	}
	// The server is actually alive, so the probe re-closes the breaker.
	cl.probeHalfOpen(cl.cur.Load())
	deadline := time.Now().Add(2 * time.Second)
	for cl.isDown(0) {
		if time.Now().After(deadline) {
			t.Fatal("probe did not re-admit a live server")
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := cl.ServerStates()[0]
	if st.State != BreakerClosed || st.ConsecutiveFailures != 0 {
		t.Fatalf("state after successful probe: %+v", st)
	}
	if got := cl.Resilience().Snapshot(); got["probe_successes"] != 1 {
		t.Fatalf("probe not recorded: %v", got)
	}
}

// TestFailureTrackingDisabled verifies cooldown <= 0 disables
// quarantining.
func TestFailureTrackingDisabled(t *testing.T) {
	cl, _ := newTestClient(t, 2, WithFailureCooldown(0))
	cl.markDown(cl.cur.Load(), 0)
	if cl.isDown(0) {
		t.Fatal("server quarantined with tracking disabled")
	}
	if cl.Failures() != 1 {
		t.Fatal("failure counter should still count")
	}
}

// TestWriteFailureSurfacesAndQuarantines: writes must report errors
// (durability is the caller's concern) but also quarantine.
func TestWriteFailureSurfacesAndQuarantines(t *testing.T) {
	cl, servers := newTestClient(t, 2, WithReplicas(2),
		WithFailureCooldown(30*time.Second))
	servers[0].Close()
	servers[1].Close()
	err := cl.Set(&Item{Key: "k", Value: []byte("v")})
	if err == nil {
		t.Fatal("write to dead tier succeeded")
	}
	if cl.Failures() == 0 {
		t.Fatal("write failure not recorded")
	}
}

// TestFailoverConcurrent hammers GetMulti from several goroutines while
// a server dies mid-run; no request may error and all items must be
// accounted for (present or absent, never a hard failure).
func TestFailoverConcurrent(t *testing.T) {
	cl, servers := newTestClient(t, 4, WithReplicas(3),
		WithFailureCooldown(30*time.Second))
	ks := keys(30)
	for _, k := range ks {
		if err := cl.Set(&Item{Key: k, Value: []byte("v")}); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 8)
	kill := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			var err error
			for i := 0; i < 40; i++ {
				if g == 0 && i == 10 {
					close(kill)
				}
				if _, _, e := cl.GetMulti(ks); e != nil {
					err = fmt.Errorf("goroutine %d iter %d: %w", g, i, e)
					break
				}
			}
			done <- err
		}(g)
	}
	go func() {
		<-kill
		servers[3].Close()
	}()
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
