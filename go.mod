module rnb

go 1.22
