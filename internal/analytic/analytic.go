// Package analytic implements the closed-form urn-model results of
// paper §II-A that quantify the multi-get hole for randomly placed
// data.
//
// With M requested items spread uniformly at random over N servers,
// the probability that a given server must be contacted equals the
// probability that an urn is non-empty after throwing M balls into N
// urns: W(N,M) = 1 − (1 − 1/N)^M. The expected transactions per
// request (TPR) is N·W(N,M) and the per-server rate (TPRPS) is W(N,M).
// The scaling factor when doubling the server count — ideally 2 — is
// W(N,M)/W(2N,M), which collapses toward 1 as M grows past N: the
// multi-get hole.
package analytic

import "math"

// W returns the probability that a given one of n servers is contacted
// by a request for m random items: 1 - (1 - 1/n)^m.
func W(n, m int) float64 {
	if n <= 0 || m <= 0 {
		return 0
	}
	return 1 - math.Pow(1-1/float64(n), float64(m))
}

// TPR returns the expected transactions per request: n * W(n, m).
func TPR(n, m int) float64 { return float64(n) * W(n, m) }

// TPRPS returns the expected transactions per request per server,
// which equals W(n, m).
func TPRPS(n, m int) float64 { return W(n, m) }

// DoublingScalingFactor returns the TPRPS scaling factor achieved when
// doubling the number of servers from n to 2n for m-item requests:
// W(n,m)/W(2n,m). 2 is ideal; values near 1 mean adding servers buys
// nothing (fig. 2).
func DoublingScalingFactor(n, m int) float64 {
	denom := W(2*n, m)
	if denom == 0 {
		return 0
	}
	return W(n, m) / denom
}

// ScalingFactor generalizes DoublingScalingFactor to an arbitrary grown
// server count n2 >= n1: W(n1,m)/W(n2,m), the factor by which
// per-server work shrinks — equivalently, the throughput gain factor
// when the per-transaction cost dominates.
func ScalingFactor(n1, n2, m int) float64 {
	denom := W(n2, m)
	if denom == 0 {
		return 0
	}
	return W(n1, m) / denom
}

// ThroughputRelative returns the throughput of an n-server system
// relative to a single server, for m-item requests, assuming the
// per-transaction cost dominates (the multi-get-hole regime): a single
// server handles the request in one transaction, n servers in
// n·W(n,m) transactions spread over n servers, so the relative
// throughput is n / (n·W(n,m)) · n ... reduced: n / TPR(n,m) · 1 =
// 1/W(n,m). Ideal scaling would be n (fig. 3's dashed line).
func ThroughputRelative(n, m int) float64 {
	w := W(n, m)
	if w == 0 {
		return 0
	}
	return 1 / w
}

// ExpectedDistinctServers is an alias of TPR with clearer intent for
// callers reasoning about coverage rather than cost.
func ExpectedDistinctServers(n, m int) float64 { return TPR(n, m) }
