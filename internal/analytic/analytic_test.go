package analytic

import (
	"math"
	"math/rand"
	"testing"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestWEdgeCases(t *testing.T) {
	if W(0, 5) != 0 || W(5, 0) != 0 || W(-1, 3) != 0 {
		t.Fatal("degenerate inputs should give 0")
	}
	if W(1, 1) != 1 {
		t.Fatalf("W(1,1) = %g, want 1", W(1, 1))
	}
	if got := W(2, 1); got != 0.5 {
		t.Fatalf("W(2,1) = %g, want 0.5", got)
	}
}

func TestWMonotonicity(t *testing.T) {
	// W decreases in n (more servers -> each less likely contacted) and
	// increases in m.
	for n := 1; n < 50; n++ {
		if W(n, 10) < W(n+1, 10) {
			t.Fatalf("W not decreasing in n at n=%d", n)
		}
	}
	for m := 1; m < 50; m++ {
		if W(10, m) > W(10, m+1) {
			t.Fatalf("W not increasing in m at m=%d", m)
		}
	}
}

func TestTPRLimits(t *testing.T) {
	// M >> N: every server contacted, TPR ≈ N.
	if got := TPR(4, 1000); !almost(got, 4, 1e-6) {
		t.Fatalf("TPR(4,1000) = %g, want ~4", got)
	}
	// N >> M: TPR ≈ M.
	if got := TPR(100000, 10); !almost(got, 10, 0.01) {
		t.Fatalf("TPR(1e5,10) = %g, want ~10", got)
	}
}

func TestTPRMatchesMonteCarlo(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	const n, m, trials = 16, 30, 30000
	var sum float64
	for trial := 0; trial < trials; trial++ {
		var used [n]bool
		distinct := 0
		for i := 0; i < m; i++ {
			s := r.Intn(n)
			if !used[s] {
				used[s] = true
				distinct++
			}
		}
		sum += float64(distinct)
	}
	mc := sum / trials
	if got := TPR(n, m); !almost(got, mc, 0.1) {
		t.Fatalf("TPR(%d,%d) = %.3f, Monte Carlo says %.3f", n, m, got, mc)
	}
}

func TestDoublingScalingFactorSingleItem(t *testing.T) {
	// Paper: W(N,1)/W(2N,1) = 2 exactly — ideal scaling for M=1.
	for _, n := range []int{1, 2, 8, 64} {
		if got := DoublingScalingFactor(n, 1); !almost(got, 2, 1e-9) {
			t.Fatalf("doubling factor for M=1, N=%d = %g, want 2", n, got)
		}
	}
}

func TestDoublingScalingFactorEqualNM(t *testing.T) {
	// Paper: when N == M, doubling the servers gains only ~50%.
	got := DoublingScalingFactor(50, 50)
	if got < 1.4 || got > 1.65 {
		t.Fatalf("doubling factor at N=M=50 is %.3f, want ~1.5", got)
	}
}

func TestDoublingScalingFactorCollapsesForLargeM(t *testing.T) {
	// N << M: doubling servers buys almost nothing (factor -> 1).
	got := DoublingScalingFactor(4, 1000)
	if got > 1.01 {
		t.Fatalf("doubling factor for N=4,M=1000 is %.4f, want ~1", got)
	}
	// And the factor grows toward 2 as N grows past M.
	if DoublingScalingFactor(4, 100) >= DoublingScalingFactor(400, 100) {
		t.Fatal("doubling factor not increasing in N")
	}
}

func TestScalingFactorGeneral(t *testing.T) {
	if got := ScalingFactor(10, 20, 50); !almost(got, DoublingScalingFactor(10, 50), 1e-12) {
		t.Fatalf("ScalingFactor(10,20) = %g != doubling", got)
	}
	if got := ScalingFactor(10, 10, 50); !almost(got, 1, 1e-12) {
		t.Fatalf("ScalingFactor(n,n) = %g, want 1", got)
	}
	if got := ScalingFactor(10, 40, 1); !almost(got, 4, 1e-9) {
		t.Fatalf("quadrupling servers with M=1 scales %gx, want 4x", got)
	}
	if ScalingFactor(0, 0, 0) != 0 {
		t.Fatal("degenerate scaling factor")
	}
}

func TestThroughputRelative(t *testing.T) {
	// One server: relative throughput 1.
	if got := ThroughputRelative(1, 50); !almost(got, 1, 1e-9) {
		t.Fatalf("ThroughputRelative(1) = %g", got)
	}
	// Far more servers than items: throughput ~ n/m.
	if got := ThroughputRelative(1000, 10); !almost(got, 100, 1.0) {
		t.Fatalf("ThroughputRelative(1000,10) = %g, want ~100", got)
	}
	// The multi-get hole: with m=50 items, going from 1 to 8 servers
	// yields far less than 8x.
	if got := ThroughputRelative(8, 50); got > 2 {
		t.Fatalf("ThroughputRelative(8,50) = %g; hole should cap it near 1", got)
	}
	if ThroughputRelative(0, 5) != 0 {
		t.Fatal("degenerate input")
	}
}

func TestExpectedDistinctServersAlias(t *testing.T) {
	if ExpectedDistinctServers(7, 13) != TPR(7, 13) {
		t.Fatal("alias mismatch")
	}
}
