// Package bitset implements dense bit sets over uint64 words.
//
// The RnB bundling heuristic (paper §IV, "Heuristic for minimum set
// cover") is built on bit sets: each candidate server is represented by
// the set of requested items it holds, and greedy cover repeatedly picks
// the set with the largest intersection against the remaining items.
// Those inner loops are popcount-bound, so the representation matters.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a dense bit set. The zero value is an empty set of length 0.
// Sets grow automatically on Set; read-only operations on out-of-range
// indices behave as if the bit were zero.
type Set struct {
	words []uint64
}

// New returns a set pre-sized to hold bits [0, n).
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative size")
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromIndices returns a set with exactly the given bits set.
func FromIndices(idx ...int) *Set {
	s := &Set{}
	for _, i := range idx {
		s.Set(i)
	}
	return s
}

func (s *Set) grow(word int) {
	if word < len(s.words) {
		return
	}
	w := make([]uint64, word+1)
	copy(w, s.words)
	s.words = w
}

// Set sets bit i to 1.
func (s *Set) Set(i int) {
	if i < 0 {
		panic("bitset: negative index")
	}
	w := i / wordBits
	s.grow(w)
	s.words[w] |= 1 << (uint(i) % wordBits)
}

// Clear sets bit i to 0.
func (s *Set) Clear(i int) {
	if i < 0 {
		panic("bitset: negative index")
	}
	w := i / wordBits
	if w < len(s.words) {
		s.words[w] &^= 1 << (uint(i) % wordBits)
	}
}

// Test reports whether bit i is set.
func (s *Set) Test(i int) bool {
	if i < 0 {
		return false
	}
	w := i / wordBits
	return w < len(s.words) && s.words[w]&(1<<(uint(i)%wordBits)) != 0
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether no bit is set.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// CopyFrom makes s an exact copy of o, reusing s's storage when possible.
func (s *Set) CopyFrom(o *Set) {
	if cap(s.words) < len(o.words) {
		s.words = make([]uint64, len(o.words))
	} else {
		s.words = s.words[:len(o.words)]
	}
	copy(s.words, o.words)
}

// Reset clears every bit, keeping capacity.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// UnionWith sets s = s ∪ o.
func (s *Set) UnionWith(o *Set) {
	s.grow(len(o.words) - 1)
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// IntersectWith sets s = s ∩ o.
func (s *Set) IntersectWith(o *Set) {
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		s.words[i] &= o.words[i]
	}
	for i := n; i < len(s.words); i++ {
		s.words[i] = 0
	}
}

// DifferenceWith sets s = s \ o.
func (s *Set) DifferenceWith(o *Set) {
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		s.words[i] &^= o.words[i]
	}
}

// IntersectionCount returns |s ∩ o| without allocating.
func (s *Set) IntersectionCount(o *Set) int {
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	c := 0
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(s.words[i] & o.words[i])
	}
	return c
}

// Intersects reports whether s ∩ o is non-empty.
func (s *Set) Intersects(o *Set) bool {
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// SubsetOf reports whether every bit of s is also set in o.
func (s *Set) SubsetOf(o *Set) bool {
	for i, w := range s.words {
		var ow uint64
		if i < len(o.words) {
			ow = o.words[i]
		}
		if w&^ow != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and o contain exactly the same bits.
func (s *Set) Equal(o *Set) bool {
	n := len(s.words)
	if len(o.words) > n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		var a, b uint64
		if i < len(s.words) {
			a = s.words[i]
		}
		if i < len(o.words) {
			b = o.words[i]
		}
		if a != b {
			return false
		}
	}
	return true
}

// NextSet returns the index of the first set bit at or after i, and
// whether one exists.
func (s *Set) NextSet(i int) (int, bool) {
	if i < 0 {
		i = 0
	}
	w := i / wordBits
	if w >= len(s.words) {
		return 0, false
	}
	word := s.words[w] >> (uint(i) % wordBits)
	if word != 0 {
		return i + bits.TrailingZeros64(word), true
	}
	for w++; w < len(s.words); w++ {
		if s.words[w] != 0 {
			return w*wordBits + bits.TrailingZeros64(s.words[w]), true
		}
	}
	return 0, false
}

// ForEach calls fn for every set bit in ascending order. It stops early
// if fn returns false.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &^= 1 << uint(b)
		}
	}
}

// Indices returns the indices of all set bits in ascending order.
func (s *Set) Indices() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// String renders the set as "{1, 5, 9}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}
