package bitset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestSetTestClear(t *testing.T) {
	s := New(10)
	if s.Test(3) {
		t.Fatal("new set has bit 3")
	}
	s.Set(3)
	if !s.Test(3) {
		t.Fatal("bit 3 not set")
	}
	s.Clear(3)
	if s.Test(3) {
		t.Fatal("bit 3 not cleared")
	}
	// Clearing out-of-range must be a no-op, not a panic.
	s.Clear(10_000)
}

func TestGrowOnSet(t *testing.T) {
	s := New(0)
	s.Set(1000)
	if !s.Test(1000) {
		t.Fatal("grow on Set failed")
	}
	if s.Count() != 1 {
		t.Fatalf("Count = %d, want 1", s.Count())
	}
}

func TestTestOutOfRange(t *testing.T) {
	s := New(4)
	if s.Test(100) || s.Test(-1) {
		t.Fatal("out-of-range Test should be false")
	}
}

func TestNegativePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"Set":   func() { New(1).Set(-1) },
		"Clear": func() { New(1).Clear(-1) },
		"New":   func() { New(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s(-1) did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFromIndices(t *testing.T) {
	s := FromIndices(1, 64, 65, 200)
	want := []int{1, 64, 65, 200}
	if got := s.Indices(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Indices = %v, want %v", got, want)
	}
	if s.Count() != 4 {
		t.Fatalf("Count = %d, want 4", s.Count())
	}
}

func TestEmptyAndReset(t *testing.T) {
	s := FromIndices(7, 99)
	if s.Empty() {
		t.Fatal("set with bits reports Empty")
	}
	s.Reset()
	if !s.Empty() || s.Count() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestUnionIntersectDifference(t *testing.T) {
	a := FromIndices(1, 2, 3, 100)
	b := FromIndices(2, 3, 4, 200)

	u := a.Clone()
	u.UnionWith(b)
	if got, want := u.Indices(), []int{1, 2, 3, 4, 100, 200}; !reflect.DeepEqual(got, want) {
		t.Errorf("union = %v, want %v", got, want)
	}

	i := a.Clone()
	i.IntersectWith(b)
	if got, want := i.Indices(), []int{2, 3}; !reflect.DeepEqual(got, want) {
		t.Errorf("intersect = %v, want %v", got, want)
	}

	d := a.Clone()
	d.DifferenceWith(b)
	if got, want := d.Indices(), []int{1, 100}; !reflect.DeepEqual(got, want) {
		t.Errorf("difference = %v, want %v", got, want)
	}
}

func TestIntersectWithShorter(t *testing.T) {
	a := FromIndices(1, 500)
	b := FromIndices(1)
	a.IntersectWith(b)
	if got, want := a.Indices(), []int{1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("intersect = %v, want %v", got, want)
	}
}

func TestIntersectionCount(t *testing.T) {
	a := FromIndices(1, 2, 3, 64, 128)
	b := FromIndices(2, 64, 999)
	if got := a.IntersectionCount(b); got != 2 {
		t.Fatalf("IntersectionCount = %d, want 2", got)
	}
	if got := b.IntersectionCount(a); got != 2 {
		t.Fatalf("IntersectionCount reversed = %d, want 2", got)
	}
}

func TestIntersects(t *testing.T) {
	a := FromIndices(5)
	b := FromIndices(6)
	if a.Intersects(b) {
		t.Fatal("disjoint sets report Intersects")
	}
	b.Set(5)
	if !a.Intersects(b) {
		t.Fatal("overlapping sets report no intersection")
	}
}

func TestSubsetEqual(t *testing.T) {
	a := FromIndices(1, 2)
	b := FromIndices(1, 2, 3)
	if !a.SubsetOf(b) {
		t.Fatal("a ⊆ b expected")
	}
	if b.SubsetOf(a) {
		t.Fatal("b ⊆ a unexpected")
	}
	if !a.Equal(a.Clone()) {
		t.Fatal("clone not Equal")
	}
	// Equal must ignore trailing zero words.
	c := New(1024)
	c.Set(1)
	c.Set(2)
	if !a.Equal(c) || !c.Equal(a) {
		t.Fatal("Equal sensitive to capacity")
	}
}

func TestNextSet(t *testing.T) {
	s := FromIndices(3, 64, 130)
	cases := []struct {
		from, want int
		ok         bool
	}{
		{0, 3, true}, {3, 3, true}, {4, 64, true},
		{64, 64, true}, {65, 130, true}, {131, 0, false},
		{-5, 3, true},
	}
	for _, c := range cases {
		got, ok := s.NextSet(c.from)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("NextSet(%d) = %d,%v want %d,%v", c.from, got, ok, c.want, c.ok)
		}
	}
}

func TestForEachEarlyStop(t *testing.T) {
	s := FromIndices(1, 2, 3, 4)
	n := 0
	s.ForEach(func(int) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Fatalf("visited %d bits, want 2", n)
	}
}

func TestString(t *testing.T) {
	if got := FromIndices(1, 5).String(); got != "{1, 5}" {
		t.Fatalf("String = %q", got)
	}
	if got := New(8).String(); got != "{}" {
		t.Fatalf("empty String = %q", got)
	}
}

func TestCopyFrom(t *testing.T) {
	a := FromIndices(1, 2, 3)
	b := FromIndices(500)
	a.CopyFrom(b)
	if !a.Equal(b) {
		t.Fatal("CopyFrom mismatch")
	}
	b.Set(7)
	if a.Test(7) {
		t.Fatal("CopyFrom aliases storage")
	}
}

// --- property-based tests -------------------------------------------------

// randomIndices is the generator domain for quick tests.
func randomIndices(r *rand.Rand, n, max int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = r.Intn(max)
	}
	return out
}

func TestQuickUnionCommutes(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := FromIndices(randomIndices(r, 40, 512)...)
		b := FromIndices(randomIndices(r, 40, 512)...)
		ab := a.Clone()
		ab.UnionWith(b)
		ba := b.Clone()
		ba.UnionWith(a)
		return ab.Equal(ba)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeMorgan(t *testing.T) {
	// |a ∪ b| = |a| + |b| - |a ∩ b|
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := FromIndices(randomIndices(r, 60, 300)...)
		b := FromIndices(randomIndices(r, 60, 300)...)
		u := a.Clone()
		u.UnionWith(b)
		return u.Count() == a.Count()+b.Count()-a.IntersectionCount(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDifferenceDisjoint(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := FromIndices(randomIndices(r, 50, 400)...)
		b := FromIndices(randomIndices(r, 50, 400)...)
		d := a.Clone()
		d.DifferenceWith(b)
		return !d.Intersects(b) && d.SubsetOf(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIndicesRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := FromIndices(randomIndices(r, 30, 1000)...)
		return FromIndices(s.Indices()...).Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNextSetMatchesForEach(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := FromIndices(randomIndices(r, 25, 700)...)
		var viaNext []int
		for i, ok := s.NextSet(0); ok; i, ok = s.NextSet(i + 1) {
			viaNext = append(viaNext, i)
		}
		return reflect.DeepEqual(viaNext, s.Indices()) ||
			(len(viaNext) == 0 && s.Count() == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkIntersectionCount(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := FromIndices(randomIndices(r, 200, 4096)...)
	y := FromIndices(randomIndices(r, 200, 4096)...)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.IntersectionCount(y)
	}
}

func BenchmarkForEach(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	x := FromIndices(randomIndices(r, 500, 8192)...)
	b.ReportAllocs()
	sum := 0
	for i := 0; i < b.N; i++ {
		x.ForEach(func(i int) bool { sum += i; return true })
	}
	_ = sum
}
