// Package calibrate converts simulated transaction-size histograms
// into throughput estimates, the way the paper calibrates its
// simulator with memaslap micro-benchmarks (§III-B, App. A).
//
// The micro-benchmarks show that for small items the time a memcached
// server spends on a transaction is affine in the number of items
// aboard: t(k) = Fixed + PerItem·k, with Fixed ≫ PerItem — that gap is
// the multi-get hole. Given the affine model and a histogram of
// transaction sizes per request, the cluster's maximum request rate is
// the point where the servers' aggregate CPU seconds per second are
// exhausted.
package calibrate

import (
	"fmt"
	"math"

	"rnb/internal/metrics"
)

// CostModel is the affine per-transaction cost model, in seconds.
type CostModel struct {
	// Fixed is the per-transaction cost (parsing, syscalls, scheduling).
	Fixed float64
	// PerItem is the additional cost per item aboard the transaction.
	PerItem float64
}

// DefaultModel is a representative model for a mid-2010s memcached
// server on 1 GbE with tiny values, shaped to the paper's fig. 13:
// ~55k single-item transactions/s, items/s growing near-linearly with
// transaction size until the per-item cost takes over around a few
// hundred items.
var DefaultModel = CostModel{Fixed: 18e-6, PerItem: 0.55e-6}

// Validate reports whether the model is usable.
func (m CostModel) Validate() error {
	if m.Fixed <= 0 || m.PerItem < 0 {
		return fmt.Errorf("calibrate: invalid model %+v", m)
	}
	return nil
}

// TxnTime returns the server time consumed by one k-item transaction.
func (m CostModel) TxnTime(k int) float64 {
	if k < 0 {
		k = 0
	}
	return m.Fixed + m.PerItem*float64(k)
}

// TransactionsPerSecond returns the rate at which one server can
// process k-item transactions.
func (m CostModel) TransactionsPerSecond(k int) float64 {
	return 1 / m.TxnTime(k)
}

// ItemsPerSecond returns the item fetch rate of one server processing
// k-item transactions back to back — the quantity plotted in fig. 13.
func (m CostModel) ItemsPerSecond(k int) float64 {
	if k <= 0 {
		return 0
	}
	return float64(k) / m.TxnTime(k)
}

// Point is one micro-benchmark observation: at transaction size K the
// server sustained TxnPerSec transactions per second.
type Point struct {
	K         int
	TxnPerSec float64
}

// Fit least-squares fits the affine model t(k) = Fixed + PerItem·k to
// observed per-transaction times 1/TxnPerSec. At least two distinct K
// values are required.
func Fit(points []Point) (CostModel, error) {
	if len(points) < 2 {
		return CostModel{}, fmt.Errorf("calibrate: need >= 2 points, got %d", len(points))
	}
	var sx, sy, sxx, sxy float64
	n := 0
	distinct := map[int]bool{}
	for _, p := range points {
		if p.K < 0 || p.TxnPerSec <= 0 {
			return CostModel{}, fmt.Errorf("calibrate: invalid point %+v", p)
		}
		x := float64(p.K)
		y := 1 / p.TxnPerSec
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		n++
		distinct[p.K] = true
	}
	if len(distinct) < 2 {
		return CostModel{}, fmt.Errorf("calibrate: need >= 2 distinct transaction sizes")
	}
	fn := float64(n)
	denom := fn*sxx - sx*sx
	perItem := (fn*sxy - sx*sy) / denom
	fixed := (sy - perItem*sx) / fn
	if perItem < 0 {
		// Noise can drive the slope slightly negative; clamp, keeping the
		// mean time as the fixed cost.
		perItem = 0
		fixed = sy / fn
	}
	if fixed <= 0 {
		return CostModel{}, fmt.Errorf("calibrate: fit produced non-positive fixed cost %g", fixed)
	}
	m := CostModel{Fixed: fixed, PerItem: perItem}
	return m, m.Validate()
}

// Throughput estimates the maximum requests/second an n-server cluster
// sustains for a workload whose per-request transaction sizes are
// distributed as hist (hist covers tally.Requests requests). The model
// assumes transactions spread evenly over servers — true in aggregate
// under pseudo-random placement — so capacity is n server-seconds per
// second divided by the CPU time one request costs.
func Throughput(model CostModel, hist *metrics.IntHist, requests uint64, n int) float64 {
	if requests == 0 || n <= 0 {
		return 0
	}
	var cpuPerReq float64
	for _, b := range hist.Buckets() {
		k, count := int(b[0]), float64(b[1])
		cpuPerReq += model.TxnTime(k) * count
	}
	cpuPerReq /= float64(requests)
	if cpuPerReq == 0 {
		return math.Inf(1)
	}
	return float64(n) / cpuPerReq
}
