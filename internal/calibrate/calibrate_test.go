package calibrate

import (
	"math"
	"testing"

	"rnb/internal/metrics"
)

func TestTxnTimeAndRates(t *testing.T) {
	m := CostModel{Fixed: 10e-6, PerItem: 1e-6}
	if got := m.TxnTime(10); math.Abs(got-20e-6) > 1e-12 {
		t.Fatalf("TxnTime(10) = %g", got)
	}
	if got := m.TxnTime(-5); got != m.Fixed {
		t.Fatalf("TxnTime(-5) = %g, want Fixed", got)
	}
	if got := m.TransactionsPerSecond(10); math.Abs(got-50000) > 1e-6 {
		t.Fatalf("TPS(10) = %g", got)
	}
	if got := m.ItemsPerSecond(10); math.Abs(got-500000) > 1e-6 {
		t.Fatalf("items/s(10) = %g", got)
	}
	if m.ItemsPerSecond(0) != 0 {
		t.Fatal("items/s(0) should be 0")
	}
}

func TestItemsPerSecondShape(t *testing.T) {
	// Fig. 13's shape: items/s grows with k, near-linearly while the
	// fixed cost dominates, then flattens toward 1/PerItem.
	m := DefaultModel
	prev := 0.0
	for k := 1; k <= 1024; k *= 2 {
		cur := m.ItemsPerSecond(k)
		if cur <= prev {
			t.Fatalf("items/s not increasing at k=%d", k)
		}
		prev = cur
	}
	// Near-linear early: rate(8)/rate(1) should be close to 8.
	ratio := m.ItemsPerSecond(8) / m.ItemsPerSecond(1)
	if ratio < 6.5 {
		t.Fatalf("early growth ratio %.2f, want near 8 (fixed cost dominates)", ratio)
	}
	// Saturating late: bounded by 1/PerItem.
	if m.ItemsPerSecond(100000) > 1/m.PerItem {
		t.Fatal("items/s exceeded asymptote")
	}
}

func TestValidate(t *testing.T) {
	if (CostModel{Fixed: 1e-6, PerItem: 0}).Validate() != nil {
		t.Fatal("valid model rejected")
	}
	if (CostModel{Fixed: 0, PerItem: 1}).Validate() == nil {
		t.Fatal("zero fixed accepted")
	}
	if (CostModel{Fixed: 1, PerItem: -1}).Validate() == nil {
		t.Fatal("negative per-item accepted")
	}
}

func TestFitRecoversModel(t *testing.T) {
	truth := CostModel{Fixed: 15e-6, PerItem: 0.8e-6}
	var pts []Point
	for _, k := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		pts = append(pts, Point{K: k, TxnPerSec: truth.TransactionsPerSecond(k)})
	}
	got, err := Fit(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Fixed-truth.Fixed)/truth.Fixed > 0.01 {
		t.Fatalf("Fixed = %g, want %g", got.Fixed, truth.Fixed)
	}
	if math.Abs(got.PerItem-truth.PerItem)/truth.PerItem > 0.01 {
		t.Fatalf("PerItem = %g, want %g", got.PerItem, truth.PerItem)
	}
}

func TestFitWithNoise(t *testing.T) {
	truth := CostModel{Fixed: 20e-6, PerItem: 1e-6}
	noise := []float64{1.02, 0.98, 1.01, 0.99, 1.03, 0.97}
	var pts []Point
	for i, k := range []int{1, 4, 16, 64, 128, 256} {
		pts = append(pts, Point{K: k, TxnPerSec: truth.TransactionsPerSecond(k) * noise[i]})
	}
	got, err := Fit(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Fixed-truth.Fixed)/truth.Fixed > 0.15 {
		t.Fatalf("noisy Fixed = %g, want ~%g", got.Fixed, truth.Fixed)
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit(nil); err == nil {
		t.Fatal("empty fit accepted")
	}
	if _, err := Fit([]Point{{1, 100}}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, err := Fit([]Point{{1, 100}, {1, 90}}); err == nil {
		t.Fatal("single distinct K accepted")
	}
	if _, err := Fit([]Point{{1, 100}, {2, 0}}); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := Fit([]Point{{-1, 100}, {2, 50}}); err == nil {
		t.Fatal("negative K accepted")
	}
}

func TestFitClampsNegativeSlope(t *testing.T) {
	// Rates that improve with k (slope < 0) are noise; the fit clamps
	// PerItem to 0 rather than producing nonsense.
	pts := []Point{{1, 1000}, {100, 1100}}
	got, err := Fit(pts)
	if err != nil {
		t.Fatal(err)
	}
	if got.PerItem != 0 || got.Fixed <= 0 {
		t.Fatalf("clamped fit = %+v", got)
	}
}

func TestThroughput(t *testing.T) {
	model := CostModel{Fixed: 10e-6, PerItem: 0}
	var h metrics.IntHist
	// 100 requests, each costing exactly 2 transactions.
	h.AddN(5, 200)
	got := Throughput(model, &h, 100, 4)
	// Each request costs 2*10µs = 20µs of CPU; 4 servers give 4 CPU-sec
	// per sec -> 200k requests/s.
	if math.Abs(got-200000) > 1 {
		t.Fatalf("Throughput = %g, want 200000", got)
	}
}

func TestThroughputScalesWithServers(t *testing.T) {
	var h metrics.IntHist
	h.AddN(3, 50)
	a := Throughput(DefaultModel, &h, 10, 2)
	b := Throughput(DefaultModel, &h, 10, 4)
	if math.Abs(b/a-2) > 1e-9 {
		t.Fatalf("throughput not linear in servers: %g vs %g", a, b)
	}
}

func TestThroughputDegenerate(t *testing.T) {
	var h metrics.IntHist
	if Throughput(DefaultModel, &h, 0, 4) != 0 {
		t.Fatal("zero requests")
	}
	if Throughput(DefaultModel, &h, 10, 0) != 0 {
		t.Fatal("zero servers")
	}
	if got := Throughput(DefaultModel, &h, 10, 4); !math.IsInf(got, 1) {
		t.Fatalf("no transactions should mean unbounded throughput, got %g", got)
	}
}

func TestDefaultModelMagnitudes(t *testing.T) {
	// Sanity: single-item transaction rate in the tens of thousands per
	// second, like the paper's fig. 13 micro-benchmark.
	tps := DefaultModel.TransactionsPerSecond(1)
	if tps < 20000 || tps > 200000 {
		t.Fatalf("default single-item rate %.0f/s implausible", tps)
	}
}
