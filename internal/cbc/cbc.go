// Package cbc implements replica placement as a Combinatorial Batch
// Code (CBC): a set system over the servers in which *any* k-item
// request can be served reading at most t items from each server — a
// provable worst-case load bound, where the paper's pseudo-random
// placement only balances load in expectation.
//
// The construction is the replication-based "dual set system" CBC of
// Paterson–Stinson–Wei, extended to the multiset regime of
// Zhang–Yaakobi–Silberstein when the item universe outgrows the number
// of available server subsets:
//
//   - every item class is stored on an r-subset of the m servers;
//   - the subsets assigned to classes are pairwise DISTINCT as long as
//     the class count n fits in C(m, r) (the exact CBC range);
//   - beyond that, subsets repeat with multiplicity at most
//     c = ceil(n / subsets-used), kept perfectly balanced — the greedy
//     t-minimizing fallback: no subset, and hence no server union, is
//     ever loaded more than its fair share of classes.
//
// Distinctness is what bounds the adversary. Any u servers fully
// contain at most c·C(u, r) classes, so j request items can be confined
// to a u-server union only if c·C(u, r) >= j; by the defect form of
// Hall's theorem the optimal assignment (internal/core's
// HintBalanceLoad planner path) then reads at most
//
//	T(k) = max_{j<=k} ceil(j / u_min(j)),  u_min(j) = min{u : c·C(u,r) >= j}
//
// items per server for any request of k distinct classes. Guarantee
// reports this bound; the package's property tests verify it
// exhaustively over every k-subset of small constructions.
//
// A pseudo-random placement enjoys none of this: with n >> C(m, r),
// birthday collisions make dozens of items share one exact replica set,
// and an adversarial bundle (internal/workload's AdversarialGenerator)
// concentrates a whole request on r servers.
package cbc

import (
	"fmt"
	"math"
	"sort"

	"rnb/internal/hashring"
	"rnb/internal/xhash"
)

// maxEnum caps the subset count for which the exact greedy-balanced
// ordering (quadratic in the count) is computed; larger spaces fall
// back to seeded distinct sampling, which preserves the distinctness
// guarantee and balances statistically.
const maxEnum = 4096

// maxSampleAttempts bounds rejection sampling per subset slot; giving
// up early only shrinks the subset pool (raising the multiplicity c the
// guarantee is computed from), never breaks the bound.
const maxSampleAttempts = 200

// Placement is a CBC replica placement over a fixed universe of item
// classes. Items map to classes by id mod Classes; the worst-case
// guarantee is stated per distinct class (requests that repeat a class
// are the multiset regime — each repetition re-reads the same
// r-subset). It implements hashring.Placement.
//
//rnb:frozen-after-publish
type Placement struct {
	servers  int
	replicas int // declared level; effective level is min(replicas, servers)
	classes  int
	mult     int     // max classes sharing one subset (1 = exact CBC)
	nsubsets int     // distinct subsets actually used
	sets     [][]int // class -> replica servers, entry 0 distinguished
}

var _ hashring.Placement = (*Placement)(nil)

// New builds a CBC placement of `classes` item classes over `servers`
// servers at replication level `replicas`. seed decorrelates the
// class-to-subset mapping from raw item ids (rotation in the exact
// range, sampling stream otherwise); the construction is deterministic
// per (servers, replicas, classes, seed).
func New(servers, replicas, classes int, seed uint64) *Placement {
	if servers < 1 {
		panic("cbc: need at least one server")
	}
	if replicas < 1 {
		panic("cbc: replication level must be >= 1")
	}
	if classes < 1 {
		panic("cbc: need at least one item class")
	}
	r := replicas
	if r > servers {
		r = servers
	}
	order := subsetOrder(servers, r, classes, seed)

	p := &Placement{
		servers:  servers,
		replicas: replicas,
		classes:  classes,
		nsubsets: len(order),
		mult:     (classes + len(order) - 1) / len(order),
	}
	// Assign classes round-robin through the subset order (multiplicity
	// stays within 1 of even) and rotate the distinguished member to the
	// least-pinned server so the pinned-copy memory load balances too.
	off := int(seed % uint64(len(order)))
	distLoad := make([]int, servers)
	p.sets = make([][]int, classes)
	flat := make([]int, classes*r) // one backing array, cache-friendly
	for i := 0; i < classes; i++ {
		sub := order[(i+off)%len(order)]
		set := flat[i*r : i*r : (i+1)*r]
		d, dn := sub[0], distLoad[sub[0]]
		for _, s := range sub[1:] {
			if distLoad[s] < dn {
				d, dn = s, distLoad[s]
			}
		}
		distLoad[d]++
		set = append(set, d)
		for _, s := range sub {
			if s != d {
				set = append(set, s)
			}
		}
		p.sets[i] = set
	}
	return p
}

// subsetOrder produces the distinct r-subsets classes are assigned to,
// in an order whose prefixes keep per-server load balanced.
func subsetOrder(m, r, classes int, seed uint64) [][]int {
	total := combin(m, r)
	if total <= maxEnum {
		return balancedOrder(enumerate(m, r), m)
	}
	// The subset space is too large to enumerate: sample distinct
	// subsets from a seeded hash stream. Classes beyond the pool cycle
	// through it (multiplicity > 1), exactly as in the exact range.
	want := classes
	if want > maxEnum*16 {
		want = maxEnum * 16
	}
	seen := make(map[string]bool, want)
	out := make([][]int, 0, want)
	var ctr uint64
	for len(out) < want {
		var sub []int
		found := false
		for attempt := 0; attempt < maxSampleAttempts; attempt++ {
			sub = sampleSubset(m, r, seed, &ctr)
			key := subsetKey(sub)
			if !seen[key] {
				seen[key] = true
				found = true
				break
			}
		}
		if !found {
			break // pool nearly exhausted; multiplicity absorbs the rest
		}
		out = append(out, sub)
	}
	return out
}

// sampleSubset draws one sorted r-subset of [0, m) from the seeded
// hash stream, advancing *ctr.
func sampleSubset(m, r int, seed uint64, ctr *uint64) []int {
	sub := make([]int, 0, r)
	for len(sub) < r {
		*ctr++
		s := int(xhash.Seeded(seed, *ctr) % uint64(m))
		dup := false
		for _, prev := range sub {
			if prev == s {
				dup = true
				break
			}
		}
		if !dup {
			sub = append(sub, s)
		}
	}
	sort.Ints(sub)
	return sub
}

func subsetKey(sub []int) string {
	b := make([]byte, 0, len(sub)*2)
	for _, s := range sub {
		b = append(b, byte(s), byte(s>>8))
	}
	return string(b)
}

// enumerate lists every r-subset of [0, m) in lexicographic order.
func enumerate(m, r int) [][]int {
	var out [][]int
	idx := make([]int, r)
	for i := range idx {
		idx[i] = i
	}
	for {
		out = append(out, append([]int(nil), idx...))
		i := r - 1
		for i >= 0 && idx[i] == m-r+i {
			i--
		}
		if i < 0 {
			return out
		}
		idx[i]++
		for j := i + 1; j < r; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// balancedOrder greedily orders subsets so that every prefix spreads
// server usage as evenly as possible: each step picks the subset whose
// members are currently least used (smallest max count, then smallest
// sum, then lexicographic rank). Quadratic, gated by maxEnum.
func balancedOrder(all [][]int, m int) [][]int {
	counts := make([]int, m)
	used := make([]bool, len(all))
	out := make([][]int, 0, len(all))
	for len(out) < len(all) {
		best, bestMax, bestSum := -1, math.MaxInt, math.MaxInt
		for j, sub := range all {
			if used[j] {
				continue
			}
			mx, sum := 0, 0
			for _, s := range sub {
				sum += counts[s]
				if counts[s] > mx {
					mx = counts[s]
				}
			}
			if mx < bestMax || (mx == bestMax && sum < bestSum) {
				best, bestMax, bestSum = j, mx, sum
			}
		}
		used[best] = true
		out = append(out, all[best])
		for _, s := range all[best] {
			counts[s]++
		}
	}
	return out
}

// combin returns C(m, r) clamped to avoid overflow; the clamp is far
// above any count the guarantee computation compares against.
func combin(m, r int) int {
	if r < 0 || r > m {
		return 0
	}
	if r > m-r {
		r = m - r
	}
	const clamp = int(1) << 40
	out := 1
	for i := 1; i <= r; i++ {
		out = out * (m - r + i) / i
		if out > clamp {
			return clamp
		}
	}
	return out
}

// Replicas implements hashring.Placement: the replica set of the
// item's class, distinguished copy first.
func (p *Placement) Replicas(item uint64, buf []int) []int {
	return append(buf[:0], p.sets[item%uint64(p.classes)]...)
}

// NumServers implements hashring.Placement.
func (p *Placement) NumServers() int { return p.servers }

// NumReplicas implements hashring.Placement.
func (p *Placement) NumReplicas() int { return p.replicas }

// Classes returns the size of the class universe the code is built
// over.
func (p *Placement) Classes() int { return p.classes }

// Class returns the item's class index.
func (p *Placement) Class(item uint64) int { return int(item % uint64(p.classes)) }

// Multiplicity returns the maximum number of classes sharing one exact
// replica subset (1 in the exact CBC range).
func (p *Placement) Multiplicity() int { return p.mult }

// Exact reports whether the construction is in the exact CBC range:
// every class on a distinct server subset (multiplicity 1).
func (p *Placement) Exact() bool { return p.mult == 1 }

// Subsets returns the number of distinct server subsets in use.
func (p *Placement) Subsets() int { return p.nsubsets }

// Guarantee returns T(k): the provable upper bound on items read from
// any one server when a request of k distinct classes is served by an
// optimal (min-max load) assignment — e.g. the planner's
// HintBalanceLoad path. The bound follows from distinctness: any u
// servers fully contain at most mult·C(u, r) classes, so by the defect
// form of Hall's theorem the optimal max load is
// max_j ceil(j / u_min(j)) over j <= k.
func (p *Placement) Guarantee(k int) int {
	if k <= 0 {
		return 0
	}
	if k > p.classes {
		k = p.classes
	}
	r := p.replicas
	if r > p.servers {
		r = p.servers
	}
	t := 1
	for j := 1; j <= k; j++ {
		u := r
		for u < p.servers && p.mult*combin(u, r) < j {
			u++
		}
		if tj := (j + u - 1) / u; tj > t {
			t = tj
		}
	}
	return t
}

// String summarizes the code's parameters.
func (p *Placement) String() string {
	kind := "multiset"
	if p.Exact() {
		kind = "exact"
	}
	return fmt.Sprintf("cbc(%s: n=%d classes, m=%d servers, r=%d, %d subsets, mult %d)",
		kind, p.classes, p.servers, p.replicas, p.nsubsets, p.mult)
}
