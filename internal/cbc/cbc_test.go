package cbc_test

import (
	"fmt"
	"sort"
	"testing"

	"rnb/internal/cbc"
	"rnb/internal/core"
	"rnb/internal/hashring/placementtest"
)

func TestCBCPlacementContract(t *testing.T) {
	for _, tc := range []struct{ servers, replicas, classes int }{
		{6, 2, 15},    // exact: n = C(6,2)
		{16, 3, 560},  // exact: n = C(16,3)
		{16, 3, 4000}, // multiset: mult 8
		{5, 2, 23},    // multiset, uneven
		{4, 8, 50},    // replicas > servers: clamp
		{40, 3, 2000}, // C(40,3) = 9880 > maxEnum: sampling path
		{1, 1, 7},     // degenerate single server
	} {
		name := fmt.Sprintf("m%d_r%d_n%d", tc.servers, tc.replicas, tc.classes)
		t.Run(name, func(t *testing.T) {
			p := cbc.New(tc.servers, tc.replicas, tc.classes, 7)
			items := tc.classes + 17 // wraps past the class universe too
			placementtest.Run(t, p, items)
		})
	}
}

func TestCBCExactRangeDistinctSubsets(t *testing.T) {
	// Within n <= C(m, r) every class must sit on a distinct subset —
	// the property the worst-case bound flows from.
	p := cbc.New(16, 3, 560, 3)
	if !p.Exact() || p.Multiplicity() != 1 {
		t.Fatalf("n = C(16,3) should be exact, got mult %d", p.Multiplicity())
	}
	seen := make(map[string]bool)
	for class := 0; class < p.Classes(); class++ {
		sig := append([]int(nil), p.Replicas(uint64(class), nil)...)
		sort.Ints(sig)
		key := fmt.Sprint(sig)
		if seen[key] {
			t.Fatalf("class %d reuses subset %v inside the exact range", class, sig)
		}
		seen[key] = true
	}
}

func TestCBCMultiplicityBalanced(t *testing.T) {
	// Beyond the exact range, no subset may be reused more than
	// ceil(n / subsets) times — the bound Guarantee computes with.
	p := cbc.New(6, 2, 40, 9) // C(6,2)=15, mult = ceil(40/15) = 3
	if p.Exact() {
		t.Fatal("n > C(6,2) cannot be exact")
	}
	counts := make(map[string]int)
	for class := 0; class < p.Classes(); class++ {
		sig := append([]int(nil), p.Replicas(uint64(class), nil)...)
		sort.Ints(sig)
		counts[fmt.Sprint(sig)]++
	}
	for sig, c := range counts {
		if c > p.Multiplicity() {
			t.Fatalf("subset %s used %d times, multiplicity bound %d", sig, c, p.Multiplicity())
		}
	}
}

func TestCBCServerAndDistinguishedBalance(t *testing.T) {
	const servers, replicas, classes = 16, 3, 4000
	p := cbc.New(servers, replicas, classes, 5)
	slots := make([]int, servers)
	dist := make([]int, servers)
	var buf []int
	for class := 0; class < classes; class++ {
		buf = p.Replicas(uint64(class), buf)
		dist[buf[0]]++
		for _, s := range buf {
			slots[s]++
		}
	}
	slotMean := classes * replicas / servers
	distMean := classes / servers
	for s := 0; s < servers; s++ {
		if slots[s] < slotMean*3/4 || slots[s] > slotMean*4/3 {
			t.Errorf("server %d holds %d replica slots, mean %d", s, slots[s], slotMean)
		}
		if dist[s] < distMean*3/4 || dist[s] > distMean*4/3 {
			t.Errorf("server %d pins %d distinguished copies, mean %d", s, dist[s], distMean)
		}
	}
}

func TestCBCDeterministicAndSeedVaries(t *testing.T) {
	a := cbc.New(16, 3, 1000, 11)
	b := cbc.New(16, 3, 1000, 11)
	c := cbc.New(16, 3, 1000, 12)
	same, diff := 0, 0
	for class := 0; class < 1000; class++ {
		x := fmt.Sprint(a.Replicas(uint64(class), nil))
		if x != fmt.Sprint(b.Replicas(uint64(class), nil)) {
			t.Fatalf("class %d: equal seeds disagree", class)
		}
		if x == fmt.Sprint(c.Replicas(uint64(class), nil)) {
			same++
		} else {
			diff++
		}
	}
	if diff < 500 {
		t.Fatalf("only %d/1000 placements differ across seeds", diff)
	}
}

// foreachSubset enumerates every k-subset of [0, n), calling fn with a
// reused index slice.
func foreachSubset(n, k int, fn func(idx []int)) {
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		fn(idx)
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// TestCBCGuaranteeExhaustive is the headline property test: for every
// k-item request over small constructions — the full valid parameter
// range is enumerable there — the optimal assignment (the planner's
// HintBalanceLoad solver) must read at most Guarantee(k) items from
// any one server. Covers the exact range (mult 1) and the multiset
// fallback (mult > 1).
func TestCBCGuaranteeExhaustive(t *testing.T) {
	for _, tc := range []struct {
		servers, replicas, classes, k int
	}{
		{6, 2, 15, 4}, // exact, t=1 regime: C(15,4) = 1365 requests
		{6, 2, 15, 5}, // exact, t=2 regime: C(15,5) = 3003 requests
		{5, 2, 10, 6}, // exact, saturated: every 2-subset of 5 in use
		{5, 2, 20, 4}, // multiset mult 2: C(20,4) = 4845 requests
		{4, 3, 4, 3},  // r close to m
	} {
		name := fmt.Sprintf("m%d_r%d_n%d_k%d", tc.servers, tc.replicas, tc.classes, tc.k)
		t.Run(name, func(t *testing.T) {
			p := cbc.New(tc.servers, tc.replicas, tc.classes, 1)
			bound := p.Guarantee(tc.k)
			replicas := make([][]int, tc.classes)
			for class := 0; class < tc.classes; class++ {
				replicas[class] = p.Replicas(uint64(class), nil)
			}
			cands := make([][]int, tc.k)
			checked := 0
			foreachSubset(tc.classes, tc.k, func(idx []int) {
				for i, class := range idx {
					cands[i] = replicas[class]
				}
				_, maxLoad := core.BalancedAssign(cands)
				if maxLoad > bound {
					t.Fatalf("request %v: optimal max load %d exceeds guarantee %d (%s)",
						idx, maxLoad, bound, p)
				}
				checked++
			})
			t.Logf("%s: guarantee T(%d)=%d held over all %d requests", p, tc.k, bound, checked)
		})
	}
}

// TestCBCGuaranteeValues pins the closed-form bound on known cases.
func TestCBCGuaranteeValues(t *testing.T) {
	// Exact 2-uniform code over 6 servers: any 4 items are served with
	// one read per server; a 5th can force a second read somewhere.
	p := cbc.New(6, 2, 15, 1)
	if got := p.Guarantee(4); got != 1 {
		t.Errorf("Guarantee(4) = %d, want 1", got)
	}
	if got := p.Guarantee(5); got != 2 {
		t.Errorf("Guarantee(5) = %d, want 2", got)
	}
	// Full replication degenerates to the ceil(k/m) floor.
	full := cbc.New(4, 4, 10, 1)
	if got := full.Guarantee(8); got != 2 {
		t.Errorf("full replication Guarantee(8) = %d, want 2", got)
	}
	if got := p.Guarantee(0); got != 0 {
		t.Errorf("Guarantee(0) = %d, want 0", got)
	}
}

func TestCBCPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("servers<1", func() { cbc.New(0, 1, 10, 1) })
	mustPanic("replicas<1", func() { cbc.New(4, 0, 10, 1) })
	mustPanic("classes<1", func() { cbc.New(4, 2, 0, 1) })
}
