// Package chaos is a deterministic fault-injection harness for network
// servers: it wraps a net.Listener so that accepted connections
// misbehave in seeded, scriptable ways — connection refusal, black-hole
// (accept, then never answer), latency injection, mid-stream resets,
// truncated responses, and flapping (fail for a while, recover).
//
// The point is to make partial failure *testable*: any test that today
// hard-closes a backend can instead run it behind an Injector and
// exercise the client's breaker, retry, and re-plan paths against
// realistic failure modes, reproducibly (same Seed, same accept order
// => same faults).
//
//	inj := chaos.New(chaos.Profile{Seed: 1, PReset: 0.5, ResetAfterWrites: 1})
//	go srv.Serve(inj.Wrap(ln))
//
// An Injector also doubles as a kill switch: Kill() refuses all new
// connections and hard-resets the established ones (a crashed server),
// Revive() restores normal service on the same address — no listener
// rebinding needed, which keeps kill/revive tests free of port races.
package chaos

import (
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ConnPlan is the fault script for a single accepted connection.
type ConnPlan struct {
	// Refuse closes the connection immediately on accept (the client
	// sees a reset on first use — a crashed or firewalled server).
	Refuse bool
	// Blackhole accepts the connection but never delivers any of the
	// client's bytes to the server, so no response ever comes back and
	// the client runs into its I/O deadline.
	Blackhole bool
	// Delay is added before each delivery of client bytes to the
	// server (per-read latency injection).
	Delay time.Duration
	// ResetAfterWrites hard-closes the connection after this many
	// server->client writes (responses) have been delivered; 0 means
	// never. With a buffered server, one write is one response flush,
	// so ResetAfterWrites: N serves N operations and then dies
	// mid-stream — the building block for op-level flapping, since a
	// reconnecting client gets a fresh connection (and a fresh plan).
	ResetAfterWrites int
	// TruncateWrites delivers only the first half of each server write
	// past the ResetAfterWrites budget instead of cleanly resetting —
	// the client sees a corrupt, cut-short response. Only meaningful
	// with ResetAfterWrites > 0.
	TruncateWrites bool
}

// Profile generates per-connection fault plans deterministically from
// Seed. Probabilities are evaluated in a fixed order on each accept, so
// a given seed and accept sequence always yields the same faults.
type Profile struct {
	// Seed for the internal PRNG. Two injectors with equal profiles
	// make identical decisions in accept order.
	Seed int64

	// PRefuse, PBlackhole, PReset, PTruncate are the per-connection
	// probabilities of the corresponding fault (evaluated in that
	// order; the first hit wins, except truncation which modifies
	// reset).
	PRefuse    float64
	PBlackhole float64
	PReset     float64
	PTruncate  float64

	// ResetAfterWrites is the write budget used when PReset or
	// PTruncate hits (default 1: die after the first response).
	ResetAfterWrites int

	// MaxDelay injects a uniform 0..MaxDelay latency before each
	// delivery of client bytes on every connection.
	MaxDelay time.Duration

	// FlapDown/FlapUp refuse the first FlapDown of every
	// FlapDown+FlapUp consecutive connection attempts — a server that
	// is down for a while, then back, repeatedly. 0 disables.
	FlapDown, FlapUp int

	// Script, when non-empty, overrides the probabilistic fields: the
	// i-th accepted connection uses Script[i % len(Script)].
	Script []ConnPlan
}

// Stats counts injected faults (all fields are totals since New).
type Stats struct {
	Accepted   uint64 // connections handed to the server
	Refused    uint64 // connections reset on accept
	Blackholed uint64 // connections accepted into a black hole
	Resets     uint64 // mid-stream resets after the write budget
	Truncated  uint64 // truncated server writes
	Delayed    uint64 // reads that had latency injected
}

// Injector wraps listeners with a fault profile.
type Injector struct {
	mu     sync.Mutex
	prof   Profile
	rng    *rand.Rand
	nconns uint64
	active map[*faultConn]struct{}

	enabled atomic.Bool
	killed  atomic.Bool

	accepted, refused, blackholed atomic.Uint64
	resets, truncated, delayed    atomic.Uint64
}

// New builds an enabled injector for the profile.
func New(p Profile) *Injector {
	in := &Injector{
		prof:   p,
		rng:    rand.New(rand.NewSource(p.Seed)),
		active: make(map[*faultConn]struct{}),
	}
	in.enabled.Store(true)
	return in
}

// SetEnabled turns fault injection on or off at runtime. While
// disabled, connections pass through untouched (established faulty
// connections keep their plan).
func (in *Injector) SetEnabled(on bool) { in.enabled.Store(on) }

// Kill simulates a server crash: every new connection is refused and
// every currently active connection is hard-reset.
func (in *Injector) Kill() {
	in.killed.Store(true)
	in.mu.Lock()
	conns := make([]*faultConn, 0, len(in.active))
	for c := range in.active {
		conns = append(conns, c)
	}
	in.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Revive undoes Kill: new connections are served again (subject to the
// profile, if injection is enabled).
func (in *Injector) Revive() { in.killed.Store(false) }

// Stats returns the fault counters.
func (in *Injector) Stats() Stats {
	return Stats{
		Accepted:   in.accepted.Load(),
		Refused:    in.refused.Load(),
		Blackholed: in.blackholed.Load(),
		Resets:     in.resets.Load(),
		Truncated:  in.truncated.Load(),
		Delayed:    in.delayed.Load(),
	}
}

// planFor draws the fault plan for the next accepted connection.
func (in *Injector) planFor() ConnPlan {
	if in.killed.Load() {
		return ConnPlan{Refuse: true}
	}
	if !in.enabled.Load() {
		return ConnPlan{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	n := in.nconns
	in.nconns++
	if len(in.prof.Script) > 0 {
		return in.prof.Script[int(n)%len(in.prof.Script)]
	}
	var plan ConnPlan
	if in.prof.FlapDown > 0 {
		cycle := in.prof.FlapDown + in.prof.FlapUp
		if cycle <= 0 {
			cycle = in.prof.FlapDown
		}
		if int(n)%cycle < in.prof.FlapDown {
			plan.Refuse = true
			return plan
		}
	}
	// Draw in fixed order so decisions are reproducible per seed.
	rRefuse := in.rng.Float64()
	rBlack := in.rng.Float64()
	rReset := in.rng.Float64()
	rTrunc := in.rng.Float64()
	budget := in.prof.ResetAfterWrites
	if budget <= 0 {
		budget = 1
	}
	switch {
	case rRefuse < in.prof.PRefuse:
		plan.Refuse = true
	case rBlack < in.prof.PBlackhole:
		plan.Blackhole = true
	case rReset < in.prof.PReset:
		plan.ResetAfterWrites = budget
	case rTrunc < in.prof.PTruncate:
		plan.ResetAfterWrites = budget
		plan.TruncateWrites = true
	}
	if in.prof.MaxDelay > 0 {
		plan.Delay = time.Duration(in.rng.Int63n(int64(in.prof.MaxDelay) + 1))
	}
	return plan
}

// Wrap returns a listener that applies the injector's faults to every
// accepted connection. Several listeners may share one injector (one
// decision stream).
func (in *Injector) Wrap(ln net.Listener) net.Listener {
	return &faultListener{Listener: ln, in: in}
}

type faultListener struct {
	net.Listener
	in *Injector
}

func (l *faultListener) Accept() (net.Conn, error) {
	for {
		conn, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		plan := l.in.planFor()
		if plan.Refuse {
			l.in.refused.Add(1)
			abortConn(conn)
			continue
		}
		l.in.accepted.Add(1)
		if plan.Blackhole {
			l.in.blackholed.Add(1)
		}
		fc := &faultConn{Conn: conn, in: l.in, plan: plan, closed: make(chan struct{})}
		l.in.mu.Lock()
		l.in.active[fc] = struct{}{}
		l.in.mu.Unlock()
		return fc, nil
	}
}

// abortConn closes a connection with an RST rather than a graceful FIN
// so the peer sees the abrupt failure a crashed server would produce.
func abortConn(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	conn.Close()
}

// faultConn applies a ConnPlan to one server-side connection.
type faultConn struct {
	net.Conn
	in   *Injector
	plan ConnPlan

	writes    int
	closeOnce sync.Once
	closed    chan struct{}
}

func (c *faultConn) Read(p []byte) (int, error) {
	if c.plan.Blackhole {
		// Swallow the client's request: block until the connection is
		// torn down, so the server never answers and the client times
		// out against its own deadline.
		<-c.closed
		return 0, net.ErrClosed
	}
	if c.plan.Delay > 0 {
		c.in.delayed.Add(1)
		select {
		case <-time.After(c.plan.Delay):
		case <-c.closed:
			return 0, net.ErrClosed
		}
	}
	return c.Conn.Read(p)
}

func (c *faultConn) Write(p []byte) (int, error) {
	if c.plan.Blackhole {
		// Nothing the server writes ever reaches the client.
		return len(p), nil
	}
	if n := c.plan.ResetAfterWrites; n > 0 && c.writes >= n {
		if c.plan.TruncateWrites && len(p) > 1 {
			c.in.truncated.Add(1)
			c.Conn.Write(p[:len(p)/2])
		} else {
			c.in.resets.Add(1)
		}
		c.Close()
		return 0, net.ErrClosed
	}
	n, err := c.Conn.Write(p)
	if err == nil {
		c.writes++
	}
	return n, err
}

func (c *faultConn) Close() error {
	c.closeOnce.Do(func() {
		close(c.closed)
		c.in.mu.Lock()
		delete(c.in.active, c)
		c.in.mu.Unlock()
		abortConn(c.Conn)
	})
	return nil
}
