package chaos

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"
)

// echoServer serves a line-oriented echo protocol ("x\n" -> "echo:x\n")
// behind the injector, and returns the dial address.
func echoServer(t *testing.T, in *Injector) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wrapped := in.Wrap(ln)
	go func() {
		for {
			conn, err := wrapped.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				sc := bufio.NewScanner(conn)
				for sc.Scan() {
					if _, err := fmt.Fprintf(conn, "echo:%s\n", sc.Text()); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln.Addr().String()
}

// echoOnce dials, sends one line, and returns the response line.
func echoOnce(addr, msg string, timeout time.Duration) (string, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return "", err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	if _, err := fmt.Fprintf(conn, "%s\n", msg); err != nil {
		return "", err
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimSuffix(line, "\n"), nil
}

func TestPassThroughWhenDisabled(t *testing.T) {
	in := New(Profile{Seed: 1, PRefuse: 1})
	in.SetEnabled(false)
	addr := echoServer(t, in)
	got, err := echoOnce(addr, "hi", time.Second)
	if err != nil || got != "echo:hi" {
		t.Fatalf("disabled injector interfered: %q %v", got, err)
	}
}

func TestDeterministicDecisions(t *testing.T) {
	prof := Profile{Seed: 42, PRefuse: 0.3, PBlackhole: 0.3, PReset: 0.3, MaxDelay: 5 * time.Millisecond}
	a, b := New(prof), New(prof)
	for i := 0; i < 200; i++ {
		pa, pb := a.planFor(), b.planFor()
		if pa != pb {
			t.Fatalf("conn %d: plans diverge: %+v vs %+v", i, pa, pb)
		}
	}
}

func TestRefuseAll(t *testing.T) {
	in := New(Profile{Seed: 1, PRefuse: 1})
	addr := echoServer(t, in)
	if got, err := echoOnce(addr, "hi", 500*time.Millisecond); err == nil {
		t.Fatalf("refused connection answered %q", got)
	}
	if in.Stats().Refused == 0 {
		t.Fatal("refusals not counted")
	}
}

func TestBlackholeTimesOut(t *testing.T) {
	in := New(Profile{Seed: 1, PBlackhole: 1})
	addr := echoServer(t, in)
	start := time.Now()
	if got, err := echoOnce(addr, "hi", 200*time.Millisecond); err == nil {
		t.Fatalf("black-holed connection answered %q", got)
	}
	if time.Since(start) < 150*time.Millisecond {
		t.Fatal("black hole failed fast; want a deadline-style hang")
	}
	if in.Stats().Blackholed == 0 {
		t.Fatal("black holes not counted")
	}
}

func TestLatencyInjection(t *testing.T) {
	in := New(Profile{Seed: 1, MaxDelay: 20 * time.Millisecond})
	addr := echoServer(t, in)
	got, err := echoOnce(addr, "hi", 2*time.Second)
	if err != nil || got != "echo:hi" {
		t.Fatalf("delayed echo: %q %v", got, err)
	}
	if in.Stats().Delayed == 0 {
		t.Fatal("delays not counted")
	}
}

func TestResetAfterWrites(t *testing.T) {
	in := New(Profile{Seed: 1, PReset: 1, ResetAfterWrites: 1})
	addr := echoServer(t, in)
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(time.Second))
	r := bufio.NewReader(conn)
	// First op is served.
	fmt.Fprintf(conn, "one\n")
	if line, err := r.ReadString('\n'); err != nil || line != "echo:one\n" {
		t.Fatalf("first op: %q %v", line, err)
	}
	// Second op dies mid-stream.
	fmt.Fprintf(conn, "two\n")
	if line, err := r.ReadString('\n'); err == nil {
		t.Fatalf("second op survived the reset: %q", line)
	}
	if in.Stats().Resets == 0 {
		t.Fatal("resets not counted")
	}
}

func TestTruncatedWrites(t *testing.T) {
	in := New(Profile{Seed: 1, Script: []ConnPlan{{ResetAfterWrites: 1, TruncateWrites: true}}})
	addr := echoServer(t, in)
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(time.Second))
	r := bufio.NewReader(conn)
	fmt.Fprintf(conn, "one\n")
	if line, err := r.ReadString('\n'); err != nil || line != "echo:one\n" {
		t.Fatalf("first op: %q %v", line, err)
	}
	fmt.Fprintf(conn, "a-longer-line\n")
	line, err := r.ReadString('\n')
	if err == nil {
		t.Fatalf("truncated response arrived whole: %q", line)
	}
	if line == "" {
		t.Fatal("response fully suppressed; want a truncated prefix")
	}
	if in.Stats().Truncated == 0 {
		t.Fatal("truncations not counted")
	}
}

func TestFlapSchedule(t *testing.T) {
	in := New(Profile{Seed: 1, FlapDown: 2, FlapUp: 1})
	for i := 0; i < 9; i++ {
		plan := in.planFor()
		wantDown := i%3 < 2
		if plan.Refuse != wantDown {
			t.Fatalf("conn %d: refuse=%v, want %v", i, plan.Refuse, wantDown)
		}
	}
}

func TestFlappingServesWhenUp(t *testing.T) {
	// Down 1, up 2: attempt 0 refused, 1 and 2 served, 3 refused, ...
	in := New(Profile{Seed: 1, FlapDown: 1, FlapUp: 2})
	addr := echoServer(t, in)
	var served, refused int
	for i := 0; i < 9; i++ {
		if _, err := echoOnce(addr, "hi", 500*time.Millisecond); err != nil {
			refused++
		} else {
			served++
		}
	}
	if served != 6 || refused != 3 {
		t.Fatalf("served=%d refused=%d, want 6/3", served, refused)
	}
}

func TestKillRevive(t *testing.T) {
	in := New(Profile{Seed: 1})
	addr := echoServer(t, in)

	// Healthy, with a live connection.
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(time.Second))
	r := bufio.NewReader(conn)
	fmt.Fprintf(conn, "pre\n")
	if line, _ := r.ReadString('\n'); line != "echo:pre\n" {
		t.Fatalf("healthy echo: %q", line)
	}

	// Kill: the live connection dies, new ones are refused.
	in.Kill()
	fmt.Fprintf(conn, "post\n")
	if line, err := r.ReadString('\n'); err == nil {
		t.Fatalf("killed server answered on live conn: %q", line)
	}
	if _, err := echoOnce(addr, "hi", 500*time.Millisecond); err == nil {
		t.Fatal("killed server accepted a new connection")
	}

	// Revive: back to normal on the same address.
	in.Revive()
	got, err := echoOnce(addr, "hi", time.Second)
	if err != nil || got != "echo:hi" {
		t.Fatalf("revived server: %q %v", got, err)
	}
}
