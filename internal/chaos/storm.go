package chaos

import (
	"fmt"
	"math/rand"
)

// This file adds the "resize storm" scenario to the chaos harness:
// a seeded script of concurrent-feeling membership churn (servers
// joining and draining) interleaved with crashes and recoveries. The
// generator is model-based — it tracks which servers are in the tier
// and which are down — so every emitted step is legal at the point it
// executes, and the same seed always yields the same storm. Drivers
// (the topology e2e suite) replay the script against a live client
// and its injectors while readers assert zero failed idempotent reads.

// StormOp is one kind of storm action.
type StormOp int

const (
	// StormAdd joins a server to the tier (AddServer).
	StormAdd StormOp = iota
	// StormRemove drains a server out of the tier (RemoveServer).
	StormRemove
	// StormKill crashes a server in place (Injector.Kill): it stays a
	// member, but refuses all connections until revived.
	StormKill
	// StormRevive restores a killed server (Injector.Revive).
	StormRevive
)

// String names the op for test failure messages.
func (op StormOp) String() string {
	switch op {
	case StormAdd:
		return "add"
	case StormRemove:
		return "remove"
	case StormKill:
		return "kill"
	case StormRevive:
		return "revive"
	}
	return fmt.Sprintf("StormOp(%d)", int(op))
}

// StormStep is one action of a resize storm, targeting a server by its
// index in the driver's address list.
type StormStep struct {
	Op     StormOp
	Target int
}

// StormConfig parameterizes ResizeStorm.
type StormConfig struct {
	// Seed for the script PRNG; equal configs generate equal scripts.
	Seed int64
	// Servers is the total addressable pool (members + spares).
	Servers int
	// Members is how many servers start in the tier: indices
	// [0, Members). The rest are spares available to StormAdd.
	Members int
	// MinMembers is the floor the script never drains below (default:
	// 1). Keep it at or above the replication level so reads always
	// have live copies to fall back on.
	MinMembers int
	// MaxKilled bounds how many servers are crashed at once (default 1).
	MaxKilled int
	// Steps is the number of churn actions to draw. The script appends
	// a revive for every server still down afterwards, so it always
	// ends with the whole pool reachable.
	Steps int
}

// ResizeStorm generates a seeded membership-churn script. Invariants,
// checked by the generator's own tests and safe for drivers to rely on:
//
//   - StormAdd targets a server that is out of the tier and not killed
//     (so the driver's dial can succeed once any prior drain settles);
//   - StormRemove never drops tier membership below MinMembers;
//   - StormKill targets a live in-tier server, with at most MaxKilled
//     down at any point;
//   - StormRevive targets a killed server;
//   - after the final step every server is revived.
func ResizeStorm(cfg StormConfig) []StormStep {
	if cfg.Servers < 1 || cfg.Members < 1 || cfg.Members > cfg.Servers {
		panic(fmt.Sprintf("chaos: bad storm config: %+v", cfg))
	}
	if cfg.MinMembers < 1 {
		cfg.MinMembers = 1
	}
	if cfg.MaxKilled < 1 {
		cfg.MaxKilled = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	inTier := make([]bool, cfg.Servers)
	killed := make([]bool, cfg.Servers)
	for i := 0; i < cfg.Members; i++ {
		inTier[i] = true
	}
	members := cfg.Members
	downed := 0

	pick := func(ok func(int) bool) (int, bool) {
		var cand []int
		for i := 0; i < cfg.Servers; i++ {
			if ok(i) {
				cand = append(cand, i)
			}
		}
		if len(cand) == 0 {
			return 0, false
		}
		return cand[rng.Intn(len(cand))], true
	}

	var steps []StormStep
	for len(steps) < cfg.Steps {
		// Draw ops until one is legal in the current model state; every
		// state admits at least StormAdd or StormRemove, so this
		// terminates.
		switch op := StormOp(rng.Intn(4)); op {
		case StormAdd:
			if t, ok := pick(func(i int) bool { return !inTier[i] && !killed[i] }); ok {
				inTier[t] = true
				members++
				steps = append(steps, StormStep{Op: op, Target: t})
			}
		case StormRemove:
			if members <= cfg.MinMembers {
				continue
			}
			if t, ok := pick(func(i int) bool { return inTier[i] }); ok {
				inTier[t] = false
				members--
				steps = append(steps, StormStep{Op: op, Target: t})
			}
		case StormKill:
			if downed >= cfg.MaxKilled {
				continue
			}
			if t, ok := pick(func(i int) bool { return inTier[i] && !killed[i] }); ok {
				killed[t] = true
				downed++
				steps = append(steps, StormStep{Op: op, Target: t})
			}
		case StormRevive:
			if t, ok := pick(func(i int) bool { return killed[i] }); ok {
				killed[t] = false
				downed--
				steps = append(steps, StormStep{Op: op, Target: t})
			}
		}
	}
	// Leave no server crashed: the storm's aftermath must be fully
	// recoverable, so final assertions measure the design, not the
	// script's parting shot.
	for i := 0; i < cfg.Servers; i++ {
		if killed[i] {
			steps = append(steps, StormStep{Op: StormRevive, Target: i})
		}
	}
	return steps
}
