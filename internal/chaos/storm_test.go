package chaos

import (
	"reflect"
	"testing"
)

// TestResizeStormInvariants replays generated scripts against the same
// model the generator uses and checks every documented invariant, over
// many seeds.
func TestResizeStormInvariants(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		cfg := StormConfig{Seed: seed, Servers: 7, Members: 5, MinMembers: 3, MaxKilled: 2, Steps: 40}
		steps := ResizeStorm(cfg)
		if len(steps) < cfg.Steps {
			t.Fatalf("seed %d: %d steps generated, want >= %d", seed, len(steps), cfg.Steps)
		}
		inTier := make([]bool, cfg.Servers)
		killed := make([]bool, cfg.Servers)
		for i := 0; i < cfg.Members; i++ {
			inTier[i] = true
		}
		members, downed := cfg.Members, 0
		for n, s := range steps {
			if s.Target < 0 || s.Target >= cfg.Servers {
				t.Fatalf("seed %d step %d: target %d out of range", seed, n, s.Target)
			}
			switch s.Op {
			case StormAdd:
				if inTier[s.Target] || killed[s.Target] {
					t.Fatalf("seed %d step %d: add of in-tier or killed server %d", seed, n, s.Target)
				}
				inTier[s.Target] = true
				members++
			case StormRemove:
				if !inTier[s.Target] {
					t.Fatalf("seed %d step %d: remove of non-member %d", seed, n, s.Target)
				}
				inTier[s.Target] = false
				if members--; members < cfg.MinMembers {
					t.Fatalf("seed %d step %d: membership fell to %d < %d", seed, n, members, cfg.MinMembers)
				}
			case StormKill:
				if !inTier[s.Target] || killed[s.Target] {
					t.Fatalf("seed %d step %d: kill of non-member or already-killed %d", seed, n, s.Target)
				}
				killed[s.Target] = true
				if downed++; downed > cfg.MaxKilled {
					t.Fatalf("seed %d step %d: %d servers down > MaxKilled %d", seed, n, downed, cfg.MaxKilled)
				}
			case StormRevive:
				if !killed[s.Target] {
					t.Fatalf("seed %d step %d: revive of live server %d", seed, n, s.Target)
				}
				killed[s.Target] = false
				downed--
			default:
				t.Fatalf("seed %d step %d: unknown op %v", seed, n, s.Op)
			}
		}
		if downed != 0 {
			t.Fatalf("seed %d: %d servers left killed at script end", seed, downed)
		}
	}
}

// TestResizeStormDeterministic: same config, same script.
func TestResizeStormDeterministic(t *testing.T) {
	cfg := StormConfig{Seed: 42, Servers: 6, Members: 4, MinMembers: 2, Steps: 25}
	a, b := ResizeStorm(cfg), ResizeStorm(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different scripts:\n%v\n%v", a, b)
	}
	cfg.Seed = 43
	if c := ResizeStorm(cfg); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical scripts")
	}
}

// TestResizeStormExercisesEveryOp: a long enough script under a mixed
// config uses all four ops (otherwise the storm proves little).
func TestResizeStormExercisesEveryOp(t *testing.T) {
	steps := ResizeStorm(StormConfig{Seed: 7, Servers: 7, Members: 5, MinMembers: 3, Steps: 60})
	seen := map[StormOp]bool{}
	for _, s := range steps {
		seen[s.Op] = true
	}
	for _, op := range []StormOp{StormAdd, StormRemove, StormKill, StormRevive} {
		if !seen[op] {
			t.Fatalf("op %v never drawn in 60 steps", op)
		}
	}
}
