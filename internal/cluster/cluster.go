// Package cluster simulates a memcached storage tier under RnB
// (paper §III-B, §III-D).
//
// Each simulated server is a capacity-limited LRU store. The
// *distinguished* copy of every item is pinned on its home server, so
// it can never miss — this reproduces the paper's accounting, where the
// space set aside for distinguished copies equals what an unreplicated
// system would use, and misses therefore cost only extra transactions,
// never database trips. Additional logical replicas compete for
// whatever memory remains (overbooking, §III-C-1): cold replicas fall
// out through LRU, hot ones stay because the deterministic greedy
// planner keeps choosing the same replica for similar requests.
//
// A request is executed in up to two rounds, as in §III-D:
//
//  1. the planned transactions are sent; every requested key costs the
//     server a lookup (hit or miss), and hitchhikers may turn misses
//     into hits;
//  2. items still missing are fetched, bundled, from their
//     distinguished servers — these transactions always hit.
//
// Missed items are written back to the server the planner assigned them
// to (the "first picked" replica), adapting the physical replica
// layout to the workload.
package cluster

import (
	"fmt"
	"math"
	"sync"

	"rnb/internal/core"
	"rnb/internal/hashring"
	"rnb/internal/lru"
	"rnb/internal/metrics"
	"rnb/internal/workload"
)

// Config parameterizes a simulated cluster.
type Config struct {
	// Servers is the number of memcached servers (> 0).
	Servers int
	// Items is the size of the item universe (> 0). Item ids are
	// 0..Items-1.
	Items int
	// Replicas is the declared (logical) replication level (>= 1).
	Replicas int
	// MemoryFactor is the total cluster memory expressed as a multiple
	// of one full copy of the data (1.0 = exactly enough for every
	// item once). <= 0 means unlimited memory: every logical replica is
	// physically resident, as in the fig. 6 experiments.
	MemoryFactor float64
	// Placement overrides the replica placement; nil selects ranged
	// consistent hashing over a fresh ring.
	Placement hashring.Placement
	// Planner options (hitchhiking, distinguished-single redirection).
	Planner core.Options
	// WriteBackOnMiss writes a missed item to its assigned server after
	// the request completes (§III-C-2 policy). Defaults to true via
	// New; set SkipWriteBack to disable.
	SkipWriteBack bool
	// Prepopulate loads all logical replicas (LRU order: replica level
	// round-robin) before the first request, instead of starting with
	// distinguished copies only. Defaults to true via New; set
	// SkipPrepopulate to disable.
	SkipPrepopulate bool
}

// HeatObserver is the key-stream hook an adaptive placement (package
// internal/hotspot) exposes: the cluster feeds every request's items
// into it before planning, so the heat tracker sees exactly what the
// planner is asked for.
type HeatObserver interface {
	Observe(items []uint64)
}

// Cluster is a simulated RnB memcached tier. All methods are safe for
// concurrent use: one mutex serializes request execution and state
// inspection, which keeps multi-goroutine drivers (the pooled-client
// benchmarks, chaos sweeps) honest without complicating the simulation
// itself — simulated "servers" share LRU state, so finer-grained
// locking would buy nothing here.
type Cluster struct {
	cfg       Config
	placement hashring.Placement
	planner   *core.Planner
	observer  HeatObserver // non-nil when the placement tracks heat

	mu        sync.Mutex
	servers   []*lru.Cache[uint64, struct{}]
	down      []bool
	nDown     int
	tally     metrics.Tally
	loads     []uint64 // per-server transactions served (round 1 + round 2)
	itemLoads []uint64 // per-server items carried by those transactions
}

// New builds and populates a cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.Servers < 1 {
		return nil, fmt.Errorf("cluster: need at least one server, got %d", cfg.Servers)
	}
	if cfg.Items < 1 {
		return nil, fmt.Errorf("cluster: need at least one item, got %d", cfg.Items)
	}
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("cluster: replication level must be >= 1, got %d", cfg.Replicas)
	}
	if cfg.MemoryFactor > 0 && cfg.MemoryFactor < 1 {
		return nil, fmt.Errorf("cluster: memory factor %.2f < 1 cannot hold the distinguished copies",
			cfg.MemoryFactor)
	}
	placement := cfg.Placement
	if placement == nil {
		ring := hashring.NewWithServers(cfg.Servers, hashring.DefaultVirtualNodes)
		placement = hashring.NewRCHPlacement(ring, cfg.Replicas)
	}
	if placement.NumServers() != cfg.Servers {
		return nil, fmt.Errorf("cluster: placement has %d servers, config says %d",
			placement.NumServers(), cfg.Servers)
	}

	perServer := int64(math.MaxInt64 / 2)
	if cfg.MemoryFactor > 0 {
		total := cfg.MemoryFactor * float64(cfg.Items)
		perServer = int64(math.Round(total / float64(cfg.Servers)))
	}

	c := &Cluster{
		cfg:       cfg,
		placement: placement,
		planner:   core.NewPlanner(placement, cfg.Planner),
		servers:   make([]*lru.Cache[uint64, struct{}], cfg.Servers),
		down:      make([]bool, cfg.Servers),
		loads:     make([]uint64, cfg.Servers),
		itemLoads: make([]uint64, cfg.Servers),
	}
	if obs, ok := placement.(HeatObserver); ok {
		c.observer = obs
	}
	for i := range c.servers {
		c.servers[i] = lru.New[uint64, struct{}](perServer)
	}
	c.populate()
	return c, nil
}

// populate pins the distinguished copy of every item and, unless
// disabled, loads the remaining logical replicas level by level so LRU
// pressure falls evenly across items rather than on low ids.
func (c *Cluster) populate() {
	var buf []int
	for item := 0; item < c.cfg.Items; item++ {
		buf = c.placement.Replicas(uint64(item), buf)
		c.servers[buf[0]].Put(uint64(item), struct{}{}, 1, true)
	}
	if c.cfg.SkipPrepopulate {
		return
	}
	for level := 1; level < c.cfg.Replicas; level++ {
		for item := 0; item < c.cfg.Items; item++ {
			buf = c.placement.Replicas(uint64(item), buf)
			if level < len(buf) {
				c.servers[buf[level]].Put(uint64(item), struct{}{}, 1, false)
			}
		}
	}
}

// Planner exposes the cluster's planner (for diagnostics and tests).
func (c *Cluster) Planner() *core.Planner { return c.planner }

// Tally returns the accumulated metrics.
func (c *Cluster) Tally() *metrics.Tally { return &c.tally }

// ResetTally clears the metrics (e.g. after warm-up) without touching
// cache state. Per-server load counters reset with the tally.
func (c *Cluster) ResetTally() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tally = metrics.Tally{}
	for i := range c.loads {
		c.loads[i] = 0
		c.itemLoads[i] = 0
	}
}

// ServerLoads returns a copy of the per-server transaction counts
// since the last ResetTally — the load-imbalance measurement behind
// the hotspot experiments (max/mean of this slice is the imbalance
// factor).
func (c *Cluster) ServerLoads() []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]uint64(nil), c.loads...)
}

// ServerItemLoads returns a copy of the per-server item-lookup counts
// since the last ResetTally: how many keys each server was asked for,
// across round-1 primaries, hitchhikers, and round-2 bundles. This is
// the per-server *work* measure the Combinatorial Batch Code bound
// (internal/cbc) speaks to — a server can serve few transactions yet
// still be the bottleneck if each carries many items.
func (c *Cluster) ServerItemLoads() []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]uint64(nil), c.itemLoads...)
}

// Config returns the cluster's configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Occupancy returns, per server, resident cost / capacity. Diagnostics.
func (c *Cluster) Occupancy() []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]float64, len(c.servers))
	for i, s := range c.servers {
		if s.Capacity() > 0 {
			out[i] = float64(s.Cost()) / float64(s.Capacity())
		}
	}
	return out
}

// FailServer marks a server as down (fail-stop). Plans route around
// it; items with no surviving replica fall through to the
// authoritative store (counted in Tally().DBFetches). The server's
// memory is retained for RestoreServer, modeling a process restart
// behind a warm cache or a fast-rejoining node.
func (c *Cluster) FailServer(i int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.servers) {
		return fmt.Errorf("cluster: no server %d", i)
	}
	if !c.down[i] {
		c.down[i] = true
		c.nDown++
	}
	return nil
}

// RestoreServer brings a failed server back.
func (c *Cluster) RestoreServer(i int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i < 0 || i >= len(c.servers) {
		return fmt.Errorf("cluster: no server %d", i)
	}
	if c.down[i] {
		c.down[i] = false
		c.nDown--
	}
	return nil
}

// avoidFn returns the plan filter for the current failure set, or nil
// when everything is up (fast path).
func (c *Cluster) avoidFn() func(int) bool {
	if c.nDown == 0 {
		return nil
	}
	return func(s int) bool { return c.down[s] }
}

// RequestResult reports what one request cost.
type RequestResult struct {
	Transactions int // round-1 + round-2
	Round2       int
	Misses       int // assigned items that missed at their assigned server
	Obtained     int // distinct requested items fetched
	// Bottleneck is the largest number of keys any single server was
	// asked for while serving this request — the per-request measure the
	// Combinatorial Batch Code bound (internal/cbc) caps: with a CBC
	// placement and core.HintBalanceLoad, Bottleneck ≤ Guarantee(k) for
	// every k-item full fetch (absent failures and hitchhikers).
	Bottleneck int
}

// Do executes one request against the cluster and updates the tally.
func (c *Cluster) Do(req workload.Request) (RequestResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.observer != nil {
		// Feed the heat tracker before planning, mirroring the client:
		// the epoch controller may rotate here, between requests, never
		// mid-plan.
		c.observer.Observe(req.Items)
	}
	avoid := c.avoidFn()
	plan, err := c.planner.BuildAvoiding(req.Items, req.Target, avoid)
	if err != nil {
		return RequestResult{}, err
	}
	m := len(plan.Items)
	index := make(map[uint64]int, m)
	for i, it := range plan.Items {
		index[it] = i
	}
	obtained := make([]bool, m)
	perSrv := make(map[int]int) // server -> keys asked of it, this request
	var res RequestResult

	// Round 1: planned transactions. Every key aboard costs the server a
	// lookup; hits promote LRU recency (also for hitchhikers, per the
	// paper's chosen policy).
	for _, txn := range plan.Transactions {
		srv := c.servers[txn.Server]
		size := 0
		for _, it := range txn.Primary {
			size++
			i := index[it]
			if _, ok := srv.Get(it); ok {
				obtained[i] = true
			} else {
				res.Misses++
			}
		}
		for _, it := range txn.Hitchhikers {
			size++
			if _, ok := srv.Get(it); ok {
				if j := index[it]; !obtained[j] {
					obtained[j] = true
					c.tally.HitchhikeHit++
				}
			}
		}
		res.Transactions++
		c.loads[txn.Server]++
		c.itemLoads[txn.Server] += uint64(size)
		perSrv[txn.Server] += size
		c.tally.TxnSize.Add(size)
	}

	// Round 2: bundle still-missing *assigned* items by their acting
	// distinguished server (the distinguished copy itself when its
	// server is up — pinned, so it always hits — else the first
	// surviving replica, which may itself miss). Items without a single
	// surviving replica, and LIMIT-unassigned items, are handled after.
	var missingItems []uint64
	var missingActing [][]int
	for i := range plan.Items {
		if obtained[i] || plan.ItemServer[i] == -1 {
			continue
		}
		// Assigned items always have a live acting distinguished: their
		// assigned server is live, and the acting server precedes or
		// equals it in the replica walk.
		acting, ok := core.ActingDistinguished(plan.Replicas[i], avoid)
		if !ok {
			return res, fmt.Errorf("cluster: assigned item %d has no live replica", plan.Items[i])
		}
		missingItems = append(missingItems, plan.Items[i])
		missingActing = append(missingActing, []int{acting})
	}
	for _, txn := range core.SecondRound(missingItems, missingActing) {
		srv := c.servers[txn.Server]
		for _, it := range txn.Primary {
			i := index[it]
			if _, ok := srv.Get(it); ok {
				obtained[i] = true
				continue
			}
			if txn.Server == plan.Replicas[i][0] {
				// Invariant violation: true distinguished copies are pinned.
				return res, fmt.Errorf("cluster: distinguished copy of item %d missing on server %d",
					it, txn.Server)
			}
			// Acting distinguished (survivor) missed too: the store.
			c.tally.DBFetches++
			obtained[i] = true
			srv.Put(it, struct{}{}, 1, false)
		}
		res.Transactions++
		res.Round2++
		c.loads[txn.Server]++
		c.itemLoads[txn.Server] += uint64(len(txn.Primary))
		perSrv[txn.Server] += len(txn.Primary)
		c.tally.TxnSize.Add(len(txn.Primary))
	}

	// Unassigned-but-needed items: the cache tier cannot serve them —
	// under a full fetch an unassigned item means every replica server
	// is down; under a LIMIT plan the planner may also have stopped
	// short of the target because failures shrank the candidate sets.
	// Either way the authoritative store makes up the difference.
	target := req.Target
	if target <= 0 || target > m {
		target = m
	}
	obtainedCount := 0
	for _, ok := range obtained {
		if ok {
			obtainedCount++
		}
	}
	for i := range plan.Items {
		if obtainedCount >= target {
			break
		}
		if obtained[i] || plan.ItemServer[i] != -1 {
			continue
		}
		c.tally.DBFetches++
		obtained[i] = true
		obtainedCount++
	}

	// Write-back: repopulate the assigned replica of each item that
	// missed there, so the physical layout adapts to the workload.
	if !c.cfg.SkipWriteBack {
		for i, it := range plan.Items {
			if plan.ItemServer[i] == -1 || !obtained[i] {
				continue
			}
			srv := c.servers[plan.ItemServer[i]]
			if !srv.Contains(it) {
				srv.Put(it, struct{}{}, 1, false)
			}
		}
	}

	for _, ok := range obtained {
		if ok {
			res.Obtained++
		}
	}
	for _, keys := range perSrv {
		if keys > res.Bottleneck {
			res.Bottleneck = keys
		}
	}
	c.tally.Requests++
	c.tally.Transactions += uint64(res.Transactions)
	c.tally.Round2 += uint64(res.Round2)
	c.tally.ItemsWanted += uint64(m)
	c.tally.ItemsFetched += uint64(res.Obtained)
	c.tally.Misses += uint64(res.Misses)
	c.tally.TPRHist.Add(res.Transactions)
	c.tally.BottleneckHist.Add(res.Bottleneck)
	return res, nil
}

// Run executes n requests from gen, returning the first error.
func (c *Cluster) Run(gen workload.Generator, n int) error {
	for i := 0; i < n; i++ {
		if _, err := c.Do(gen.Next()); err != nil {
			return err
		}
	}
	return nil
}
