package cluster

import (
	"fmt"
	"math"
	"testing"

	"rnb/internal/cbc"
	"rnb/internal/core"
	"rnb/internal/hashring"
	"rnb/internal/workload"
)

func mustNew(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{Servers: 0, Items: 10, Replicas: 1},
		{Servers: 2, Items: 0, Replicas: 1},
		{Servers: 2, Items: 10, Replicas: 0},
		{Servers: 2, Items: 10, Replicas: 1, MemoryFactor: 0.5},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestUnreplicatedNeverMisses(t *testing.T) {
	c := mustNew(t, Config{Servers: 8, Items: 1000, Replicas: 1, MemoryFactor: 1.0})
	gen := workload.NewUniformGenerator(1000, 20, 1)
	for i := 0; i < 200; i++ {
		res, err := c.Do(gen.Next())
		if err != nil {
			t.Fatal(err)
		}
		if res.Misses != 0 || res.Round2 != 0 {
			t.Fatalf("request %d: misses=%d round2=%d in unreplicated full-memory cluster",
				i, res.Misses, res.Round2)
		}
		if res.Obtained != 20 {
			t.Fatalf("request %d: obtained %d/20", i, res.Obtained)
		}
	}
	if c.Tally().MissRate() != 0 {
		t.Fatal("non-zero miss rate")
	}
}

func TestUnlimitedMemoryReplicationReducesTPR(t *testing.T) {
	const items, servers = 2000, 16
	tprOf := func(replicas int) float64 {
		c := mustNew(t, Config{Servers: servers, Items: items, Replicas: replicas})
		gen := workload.NewUniformGenerator(items, 30, 7)
		if err := c.Run(gen, 300); err != nil {
			t.Fatal(err)
		}
		if c.Tally().MissRate() != 0 {
			t.Fatalf("replicas=%d: misses with unlimited memory", replicas)
		}
		return c.Tally().TPR()
	}
	tpr1 := tprOf(1)
	tpr2 := tprOf(2)
	tpr4 := tprOf(4)
	if !(tpr4 < tpr2 && tpr2 < tpr1) {
		t.Fatalf("TPR not monotone in replicas: r1=%.2f r2=%.2f r4=%.2f", tpr1, tpr2, tpr4)
	}
	// Paper fig. 6: ~>=40% reduction at 4 replicas on 16 servers.
	if tpr4 > 0.65*tpr1 {
		t.Fatalf("4 replicas reduced TPR only %.2f -> %.2f", tpr1, tpr4)
	}
}

func TestDistinguishedAlwaysRecoverable(t *testing.T) {
	// Heavy overbooking: 4 logical replicas, memory 1.25 copies. Misses
	// abound, but every request must complete via round 2 and the
	// distinguished-copy invariant must hold (Do errors otherwise).
	c := mustNew(t, Config{
		Servers: 16, Items: 3000, Replicas: 4, MemoryFactor: 1.25,
		Planner: core.Options{Hitchhike: true, DistinguishedSingles: true},
	})
	gen := workload.NewUniformGenerator(3000, 25, 3)
	for i := 0; i < 500; i++ {
		res, err := c.Do(gen.Next())
		if err != nil {
			t.Fatal(err)
		}
		if res.Obtained != 25 {
			t.Fatalf("request %d incomplete: %d/25", i, res.Obtained)
		}
	}
	if c.Tally().Misses == 0 {
		t.Fatal("expected misses under heavy overbooking (test premise broken)")
	}
}

func TestLimitRequestsFetchAtLeastTarget(t *testing.T) {
	c := mustNew(t, Config{Servers: 16, Items: 2000, Replicas: 3, MemoryFactor: 2})
	gen := workload.NewLimitGenerator(workload.NewUniformGenerator(2000, 40, 9), 0.5)
	for i := 0; i < 200; i++ {
		req := gen.Next()
		res, err := c.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if res.Obtained < req.Target {
			t.Fatalf("request %d: obtained %d < target %d", i, res.Obtained, req.Target)
		}
	}
}

func TestLimitUsesFewerTransactions(t *testing.T) {
	run := func(frac float64) float64 {
		c := mustNew(t, Config{Servers: 32, Items: 4000, Replicas: 1, MemoryFactor: 1})
		var gen workload.Generator = workload.NewUniformGenerator(4000, 50, 11)
		if frac < 1 {
			gen = workload.NewLimitGenerator(gen.(*workload.UniformGenerator), frac)
		}
		if err := c.Run(gen, 200); err != nil {
			t.Fatal(err)
		}
		return c.Tally().TPR()
	}
	full, half := run(1.0), run(0.5)
	if half >= full {
		t.Fatalf("LIMIT 50%% TPR %.2f not below full-fetch TPR %.2f", half, full)
	}
}

func TestWriteBackRepopulatesAssignedServer(t *testing.T) {
	c := mustNew(t, Config{
		Servers: 4, Items: 400, Replicas: 2, MemoryFactor: 1.5,
		SkipPrepopulate: true, // start with distinguished copies only
	})
	// First pass records misses; write-back should install replicas so a
	// second identical pass misses strictly less.
	gen1 := workload.NewUniformGenerator(400, 15, 5)
	if err := c.Run(gen1, 300); err != nil {
		t.Fatal(err)
	}
	missed1 := c.Tally().Misses
	c.ResetTally()
	gen2 := workload.NewUniformGenerator(400, 15, 5) // same seed: same stream
	if err := c.Run(gen2, 300); err != nil {
		t.Fatal(err)
	}
	missed2 := c.Tally().Misses
	if missed2 >= missed1 {
		t.Fatalf("write-back did not reduce misses: %d -> %d", missed1, missed2)
	}
}

func TestSkipWriteBack(t *testing.T) {
	c := mustNew(t, Config{
		Servers: 4, Items: 400, Replicas: 2, MemoryFactor: 1.5,
		SkipPrepopulate: true, SkipWriteBack: true,
	})
	gen := workload.NewUniformGenerator(400, 15, 5)
	if err := c.Run(gen, 100); err != nil {
		t.Fatal(err)
	}
	missed1 := c.Tally().Misses
	c.ResetTally()
	gen2 := workload.NewUniformGenerator(400, 15, 5)
	if err := c.Run(gen2, 100); err != nil {
		t.Fatal(err)
	}
	// Without write-back (and no prepopulation) replicas never appear;
	// the same stream must miss identically.
	if c.Tally().Misses != missed1 {
		t.Fatalf("misses changed without write-back: %d -> %d", missed1, c.Tally().Misses)
	}
}

func TestHitchhikersReduceRound2(t *testing.T) {
	run := func(hitchhike bool) uint64 {
		c := mustNew(t, Config{
			Servers: 16, Items: 3000, Replicas: 4, MemoryFactor: 1.5,
			Planner: core.Options{Hitchhike: hitchhike, DistinguishedSingles: true},
		})
		gen := workload.NewUniformGenerator(3000, 25, 13)
		if err := c.Run(gen, 400); err != nil {
			t.Fatal(err)
		}
		return c.Tally().Round2
	}
	with, without := run(true), run(false)
	if with >= without {
		t.Fatalf("hitchhiking did not reduce round-2 transactions: with=%d without=%d",
			with, without)
	}
}

func TestFailServerValidation(t *testing.T) {
	c := mustNew(t, Config{Servers: 2, Items: 10, Replicas: 1})
	if err := c.FailServer(5); err == nil {
		t.Fatal("failed nonexistent server")
	}
	if err := c.RestoreServer(-1); err == nil {
		t.Fatal("restored nonexistent server")
	}
	if err := c.FailServer(0); err != nil {
		t.Fatal(err)
	}
	if err := c.FailServer(0); err != nil {
		t.Fatal("double fail should be idempotent")
	}
	if err := c.RestoreServer(0); err != nil {
		t.Fatal(err)
	}
}

func TestFailureUnreplicatedFallsToDB(t *testing.T) {
	c := mustNew(t, Config{Servers: 4, Items: 400, Replicas: 1, MemoryFactor: 1})
	if err := c.FailServer(0); err != nil {
		t.Fatal(err)
	}
	gen := workload.NewUniformGenerator(400, 20, 3)
	for i := 0; i < 100; i++ {
		res, err := c.Do(gen.Next())
		if err != nil {
			t.Fatal(err)
		}
		if res.Obtained != 20 {
			t.Fatalf("request %d incomplete under failure: %d/20", i, res.Obtained)
		}
	}
	ta := c.Tally()
	if ta.DBFetches == 0 {
		t.Fatal("no DB fetches though 1/4 of unreplicated items are homed on the dead server")
	}
	// Roughly a quarter of items should fall through (hash balance).
	rate := float64(ta.DBFetches) / float64(ta.ItemsWanted)
	if rate < 0.10 || rate > 0.45 {
		t.Fatalf("DB fetch rate %.3f, want ~0.25", rate)
	}
}

func TestFailureReplicatedAvoidsDB(t *testing.T) {
	// With 3 replicas and unlimited memory, one dead server costs zero
	// DB fetches: survivors serve everything.
	c := mustNew(t, Config{Servers: 8, Items: 800, Replicas: 3})
	if err := c.FailServer(2); err != nil {
		t.Fatal(err)
	}
	gen := workload.NewUniformGenerator(800, 25, 5)
	for i := 0; i < 100; i++ {
		res, err := c.Do(gen.Next())
		if err != nil {
			t.Fatal(err)
		}
		if res.Obtained != 25 {
			t.Fatalf("request incomplete: %d/25", res.Obtained)
		}
	}
	if got := c.Tally().DBFetches; got != 0 {
		t.Fatalf("%d DB fetches despite 3 replicas and unlimited memory", got)
	}
	// And no planned transaction may touch the dead server... verified
	// implicitly: a transaction against server 2 would have found all
	// its pinned distinguished copies there, but planner avoidance
	// means its items were never assigned there. Spot-check via plan.
	plan, err := c.Planner().BuildAvoiding([]uint64{1, 2, 3, 4, 5, 6, 7, 8}, 0,
		func(s int) bool { return s == 2 })
	if err != nil {
		t.Fatal(err)
	}
	for _, txn := range plan.Transactions {
		if txn.Server == 2 {
			t.Fatal("plan routed to avoided server")
		}
	}
}

func TestFailureRestoreRecovers(t *testing.T) {
	c := mustNew(t, Config{Servers: 4, Items: 400, Replicas: 1, MemoryFactor: 1})
	_ = c.FailServer(1)
	gen := workload.NewUniformGenerator(400, 20, 7)
	if err := c.Run(gen, 50); err != nil {
		t.Fatal(err)
	}
	if c.Tally().DBFetches == 0 {
		t.Fatal("premise: failures should cause DB fetches")
	}
	_ = c.RestoreServer(1)
	c.ResetTally()
	if err := c.Run(gen, 50); err != nil {
		t.Fatal(err)
	}
	if got := c.Tally().DBFetches; got != 0 {
		t.Fatalf("%d DB fetches after restore", got)
	}
}

func TestFailureWithLimitRequests(t *testing.T) {
	// LIMIT requests under failures must still reach their target via
	// DB top-up, never underfetch.
	c := mustNew(t, Config{Servers: 4, Items: 400, Replicas: 1, MemoryFactor: 1})
	_ = c.FailServer(0)
	_ = c.FailServer(1)
	gen := workload.NewLimitGenerator(workload.NewUniformGenerator(400, 20, 9), 0.9)
	for i := 0; i < 100; i++ {
		req := gen.Next()
		res, err := c.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if res.Obtained < req.Target {
			t.Fatalf("request %d: %d < target %d under failures", i, res.Obtained, req.Target)
		}
	}
}

func TestAllServersDown(t *testing.T) {
	c := mustNew(t, Config{Servers: 2, Items: 50, Replicas: 2})
	_ = c.FailServer(0)
	_ = c.FailServer(1)
	res, err := c.Do(workload.Request{Items: []uint64{1, 2, 3}, Target: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Obtained != 3 || res.Transactions != 0 {
		t.Fatalf("total failure: obtained=%d txns=%d", res.Obtained, res.Transactions)
	}
	if c.Tally().DBFetches != 3 {
		t.Fatalf("DBFetches = %d, want 3", c.Tally().DBFetches)
	}
}

func TestTallyBookkeeping(t *testing.T) {
	c := mustNew(t, Config{Servers: 4, Items: 100, Replicas: 2})
	req := workload.Request{Items: []uint64{1, 2, 3, 4, 5}, Target: 5}
	res, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	ta := c.Tally()
	if ta.Requests != 1 {
		t.Fatalf("Requests = %d", ta.Requests)
	}
	if ta.Transactions != uint64(res.Transactions) {
		t.Fatal("transaction count mismatch")
	}
	if ta.ItemsWanted != 5 || ta.ItemsFetched != 5 {
		t.Fatalf("items wanted=%d fetched=%d", ta.ItemsWanted, ta.ItemsFetched)
	}
	if ta.TPRHist.Count() != 1 {
		t.Fatal("TPR histogram not updated")
	}
	if ta.TxnSize.Sum() < 5 {
		t.Fatalf("txn size histogram sum %d < items", ta.TxnSize.Sum())
	}
	c.ResetTally()
	if c.Tally().Requests != 0 {
		t.Fatal("ResetTally did not clear")
	}
}

func TestOccupancyBounded(t *testing.T) {
	c := mustNew(t, Config{Servers: 8, Items: 1000, Replicas: 3, MemoryFactor: 2})
	gen := workload.NewUniformGenerator(1000, 20, 2)
	if err := c.Run(gen, 200); err != nil {
		t.Fatal(err)
	}
	for s, occ := range c.Occupancy() {
		if occ > 1.35 {
			// Pinned entries may exceed nominal capacity slightly on
			// hash-imbalanced servers, but not wildly.
			t.Fatalf("server %d occupancy %.2f", s, occ)
		}
	}
}

func TestDuplicateItemsRejected(t *testing.T) {
	c := mustNew(t, Config{Servers: 4, Items: 100, Replicas: 2})
	if _, err := c.Do(workload.Request{Items: []uint64{1, 1}, Target: 2}); err == nil {
		t.Fatal("duplicate items accepted")
	}
}

func TestClusterWithAlternativePlacements(t *testing.T) {
	// The cluster must behave identically well over any Placement
	// implementation — including the Combinatorial Batch Code placement
	// with its balanced assignment hint — and the tally accounting must
	// be placement-agnostic.
	const servers, items, replicas = 8, 800, 3
	const reqs, k = 150, 20
	ring := hashring.NewWithServers(servers, 64)
	placements := map[string]hashring.Placement{
		"rch":        hashring.NewRCHPlacement(ring, replicas),
		"multihash":  hashring.NewMultiHashPlacement(servers, replicas, 1),
		"rendezvous": hashring.NewRendezvousPlacement(servers, replicas, 1),
		"jump":       hashring.NewJumpPlacement(servers, replicas, 1),
		"cbc":        cbc.New(servers, replicas, items, 1),
	}
	for name, p := range placements {
		t.Run(name, func(t *testing.T) {
			opts := core.Options{Hitchhike: true, DistinguishedSingles: true}
			if name == "cbc" {
				// CBC pairs with the balanced assignment path; the single
				// redirect is skipped there by design.
				opts = core.Options{Hitchhike: true, Hint: core.HintBalanceLoad}
			}
			c := mustNew(t, Config{
				Servers: servers, Items: items, Replicas: replicas,
				MemoryFactor: 2.0, Placement: p,
				Planner: opts,
			})
			gen := workload.NewUniformGenerator(items, k, 3)
			for i := 0; i < reqs; i++ {
				res, err := c.Do(gen.Next())
				if err != nil {
					t.Fatal(err)
				}
				if res.Obtained != k {
					t.Fatalf("request %d incomplete: %d/%d", i, res.Obtained, k)
				}
			}
			// Bundling must beat the no-replication urn-model expectation.
			expected := 8 * (1 - math.Pow(1-1.0/8, 20))
			if got := c.Tally().TPR(); got >= expected {
				t.Fatalf("TPR %.2f no better than unreplicated expectation %.2f", got, expected)
			}
			// Accounting invariants, identical for every placement: full
			// fetches obtain everything, so IPR is the request size; the
			// per-server counters partition the tally totals exactly.
			tally := c.Tally()
			if tally.Requests != reqs || tally.ItemsWanted != reqs*k {
				t.Fatalf("request accounting: %d requests, %d wanted", tally.Requests, tally.ItemsWanted)
			}
			if tally.ItemsFetched != tally.ItemsWanted {
				t.Fatalf("fetched %d of %d wanted on full fetches", tally.ItemsFetched, tally.ItemsWanted)
			}
			if got := tally.IPR(); got != k {
				t.Fatalf("IPR = %.2f, want %d", got, k)
			}
			var txns, itemReads uint64
			for _, l := range c.ServerLoads() {
				txns += l
			}
			for _, l := range c.ServerItemLoads() {
				itemReads += l
			}
			if txns != tally.Transactions {
				t.Fatalf("per-server loads sum to %d, tally has %d transactions", txns, tally.Transactions)
			}
			if itemReads != tally.TxnSize.Sum() {
				t.Fatalf("per-server item loads sum to %d, TxnSize total %d", itemReads, tally.TxnSize.Sum())
			}
		})
	}
}

func TestClusterPlacementMismatch(t *testing.T) {
	p := hashring.NewMultiHashPlacement(4, 2, 1)
	if _, err := New(Config{Servers: 8, Items: 10, Replicas: 2, Placement: p}); err == nil {
		t.Fatal("placement/server mismatch accepted")
	}
}

func TestConfigAccessor(t *testing.T) {
	c := mustNew(t, Config{Servers: 4, Items: 100, Replicas: 2})
	if c.Config().Servers != 4 || c.Planner() == nil {
		t.Fatal("accessors broken")
	}
}

func BenchmarkDo16Servers4Replicas(b *testing.B) {
	c, err := New(Config{
		Servers: 16, Items: 10000, Replicas: 4, MemoryFactor: 2,
		Planner: core.Options{Hitchhike: true, DistinguishedSingles: true},
	})
	if err != nil {
		b.Fatal(err)
	}
	gen := workload.NewUniformGenerator(10000, 25, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Do(gen.Next()); err != nil {
			b.Fatal(err)
		}
	}
}

// TestConcurrentDo hammers one cluster from many goroutines — request
// execution racing failure toggles, tally resets, and the inspection
// methods. Run under -race (make race) it proves the cluster's mutex
// actually covers every mutable path; the invariant checked here is
// that every request still obtains all of its items.
func TestConcurrentDo(t *testing.T) {
	c := mustNew(t, Config{Servers: 8, Items: 2000, Replicas: 3, MemoryFactor: 2.0})
	const G = 16
	done := make(chan error, G)
	for g := 0; g < G; g++ {
		go func(g int) {
			gen := workload.NewUniformGenerator(2000, 20, int64(g))
			for i := 0; i < 50; i++ {
				switch {
				case g == 0 && i%10 == 5:
					c.FailServer(i % 8)
				case g == 0 && i%10 == 9:
					c.RestoreServer((i - 4) % 8)
				case g == 1 && i%25 == 24:
					c.ResetTally()
				case g == 2 && i%10 == 3:
					c.ServerLoads()
					c.Occupancy()
				}
				req := gen.Next()
				res, err := c.Do(req)
				if err != nil {
					done <- err
					return
				}
				if res.Obtained != len(req.Items) {
					done <- fmt.Errorf("goroutine %d: obtained %d of %d", g, res.Obtained, len(req.Items))
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < G; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
