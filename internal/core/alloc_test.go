//go:build !race

// Allocation-budget regression gate for the planner hot path (run via
// `make bench-alloc`; excluded under -race because the race runtime's
// shadow allocations distort testing.AllocsPerRun).
package core

import (
	"testing"

	"rnb/internal/hashring"
)

// TestAllocBudgetPlannerBuild bounds steady-state Build allocations:
// with the pooled buildScratch, the only memory a Build may allocate is
// what escapes into the returned Plan — the Plan itself, ItemServer,
// the Replicas slice-of-slices plus its single backing slab, the
// Transactions slice, and the single Primary slab — independent of the
// transaction count. The per-item maps, bitsets, and server tallies all
// come from the scratch pool.
func TestAllocBudgetPlannerBuild(t *testing.T) {
	p := NewPlanner(hashring.NewMultiHashPlacement(16, 3, 1), Options{})
	items := make([]uint64, 16)
	for i := range items {
		items[i] = uint64(i*2654435761 + 97)
	}
	// Warm the scratch pool outside the measured window.
	if _, err := p.Build(items, 0); err != nil {
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(200, func() {
		plan, err := p.Build(items, 0)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Assigned != len(items) {
			t.Fatalf("assigned %d/%d", plan.Assigned, len(items))
		}
	})
	// Measured 11 allocs/op for a 16-item build (the escaping Plan
	// pieces plus the set-cover's internal universe clone). The budget
	// leaves slack for scheduler noise but fails if per-item or
	// per-transaction allocation creeps back in (16+ extra allocs).
	const budget = 14
	t.Logf("planner build: %.1f allocs/op (budget %d)", got, budget)
	if got > budget {
		t.Errorf("planner build: %.1f allocs/op, budget %d", got, budget)
	}
}
