package core

import "sort"

// This file implements the balanced item→server assignment behind
// Options.Hint == HintBalanceLoad: instead of greedy set cover
// (minimum transactions, unbounded per-server load), assign items to
// replica servers so the maximum items read from any one server is
// minimized. This is the request-side half of a Combinatorial Batch
// Code (internal/cbc): the code construction guarantees a small
// worst-case bound is *achievable*, and this solver achieves it — a
// bipartite b-matching found by binary search on the per-server
// capacity t with augmenting paths (the constructive form of the
// defect Hall's condition |N(S)| >= ceil(|S|/t)).

// BalancedAssign assigns each item to one of its candidate servers so
// that the maximum number of items on any single server is minimized.
// cands[i] lists the candidate server indices of item i; items with no
// candidates stay unassigned (-1). Returns the assignment and the
// achieved max per-server load. Deterministic: equal inputs give equal
// assignments.
func BalancedAssign(cands [][]int) (assign []int, maxLoad int) {
	assign = make([]int, len(cands))
	n := 0 // assignable items
	servers := make(map[int]bool)
	for i, cs := range cands {
		assign[i] = -1
		if len(cs) > 0 {
			n++
		}
		for _, s := range cs {
			servers[s] = true
		}
	}
	if n == 0 {
		return assign, 0
	}
	// The optimal t lies in [ceil(n/|servers|), n]; binary search with a
	// from-scratch feasibility matching per probe.
	lo := (n + len(servers) - 1) / len(servers)
	if lo < 1 {
		lo = 1
	}
	hi := n
	var best []int
	for lo < hi {
		mid := lo + (hi-lo)/2
		if a, ok := tryAssign(cands, mid, n); ok {
			best, hi = a, mid
		} else {
			lo = mid + 1
		}
	}
	if best == nil {
		// lo == hi: feasible by construction (every assignable item has
		// a candidate, t = n always admits the trivial assignment).
		best, _ = tryAssign(cands, lo, n)
	}
	copy(assign, best)
	consolidate(cands, assign, lo)
	return assign, lo
}

// tryAssign attempts a complete assignment with per-server capacity t
// via augmenting paths; ok is false if some assignable item cannot be
// placed.
func tryAssign(cands [][]int, t, n int) (assign []int, ok bool) {
	assign = make([]int, len(cands))
	for i := range assign {
		assign[i] = -1
	}
	load := make(map[int]int)
	holders := make(map[int][]int) // server -> items assigned to it
	for i, cs := range cands {
		if len(cs) == 0 {
			continue
		}
		visited := make(map[int]bool)
		if !augment(cands, i, t, assign, load, holders, visited) {
			return nil, false
		}
	}
	return assign, true
}

// augment places item i via Kuhn's algorithm generalized to server
// capacity t: take a candidate with spare capacity, or recursively
// re-home one resident of a full candidate. Each server is visited at
// most once per top-level augmentation, bounding both work and
// recursion depth by the server count.
func augment(cands [][]int, i, t int, assign []int, load map[int]int, holders map[int][]int, visited map[int]bool) bool {
	for _, s := range cands[i] {
		if visited[s] {
			continue
		}
		visited[s] = true
		if load[s] < t {
			place(i, s, assign, load, holders)
			return true
		}
		// Full: try to move one of its residents elsewhere. Iterate a
		// snapshot — unplace mutates holders[s].
		residents := append([]int(nil), holders[s]...)
		for _, j := range residents {
			unplace(j, s, assign, load, holders)
			if augment(cands, j, t, assign, load, holders, visited) {
				place(i, s, assign, load, holders)
				return true
			}
			place(j, s, assign, load, holders) // restore and keep looking
		}
	}
	return false
}

func place(i, s int, assign []int, load map[int]int, holders map[int][]int) {
	assign[i] = s
	load[s]++
	holders[s] = append(holders[s], i)
}

func unplace(i, s int, assign []int, load map[int]int, holders map[int][]int) {
	assign[i] = -1
	load[s]--
	hs := holders[s]
	for x, j := range hs {
		if j == i {
			holders[s] = append(hs[:x], hs[x+1:]...)
			break
		}
	}
}

// consolidate reduces the number of contacted servers without raising
// the max load above t: repeatedly try to empty the least-loaded used
// server by direct moves of its items onto other used servers with
// spare capacity. Balanced assignments tend to scatter one item per
// server; this pass claws back most of the transaction-count cost
// relative to greedy set cover.
func consolidate(cands [][]int, assign []int, t int) {
	load := make(map[int]int)
	for _, s := range assign {
		if s >= 0 {
			load[s]++
		}
	}
	for {
		// Candidate victims: used servers, least-loaded first (lowest id
		// on ties) — the cheapest transactions to eliminate.
		order := make([]int, 0, len(load))
		for s := range load {
			order = append(order, s)
		}
		sort.Slice(order, func(a, b int) bool {
			if load[order[a]] != load[order[b]] {
				return load[order[a]] < load[order[b]]
			}
			return order[a] < order[b]
		})
		progress := false
		for _, victim := range order {
			if tryEmpty(cands, assign, load, victim, t) {
				progress = true
				break // loads changed; re-rank victims
			}
		}
		if !progress {
			return
		}
	}
}

// tryEmpty relocates every item on victim to another used server with
// load < t (direct moves only), all-or-nothing.
func tryEmpty(cands [][]int, assign []int, load map[int]int, victim, t int) bool {
	type move struct{ item, to int }
	var moves []move
	tmp := make(map[int]int, len(load))
	for s, l := range load {
		tmp[s] = l
	}
	for i, s := range assign {
		if s != victim {
			continue
		}
		moved := false
		for _, d := range cands[i] {
			if d == victim {
				continue
			}
			if l, used := tmp[d]; used && l < t {
				moves = append(moves, move{i, d})
				tmp[d]++
				moved = true
				break
			}
		}
		if !moved {
			return false
		}
	}
	if len(moves) == 0 {
		return false
	}
	for _, mv := range moves {
		assign[mv.item] = mv.to
		load[mv.to]++
	}
	delete(load, victim)
	return true
}
