package core

import (
	"math/rand"
	"testing"
)

func maxLoadOf(assign []int) map[int]int {
	load := make(map[int]int)
	for _, s := range assign {
		if s >= 0 {
			load[s]++
		}
	}
	return load
}

func TestBalancedAssignSpreads(t *testing.T) {
	// Four items all sharing servers {0,1}: optimum is 2 per server;
	// greedy cover would read all four from one.
	cands := [][]int{{0, 1}, {0, 1}, {1, 0}, {1, 0}}
	assign, maxLoad := BalancedAssign(cands)
	if maxLoad != 2 {
		t.Fatalf("maxLoad = %d, want 2 (assign %v)", maxLoad, assign)
	}
	for i, s := range assign {
		if s < 0 {
			t.Fatalf("item %d unassigned", i)
		}
	}
	for s, l := range maxLoadOf(assign) {
		if l > 2 {
			t.Fatalf("server %d overloaded: %d", s, l)
		}
	}
}

func TestBalancedAssignNeedsAugmenting(t *testing.T) {
	// t=1 is feasible only by re-homing: item0 {0}, item1 {0,1},
	// item2 {1,2}. Greedy first-fit would stack 0 and 1 on server 0.
	cands := [][]int{{0}, {0, 1}, {1, 2}}
	assign, maxLoad := BalancedAssign(cands)
	if maxLoad != 1 {
		t.Fatalf("maxLoad = %d, want 1 (assign %v)", maxLoad, assign)
	}
	if assign[0] != 0 || assign[1] != 1 || assign[2] != 2 {
		t.Fatalf("assign = %v, want [0 1 2]", assign)
	}
}

func TestBalancedAssignUnassignable(t *testing.T) {
	cands := [][]int{{}, {3}, {}}
	assign, maxLoad := BalancedAssign(cands)
	if assign[0] != -1 || assign[2] != -1 || assign[1] != 3 {
		t.Fatalf("assign = %v", assign)
	}
	if maxLoad != 1 {
		t.Fatalf("maxLoad = %d, want 1", maxLoad)
	}
	empty, maxLoad := BalancedAssign([][]int{{}, {}})
	if empty[0] != -1 || empty[1] != -1 || maxLoad != 0 {
		t.Fatalf("all-empty: assign %v maxLoad %d", empty, maxLoad)
	}
}

func TestBalancedAssignDeterministic(t *testing.T) {
	cands := [][]int{{0, 1, 2}, {1, 2}, {0, 2}, {2, 0}, {1, 0}}
	a, la := BalancedAssign(cands)
	b, lb := BalancedAssign(cands)
	if la != lb {
		t.Fatalf("maxLoad differs: %d vs %d", la, lb)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("assignment not deterministic: %v vs %v", a, b)
		}
	}
}

// TestBalancedAssignOptimalVsBruteForce cross-checks the solver
// against exhaustive enumeration on random small instances.
func TestBalancedAssignOptimalVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(6) // items
		m := 2 + rng.Intn(4) // servers
		cands := make([][]int, n)
		for i := range cands {
			r := 1 + rng.Intn(m)
			perm := rng.Perm(m)
			cands[i] = perm[:r]
		}
		_, got := BalancedAssign(cands)

		best := n + 1
		var walk func(i int, load []int, cur int)
		walk = func(i int, load []int, cur int) {
			if cur >= best {
				return
			}
			if i == n {
				best = cur
				return
			}
			for _, s := range cands[i] {
				load[s]++
				next := cur
				if load[s] > next {
					next = load[s]
				}
				walk(i+1, load, next)
				load[s]--
			}
		}
		walk(0, make([]int, m), 0)
		if got != best {
			t.Fatalf("trial %d: solver maxLoad %d, brute force %d (cands %v)", trial, got, best, cands)
		}
	}
}

func TestBalancedAssignConsolidates(t *testing.T) {
	// Eight items on overlapping pairs; optimal t=2 needs >= 4 servers'
	// worth of capacity, and consolidation must not leave 8 singleton
	// transactions.
	cands := [][]int{
		{0, 1}, {0, 1}, {0, 2}, {0, 2},
		{1, 2}, {1, 2}, {0, 3}, {2, 3},
	}
	assign, maxLoad := BalancedAssign(cands)
	used := make(map[int]bool)
	for _, s := range assign {
		used[s] = true
	}
	if want := (8 + maxLoad - 1) / maxLoad; len(used) > 8 || len(used) < want {
		t.Fatalf("used %d servers, floor %d (assign %v)", len(used), want, assign)
	}
	for _, l := range maxLoadOf(assign) {
		if l > maxLoad {
			t.Fatalf("consolidation broke the bound: %v (t=%d)", assign, maxLoad)
		}
	}
}

func TestPlannerHintBalanceLoad(t *testing.T) {
	// All requested items share one replica pair {s0, s1} under a rigged
	// placement: greedy cover reads everything from one server, the
	// balance hint splits evenly.
	p := rigged{servers: 4, sets: map[uint64][]int{
		1: {0, 1}, 2: {1, 0}, 3: {0, 1}, 4: {1, 0}, 5: {0, 1}, 6: {1, 0},
	}}
	greedy := NewPlanner(p, Options{})
	balanced := NewPlanner(p, Options{Hint: HintBalanceLoad})
	items := []uint64{1, 2, 3, 4, 5, 6}

	gp, err := greedy.Build(items, 0)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := balanced.Build(items, 0)
	if err != nil {
		t.Fatal(err)
	}
	gMax, bMax := 0, 0
	for _, txn := range gp.Transactions {
		if len(txn.Primary) > gMax {
			gMax = len(txn.Primary)
		}
	}
	for _, txn := range bp.Transactions {
		if len(txn.Primary) > bMax {
			bMax = len(txn.Primary)
		}
	}
	if gMax != 6 {
		t.Fatalf("greedy max per-server items = %d, want 6", gMax)
	}
	if bMax != 3 {
		t.Fatalf("balanced max per-server items = %d, want 3", bMax)
	}
	if bp.Assigned != 6 {
		t.Fatalf("balanced assigned %d/6", bp.Assigned)
	}
	// Equal requests must still yield equal plans.
	bp2, _ := balanced.Build(items, 0)
	if len(bp2.Transactions) != len(bp.Transactions) {
		t.Fatal("balanced plan not deterministic")
	}
	for i := range bp.ItemServer {
		if bp.ItemServer[i] != bp2.ItemServer[i] {
			t.Fatal("balanced assignment not deterministic")
		}
	}
}

func TestPlannerHintBalanceAvoids(t *testing.T) {
	p := rigged{servers: 3, sets: map[uint64][]int{
		1: {0, 1}, 2: {0, 2}, 3: {0, 1},
	}}
	planner := NewPlanner(p, Options{Hint: HintBalanceLoad})
	plan, err := planner.BuildAvoiding([]uint64{1, 2, 3}, 0, func(s int) bool { return s == 0 })
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range plan.ItemServer {
		if s == 0 {
			t.Fatalf("item %d assigned to avoided server 0", i)
		}
		if s == -1 {
			t.Fatalf("item %d unassigned despite live replica", i)
		}
	}
}

func TestPlannerHintBalanceLimitFallsBack(t *testing.T) {
	// LIMIT plans take the cover path: the plan must stop at the target
	// exactly as the default hint does.
	p := rigged{servers: 4, sets: map[uint64][]int{
		1: {0, 1}, 2: {1, 2}, 3: {2, 3}, 4: {3, 0},
	}}
	planner := NewPlanner(p, Options{Hint: HintBalanceLoad})
	plan, err := planner.Build([]uint64{1, 2, 3, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Assigned < 2 || plan.Assigned == 4 && len(plan.Transactions) > 2 {
		t.Fatalf("LIMIT fallback mis-planned: assigned %d in %d txns",
			plan.Assigned, len(plan.Transactions))
	}
}

// TestPlannerHintBalanceHitchhike checks hitchhiking composes with the
// balanced path.
func TestPlannerHintBalanceHitchhike(t *testing.T) {
	p := rigged{servers: 2, sets: map[uint64][]int{
		1: {0, 1}, 2: {1, 0},
	}}
	planner := NewPlanner(p, Options{Hint: HintBalanceLoad, Hitchhike: true})
	plan, err := planner.Build([]uint64{1, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	hh := 0
	for _, txn := range plan.Transactions {
		hh += len(txn.Hitchhikers)
	}
	if hh == 0 {
		t.Fatal("no hitchhikers on the balanced path")
	}
}

// rigged is a test placement with explicit replica sets.
type rigged struct {
	servers int
	sets    map[uint64][]int
}

func (r rigged) Replicas(item uint64, buf []int) []int {
	return append(buf[:0], r.sets[item]...)
}
func (r rigged) NumServers() int  { return r.servers }
func (r rigged) NumReplicas() int { return 2 }
