// Package core implements the RnB planner: the client-side algorithm
// that turns a multi-item request into a minimal set of per-server
// transactions (paper §III).
//
// Given the replica locations of every requested item (from a
// hashring.Placement), the planner runs the greedy minimum-set-cover
// heuristic to choose which servers to contact, assigns each item to
// the first chosen server holding one of its replicas, and optionally
//
//   - redirects items that would travel alone to their *distinguished*
//     copy, so single-item fetches never pollute other servers' LRU
//     caches (§III-C-1),
//   - piggybacks "hitchhiker" copies of requested items onto
//     transactions that are already being sent to a server holding one
//     of their replicas (§III-C-2), raising the hit probability under
//     overbooking at zero transaction cost,
//   - stops covering once a LIMIT target is reached (§III-F).
//
// The planner is stateless and deterministic: equal requests yield
// equal plans, which is what creates the request-locality effect the
// paper's overbooking relies on (fig. 7) — similar requests keep using
// the same replicas, so the unused ones go cold and get evicted.
package core

import (
	"fmt"
	"sort"
	"sync"

	"rnb/internal/bitset"
	"rnb/internal/hashring"
	"rnb/internal/setcover"
	"rnb/internal/xhash"
)

// buildScratch holds the transient state of one buildFiltered call so
// steady-state plan building stays off the allocator: maps keyed by
// server id become slices indexed by server id, candidate bitsets are
// recycled through a freelist, and the dup-check map is cleared rather
// than remade. Only memory that escapes into the returned Plan (the
// plan itself, ItemServer, Replicas and their slabs, Transactions) is
// freshly allocated. Scratches are pooled because planners are shared
// by concurrent requests.
type buildScratch struct {
	seen     map[uint64]struct{}
	byServer []*bitset.Set // server id -> candidate item set (nil = untouched)
	touched  []int         // server ids with a non-nil byServer entry
	freelist []*bitset.Set // recycled candidate sets
	servers  []int         // sorted touched ids, parallel to sets
	sets     []*bitset.Set
	universe *bitset.Set
	txnOf    []int // server id -> transaction index + 1 (0 = none)
	cnt      []int // transaction index -> primary count
	indexOf  map[uint64]int
}

var scratchPool = sync.Pool{New: func() interface{} {
	return &buildScratch{
		seen:     make(map[uint64]struct{}),
		universe: &bitset.Set{},
		indexOf:  make(map[uint64]int),
	}
}}

// ensure grows the server-indexed tables to cover server id s.
func (sc *buildScratch) ensure(s int) {
	for len(sc.byServer) <= s {
		sc.byServer = append(sc.byServer, nil)
		sc.txnOf = append(sc.txnOf, 0)
	}
}

// candidates returns the (possibly new) candidate set for server s.
func (sc *buildScratch) candidates(s int) *bitset.Set {
	sc.ensure(s)
	if set := sc.byServer[s]; set != nil {
		return set
	}
	var set *bitset.Set
	if n := len(sc.freelist); n > 0 {
		set = sc.freelist[n-1]
		sc.freelist = sc.freelist[:n-1]
		set.Reset()
	} else {
		set = &bitset.Set{}
	}
	sc.byServer[s] = set
	sc.touched = append(sc.touched, s)
	return set
}

// release returns the scratch to the pool, recycling candidate sets and
// zeroing the server-indexed tables for the next build.
func (sc *buildScratch) release() {
	for _, s := range sc.touched {
		sc.freelist = append(sc.freelist, sc.byServer[s])
		sc.byServer[s] = nil
		sc.txnOf[s] = 0
	}
	sc.touched = sc.touched[:0]
	sc.servers = sc.servers[:0]
	sc.sets = sc.sets[:0]
	sc.cnt = sc.cnt[:0]
	clear(sc.seen)
	clear(sc.indexOf)
	scratchPool.Put(sc)
}

// PlanHint selects the item→server assignment strategy.
type PlanHint int

const (
	// HintMinTransactions is the paper's strategy: greedy minimum set
	// cover, fewest round-1 transactions, per-server load unbounded.
	HintMinTransactions PlanHint = iota
	// HintBalanceLoad assigns items by bipartite b-matching so the
	// maximum items read from any one server is minimized (see
	// BalancedAssign). Paired with a Combinatorial Batch Code placement
	// (internal/cbc) this achieves the code's provable ≤ t worst-case
	// bound, which greedy set cover does not. Transactions-per-request
	// rises (a consolidation pass claws most of it back); applies to
	// full fetches only — LIMIT (target < items) and budget plans fall
	// back to the cover path, and DistinguishedSingles redirection is
	// skipped because re-homing a single onto its distinguished server
	// would break the load bound.
	HintBalanceLoad
)

// Options configures plan construction.
type Options struct {
	// Hitchhike piggybacks redundant item requests onto transactions
	// already planned for other items (§III-C-2).
	Hitchhike bool
	// DistinguishedSingles redirects any item that would be fetched in
	// a single-item transaction to its distinguished copy (§III-C-1).
	DistinguishedSingles bool
	// BalanceTieBreak rotates the candidate-server ordering by a
	// per-request fingerprint instead of always preferring low server
	// ids. Identical requests still produce identical plans, but equal-
	// coverage ties spread across the cluster instead of piling onto
	// server 0 — trading the cross-request replica locality that
	// overbooking exploits (fig. 7) for better load balance and tail
	// latency (cf. the Mitzenmacher load-balancing contrast, §V-A).
	// Leave it off for memory-constrained overbooked deployments; turn
	// it on when memory is plentiful and latency matters.
	BalanceTieBreak bool
	// Cover selects the set-cover heuristic. Nil selects eager greedy.
	Cover CoverFunc
	// Hint selects the assignment strategy (default greedy set cover).
	Hint PlanHint
}

// CoverFunc computes a (partial) set cover; see setcover.GreedyPartial.
type CoverFunc func(universe *bitset.Set, sets []*bitset.Set, target int) setcover.Result

// Transaction is one planned server round-trip.
type Transaction struct {
	// Server is the destination server index.
	Server int
	// Primary holds the items the cover assigned to this server.
	Primary []uint64
	// Hitchhikers holds extra requested items that have a logical
	// replica on this server but are primarily fetched elsewhere (or
	// were dropped by a LIMIT plan).
	Hitchhikers []uint64
}

// Size returns the number of items carried by the transaction.
func (t *Transaction) Size() int { return len(t.Primary) + len(t.Hitchhikers) }

// Plan is the planned round-1 fetch for a request.
type Plan struct {
	// Transactions lists one entry per contacted server, in pick order.
	Transactions []Transaction
	// Items echoes the request's item ids.
	Items []uint64
	// ItemServer[i] is the server assigned to fetch Items[i], or -1 if
	// the item was dropped by a LIMIT plan.
	ItemServer []int
	// Replicas[i] is the logical replica set of Items[i]; Replicas[i][0]
	// is the distinguished copy.
	Replicas [][]int
	// Assigned counts items with an assigned server.
	Assigned int
}

// NumTransactions returns the number of planned round-1 transactions.
func (p *Plan) NumTransactions() int { return len(p.Transactions) }

// Planner builds fetch plans against a fixed replica placement.
type Planner struct {
	placement hashring.Placement
	opts      Options
	cover     CoverFunc
}

// NewPlanner builds a planner over the given placement.
func NewPlanner(p hashring.Placement, opts Options) *Planner {
	cover := opts.Cover
	if cover == nil {
		cover = setcover.GreedyPartial
	}
	return &Planner{placement: p, opts: opts, cover: cover}
}

// Placement returns the planner's placement.
func (p *Planner) Placement() hashring.Placement { return p.placement }

// Options returns the planner's options.
func (p *Planner) Options() Options { return p.opts }

// Build plans a fetch of items with the given LIMIT target (target <= 0
// or >= len(items) means fetch everything). Duplicate items are
// rejected: requests are sets.
func (p *Planner) Build(items []uint64, target int) (*Plan, error) {
	return p.buildFiltered(items, target, 0, nil)
}

// BuildAvoiding is Build with a server filter: candidate servers for
// which avoid returns true (failed, draining, overloaded) are excluded
// from the plan. Items whose every replica is avoided end up
// unassigned (ItemServer -1) — callers fall back to the authoritative
// store for those. The distinguished-single redirect targets the first
// non-avoided replica (the "acting distinguished").
func (p *Planner) BuildAvoiding(items []uint64, target int, avoid func(server int) bool) (*Plan, error) {
	return p.buildFiltered(items, target, 0, avoid)
}

// BuildExcluding is BuildAvoiding with an additional explicit
// exclusion set: servers in exclude are never candidates, on top of
// whatever avoid rejects. This is the mid-request re-plan entry point —
// when a round-1 transaction fails, the still-missing items are
// re-covered over the surviving servers, and the server that just
// failed must be excluded *immediately*, even if the shared failure
// view (circuit breaker) has not opened yet (e.g. its trip threshold
// is above one).
func (p *Planner) BuildExcluding(items []uint64, target int, exclude map[int]bool, avoid func(server int) bool) (*Plan, error) {
	combined := avoid
	if len(exclude) > 0 {
		combined = func(s int) bool {
			return exclude[s] || (avoid != nil && avoid(s))
		}
	}
	return p.buildFiltered(items, target, 0, combined)
}

// BuildBudget plans a fetch that maximizes item coverage within at most
// maxTransactions round-1 transactions — the "fetch as many items as
// possible within a budget" request form (§III-F, thesis variant).
// maxTransactions <= 0 yields an empty plan.
func (p *Planner) BuildBudget(items []uint64, maxTransactions int) (*Plan, error) {
	if maxTransactions <= 0 {
		return &Plan{Items: items}, nil
	}
	return p.buildFiltered(items, len(items), maxTransactions, nil)
}

func (p *Planner) buildFiltered(items []uint64, target, budget int, avoid func(int) bool) (*Plan, error) {
	m := len(items)
	if m == 0 {
		return &Plan{}, nil
	}
	if target <= 0 || target > m {
		target = m
	}
	sc := scratchPool.Get().(*buildScratch)
	for _, it := range items {
		if _, dup := sc.seen[it]; dup {
			sc.release()
			return nil, fmt.Errorf("core: duplicate item %d in request", it)
		}
		sc.seen[it] = struct{}{}
	}

	plan := &Plan{
		Items:      items,
		ItemServer: make([]int, m),
		Replicas:   make([][]int, m),
	}

	if p.opts.Hint == HintBalanceLoad && budget == 0 && target == m {
		sc.release()
		return p.buildBalanced(plan, avoid), nil
	}

	// Locate all replicas and group request items by candidate server,
	// excluding avoided (failed/draining) servers from candidacy. The
	// replica lists escape into the Plan, so they are carved from one
	// per-build slab instead of allocated per item (Placement.Replicas
	// fills buf[:0] in place; a boosted item overflowing its carve simply
	// reallocates).
	rcap := p.placement.NumReplicas()
	if n := p.placement.NumServers(); rcap > n {
		rcap = n
	}
	if rcap < 1 {
		rcap = 1
	}
	slab := make([]int, m*rcap)
	for i, it := range items {
		plan.ItemServer[i] = -1
		off := i * rcap
		plan.Replicas[i] = p.placement.Replicas(it, slab[off:off:off+rcap])
		for _, s := range plan.Replicas[i] {
			if avoid != nil && avoid(s) {
				continue
			}
			sc.candidates(s).Set(i)
		}
	}

	// Stable candidate ordering (ascending server id) so that greedy
	// tie-breaking is identical across similar requests — the source of
	// the request-locality effect (fig. 7). With BalanceTieBreak the
	// order is rotated by a request fingerprint: still deterministic
	// per request, but ties no longer always favor low server ids.
	sc.servers = append(sc.servers[:0], sc.touched...)
	servers := sc.servers
	sort.Ints(servers)
	if p.opts.BalanceTieBreak && p.placement.NumServers() > 0 {
		var fp uint64
		for _, it := range items {
			fp ^= xhash.Uint64(it)
		}
		offset := int(xhash.Mix64(fp) % uint64(p.placement.NumServers()))
		n := p.placement.NumServers()
		sort.Slice(servers, func(a, b int) bool {
			ra := (servers[a] - offset + n) % n
			rb := (servers[b] - offset + n) % n
			return ra < rb
		})
	}
	for _, s := range servers {
		sc.sets = append(sc.sets, sc.byServer[s])
	}
	sets := sc.sets

	sc.universe.Reset()
	universe := sc.universe
	for i := 0; i < m; i++ {
		universe.Set(i)
	}
	var res setcover.Result
	if budget > 0 {
		res = setcover.GreedyBudget(universe, sets, budget)
	} else {
		res = p.cover(universe, sets, target)
	}

	// Assign each item to the first picked server that holds it: one
	// pass marks ItemServer and counts per-transaction primaries, then
	// the Primary slices are carved from a single slab and filled in
	// ascending item order (identical ordering to the historical
	// append-per-pick construction).
	plan.Transactions = make([]Transaction, 0, len(res.Picked))
	for _, pick := range res.Picked {
		s := servers[pick]
		ti := len(plan.Transactions)
		sc.txnOf[s] = ti + 1
		sc.cnt = append(sc.cnt, 0)
		plan.Transactions = append(plan.Transactions, Transaction{Server: s})
		sets[pick].ForEach(func(i int) bool {
			if plan.ItemServer[i] < 0 {
				plan.ItemServer[i] = s
				sc.cnt[ti]++
				plan.Assigned++
			}
			return true
		})
	}
	primSlab := make([]uint64, plan.Assigned)
	off := 0
	for ti := range plan.Transactions {
		c := sc.cnt[ti]
		plan.Transactions[ti].Primary = primSlab[off : off : off+c]
		off += c
	}
	for i := 0; i < m; i++ {
		if s := plan.ItemServer[i]; s >= 0 {
			t := &plan.Transactions[sc.txnOf[s]-1]
			t.Primary = append(t.Primary, items[i])
		}
	}

	if p.opts.DistinguishedSingles {
		// Under a transaction budget, redirection may only merge into
		// transactions that already exist — creating one would bust the
		// budget.
		p.redirectSingles(plan, sc, budget == 0, avoid)
	}
	if p.opts.Hitchhike {
		p.addHitchhikers(plan)
	}
	sc.release()
	return plan, nil
}

// buildBalanced is the HintBalanceLoad full-fetch path: item→server
// assignment by min-max-load bipartite matching instead of greedy set
// cover. Transactions are emitted in ascending server order (the
// matching has no pick order), so equal requests still yield equal
// plans. DistinguishedSingles is intentionally not applied (it would
// re-concentrate load); Hitchhike composes as usual.
func (p *Planner) buildBalanced(plan *Plan, avoid func(int) bool) *Plan {
	m := len(plan.Items)
	cands := make([][]int, m)
	for i, it := range plan.Items {
		plan.ItemServer[i] = -1
		plan.Replicas[i] = p.placement.Replicas(it, nil)
		for _, s := range plan.Replicas[i] {
			if avoid != nil && avoid(s) {
				continue
			}
			cands[i] = append(cands[i], s)
		}
	}
	assign, _ := BalancedAssign(cands)

	used := make([]int, 0, m)
	txnOf := make(map[int]int)
	for _, s := range assign {
		if s >= 0 {
			if _, ok := txnOf[s]; !ok {
				txnOf[s] = 0
				used = append(used, s)
			}
		}
	}
	sort.Ints(used)
	for ti, s := range used {
		txnOf[s] = ti
		plan.Transactions = append(plan.Transactions, Transaction{Server: s})
	}
	for i, s := range assign {
		if s < 0 {
			continue
		}
		plan.ItemServer[i] = s
		t := &plan.Transactions[txnOf[s]]
		t.Primary = append(t.Primary, plan.Items[i])
		plan.Assigned++
	}
	if p.opts.Hitchhike {
		p.addHitchhikers(plan)
	}
	return plan
}

// redirectSingles moves every single-item transaction's item to its
// distinguished server, merging with an existing transaction to that
// server when possible. Transactions left empty are dropped. When
// allowNew is false, redirects that would require a new transaction
// are skipped. The scratch carries the server->transaction table
// (sc.txnOf, +1-encoded) and a reusable item->index map.
func (p *Planner) redirectSingles(plan *Plan, sc *buildScratch, allowNew bool, avoid func(int) bool) {
	indexOf := sc.indexOf
	for i, it := range plan.Items {
		indexOf[it] = i
	}
	for ti := range plan.Transactions {
		t := &plan.Transactions[ti]
		if len(t.Primary) != 1 {
			continue
		}
		it := t.Primary[0]
		i := indexOf[it]
		dist, ok := ActingDistinguished(plan.Replicas[i], avoid)
		if !ok || dist == t.Server {
			continue // already fetching the distinguished copy
		}
		// The acting distinguished server holds a non-avoided replica, so
		// it is a candidate server and sc.txnOf covers its id.
		if dj := sc.txnOf[dist]; dj > 0 {
			t.Primary = t.Primary[:0]
			plan.ItemServer[i] = dist
			plan.Transactions[dj-1].Primary = append(plan.Transactions[dj-1].Primary, it)
			continue
		}
		if !allowNew {
			continue
		}
		t.Primary = t.Primary[:0]
		plan.ItemServer[i] = dist
		sc.txnOf[dist] = len(plan.Transactions) + 1
		plan.Transactions = append(plan.Transactions, Transaction{Server: dist, Primary: []uint64{it}})
	}
	// Compact out transactions emptied by redirection. sc.txnOf is left
	// stale after the compaction, which is safe: redirection is the last
	// consumer of the table in a build.
	kept := plan.Transactions[:0]
	for _, t := range plan.Transactions {
		if len(t.Primary) > 0 {
			kept = append(kept, t)
		}
	}
	plan.Transactions = kept
}

// addHitchhikers appends, to every planned transaction, the other
// requested items that have a logical replica on that server.
func (p *Planner) addHitchhikers(plan *Plan) {
	for ti := range plan.Transactions {
		t := &plan.Transactions[ti]
		for i, it := range plan.Items {
			if plan.ItemServer[i] == t.Server {
				continue // primary here already
			}
			for _, s := range plan.Replicas[i] {
				if s == t.Server {
					t.Hitchhikers = append(t.Hitchhikers, it)
					break
				}
			}
		}
	}
}

// ActingDistinguished returns the first replica server not excluded by
// avoid — the distinguished copy itself when its server is up, else
// the survivor that takes over its role. ok is false when every
// replica is avoided.
func ActingDistinguished(replicas []int, avoid func(int) bool) (server int, ok bool) {
	for _, s := range replicas {
		if avoid == nil || !avoid(s) {
			return s, true
		}
	}
	return 0, false
}

// SecondRound bundles the given missed items into transactions against
// their distinguished servers (§III-D). Distinguished copies are pinned
// and never miss, so one bundled round always completes the request.
// The caller passes the items that were not obtained in round 1 and
// whose distinguished server was not already queried with the item
// aboard; this function only groups them by distinguished server.
// replicas must be parallel to items (replicas[i][0] is the
// distinguished server of items[i]).
func SecondRound(items []uint64, replicas [][]int) []Transaction {
	byServer := make(map[int][]uint64)
	var order []int
	for i, it := range items {
		dist := replicas[i][0]
		if _, ok := byServer[dist]; !ok {
			order = append(order, dist)
		}
		byServer[dist] = append(byServer[dist], it)
	}
	out := make([]Transaction, 0, len(order))
	for _, s := range order {
		out = append(out, Transaction{Server: s, Primary: byServer[s]})
	}
	return out
}
