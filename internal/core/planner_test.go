package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rnb/internal/bitset"
	"rnb/internal/hashring"
	"rnb/internal/setcover"
)

// fixedPlacement is a test double mapping each item to a preset replica
// list.
type fixedPlacement struct {
	servers  int
	replicas int
	sets     map[uint64][]int
}

func (f *fixedPlacement) Replicas(item uint64, buf []int) []int {
	return append(buf[:0], f.sets[item]...)
}
func (f *fixedPlacement) NumServers() int  { return f.servers }
func (f *fixedPlacement) NumReplicas() int { return f.replicas }

func fullCover(plan *Plan, items []uint64) bool {
	got := map[uint64]bool{}
	for _, t := range plan.Transactions {
		for _, it := range t.Primary {
			got[it] = true
		}
	}
	for _, it := range items {
		if !got[it] {
			return false
		}
	}
	return true
}

func TestBuildCoversAllItems(t *testing.T) {
	p := NewPlanner(hashring.NewMultiHashPlacement(16, 3, 1), Options{})
	items := []uint64{10, 20, 30, 40, 50, 60, 70, 80}
	plan, err := p.Build(items, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !fullCover(plan, items) {
		t.Fatal("plan does not cover all items")
	}
	if plan.Assigned != len(items) {
		t.Fatalf("Assigned = %d, want %d", plan.Assigned, len(items))
	}
	for i, s := range plan.ItemServer {
		if s == -1 {
			t.Fatalf("item %d unassigned", i)
		}
		// Assigned server must be one of the item's replicas.
		found := false
		for _, r := range plan.Replicas[i] {
			if r == s {
				found = true
			}
		}
		if !found {
			t.Fatalf("item %d assigned to non-replica server %d (replicas %v)",
				i, s, plan.Replicas[i])
		}
	}
}

func TestBuildEmpty(t *testing.T) {
	p := NewPlanner(hashring.NewMultiHashPlacement(4, 2, 1), Options{})
	plan, err := p.Build(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumTransactions() != 0 {
		t.Fatal("empty request produced transactions")
	}
}

func TestBuildRejectsDuplicates(t *testing.T) {
	p := NewPlanner(hashring.NewMultiHashPlacement(4, 2, 1), Options{})
	if _, err := p.Build([]uint64{1, 2, 1}, 0); err == nil {
		t.Fatal("duplicate items accepted")
	}
}

func TestBundlingBeatsSingleReplica(t *testing.T) {
	// With replication, the expected number of transactions must be at
	// most the single-replica count, and in aggregate strictly lower.
	single := NewPlanner(hashring.NewMultiHashPlacement(16, 1, 1), Options{})
	multi := NewPlanner(hashring.NewMultiHashPlacement(16, 4, 1), Options{})
	rng := rand.New(rand.NewSource(5))
	var sumSingle, sumMulti int
	for trial := 0; trial < 200; trial++ {
		items := make([]uint64, 0, 20)
		seen := map[uint64]bool{}
		for len(items) < 20 {
			it := uint64(rng.Intn(10000))
			if !seen[it] {
				seen[it] = true
				items = append(items, it)
			}
		}
		ps, err := single.Build(items, 0)
		if err != nil {
			t.Fatal(err)
		}
		pm, err := multi.Build(items, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !fullCover(pm, items) {
			t.Fatal("multi plan incomplete")
		}
		if pm.NumTransactions() > ps.NumTransactions() {
			t.Fatalf("trial %d: replicated plan uses MORE transactions (%d > %d)",
				trial, pm.NumTransactions(), ps.NumTransactions())
		}
		sumSingle += ps.NumTransactions()
		sumMulti += pm.NumTransactions()
	}
	if float64(sumMulti) > 0.8*float64(sumSingle) {
		t.Fatalf("4 replicas only reduced transactions %d -> %d; expected a big win",
			sumSingle, sumMulti)
	}
}

func TestFig7Scenario(t *testing.T) {
	// The paper's fig. 7: items 1,2 both live on server A (and
	// elsewhere); requests {1,2,3} and {1,2,4} must both fetch 1 and 2
	// from the same server, leaving the other replicas cold.
	fp := &fixedPlacement{servers: 3, replicas: 2, sets: map[uint64][]int{
		1: {0, 2}, // A, C
		2: {0, 1}, // A, B
		3: {1, 2},
		4: {2, 1},
	}}
	p := NewPlanner(fp, Options{})
	planI, err := p.Build([]uint64{1, 2, 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	planII, err := p.Build([]uint64{1, 2, 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if planI.ItemServer[0] != 0 || planI.ItemServer[1] != 0 {
		t.Fatalf("request I: items 1,2 not bundled on server A: %v", planI.ItemServer)
	}
	if planII.ItemServer[0] != 0 || planII.ItemServer[1] != 0 {
		t.Fatalf("request II: items 1,2 not bundled on server A: %v", planII.ItemServer)
	}
	// Both plans use exactly 2 transactions (A + one other).
	if planI.NumTransactions() != 2 || planII.NumTransactions() != 2 {
		t.Fatalf("transactions: %d and %d, want 2 and 2",
			planI.NumTransactions(), planII.NumTransactions())
	}
}

func TestDistinguishedSinglesRedirect(t *testing.T) {
	// Item 5's cover pick would be server 1 (shared with nothing), but
	// as a single-item transaction it must be redirected to its
	// distinguished server 2.
	fp := &fixedPlacement{servers: 4, replicas: 2, sets: map[uint64][]int{
		1: {0, 3},
		2: {0, 3},
		5: {2, 1},
	}}
	p := NewPlanner(fp, Options{DistinguishedSingles: true})
	plan, err := p.Build([]uint64{1, 2, 5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.ItemServer[2] != 2 {
		t.Fatalf("single item not redirected to distinguished server: %v", plan.ItemServer)
	}
	if !fullCover(plan, []uint64{1, 2, 5}) {
		t.Fatal("redirect broke coverage")
	}
	// Without the option, the item stays wherever greedy put it.
	p2 := NewPlanner(fp, Options{DistinguishedSingles: false})
	plan2, _ := p2.Build([]uint64{1, 2, 5}, 0)
	if !fullCover(plan2, []uint64{1, 2, 5}) {
		t.Fatal("plain plan incomplete")
	}
}

func TestDistinguishedSinglesMergesIntoExistingTxn(t *testing.T) {
	// Item 5 would be fetched alone from server 1; its distinguished
	// server 0 already has a planned transaction, so it must merge.
	fp := &fixedPlacement{servers: 3, replicas: 2, sets: map[uint64][]int{
		1: {0, 2},
		2: {0, 2},
		5: {0, 1},
	}}
	p := NewPlanner(fp, Options{DistinguishedSingles: true})
	plan, err := p.Build([]uint64{1, 2, 5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumTransactions() != 1 {
		t.Fatalf("want 1 merged transaction, got %d: %+v",
			plan.NumTransactions(), plan.Transactions)
	}
	if plan.Transactions[0].Server != 0 {
		t.Fatalf("merged onto wrong server %d", plan.Transactions[0].Server)
	}
}

func TestHitchhikers(t *testing.T) {
	// Greedy picks server 0 for items 1,2,3 and server 1 for item 4.
	// Item 3 also has a replica on server 1, so it must hitchhike on the
	// server-1 transaction.
	fp := &fixedPlacement{servers: 2, replicas: 2, sets: map[uint64][]int{
		1: {0},
		2: {0},
		3: {0, 1},
		4: {1},
	}}
	p := NewPlanner(fp, Options{Hitchhike: true})
	plan, err := p.Build([]uint64{1, 2, 3, 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var hh []uint64
	for _, txn := range plan.Transactions {
		if txn.Server == 1 {
			hh = txn.Hitchhikers
		}
	}
	if len(hh) != 1 || hh[0] != 3 {
		t.Fatalf("hitchhikers on server 1 = %v, want [3]", hh)
	}
	// Transaction size includes hitchhikers.
	for _, txn := range plan.Transactions {
		if txn.Size() != len(txn.Primary)+len(txn.Hitchhikers) {
			t.Fatal("Size() wrong")
		}
	}
}

func TestNoHitchhikersWhenDisabled(t *testing.T) {
	p := NewPlanner(hashring.NewMultiHashPlacement(8, 3, 1), Options{Hitchhike: false})
	plan, err := p.Build([]uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, txn := range plan.Transactions {
		if len(txn.Hitchhikers) != 0 {
			t.Fatal("hitchhikers present though disabled")
		}
	}
}

func TestLimitPlanStopsEarly(t *testing.T) {
	p := NewPlanner(hashring.NewMultiHashPlacement(32, 1, 1), Options{})
	items := make([]uint64, 40)
	for i := range items {
		items[i] = uint64(i * 977)
	}
	full, err := p.Build(items, 0)
	if err != nil {
		t.Fatal(err)
	}
	half, err := p.Build(items, 20)
	if err != nil {
		t.Fatal(err)
	}
	if half.Assigned < 20 {
		t.Fatalf("limit plan assigned %d < target 20", half.Assigned)
	}
	if half.NumTransactions() >= full.NumTransactions() {
		t.Fatalf("limit plan no cheaper: %d vs %d txns",
			half.NumTransactions(), full.NumTransactions())
	}
	// Unassigned items must be marked -1.
	unassigned := 0
	for _, s := range half.ItemServer {
		if s == -1 {
			unassigned++
		}
	}
	if unassigned != len(items)-half.Assigned {
		t.Fatalf("unassigned count %d inconsistent with Assigned %d",
			unassigned, half.Assigned)
	}
}

func TestLimitWithReplicationBeatsWithout(t *testing.T) {
	// §III-F: replication gives big additional gains for LIMIT queries.
	single := NewPlanner(hashring.NewMultiHashPlacement(32, 1, 1), Options{})
	multi := NewPlanner(hashring.NewMultiHashPlacement(32, 4, 1), Options{})
	rng := rand.New(rand.NewSource(8))
	var sumS, sumM int
	for trial := 0; trial < 100; trial++ {
		seen := map[uint64]bool{}
		items := make([]uint64, 0, 50)
		for len(items) < 50 {
			it := uint64(rng.Intn(100000))
			if !seen[it] {
				seen[it] = true
				items = append(items, it)
			}
		}
		ps, _ := single.Build(items, 45)
		pm, _ := multi.Build(items, 45)
		sumS += ps.NumTransactions()
		sumM += pm.NumTransactions()
	}
	if float64(sumM) > 0.7*float64(sumS) {
		t.Fatalf("LIMIT with replication %d vs without %d: expected a large win", sumM, sumS)
	}
}

func TestBalanceTieBreakSpreadsLoad(t *testing.T) {
	// With full replication (replicas == servers) every server covers
	// every request, so greedy always has a pure tie. Low-id tie-break
	// puts everything on server 0; balanced tie-break spreads.
	const servers = 8
	run := func(balance bool) []int {
		p := NewPlanner(hashring.NewMultiHashPlacement(servers, servers, 1),
			Options{BalanceTieBreak: balance})
		counts := make([]int, servers)
		rng := rand.New(rand.NewSource(77))
		for trial := 0; trial < 300; trial++ {
			items := make([]uint64, 0, 10)
			seen := map[uint64]bool{}
			for len(items) < 10 {
				it := uint64(rng.Intn(100000))
				if !seen[it] {
					seen[it] = true
					items = append(items, it)
				}
			}
			plan, err := p.Build(items, 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, txn := range plan.Transactions {
				counts[txn.Server]++
			}
		}
		return counts
	}
	plain := run(false)
	balanced := run(true)
	if plain[0] != 300 {
		t.Fatalf("premise: low-id tie-break should pick server 0 every time: %v", plain)
	}
	nonzero := 0
	for _, c := range balanced {
		if c > 0 {
			nonzero++
		}
	}
	if nonzero < servers/2 {
		t.Fatalf("balanced tie-break still concentrated: %v", balanced)
	}
}

func TestBalanceTieBreakDeterministic(t *testing.T) {
	p := NewPlanner(hashring.NewMultiHashPlacement(8, 3, 1), Options{BalanceTieBreak: true})
	items := []uint64{10, 20, 30, 40, 50}
	a, err := p.Build(items, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Build(items, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumTransactions() != b.NumTransactions() {
		t.Fatal("balanced plans not deterministic")
	}
	for i := range a.Transactions {
		if a.Transactions[i].Server != b.Transactions[i].Server {
			t.Fatal("balanced plans not deterministic")
		}
	}
}

func TestBuildAvoiding(t *testing.T) {
	p := NewPlanner(hashring.NewMultiHashPlacement(8, 2, 1), Options{})
	items := []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	avoid := func(s int) bool { return s == 0 || s == 1 }
	plan, err := p.BuildAvoiding(items, 0, avoid)
	if err != nil {
		t.Fatal(err)
	}
	for _, txn := range plan.Transactions {
		if avoid(txn.Server) {
			t.Fatalf("plan routed to avoided server %d", txn.Server)
		}
	}
	// Items whose both replicas are avoided must be unassigned; others
	// assigned.
	for i, s := range plan.ItemServer {
		bothDown := true
		for _, r := range plan.Replicas[i] {
			if !avoid(r) {
				bothDown = false
			}
		}
		if bothDown && s != -1 {
			t.Fatalf("item %d assigned despite all replicas avoided", i)
		}
		if !bothDown && s == -1 {
			t.Fatalf("item %d unassigned despite live replica", i)
		}
	}
}

func TestActingDistinguished(t *testing.T) {
	replicas := []int{3, 7, 9}
	if s, ok := ActingDistinguished(replicas, nil); !ok || s != 3 {
		t.Fatalf("nil avoid: %d %v", s, ok)
	}
	avoid3 := func(s int) bool { return s == 3 }
	if s, ok := ActingDistinguished(replicas, avoid3); !ok || s != 7 {
		t.Fatalf("avoid 3: %d %v", s, ok)
	}
	all := func(int) bool { return true }
	if _, ok := ActingDistinguished(replicas, all); ok {
		t.Fatal("all avoided should fail")
	}
}

func TestBuildBudget(t *testing.T) {
	p := NewPlanner(hashring.NewMultiHashPlacement(16, 2, 1), Options{Hitchhike: true})
	items := make([]uint64, 40)
	for i := range items {
		items[i] = uint64(i*331 + 7)
	}
	prevAssigned := -1
	for _, budget := range []int{1, 2, 4, 8} {
		plan, err := p.BuildBudget(items, budget)
		if err != nil {
			t.Fatal(err)
		}
		if plan.NumTransactions() > budget {
			t.Fatalf("budget %d: %d transactions", budget, plan.NumTransactions())
		}
		if plan.Assigned <= prevAssigned {
			t.Fatalf("budget %d: coverage %d not increasing", budget, plan.Assigned)
		}
		prevAssigned = plan.Assigned
		// Assigned items must map to planned servers.
		for i, s := range plan.ItemServer {
			if s == -1 {
				continue
			}
			found := false
			for _, txn := range plan.Transactions {
				if txn.Server == s {
					found = true
				}
			}
			if !found {
				t.Fatalf("item %d assigned to unplanned server %d", i, s)
			}
		}
	}
	// Zero/negative budget yields an empty plan.
	plan, err := p.BuildBudget(items, 0)
	if err != nil || plan.NumTransactions() != 0 {
		t.Fatalf("zero budget: %+v %v", plan, err)
	}
}

func TestBuildBudgetWithDistinguishedSinglesKeepsBudget(t *testing.T) {
	// The single-item redirect must not create transactions beyond the
	// budget.
	p := NewPlanner(hashring.NewMultiHashPlacement(16, 2, 3), Options{
		DistinguishedSingles: true,
	})
	items := make([]uint64, 30)
	for i := range items {
		items[i] = uint64(i*977 + 13)
	}
	for _, budget := range []int{1, 2, 3} {
		plan, err := p.BuildBudget(items, budget)
		if err != nil {
			t.Fatal(err)
		}
		if plan.NumTransactions() > budget {
			t.Fatalf("budget %d busted: %d transactions", budget, plan.NumTransactions())
		}
	}
}

func TestSecondRoundGroupsByDistinguished(t *testing.T) {
	items := []uint64{1, 2, 3, 4}
	replicas := [][]int{{0, 5}, {1, 6}, {0, 7}, {1, 8}}
	txns := SecondRound(items, replicas)
	if len(txns) != 2 {
		t.Fatalf("got %d transactions, want 2", len(txns))
	}
	byServer := map[int][]uint64{}
	for _, txn := range txns {
		byServer[txn.Server] = txn.Primary
	}
	if len(byServer[0]) != 2 || len(byServer[1]) != 2 {
		t.Fatalf("grouping wrong: %v", byServer)
	}
}

func TestSecondRoundEmpty(t *testing.T) {
	if got := SecondRound(nil, nil); len(got) != 0 {
		t.Fatal("empty second round")
	}
}

func TestCustomCoverFunc(t *testing.T) {
	// Plug the lazy-greedy cover in and verify plans match eager greedy.
	pEager := NewPlanner(hashring.NewMultiHashPlacement(16, 3, 1), Options{})
	pLazy := NewPlanner(hashring.NewMultiHashPlacement(16, 3, 1), Options{
		Cover: func(u *bitset.Set, sets []*bitset.Set, target int) setcover.Result {
			return setcover.GreedyLazy(u, sets, target)
		},
	})
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		seen := map[uint64]bool{}
		items := make([]uint64, 0, 15)
		for len(items) < 15 {
			it := uint64(rng.Intn(5000))
			if !seen[it] {
				seen[it] = true
				items = append(items, it)
			}
		}
		a, _ := pEager.Build(items, 0)
		b, _ := pLazy.Build(items, 0)
		if a.NumTransactions() != b.NumTransactions() {
			t.Fatalf("trial %d: eager %d txns, lazy %d", trial,
				a.NumTransactions(), b.NumTransactions())
		}
	}
}

func TestPlannerAccessors(t *testing.T) {
	pl := hashring.NewMultiHashPlacement(4, 2, 1)
	p := NewPlanner(pl, Options{Hitchhike: true})
	if p.Placement() != hashring.Placement(pl) {
		t.Fatal("Placement accessor")
	}
	if !p.Options().Hitchhike {
		t.Fatal("Options accessor")
	}
}

func TestQuickPlansAlwaysValid(t *testing.T) {
	p := NewPlanner(hashring.NewMultiHashPlacement(12, 3, 9), Options{
		Hitchhike:            true,
		DistinguishedSingles: true,
	})
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		seen := map[uint64]bool{}
		items := make([]uint64, 0, n)
		for len(items) < n {
			it := uint64(rng.Intn(100000))
			if !seen[it] {
				seen[it] = true
				items = append(items, it)
			}
		}
		plan, err := p.Build(items, 0)
		if err != nil {
			return false
		}
		if !fullCover(plan, items) {
			return false
		}
		// Each transaction's primaries must belong to servers in the
		// item's replica set, and no server appears twice.
		srv := map[int]bool{}
		for _, txn := range plan.Transactions {
			if srv[txn.Server] {
				return false
			}
			srv[txn.Server] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuild20Items16Servers(b *testing.B) {
	p := NewPlanner(hashring.NewMultiHashPlacement(16, 4, 1), Options{
		Hitchhike: true, DistinguishedSingles: true,
	})
	items := make([]uint64, 20)
	for i := range items {
		items[i] = uint64(i * 7919)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Build(items, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuild100Items64Servers(b *testing.B) {
	p := NewPlanner(hashring.NewMultiHashPlacement(64, 4, 1), Options{})
	items := make([]uint64, 100)
	for i := range items {
		items[i] = uint64(i * 104729)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Build(items, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func TestBuildExcluding(t *testing.T) {
	p := NewPlanner(hashring.NewMultiHashPlacement(8, 3, 1), Options{})
	items := []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	avoid := func(s int) bool { return s == 0 }
	exclude := map[int]bool{1: true, 2: true}
	plan, err := p.BuildExcluding(items, 0, exclude, avoid)
	if err != nil {
		t.Fatal(err)
	}
	for _, txn := range plan.Transactions {
		if txn.Server <= 2 {
			t.Fatalf("plan routed to excluded/avoided server %d", txn.Server)
		}
	}
	// With a nil avoid the exclusion set must still hold.
	plan, err = p.BuildExcluding(items, 0, exclude, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, txn := range plan.Transactions {
		if exclude[txn.Server] {
			t.Fatalf("plan routed to excluded server %d", txn.Server)
		}
	}
	// Empty exclusion degrades to BuildAvoiding.
	a, err := p.BuildExcluding(items, 0, nil, avoid)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.BuildAvoiding(items, 0, avoid)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Transactions) != len(b.Transactions) {
		t.Fatalf("empty exclusion changed the plan: %d vs %d txns",
			len(a.Transactions), len(b.Transactions))
	}
}
