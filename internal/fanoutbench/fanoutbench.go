// Package fanoutbench measures the rnb.Client's fan-out throughput
// against in-process memcached servers under concurrent load — the
// harness behind BenchmarkFanoutConcurrency and `rnbbench pool`.
//
// The quantity of interest is multi-get throughput as a function of
// client concurrency and transport: with the single-connection
// transport every concurrent request serializes on one round trip per
// server, so throughput plateaus almost immediately; the pooled,
// pipelined transport (rnb.WithPoolSize) lets G goroutines share
// batched, overlapped round trips, and throughput keeps scaling. The
// paper's premise (per-transaction cost dominates, §II) makes this the
// client-side half of the RnB story: bundling cuts transactions per
// request, pooling keeps the saved fan-out from re-serializing inside
// the client.
package fanoutbench

import (
	"fmt"
	"math/rand"
	"net"
	"sync/atomic"
	"time"

	"rnb"
	"rnb/internal/memcache"
	"rnb/internal/obs"
)

// latListener wraps a listener so every accepted connection pays a
// simulated round-trip delay on each raw read. One delay per raw Read
// is exactly the quantity pipelining amortizes: a batched flush of N
// requests arrives in one read (one delay) where N serialized round
// trips arrive in N.
type latListener struct {
	net.Listener
	delay *atomic.Int64
}

func (l *latListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &latConn{Conn: c, delay: l.delay}, nil
}

type latConn struct {
	net.Conn
	delay *atomic.Int64
}

func (c *latConn) Read(p []byte) (int, error) {
	if d := c.delay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	return c.Conn.Read(p)
}

// Config parameterizes one measurement.
type Config struct {
	// Servers is the number of in-process backends (default 4).
	Servers int `json:"servers"`
	// Replicas is the RnB replication level (default 3, clamped to
	// Servers by the client).
	Replicas int `json:"replicas"`
	// PoolSize selects the transport: <= 1 single-connection, > 1 the
	// pipelined pool with that many connections per server.
	PoolSize int `json:"pool_size"`
	// Binary switches the transport to the binary wire format (quiet-get
	// pipelining through the pool; implies the pooled transport).
	Binary bool `json:"binary,omitempty"`
	// Goroutines is the number of concurrent load generators
	// (default 8).
	Goroutines int `json:"goroutines"`
	// Ops is the total number of GetMulti calls across all goroutines
	// (default 2000).
	Ops int `json:"ops"`
	// TxnSize is the number of distinct keys per GetMulti (default 16).
	TxnSize int `json:"txn_size"`
	// Keys is the keyspace size (default 4096; must be >= TxnSize).
	Keys int `json:"keys"`
	// ValueSize is the stored value length in bytes (default 100).
	ValueSize int `json:"value_size"`
	// RTT simulates network latency: each raw server-side read sleeps
	// this long before delivering bytes (default 200µs; < 0 disables).
	// Loopback has none of the round-trip latency a real tier pays, and
	// latency is precisely what pooling and pipelining attack: a
	// batched flush of N pipelined requests pays the delay once where N
	// serialized round trips pay it N times. Applied after preload.
	RTT time.Duration `json:"rtt_ns"`
	// Seed drives key selection (default 1).
	Seed int64 `json:"seed"`
}

func (c *Config) defaults() error {
	if c.Servers <= 0 {
		c.Servers = 4
	}
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.Goroutines <= 0 {
		c.Goroutines = 8
	}
	if c.Ops <= 0 {
		c.Ops = 2000
	}
	if c.TxnSize <= 0 {
		c.TxnSize = 16
	}
	if c.Keys <= 0 {
		c.Keys = 4096
	}
	if c.ValueSize < 0 {
		c.ValueSize = 100
	}
	if c.ValueSize == 0 {
		c.ValueSize = 100
	}
	if c.RTT == 0 {
		c.RTT = 200 * time.Microsecond
	}
	if c.RTT < 0 {
		c.RTT = 0
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Keys < c.TxnSize {
		return fmt.Errorf("fanoutbench: keyspace %d smaller than transaction size %d", c.Keys, c.TxnSize)
	}
	return nil
}

// Result is one measurement.
type Result struct {
	Config       Config        `json:"config"`
	Elapsed      time.Duration `json:"elapsed_ns"`
	Ops          int           `json:"ops"`
	Items        int           `json:"items"`
	OpsPerSec    float64       `json:"ops_per_sec"`
	ItemsPerSec  float64       `json:"items_per_sec"`
	Transactions uint64        `json:"transactions"`
	// LatencyP50 and LatencyP99 are per-GetMulti wall-time quantiles,
	// recorded into per-goroutine histogram shards and merged after the
	// run (log-linear buckets, ~3% relative error).
	LatencyP50 time.Duration `json:"latency_p50_ns"`
	LatencyP99 time.Duration `json:"latency_p99_ns"`
	// PipelineHighWater is the deepest observed pipeline (0 for the
	// single-connection transport — there is no pipeline).
	PipelineHighWater int64 `json:"pipeline_high_water"`
}

// Run starts cfg.Servers in-process backends, preloads the keyspace,
// and drives cfg.Ops multi-gets from cfg.Goroutines goroutines through
// one shared client, returning the throughput.
func Run(cfg Config) (Result, error) {
	if err := cfg.defaults(); err != nil {
		return Result{}, err
	}
	// rtt holds the currently injected per-read delay in nanoseconds;
	// zero during preload, cfg.RTT during the measured window.
	var rtt atomic.Int64
	servers := make([]*memcache.Server, cfg.Servers)
	addrs := make([]string, cfg.Servers)
	for i := range servers {
		srv := memcache.NewServer(memcache.NewStore(0))
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return Result{}, err
		}
		go srv.Serve(&latListener{Listener: ln, delay: &rtt})
		defer srv.Close()
		servers[i] = srv
		addrs[i] = ln.Addr().String()
	}
	opts := []rnb.Option{rnb.WithReplicas(cfg.Replicas), rnb.WithTimeout(10 * time.Second)}
	if cfg.PoolSize > 1 {
		opts = append(opts, rnb.WithPoolSize(cfg.PoolSize))
	}
	if cfg.Binary {
		opts = append(opts, rnb.WithBinaryProtocol())
	}
	cl, err := rnb.NewClient(addrs, opts...)
	if err != nil {
		return Result{}, err
	}
	defer cl.Close()

	key := func(i int) string { return fmt.Sprintf("item:%06d", i) }
	val := make([]byte, cfg.ValueSize)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	for i := 0; i < cfg.Keys; i++ {
		if err := cl.Set(&rnb.Item{Key: key(i), Value: val}); err != nil {
			return Result{}, fmt.Errorf("fanoutbench: preload: %w", err)
		}
	}

	type job struct{ start int }
	jobs := make(chan job, cfg.Ops)
	rng := rand.New(rand.NewSource(cfg.Seed))
	for op := 0; op < cfg.Ops; op++ {
		jobs <- job{start: rng.Intn(cfg.Keys - cfg.TxnSize + 1)}
	}
	close(jobs)

	errs := make(chan error, cfg.Goroutines)
	items := make(chan int, cfg.Goroutines)
	// One histogram shard per goroutine, merged after the run: each
	// shard is single-writer during the measured window, so the merged
	// view equals what one global histogram would have recorded without
	// the cross-core contention on its buckets.
	shards := make([]*obs.Hist, cfg.Goroutines)
	for i := range shards {
		shards[i] = &obs.Hist{}
	}
	startTxns := cl.Transactions()
	rtt.Store(int64(cfg.RTT)) // preload ran latency-free; the measured window pays it
	t0 := time.Now()
	for g := 0; g < cfg.Goroutines; g++ {
		hist := shards[g]
		go func() {
			got := 0
			ks := make([]string, cfg.TxnSize)
			for j := range jobs {
				for i := range ks {
					ks[i] = key(j.start + i)
				}
				opStart := time.Now()
				found, _, err := cl.GetMulti(ks)
				if err != nil {
					errs <- err
					return
				}
				hist.Observe(time.Since(opStart))
				got += len(found)
			}
			items <- got
			errs <- nil
		}()
	}
	total := 0
	for g := 0; g < cfg.Goroutines; g++ {
		if err := <-errs; err != nil {
			return Result{}, err
		}
		total += <-items
	}
	elapsed := time.Since(t0)

	res := Result{
		Config:       cfg,
		Elapsed:      elapsed,
		Ops:          cfg.Ops,
		Items:        total,
		Transactions: cl.Transactions() - startTxns,
	}
	if secs := elapsed.Seconds(); secs > 0 {
		res.OpsPerSec = float64(cfg.Ops) / secs
		res.ItemsPerSec = float64(total) / secs
	}
	merged := &obs.Hist{}
	for _, h := range shards {
		merged.Merge(h)
	}
	res.LatencyP50 = merged.Quantile(0.50)
	res.LatencyP99 = merged.Quantile(0.99)
	if g := cl.PoolGauges(); g != nil {
		res.PipelineHighWater = g.PipelineHighWater.Load()
	}
	return res, nil
}
