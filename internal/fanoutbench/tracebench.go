package fanoutbench

// The trace-attribution experiment behind `rnbbench trace` and
// BENCH_trace.json: drive Zipf-skewed multi-gets through a traced
// client against in-process servers and aggregate the per-RTT
// attribution (client queue / wire / server queue / parse / exec /
// flush) by server. Under skew with r=1 the hot key's home server
// absorbs a disproportionate share of the tier's queue wait — the
// bottleneck of paper §II seen from the inside; with replication and
// bundling (r>1) the planner spreads the same traffic and the hot
// server's queue-wait share falls toward 1/N.

import (
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"rnb"
	"rnb/internal/memcache"
	"rnb/internal/obs"
)

// TraceConfig parameterizes one attribution run.
type TraceConfig struct {
	// Servers is the number of in-process backends (default 4).
	Servers int `json:"servers"`
	// Replicas is the RnB replication level (default 1: the no-RnB
	// baseline; sweep against 3 to see the relief).
	Replicas int `json:"replicas"`
	// PoolSize selects the pooled transport (> 1; default 4). Pipelining
	// is what makes server-side queue wait visible: concurrent requests
	// stack behind each other on the hot server's connections.
	PoolSize int `json:"pool_size"`
	// Goroutines is the number of concurrent load generators (default 8).
	Goroutines int `json:"goroutines"`
	// Ops is the total number of GetMulti calls (default 2000).
	Ops int `json:"ops"`
	// TxnSize is the number of distinct keys per GetMulti (default 8).
	TxnSize int `json:"txn_size"`
	// Keys is the keyspace size (default 4096).
	Keys int `json:"keys"`
	// ValueSize is the stored value length in bytes (default 100).
	ValueSize int `json:"value_size"`
	// Skew is the Zipf exponent for key popularity (must be > 1 to
	// skew; 0 selects uniform; default 1.2).
	Skew float64 `json:"skew"`
	// Balance enables the client's balanced planning (rotating
	// tie-break): without it, replicated hot keys still bundle onto
	// their lowest-id replica on every request.
	Balance bool `json:"balance,omitempty"`
	// Seed drives key selection (default 1).
	Seed int64 `json:"seed"`
}

func (c *TraceConfig) defaults() error {
	if c.Servers <= 0 {
		c.Servers = 4
	}
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.PoolSize <= 0 {
		c.PoolSize = 4
	}
	if c.Goroutines <= 0 {
		c.Goroutines = 8
	}
	if c.Ops <= 0 {
		c.Ops = 2000
	}
	if c.TxnSize <= 0 {
		c.TxnSize = 8
	}
	if c.Keys <= 0 {
		c.Keys = 4096
	}
	if c.ValueSize <= 0 {
		c.ValueSize = 100
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Skew != 0 && c.Skew <= 1 {
		return fmt.Errorf("fanoutbench: Zipf skew must be > 1 (or 0 for uniform), got %g", c.Skew)
	}
	if c.Keys < c.TxnSize {
		return fmt.Errorf("fanoutbench: keyspace %d smaller than transaction size %d", c.Keys, c.TxnSize)
	}
	return nil
}

// ServerAttribution aggregates the traced phase attribution of every
// round trip that landed on one server.
type ServerAttribution struct {
	Addr string `json:"addr"`
	// Txns is the number of traced round trips the server absorbed.
	Txns int `json:"txns"`
	// Keys is the number of keys those trips carried.
	Keys int `json:"keys"`
	// ClientQueueNS is client-side submit-to-wire wait summed over the
	// server's trips; the remaining fields are the server's own phase
	// report summed the same way. WireNS is the unattributed residual.
	ClientQueueNS int64 `json:"client_queue_ns"`
	WireNS        int64 `json:"wire_ns"`
	QueueNS       int64 `json:"queue_ns"`
	ParseNS       int64 `json:"parse_ns"`
	WaitNS        int64 `json:"wait_ns"`
	ExecNS        int64 `json:"exec_ns"`
	FlushNS       int64 `json:"flush_ns"`
}

// TraceResult is one attribution measurement.
type TraceResult struct {
	Config TraceConfig `json:"config"`
	// Traces / TracedRTTs count finished traces and the round trips
	// inside them that returned server timings.
	Traces     int `json:"traces"`
	TracedRTTs int `json:"traced_rtts"`
	// PerServer is the aggregate attribution, hottest server (by
	// server-side queue wait) first.
	PerServer []ServerAttribution `json:"per_server"`
	// HotQueueShare is the hottest server's fraction of the tier's total
	// server-side queue wait (1/Servers would be perfectly even).
	HotQueueShare float64 `json:"hot_queue_share"`
	// HotTxnShare is the hottest-by-queue server's fraction of traced
	// round trips.
	HotTxnShare float64 `json:"hot_txn_share"`
	// HotQueueNSPerOp is the hot server's queue wait amortized per
	// GetMulti — the absolute cost a request pays to the bottleneck.
	HotQueueNSPerOp float64 `json:"hot_queue_ns_per_op"`
	// TotalQueueNSPerOp is the whole tier's queue wait per GetMulti;
	// bundling attacks this directly by issuing fewer transactions.
	TotalQueueNSPerOp float64 `json:"total_queue_ns_per_op"`
	// Latency quantiles over the measured GetMulti calls.
	LatencyP50 time.Duration `json:"latency_p50_ns"`
	LatencyP99 time.Duration `json:"latency_p99_ns"`
	// MeanResidualFrac is mean(|DurNS − components| / DurNS) over traced
	// RTTs — zero by construction (wire is the clamped remainder), kept
	// in the record as the acceptance check that it stays that way.
	MeanResidualFrac float64 `json:"mean_residual_frac"`
}

// TraceRun starts cfg.Servers traced in-process backends, drives
// Zipf-skewed multi-gets through a traced client, and aggregates where
// every nanosecond of every round trip went.
func TraceRun(cfg TraceConfig) (TraceResult, error) {
	if err := cfg.defaults(); err != nil {
		return TraceResult{}, err
	}
	servers := make([]*memcache.Server, cfg.Servers)
	addrs := make([]string, cfg.Servers)
	for i := range servers {
		srv := memcache.NewServer(memcache.NewStore(0))
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return TraceResult{}, err
		}
		go srv.Serve(ln)
		defer srv.Close()
		servers[i] = srv
		addrs[i] = ln.Addr().String()
	}

	// Aggregate every finished trace's RTT attribution by server address.
	var (
		mu       sync.Mutex
		perAddr  = map[string]*ServerAttribution{}
		traces   int
		rtts     int
		residual float64
	)
	onFinish := func(sp *obs.Span) {
		mu.Lock()
		defer mu.Unlock()
		traces++
		for i := range sp.RTTs {
			r := &sp.RTTs[i]
			if r.ServerTimings == nil {
				continue
			}
			rtts++
			agg := perAddr[r.Addr]
			if agg == nil {
				agg = &ServerAttribution{Addr: r.Addr}
				perAddr[r.Addr] = agg
			}
			agg.Txns++
			agg.Keys += r.Keys
			agg.ClientQueueNS += r.QueueNS
			agg.WireNS += r.WireNS()
			agg.QueueNS += r.ServerTimings.QueueNS
			agg.ParseNS += r.ServerTimings.ParseNS
			agg.WaitNS += r.ServerTimings.WaitNS
			agg.ExecNS += r.ServerTimings.ExecNS
			agg.FlushNS += r.ServerTimings.FlushNS
			if r.DurNS > 0 {
				sum := r.QueueNS + r.WireNS() + r.ServerTimings.TotalNS()
				diff := float64(r.DurNS - sum)
				if diff < 0 {
					diff = -diff
				}
				residual += diff / float64(r.DurNS)
			}
		}
	}

	cl, err := rnb.NewClient(addrs,
		rnb.WithReplicas(cfg.Replicas),
		rnb.WithTimeout(10*time.Second),
		rnb.WithPoolSize(cfg.PoolSize),
		rnb.WithBalancedPlanning(cfg.Balance),
		rnb.WithTracing(rnb.TraceConfig{SampleEvery: 1, OnFinish: onFinish}),
	)
	if err != nil {
		return TraceResult{}, err
	}
	defer cl.Close()

	key := func(i int) string { return fmt.Sprintf("item:%06d", i) }
	val := make([]byte, cfg.ValueSize)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	for i := 0; i < cfg.Keys; i++ {
		if err := cl.Set(&rnb.Item{Key: key(i), Value: val}); err != nil {
			return TraceResult{}, fmt.Errorf("fanoutbench: preload: %w", err)
		}
	}

	// Precompute the Zipf-skewed key sets so generation cost stays out of
	// the measured window. rand.Zipf ranks key 0 most popular.
	rng := rand.New(rand.NewSource(cfg.Seed))
	var draw func() int
	if cfg.Skew > 1 {
		z := rand.NewZipf(rng, cfg.Skew, 1, uint64(cfg.Keys-1))
		draw = func() int { return int(z.Uint64()) }
	} else {
		draw = func() int { return rng.Intn(cfg.Keys) }
	}
	jobs := make(chan []string, cfg.Ops)
	for op := 0; op < cfg.Ops; op++ {
		seen := make(map[int]bool, cfg.TxnSize)
		ks := make([]string, 0, cfg.TxnSize)
		for len(ks) < cfg.TxnSize {
			k := draw()
			if !seen[k] {
				seen[k] = true
				ks = append(ks, key(k))
			}
		}
		jobs <- ks
	}
	close(jobs)

	errs := make(chan error, cfg.Goroutines)
	shards := make([]*obs.Hist, cfg.Goroutines)
	for i := range shards {
		shards[i] = &obs.Hist{}
	}
	for g := 0; g < cfg.Goroutines; g++ {
		hist := shards[g]
		go func() {
			for ks := range jobs {
				opStart := time.Now()
				if _, _, err := cl.GetMulti(ks); err != nil {
					errs <- err
					return
				}
				hist.Observe(time.Since(opStart))
			}
			errs <- nil
		}()
	}
	for g := 0; g < cfg.Goroutines; g++ {
		if err := <-errs; err != nil {
			return TraceResult{}, err
		}
	}

	mu.Lock()
	defer mu.Unlock()
	res := TraceResult{Config: cfg, Traces: traces, TracedRTTs: rtts}
	var totalQueue, hotQueue int64
	var hot *ServerAttribution
	for _, addr := range addrs { // every server appears, even if idle
		agg := perAddr[addr]
		if agg == nil {
			agg = &ServerAttribution{Addr: addr}
		}
		res.PerServer = append(res.PerServer, *agg)
		totalQueue += agg.QueueNS
		if hot == nil || agg.QueueNS > hotQueue {
			hot, hotQueue = agg, agg.QueueNS
		}
	}
	if totalQueue > 0 && hot != nil {
		res.HotQueueShare = float64(hotQueue) / float64(totalQueue)
	}
	if cfg.Ops > 0 {
		res.HotQueueNSPerOp = float64(hotQueue) / float64(cfg.Ops)
		res.TotalQueueNSPerOp = float64(totalQueue) / float64(cfg.Ops)
	}
	if rtts > 0 && hot != nil {
		res.HotTxnShare = float64(hot.Txns) / float64(rtts)
		res.MeanResidualFrac = residual / float64(rtts)
	}
	merged := &obs.Hist{}
	for _, h := range shards {
		merged.Merge(h)
	}
	res.LatencyP50 = merged.Quantile(0.50)
	res.LatencyP99 = merged.Quantile(0.99)
	sort.SliceStable(res.PerServer, func(i, j int) bool {
		return res.PerServer[i].QueueNS > res.PerServer[j].QueueNS
	})
	return res, nil
}
