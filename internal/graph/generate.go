package graph

import (
	"fmt"
	"math/rand"
	"sort"
)

// GenConfig parameterizes the synthetic social-graph generator.
type GenConfig struct {
	Name  string
	Nodes int
	// Edges is the target directed edge count; the generated graph lands
	// within a small tolerance (duplicates are resampled, but a node's
	// out-degree is capped at Nodes-1).
	Edges int
	// Seed makes generation reproducible.
	Seed int64
	// ZipfS is the Zipf exponent shaping both the out-degree draw and
	// the in-attractiveness weights. Values near 2 give the heavy tails
	// seen in figs. 4–5. Zero selects the default 2.0.
	ZipfS float64
}

// Generate builds a directed graph with a heavy-tailed degree
// distribution using a Chung-Lu style fitness model: each node draws a
// Zipf out-degree (scaled so the total hits cfg.Edges) and a Zipf
// in-attractiveness weight; out-edges then sample targets with
// probability proportional to the target's weight. This reproduces the
// properties of the paper's social graphs that matter to RnB —
// heavy-tailed ego-network sizes and popular nodes shared by many
// ego-networks — without requiring the original datasets.
func Generate(cfg GenConfig) (*Graph, error) {
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("graph: need at least 2 nodes, got %d", cfg.Nodes)
	}
	if cfg.Edges < cfg.Nodes {
		return nil, fmt.Errorf("graph: need at least %d edges for %d nodes", cfg.Nodes, cfg.Nodes)
	}
	s := cfg.ZipfS
	if s == 0 {
		s = 2.0
	}
	if s <= 1 {
		return nil, fmt.Errorf("graph: ZipfS must be > 1, got %g", s)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Nodes

	// Raw Zipf draws for out-degree shape and in-attractiveness.
	zipf := rand.NewZipf(r, s, 1, uint64(n-1))
	rawOut := make([]float64, n)
	inWeight := make([]float64, n)
	var rawSum float64
	for i := 0; i < n; i++ {
		rawOut[i] = float64(1 + zipf.Uint64())
		rawSum += rawOut[i]
		inWeight[i] = float64(1 + zipf.Uint64())
	}

	// Scale raw draws so out-degrees total ~cfg.Edges, each >= 1.
	outDeg := make([]int, n)
	total := 0
	for i := 0; i < n; i++ {
		d := int(rawOut[i] * float64(cfg.Edges) / rawSum)
		if d < 1 {
			d = 1
		}
		if d > n-1 {
			d = n - 1
		}
		outDeg[i] = d
		total += d
	}
	// Distribute the rounding remainder over random nodes.
	for total < cfg.Edges {
		i := r.Intn(n)
		if outDeg[i] < n-1 {
			outDeg[i]++
			total++
		}
	}
	for total > cfg.Edges {
		i := r.Intn(n)
		if outDeg[i] > 1 {
			outDeg[i]--
			total--
		}
	}

	// Cumulative in-weights for proportional target sampling.
	cum := make([]float64, n+1)
	for i := 0; i < n; i++ {
		cum[i+1] = cum[i] + inWeight[i]
	}
	sample := func() int {
		x := r.Float64() * cum[n]
		return sort.SearchFloat64s(cum[1:], x)
	}

	b := NewBuilder(cfg.Name, n)
	seen := make(map[int64]struct{}, cfg.Edges)
	for u := 0; u < n; u++ {
		added := 0
		attempts := 0
		maxAttempts := outDeg[u] * 30
		for added < outDeg[u] && attempts < maxAttempts {
			attempts++
			v := sample()
			if v == u {
				continue
			}
			key := int64(u)*int64(n) + int64(v)
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			if err := b.AddEdge(u, v); err != nil {
				return nil, err
			}
			added++
		}
		// If proportional sampling keeps colliding (very hot targets),
		// fall back to uniform targets to hit the degree budget.
		for added < outDeg[u] {
			v := r.Intn(n)
			if v == u {
				continue
			}
			key := int64(u)*int64(n) + int64(v)
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			if err := b.AddEdge(u, v); err != nil {
				return nil, err
			}
			added++
		}
	}
	return b.Build(), nil
}

// Published sizes of the paper's datasets (§III-B).
const (
	SlashdotNodes = 82168
	SlashdotEdges = 948464
	EpinionsNodes = 75879
	EpinionsEdges = 508837
)

// SlashdotLike generates a synthetic stand-in for the SNAP
// soc-Slashdot0902 graph with the published node and edge counts.
func SlashdotLike(seed int64) *Graph {
	g, err := Generate(GenConfig{
		Name: "slashdot-like", Nodes: SlashdotNodes, Edges: SlashdotEdges, Seed: seed,
	})
	if err != nil {
		panic(err) // static config; cannot fail
	}
	return g
}

// EpinionsLike generates a synthetic stand-in for the SNAP
// soc-Epinions1 graph with the published node and edge counts.
func EpinionsLike(seed int64) *Graph {
	g, err := Generate(GenConfig{
		Name: "epinions-like", Nodes: EpinionsNodes, Edges: EpinionsEdges, Seed: seed,
	})
	if err != nil {
		panic(err)
	}
	return g
}

// ScaledSlashdotLike generates a Slashdot-shaped graph scaled down by
// factor (>= 1), keeping the average degree. Used by tests and quick
// simulations where the full 82k-node graph is unnecessarily slow.
func ScaledSlashdotLike(seed int64, factor int) *Graph {
	if factor < 1 {
		factor = 1
	}
	g, err := Generate(GenConfig{
		Name:  fmt.Sprintf("slashdot-like/%d", factor),
		Nodes: SlashdotNodes / factor,
		Edges: SlashdotEdges / factor,
		Seed:  seed,
	})
	if err != nil {
		panic(err)
	}
	return g
}

// ScaledEpinionsLike is ScaledSlashdotLike for the Epinions shape.
func ScaledEpinionsLike(seed int64, factor int) *Graph {
	if factor < 1 {
		factor = 1
	}
	g, err := Generate(GenConfig{
		Name:  fmt.Sprintf("epinions-like/%d", factor),
		Nodes: EpinionsNodes / factor,
		Edges: EpinionsEdges / factor,
		Seed:  seed,
	})
	if err != nil {
		panic(err)
	}
	return g
}
