// Package graph provides the directed social graphs that drive the RnB
// simulations.
//
// The paper generates memcached request patterns from two SNAP social
// network datasets — Slashdot (82,168 nodes / 948,464 edges) and
// Epinions (75,879 / 508,837) — by fetching, for a uniformly chosen
// user, the "status" items of all of the user's friends (§III-B).
// This package offers a parser for the SNAP edge-list format, so the
// original datasets can be dropped in, and synthetic generators
// calibrated to the same node/edge counts with heavy-tailed degree
// distributions (figs. 4–5), which is what the repository uses by
// default since the datasets cannot be redistributed here.
package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Graph is an immutable directed graph with nodes 0..NumNodes-1.
type Graph struct {
	name string
	// CSR-style adjacency: out-neighbors of node i are
	// adj[offsets[i]:offsets[i+1]], sorted ascending.
	offsets []int32
	adj     []int32
}

// Name returns the graph's label (dataset name).
func (g *Graph) Name() string { return g.name }

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.offsets) - 1 }

// NumEdges returns the directed edge count.
func (g *Graph) NumEdges() int { return len(g.adj) }

// OutDegree returns node u's out-degree.
func (g *Graph) OutDegree(u int) int {
	return int(g.offsets[u+1] - g.offsets[u])
}

// Neighbors returns node u's out-neighbors, sorted ascending. The slice
// aliases internal storage and must not be modified.
func (g *Graph) Neighbors(u int) []int32 {
	return g.adj[g.offsets[u]:g.offsets[u+1]]
}

// AvgDegree returns the mean out-degree.
func (g *Graph) AvgDegree() float64 {
	if g.NumNodes() == 0 {
		return 0
	}
	return float64(g.NumEdges()) / float64(g.NumNodes())
}

// HasEdge reports whether edge (u,v) exists.
func (g *Graph) HasEdge(u, v int) bool {
	nb := g.Neighbors(u)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= int32(v) })
	return i < len(nb) && nb[i] == int32(v)
}

// Builder accumulates edges and produces an immutable Graph.
// Duplicate edges and self-loops are dropped at Build time.
type Builder struct {
	name  string
	n     int
	edges [][2]int32
}

// NewBuilder creates a builder for a graph with n nodes.
func NewBuilder(name string, n int) *Builder {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Builder{name: name, n: n}
}

// AddEdge records the directed edge (u,v). Nodes are grown on demand.
func (b *Builder) AddEdge(u, v int) error {
	if u < 0 || v < 0 {
		return fmt.Errorf("graph: negative node id (%d,%d)", u, v)
	}
	if u >= b.n {
		b.n = u + 1
	}
	if v >= b.n {
		b.n = v + 1
	}
	b.edges = append(b.edges, [2]int32{int32(u), int32(v)})
	return nil
}

// Build produces the immutable graph, deduplicating edges and removing
// self-loops.
func (b *Builder) Build() *Graph {
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i][0] != b.edges[j][0] {
			return b.edges[i][0] < b.edges[j][0]
		}
		return b.edges[i][1] < b.edges[j][1]
	})
	offsets := make([]int32, b.n+1)
	adj := make([]int32, 0, len(b.edges))
	var prev [2]int32 = [2]int32{-1, -1}
	for _, e := range b.edges {
		if e == prev || e[0] == e[1] {
			prev = e
			continue
		}
		prev = e
		adj = append(adj, e[1])
		offsets[e[0]+1]++
	}
	for i := 1; i <= b.n; i++ {
		offsets[i] += offsets[i-1]
	}
	return &Graph{name: b.name, offsets: offsets, adj: adj}
}

// ReadEdgeList parses the SNAP edge-list format: '#'-prefixed comment
// lines, then one "from<TAB/WS>to" pair per line. Node ids are
// remapped densely in order of first appearance.
func ReadEdgeList(r io.Reader, name string) (*Graph, error) {
	b := NewBuilder(name, 0)
	remap := make(map[int64]int)
	id := func(raw int64) int {
		if v, ok := remap[raw]; ok {
			return v
		}
		v := len(remap)
		remap[raw] = v
		return v
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want 'from to', got %q", line, text)
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source id: %w", line, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad target id: %w", line, err)
		}
		if err := b.AddEdge(id(u), id(v)); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	return b.Build(), nil
}

// WriteEdgeList emits the graph in SNAP format (with a header comment).
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# Directed graph: %s\n# Nodes: %d Edges: %d\n",
		g.Name(), g.NumNodes(), g.NumEdges())
	for u := 0; u < g.NumNodes(); u++ {
		for _, v := range g.Neighbors(u) {
			fmt.Fprintf(bw, "%d\t%d\n", u, v)
		}
	}
	return bw.Flush()
}
