package graph

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder("t", 3)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 2}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Build()
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("nodes=%d edges=%d", g.NumNodes(), g.NumEdges())
	}
	if got := g.Neighbors(0); !reflect.DeepEqual(got, []int32{1, 2}) {
		t.Fatalf("Neighbors(0) = %v", got)
	}
	if g.OutDegree(1) != 1 || g.OutDegree(2) != 0 {
		t.Fatalf("degrees wrong: %d %d", g.OutDegree(1), g.OutDegree(2))
	}
	if !g.HasEdge(0, 2) || g.HasEdge(2, 0) {
		t.Fatal("HasEdge wrong")
	}
	if g.Name() != "t" {
		t.Fatalf("Name = %q", g.Name())
	}
}

func TestBuilderDedupAndSelfLoops(t *testing.T) {
	b := NewBuilder("t", 2)
	_ = b.AddEdge(0, 1)
	_ = b.AddEdge(0, 1) // duplicate
	_ = b.AddEdge(1, 1) // self-loop
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1 (dup+loop dropped)", g.NumEdges())
	}
}

func TestBuilderGrowsNodes(t *testing.T) {
	b := NewBuilder("t", 0)
	_ = b.AddEdge(5, 9)
	g := b.Build()
	if g.NumNodes() != 10 {
		t.Fatalf("nodes = %d, want 10", g.NumNodes())
	}
}

func TestBuilderNegativeEdge(t *testing.T) {
	b := NewBuilder("t", 1)
	if err := b.AddEdge(-1, 0); err == nil {
		t.Fatal("negative edge accepted")
	}
}

func TestAvgDegree(t *testing.T) {
	b := NewBuilder("t", 4)
	_ = b.AddEdge(0, 1)
	_ = b.AddEdge(0, 2)
	g := b.Build()
	if g.AvgDegree() != 0.5 {
		t.Fatalf("AvgDegree = %g", g.AvgDegree())
	}
}

func TestReadEdgeListSNAP(t *testing.T) {
	src := `# Directed graph (each unordered pair of nodes is saved once)
# Nodes: 4 Edges: 4
0	1
0	2
17	0

2	3
`
	g, err := ReadEdgeList(strings.NewReader(src), "snap")
	if err != nil {
		t.Fatal(err)
	}
	// Remap order of first appearance: 0->0, 1->1, 2->2, 17->3, 3->4.
	if g.NumNodes() != 5 || g.NumEdges() != 4 {
		t.Fatalf("nodes=%d edges=%d", g.NumNodes(), g.NumEdges())
	}
	if !g.HasEdge(3, 0) {
		t.Fatal("remapped edge 17->0 missing")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := map[string]string{
		"one field":  "0\n",
		"bad source": "x 1\n",
		"bad target": "1 y\n",
	}
	for name, src := range cases {
		if _, err := ReadEdgeList(strings.NewReader(src), "bad"); err == nil {
			t.Errorf("%s: error expected", name)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g, err := Generate(GenConfig{Name: "rt", Nodes: 200, Edges: 1000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf, "rt")
	if err != nil {
		t.Fatal(err)
	}
	// Node ids were already dense, and WriteEdgeList emits them in
	// ascending source order, so the round trip preserves edges exactly
	// for nodes that have at least one incident edge in first-appearance
	// order. Compare edge sets via adjacency of common nodes.
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("edges %d -> %d", g.NumEdges(), g2.NumEdges())
	}
}

func TestGenerateMatchesTargets(t *testing.T) {
	const nodes, edges = 2000, 24000
	g, err := Generate(GenConfig{Name: "synth", Nodes: nodes, Edges: edges, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != nodes {
		t.Fatalf("nodes = %d, want %d", g.NumNodes(), nodes)
	}
	if g.NumEdges() < edges*95/100 || g.NumEdges() > edges {
		t.Fatalf("edges = %d, want within 5%% of %d", g.NumEdges(), edges)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(GenConfig{Name: "d", Nodes: 500, Edges: 4000, Seed: 7})
	b, _ := Generate(GenConfig{Name: "d", Nodes: 500, Edges: 4000, Seed: 7})
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed, different edge counts")
	}
	for u := 0; u < a.NumNodes(); u++ {
		if !reflect.DeepEqual(a.Neighbors(u), b.Neighbors(u)) {
			t.Fatalf("same seed, node %d differs", u)
		}
	}
	c, _ := Generate(GenConfig{Name: "d", Nodes: 500, Edges: 4000, Seed: 8})
	same := true
	for u := 0; u < a.NumNodes() && same; u++ {
		same = reflect.DeepEqual(a.Neighbors(u), c.Neighbors(u))
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestGenerateHeavyTail(t *testing.T) {
	g, err := Generate(GenConfig{Name: "ht", Nodes: 5000, Edges: 57500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	st := OutDegreeStats(g)
	// Mean should be near the target 11.5.
	if st.Mean < 9 || st.Mean > 12.5 {
		t.Fatalf("mean degree %.2f outside [9, 12.5]", st.Mean)
	}
	// Heavy tail: the max degree should far exceed the mean...
	if float64(st.Max) < 8*st.Mean {
		t.Fatalf("max degree %d not heavy-tailed vs mean %.1f", st.Max, st.Mean)
	}
	// ...and most nodes sit below the mean (skew).
	below := 0
	for d := 0; d < int(st.Mean) && d < len(st.Histogram); d++ {
		below += st.Histogram[d]
	}
	if float64(below) < 0.5*float64(g.NumNodes()) {
		t.Fatalf("distribution not skewed: only %d/%d below mean", below, g.NumNodes())
	}
	// In-degree should also be heavy-tailed (popular users exist).
	ist := InDegreeStats(g)
	if float64(ist.Max) < 8*ist.Mean {
		t.Fatalf("in-degree max %d not heavy-tailed vs mean %.1f", ist.Max, ist.Mean)
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(GenConfig{Nodes: 1, Edges: 10}); err == nil {
		t.Error("1 node accepted")
	}
	if _, err := Generate(GenConfig{Nodes: 100, Edges: 10}); err == nil {
		t.Error("edges < nodes accepted")
	}
	if _, err := Generate(GenConfig{Nodes: 10, Edges: 20, ZipfS: 0.5}); err == nil {
		t.Error("ZipfS <= 1 accepted")
	}
}

func TestScaledGenerators(t *testing.T) {
	g := ScaledSlashdotLike(1, 40)
	if g.NumNodes() != SlashdotNodes/40 {
		t.Fatalf("scaled nodes = %d", g.NumNodes())
	}
	want := float64(SlashdotEdges) / float64(SlashdotNodes)
	if got := g.AvgDegree(); got < want*0.85 || got > want*1.05 {
		t.Fatalf("scaled avg degree %.2f, want ~%.2f", got, want)
	}
	e := ScaledEpinionsLike(1, 40)
	if e.NumNodes() != EpinionsNodes/40 {
		t.Fatalf("scaled epinions nodes = %d", e.NumNodes())
	}
	// Factor < 1 clamps.
	if ScaledSlashdotLike(1, 0).NumNodes() != SlashdotNodes {
		t.Fatal("factor 0 not clamped to 1")
	}
}

func TestOutDegreeStatsEmpty(t *testing.T) {
	g := NewBuilder("e", 0).Build()
	st := OutDegreeStats(g)
	if st.Mean != 0 || st.Max != 0 {
		t.Fatalf("empty stats: %+v", st)
	}
}

func TestLogBuckets(t *testing.T) {
	hist := make([]int, 10)
	hist[0] = 2 // degree 0
	hist[1] = 5
	hist[2], hist[3] = 3, 1
	hist[9] = 4
	got := LogBuckets(hist)
	want := []LogBucket{
		{0, 0, 2},
		{1, 1, 5},
		{2, 3, 4},
		{8, 9, 4},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("LogBuckets = %v, want %v", got, want)
	}
}

func TestTailFraction(t *testing.T) {
	st := DegreeStats{Histogram: []int{0, 6, 3, 1}}
	if got := TailFraction(st, 2); got != 0.4 {
		t.Fatalf("TailFraction = %g, want 0.4", got)
	}
	if got := TailFraction(DegreeStats{}, 1); got != 0 {
		t.Fatalf("empty TailFraction = %g", got)
	}
}

func BenchmarkGenerate10k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := Generate(GenConfig{Name: "b", Nodes: 10000, Edges: 115000, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNeighbors(b *testing.B) {
	g, _ := Generate(GenConfig{Name: "b", Nodes: 5000, Edges: 57500, Seed: 1})
	b.ReportAllocs()
	sum := 0
	for i := 0; i < b.N; i++ {
		sum += len(g.Neighbors(i % g.NumNodes()))
	}
	_ = sum
}
