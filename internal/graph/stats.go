package graph

import "math"

// DegreeStats summarizes a graph's out-degree distribution; it is the
// data behind the paper's figs. 4–5 (node degree histograms).
type DegreeStats struct {
	Min, Max int
	Mean     float64
	// Histogram[d] is the number of nodes with out-degree d.
	Histogram []int
}

// OutDegreeStats computes the out-degree histogram and summary.
func OutDegreeStats(g *Graph) DegreeStats {
	n := g.NumNodes()
	st := DegreeStats{Min: math.MaxInt}
	if n == 0 {
		st.Min = 0
		return st
	}
	maxDeg := 0
	for u := 0; u < n; u++ {
		if d := g.OutDegree(u); d > maxDeg {
			maxDeg = d
		}
	}
	st.Histogram = make([]int, maxDeg+1)
	sum := 0
	for u := 0; u < n; u++ {
		d := g.OutDegree(u)
		st.Histogram[d]++
		sum += d
		if d < st.Min {
			st.Min = d
		}
		if d > st.Max {
			st.Max = d
		}
	}
	st.Mean = float64(sum) / float64(n)
	return st
}

// InDegreeStats computes the in-degree histogram and summary.
func InDegreeStats(g *Graph) DegreeStats {
	n := g.NumNodes()
	st := DegreeStats{}
	if n == 0 {
		return st
	}
	deg := make([]int, n)
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(u) {
			deg[v]++
		}
	}
	maxDeg := 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	st.Histogram = make([]int, maxDeg+1)
	st.Min = math.MaxInt
	sum := 0
	for _, d := range deg {
		st.Histogram[d]++
		sum += d
		if d < st.Min {
			st.Min = d
		}
		if d > st.Max {
			st.Max = d
		}
	}
	st.Mean = float64(sum) / float64(n)
	return st
}

// LogBucket is one bucket of a logarithmically bucketed histogram:
// degrees in [Lo, Hi] with Count nodes.
type LogBucket struct {
	Lo, Hi int
	Count  int
}

// LogBuckets collapses a dense degree histogram into power-of-two
// buckets [1,1], [2,3], [4,7], ... — the natural rendering for
// heavy-tailed distributions (cf. the log-log histograms of figs. 4–5).
// Degree-0 nodes, if any, get their own leading bucket.
func LogBuckets(hist []int) []LogBucket {
	var out []LogBucket
	if len(hist) > 0 && hist[0] > 0 {
		out = append(out, LogBucket{Lo: 0, Hi: 0, Count: hist[0]})
	}
	for lo := 1; lo < len(hist); lo *= 2 {
		hi := lo*2 - 1
		if hi >= len(hist) {
			hi = len(hist) - 1
		}
		count := 0
		for d := lo; d <= hi; d++ {
			count += hist[d]
		}
		if count > 0 {
			out = append(out, LogBucket{Lo: lo, Hi: hi, Count: count})
		}
	}
	return out
}

// TailFraction returns the fraction of nodes with out-degree >= k.
func TailFraction(st DegreeStats, k int) float64 {
	total, tail := 0, 0
	for d, c := range st.Histogram {
		total += c
		if d >= k {
			tail += c
		}
	}
	if total == 0 {
		return 0
	}
	return float64(tail) / float64(total)
}
