package hashring

import "rnb/internal/xhash"

// This file provides two further Placement implementations from the
// consistent-hashing ecosystem, used as ablation baselines against
// ranged consistent hashing:
//
//   - RendezvousPlacement (highest-random-weight hashing): each item
//     ranks every server by a hash score; the replicas are the top-r
//     servers. Minimal disruption under server addition/removal and a
//     naturally distinct replica set, at O(servers) per lookup.
//   - JumpPlacement (Lamport & Veach's jump consistent hash): O(log n)
//     lookup, minimal movement under growth, but only supports
//     append/remove-at-end topology changes and needs re-salting to
//     derive distinct replicas.

// RendezvousPlacement places replicas with highest-random-weight
// hashing.
type RendezvousPlacement struct {
	servers  int
	replicas int
	seed     uint64
	// scratch for top-r selection without allocation
}

// NewRendezvousPlacement builds an HRW placement.
func NewRendezvousPlacement(servers, replicas int, seed uint64) *RendezvousPlacement {
	if replicas < 1 {
		panic("hashring: replication level must be >= 1")
	}
	if servers < 1 {
		panic("hashring: need at least one server")
	}
	return &RendezvousPlacement{servers: servers, replicas: replicas, seed: seed}
}

// Replicas implements Placement: the r highest-scoring servers for the
// item, in score order (entry 0 — the global winner — is the
// distinguished copy).
func (p *RendezvousPlacement) Replicas(item uint64, buf []int) []int {
	r := p.replicas
	if r > p.servers {
		r = p.servers
	}
	out := buf[:0]
	// Maintain the top-r (score, server) pairs with simple insertion —
	// r is small (<= ~5 in practice).
	scores := make([]uint64, 0, r)
	for s := 0; s < p.servers; s++ {
		score := xhash.Combine(xhash.Seeded(p.seed, item), uint64(s)*0x9e3779b97f4a7c15)
		score = xhash.Mix64(score)
		if len(out) < r {
			out = append(out, s)
			scores = append(scores, score)
		} else if score <= scores[len(scores)-1] {
			continue
		} else {
			out[len(out)-1] = s
			scores[len(scores)-1] = score
		}
		// Bubble the inserted entry up to keep descending score order.
		for i := len(out) - 1; i > 0 && scores[i] > scores[i-1]; i-- {
			scores[i], scores[i-1] = scores[i-1], scores[i]
			out[i], out[i-1] = out[i-1], out[i]
		}
	}
	return out
}

// NumServers implements Placement.
func (p *RendezvousPlacement) NumServers() int { return p.servers }

// NumReplicas implements Placement.
func (p *RendezvousPlacement) NumReplicas() int { return p.replicas }

// JumpPlacement places replicas with jump consistent hashing, deriving
// replica i from an i-salted key and resolving collisions by further
// salting.
type JumpPlacement struct {
	servers  int
	replicas int
	seed     uint64
}

// NewJumpPlacement builds a jump-hash placement.
func NewJumpPlacement(servers, replicas int, seed uint64) *JumpPlacement {
	if replicas < 1 {
		panic("hashring: replication level must be >= 1")
	}
	if servers < 1 {
		panic("hashring: need at least one server")
	}
	return &JumpPlacement{servers: servers, replicas: replicas, seed: seed}
}

// JumpHash is Lamport & Veach's jump consistent hash: maps key to a
// bucket in [0, buckets) with minimal movement as buckets grows.
func JumpHash(key uint64, buckets int) int {
	var b int64 = -1
	var j int64
	for j < int64(buckets) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(1<<31) / float64((key>>33)+1)))
	}
	return int(b)
}

// Replicas implements Placement.
func (p *JumpPlacement) Replicas(item uint64, buf []int) []int {
	r := p.replicas
	if r > p.servers {
		r = p.servers
	}
	out := buf[:0]
	for salt := uint64(0); len(out) < r; salt++ {
		s := JumpHash(xhash.Seeded(p.seed+salt, item), p.servers)
		dup := false
		for _, prev := range out {
			if prev == s {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, s)
		}
	}
	return out
}

// NumServers implements Placement.
func (p *JumpPlacement) NumServers() int { return p.servers }

// NumReplicas implements Placement.
func (p *JumpPlacement) NumReplicas() int { return p.replicas }

var (
	_ Placement = (*RendezvousPlacement)(nil)
	_ Placement = (*JumpPlacement)(nil)
)
