package hashring

import (
	"testing"
	"testing/quick"
)

func altPlacements(servers, replicas int) map[string]Placement {
	return map[string]Placement{
		"rendezvous": NewRendezvousPlacement(servers, replicas, 1),
		"jump":       NewJumpPlacement(servers, replicas, 1),
	}
}

// Distinctness/range/determinism invariants are covered by the shared
// contract battery in contract_test.go.

func TestAlternativesBalance(t *testing.T) {
	const servers, items, replicas = 16, 20000, 3
	for name, p := range altPlacements(servers, replicas) {
		t.Run(name, func(t *testing.T) {
			counts := make([]int, servers)
			var buf []int
			for item := uint64(0); item < items; item++ {
				buf = p.Replicas(item, buf)
				for _, s := range buf {
					counts[s]++
				}
			}
			mean := items * replicas / servers
			for s, c := range counts {
				if c < mean*3/4 || c > mean*4/3 {
					t.Fatalf("server %d holds %d, mean %d", s, c, mean)
				}
			}
		})
	}
}

func TestAlternativesDeterministicAndClamped(t *testing.T) {
	for name, p := range altPlacements(3, 9) {
		t.Run(name, func(t *testing.T) {
			a := append([]int(nil), p.Replicas(42, nil)...)
			b := p.Replicas(42, nil)
			if len(a) != 3 {
				t.Fatalf("clamp: %d replicas", len(a))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatal("not deterministic")
				}
			}
		})
	}
}

func TestAlternativesPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("rendezvous servers", func() { NewRendezvousPlacement(0, 1, 1) })
	mustPanic("rendezvous replicas", func() { NewRendezvousPlacement(1, 0, 1) })
	mustPanic("jump servers", func() { NewJumpPlacement(0, 1, 1) })
	mustPanic("jump replicas", func() { NewJumpPlacement(1, 0, 1) })
}

func TestJumpHashProperties(t *testing.T) {
	// In range, deterministic.
	for key := uint64(0); key < 1000; key++ {
		b := JumpHash(key, 10)
		if b < 0 || b >= 10 {
			t.Fatalf("bucket %d out of range", b)
		}
		if JumpHash(key, 10) != b {
			t.Fatal("not deterministic")
		}
	}
	// Single bucket.
	if JumpHash(12345, 1) != 0 {
		t.Fatal("single bucket must map to 0")
	}
}

func TestJumpHashMinimalMovement(t *testing.T) {
	// Growing from n to n+1 buckets moves ~1/(n+1) of keys, and only
	// ever onto the new bucket.
	const keys = 20000
	moved := 0
	for key := uint64(0); key < keys; key++ {
		before := JumpHash(key, 16)
		after := JumpHash(key, 17)
		if before != after {
			moved++
			if after != 16 {
				t.Fatalf("key %d moved to old bucket %d", key, after)
			}
		}
	}
	frac := float64(moved) / keys
	if frac < 0.03 || frac > 0.09 {
		t.Fatalf("moved fraction %.3f, want ~1/17", frac)
	}
}

func TestRendezvousMinimalMovement(t *testing.T) {
	// Removing one server: only placements that used it change (checked
	// as: the surviving replica prefix is preserved).
	before := NewRendezvousPlacement(16, 3, 1)
	after := NewRendezvousPlacement(15, 3, 1) // server 15 removed
	changedWithoutCause := 0
	for item := uint64(0); item < 3000; item++ {
		b := before.Replicas(item, nil)
		a := after.Replicas(item, nil)
		uses15 := false
		for _, s := range b {
			if s == 15 {
				uses15 = true
			}
		}
		if uses15 {
			continue
		}
		for i := range b {
			if a[i] != b[i] {
				changedWithoutCause++
				break
			}
		}
	}
	if changedWithoutCause != 0 {
		t.Fatalf("%d placements changed though server 15 was not involved", changedWithoutCause)
	}
}

func TestQuickJumpPlacementValid(t *testing.T) {
	p := NewJumpPlacement(11, 4, 5)
	f := func(item uint64) bool {
		set := p.Replicas(item, nil)
		if len(set) != 4 {
			return false
		}
		seen := map[int]bool{}
		for _, s := range set {
			if s < 0 || s >= 11 || seen[s] {
				return false
			}
			seen[s] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRendezvousReplicas(b *testing.B) {
	p := NewRendezvousPlacement(16, 4, 1)
	var buf []int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = p.Replicas(uint64(i), buf)
	}
}

func BenchmarkJumpReplicas(b *testing.B) {
	p := NewJumpPlacement(16, 4, 1)
	var buf []int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = p.Replicas(uint64(i), buf)
	}
}
