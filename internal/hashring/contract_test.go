package hashring_test

import (
	"testing"

	"rnb/internal/hashring"
	"rnb/internal/hashring/placementtest"
)

// TestPlacementContract runs every hashring-native placement through
// the shared contract battery (internal/hashring/placementtest). The
// adaptive wrapper (internal/hotspot) and the CBC construction
// (internal/cbc) run the same battery from their own packages.
func TestPlacementContract(t *testing.T) {
	const servers, replicas = 16, 4
	for name, p := range map[string]hashring.Placement{
		"rch":        hashring.NewRCHPlacement(hashring.NewWithServers(servers, 64), replicas),
		"multihash":  hashring.NewMultiHashPlacement(servers, replicas, 1),
		"rendezvous": hashring.NewRendezvousPlacement(servers, replicas, 1),
		"jump":       hashring.NewJumpPlacement(servers, replicas, 1),
	} {
		t.Run(name, func(t *testing.T) { placementtest.Run(t, p, 1000) })
	}
}

// TestPlacementContractClamped covers the replicas > servers corner:
// the contract's length floor is min(NumReplicas, NumServers).
func TestPlacementContractClamped(t *testing.T) {
	const servers, replicas = 3, 8
	for name, p := range map[string]hashring.Placement{
		"rch":        hashring.NewRCHPlacement(hashring.NewWithServers(servers, 32), replicas),
		"multihash":  hashring.NewMultiHashPlacement(servers, replicas, 1),
		"rendezvous": hashring.NewRendezvousPlacement(servers, replicas, 1),
		"jump":       hashring.NewJumpPlacement(servers, replicas, 1),
	} {
		t.Run(name, func(t *testing.T) { placementtest.Run(t, p, 300) })
	}
}
