package hashring

import "rnb/internal/xhash"

// Placement maps an item to the ordered set of distinct servers that
// hold its logical replicas. Index 0 of the returned slice is the
// item's *distinguished* copy (paper §III-C-1): the replica that is
// pinned in memory and used as the fallback on any miss.
type Placement interface {
	// Replicas appends the item's replica server indices to buf[:0] and
	// returns it. The slice has at least min(NumReplicas, NumServers)
	// distinct entries — implementations may return more for individual
	// items (e.g. an adaptive placement boosting a hot key beyond the
	// declared level), so consumers must size and iterate by the
	// returned slice's length, never by NumReplicas. Entry 0 is the
	// distinguished copy.
	Replicas(item uint64, buf []int) []int
	// NumServers reports the number of servers items map onto.
	NumServers() int
	// NumReplicas reports the declared (logical) replication level.
	NumReplicas() int
}

// RCHPlacement places replicas with Ranged Consistent Hashing: the
// distinguished copy is the item's consistent-hashing home and the
// remaining replicas are the next distinct servers along the continuum.
type RCHPlacement struct {
	ring     *Ring
	replicas int
}

// NewRCHPlacement builds a placement over a ring with the given logical
// replication level (>= 1).
func NewRCHPlacement(ring *Ring, replicas int) *RCHPlacement {
	if replicas < 1 {
		panic("hashring: replication level must be >= 1")
	}
	return &RCHPlacement{ring: ring, replicas: replicas}
}

// Replicas implements Placement.
func (p *RCHPlacement) Replicas(item uint64, buf []int) []int {
	return p.ring.LocateNID(item, p.replicas, buf)
}

// NumServers implements Placement.
func (p *RCHPlacement) NumServers() int { return p.ring.NumServers() }

// NumReplicas implements Placement.
func (p *RCHPlacement) NumReplicas() int { return p.replicas }

// MultiHashPlacement places each replica with an independent hash
// function (paper §III-B: "replicating the data items using multiple
// hash functions"). Replica i of an item lands on Seeded(i, item) mod N;
// collisions with earlier replicas are resolved by re-salting, so the
// replica set is always distinct as long as the level does not exceed
// the server count.
type MultiHashPlacement struct {
	servers  int
	replicas int
	seed     uint64
}

// NewMultiHashPlacement builds a multi-hash placement over `servers`
// servers with the given logical replication level. seed varies the
// whole hash family (useful for confidence runs).
func NewMultiHashPlacement(servers, replicas int, seed uint64) *MultiHashPlacement {
	if replicas < 1 {
		panic("hashring: replication level must be >= 1")
	}
	if servers < 1 {
		panic("hashring: need at least one server")
	}
	return &MultiHashPlacement{servers: servers, replicas: replicas, seed: seed}
}

// Replicas implements Placement.
func (p *MultiHashPlacement) Replicas(item uint64, buf []int) []int {
	n := p.replicas
	if n > p.servers {
		n = p.servers
	}
	out := buf[:0]
	for i := 0; len(out) < n; i++ {
		s := int(xhash.Seeded(p.seed+uint64(i), item) % uint64(p.servers))
		dup := false
		for _, prev := range out {
			if prev == s {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, s)
		}
	}
	return out
}

// NumServers implements Placement.
func (p *MultiHashPlacement) NumServers() int { return p.servers }

// NumReplicas implements Placement.
func (p *MultiHashPlacement) NumReplicas() int { return p.replicas }

var (
	_ Placement = (*RCHPlacement)(nil)
	_ Placement = (*MultiHashPlacement)(nil)
)
