package hashring

import (
	"testing"
	"testing/quick"
)

func placements(t *testing.T, servers, replicas int) map[string]Placement {
	t.Helper()
	return map[string]Placement{
		"rch":       NewRCHPlacement(NewWithServers(servers, 64), replicas),
		"multihash": NewMultiHashPlacement(servers, replicas, 1),
	}
}

func TestPlacementDistinctReplicas(t *testing.T) {
	for name, p := range placements(t, 16, 4) {
		t.Run(name, func(t *testing.T) {
			var buf []int
			for item := uint64(0); item < 1000; item++ {
				buf = p.Replicas(item, buf)
				if len(buf) != 4 {
					t.Fatalf("item %d: %d replicas, want 4", item, len(buf))
				}
				seen := map[int]bool{}
				for _, s := range buf {
					if s < 0 || s >= 16 {
						t.Fatalf("server index %d out of range", s)
					}
					if seen[s] {
						t.Fatalf("item %d: duplicate server in %v", item, buf)
					}
					seen[s] = true
				}
			}
		})
	}
}

func TestPlacementClampsToServerCount(t *testing.T) {
	for name, p := range map[string]Placement{
		"rch":       NewRCHPlacement(NewWithServers(3, 32), 8),
		"multihash": NewMultiHashPlacement(3, 8, 1),
	} {
		t.Run(name, func(t *testing.T) {
			set := p.Replicas(1234, nil)
			if len(set) != 3 {
				t.Fatalf("got %d replicas, want clamp to 3", len(set))
			}
		})
	}
}

func TestPlacementDeterministic(t *testing.T) {
	for name, p := range placements(t, 16, 3) {
		t.Run(name, func(t *testing.T) {
			a := append([]int(nil), p.Replicas(42, nil)...)
			b := p.Replicas(42, nil)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("placement not deterministic: %v vs %v", a, b)
				}
			}
		})
	}
}

func TestPlacementAccessors(t *testing.T) {
	for name, p := range placements(t, 16, 3) {
		if p.NumServers() != 16 {
			t.Errorf("%s: NumServers = %d", name, p.NumServers())
		}
		if p.NumReplicas() != 3 {
			t.Errorf("%s: NumReplicas = %d", name, p.NumReplicas())
		}
	}
}

func TestPlacementBalance(t *testing.T) {
	// Every replica slot should be spread roughly evenly.
	const servers, items, replicas = 16, 20000, 3
	for name, p := range placements(t, servers, replicas) {
		t.Run(name, func(t *testing.T) {
			counts := make([]int, servers)
			var buf []int
			for item := uint64(0); item < items; item++ {
				buf = p.Replicas(item, buf)
				for _, s := range buf {
					counts[s]++
				}
			}
			mean := items * replicas / servers
			for s, c := range counts {
				if c < mean/2 || c > mean*2 {
					t.Fatalf("server %d holds %d replicas, mean %d", s, c, mean)
				}
			}
		})
	}
}

func TestPlacementPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("rch replicas<1", func() { NewRCHPlacement(NewWithServers(2, 8), 0) })
	mustPanic("multihash replicas<1", func() { NewMultiHashPlacement(2, 0, 1) })
	mustPanic("multihash servers<1", func() { NewMultiHashPlacement(0, 1, 1) })
}

func TestMultiHashSeedVariesPlacement(t *testing.T) {
	a := NewMultiHashPlacement(16, 3, 1)
	b := NewMultiHashPlacement(16, 3, 2)
	diff := 0
	for item := uint64(0); item < 500; item++ {
		x := a.Replicas(item, nil)
		y := b.Replicas(item, nil)
		for i := range x {
			if x[i] != y[i] {
				diff++
				break
			}
		}
	}
	if diff < 400 {
		t.Fatalf("only %d/500 placements differ across seeds", diff)
	}
}

func TestQuickMultiHashDistinct(t *testing.T) {
	p := NewMultiHashPlacement(7, 7, 3)
	f := func(item uint64) bool {
		set := p.Replicas(item, nil)
		if len(set) != 7 {
			return false
		}
		seen := map[int]bool{}
		for _, s := range set {
			if seen[s] {
				return false
			}
			seen[s] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRCHReplicas(b *testing.B) {
	p := NewRCHPlacement(NewWithServers(16, 128), 4)
	var buf []int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = p.Replicas(uint64(i), buf)
	}
}

func BenchmarkMultiHashReplicas(b *testing.B) {
	p := NewMultiHashPlacement(16, 4, 1)
	var buf []int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = p.Replicas(uint64(i), buf)
	}
}
