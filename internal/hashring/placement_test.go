package hashring

import (
	"testing"
	"testing/quick"
)

func placements(t *testing.T, servers, replicas int) map[string]Placement {
	t.Helper()
	return map[string]Placement{
		"rch":       NewRCHPlacement(NewWithServers(servers, 64), replicas),
		"multihash": NewMultiHashPlacement(servers, replicas, 1),
	}
}

// Distinctness, index range, determinism, distinguished-copy
// stability, and the replicas>servers clamp are covered for every
// placement by the shared contract battery in contract_test.go
// (internal/hashring/placementtest).

func TestPlacementAccessors(t *testing.T) {
	for name, p := range placements(t, 16, 3) {
		if p.NumServers() != 16 {
			t.Errorf("%s: NumServers = %d", name, p.NumServers())
		}
		if p.NumReplicas() != 3 {
			t.Errorf("%s: NumReplicas = %d", name, p.NumReplicas())
		}
	}
}

func TestPlacementBalance(t *testing.T) {
	// Every replica slot should be spread roughly evenly.
	const servers, items, replicas = 16, 20000, 3
	for name, p := range placements(t, servers, replicas) {
		t.Run(name, func(t *testing.T) {
			counts := make([]int, servers)
			var buf []int
			for item := uint64(0); item < items; item++ {
				buf = p.Replicas(item, buf)
				for _, s := range buf {
					counts[s]++
				}
			}
			mean := items * replicas / servers
			for s, c := range counts {
				if c < mean/2 || c > mean*2 {
					t.Fatalf("server %d holds %d replicas, mean %d", s, c, mean)
				}
			}
		})
	}
}

func TestPlacementPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("rch replicas<1", func() { NewRCHPlacement(NewWithServers(2, 8), 0) })
	mustPanic("multihash replicas<1", func() { NewMultiHashPlacement(2, 0, 1) })
	mustPanic("multihash servers<1", func() { NewMultiHashPlacement(0, 1, 1) })
}

func TestMultiHashSeedVariesPlacement(t *testing.T) {
	a := NewMultiHashPlacement(16, 3, 1)
	b := NewMultiHashPlacement(16, 3, 2)
	diff := 0
	for item := uint64(0); item < 500; item++ {
		x := a.Replicas(item, nil)
		y := b.Replicas(item, nil)
		for i := range x {
			if x[i] != y[i] {
				diff++
				break
			}
		}
	}
	if diff < 400 {
		t.Fatalf("only %d/500 placements differ across seeds", diff)
	}
}

func TestQuickMultiHashDistinct(t *testing.T) {
	p := NewMultiHashPlacement(7, 7, 3)
	f := func(item uint64) bool {
		set := p.Replicas(item, nil)
		if len(set) != 7 {
			return false
		}
		seen := map[int]bool{}
		for _, s := range set {
			if seen[s] {
				return false
			}
			seen[s] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRCHReplicas(b *testing.B) {
	p := NewRCHPlacement(NewWithServers(16, 128), 4)
	var buf []int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = p.Replicas(uint64(i), buf)
	}
}

func BenchmarkMultiHashReplicas(b *testing.B) {
	p := NewMultiHashPlacement(16, 4, 1)
	var buf []int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = p.Replicas(uint64(i), buf)
	}
}
