// Package placementtest is the shared contract test for
// hashring.Placement implementations. Every placement in the repo —
// ranged consistent hashing, multi-hash, rendezvous, jump, the
// adaptive hot-key wrapper, and the CBC construction — must hold the
// same invariants; running them through one battery keeps the contract
// in one place instead of re-asserted ad hoc per implementation.
package placementtest

import (
	"testing"

	"rnb/internal/hashring"
)

// Run asserts the Placement contract over items [0, items):
//
//   - at least min(NumReplicas, NumServers) entries per item
//     (implementations may return more, e.g. boosted hot keys);
//   - every entry in [0, NumServers) and entries pairwise distinct;
//   - deterministic: consecutive calls return identical slices;
//   - entry 0 (the distinguished copy) stable under repeated calls —
//     re-verified at the end of the sweep, after every other item has
//     been placed in between.
func Run(t *testing.T, p hashring.Placement, items int) {
	t.Helper()
	if p.NumServers() < 1 {
		t.Fatalf("NumServers() = %d, want >= 1", p.NumServers())
	}
	if p.NumReplicas() < 1 {
		t.Fatalf("NumReplicas() = %d, want >= 1", p.NumReplicas())
	}
	minLen := p.NumReplicas()
	if p.NumServers() < minLen {
		minLen = p.NumServers()
	}
	distinguished := make([]int, items)
	var buf []int
	for item := 0; item < items; item++ {
		buf = p.Replicas(uint64(item), buf)
		if len(buf) < minLen {
			t.Fatalf("item %d: %d replicas, want >= min(replicas, servers) = %d",
				item, len(buf), minLen)
		}
		seen := make(map[int]bool, len(buf))
		for _, s := range buf {
			if s < 0 || s >= p.NumServers() {
				t.Fatalf("item %d: server index %d out of [0, %d)", item, s, p.NumServers())
			}
			if seen[s] {
				t.Fatalf("item %d: duplicate server in %v", item, buf)
			}
			seen[s] = true
		}
		again := p.Replicas(uint64(item), nil)
		if len(again) != len(buf) {
			t.Fatalf("item %d: non-deterministic length: %d then %d", item, len(buf), len(again))
		}
		for i := range buf {
			if buf[i] != again[i] {
				t.Fatalf("item %d: non-deterministic placement: %v then %v", item, buf, again)
			}
		}
		distinguished[item] = buf[0]
	}
	for item := 0; item < items; item++ {
		buf = p.Replicas(uint64(item), buf)
		if buf[0] != distinguished[item] {
			t.Fatalf("item %d: distinguished copy moved: %d then %d",
				item, distinguished[item], buf[0])
		}
	}
}
