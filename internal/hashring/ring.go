// Package hashring implements consistent hashing with virtual nodes and
// the paper's Ranged Consistent Hashing (RCH) extension (§IV).
//
// Plain consistent hashing maps a key to the first server point
// encountered clockwise on a hash continuum. RCH generalizes this for
// replica placement: starting from the key's position, travel along the
// continuum gathering servers until enough *distinct* ones have been
// collected. The walk preserves the properties that make consistent
// hashing attractive — adding or removing a server only remaps keys in
// its arc, and the replica sets of an item change minimally — while
// guaranteeing the replicas land on distinct servers.
package hashring

import (
	"fmt"
	"sort"

	"rnb/internal/xhash"
)

// DefaultVirtualNodes is the number of points each server contributes to
// the continuum when not overridden. More virtual nodes smooth the load
// distribution at the cost of ring size.
const DefaultVirtualNodes = 128

type point struct {
	hash   uint64
	server int // index into servers
}

// Ring is a consistent-hashing continuum over a set of named servers.
// It is not safe for concurrent mutation; concurrent reads are safe.
// Construction mutates (New, Clone-then-AddServer); once a ring is
// handed to readers it must never change again.
//
//rnb:frozen-after-publish
type Ring struct {
	vnodes  int
	points  []point
	servers []string
	index   map[string]int // name -> server index
	live    []bool         // false after RemoveServer (indices stay stable)
	nLive   int
}

// New returns an empty ring with the given number of virtual nodes per
// server. vnodes <= 0 selects DefaultVirtualNodes.
func New(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	return &Ring{vnodes: vnodes, index: make(map[string]int)}
}

// NewWithServers builds a ring containing n servers named "s0".."s{n-1}".
func NewWithServers(n, vnodes int) *Ring {
	r := New(vnodes)
	for i := 0; i < n; i++ {
		r.AddServer(fmt.Sprintf("s%d", i))
	}
	return r
}

// AddServer inserts a server into the continuum and returns its stable
// index. Adding a live name is an error; re-adding a previously
// removed name revives it at its old index (a server that left the
// tier and later rejoined keeps its slot, so index-keyed structures —
// connections, breakers, metrics — stay valid).
func (r *Ring) AddServer(name string) (int, error) {
	idx, ok := r.index[name]
	if ok && r.live[idx] {
		return 0, fmt.Errorf("hashring: server %q already present", name)
	}
	if !ok {
		idx = len(r.servers)
		r.servers = append(r.servers, name)
		r.live = append(r.live, false)
		r.index[name] = idx
	}
	r.live[idx] = true
	r.nLive++
	for v := 0; v < r.vnodes; v++ {
		h := xhash.StringUint64(name, uint64(v))
		r.points = append(r.points, point{hash: h, server: idx})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return idx, nil
}

// Clone returns an independent copy of the ring. The dynamic topology
// layer snapshots the continuum per membership epoch: each epoch's
// placement reads its own immutable clone, so in-flight plans built
// against an old epoch never race a mutation for the next one.
func (r *Ring) Clone() *Ring {
	cp := &Ring{
		vnodes:  r.vnodes,
		points:  append([]point(nil), r.points...),
		servers: append([]string(nil), r.servers...),
		index:   make(map[string]int, len(r.index)),
		live:    append([]bool(nil), r.live...),
		nLive:   r.nLive,
	}
	for name, idx := range r.index {
		cp.index[name] = idx
	}
	return cp
}

// RemoveServer removes a server's points from the continuum. The server
// keeps its index so that data structures keyed by index stay valid.
func (r *Ring) RemoveServer(name string) error {
	idx, ok := r.index[name]
	if !ok || !r.live[idx] {
		return fmt.Errorf("hashring: server %q not present", name)
	}
	r.live[idx] = false
	r.nLive--
	kept := r.points[:0]
	for _, p := range r.points {
		if p.server != idx {
			kept = append(kept, p)
		}
	}
	r.points = kept
	return nil
}

// NumServers returns the number of live servers.
func (r *Ring) NumServers() int { return r.nLive }

// ServerName returns the name for a server index.
func (r *Ring) ServerName(idx int) string { return r.servers[idx] }

// Servers returns the names of all live servers in index order.
func (r *Ring) Servers() []string {
	out := make([]string, 0, r.nLive)
	for i, name := range r.servers {
		if r.live[i] {
			out = append(out, name)
		}
	}
	return out
}

// successor returns the index into points of the first point with
// hash >= h, wrapping to 0.
func (r *Ring) successor(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// Locate maps a string key to its primary server index.
func (r *Ring) Locate(key string) int {
	return r.LocateHash(xhash.String(key))
}

// LocateID maps a numeric item id to its primary server index.
func (r *Ring) LocateID(id uint64) int {
	return r.LocateHash(xhash.Uint64(id))
}

// LocateHash maps a precomputed key hash to its primary server index.
// It panics if the ring is empty.
func (r *Ring) LocateHash(h uint64) int {
	if len(r.points) == 0 {
		panic("hashring: Locate on empty ring")
	}
	return r.points[r.successor(h)].server
}

// LocateN implements Ranged Consistent Hashing for a string key: it
// returns the first n distinct servers encountered walking the continuum
// clockwise from the key's position. If n exceeds the number of live
// servers, all live servers are returned (in walk order).
func (r *Ring) LocateN(key string, n int, buf []int) []int {
	return r.LocateNHash(xhash.String(key), n, buf)
}

// LocateNID is LocateN for a numeric item id.
func (r *Ring) LocateNID(id uint64, n int, buf []int) []int {
	return r.LocateNHash(xhash.Uint64(id), n, buf)
}

// LocateNHash is the RCH walk for a precomputed hash. buf, if non-nil,
// is reused for the result to avoid allocation.
func (r *Ring) LocateNHash(h uint64, n int, buf []int) []int {
	if len(r.points) == 0 {
		panic("hashring: LocateN on empty ring")
	}
	if n > r.nLive {
		n = r.nLive
	}
	out := buf[:0]
	start := r.successor(h)
	for i := 0; len(out) < n && i < len(r.points); i++ {
		s := r.points[(start+i)%len(r.points)].server
		dup := false
		for _, prev := range out {
			if prev == s {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, s)
		}
	}
	return out
}
