package hashring

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestAddRemoveServer(t *testing.T) {
	r := New(16)
	if _, err := r.AddServer("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddServer("a"); err == nil {
		t.Fatal("duplicate AddServer accepted")
	}
	if _, err := r.AddServer("b"); err != nil {
		t.Fatal(err)
	}
	if r.NumServers() != 2 {
		t.Fatalf("NumServers = %d, want 2", r.NumServers())
	}
	if err := r.RemoveServer("a"); err != nil {
		t.Fatal(err)
	}
	if err := r.RemoveServer("a"); err == nil {
		t.Fatal("double RemoveServer accepted")
	}
	if err := r.RemoveServer("zzz"); err == nil {
		t.Fatal("RemoveServer of unknown accepted")
	}
	if r.NumServers() != 1 {
		t.Fatalf("NumServers = %d, want 1", r.NumServers())
	}
	if got := r.Servers(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("Servers = %v, want [b]", got)
	}
}

func TestLocateEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Locate on empty ring did not panic")
		}
	}()
	New(8).Locate("k")
}

func TestLocateDeterministic(t *testing.T) {
	r := NewWithServers(8, 64)
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%d", i)
		if r.Locate(k) != r.Locate(k) {
			t.Fatal("Locate not deterministic")
		}
	}
}

func TestLocateOnlyRemapsRemovedArc(t *testing.T) {
	// Consistency property: removing one server must only move keys that
	// previously mapped to it.
	r := NewWithServers(10, 64)
	before := make(map[string]int)
	for i := 0; i < 2000; i++ {
		k := fmt.Sprintf("key-%d", i)
		before[k] = r.Locate(k)
	}
	victim := r.ServerName(3)
	if err := r.RemoveServer(victim); err != nil {
		t.Fatal(err)
	}
	for k, old := range before {
		now := r.Locate(k)
		if old != 3 && now != old {
			t.Fatalf("key %s moved from s%d to s%d though s3 was removed", k, old, now)
		}
		if old == 3 && now == 3 {
			t.Fatalf("key %s still maps to removed server", k)
		}
	}
}

func TestBalance(t *testing.T) {
	// With enough virtual nodes the load per server should be within a
	// reasonable band of the mean.
	const servers, keys = 16, 32000
	r := NewWithServers(servers, 128)
	counts := make([]int, servers)
	for i := 0; i < keys; i++ {
		counts[r.LocateID(uint64(i))]++
	}
	mean := keys / servers
	for s, c := range counts {
		if c < mean/2 || c > mean*2 {
			t.Fatalf("server %d holds %d keys, mean %d: imbalanced", s, c, mean)
		}
	}
}

func TestLocateNDistinct(t *testing.T) {
	r := NewWithServers(16, 64)
	var buf []int
	for i := 0; i < 500; i++ {
		buf = r.LocateNID(uint64(i), 5, buf)
		if len(buf) != 5 {
			t.Fatalf("LocateN returned %d servers, want 5", len(buf))
		}
		seen := map[int]bool{}
		for _, s := range buf {
			if seen[s] {
				t.Fatalf("duplicate server %d in replica set %v", s, buf)
			}
			seen[s] = true
		}
	}
}

func TestLocateNFirstIsLocate(t *testing.T) {
	r := NewWithServers(12, 64)
	for i := 0; i < 300; i++ {
		set := r.LocateNID(uint64(i), 4, nil)
		if set[0] != r.LocateID(uint64(i)) {
			t.Fatalf("LocateN[0]=%d != Locate=%d", set[0], r.LocateID(uint64(i)))
		}
	}
}

func TestLocateNClampsToLiveServers(t *testing.T) {
	r := NewWithServers(3, 32)
	set := r.LocateNID(7, 10, nil)
	if len(set) != 3 {
		t.Fatalf("LocateN returned %d servers, want all 3", len(set))
	}
}

func TestLocateNPrefixStable(t *testing.T) {
	// RCH property: the n-replica set is a prefix of the (n+1)-replica
	// set for the same key — growing the replication level never moves
	// existing replicas.
	r := NewWithServers(16, 64)
	for i := 0; i < 200; i++ {
		small := r.LocateNID(uint64(i), 3, nil)
		big := r.LocateNID(uint64(i), 5, nil)
		for j, s := range small {
			if big[j] != s {
				t.Fatalf("item %d: 3-set %v not a prefix of 5-set %v", i, small, big)
			}
		}
	}
}

func TestLocateNReplicaSetStableUnderUnrelatedRemoval(t *testing.T) {
	// Removing a server should keep the *surviving* replicas of each item
	// in the same relative order (minimal disruption).
	r := NewWithServers(10, 64)
	type entry struct{ set []int }
	items := 500
	before := make([]entry, items)
	for i := range before {
		before[i].set = append([]int(nil), r.LocateNID(uint64(i), 3, nil)...)
	}
	if err := r.RemoveServer(r.ServerName(5)); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		after := r.LocateNID(uint64(i), 3, nil)
		// Each surviving server from the old set must still appear, and in
		// the same relative order.
		j := 0
		for _, old := range before[i].set {
			if old == 5 {
				continue
			}
			for j < len(after) && after[j] != old {
				j++
			}
			if j == len(after) {
				t.Fatalf("item %d: surviving replica s%d vanished (%v -> %v)",
					i, old, before[i].set, after)
			}
		}
	}
}

func TestVnodeDefault(t *testing.T) {
	r := New(0)
	if r.vnodes != DefaultVirtualNodes {
		t.Fatalf("vnodes = %d, want default %d", r.vnodes, DefaultVirtualNodes)
	}
}

func TestQuickLocateNLenAndDistinct(t *testing.T) {
	r := NewWithServers(9, 32)
	f := func(id uint64, nRaw uint8) bool {
		n := int(nRaw%12) + 1
		set := r.LocateNID(id, n, nil)
		want := n
		if want > 9 {
			want = 9
		}
		if len(set) != want {
			return false
		}
		seen := map[int]bool{}
		for _, s := range set {
			if seen[s] {
				return false
			}
			seen[s] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddServerRevivesRemoved(t *testing.T) {
	r := New(16)
	idxA, _ := r.AddServer("a")
	r.AddServer("b")
	if err := r.RemoveServer("a"); err != nil {
		t.Fatal(err)
	}
	// Re-adding a removed name revives it at its old index.
	got, err := r.AddServer("a")
	if err != nil {
		t.Fatalf("re-add after remove: %v", err)
	}
	if got != idxA {
		t.Fatalf("revived index = %d, want %d", got, idxA)
	}
	if r.NumServers() != 2 {
		t.Fatalf("NumServers = %d, want 2", r.NumServers())
	}
	// Revived server is placed exactly as before: same vnode hashes.
	fresh := New(16)
	fresh.AddServer("a")
	fresh.AddServer("b")
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("k%d", i)
		if r.Locate(key) != fresh.Locate(key) {
			t.Fatalf("revived ring disagrees with fresh ring on %q", key)
		}
	}
	// Still an error while live.
	if _, err := r.AddServer("a"); err == nil {
		t.Fatal("duplicate AddServer of live server accepted")
	}
}

func TestClone(t *testing.T) {
	r := New(16)
	r.AddServer("a")
	r.AddServer("b")
	r.AddServer("c")
	cp := r.Clone()

	// Mutating the original leaves the clone untouched.
	if err := r.RemoveServer("b"); err != nil {
		t.Fatal(err)
	}
	r.AddServer("d")
	if cp.NumServers() != 3 {
		t.Fatalf("clone NumServers = %d, want 3", cp.NumServers())
	}
	fresh := New(16)
	fresh.AddServer("a")
	fresh.AddServer("b")
	fresh.AddServer("c")
	for i := 0; i < 200; i++ {
		id := uint64(i) * 2654435761
		got := cp.LocateNID(id, 2, nil)
		want := fresh.LocateNID(id, 2, nil)
		if len(got) != len(want) {
			t.Fatalf("clone replicas %v != fresh %v", got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("clone replicas %v != fresh %v", got, want)
			}
		}
	}
	// And mutating the clone leaves the original's view stable.
	cp.RemoveServer("a")
	if r.NumServers() != 3 { // a, c, d
		t.Fatalf("original NumServers = %d, want 3", r.NumServers())
	}
}

func BenchmarkLocate(b *testing.B) {
	r := NewWithServers(64, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.LocateID(uint64(i))
	}
}

func BenchmarkLocateN4(b *testing.B) {
	r := NewWithServers(64, 128)
	var buf []int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = r.LocateNID(uint64(i), 4, buf)
	}
}
