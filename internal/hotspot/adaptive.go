package hotspot

import (
	"sort"
	"sync"
	"sync/atomic"

	"rnb/internal/hashring"
	"rnb/internal/metrics"
	"rnb/internal/xhash"
)

// boostSalt separates the boosted-replica hash family from every other
// seeded family in the repo (placement seeds, sketch rows).
const boostSalt = 0xb0057ed5a1f00d17

// Config tunes the adaptive replication controller. The zero value is
// usable: WithDefaults picks settings sized for tens of thousands of
// requests per epoch.
type Config struct {
	// MaxBoost is the maximum number of extra replicas a hot key can be
	// granted on top of the baseline placement (default 2).
	MaxBoost int
	// PromoteFrac is the heat threshold: a key is promoted when its
	// decayed frequency estimate exceeds PromoteFrac of the decayed
	// total (default 0.002, i.e. 0.2% of recent traffic). Each doubling
	// beyond the threshold earns one more boost level up to MaxBoost.
	PromoteFrac float64
	// DemoteFrac is the hysteresis floor: a boosted key is a demotion
	// candidate only when its estimate falls below DemoteFrac of the
	// total (default PromoteFrac/4). Keys between the two thresholds
	// keep their boost, so placement does not flap.
	DemoteFrac float64
	// ColdEpochs is how many consecutive cold epochs a key must sit
	// below DemoteFrac before it is demoted (default 2).
	ColdEpochs int
	// EpochOps is the epoch length in observed keys: after this many
	// touches the controller harvests the tracker, updates the heat
	// table, and decays the counters (default 50000).
	EpochOps int
	// MaxHotKeys caps the heat table size; when more keys qualify, the
	// hottest win (default 128).
	MaxHotKeys int
	// Shards, SketchWidth, SketchDepth size the tracker (defaults 8,
	// 2048, 4). Per-key over-estimate is roughly total/(Shards*Width).
	Shards, SketchWidth, SketchDepth int
	// Seed varies the boosted-replica hash family and the sketch rows.
	Seed uint64
}

// WithDefaults fills in unset fields.
func (c Config) WithDefaults() Config {
	if c.MaxBoost <= 0 {
		c.MaxBoost = 2
	}
	if c.PromoteFrac <= 0 {
		c.PromoteFrac = 0.002
	}
	if c.DemoteFrac <= 0 {
		c.DemoteFrac = c.PromoteFrac / 4
	}
	if c.ColdEpochs <= 0 {
		c.ColdEpochs = 2
	}
	if c.EpochOps <= 0 {
		c.EpochOps = 50000
	}
	if c.MaxHotKeys <= 0 {
		c.MaxHotKeys = 128
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.SketchWidth <= 0 {
		c.SketchWidth = 2048
	}
	if c.SketchDepth <= 0 {
		c.SketchDepth = 4
	}
	return c
}

// heatTable is the immutable promoted-key view the read path consults.
// Controllers build a fresh table per epoch and swap it in atomically,
// so Replicas never takes a lock.
type heatTable struct {
	boost map[uint64]int // key -> extra replicas (1..MaxBoost)
	extra int            // sum of boosts (gauge bookkeeping)
}

// AdaptivePlacement wraps a baseline hashring.Placement with a
// heat-driven replication boost. Its replica sets are always a
// superset of the baseline's, with the baseline replicas as a prefix:
// entry 0 is still the distinguished copy, and any server a plan could
// have used before a promotion or demotion is still in the set after
// it — reads never miss because the heat table moved under them.
// Boosted replicas are drawn from the same seeded pseudo-random
// machinery as multi-hash placement, so locations are deterministic
// given the heat table.
//
// Promotions carry no data themselves: the planner starts assigning
// the key to a boosted replica, the first fetch there misses, the
// round-2 distinguished fetch recovers it, and the existing write-back
// path materializes the copy. Demotions simply shrink the advertised
// set; the surplus physical copies go cold and the server LRUs evict
// them.
type AdaptivePlacement struct {
	// base is the construction-time baseline. It never changes; a tier
	// that resizes binds the controller to each snapshot's own baseline
	// with Bind instead of mutating this one, so placements already
	// captured by in-flight requests stay frozen.
	base     hashring.Placement
	cfg      Config
	tracker  *Tracker
	counters *metrics.Hotspot

	heat       atomic.Pointer[heatTable]
	sinceEpoch atomic.Uint64

	// Controller state: serialized by mu; read path never touches it.
	mu   sync.Mutex
	cold map[uint64]int // boosted key -> consecutive cold epochs
}

// NewAdaptive wraps base. counters may be nil (a private set is used).
func NewAdaptive(base hashring.Placement, cfg Config, counters *metrics.Hotspot) *AdaptivePlacement {
	cfg = cfg.WithDefaults()
	if counters == nil {
		counters = &metrics.Hotspot{}
	}
	perShardTopK := cfg.MaxHotKeys/cfg.Shards + 8
	a := &AdaptivePlacement{
		base:     base,
		cfg:      cfg,
		tracker:  NewTracker(cfg.Shards, cfg.SketchWidth, cfg.SketchDepth, perShardTopK, cfg.Seed),
		counters: counters,
		cold:     make(map[uint64]int),
	}
	a.heat.Store(&heatTable{boost: map[uint64]int{}})
	return a
}

// Base returns the wrapped placement.
func (a *AdaptivePlacement) Base() hashring.Placement { return a.base }

// Bound is an immutable-base view of an AdaptivePlacement: the same
// heat table, tracker, and boost walk, but over a fixed baseline
// placement supplied at Bind time instead of the controller's own.
//
// The dynamic topology layer publishes one Bound per tier snapshot.
// Sharing one mutable AdaptivePlacement across tiers would let a
// membership change swap the base under a snapshot already loaded by
// an in-flight request — the new base can name server indices the old
// snapshot's slot table has never heard of. A Bound's replica sets are
// confined to its own base's server space for its whole life, so a
// tier snapshot really is immutable, while promotions and demotions
// (which only add or shed boosted replicas inside that space) still
// flow through from the shared heat table.
//
//rnb:frozen-after-publish
type Bound struct {
	a    *AdaptivePlacement
	base hashring.Placement
}

// Bind returns a view of the controller over the given fixed base.
func (a *AdaptivePlacement) Bind(base hashring.Placement) *Bound {
	return &Bound{a: a, base: base}
}

// Base returns the bound baseline placement.
func (b *Bound) Base() hashring.Placement { return b.base }

// NumServers implements hashring.Placement.
func (b *Bound) NumServers() int { return b.base.NumServers() }

// NumReplicas implements hashring.Placement.
func (b *Bound) NumReplicas() int { return b.base.NumReplicas() }

// Replicas implements hashring.Placement over the bound base; see
// AdaptivePlacement.Replicas.
func (b *Bound) Replicas(item uint64, buf []int) []int {
	return b.a.boostWalk(b.base, item, b.base.Replicas(item, buf), b.a.heat.Load().boost[item])
}

// MaxReplicas is AdaptivePlacement.MaxReplicas over the bound base.
func (b *Bound) MaxReplicas(item uint64, buf []int) []int {
	return b.a.boostWalk(b.base, item, b.base.Replicas(item, buf), b.a.cfg.MaxBoost)
}

var _ hashring.Placement = (*Bound)(nil)

// Counters returns the controller's metrics.
func (a *AdaptivePlacement) Counters() *metrics.Hotspot { return a.counters }

// NumServers implements hashring.Placement.
func (a *AdaptivePlacement) NumServers() int { return a.Base().NumServers() }

// NumReplicas implements hashring.Placement: the declared level is the
// baseline's (boost is a per-key, per-epoch addition on top).
func (a *AdaptivePlacement) NumReplicas() int { return a.Base().NumReplicas() }

// Boost returns the extra replicas currently granted to item (0 when
// the item is not promoted).
func (a *AdaptivePlacement) Boost(item uint64) int {
	return a.heat.Load().boost[item]
}

// HotKeyCount returns the number of currently promoted keys.
func (a *AdaptivePlacement) HotKeyCount() int {
	return len(a.heat.Load().boost)
}

// boostWalk extends a baseline replica set with up to extra boosted
// replicas drawn from base's server space: a deterministic
// pseudo-random walk, skipping servers already in the set, bailing out
// to a linear scan if the hash walk stalls (possible only when the
// target is close to the server count).
func (a *AdaptivePlacement) boostWalk(base hashring.Placement, item uint64, out []int, extra int) []int {
	if extra == 0 {
		return out
	}
	n := base.NumServers()
	want := len(out) + extra
	if want > n {
		want = n
	}
	for i := uint64(0); len(out) < want && i < uint64(8*n+16); i++ {
		s := int(xhash.Seeded(a.cfg.Seed+boostSalt+i, item) % uint64(n))
		if !containsServer(out, s) {
			out = append(out, s)
		}
	}
	for s := 0; len(out) < want && s < n; s++ {
		if !containsServer(out, s) {
			out = append(out, s)
		}
	}
	return out
}

// Replicas implements hashring.Placement. The returned slice is the
// baseline replica set (same order, distinguished copy first) followed
// by the item's boosted replicas, all distinct, capped at the server
// count.
func (a *AdaptivePlacement) Replicas(item uint64, buf []int) []int {
	return a.boostWalk(a.base, item, a.base.Replicas(item, buf), a.heat.Load().boost[item])
}

// MaxReplicas returns the item's replica set at maximum boost,
// regardless of its current heat. Because the boosted-replica walk is
// deterministic and level L's servers are a prefix of level L+1's,
// this is the union of every replica set the item can ever have —
// mutations that must invalidate stale copies (update, delete) use it
// so a demoted-then-repromoted key can never resurface old data from a
// lingering boosted copy.
func (a *AdaptivePlacement) MaxReplicas(item uint64, buf []int) []int {
	return a.boostWalk(a.base, item, a.base.Replicas(item, buf), a.cfg.MaxBoost)
}

func containsServer(set []int, s int) bool {
	for _, have := range set {
		if have == s {
			return true
		}
	}
	return false
}

// Observe ingests one request's keys into the heat tracker and, when
// the epoch budget is spent, rotates the heat table. Safe for
// concurrent use; at most one caller runs the controller, others never
// block on it.
func (a *AdaptivePlacement) Observe(keys []uint64) {
	for _, k := range keys {
		a.tracker.Touch(k)
	}
	a.counters.Observed.Add(uint64(len(keys)))
	if a.sinceEpoch.Add(uint64(len(keys))) >= uint64(a.cfg.EpochOps) {
		if a.mu.TryLock() {
			if a.sinceEpoch.Load() >= uint64(a.cfg.EpochOps) {
				a.sinceEpoch.Store(0)
				a.rotateLocked()
			}
			a.mu.Unlock()
		}
	}
}

// ObserveOne is Observe for a single key.
func (a *AdaptivePlacement) ObserveOne(key uint64) {
	a.tracker.Touch(key)
	a.counters.Observed.Add(1)
	if a.sinceEpoch.Add(1) >= uint64(a.cfg.EpochOps) {
		if a.mu.TryLock() {
			if a.sinceEpoch.Load() >= uint64(a.cfg.EpochOps) {
				a.sinceEpoch.Store(0)
				a.rotateLocked()
			}
			a.mu.Unlock()
		}
	}
}

// ForceEpoch rotates the heat table immediately regardless of the
// epoch budget (tests, simulations, operator tooling).
func (a *AdaptivePlacement) ForceEpoch() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.sinceEpoch.Store(0)
	a.rotateLocked()
}

// levelOf maps a frequency estimate to a boost level: one level at the
// promote threshold, one more per doubling, capped at max.
func levelOf(est, threshold float64, max int) int {
	if est < threshold || threshold <= 0 {
		return 0
	}
	level := 1
	for level < max && est >= threshold*float64(uint64(1)<<uint(level)) {
		level++
	}
	return level
}

// rotateLocked runs one controller epoch: harvest the tracker, promote
// keys above the threshold, demote keys that stayed below the
// hysteresis floor for ColdEpochs epochs, and publish the new table.
// Caller holds a.mu.
func (a *AdaptivePlacement) rotateLocked() {
	h := a.tracker.HarvestAndDecay(-1)
	a.counters.Epochs.Add(1)
	a.counters.SketchErrGap.Add(h.SketchGap)
	if h.Total == 0 {
		return
	}
	total := float64(h.Total)
	promoteTh := a.cfg.PromoteFrac * total
	demoteTh := a.cfg.DemoteFrac * total

	old := a.heat.Load().boost
	next := make(map[uint64]int, len(old))
	var promotions, demotions uint64

	harvested := make(map[uint64]uint64, len(h.Entries))
	for _, e := range h.Entries {
		harvested[e.Key] = e.Count
	}

	// Existing boosted keys: keep (hysteresis) unless cold for
	// ColdEpochs consecutive epochs.
	for key, lvl := range old {
		est, ok := harvested[key]
		if !ok {
			// Not a top-k survivor; fall back to the post-decay sketch
			// estimate. It is an upper bound on the key's decayed heat —
			// deliberately NOT doubled back to pre-decay scale, because
			// doubling also doubles the sketch's collision noise
			// (~total/width) and a genuinely cold key could then sit
			// above the demotion floor forever. The un-doubled bound
			// demotes such keys a little earlier; the ColdEpochs
			// hysteresis already guards against flapping.
			est = a.tracker.Estimate(key)
		}
		if float64(est) < demoteTh {
			a.cold[key]++
			if a.cold[key] >= a.cfg.ColdEpochs {
				delete(a.cold, key)
				demotions++
				continue
			}
			next[key] = lvl
			continue
		}
		delete(a.cold, key)
		// Re-grade upward only when the key clears the promote
		// threshold again; never drop levels while warm (hysteresis).
		if newLvl := levelOf(float64(est), promoteTh, a.cfg.MaxBoost); newLvl > lvl {
			promotions++
			lvl = newLvl
		}
		next[key] = lvl
	}

	// Fresh promotions from the harvest, hottest first.
	for _, e := range h.Entries {
		if _, have := next[e.Key]; have {
			continue
		}
		lvl := levelOf(float64(e.Count), promoteTh, a.cfg.MaxBoost)
		if lvl == 0 {
			continue
		}
		next[e.Key] = lvl
		promotions++
	}

	// Cap the table at MaxHotKeys, keeping the hottest.
	if len(next) > a.cfg.MaxHotKeys {
		type hotKey struct {
			key uint64
			est uint64
		}
		ranked := make([]hotKey, 0, len(next))
		for key := range next {
			est, ok := harvested[key]
			if !ok {
				// Same un-doubled post-decay bound as the demotion check
				// above: it under-ranks non-harvest keys relative to the
				// pre-decay harvest counts, which is the right bias when
				// the table is over the cap.
				est = a.tracker.Estimate(key)
			}
			ranked = append(ranked, hotKey{key, est})
		}
		sort.Slice(ranked, func(i, j int) bool {
			if ranked[i].est != ranked[j].est {
				return ranked[i].est > ranked[j].est
			}
			return ranked[i].key < ranked[j].key
		})
		for _, hk := range ranked[a.cfg.MaxHotKeys:] {
			if _, wasBoosted := old[hk.key]; wasBoosted {
				demotions++
			} else {
				promotions-- // promotion rescinded before publication
			}
			delete(next, hk.key)
			delete(a.cold, hk.key)
		}
	}

	extra := 0
	for _, lvl := range next {
		extra += lvl
	}
	a.heat.Store(&heatTable{boost: next, extra: extra})
	a.counters.Promotions.Add(promotions)
	a.counters.Demotions.Add(demotions)
	a.counters.HotKeys.Store(uint64(len(next)))
	a.counters.BoostReplicas.Store(uint64(extra))
}

var _ hashring.Placement = (*AdaptivePlacement)(nil)
