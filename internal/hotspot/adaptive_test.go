package hotspot

import (
	"math/rand"
	"sync"
	"testing"

	"rnb/internal/hashring"
	"rnb/internal/hashring/placementtest"
	"rnb/internal/metrics"
	"rnb/internal/workload"
)

// TestAdaptivePlacementContract runs the adaptive placement through
// the shared placement contract battery — cold, then again mid-boost:
// heat transitions must not move the distinguished copy or break
// distinctness.
func TestAdaptivePlacementContract(t *testing.T) {
	base := newBase(t, 16, 3)
	a := NewAdaptive(base, Config{
		MaxBoost:    4,
		PromoteFrac: 0.05,
		DemoteFrac:  0.0125,
		EpochOps:    1 << 62, // rotate manually
	}, nil)
	placementtest.Run(t, a, 1000)

	// Promote a band of keys and re-check the full contract on the
	// boosted placement.
	for i := 0; i < 3000; i++ {
		a.ObserveOne(uint64(i % 10))
		a.ObserveOne(uint64(100 + i%500))
	}
	a.ForceEpoch()
	if a.HotKeyCount() == 0 {
		t.Fatal("no keys promoted; contract re-check would be vacuous")
	}
	placementtest.Run(t, a, 1000)
}

func newBase(t *testing.T, servers, replicas int) hashring.Placement {
	t.Helper()
	ring := hashring.NewWithServers(servers, 32)
	return hashring.NewRCHPlacement(ring, replicas)
}

// checkSuperset asserts the adaptive set extends the baseline set as a
// prefix, with distinct in-range entries.
func checkSuperset(t *testing.T, a *AdaptivePlacement, base hashring.Placement, item uint64) {
	t.Helper()
	want := base.Replicas(item, nil)
	got := a.Replicas(item, nil)
	if len(got) < len(want) {
		t.Fatalf("item %d: adaptive set %v smaller than baseline %v", item, got, want)
	}
	for i, s := range want {
		if got[i] != s {
			t.Fatalf("item %d: baseline not a prefix: adaptive %v, baseline %v", item, got, want)
		}
	}
	seen := make(map[int]bool, len(got))
	for _, s := range got {
		if s < 0 || s >= base.NumServers() {
			t.Fatalf("item %d: server %d out of range", item, s)
		}
		if seen[s] {
			t.Fatalf("item %d: duplicate server %d in %v", item, s, got)
		}
		seen[s] = true
	}
	// The invalidation set must carry the current set as a prefix,
	// whatever the item's boost level: writes clear every server the
	// key could ever live on.
	max := a.MaxReplicas(item, nil)
	if len(max) < len(got) {
		t.Fatalf("item %d: MaxReplicas %v smaller than current set %v", item, max, got)
	}
	for i, s := range got {
		if max[i] != s {
			t.Fatalf("item %d: current set not a prefix of MaxReplicas: %v vs %v", item, got, max)
		}
	}
}

// TestAdaptiveSupersetInvariant is the property test behind the
// no-miss-mid-transition guarantee: across arbitrary skewed traffic
// and epoch rotations (promotions, re-grades, demotions, table caps),
// every item's adaptive replica set contains the baseline placement's
// replicas as a prefix — so any replica a plan could use before a heat
// transition is still valid after it.
func TestAdaptiveSupersetInvariant(t *testing.T) {
	base := newBase(t, 16, 2)
	rng := rand.New(rand.NewSource(42))
	a := NewAdaptive(base, Config{
		MaxBoost:    3,
		PromoteFrac: 0.01,
		ColdEpochs:  1,
		MaxHotKeys:  8, // small cap so cap-eviction paths run
		EpochOps:    1 << 62,
	}, nil)

	const universe = 4000
	zipf := workload.NewZipf(1.3, universe, 7)
	keys := make([]uint64, 64)
	for round := 0; round < 60; round++ {
		// Shift the hot set every few rounds so keys heat up AND cool
		// down (promote, re-grade, demote, cap-evict all exercised).
		shift := uint64((round / 10) * 500)
		for i := 0; i < 40; i++ {
			for j := range keys {
				keys[j] = (zipf.Next() + shift) % universe
			}
			a.Observe(keys)
		}
		a.ForceEpoch()
		for i := 0; i < 200; i++ {
			checkSuperset(t, a, base, uint64(rng.Intn(universe)))
		}
		// Promoted keys specifically (they have the extended sets).
		hot := a.heat.Load().boost
		for key := range hot {
			checkSuperset(t, a, base, key)
		}
	}
	snap := a.Counters().Snapshot()
	if snap["hotspot_promotions"] == 0 || snap["hotspot_demotions"] == 0 {
		t.Fatalf("property run did not exercise both transitions: %v", snap)
	}
}

func TestAdaptivePromotesAndDemotes(t *testing.T) {
	base := newBase(t, 16, 2)
	counters := &metrics.Hotspot{}
	a := NewAdaptive(base, Config{
		MaxBoost:    2,
		PromoteFrac: 0.05,
		DemoteFrac:  0.0125,
		ColdEpochs:  2,
		EpochOps:    1 << 62, // rotate manually
	}, counters)

	const hot = uint64(99)
	baseLen := len(base.Replicas(hot, nil))

	// 30% of the stream is the hot key: must be promoted.
	for i := 0; i < 3000; i++ {
		a.ObserveOne(hot)
		a.ObserveOne(uint64(1000 + i%2000))
		if i%3 == 0 {
			a.ObserveOne(uint64(5000 + i))
		}
	}
	a.ForceEpoch()
	if a.Boost(hot) == 0 {
		t.Fatalf("hot key not promoted (boost=0, hot keys=%d)", a.HotKeyCount())
	}
	got := a.Replicas(hot, nil)
	if len(got) != baseLen+a.Boost(hot) {
		t.Fatalf("boosted set %v does not carry %d extra replicas", got, a.Boost(hot))
	}
	if counters.Promotions.Load() == 0 || counters.HotKeys.Load() == 0 {
		t.Fatalf("promotion counters not updated: %v", counters.Snapshot())
	}

	// Cold traffic only: the decayed estimate takes a few epochs to
	// sink below DemoteFrac, and the ColdEpochs streak adds two more —
	// the key must NOT demote immediately, and must demote eventually.
	coldStream := func() {
		for i := 0; i < 2000; i++ {
			a.ObserveOne(uint64(10000 + i))
		}
	}
	coldEpochs := 0
	for a.Boost(hot) != 0 && coldEpochs < 16 {
		coldStream()
		a.ForceEpoch()
		coldEpochs++
	}
	if a.Boost(hot) != 0 {
		t.Fatalf("hot key still boosted after %d cold epochs", coldEpochs)
	}
	if coldEpochs < 3 {
		t.Fatalf("demoted after only %d cold epochs; decay smoothing plus ColdEpochs=2 should hold longer", coldEpochs)
	}
	if counters.Demotions.Load() == 0 {
		t.Fatalf("demotion not counted: %v", counters.Snapshot())
	}
	// Back to the baseline set exactly.
	if got := a.Replicas(hot, nil); len(got) != baseLen {
		t.Fatalf("demoted set %v, want baseline length %d", got, baseLen)
	}
}

func TestAdaptiveHysteresisHoldsWarmKeys(t *testing.T) {
	base := newBase(t, 8, 1)
	a := NewAdaptive(base, Config{
		MaxBoost:    2,
		PromoteFrac: 0.20,
		DemoteFrac:  0.02,
		ColdEpochs:  2,
		EpochOps:    1 << 62,
	}, nil)
	const key = uint64(5)
	// Epoch 1: 33% of traffic — promoted.
	for i := 0; i < 1000; i++ {
		a.ObserveOne(key)
		a.ObserveOne(uint64(100 + i))
		a.ObserveOne(uint64(5000 + i))
	}
	a.ForceEpoch()
	if a.Boost(key) == 0 {
		t.Fatal("not promoted")
	}
	// Epochs 2-4: ~6% of traffic — between demote (2%) and promote
	// (20%) thresholds. The boost must hold (no flapping).
	for epoch := 0; epoch < 3; epoch++ {
		for i := 0; i < 2000; i++ {
			if i%16 == 0 {
				a.ObserveOne(key)
			}
			a.ObserveOne(uint64(100000 + epoch*10000 + i))
		}
		a.ForceEpoch()
		if a.Boost(key) == 0 {
			t.Fatalf("warm key demoted in epoch %d despite hysteresis band", epoch+2)
		}
	}
}

func TestAdaptiveEpochTriggerAndConcurrency(t *testing.T) {
	base := newBase(t, 16, 2)
	a := NewAdaptive(base, Config{EpochOps: 500, PromoteFrac: 0.05}, nil)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			keys := make([]uint64, 16)
			for i := 0; i < 200; i++ {
				for j := range keys {
					// Skewed: half the touches land on 4 hot keys.
					if rng.Intn(2) == 0 {
						keys[j] = uint64(rng.Intn(4))
					} else {
						keys[j] = uint64(rng.Intn(10000))
					}
				}
				a.Observe(keys)
				_ = a.Replicas(keys[0], nil) // reads race the controller
			}
		}(w)
	}
	wg.Wait()
	if a.Counters().Epochs.Load() == 0 {
		t.Fatal("ops-driven epoch never fired")
	}
	for key := uint64(0); key < 4; key++ {
		checkSuperset(t, a, base, key)
	}
}

func TestLevelOf(t *testing.T) {
	for _, c := range []struct {
		est, th float64
		max     int
		want    int
	}{
		{0, 10, 3, 0},
		{9.9, 10, 3, 0},
		{10, 10, 3, 1},
		{19.9, 10, 3, 1},
		{20, 10, 3, 2},
		{40, 10, 3, 3},
		{1e9, 10, 3, 3},
		{5, 0, 3, 0}, // degenerate threshold
	} {
		if got := levelOf(c.est, c.th, c.max); got != c.want {
			t.Errorf("levelOf(%g, %g, %d) = %d, want %d", c.est, c.th, c.max, got, c.want)
		}
	}
}
