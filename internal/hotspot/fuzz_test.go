package hotspot

import (
	"encoding/binary"
	"testing"
)

// FuzzSketchOps drives two sketches plus an exact reference model
// through an arbitrary interleaving of insert, merge, and decay
// operations, checking the Count-Min contract after every step: an
// estimate never falls below the true (decayed) count. Decay rounds
// both sides down, merge adds both sides, so the invariant is
// preserved exactly.
func FuzzSketchOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{2, 0, 0, 0, 0, 0, 0, 1, 2, 1, 0, 0, 0, 0, 0, 0, 2})
	f.Add([]byte{1, 9, 9, 9, 9, 9, 9, 9, 2, 2, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		main := NewSketch(64, 3, 1)
		side := NewSketch(64, 3, 1)
		truthMain := map[uint64]uint64{}
		truthSide := map[uint64]uint64{}

		check := func(label string) {
			for key, want := range truthMain {
				if got := uint64(main.Estimate(key)); got < want {
					t.Fatalf("after %s: main estimate(%d) = %d below true %d", label, key, got, want)
				}
			}
			for key, want := range truthSide {
				if got := uint64(side.Estimate(key)); got < want {
					t.Fatalf("after %s: side estimate(%d) = %d below true %d", label, key, got, want)
				}
			}
		}

		for len(data) > 0 {
			op := data[0] % 4
			data = data[1:]
			switch op {
			case 0, 1: // insert into main (0) or side (1)
				if len(data) < 8 {
					return
				}
				key := binary.LittleEndian.Uint64(data[:8]) % 97 // force collisions
				data = data[8:]
				if op == 0 {
					main.Add(key, 1)
					truthMain[key]++
				} else {
					side.Add(key, 1)
					truthSide[key]++
				}
			case 2: // decay both
				main.Decay()
				side.Decay()
				for key, v := range truthMain {
					truthMain[key] = v / 2
				}
				for key, v := range truthSide {
					truthSide[key] = v / 2
				}
			case 3: // merge side into main, reset side
				if err := main.Merge(side); err != nil {
					t.Fatal(err)
				}
				for key, v := range truthSide {
					truthMain[key] += v
				}
				side.Reset()
				truthSide = map[uint64]uint64{}
			}
			check("op")
		}
	})
}
