// Package hotspot notices heat. The paper fixes the replication degree
// r globally (§III-B), but its own workloads are skewed social-feed
// requests: a small set of hot keys dominates load, so a uniform r
// either wastes RAM replicating cold keys or leaves the hot keys'
// servers as the bottleneck. This package tracks per-key request
// frequency with streaming summaries — a sharded Count-Min sketch for
// estimates over the whole key space plus a SpaceSaving top-k tracker
// for the candidates worth acting on — and drives an epoch-based
// controller that raises the replication degree of keys that stay hot
// and lowers it again (with hysteresis) when they cool.
//
// The placement-facing piece is AdaptivePlacement: a
// hashring.Placement wrapper whose replica sets are always a superset
// of the wrapped placement's, with the baseline replicas as a prefix.
// That invariant is what makes promotion and demotion safe online: the
// distinguished copy never moves, and any replica a plan could have
// used before a transition is still in the set after it, so reads
// never miss because of a heat-table change.
package hotspot

import (
	"fmt"

	"rnb/internal/xhash"
)

// Sketch is a Count-Min sketch over uint64 keys: depth hash rows of
// width counters each. Add and Estimate never under-count — an
// estimate is an upper bound on the true (decayed) frequency, with the
// usual CM overestimation from collisions. Not safe for concurrent
// use; Tracker shards and locks it.
type Sketch struct {
	width uint32
	depth int
	seed  uint64
	rows  [][]uint32
}

// NewSketch builds a width x depth sketch. Width is the error knob
// (over-estimate ~ total/width per row), depth the confidence knob.
func NewSketch(width, depth int, seed uint64) *Sketch {
	if width < 1 || depth < 1 {
		panic("hotspot: sketch width and depth must be >= 1")
	}
	s := &Sketch{width: uint32(width), depth: depth, seed: seed}
	s.rows = make([][]uint32, depth)
	for i := range s.rows {
		s.rows[i] = make([]uint32, width)
	}
	return s
}

// Width returns the per-row counter count.
func (s *Sketch) Width() int { return int(s.width) }

// Depth returns the number of hash rows.
func (s *Sketch) Depth() int { return s.depth }

func (s *Sketch) cell(row int, key uint64) *uint32 {
	h := xhash.Seeded(s.seed+uint64(row)*0x9e3779b97f4a7c15, key)
	return &s.rows[row][uint32(h)%s.width]
}

// Add records c occurrences of key and returns the new estimate.
func (s *Sketch) Add(key uint64, c uint32) uint32 {
	est := ^uint32(0)
	for row := 0; row < s.depth; row++ {
		cell := s.cell(row, key)
		if v := *cell; v > ^uint32(0)-c {
			*cell = ^uint32(0) // saturate instead of wrapping
		} else {
			*cell = v + c
		}
		if *cell < est {
			est = *cell
		}
	}
	return est
}

// Estimate returns the (never under-counting) frequency estimate.
func (s *Sketch) Estimate(key uint64) uint32 {
	est := ^uint32(0)
	for row := 0; row < s.depth; row++ {
		if v := *s.cell(row, key); v < est {
			est = v
		}
	}
	return est
}

// Decay halves every counter (rounding down): the per-epoch
// exponential-decay step that makes estimates track recent heat
// instead of all-time counts.
func (s *Sketch) Decay() {
	for _, row := range s.rows {
		for i := range row {
			row[i] >>= 1
		}
	}
}

// Reset zeroes the sketch.
func (s *Sketch) Reset() {
	for _, row := range s.rows {
		for i := range row {
			row[i] = 0
		}
	}
}

// Merge adds o's counters into s. The sketches must share width,
// depth, and seed, or the cell mapping would be meaningless.
func (s *Sketch) Merge(o *Sketch) error {
	if s.width != o.width || s.depth != o.depth || s.seed != o.seed {
		return fmt.Errorf("hotspot: cannot merge %dx%d/seed=%d sketch into %dx%d/seed=%d",
			o.width, o.depth, o.seed, s.width, s.depth, s.seed)
	}
	for r := range s.rows {
		dst, src := s.rows[r], o.rows[r]
		for i := range dst {
			if v := dst[i]; v > ^uint32(0)-src[i] {
				dst[i] = ^uint32(0)
			} else {
				dst[i] = v + src[i]
			}
		}
	}
	return nil
}
