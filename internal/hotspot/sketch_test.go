package hotspot

import (
	"math/rand"
	"testing"
)

func TestSketchNeverUndercounts(t *testing.T) {
	s := NewSketch(512, 4, 1)
	rng := rand.New(rand.NewSource(7))
	truth := make(map[uint64]uint32)
	for i := 0; i < 20000; i++ {
		key := uint64(rng.Intn(2000))
		truth[key]++
		s.Add(key, 1)
	}
	for key, want := range truth {
		if got := s.Estimate(key); got < want {
			t.Fatalf("estimate(%d) = %d below true count %d", key, got, want)
		}
	}
}

func TestSketchErrorBound(t *testing.T) {
	// With width 4096 and 20k inserts, the expected per-row collision
	// mass is ~5 — estimates should stay close to the truth.
	s := NewSketch(4096, 4, 2)
	rng := rand.New(rand.NewSource(8))
	truth := make(map[uint64]uint32)
	const inserts = 20000
	for i := 0; i < inserts; i++ {
		key := uint64(rng.Intn(5000))
		truth[key]++
		s.Add(key, 1)
	}
	var worst uint32
	for key, want := range truth {
		if gap := s.Estimate(key) - want; gap > worst {
			worst = gap
		}
	}
	if worst > inserts/100 {
		t.Fatalf("worst over-estimate %d exceeds 1%% of stream", worst)
	}
}

func TestSketchDecay(t *testing.T) {
	s := NewSketch(64, 2, 3)
	s.Add(42, 9)
	s.Decay()
	if got := s.Estimate(42); got != 4 {
		t.Fatalf("estimate after decay = %d, want 4", got)
	}
	s.Reset()
	if got := s.Estimate(42); got != 0 {
		t.Fatalf("estimate after reset = %d, want 0", got)
	}
}

func TestSketchMerge(t *testing.T) {
	a := NewSketch(128, 3, 4)
	b := NewSketch(128, 3, 4)
	a.Add(1, 5)
	b.Add(1, 7)
	b.Add(2, 3)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got := a.Estimate(1); got < 12 {
		t.Fatalf("merged estimate(1) = %d, want >= 12", got)
	}
	if got := a.Estimate(2); got < 3 {
		t.Fatalf("merged estimate(2) = %d, want >= 3", got)
	}
	other := NewSketch(64, 3, 4)
	if err := a.Merge(other); err == nil {
		t.Fatal("merge of mismatched sketches accepted")
	}
	reseeded := NewSketch(128, 3, 99)
	if err := a.Merge(reseeded); err == nil {
		t.Fatal("merge of differently seeded sketches accepted")
	}
}

func TestSketchSaturates(t *testing.T) {
	s := NewSketch(8, 1, 5)
	s.Add(7, ^uint32(0))
	s.Add(7, 10)
	if got := s.Estimate(7); got != ^uint32(0) {
		t.Fatalf("saturating add wrapped: %d", got)
	}
}
