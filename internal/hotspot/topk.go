package hotspot

import (
	"container/heap"
	"sort"
)

// Entry is one tracked key in a TopK summary. Count is an upper bound
// on the key's true (decayed) frequency; Count-Err is a lower bound
// (Err is the count the key may have inherited from the entry it
// evicted — the standard SpaceSaving guarantee).
type Entry struct {
	Key   uint64
	Count uint64
	Err   uint64
}

// TopK is a SpaceSaving heavy-hitter tracker with a fixed number of
// slots: every key with true frequency above total/capacity is
// guaranteed to be present. Not safe for concurrent use; Tracker
// shards and locks it.
type TopK struct {
	capacity int
	index    map[uint64]*ssEntry
	heap     ssHeap // min-heap on Count
}

type ssEntry struct {
	Entry
	pos int
}

// NewTopK builds a tracker with the given slot count (>= 1).
func NewTopK(capacity int) *TopK {
	if capacity < 1 {
		panic("hotspot: top-k capacity must be >= 1")
	}
	return &TopK{
		capacity: capacity,
		index:    make(map[uint64]*ssEntry, capacity),
	}
}

// Len returns the number of occupied slots.
func (t *TopK) Len() int { return len(t.heap) }

// Offer records c occurrences of key.
func (t *TopK) Offer(key uint64, c uint64) {
	if e, ok := t.index[key]; ok {
		e.Count += c
		heap.Fix(&t.heap, e.pos)
		return
	}
	if len(t.heap) < t.capacity {
		e := &ssEntry{Entry: Entry{Key: key, Count: c}}
		heap.Push(&t.heap, e)
		t.index[key] = e
		return
	}
	// Evict the current minimum: the newcomer inherits its count as
	// error bound (it may have occurred up to min times while untracked).
	min := t.heap[0]
	delete(t.index, min.Key)
	min.Entry = Entry{Key: key, Count: min.Count + c, Err: min.Count}
	t.index[key] = min
	heap.Fix(&t.heap, 0)
}

// Count returns the tracked upper-bound count for key, or 0 if key is
// not in the summary.
func (t *TopK) Count(key uint64) uint64 {
	if e, ok := t.index[key]; ok {
		return e.Count
	}
	return 0
}

// Top returns up to n entries ordered by descending Count (n < 0
// returns all).
func (t *TopK) Top(n int) []Entry {
	out := make([]Entry, 0, len(t.heap))
	for _, e := range t.heap {
		out = append(out, e.Entry)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if n >= 0 && n < len(out) {
		out = out[:n]
	}
	return out
}

// Decay halves every count and error bound, evicting entries that
// decay to zero. Pairs with Sketch.Decay as the per-epoch step.
func (t *TopK) Decay() {
	kept := t.heap[:0]
	for _, e := range t.heap {
		e.Count >>= 1
		e.Err >>= 1
		if e.Count > 0 {
			kept = append(kept, e)
		} else {
			delete(t.index, e.Key)
		}
	}
	t.heap = kept
	for pos, e := range t.heap {
		e.pos = pos
	}
	heap.Init(&t.heap)
}

// ssHeap is a min-heap of entries by Count with position tracking.
type ssHeap []*ssEntry

func (h ssHeap) Len() int           { return len(h) }
func (h ssHeap) Less(i, j int) bool { return h[i].Count < h[j].Count }
func (h ssHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].pos, h[j].pos = i, j
}
func (h *ssHeap) Push(x interface{}) {
	e := x.(*ssEntry)
	e.pos = len(*h)
	*h = append(*h, e)
}
func (h *ssHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
