package hotspot

import (
	"math/rand"
	"testing"
)

func TestTopKFindsHeavyHitters(t *testing.T) {
	// Zipf-ish stream: key k appears ~ C/k times. Any key with
	// frequency above total/capacity must be tracked.
	tk := NewTopK(32)
	truth := make(map[uint64]uint64)
	var total uint64
	for key := uint64(1); key <= 500; key++ {
		n := uint64(5000 / key)
		truth[key] = n
		total += n
	}
	// Interleave deterministically so counts build up in mixed order.
	rng := rand.New(rand.NewSource(11))
	type pair struct{ key, left uint64 }
	var stream []pair
	for k, n := range truth {
		stream = append(stream, pair{k, n})
	}
	for len(stream) > 0 {
		i := rng.Intn(len(stream))
		tk.Offer(stream[i].key, 1)
		stream[i].left--
		if stream[i].left == 0 {
			stream[i] = stream[len(stream)-1]
			stream = stream[:len(stream)-1]
		}
	}
	guarantee := total / 32
	for key, n := range truth {
		if n <= guarantee {
			continue
		}
		got := tk.Count(key)
		if got == 0 {
			t.Fatalf("heavy hitter %d (freq %d > %d) not tracked", key, n, guarantee)
		}
		if got < n {
			t.Fatalf("count(%d) = %d below true frequency %d (SpaceSaving upper bound violated)",
				key, got, n)
		}
	}
	// Err bounds: Count - Err <= truth for every tracked key.
	for _, e := range tk.Top(-1) {
		if want, ok := truth[e.Key]; ok && e.Count-e.Err > want {
			t.Fatalf("lower bound %d for key %d exceeds true frequency %d",
				e.Count-e.Err, e.Key, want)
		}
	}
}

func TestTopKOrderingAndCapacity(t *testing.T) {
	tk := NewTopK(4)
	for key := uint64(0); key < 8; key++ {
		for i := uint64(0); i <= key; i++ {
			tk.Offer(key, 1)
		}
	}
	if tk.Len() != 4 {
		t.Fatalf("len = %d, want 4", tk.Len())
	}
	top := tk.Top(2)
	if len(top) != 2 || top[0].Count < top[1].Count {
		t.Fatalf("top not descending: %+v", top)
	}
	if tk.Count(9999) != 0 {
		t.Fatal("untracked key has a count")
	}
}

func TestTopKDecayEvicts(t *testing.T) {
	tk := NewTopK(8)
	tk.Offer(1, 8)
	tk.Offer(2, 1)
	tk.Decay()
	if got := tk.Count(1); got != 4 {
		t.Fatalf("count(1) after decay = %d, want 4", got)
	}
	if tk.Count(2) != 0 || tk.Len() != 1 {
		t.Fatalf("count-1 entry survived decay: len=%d", tk.Len())
	}
	// Heap stays consistent after the rebuild.
	tk.Offer(3, 2)
	tk.Offer(4, 1)
	top := tk.Top(-1)
	if top[0].Key != 1 {
		t.Fatalf("top after decay/rebuild = %+v", top)
	}
}
