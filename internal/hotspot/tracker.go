package hotspot

import (
	"sort"
	"sync"

	"rnb/internal/xhash"
)

// Tracker ingests the key stream from the request path and answers
// "how hot is this key right now". It is sharded by key hash: each
// shard owns a Count-Min sketch (whole-space estimates) and a
// SpaceSaving top-k (the candidates worth promoting), guarded by a
// per-shard mutex so concurrent readers on different shards never
// contend. A Touch is two O(1)-ish updates under one short critical
// section.
//
// Heat is measured in decayed counts: HarvestAndDecay halves every
// counter, so a key's estimate is an exponentially-weighted sum of its
// per-epoch frequencies (weight 1/2 per epoch of age), and the
// tracker's Total decays the same way — estimates and totals stay
// comparable across epochs.
type Tracker struct {
	shards []trackerShard
	mask   uint64
}

type trackerShard struct {
	mu     sync.Mutex
	sketch *Sketch
	topk   *TopK
	total  uint64 // decayed touch count, same decay schedule as the sketch
	_      [24]byte
}

// NewTracker builds a tracker with `shards` shards (rounded up to a
// power of two), each holding a width x depth sketch and a top-k
// tracker with topk slots.
func NewTracker(shards, width, depth, topk int, seed uint64) *Tracker {
	if shards < 1 {
		shards = 1
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	t := &Tracker{shards: make([]trackerShard, n), mask: uint64(n - 1)}
	for i := range t.shards {
		t.shards[i].sketch = NewSketch(width, depth, seed+uint64(i)*0x517cc1b727220a95)
		t.shards[i].topk = NewTopK(topk)
	}
	return t
}

func (t *Tracker) shardOf(key uint64) *trackerShard {
	return &t.shards[xhash.Uint64(key)&t.mask]
}

// Touch records one occurrence of key.
func (t *Tracker) Touch(key uint64) {
	sh := t.shardOf(key)
	sh.mu.Lock()
	sh.sketch.Add(key, 1)
	sh.topk.Offer(key, 1)
	sh.total++
	sh.mu.Unlock()
}

// Estimate returns the decayed frequency estimate for key (an upper
// bound, from the key's shard sketch).
func (t *Tracker) Estimate(key uint64) uint64 {
	sh := t.shardOf(key)
	sh.mu.Lock()
	est := uint64(sh.sketch.Estimate(key))
	sh.mu.Unlock()
	return est
}

// Total returns the decayed total touch count across shards.
func (t *Tracker) Total() uint64 {
	var n uint64
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		n += sh.total
		sh.mu.Unlock()
	}
	return n
}

// Harvest is one epoch's worth of controller input: the hottest keys
// with their sketch cross-checks, and the decayed total they are
// measured against.
type Harvest struct {
	// Entries are the top keys across all shards, descending by Count.
	Entries []Entry
	// Total is the decayed total number of touches (pre-decay).
	Total uint64
	// SketchGap accumulates, over the harvested entries, the gap
	// between the sketch's upper-bound estimate and the SpaceSaving
	// lower bound — a live measure of summary error.
	SketchGap uint64
}

// HarvestAndDecay snapshots the top `per` keys of every shard plus the
// decayed totals, then applies the epoch decay (halving sketch, top-k
// and total). Keys are unique across shards by construction.
func (t *Tracker) HarvestAndDecay(per int) Harvest {
	var h Harvest
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for _, e := range sh.topk.Top(per) {
			est := uint64(sh.sketch.Estimate(e.Key))
			lower := e.Count - e.Err
			if est > lower {
				h.SketchGap += est - lower
			}
			h.Entries = append(h.Entries, e)
		}
		h.Total += sh.total
		sh.total >>= 1
		sh.sketch.Decay()
		sh.topk.Decay()
		sh.mu.Unlock()
	}
	sort.Slice(h.Entries, func(i, j int) bool {
		if h.Entries[i].Count != h.Entries[j].Count {
			return h.Entries[i].Count > h.Entries[j].Count
		}
		return h.Entries[i].Key < h.Entries[j].Key
	})
	return h
}
