package hotspot

import (
	"math/rand"
	"sync"
	"testing"
)

func TestTrackerEstimateAndTotal(t *testing.T) {
	tr := NewTracker(4, 1024, 4, 16, 1)
	for i := 0; i < 100; i++ {
		tr.Touch(7)
	}
	for i := 0; i < 10; i++ {
		tr.Touch(8)
	}
	if got := tr.Estimate(7); got < 100 {
		t.Fatalf("estimate(7) = %d, want >= 100", got)
	}
	if got := tr.Total(); got != 110 {
		t.Fatalf("total = %d, want 110", got)
	}
}

func TestTrackerHarvestAndDecay(t *testing.T) {
	tr := NewTracker(4, 1024, 4, 16, 2)
	for i := 0; i < 64; i++ {
		tr.Touch(1)
	}
	for i := 0; i < 16; i++ {
		tr.Touch(2)
	}
	h := tr.HarvestAndDecay(-1)
	if h.Total != 80 {
		t.Fatalf("harvest total = %d, want 80", h.Total)
	}
	if len(h.Entries) < 2 || h.Entries[0].Key != 1 || h.Entries[0].Count < 64 {
		t.Fatalf("harvest entries = %+v", h.Entries)
	}
	// Decay halved everything.
	if got := tr.Total(); got != 40 {
		t.Fatalf("total after decay = %d, want 40", got)
	}
	if got := tr.Estimate(1); got < 32 || got > 40 {
		t.Fatalf("estimate(1) after decay = %d, want ~32", got)
	}
}

func TestTrackerConcurrentTouch(t *testing.T) {
	tr := NewTracker(8, 512, 4, 16, 3)
	var wg sync.WaitGroup
	const workers, perWorker = 8, 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWorker; i++ {
				tr.Touch(uint64(rng.Intn(64)))
			}
		}(w)
	}
	wg.Wait()
	if got := tr.Total(); got != workers*perWorker {
		t.Fatalf("total = %d, want %d", got, workers*perWorker)
	}
}
