// Package leakcheck verifies that a test leaves no goroutines behind.
//
// Check snapshots the live goroutine set when called and registers a
// cleanup that diffs the set at test end against that baseline. The
// diff retries over a short settle window, so goroutines that are
// mid-exit when the test returns (a closed pool's drained workers, an
// HTTP server finishing its last response) do not flake the suite;
// only goroutines that persist past the window are reported, with
// their full stacks.
//
// The transports, the hotspot manager, and the chaos harness all own
// background goroutines whose lifecycles are tied to Close methods —
// this package is how the e2e suites prove those Closes actually join
// everything they started.
package leakcheck

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"
)

// settleWindow bounds how long the cleanup waits for stragglers to
// exit before declaring them leaked.
const settleWindow = 2 * time.Second

// defaultIgnores matches goroutines owned by the runtime or the test
// framework, which come and go outside the test's control.
var defaultIgnores = []string{
	"runtime.gcBgMarkWorker",
	"runtime.bgsweep",
	"runtime.bgscavenge",
	"runtime.forcegchelper",
	"runtime/trace.Start",
	"os/signal.signal_recv",
	"os/signal.loop",
	"testing.(*T).Run",
	"testing.(*B).run1",
	"testing.(*B).doBench",
}

// Check arms the leak checker for t. Call it first thing in a test;
// the registered cleanup runs after the test body (and any later
// cleanups, such as deferred Closes) complete. Extra ignore strings
// are matched as substrings against a goroutine's full stack text, for
// suites that intentionally leave a long-lived goroutine running.
func Check(t testing.TB, ignore ...string) {
	t.Helper()
	baseline := make(map[int]bool)
	for _, g := range stacks() {
		baseline[g.id] = true
	}
	t.Cleanup(func() {
		if t.Failed() {
			return // don't stack leak noise on top of a real failure
		}
		var leaked []goroutine
		deadline := time.Now().Add(settleWindow)
		for {
			leaked = leaked[:0]
			for _, g := range stacks() {
				if baseline[g.id] || ignored(g.stack, ignore) {
					continue
				}
				leaked = append(leaked, g)
			}
			if len(leaked) == 0 || time.Now().After(deadline) {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		if len(leaked) > 0 {
			var sb strings.Builder
			for _, g := range leaked {
				fmt.Fprintf(&sb, "goroutine %d:\n%s\n\n", g.id, g.stack)
			}
			t.Errorf("leakcheck: %d goroutine(s) leaked past the %v settle window:\n%s",
				len(leaked), settleWindow, sb.String())
		}
	})
}

type goroutine struct {
	id    int
	stack string
}

// stacks captures and parses the full goroutine dump.
func stacks() []goroutine {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var out []goroutine
	for _, rec := range strings.Split(string(buf), "\n\n") {
		id, ok := parseHeader(rec)
		if !ok {
			continue
		}
		out = append(out, goroutine{id: id, stack: strings.TrimSpace(rec)})
	}
	return out
}

// parseHeader extracts the goroutine id from a "goroutine N [state]:"
// dump header.
func parseHeader(rec string) (int, bool) {
	if !strings.HasPrefix(rec, "goroutine ") {
		return 0, false
	}
	rest := rec[len("goroutine "):]
	sp := strings.IndexByte(rest, ' ')
	if sp < 0 {
		return 0, false
	}
	id, err := strconv.Atoi(rest[:sp])
	if err != nil {
		return 0, false
	}
	return id, true
}

func ignored(stack string, extra []string) bool {
	for _, pat := range defaultIgnores {
		if strings.Contains(stack, pat) {
			return true
		}
	}
	for _, pat := range extra {
		if pat != "" && strings.Contains(stack, pat) {
			return true
		}
	}
	return false
}
