package leakcheck_test

import (
	"os"
	"os/exec"
	"strings"
	"testing"

	"rnb/internal/leakcheck"
)

// TestNoFalsePositive arms the checker around a goroutine that exits
// before the test ends (via the settle window, not synchronization).
func TestNoFalsePositive(t *testing.T) {
	leakcheck.Check(t)
	done := make(chan struct{})
	go func() {
		close(done)
	}()
	<-done
}

// TestIgnoreList proves an extra ignore substring excuses a goroutine
// that would otherwise be reported.
func TestIgnoreList(t *testing.T) {
	// Register the stop cleanup BEFORE arming the checker: cleanups run
	// LIFO, so the leak diff executes while the lingerer is still alive
	// and only the ignore entry can excuse it.
	stop := make(chan struct{})
	t.Cleanup(func() { close(stop) })
	leakcheck.Check(t, "leakcheck_test.intentionalLingerer")
	go intentionalLingerer(stop)
}

func intentionalLingerer(stop <-chan struct{}) {
	<-stop
}

// TestLeakDetected re-runs itself in a subprocess with the env gate
// set; the inner run leaks a goroutine on purpose and must fail with
// a leakcheck report.
func TestLeakDetected(t *testing.T) {
	if os.Getenv("LEAKCHECK_SELFTEST") == "1" {
		leakcheck.Check(t)
		hang := make(chan struct{})
		go func() {
			//rnblint:ignore blockleak the leak is the point — this goroutine must park forever so the subprocess run fails with a leakcheck report
			<-hang // leaks: nothing ever closes hang
		}()
		return
	}
	cmd := exec.Command(os.Args[0], "-test.run", "^TestLeakDetected$", "-test.v")
	cmd.Env = append(os.Environ(), "LEAKCHECK_SELFTEST=1")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("inner run passed; want a leakcheck failure\n%s", out)
	}
	if !strings.Contains(string(out), "leakcheck: 1 goroutine(s) leaked") {
		t.Fatalf("inner run failed without a leakcheck report:\n%s", out)
	}
}
