package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// AtomicOnly enforces the sync/atomic access invariant: once any code
// touches a struct field through the sync/atomic functions
// (atomic.AddUint64(&s.f, ...), atomic.LoadInt64(&s.f), ...), every
// access to that field must be atomic. A single plain read or write
// mixed in makes the whole scheme a data race — the exact bug class
// the obs histogram's bucket counters and the cluster's per-server
// load counters exist to avoid. Fields of the typed atomic.* wrappers
// are safe by construction and need no checking.
//
// The check runs in two whole-program passes: collect every field that
// appears as an atomic operand anywhere in the loaded packages, then
// flag plain selector reads/writes of those fields (for fields holding
// arrays or slices whose *elements* are atomic operands, plain indexed
// accesses are flagged).
var AtomicOnly = &Analyzer{
	Name: "atomiconly",
	Doc:  "a field accessed via sync/atomic anywhere must never be read or written plainly",
	Run:  runAtomicOnly,
}

// atomicFns are the sync/atomic package functions whose first operand
// is a *addr.
var atomicFns = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true, "LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true, "StoreUintptr": true, "StorePointer": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true, "SwapUintptr": true, "SwapPointer": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true, "CompareAndSwapUint32": true,
	"CompareAndSwapUint64": true, "CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
}

func runAtomicOnly(pass *Pass) {
	pkgs, report := pass.Pkgs, pass.Report
	// Pass 1: every field (or field-element) that is an atomic operand,
	// and the selector nodes that are legitimate atomic accesses.
	atomicFields := make(map[string]bool) // fieldKey -> scalar use
	atomicElems := make(map[string]bool)  // fieldKey -> indexed-element use
	sanctioned := make(map[*ast.SelectorExpr]bool)
	for _, pkg := range pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" ||
					!atomicFns[fn.Name()] || len(call.Args) == 0 {
					return true
				}
				addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
				if !ok {
					return true
				}
				switch target := ast.Unparen(addr.X).(type) {
				case *ast.SelectorExpr:
					if key, ok := fieldKey(info, target); ok {
						atomicFields[key] = true
						sanctioned[target] = true
					}
				case *ast.IndexExpr:
					if sel, ok := ast.Unparen(target.X).(*ast.SelectorExpr); ok {
						if key, ok := fieldKey(info, sel); ok {
							atomicElems[key] = true
							sanctioned[sel] = true
						}
					}
				}
				return true
			})
		}
	}
	if len(atomicFields) == 0 && len(atomicElems) == 0 {
		return
	}

	// Pass 2: plain accesses of those fields.
	for _, pkg := range pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SelectorExpr:
					if sanctioned[n] {
						return false
					}
					key, ok := fieldKey(info, n)
					if !ok {
						return true
					}
					if atomicFields[key] {
						report(pkg, n.Pos(), "field %s is accessed with sync/atomic elsewhere; plain access races with it", key)
						return false
					}
				case *ast.IndexExpr:
					sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr)
					if !ok || sanctioned[sel] {
						return true
					}
					key, ok := fieldKey(info, sel)
					if !ok {
						return true
					}
					if atomicElems[key] {
						report(pkg, n.Pos(), "elements of %s are accessed with sync/atomic elsewhere; plain indexed access races with it", key)
						return false
					}
				}
				return true
			})
		}
	}
}

// fieldKey names a struct field stably across packages:
// "pkgpath.Type.field" when the receiver is a named struct, falling
// back to the field's declaration position otherwise.
func fieldKey(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", false
	}
	field, ok := s.Obj().(*types.Var)
	if !ok || !field.IsField() {
		return "", false
	}
	if n := namedOf(s.Recv()); n != nil && n.Obj().Pkg() != nil {
		return fmt.Sprintf("%s.%s.%s", trimModule(n.Obj().Pkg().Path()), n.Obj().Name(), field.Name()), true
	}
	return fmt.Sprintf("%v.%s", field.Pos(), field.Name()), true
}

// trimModule shortens diagnostic keys: "rnb/internal/obs" -> "obs".
func trimModule(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
