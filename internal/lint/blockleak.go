package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// BlockLeak hunts goroutines that can block forever. Every `go`
// statement is a root; the analyzer walks the static call graph from
// each root and inspects every blocking operation the goroutine can
// reach — channel sends and receives, ranges over channels, blocking
// selects, Cond.Wait, WaitGroup.Wait, mutex locks. Each one needs an
// escape edge somewhere in the program: a receive (or buffer) for a
// send, a send or close for a receive, a close for a range, a
// Signal/Broadcast for a Wait, a Done for a WaitGroup, an Unlock for a
// Lock, or — for a select — any arm whose channel the analyzer cannot
// track (ctx.Done(), timers), which is exactly the shutdown arm the
// repo's goroutines are expected to carry. An operation with no escape
// edge is a goroutine leak: it parks at shutdown and holds its stack,
// its captures, and possibly a connection, forever.
//
// Identities are tracked like lockorder's: struct fields collapse per
// type, package vars are global, locals are per-declaration (closure
// capture preserves identity). Operations on untrackable expressions
// (call results, fields of packages outside the load) are skipped —
// the analyzer under-approximates rather than cry wolf.
var BlockLeak = &Analyzer{
	Name: "blockleak",
	Doc:  "every blocking operation reachable from a go statement needs an escape edge (close, counterpart op, notify, or an untrackable/shutdown select arm)",
	Run:  runBlockLeak,
}

// blockKind classifies a blocking operation.
type blockKind int

const (
	blockSend blockKind = iota
	blockRecv
	blockRange
	blockSelect
	blockCondWait
	blockWGWait
	blockLock
)

// blockSite is one blocking operation found directly in a function
// body (nested literals excluded — they run on their own schedule).
type blockSite struct {
	kind blockKind
	pos  token.Pos
	pkg  *Package
	// ids lists the operand identities; for selects, one per arm
	// ("" = untrackable arm, which counts as an escape).
	ids []string
	// kinds gives each select arm's direction (blockSend/blockRecv),
	// parallel to ids; nil for non-select sites.
	kinds []blockKind
}

// escapeIndex is the whole-program index of escape edges.
type escapeIndex struct {
	closes   map[string]bool
	sends    map[string]bool
	recvs    map[string]bool
	buffered map[string]bool
	notifies map[string]bool // Cond Signal/Broadcast
	dones    map[string]bool // WaitGroup Done
	unlocks  map[string]bool
	// leaked holds identities handed to other code — passed as a call
	// argument, stored into a structure, sent over a channel, or
	// returned. Once a channel leaves the scope the analyzer can see,
	// anyone may unblock it; leaked identities always count as escaped.
	leaked map[string]bool
}

func runBlockLeak(pass *Pass) {
	g := pass.CallGraph()
	ctx := newBlCtx(pass)
	idx := buildEscapeIndex(pass, ctx)

	// Per-function direct block sites.
	sites := make(map[FuncKey][]blockSite, len(g.Nodes))
	for _, key := range g.Keys() {
		n := g.Nodes[key]
		sites[key] = collectBlockSites(ctx, n.Pkg, n.Decl.Body)
	}

	// Goroutine roots: named functions launched with `go`, and `go
	// func(){...}` literal bodies (scanned in place).
	reported := make(map[token.Pos]bool)
	check := func(s blockSite) {
		if escaped(s, idx) || reported[s.pos] {
			return
		}
		reported[s.pos] = true
		pass.Report(s.pkg, s.pos, "%s", leakMessage(s, idx))
	}
	// Reachability closure over functions launched by any go statement.
	var visit func(key FuncKey, seen map[FuncKey]bool)
	visit = func(key FuncKey, seen map[FuncKey]bool) {
		if seen[key] {
			return
		}
		seen[key] = true
		n, ok := g.Nodes[key]
		if !ok {
			return
		}
		for _, s := range sites[key] {
			check(s)
		}
		for _, cs := range n.Calls {
			if cs.InLit || cs.Go {
				continue // separate schedule; go targets are their own roots
			}
			visit(cs.Callee, seen)
		}
	}
	seen := make(map[FuncKey]bool)
	for _, key := range g.Keys() {
		n := g.Nodes[key]
		for _, cs := range n.Calls {
			if cs.Go {
				visit(cs.Callee, seen)
			}
		}
		// Literal goroutine bodies, wherever they appear.
		ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
			gs, ok := nd.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			for _, s := range collectBlockSites(ctx, n.Pkg, lit.Body) {
				check(s)
			}
			// Calls made by the literal run on the goroutine too.
			litSeen := seen
			ast.Inspect(lit.Body, func(inner ast.Node) bool {
				if _, isLit := inner.(*ast.FuncLit); isLit && inner != ast.Node(lit) {
					return false
				}
				call, ok := inner.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := calleeFunc(n.Pkg.Info, call); callee != nil {
					visit(KeyOf(callee), litSeen)
				}
				return true
			})
			return true
		})
	}
}

// escaped reports whether the site has an escape edge in the index.
func escaped(s blockSite, idx *escapeIndex) bool {
	one := func(kind blockKind, id string) bool {
		if id == "" || idx.leaked[id] {
			return true // untrackable or handed to other code
		}
		switch kind {
		case blockSend:
			return idx.buffered[id] || idx.recvs[id]
		case blockRecv:
			return idx.sends[id] || idx.closes[id]
		case blockRange:
			return idx.closes[id]
		case blockCondWait:
			return idx.notifies[id]
		case blockWGWait:
			return idx.dones[id]
		case blockLock:
			return idx.unlocks[id]
		}
		return true
	}
	if s.kind == blockSelect {
		// Escaped if any arm can proceed: untrackable arms (shutdown,
		// timers) always can; trackable arms need their counterpart.
		for i, arm := range s.ids {
			if one(s.kinds[i], arm) {
				return true
			}
		}
		return false
	}
	for _, id := range s.ids {
		if !one(s.kind, id) {
			return false
		}
	}
	return true
}

// leakMessage renders the diagnostic for an unescaped site.
func leakMessage(s blockSite, idx *escapeIndex) string {
	id := ""
	if len(s.ids) > 0 {
		id = shortLockID(s.ids[0])
	}
	switch s.kind {
	case blockSend:
		return "goroutine can block forever: send on " + id + " has no receiver or buffer anywhere in the program"
	case blockRecv:
		return "goroutine can block forever: receive on " + id + " has no send or close anywhere in the program"
	case blockRange:
		return "goroutine can block forever: range over " + id + " but the channel is never closed — the loop cannot end"
	case blockSelect:
		return "goroutine can block forever: no select arm can ever proceed and there is no shutdown arm"
	case blockCondWait:
		return "goroutine can block forever: Cond.Wait on " + id + " but no Signal or Broadcast exists anywhere in the program"
	case blockWGWait:
		return "goroutine can block forever: WaitGroup.Wait on " + id + " but Done is never called"
	case blockLock:
		return "goroutine can block forever: Lock of " + id + " but no Unlock exists anywhere in the program"
	}
	return "goroutine can block forever"
}

// blCtx carries the whole-program context identity resolution needs:
// which packages were loaded from source (fields and globals of
// foreign packages are untrackable — nobody in the load closes a
// time.Ticker's C), and which variables are function parameters (the
// caller wired those channels up; their escape edges live under the
// caller's identities, so the callee's view is untrackable).
type blCtx struct {
	loaded map[string]bool
	params map[*types.Var]bool
}

func newBlCtx(pass *Pass) *blCtx {
	ctx := &blCtx{loaded: make(map[string]bool), params: make(map[*types.Var]bool)}
	addFields := func(pkg *Package, fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
					ctx.params[v] = true
				}
			}
		}
	}
	for _, pkg := range pass.Pkgs {
		if pkg.Types != nil {
			ctx.loaded[pkg.Types.Path()] = true
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					addFields(pkg, n.Recv)
					addFields(pkg, n.Type.Params)
				case *ast.FuncLit:
					addFields(pkg, n.Type.Params)
				}
				return true
			})
		}
	}
	return ctx
}

// ident resolves an operand to a trackable identity; "" means
// untrackable (skip the check — under-approximate, never cry wolf).
func (ctx *blCtx) ident(pkg *Package, e ast.Expr) string {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if n := namedOf(sel.Recv()); n != nil && n.Obj().Pkg() != nil && ctx.loaded[n.Obj().Pkg().Path()] {
				return n.Obj().Pkg().Path() + "." + n.Obj().Name() + "." + e.Sel.Name
			}
			return ""
		}
		if v, ok := pkg.Info.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil && pkgLevel(v) && ctx.loaded[v.Pkg().Path()] {
			return v.Pkg().Path() + "." + v.Name()
		}
	case *ast.Ident:
		v, ok := pkg.Info.Uses[e].(*types.Var)
		if !ok {
			v, ok = pkg.Info.Defs[e].(*types.Var)
		}
		if !ok {
			return ""
		}
		if ctx.params[v] {
			return ""
		}
		if pkgLevel(v) {
			if v.Pkg() != nil && ctx.loaded[v.Pkg().Path()] {
				return v.Pkg().Path() + "." + v.Name()
			}
			return ""
		}
		return fmt.Sprintf("local@%d.%s", v.Pos(), v.Name())
	}
	return ""
}

// buildEscapeIndex scans every loaded file — all declarations, all
// literals — for the operations that unblock someone else.
func buildEscapeIndex(pass *Pass, ctx *blCtx) *escapeIndex {
	idx := &escapeIndex{
		closes: make(map[string]bool), sends: make(map[string]bool),
		recvs: make(map[string]bool), buffered: make(map[string]bool),
		notifies: make(map[string]bool), dones: make(map[string]bool),
		unlocks: make(map[string]bool), leaked: make(map[string]bool),
	}
	add := func(m map[string]bool, id string) {
		if id != "" {
			m[id] = true
		}
	}
	for _, pkg := range pass.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SendStmt:
					add(idx.sends, ctx.ident(pkg, n.Chan))
					// Sending a channel over a channel hands it away.
					if isChanExpr(pkg, n.Value) {
						add(idx.leaked, ctx.ident(pkg, n.Value))
					}
				case *ast.UnaryExpr:
					if n.Op == token.ARROW {
						add(idx.recvs, ctx.ident(pkg, n.X))
					}
				case *ast.RangeStmt:
					if isChanExpr(pkg, n.X) {
						add(idx.recvs, ctx.ident(pkg, n.X))
					}
				case *ast.ReturnStmt:
					for _, r := range n.Results {
						if isChanExpr(pkg, r) {
							add(idx.leaked, ctx.ident(pkg, r))
						}
					}
				case *ast.AssignStmt:
					for i, rhs := range n.Rhs {
						if i < len(n.Lhs) && isBufferedMake(pkg, rhs) {
							add(idx.buffered, ctx.ident(pkg, n.Lhs[i]))
						}
						// Channel aliasing splits one channel across two
						// identities; give up on both sides rather than
						// miss the escape edges recorded under the other.
						if isChanExpr(pkg, rhs) {
							if id := ctx.ident(pkg, rhs); id != "" {
								add(idx.leaked, id)
								if i < len(n.Lhs) {
									add(idx.leaked, ctx.ident(pkg, n.Lhs[i]))
								}
							}
						}
					}
				case *ast.ValueSpec:
					for i, v := range n.Values {
						if i < len(n.Names) && isBufferedMake(pkg, v) {
							add(idx.buffered, ctx.ident(pkg, n.Names[i]))
						}
					}
				case *ast.CompositeLit:
					// A channel stored into any literal is handed away.
					for _, el := range n.Elts {
						v := el
						if kv, ok := el.(*ast.KeyValueExpr); ok {
							v = kv.Value
						}
						if isChanExpr(pkg, v) {
							add(idx.leaked, ctx.ident(pkg, v))
						}
					}
					// make(chan T, n) in a struct literal field.
					named := namedOf(typeOf(pkg, n))
					if named == nil || named.Obj().Pkg() == nil {
						return true
					}
					prefix := named.Obj().Pkg().Path() + "." + named.Obj().Name() + "."
					for _, el := range n.Elts {
						kv, ok := el.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						key, ok := kv.Key.(*ast.Ident)
						if !ok {
							continue
						}
						if isBufferedMake(pkg, kv.Value) {
							idx.buffered[prefix+key.Name] = true
						}
					}
				case *ast.CallExpr:
					if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" {
						if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin && len(n.Args) == 1 {
							add(idx.closes, ctx.ident(pkg, n.Args[0]))
						}
						return true
					}
					// A channel (or &sync primitive) passed as an argument
					// is in someone else's hands — signal.Notify sends on
					// it, a helper may close it. Leaked.
					for _, arg := range n.Args {
						if id := ctx.ident(pkg, arg); id != "" {
							add(idx.leaked, id)
						}
					}
					recv, name, ok := callReceiver(pkg.Info, n)
					if !ok {
						return true
					}
					recvExpr := mutexRecv(n)
					switch {
					case isNamedType(recv, "sync", "Cond") && (name == "Signal" || name == "Broadcast"):
						add(idx.notifies, ctx.ident(pkg, recvExpr))
					case isNamedType(recv, "sync", "WaitGroup") && name == "Done":
						add(idx.dones, ctx.ident(pkg, recvExpr))
					case (isNamedType(recv, "sync", "Mutex") || isNamedType(recv, "sync", "RWMutex")) && (name == "Unlock" || name == "RUnlock"):
						add(idx.unlocks, ctx.ident(pkg, recvExpr))
					}
				}
				return true
			})
		}
	}
	return idx
}

func typeOf(pkg *Package, e ast.Expr) types.Type {
	if tv, ok := pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func isChanExpr(pkg *Package, e ast.Expr) bool {
	t := typeOf(pkg, e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// isBufferedMake reports whether e is make(chan T, n): two-argument
// channel makes are treated as buffered regardless of n's value (a
// make(chan T, 0) spelled that way is vanishingly rare here).
func isBufferedMake(pkg *Package, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	return isChanExpr(pkg, call.Args[0]) || isChanType(pkg, call.Args[0])
}

func isChanType(pkg *Package, e ast.Expr) bool {
	if tv, ok := pkg.Info.Types[e]; ok && tv.IsType() {
		_, isChan := tv.Type.Underlying().(*types.Chan)
		return isChan
	}
	return false
}

// collectBlockSites finds the blocking operations written directly in
// body (literals excluded).
func collectBlockSites(ctx *blCtx, pkg *Package, body *ast.BlockStmt) []blockSite {
	var lits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if l, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, l)
		}
		return true
	})
	inLit := func(n ast.Node) bool {
		for _, l := range lits {
			if l.Body.Pos() <= n.Pos() && n.End() <= l.Body.End() {
				return true
			}
		}
		return false
	}
	// Comm statements of selects are part of the select site, not
	// standalone ops.
	inComm := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
				ast.Inspect(cc.Comm, func(m ast.Node) bool {
					inComm[m] = true
					return true
				})
			}
		}
		return true
	})

	var sites []blockSite
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil || inLit(n) {
			return true
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			if !inComm[n] {
				sites = append(sites, blockSite{kind: blockSend, pos: n.Pos(), pkg: pkg, ids: []string{ctx.ident(pkg, n.Chan)}})
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !inComm[n] {
				sites = append(sites, blockSite{kind: blockRecv, pos: n.Pos(), pkg: pkg, ids: []string{ctx.ident(pkg, n.X)}})
			}
		case *ast.RangeStmt:
			if isChanExpr(pkg, n.X) {
				sites = append(sites, blockSite{kind: blockRange, pos: n.Pos(), pkg: pkg, ids: []string{ctx.ident(pkg, n.X)}})
			}
		case *ast.SelectStmt:
			var ids []string
			var kinds []blockKind
			hasDefault := false
			arm := func(kind blockKind, id string) {
				ids = append(ids, id)
				kinds = append(kinds, kind)
			}
			for _, c := range n.Body.List {
				cc, ok := c.(*ast.CommClause)
				if !ok {
					continue
				}
				if cc.Comm == nil {
					hasDefault = true
					continue
				}
				switch comm := cc.Comm.(type) {
				case *ast.SendStmt:
					arm(blockSend, ctx.ident(pkg, comm.Chan))
				case *ast.ExprStmt:
					if u, ok := ast.Unparen(comm.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
						arm(blockRecv, ctx.ident(pkg, u.X))
					} else {
						arm(blockRecv, "")
					}
				case *ast.AssignStmt:
					got := false
					for _, rhs := range comm.Rhs {
						if u, ok := ast.Unparen(rhs).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
							arm(blockRecv, ctx.ident(pkg, u.X))
							got = true
						}
					}
					if !got {
						arm(blockRecv, "")
					}
				default:
					arm(blockRecv, "")
				}
			}
			if !hasDefault {
				sites = append(sites, blockSite{kind: blockSelect, pos: n.Pos(), pkg: pkg, ids: ids, kinds: kinds})
			}
		case *ast.CallExpr:
			recv, name, ok := callReceiver(pkg.Info, n)
			if !ok {
				return true
			}
			recvExpr := mutexRecv(n)
			switch {
			case isNamedType(recv, "sync", "Cond") && name == "Wait":
				sites = append(sites, blockSite{kind: blockCondWait, pos: n.Pos(), pkg: pkg, ids: []string{ctx.ident(pkg, recvExpr)}})
			case isNamedType(recv, "sync", "WaitGroup") && name == "Wait":
				sites = append(sites, blockSite{kind: blockWGWait, pos: n.Pos(), pkg: pkg, ids: []string{ctx.ident(pkg, recvExpr)}})
			case (isNamedType(recv, "sync", "Mutex") || isNamedType(recv, "sync", "RWMutex")) && (name == "Lock" || name == "RLock"):
				sites = append(sites, blockSite{kind: blockLock, pos: n.Pos(), pkg: pkg, ids: []string{ctx.ident(pkg, recvExpr)}})
			}
		}
		return true
	})
	sort.Slice(sites, func(i, j int) bool { return sites[i].pos < sites[j].pos })
	return sites
}
