package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// This file is the interprocedural half of the framework: a static
// call graph over every loaded compilation unit, with its strongly
// connected components in bottom-up (callees-first) order. Analyzers
// combine it with per-function summaries (facts.go) to see through
// call boundaries — the way go/analysis facts flow between packages —
// while staying stdlib-only.

// FuncKey canonically names a function or method across compilation
// units. It is types.Func.FullName() ("rnb/internal/memcache.dial",
// "(*rnb/internal/memcache.Pool).route"): the same function reached
// through source type-checking in its own unit and through compiler
// export data in a dependent unit produces the same key, which is what
// lets facts computed in one unit be consumed in another.
type FuncKey string

// KeyOf returns the canonical key for a function object.
func KeyOf(f *types.Func) FuncKey { return FuncKey(f.FullName()) }

// CallSite is one statically resolved call inside a function body.
type CallSite struct {
	Callee FuncKey
	Call   *ast.CallExpr
	// InLit marks calls written inside a func literal of the enclosing
	// function. They execute when the literal runs — possibly on
	// another goroutine, possibly never — so summary-based analyses
	// must not attribute them to the enclosing function's own
	// execution.
	InLit bool
	// Deferred marks `defer f(...)`: the call runs at function exit,
	// where the analyses' mid-body state (held locks, publish status)
	// no longer applies.
	Deferred bool
	// Go marks `go f(...)`: the call runs concurrently, so it does not
	// block the caller and inherits none of its lock state.
	Go bool
}

// FuncNode is one declared function or method with a body.
type FuncNode struct {
	Key  FuncKey
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Calls lists the resolved call sites in source order.
	Calls []CallSite
}

// CallGraph is the static call graph over the loaded units.
type CallGraph struct {
	// Nodes maps every declared function with a body.
	Nodes map[FuncKey]*FuncNode
	keys  []FuncKey // sorted, for deterministic iteration
	sccs  [][]*FuncNode
}

// Keys returns every node key in sorted order.
func (g *CallGraph) Keys() []FuncKey { return g.keys }

// BuildCallGraph constructs the graph. Prefer Pass.CallGraph, which
// builds it once per run and shares it across analyzers.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{Nodes: make(map[FuncKey]*FuncNode)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				key := KeyOf(fn)
				if _, dup := g.Nodes[key]; dup {
					// Two units declaring the same key (should not
					// happen with one unit per package); keep the first
					// deterministically — pkgs are sorted by path.
					continue
				}
				g.Nodes[key] = &FuncNode{
					Key:   key,
					Fn:    fn,
					Decl:  fd,
					Pkg:   pkg,
					Calls: collectCalls(pkg, fd),
				}
			}
		}
	}
	g.keys = make([]FuncKey, 0, len(g.Nodes))
	for k := range g.Nodes {
		g.keys = append(g.keys, k)
	}
	sort.Slice(g.keys, func(i, j int) bool { return g.keys[i] < g.keys[j] })
	g.sccs = g.computeSCCs()
	return g
}

// collectCalls resolves every call expression in the body, flagging
// calls under func literals, defer, and go.
func collectCalls(pkg *Package, fd *ast.FuncDecl) []CallSite {
	var lits []*ast.FuncLit
	deferred := make(map[*ast.CallExpr]bool)
	gone := make(map[*ast.CallExpr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lits = append(lits, n)
		case *ast.DeferStmt:
			deferred[n.Call] = true
		case *ast.GoStmt:
			gone[n.Call] = true
		}
		return true
	})
	inLit := func(n ast.Node) bool {
		for _, l := range lits {
			if l.Body.Pos() <= n.Pos() && n.End() <= l.Body.End() {
				return true
			}
		}
		return false
	}
	var sites []CallSite
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(pkg.Info, call)
		if callee == nil {
			return true
		}
		sites = append(sites, CallSite{
			Callee:   KeyOf(callee),
			Call:     call,
			InLit:    inLit(call),
			Deferred: deferred[call],
			Go:       gone[call],
		})
		return true
	})
	return sites
}

// BottomUp returns the strongly connected components in callees-first
// order: when SCC i is handed out, every function any of its members
// calls outside the component has already appeared in an earlier SCC.
// Mutually recursive functions share a component; summary computations
// iterate such a component to a fixpoint (see Converge in facts.go).
func (g *CallGraph) BottomUp() [][]*FuncNode { return g.sccs }

// computeSCCs runs Tarjan's algorithm iteratively (function bodies can
// nest calls arbitrarily deep, but the call DAG itself can also be
// deep — no recursion on it). Tarjan emits components in reverse
// topological order of the condensation, which is exactly the
// callees-first order BottomUp promises.
func (g *CallGraph) computeSCCs() [][]*FuncNode {
	index := make(map[FuncKey]int, len(g.Nodes))
	low := make(map[FuncKey]int, len(g.Nodes))
	onStack := make(map[FuncKey]bool, len(g.Nodes))
	var stack []FuncKey
	var sccs [][]*FuncNode
	next := 0

	// succ returns the callee keys that are themselves nodes, in
	// deterministic (source) order, deduplicated.
	succ := func(k FuncKey) []FuncKey {
		n := g.Nodes[k]
		seen := make(map[FuncKey]bool)
		var out []FuncKey
		for _, cs := range n.Calls {
			if _, ok := g.Nodes[cs.Callee]; !ok {
				continue
			}
			if !seen[cs.Callee] {
				seen[cs.Callee] = true
				out = append(out, cs.Callee)
			}
		}
		return out
	}

	type frame struct {
		key   FuncKey
		succs []FuncKey
		next  int
	}
	for _, root := range g.keys {
		if _, visited := index[root]; visited {
			continue
		}
		frames := []frame{{key: root, succs: succ(root)}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.next < len(f.succs) {
				w := f.succs[f.next]
				f.next++
				if _, visited := index[w]; !visited {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{key: w, succs: succ(w)})
				} else if onStack[w] && index[w] < low[f.key] {
					low[f.key] = index[w]
				}
				continue
			}
			// f exhausted: pop, propagate lowlink, maybe emit SCC.
			done := *f
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				if low[done.key] < low[frames[len(frames)-1].key] {
					low[frames[len(frames)-1].key] = low[done.key]
				}
			}
			if low[done.key] == index[done.key] {
				var comp []*FuncNode
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, g.Nodes[w])
					if w == done.key {
						break
					}
				}
				sort.Slice(comp, func(i, j int) bool { return comp[i].Key < comp[j].Key })
				sccs = append(sccs, comp)
			}
		}
	}
	return sccs
}
