package lint

import (
	"strings"
	"testing"
)

// loadSCCFixture loads the synthetic sccgraph package and builds its
// call graph.
func loadSCCFixture(t *testing.T) *CallGraph {
	t.Helper()
	pkgs, err := Load(".", "./testdata/src/sccgraph")
	if err != nil {
		t.Fatalf("load sccgraph fixture: %v", err)
	}
	return BuildCallGraph(pkgs)
}

// sccOf returns the index within BottomUp's output of the component
// containing the named function (matched by key suffix).
func sccOf(t *testing.T, g *CallGraph, suffix string) int {
	t.Helper()
	for i, comp := range g.BottomUp() {
		for _, n := range comp {
			if strings.HasSuffix(string(n.Key), suffix) {
				return i
			}
		}
	}
	t.Fatalf("no SCC contains a function with key suffix %q", suffix)
	return -1
}

// TestSCCBottomUpOrder pins the callees-first contract on a known
// topology: leaf <- {evenStep, oddStep} (mutually recursive), leaf <-
// selfRec (self-recursive), and Top calling into both components.
func TestSCCBottomUpOrder(t *testing.T) {
	g := loadSCCFixture(t)

	leaf := sccOf(t, g, ".leaf")
	even := sccOf(t, g, ".evenStep")
	odd := sccOf(t, g, ".oddStep")
	self := sccOf(t, g, ".selfRec")
	top := sccOf(t, g, ".Top")

	if even != odd {
		t.Errorf("mutually recursive evenStep (SCC %d) and oddStep (SCC %d) must share a component", even, odd)
	}
	if comp := g.BottomUp()[even]; len(comp) != 2 {
		t.Errorf("the evenStep/oddStep component has %d members, want 2", len(comp))
	}
	if comp := g.BottomUp()[self]; len(comp) != 1 {
		t.Errorf("selfRec's component has %d members, want 1 (self-recursion is a singleton SCC)", len(comp))
	}
	if comp := g.BottomUp()[top]; len(comp) != 1 {
		t.Errorf("Top's component has %d members, want 1", len(comp))
	}

	// Callees-first: every callee's component strictly precedes its
	// caller's.
	if !(leaf < even) {
		t.Errorf("leaf (SCC %d) must precede its caller oddStep's component (SCC %d)", leaf, even)
	}
	if !(leaf < self) {
		t.Errorf("leaf (SCC %d) must precede its caller selfRec's component (SCC %d)", leaf, self)
	}
	if !(even < top) {
		t.Errorf("evenStep/oddStep (SCC %d) must precede Top's component (SCC %d)", even, top)
	}
	if !(self < top) {
		t.Errorf("selfRec (SCC %d) must precede Top's component (SCC %d)", self, top)
	}
}

// TestSCCSelfRecursionDetected pins selfRecursive, which Converge uses
// to decide whether a singleton component needs fixpoint iteration.
func TestSCCSelfRecursionDetected(t *testing.T) {
	g := loadSCCFixture(t)
	for _, comp := range g.BottomUp() {
		if len(comp) != 1 {
			continue
		}
		n := comp[0]
		isSelf := selfRecursive(n)
		wantSelf := strings.HasSuffix(string(n.Key), ".selfRec")
		if isSelf != wantSelf {
			t.Errorf("selfRecursive(%s) = %v, want %v", n.Key, isSelf, wantSelf)
		}
	}
}

// TestRunDeterministic runs the full suite twice over the entire
// fixture corpus and requires byte-identical rendered output: analyzer
// scheduling, call-graph construction, and fact propagation must not
// leak map-iteration order into diagnostics.
func TestRunDeterministic(t *testing.T) {
	render := func() string {
		pkgs, err := Load(".", fixtureDirs(t)...)
		if err != nil {
			t.Fatalf("load fixtures: %v", err)
		}
		var b strings.Builder
		for _, d := range Run(pkgs, Analyzers()) {
			b.WriteString(d.String())
			b.WriteByte('\n')
		}
		return b.String()
	}
	first := render()
	if first == "" {
		t.Fatal("fixture corpus produced no diagnostics; determinism test is vacuous")
	}
	second := render()
	if first != second {
		t.Errorf("two identical runs produced different output:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}
