package lint

import (
	"go/ast"
	"strings"
)

// ErrWrap requires fmt.Errorf to wrap error operands with %w rather
// than flatten them with %v or %s. A %v stringifies the cause, so
// errors.Is/As stop matching through the new error — which is exactly
// how transport-level sentinels (memcache.ErrCacheMiss, ErrUDPLoss,
// connection-fatal markers) get lost between layers. Non-error
// operands are untouched; formats with explicit argument indexes
// ("%[1]v") are skipped rather than mis-mapped.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc:  "fmt.Errorf with an error operand must use %w so errors.Is/As keep matching",
	Run:  runErrWrap,
}

func runErrWrap(pass *Pass) {
	pkgs, report := pass.Pkgs, pass.Report
	for _, pkg := range pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if !isPkgFunc(info, call, "fmt", "Errorf") || len(call.Args) < 2 {
					return true
				}
				format, ok := stringLit(info, call.Args[0])
				if !ok || strings.Contains(format, "%[") {
					return true
				}
				verbs := parseVerbs(format)
				operands := call.Args[1:]
				for i, v := range verbs {
					if i >= len(operands) {
						break
					}
					if v != 'v' && v != 's' {
						continue
					}
					tv, ok := info.Types[operands[i]]
					if !ok || !implementsError(tv.Type) {
						continue
					}
					report(pkg, operands[i].Pos(),
						"error operand formatted with %%%c; use %%w so errors.Is/As match through the wrap", v)
				}
				return true
			})
		}
	}
}

// parseVerbs extracts the verb letter for each operand of a Printf
// format, in operand order. '*' width/precision arguments consume an
// operand slot and are recorded as '*'.
func parseVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		// flags, width, precision — '*' consumes an operand.
		for i < len(format) {
			c := format[i]
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if c >= '0' && c <= '9' || strings.IndexByte("+-# .", c) >= 0 {
				i++
				continue
			}
			break
		}
		if i < len(format) {
			verbs = append(verbs, format[i])
		}
	}
	return verbs
}
