package lint

// Per-function facts: the summaries interprocedural analyzers attach
// to FuncKeys and propagate bottom-up over the call graph's strongly
// connected components, modeled on how go/analysis facts attach to
// objects and flow to dependents. A fact must only ever grow (set
// union, map insert) so the SCC fixpoint below terminates.

// Facts holds one summary type per function.
type Facts[T any] struct {
	m map[FuncKey]T
	// mk builds the zero summary for a function on first access.
	mk func() T
}

// NewFacts returns an empty fact table whose entries are initialized
// by mk.
func NewFacts[T any](mk func() T) *Facts[T] {
	return &Facts[T]{m: make(map[FuncKey]T), mk: mk}
}

// Get returns the summary for key, creating it on first access.
func (f *Facts[T]) Get(key FuncKey) T {
	v, ok := f.m[key]
	if !ok {
		v = f.mk()
		f.m[key] = v
	}
	return v
}

// Peek returns the summary for key without creating one.
func (f *Facts[T]) Peek(key FuncKey) (T, bool) {
	v, ok := f.m[key]
	return v, ok
}

// Converge runs compute over every function bottom-up: strictly after
// all callees outside the function's SCC, and iterating mutually
// recursive components until no member reports a change. compute must
// return whether it grew any summary; it is called at least once per
// function. maxRounds bounds a single component's iteration as a
// defensive backstop — monotone facts converge long before it.
func Converge(g *CallGraph, compute func(n *FuncNode) bool) {
	const maxRounds = 64
	for _, comp := range g.BottomUp() {
		for round := 0; round < maxRounds; round++ {
			changed := false
			for _, n := range comp {
				if compute(n) {
					changed = true
				}
			}
			if !changed {
				break
			}
			if len(comp) == 1 && !selfRecursive(comp[0]) {
				// A lone, non-recursive function cannot feed itself.
				break
			}
		}
	}
}

// selfRecursive reports whether the node calls itself.
func selfRecursive(n *FuncNode) bool {
	for _, cs := range n.Calls {
		if cs.Callee == n.Key {
			return true
		}
	}
	return false
}
