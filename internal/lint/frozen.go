package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Frozen enforces the //rnb:frozen-after-publish annotation: a type so
// marked follows the copy-on-write discipline every lock-free snapshot
// in this repo depends on (tier views, topology views, hash rings, CBC
// placements). A value may be mutated freely while it is fresh — just
// built, or cloned — but the moment it is published (stored into an
// atomic.Pointer, sent on a channel, returned, or parked in a
// longer-lived structure), every field write through every alias is a
// data race against readers that were promised an immutable snapshot.
//
// The analysis is a per-function status dataflow (fresh / published /
// parameter) over local variables, made interprocedural by bottom-up
// mutation summaries: a function that writes a frozen field through a
// parameter or receiver carries that as a fact, so passing a published
// value into it is flagged at the call site — which keeps the repo's
// clone-then-mutate constructors (Ring.Clone().AddServer(...)) legal
// and flags Load-then-mutate, the exact shape of the historical
// adaptive-placement snapshot leak.
var Frozen = &Analyzer{
	Name: "frozen",
	Doc:  "no field writes to a //rnb:frozen-after-publish value after it escapes (atomic store, channel send, return, or container write)",
	Run:  runFrozen,
}

// frozenMarker is the annotation, written in the doc comment of a type
// declaration.
const frozenMarker = "rnb:frozen-after-publish"

// mutEvidence is one witnessed frozen-field write inside a function.
type mutEvidence struct {
	pkg   *Package
	pos   token.Pos
	field string
}

// mutSummary maps a parameter slot (-1 = receiver, 0.. = parameters)
// to the evidence that the function writes a frozen field through it.
type mutSummary map[int]mutEvidence

type frozen struct {
	pass *Pass
	// set holds the frozen type keys ("rnb/internal/hashring.Ring").
	set  map[string]bool
	muts *Facts[mutSummary]
}

func runFrozen(pass *Pass) {
	fz := &frozen{pass: pass, set: make(map[string]bool), muts: NewFacts(func() mutSummary { return make(mutSummary) })}
	fz.collectAnnotations()
	if len(fz.set) == 0 {
		return
	}
	g := pass.CallGraph()
	Converge(g, func(n *FuncNode) bool {
		s := fz.newScan(n, false)
		s.run()
		return s.changed
	})
	for _, key := range g.Keys() {
		s := fz.newScan(g.Nodes[key], true)
		s.run()
	}
}

// collectAnnotations finds //rnb:frozen-after-publish markers on type
// declarations across every loaded unit.
func (fz *frozen) collectAnnotations() {
	marked := func(doc *ast.CommentGroup) bool {
		if doc == nil {
			return false
		}
		for _, c := range doc.List {
			if strings.Contains(c.Text, frozenMarker) {
				return true
			}
		}
		return false
	}
	for _, pkg := range fz.pass.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if !marked(gd.Doc) && !marked(ts.Doc) && !marked(ts.Comment) {
						continue
					}
					tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
					if !ok || tn.Pkg() == nil {
						continue
					}
					fz.set[tn.Pkg().Path()+"."+tn.Name()] = true
				}
			}
		}
	}
}

// isFrozen reports whether t (behind pointers/aliases) is annotated.
func (fz *frozen) isFrozen(t types.Type) bool {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return fz.set[n.Obj().Pkg().Path()+"."+n.Obj().Name()]
}

func (fz *frozen) typeKey(t types.Type) string {
	n := namedOf(t)
	return n.Obj().Pkg().Path() + "." + n.Obj().Name()
}

// Variable statuses.
const (
	vUnknown   = iota
	vFresh     // just built or cloned: mutation is the point
	vPublished // escaped to readers: mutation is a race
	vParam     // caller's value: writes become facts, judged per call site
)

type vstatus struct {
	kind   int
	slot   int       // for vParam
	pubPos token.Pos // for vPublished: where it escaped
}

// frozenScan is the per-function dataflow. The same scan runs twice:
// once during Converge with report=false to grow mutation facts, once
// after with report=true to emit diagnostics against the converged
// facts.
type frozenScan struct {
	fz       *frozen
	n        *FuncNode
	statuses map[*types.Var]vstatus
	report   bool
	changed  bool
	reported map[token.Pos]bool
}

func (fz *frozen) newScan(n *FuncNode, report bool) *frozenScan {
	return &frozenScan{fz: fz, n: n, statuses: make(map[*types.Var]vstatus), report: report, reported: make(map[token.Pos]bool)}
}

func (s *frozenScan) run() {
	// Seed receiver and parameters of frozen type with their slots.
	seed := func(field *ast.Field, slot int) {
		for _, name := range field.Names {
			v, ok := s.n.Pkg.Info.Defs[name].(*types.Var)
			if ok && s.fz.isFrozen(v.Type()) {
				s.statuses[v] = vstatus{kind: vParam, slot: slot}
			}
		}
	}
	if recv := s.n.Decl.Recv; recv != nil && len(recv.List) == 1 {
		seed(recv.List[0], -1)
	}
	if params := s.n.Decl.Type.Params; params != nil {
		slot := 0
		for _, f := range params.List {
			if len(f.Names) == 0 {
				slot++
				continue
			}
			seed(f, slot)
			slot += len(f.Names)
		}
	}
	s.stmts(s.n.Decl.Body.List)
}

func (s *frozenScan) stmts(list []ast.Stmt) {
	for _, st := range list {
		s.stmt(st)
	}
}

func (s *frozenScan) stmt(st ast.Stmt) {
	switch st := st.(type) {
	case *ast.AssignStmt:
		// Violations and facts first, then status updates: the write is
		// judged against the state before this statement.
		for _, lhs := range st.Lhs {
			s.checkFieldWrite(lhs, st.Pos())
		}
		for _, rhs := range st.Rhs {
			s.exprEffects(rhs)
		}
		// Escape: a tracked value assigned into a field, element, or
		// package-level var is published.
		for _, lhs := range st.Lhs {
			if s.escapingLHS(lhs) {
				for _, rhs := range st.Rhs {
					s.publishIdents(rhs, st.Pos())
				}
				break
			}
		}
		// Alias/status propagation for 1:1 assignments to locals.
		if len(st.Lhs) == len(st.Rhs) {
			for i, lhs := range st.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				v := s.localVar(id)
				if v == nil || !s.fz.isFrozen(v.Type()) {
					continue
				}
				s.statuses[v] = s.classify(st.Rhs[i])
			}
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					s.exprEffects(v)
				}
				if len(vs.Names) == len(vs.Values) {
					for i, name := range vs.Names {
						v, ok := s.n.Pkg.Info.Defs[name].(*types.Var)
						if ok && s.fz.isFrozen(v.Type()) {
							s.statuses[v] = s.classify(vs.Values[i])
						}
					}
				}
			}
		}
	case *ast.IncDecStmt:
		s.checkFieldWrite(st.X, st.Pos())
		s.exprEffects(st.X)
	case *ast.ExprStmt:
		s.exprEffects(st.X)
		s.publishByCall(st.X)
	case *ast.SendStmt:
		s.exprEffects(st.Chan)
		s.exprEffects(st.Value)
		s.publishIdents(st.Value, st.Pos())
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			s.exprEffects(r)
			s.publishIdents(r, st.Pos())
		}
	case *ast.GoStmt:
		s.exprEffects(st.Call)
	case *ast.DeferStmt:
		s.exprEffects(st.Call)
	case *ast.IfStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		s.exprEffects(st.Cond)
		s.branch(func() { s.stmts(st.Body.List) }, func() {
			if st.Else != nil {
				s.stmt(st.Else)
			}
		})
	case *ast.BlockStmt:
		s.stmts(st.List)
	case *ast.ForStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		if st.Cond != nil {
			s.exprEffects(st.Cond)
		}
		// Twice: a publish at the bottom of the body reaches a write at
		// the top on the next iteration.
		s.stmts(st.Body.List)
		s.stmts(st.Body.List)
		if st.Post != nil {
			s.stmt(st.Post)
		}
	case *ast.RangeStmt:
		s.exprEffects(st.X)
		s.stmts(st.Body.List)
		s.stmts(st.Body.List)
	case *ast.SwitchStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		if st.Tag != nil {
			s.exprEffects(st.Tag)
		}
		s.clauses(st.Body.List)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		s.clauses(st.Body.List)
	case *ast.SelectStmt:
		s.clauses(st.Body.List)
	case *ast.LabeledStmt:
		s.stmt(st.Stmt)
	}
}

// branch runs each arm against a clone of the statuses and merges by
// keeping any publish observed in any arm (conservative for code after
// the branch) without letting one arm's publish contaminate a sibling.
func (s *frozenScan) branch(arms ...func()) {
	before := s.statuses
	merged := cloneStatuses(before)
	for _, arm := range arms {
		s.statuses = cloneStatuses(before)
		arm()
		for v, st := range s.statuses {
			if st.kind == vPublished {
				merged[v] = st
			}
		}
	}
	s.statuses = merged
}

func (s *frozenScan) clauses(list []ast.Stmt) {
	arms := make([]func(), 0, len(list))
	for _, c := range list {
		switch cc := c.(type) {
		case *ast.CaseClause:
			body := cc.Body
			for _, e := range cc.List {
				s.exprEffects(e)
			}
			arms = append(arms, func() { s.stmts(body) })
		case *ast.CommClause:
			comm, body := cc.Comm, cc.Body
			arms = append(arms, func() {
				if comm != nil {
					s.stmt(comm)
				}
				s.stmts(body)
			})
		}
	}
	s.branch(arms...)
}

func cloneStatuses(m map[*types.Var]vstatus) map[*types.Var]vstatus {
	c := make(map[*types.Var]vstatus, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// localVar resolves an identifier to its (function-scoped) variable.
func (s *frozenScan) localVar(id *ast.Ident) *types.Var {
	if v, ok := s.n.Pkg.Info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := s.n.Pkg.Info.Uses[id].(*types.Var); ok && !pkgLevel(v) {
		return v
	}
	return nil
}

// classify assigns a status to the value of an expression.
func (s *frozenScan) classify(e ast.Expr) vstatus {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		if v := s.localVar(e); v != nil {
			return s.statuses[v]
		}
		if v, ok := s.n.Pkg.Info.Uses[e].(*types.Var); ok && pkgLevel(v) && s.fz.isFrozen(v.Type()) {
			return vstatus{kind: vPublished, pubPos: e.Pos()}
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
				return vstatus{kind: vFresh}
			}
		}
		if e.Op == token.ARROW {
			return vstatus{kind: vPublished, pubPos: e.Pos()}
		}
	case *ast.CompositeLit:
		return vstatus{kind: vFresh}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "new" {
			if _, isBuiltin := s.n.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
				return vstatus{kind: vFresh}
			}
		}
		if recv, name, ok := callReceiver(s.n.Pkg.Info, e); ok && name == "Load" && isNamedType(recv, "sync/atomic", "Pointer") {
			return vstatus{kind: vPublished, pubPos: e.Pos()}
		}
		// Any other call returning a frozen value is treated as fresh:
		// constructors and Clone hand the caller a private copy. A
		// getter returning a shared snapshot must instead be modeled by
		// the caller treating it as published — the repo convention is
		// that such accessors go through atomic.Pointer.Load, which is
		// caught above.
		if tv, ok := s.n.Pkg.Info.Types[e]; ok && s.fz.isFrozen(tv.Type) {
			return vstatus{kind: vFresh}
		}
	}
	return vstatus{}
}

// escapingLHS reports whether assigning to lhs parks the RHS value in
// a longer-lived structure: a field, a slice/map element, a
// dereference, or a package-level variable.
func (s *frozenScan) escapingLHS(lhs ast.Expr) bool {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.Ident:
		v, ok := s.n.Pkg.Info.Uses[e].(*types.Var)
		return ok && pkgLevel(v)
	}
	return false
}

// publishIdents marks the variables whose VALUE e evaluates to (or
// contains, for composites) as published. It deliberately does not
// descend into call arguments or receivers: `m[k] = r.Locate(k)`
// stores Locate's result, not r — r escapes only if something stores
// r itself.
func (s *frozenScan) publishIdents(e ast.Expr, at token.Pos) {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		if v := s.localVar(e); v != nil && s.fz.isFrozen(v.Type()) {
			st := s.statuses[v]
			if st.kind == vFresh || st.kind == vUnknown {
				s.statuses[v] = vstatus{kind: vPublished, pubPos: at}
			}
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			s.publishIdents(e.X, at)
		}
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				s.publishIdents(kv.Value, at)
				continue
			}
			s.publishIdents(el, at)
		}
	case *ast.CallExpr:
		// append(dst, t...) keeps its arguments alive in the result.
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" {
			if _, isBuiltin := s.n.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
				for _, a := range e.Args {
					s.publishIdents(a, at)
				}
			}
		}
	}
}

// publishByCall handles the explicit publish calls: storing into an
// atomic.Pointer (Store, Swap, CompareAndSwap).
func (s *frozenScan) publishByCall(e ast.Expr) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	recv, name, ok := callReceiver(s.n.Pkg.Info, call)
	if !ok || !isNamedType(recv, "sync/atomic", "Pointer") {
		return
	}
	switch name {
	case "Store", "Swap":
		if len(call.Args) == 1 {
			s.publishIdents(call.Args[0], call.Pos())
		}
	case "CompareAndSwap":
		if len(call.Args) == 2 {
			s.publishIdents(call.Args[1], call.Pos())
		}
	}
}

// exprEffects walks an expression: call sites are judged against
// callee mutation facts, and nested function literals are scanned as
// their own little functions (captured variables unknown, direct
// Load-then-mutate still caught).
func (s *frozenScan) exprEffects(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			sub := s.fz.newScan(s.n, s.report)
			sub.stmts(n.Body.List)
			s.changed = s.changed || sub.changed
			return false
		case *ast.CallExpr:
			s.checkCall(n)
			s.publishByCall(n)
		}
		return true
	})
}

// checkCall judges one call against the callee's mutation summary:
// passing a published value into a slot the callee writes through is a
// violation; passing our own parameter through makes the mutation
// transitively ours.
func (s *frozenScan) checkCall(call *ast.CallExpr) {
	callee := calleeFunc(s.n.Pkg.Info, call)
	if callee == nil {
		return
	}
	sum, ok := s.fz.muts.Peek(KeyOf(callee))
	if !ok || len(sum) == 0 {
		return
	}
	slotExpr := func(slot int) ast.Expr {
		if slot == -1 {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				return sel.X
			}
			return nil
		}
		if slot < len(call.Args) {
			return call.Args[slot]
		}
		return nil
	}
	slots := make([]int, 0, len(sum))
	for slot := range sum {
		slots = append(slots, slot)
	}
	sort.Ints(slots)
	for _, slot := range slots {
		arg := slotExpr(slot)
		if arg == nil {
			continue
		}
		ev := sum[slot]
		switch st := s.classify(arg); st.kind {
		case vPublished:
			s.violate(call.Pos(), "call to %s mutates a published %s value (writes field %s at %s); the type is marked //rnb:frozen-after-publish — clone before mutating",
				shortFuncName(callee), s.shortType(arg), ev.field, shortPosIn(ev.pkg, ev.pos))
		case vParam:
			s.addFact(st.slot, ev)
		}
	}
}

// checkFieldWrite judges an assignment target: a field write (possibly
// through element/deref syntax) whose immediate receiver type is
// frozen, performed on a published or parameter value.
func (s *frozenScan) checkFieldWrite(lhs ast.Expr, at token.Pos) {
	e := ast.Unparen(lhs)
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = ast.Unparen(x.X)
			continue
		case *ast.StarExpr:
			e = ast.Unparen(x.X)
			continue
		}
		break
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		// `*p = v` overwriting a whole frozen struct through a pointer.
		if star, ok := ast.Unparen(lhs).(*ast.StarExpr); ok {
			if tv, ok := s.n.Pkg.Info.Types[star.X]; ok && s.fz.isFrozen(tv.Type) {
				s.judgeBase(star.X, at, "*"+s.shortType(star.X))
			}
		}
		return
	}
	selInfo, ok := s.n.Pkg.Info.Selections[sel]
	if !ok || selInfo.Kind() != types.FieldVal {
		return
	}
	if !s.fz.isFrozen(selInfo.Recv()) {
		return
	}
	s.judgeBase(sel.X, at, sel.Sel.Name)
}

// judgeBase applies the status rules to the receiver expression of a
// frozen-field write.
func (s *frozenScan) judgeBase(base ast.Expr, at token.Pos, field string) {
	typeName := s.shortType(base)
	switch st := s.classify(base); st.kind {
	case vPublished:
		where := ""
		if st.pubPos.IsValid() {
			where = fmt.Sprintf(" (published at %s)", shortPosIn(s.n.Pkg, st.pubPos))
		}
		s.violate(at, "write to field %s of a published %s value%s; the type is marked //rnb:frozen-after-publish — clone, mutate the clone, republish", field, typeName, where)
	case vParam:
		s.addFact(st.slot, mutEvidence{pkg: s.n.Pkg, pos: at, field: field})
	}
}

func (s *frozenScan) addFact(slot int, ev mutEvidence) {
	sum := s.fz.muts.Get(s.n.Key)
	if _, ok := sum[slot]; !ok {
		sum[slot] = ev
		s.changed = true
	}
}

func (s *frozenScan) violate(pos token.Pos, format string, args ...any) {
	if !s.report || s.reported[pos] {
		return
	}
	s.reported[pos] = true
	s.fz.pass.Report(s.n.Pkg, pos, format, args...)
}

// shortType names the frozen type of an expression for diagnostics.
func (s *frozenScan) shortType(e ast.Expr) string {
	if tv, ok := s.n.Pkg.Info.Types[e]; ok {
		if n := namedOf(tv.Type); n != nil && n.Obj().Pkg() != nil {
			return shortLockID(s.fz.typeKey(tv.Type))
		}
	}
	return "frozen"
}

// shortFuncName renders a FuncKey-ish name without module path noise.
func shortFuncName(f *types.Func) string {
	name := f.FullName()
	name = strings.ReplaceAll(name, "rnb/internal/", "")
	return strings.TrimPrefix(name, "rnb.")
}

// shortPosIn renders pos relative to pkg's fset as file:line.
func shortPosIn(pkg *Package, pos token.Pos) string {
	p := pkg.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}
