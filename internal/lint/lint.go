// Package lint is a small, stdlib-only static-analysis framework plus
// the suite of analyzers that machine-check this repository's
// concurrency, determinism, and observability invariants (run by
// cmd/rnblint, wired into `make ci`).
//
// The framework loads packages with go/parser, type-checks them with
// go/types against compiler export data (load.go), runs each Analyzer
// over every loaded compilation unit, and filters the diagnostics
// through //rnblint:ignore suppression directives. Analyzers are
// intraprocedural and best-effort by design: they encode the specific
// invariants this codebase relies on — lock discipline around blocking
// calls, atomic-only field access, seeded randomness in experiment
// packages, Prometheus metric-name hygiene, error wrapping, test
// helper marking — not general-purpose soundness.
package lint

import (
	"fmt"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one invariant checker. Run receives every loaded
// compilation unit at once (some analyzers, like atomiconly, need a
// whole-program collection pass before they can judge a single use)
// and reports findings through report.
type Analyzer struct {
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	Run func(pkgs []*Package, report ReportFunc)
}

// ReportFunc records one diagnostic for the named analyzer.
type ReportFunc func(pkg *Package, pos token.Pos, format string, args ...any)

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AtomicOnly,
		ErrWrap,
		LockHeld,
		MetricName,
		SeededRand,
		THelper,
	}
}

// ByName returns the named analyzers, or an error naming the first
// unknown one.
func ByName(names []string) ([]*Analyzer, error) {
	byName := make(map[string]*Analyzer)
	for _, a := range Analyzers() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run executes the analyzers over pkgs and returns the surviving
// diagnostics sorted by position: suppressed findings are dropped,
// malformed suppression directives are themselves diagnostics (from
// the pseudo-analyzer "rnblint").
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		a := a
		report := func(pkg *Package, pos token.Pos, format string, args ...any) {
			diags = append(diags, Diagnostic{
				Pos:      pkg.Fset.Position(pos),
				Analyzer: a.Name,
				Message:  fmt.Sprintf(format, args...),
			})
		}
		a.Run(pkgs, report)
	}

	sup, supDiags := collectSuppressions(pkgs)
	kept := supDiags
	for _, d := range diags {
		if !sup.matches(d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept
}

// Suppression directives.
//
//	//rnblint:ignore <analyzer>[,<analyzer>...] <reason>
//
// The directive suppresses the named analyzers' diagnostics on its own
// line and on the line below it (so it works both as a trailing
// comment and on a line of its own above the flagged statement). The
// reason is mandatory: an ignore that does not say why is itself a
// diagnostic — reviewers should never have to archaeology a bare
// suppression.
var ignoreRE = regexp.MustCompile(`^//rnblint:ignore(?:\s+(\S+))?(?:\s+(.*))?$`)

type suppression struct {
	file      string
	line      int
	analyzers map[string]bool
}

type suppressions []suppression

func (s suppressions) matches(d Diagnostic) bool {
	for _, sup := range s {
		if sup.file != d.Pos.Filename {
			continue
		}
		if d.Pos.Line != sup.line && d.Pos.Line != sup.line+1 {
			continue
		}
		if sup.analyzers[d.Analyzer] {
			return true
		}
	}
	return false
}

func collectSuppressions(pkgs []*Package) (suppressions, []Diagnostic) {
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	var sups suppressions
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := ignoreRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					bad := func(format string, args ...any) {
						diags = append(diags, Diagnostic{
							Pos:      pos,
							Analyzer: "rnblint",
							Message:  fmt.Sprintf(format, args...),
						})
					}
					if m[1] == "" {
						bad("ignore directive names no analyzer (want //rnblint:ignore <analyzer> <reason>)")
						continue
					}
					names := strings.Split(m[1], ",")
					set := make(map[string]bool, len(names))
					ok := true
					for _, n := range names {
						if !known[n] {
							bad("ignore directive names unknown analyzer %q", n)
							ok = false
							break
						}
						set[n] = true
					}
					if !ok {
						continue
					}
					if strings.TrimSpace(m[2]) == "" {
						bad("ignore directive for %s is missing a reason", m[1])
						continue
					}
					sups = append(sups, suppression{file: pos.Filename, line: pos.Line, analyzers: set})
				}
			}
		}
	}
	return sups, diags
}
