// Package lint is a small, stdlib-only static-analysis framework plus
// the suite of analyzers that machine-check this repository's
// concurrency, determinism, and observability invariants (run by
// cmd/rnblint, wired into `make ci`).
//
// The framework loads packages with go/parser, type-checks them with
// go/types against compiler export data (load.go), runs each Analyzer
// over every loaded compilation unit, and filters the diagnostics
// through //rnblint:ignore suppression directives.
//
// Two analyzer generations coexist. The first-generation checks
// (lockheld, atomiconly, seededrand, metricname, errwrap, thelper) are
// intraprocedural AST passes. The second generation (lockorder,
// frozen, blockleak) is interprocedural: callgraph.go builds a static
// call graph over every loaded unit and facts.go runs per-function
// summary computations bottom-up over its strongly connected
// components, the way go/analysis facts flow between packages — so a
// lock acquired three calls deep, or a frozen-type mutation hidden in
// a helper, is visible at the outermost call site. All analyzers are
// best-effort by design: they encode the specific invariants this
// codebase relies on, not general-purpose soundness.
package lint

import (
	"fmt"
	"go/token"
	"regexp"
	"sort"
	"strings"
	"sync"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one invariant checker. Run receives a Pass holding every
// loaded compilation unit at once (some analyzers, like atomiconly,
// need a whole-program collection pass before they can judge a single
// use; the interprocedural ones share the Pass's call graph) and
// reports findings through pass.Report.
type Analyzer struct {
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// ExemptTestFiles opts the analyzer out of _test.go files: its
	// diagnostics positioned in test files are dropped by Run. This is
	// a per-analyzer policy decision (metricname uses it — tests
	// register throwaway metric names on purpose), not a loader
	// property: every analyzer sees test files unless it declares
	// otherwise.
	ExemptTestFiles bool
	Run             func(pass *Pass)
}

// Pass is the per-analyzer view of one Run: the loaded units, the
// reporting sink, and lazily built whole-program structures shared by
// every analyzer of the run (the call graph is built once, not once
// per interprocedural analyzer).
type Pass struct {
	Pkgs   []*Package
	Report ReportFunc

	shared *sharedState
}

// sharedState caches whole-program structures across the analyzers of
// one Run call.
type sharedState struct {
	graphOnce sync.Once
	graph     *CallGraph
}

// CallGraph returns the run-wide static call graph, built on first use
// and shared by every analyzer of the run.
func (p *Pass) CallGraph() *CallGraph {
	p.shared.graphOnce.Do(func() {
		p.shared.graph = BuildCallGraph(p.Pkgs)
	})
	return p.shared.graph
}

// ReportFunc records one diagnostic for the named analyzer.
type ReportFunc func(pkg *Package, pos token.Pos, format string, args ...any)

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AtomicOnly,
		BlockLeak,
		ErrWrap,
		Frozen,
		LockHeld,
		LockOrder,
		MetricName,
		SeededRand,
		THelper,
	}
}

// ByName returns the named analyzers, or an error naming the first
// unknown one.
func ByName(names []string) ([]*Analyzer, error) {
	byName := make(map[string]*Analyzer)
	for _, a := range Analyzers() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Run executes the analyzers over pkgs and returns the surviving
// diagnostics sorted by position: suppressed findings are dropped,
// malformed suppression directives are themselves diagnostics (from
// the pseudo-analyzer "rnblint"), and so are dead ones — a directive
// that suppresses nothing is stale documentation and must be deleted
// (the dead check only judges a directive when every analyzer it names
// actually ran, so -only subsets cannot produce false staleness).
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	shared := &sharedState{}
	var diags []Diagnostic
	for _, a := range analyzers {
		a := a
		report := func(pkg *Package, pos token.Pos, format string, args ...any) {
			p := pkg.Fset.Position(pos)
			if a.ExemptTestFiles && strings.HasSuffix(p.Filename, "_test.go") {
				return
			}
			diags = append(diags, Diagnostic{
				Pos:      p,
				Analyzer: a.Name,
				Message:  fmt.Sprintf(format, args...),
			})
		}
		a.Run(&Pass{Pkgs: pkgs, Report: report, shared: shared})
	}

	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}

	sup, supDiags := collectSuppressions(pkgs)
	kept := supDiags
	for _, d := range diags {
		if !sup.matches(d) {
			kept = append(kept, d)
		}
	}
	for i := range sup {
		s := &sup[i]
		if s.hits > 0 {
			continue
		}
		all := true
		for name := range s.analyzers {
			if !ran[name] {
				all = false
				break
			}
		}
		if all {
			kept = append(kept, Diagnostic{
				Pos:      s.pos,
				Analyzer: "rnblint",
				Message:  fmt.Sprintf("ignore directive for %s suppresses nothing; delete it", s.names),
			})
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept
}

// Suppression directives.
//
//	//rnblint:ignore <analyzer>[,<analyzer>...] <reason>
//
// The directive suppresses the named analyzers' diagnostics on its own
// line and on the line below it (so it works both as a trailing
// comment and on a line of its own above the flagged statement). The
// reason is mandatory: an ignore that does not say why is itself a
// diagnostic — reviewers should never have to archaeology a bare
// suppression. A directive must also still earn its keep: one that
// matches no current finding is reported as dead by Run.
var ignoreRE = regexp.MustCompile(`^//rnblint:ignore(?:\s+(\S+))?(?:\s+(.*))?$`)

type suppression struct {
	file      string
	line      int
	pos       token.Position
	names     string // the directive's analyzer list, verbatim
	analyzers map[string]bool
	hits      int
}

type suppressions []suppression

func (s suppressions) matches(d Diagnostic) bool {
	matched := false
	for i := range s {
		sup := &s[i]
		if sup.file != d.Pos.Filename {
			continue
		}
		if d.Pos.Line != sup.line && d.Pos.Line != sup.line+1 {
			continue
		}
		if sup.analyzers[d.Analyzer] {
			sup.hits++
			matched = true
		}
	}
	return matched
}

func collectSuppressions(pkgs []*Package) (suppressions, []Diagnostic) {
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	var sups suppressions
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := ignoreRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					bad := func(format string, args ...any) {
						diags = append(diags, Diagnostic{
							Pos:      pos,
							Analyzer: "rnblint",
							Message:  fmt.Sprintf(format, args...),
						})
					}
					if m[1] == "" {
						bad("ignore directive names no analyzer (want //rnblint:ignore <analyzer> <reason>)")
						continue
					}
					names := strings.Split(m[1], ",")
					set := make(map[string]bool, len(names))
					ok := true
					for _, n := range names {
						if !known[n] {
							bad("ignore directive names unknown analyzer %q", n)
							ok = false
							break
						}
						set[n] = true
					}
					if !ok {
						continue
					}
					if strings.TrimSpace(m[2]) == "" {
						bad("ignore directive for %s is missing a reason", m[1])
						continue
					}
					sups = append(sups, suppression{file: pos.Filename, line: pos.Line, pos: pos, names: m[1], analyzers: set})
				}
			}
		}
	}
	return sups, diags
}
