package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// wantRE matches fixture expectation comments:
//
//	// want <analyzer> "<message substring>"
var wantRE = regexp.MustCompile(`//\s*want\s+(\S+)\s+"([^"]*)"`)

// fixtureDirs walks testdata/src and returns every directory holding
// .go files, as ./-relative go list patterns, minus any in skip.
func fixtureDirs(t *testing.T, skip ...string) []string {
	t.Helper()
	skipSet := make(map[string]bool)
	for _, s := range skip {
		skipSet[s] = true
	}
	var dirs []string
	err := filepath.WalkDir("testdata/src", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		dir := filepath.Dir(path)
		if !skipSet[filepath.Base(dir)] {
			dirs = append(dirs, "./"+filepath.ToSlash(dir))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walk testdata/src: %v", err)
	}
	sort.Strings(dirs)
	return uniq(dirs)
}

func uniq(xs []string) []string {
	var out []string
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

type expectation struct {
	analyzer  string
	substring string
	matched   bool
}

// collectWants scans the loaded fixture files for want comments and
// returns them keyed by "file:line".
func collectWants(t *testing.T, pkgs []*Package) map[string][]*expectation {
	t.Helper()
	wants := make(map[string][]*expectation)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					wants[key] = append(wants[key], &expectation{analyzer: m[1], substring: m[2]})
				}
			}
		}
	}
	return wants
}

// TestAnalyzersGolden runs the full suite over every fixture package
// (except suppress, which has its own test) and checks the diagnostics
// against the inline want comments in both directions: every finding
// must be expected, and every expectation must fire. The good packages
// carry no want comments, so any finding there fails the test.
func TestAnalyzersGolden(t *testing.T) {
	pkgs, err := Load(".", fixtureDirs(t, "suppress")...)
	if err != nil {
		t.Fatalf("load fixtures: %v", err)
	}
	for _, pkg := range pkgs {
		for _, te := range pkg.TypeErrors {
			t.Errorf("fixture %s does not type-check: %v", pkg.Path, te)
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	wants := collectWants(t, pkgs)
	if len(pkgs) < 10 || len(wants) == 0 {
		t.Fatalf("fixture load looks wrong: %d packages, %d want lines", len(pkgs), len(wants))
	}
	for _, d := range Run(pkgs, Analyzers()) {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		if !claimWant(wants[key], d.Analyzer, d.Message) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, exps := range wants {
		for _, e := range exps {
			if !e.matched {
				t.Errorf("%s: expected %s diagnostic containing %q, got none", key, e.analyzer, e.substring)
			}
		}
	}
}

// claimWant marks and returns the first unclaimed expectation matching
// the diagnostic.
func claimWant(exps []*expectation, analyzer, message string) bool {
	for _, e := range exps {
		if !e.matched && e.analyzer == analyzer && strings.Contains(message, e.substring) {
			e.matched = true
			return true
		}
	}
	return false
}

// TestSuppressionDirectives loads the suppress fixture, whose
// expectations cannot live in want comments (malformed-directive
// diagnostics land on comment-only lines). It checks that well-formed
// directives silence the errwrap findings they cover, and that each
// malformed form — bare, unknown analyzer, missing reason — is itself
// reported and suppresses nothing.
func TestSuppressionDirectives(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/suppress")
	if err != nil {
		t.Fatalf("load suppress fixture: %v", err)
	}
	diags := Run(pkgs, Analyzers())
	for _, d := range diags {
		t.Logf("diagnostic: %s", d)
	}

	var rnblint, errwrap int
	for _, d := range diags {
		switch d.Analyzer {
		case "rnblint":
			rnblint++
		case "errwrap":
			errwrap++
		default:
			t.Errorf("unexpected analyzer %q: %s", d.Analyzer, d)
		}
	}
	// Three well-formed suppressions silence three of the six errwrap
	// findings; the three under malformed directives survive.
	if errwrap != 3 {
		t.Errorf("got %d errwrap diagnostics, want 3 (malformed directives must not suppress)", errwrap)
	}
	// One rnblint diagnostic per malformed directive, plus one for the
	// well-formed directive that suppresses nothing.
	if rnblint != 4 {
		t.Errorf("got %d rnblint diagnostics, want 4 (three malformed directives + one dead one)", rnblint)
	}
	for _, substr := range []string{
		"names no analyzer",
		`unknown analyzer "nosuchanalyzer"`,
		"missing a reason",
		"suppresses nothing; delete it",
	} {
		if !hasDiag(diags, "rnblint", substr) {
			t.Errorf("missing rnblint diagnostic containing %q", substr)
		}
	}
}

func hasDiag(diags []Diagnostic, analyzer, substr string) bool {
	for _, d := range diags {
		if d.Analyzer == analyzer && strings.Contains(d.Message, substr) {
			return true
		}
	}
	return false
}

// TestByName covers analyzer selection, including the unknown-name
// error path used by cmd/rnblint's -only flag.
func TestByName(t *testing.T) {
	got, err := ByName([]string{"errwrap", "lockheld"})
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	if len(got) != 2 || got[0].Name != "errwrap" || got[1].Name != "lockheld" {
		t.Fatalf("ByName returned wrong analyzers: %v", got)
	}
	if _, err := ByName([]string{"nosuch"}); err == nil {
		t.Fatal("ByName accepted an unknown analyzer name")
	}
}
