package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked compilation unit handed to analyzers:
// the syntax trees, the type information, and the import path. For a
// package with in-package test files the unit is the test variant
// (library files plus _test.go files, as the compiler builds it);
// external foo_test packages are separate units.
type Package struct {
	// Path is the unbracketed import path ("rnb/internal/obs", or
	// "rnb/internal/obs_test" for an external test package).
	Path string
	// Fset is shared by every package of one Load call.
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors holds type-checker complaints. Analysis proceeds on a
	// best-effort basis, but a non-empty list usually means diagnostics
	// are incomplete and the run should be reported as failed.
	TypeErrors []error
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	ForTest    string
	DepOnly    bool
	Standard   bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// Load type-checks the packages matching patterns (as the go tool
// resolves them, e.g. "./...") rooted at dir, returning one Package
// per compilation unit. Dependencies are imported from compiler export
// data produced by `go list -export`, so only the packages under
// analysis are parsed from source.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	// Export data for every dependency, keyed by plain import path.
	exports := make(map[string]string)
	for _, p := range listed {
		if p.Export != "" && !strings.Contains(p.ImportPath, " ") {
			exports[p.ImportPath] = p.Export
		}
	}

	// Pick the units to analyze: for each requested package prefer the
	// in-package test variant "p [p.test]" (its GoFiles are a superset
	// of plain p's); external test packages "p_test [p.test]" are their
	// own units.
	type unit struct {
		path    string // unbracketed path
		dir     string
		files   []string
		forTest string // package under test, for external test packages
	}
	variants := make(map[string]bool) // plain paths that have a test variant
	for _, p := range listed {
		if p.ForTest != "" && !strings.HasSuffix(unbracket(p.ImportPath), "_test") {
			variants[p.ForTest] = true
		}
	}
	var units []unit
	for _, p := range listed {
		if p.DepOnly || p.Standard || p.Error != nil {
			continue
		}
		path := unbracket(p.ImportPath)
		switch {
		case strings.HasSuffix(path, ".test"):
			continue // generated test main
		case p.ForTest == "" && variants[p.ImportPath]:
			continue // superseded by its test variant
		case p.ForTest != "" && strings.HasSuffix(path, "_test"):
			// External test packages ("p_test [p.test]"): go list puts
			// their sources under GoFiles on the bracketed record —
			// XTestGoFiles is only populated on the plain "p" record.
			// Reading the wrong field here made every external test
			// package load as zero files and silently skip analysis.
			units = append(units, unit{path: path, dir: p.Dir, files: p.GoFiles, forTest: p.ForTest})
		default:
			units = append(units, unit{path: path, dir: p.Dir, files: p.GoFiles})
		}
	}
	sort.Slice(units, func(i, j int) bool { return units[i].path < units[j].path })

	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)

	var pkgs []*Package
	for _, u := range units {
		var files []*ast.File
		for _, name := range u.files {
			f, err := parser.ParseFile(fset, filepath.Join(u.dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: parse %s: %w", name, err)
			}
			files = append(files, f)
		}
		pkg := &Package{Path: u.path, Fset: fset, Files: files}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
		}
		tpkg, _ := conf.Check(u.path, fset, files, info) // errors collected via conf.Error
		pkg.Types = tpkg
		pkg.Info = info
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func unbracket(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		return path[:i]
	}
	return path
}

func goList(dir string, patterns []string) ([]listedPkg, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-test", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list: %w\n%s", err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decode go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves every import from the compiler export data
// gathered by `go list -export` through one shared gc importer, so
// dependency type identity is stable across every unit of the run.
// (External test packages consequently see the plain library exports
// of the package under test, not its test-file exports — mixing a
// source-checked variant in would split type identity against the
// same package reached through other dependencies.)
type exportImporter struct {
	gc types.ImporterFrom
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	return &exportImporter{
		gc: importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom),
	}
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	return e.ImportFrom(path, "", 0)
}

func (e *exportImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return e.gc.ImportFrom(path, srcDir, mode)
}
