package lint

import (
	"go/ast"
	"go/token"
)

// LockHeld flags blocking operations performed while a sync.Mutex or
// sync.RWMutex is held: channel sends and receives, selects without a
// default case, time.Sleep, WaitGroup.Wait, net dials and socket
// reads/writes, and round trips through the internal/memcache
// transports. Holding a mutex across any of these turns one slow peer
// into a pile-up of every goroutine that touches the lock — the
// pooled transport, breaker, and hotspot controller all depend on
// their critical sections staying O(memory access).
//
// The analysis is intraprocedural (the interprocedural complement is
// lockorder, which follows lock acquisitions through call chains) and
// rides the shared lockWalker CFG engine: lock state flows through
// straight-line code, branches (a path that unlocks and returns does
// not poison the code after the branch), and loops. sync.Cond.Wait is
// deliberately not a violation: it releases the mutex while waiting —
// that is its contract.
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc:  "no blocking call (I/O, channel op, sleep, transport round trip) while a sync mutex is held",
	Run:  runLockHeld,
}

func runLockHeld(pass *Pass) {
	for _, pkg := range pass.Pkgs {
		lh := &lockHeld{pkg: pkg, report: pass.Report}
		w := &lockWalker{pkg: pkg, hooks: lh}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
					w.walkFunc(fn.Body)
				}
			}
		}
	}
}

// lockHeld implements lockHooks: report any blocking event whose held
// set is non-empty.
type lockHeld struct {
	pkg    *Package
	report ReportFunc
}

func (l *lockHeld) acquire(recv ast.Expr, op string, call *ast.CallExpr, held heldSet) {}

func (l *lockHeld) blocking(pos token.Pos, label string, held heldSet) {
	if len(held) > 0 {
		l.reportBlocked(pos, held, label)
	}
}

func (l *lockHeld) call(call *ast.CallExpr, held heldSet, inLoop bool) {
	if len(held) == 0 {
		return
	}
	if what, ok := l.blockingCall(call); ok {
		l.reportBlocked(call.Pos(), held, what)
	}
}

// netBlockingMethods are socket operations that park the goroutine on
// the network (Close is quick and deliberately absent).
var netBlockingMethods = map[string]bool{
	"Read": true, "Write": true, "ReadFrom": true, "WriteTo": true,
	"ReadFromUDP": true, "WriteToUDP": true, "ReadMsgUDP": true,
	"Accept": true, "AcceptTCP": true,
}

// memcacheBlockingMethods are the internal/memcache transport entry
// points — each is a full network round trip.
var memcacheBlockingMethods = map[string]bool{
	"Do": true, "Get": true, "GetMulti": true, "GetsMulti": true,
	"Set": true, "SetPinned": true, "Add": true, "Replace": true,
	"CompareAndSwap": true, "Append": true, "Prepend": true,
	"Incr": true, "Decr": true, "Delete": true, "Touch": true,
	"FlushAll": true, "Version": true, "Stats": true,
}

// blockingCall classifies a call as blocking, returning a short label
// for the diagnostic.
func (l *lockHeld) blockingCall(call *ast.CallExpr) (string, bool) {
	info := l.pkg.Info
	if isPkgFunc(info, call, "time", "Sleep") {
		return "time.Sleep", true
	}
	for _, fn := range []string{"Dial", "DialTimeout", "DialTCP", "DialUDP", "DialIP", "DialUnix", "Listen", "ListenTCP", "ListenUDP", "ListenPacket"} {
		if isPkgFunc(info, call, "net", fn) {
			return "net." + fn, true
		}
	}
	recv, name, ok := callReceiver(info, call)
	if !ok {
		return "", false
	}
	if isNamedType(recv, "sync", "WaitGroup") && name == "Wait" {
		return "WaitGroup.Wait", true
	}
	if isNamedType(recv, "net", "Dialer") && (name == "Dial" || name == "DialContext") {
		return "Dialer." + name, true
	}
	// namedTypePkgPath resolves concrete and interface receivers alike
	// (net.Conn methods included).
	pkgPath := namedTypePkgPath(recv)
	if pkgPath == "net" && netBlockingMethods[name] {
		return "net conn " + name, true
	}
	if pkgPath == "rnb/internal/memcache" && memcacheBlockingMethods[name] {
		return "memcache transport " + name, true
	}
	return "", false
}

func (l *lockHeld) reportBlocked(pos token.Pos, held heldSet, what string) {
	// Name one held mutex (deterministically: the smallest printed
	// form) so the message reads concretely.
	var mu string
	for k := range held {
		if mu == "" || k < mu {
			mu = k
		}
	}
	l.report(l.pkg, pos, "%s while %s is held", what, mu)
}
