package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockHeld flags blocking operations performed while a sync.Mutex or
// sync.RWMutex is held: channel sends and receives, selects without a
// default case, time.Sleep, WaitGroup.Wait, net dials and socket
// reads/writes, and round trips through the internal/memcache
// transports. Holding a mutex across any of these turns one slow peer
// into a pile-up of every goroutine that touches the lock — the
// pooled transport, breaker, and hotspot controller all depend on
// their critical sections staying O(memory access).
//
// The analysis is intraprocedural and tracks lock state through
// straight-line code, branches (a path that unlocks and returns does
// not poison the code after the branch), and loops. sync.Cond.Wait is
// deliberately not a violation: it releases the mutex while waiting —
// that is its contract.
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc:  "no blocking call (I/O, channel op, sleep, transport round trip) while a sync mutex is held",
	Run:  runLockHeld,
}

func runLockHeld(pkgs []*Package, report ReportFunc) {
	for _, pkg := range pkgs {
		lh := &lockHeld{pkg: pkg, report: report}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch fn := n.(type) {
				case *ast.FuncDecl:
					if fn.Body != nil {
						lh.block(fn.Body.List, newHeldSet())
					}
					return false // function literals inside are visited by block
				}
				return true
			})
		}
	}
}

type lockHeld struct {
	pkg    *Package
	report ReportFunc
}

// heldSet maps the printed form of a mutex expression ("c.mu") to the
// position where it was locked.
type heldSet map[string]token.Pos

func newHeldSet() heldSet { return heldSet{} }

func (h heldSet) clone() heldSet {
	c := make(heldSet, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// intersect keeps only mutexes held in both sets — the merge rule at
// control-flow joins, chosen to under-approximate "held" so a branch
// that unlocks cannot cause false positives downstream.
func (h heldSet) intersect(o heldSet) heldSet {
	c := make(heldSet)
	for k, v := range h {
		if _, ok := o[k]; ok {
			c[k] = v
		}
	}
	return c
}

// block processes a statement list sequentially, threading lock state
// through it, and returns the state at its end.
func (l *lockHeld) block(stmts []ast.Stmt, held heldSet) heldSet {
	for _, s := range stmts {
		held = l.stmt(s, held)
	}
	return held
}

// terminates reports whether a statement list ends by leaving the
// enclosing flow (return, branch, panic), so its lock state cannot
// reach the code after the construct it belongs to.
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch s := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func (l *lockHeld) stmt(s ast.Stmt, held heldSet) heldSet {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if name, ok := l.mutexOp(call); ok {
				switch name {
				case "Lock", "RLock":
					held[types.ExprString(mutexRecv(call))] = call.Pos()
				case "Unlock", "RUnlock":
					delete(held, types.ExprString(mutexRecv(call)))
				}
				return held
			}
		}
		l.checkExpr(s.X, held)
		return held
	case *ast.DeferStmt:
		// A deferred unlock keeps the mutex held to the end of the
		// function (correct: later statements still run locked). The
		// deferred call's own body, if a literal, starts lock-free.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			l.block(lit.Body.List, newHeldSet())
		}
		return held
	case *ast.GoStmt:
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			l.block(lit.Body.List, newHeldSet())
		}
		l.checkArgs(s.Call, held)
		return held
	case *ast.SendStmt:
		if len(held) > 0 {
			l.reportBlocked(s.Pos(), held, "channel send")
		}
		return held
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault && len(held) > 0 {
			l.reportBlocked(s.Pos(), held, "blocking select")
		}
		out := held.clone()
		first := true
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			after := l.block(cc.Body, held.clone())
			if terminates(cc.Body) {
				continue
			}
			if first {
				out, first = after, false
			} else {
				out = out.intersect(after)
			}
		}
		return out
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			l.checkExpr(e, held)
		}
		for _, e := range s.Lhs {
			l.checkExpr(e, held)
		}
		return held
	case *ast.DeclStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				l.checkExpr(e, held)
				return false
			}
			return true
		})
		return held
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			l.checkExpr(e, held)
		}
		return held
	case *ast.IfStmt:
		if s.Init != nil {
			held = l.stmt(s.Init, held)
		}
		l.checkExpr(s.Cond, held)
		thenOut := l.block(s.Body.List, held.clone())
		thenTerm := terminates(s.Body.List)
		elseOut := held.clone()
		elseTerm := false
		if s.Else != nil {
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				elseOut = l.block(e.List, held.clone())
				elseTerm = terminates(e.List)
			default:
				elseOut = l.stmt(s.Else, held.clone())
			}
		}
		switch {
		case thenTerm && elseTerm:
			return held
		case thenTerm:
			return elseOut
		case elseTerm:
			return thenOut
		default:
			return thenOut.intersect(elseOut)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			held = l.stmt(s.Init, held)
		}
		if s.Cond != nil {
			l.checkExpr(s.Cond, held)
		}
		body := l.block(s.Body.List, held.clone())
		if s.Post != nil {
			l.stmt(s.Post, body)
		}
		return held.intersect(body)
	case *ast.RangeStmt:
		l.checkExpr(s.X, held)
		if len(held) > 0 {
			if tv, ok := l.pkg.Info.Types[s.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					l.reportBlocked(s.Pos(), held, "range over channel")
				}
			}
		}
		body := l.block(s.Body.List, held.clone())
		return held.intersect(body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = l.stmt(s.Init, held)
		}
		if s.Tag != nil {
			l.checkExpr(s.Tag, held)
		}
		return l.caseClauses(s.Body.List, held)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held = l.stmt(s.Init, held)
		}
		return l.caseClauses(s.Body.List, held)
	case *ast.BlockStmt:
		return l.block(s.List, held.clone()).intersect(held.clone())
	case *ast.LabeledStmt:
		return l.stmt(s.Stmt, held)
	}
	return held
}

func (l *lockHeld) caseClauses(clauses []ast.Stmt, held heldSet) heldSet {
	out := held.clone() // no case may match (or empty switch)
	for _, c := range clauses {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			l.checkExpr(e, held)
		}
		after := l.block(cc.Body, held.clone())
		if !terminates(cc.Body) {
			out = out.intersect(after)
		}
	}
	return out
}

// mutexOp reports whether call is Lock/RLock/Unlock/RUnlock on a
// sync.Mutex or sync.RWMutex receiver.
func (l *lockHeld) mutexOp(call *ast.CallExpr) (string, bool) {
	recv, name, ok := callReceiver(l.pkg.Info, call)
	if !ok {
		return "", false
	}
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", false
	}
	if isNamedType(recv, "sync", "Mutex") || isNamedType(recv, "sync", "RWMutex") {
		return name, true
	}
	return "", false
}

// mutexRecv returns the receiver expression of a method call
// ("c.mu" in "c.mu.Lock()").
func mutexRecv(call *ast.CallExpr) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return call.Fun
}

// checkExpr walks an expression flagging blocking operations when any
// mutex is held. Function literals start with a clean slate.
func (l *lockHeld) checkExpr(e ast.Expr, held heldSet) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			l.block(n.Body.List, newHeldSet())
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && len(held) > 0 {
				l.reportBlocked(n.Pos(), held, "channel receive")
			}
		case *ast.CallExpr:
			if len(held) > 0 {
				if what, ok := l.blockingCall(n); ok {
					l.reportBlocked(n.Pos(), held, what)
				}
			}
		}
		return true
	})
}

func (l *lockHeld) checkArgs(call *ast.CallExpr, held heldSet) {
	for _, a := range call.Args {
		l.checkExpr(a, held)
	}
}

// netBlockingMethods are socket operations that park the goroutine on
// the network (Close is quick and deliberately absent).
var netBlockingMethods = map[string]bool{
	"Read": true, "Write": true, "ReadFrom": true, "WriteTo": true,
	"ReadFromUDP": true, "WriteToUDP": true, "ReadMsgUDP": true,
	"Accept": true, "AcceptTCP": true,
}

// memcacheBlockingMethods are the internal/memcache transport entry
// points — each is a full network round trip.
var memcacheBlockingMethods = map[string]bool{
	"Do": true, "Get": true, "GetMulti": true, "GetsMulti": true,
	"Set": true, "SetPinned": true, "Add": true, "Replace": true,
	"CompareAndSwap": true, "Append": true, "Prepend": true,
	"Incr": true, "Decr": true, "Delete": true, "Touch": true,
	"FlushAll": true, "Version": true, "Stats": true,
}

// blockingCall classifies a call as blocking, returning a short label
// for the diagnostic.
func (l *lockHeld) blockingCall(call *ast.CallExpr) (string, bool) {
	info := l.pkg.Info
	if isPkgFunc(info, call, "time", "Sleep") {
		return "time.Sleep", true
	}
	for _, fn := range []string{"Dial", "DialTimeout", "DialTCP", "DialUDP", "DialIP", "DialUnix", "Listen", "ListenTCP", "ListenUDP", "ListenPacket"} {
		if isPkgFunc(info, call, "net", fn) {
			return "net." + fn, true
		}
	}
	recv, name, ok := callReceiver(info, call)
	if !ok {
		return "", false
	}
	if isNamedType(recv, "sync", "WaitGroup") && name == "Wait" {
		return "WaitGroup.Wait", true
	}
	if isNamedType(recv, "net", "Dialer") && (name == "Dial" || name == "DialContext") {
		return "Dialer." + name, true
	}
	// namedTypePkgPath resolves concrete and interface receivers alike
	// (net.Conn methods included).
	pkgPath := namedTypePkgPath(recv)
	if pkgPath == "net" && netBlockingMethods[name] {
		return "net conn " + name, true
	}
	if pkgPath == "rnb/internal/memcache" && memcacheBlockingMethods[name] {
		return "memcache transport " + name, true
	}
	return "", false
}

func (l *lockHeld) reportBlocked(pos token.Pos, held heldSet, what string) {
	// Name one held mutex (deterministically: the smallest printed
	// form) so the message reads concretely.
	var mu string
	for k := range held {
		if mu == "" || k < mu {
			mu = k
		}
	}
	l.report(l.pkg, pos, "%s while %s is held", what, mu)
}
