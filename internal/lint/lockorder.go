package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// LockOrder is the interprocedural deadlock analyzer. It abstracts
// every sync.Mutex/RWMutex to a lock identity — struct field
// ("memcache.Pool.mu", collapsing instances) or package-level var —
// computes per-function summaries of the identities each function may
// acquire (transitively, bottom-up over the call-graph SCCs), and
// threads the lockWalker's held set through every body: each "lock B
// acquired (directly or through any call chain) while A is held"
// becomes an edge A→B in a global acquisition graph. A cycle in that
// graph is an ordering deadlock waiting for the right interleaving,
// and is reported once per cycle with the witnessing acquisition
// sites.
//
// The same pass enforces the repo's sync.Cond discipline — the exact
// shape of the pooled transport's dial-slot deadlock: Wait must sit in
// a rechecked-condition loop and hold the Cond's lock, and
// Signal/Broadcast must hold the guarding lock, because an unlocked
// wake can land between a waiter's decisive re-check and its Wait and
// be lost forever.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "no cycles in the cross-function lock-acquisition order; sync.Cond waits re-check in a loop and notifies under the guarding lock",
	Run:  runLockOrder,
}

// mutexAcquireKeys are the call-graph callee keys that acquire a
// mutex; mutexReleaseKeys release one.
var mutexAcquireKeys = map[FuncKey]bool{
	"(*sync.Mutex).Lock": true, "(*sync.RWMutex).Lock": true, "(*sync.RWMutex).RLock": true,
}

// lockEdge is one witnessed "to acquired while from held".
type lockEdge struct {
	pkg *Package
	pos token.Pos
}

type lockOrder struct {
	pass *Pass
	// acquires summarizes, per function, the global lock identities the
	// function may acquire transitively.
	acquires *Facts[map[string]token.Pos]
	// edges: from -> to -> earliest witness.
	edges map[string]map[string]lockEdge
	// condGuards maps a sync.Cond identity to its guarding lock
	// identity ("" when the sync.NewCond argument was not recognized as
	// &<mutex>; conds with conflicting guards are dropped).
	condGuards map[string]string
}

func runLockOrder(pass *Pass) {
	lo := &lockOrder{
		pass:       pass,
		acquires:   NewFacts(func() map[string]token.Pos { return make(map[string]token.Pos) }),
		edges:      make(map[string]map[string]lockEdge),
		condGuards: make(map[string]string),
	}
	g := pass.CallGraph()

	// Phase 0: map every sync.Cond to its guarding lock.
	lo.collectCondGuards()

	// Phase 1: bottom-up acquisition summaries.
	Converge(g, func(n *FuncNode) bool {
		sum := lo.acquires.Get(n.Key)
		changed := false
		for _, cs := range n.Calls {
			if cs.InLit || cs.Deferred || cs.Go {
				continue
			}
			if mutexAcquireKeys[cs.Callee] {
				id, global := lockIdent(n.Pkg, mutexRecv(cs.Call))
				if global {
					if _, ok := sum[id]; !ok {
						sum[id] = cs.Call.Pos()
						changed = true
					}
				}
				continue
			}
			callee, ok := lo.acquires.Peek(cs.Callee)
			if !ok {
				continue
			}
			for id := range callee {
				if _, ok := sum[id]; !ok {
					sum[id] = cs.Call.Pos()
					changed = true
				}
			}
		}
		return changed
	})

	// Phase 2: walk every body with lock state, recording edges and
	// checking Cond discipline.
	for _, key := range g.Keys() {
		n := g.Nodes[key]
		h := &orderHooks{lo: lo, pkg: n.Pkg}
		w := &lockWalker{pkg: n.Pkg, hooks: h}
		w.walkFunc(n.Decl.Body)
	}
	lo.reportCycles()
}

// orderHooks implements lockHooks for the edge/Cond pass.
type orderHooks struct {
	lo  *lockOrder
	pkg *Package
}

func (h *orderHooks) blocking(pos token.Pos, label string, held heldSet) {}

func (h *orderHooks) acquire(recv ast.Expr, op string, call *ast.CallExpr, held heldSet) {
	id, global := lockIdent(h.pkg, recv)
	if id == "" {
		return
	}
	// Re-acquiring the exact expression already held is a guaranteed
	// self-deadlock when the new acquisition is a write lock (RLock
	// after RLock merely risks writer starvation; stay quiet there).
	if hl, ok := held[types.ExprString(recv)]; ok && op == "Lock" {
		h.lo.pass.Report(h.pkg, call.Pos(), "Lock of %s while it is already held (locked at %s): guaranteed self-deadlock", shortLockID(id), h.shortPos(hl.pos))
		return
	}
	if !global {
		return
	}
	h.addHeldEdges(held, id, call.Pos())
}

func (h *orderHooks) call(call *ast.CallExpr, held heldSet, inLoop bool) {
	h.checkCond(call, held, inLoop)
	if len(held) == 0 {
		return
	}
	callee := calleeFunc(h.pkg.Info, call)
	if callee == nil {
		return
	}
	sum, ok := h.lo.acquires.Peek(KeyOf(callee))
	if !ok {
		return
	}
	ids := make([]string, 0, len(sum))
	for id := range sum {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		h.addHeldEdges(held, id, call.Pos())
	}
}

// addHeldEdges records held→acquired edges for every globally
// identified held lock.
func (h *orderHooks) addHeldEdges(held heldSet, to string, pos token.Pos) {
	for _, hl := range held {
		from, global := lockIdent(h.pkg, hl.expr)
		if !global {
			continue
		}
		h.lo.addEdge(from, to, h.pkg, pos)
	}
}

func (h *orderHooks) shortPos(pos token.Pos) string {
	p := h.pkg.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// checkCond enforces the Cond discipline at Wait/Signal/Broadcast
// sites.
func (h *orderHooks) checkCond(call *ast.CallExpr, held heldSet, inLoop bool) {
	recv, name, ok := callReceiver(h.pkg.Info, call)
	if !ok || !isNamedType(recv, "sync", "Cond") {
		return
	}
	switch name {
	case "Wait", "Signal", "Broadcast":
	default:
		return
	}
	condID, _ := condIdent(h.pkg, mutexRecv(call))
	guard := ""
	if condID != "" {
		guard = h.lo.condGuards[condID]
	}
	holdsGuard := false
	if guard != "" {
		for _, hl := range held {
			if id, _ := lockIdent(h.pkg, hl.expr); id == guard {
				holdsGuard = true
				break
			}
		}
	}
	switch name {
	case "Wait":
		if !inLoop {
			h.lo.pass.Report(h.pkg, call.Pos(), "sync.Cond.Wait outside a rechecked-condition loop: a wakeup is a hint, not a guarantee — re-check the predicate in a for loop")
		}
		if guard != "" && !holdsGuard {
			h.lo.pass.Report(h.pkg, call.Pos(), "sync.Cond.Wait without holding its lock %s", shortLockID(guard))
		}
	case "Signal", "Broadcast":
		if guard != "" && !holdsGuard {
			h.lo.pass.Report(h.pkg, call.Pos(), "sync.Cond.%s without the guarding lock %s held: the wake can land between a waiter's re-check and its Wait and be lost", name, shortLockID(guard))
		}
	}
}

func (lo *lockOrder) addEdge(from, to string, pkg *Package, pos token.Pos) {
	m := lo.edges[from]
	if m == nil {
		m = make(map[string]lockEdge)
		lo.edges[from] = m
	}
	if old, ok := m[to]; !ok || pos < old.pos {
		m[to] = lockEdge{pkg: pkg, pos: pos}
	}
}

// collectCondGuards scans every file for sync.NewCond calls and maps
// the cond destination to the lock named by a &<mutex> argument.
func (lo *lockOrder) collectCondGuards() {
	conflicted := make(map[string]bool)
	record := func(pkg *Package, dst ast.Expr, arg ast.Expr) {
		condID, _ := condIdent(pkg, dst)
		if condID == "" {
			return
		}
		guard := ""
		if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && u.Op == token.AND {
			if id, _ := lockIdent(pkg, u.X); id != "" {
				guard = id
			}
		}
		if prev, ok := lo.condGuards[condID]; ok && prev != guard {
			conflicted[condID] = true
		}
		lo.condGuards[condID] = guard
	}
	for _, pkg := range lo.pass.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for i, rhs := range n.Rhs {
						if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isPkgFunc(pkg.Info, call, "sync", "NewCond") && len(call.Args) == 1 && i < len(n.Lhs) {
							record(pkg, n.Lhs[i], call.Args[0])
						}
					}
				case *ast.ValueSpec:
					for i, v := range n.Values {
						if call, ok := ast.Unparen(v).(*ast.CallExpr); ok && isPkgFunc(pkg.Info, call, "sync", "NewCond") && len(call.Args) == 1 && i < len(n.Names) {
							record(pkg, n.Names[i], call.Args[0])
						}
					}
				case *ast.CompositeLit:
					tv, ok := pkg.Info.Types[n]
					if !ok {
						return true
					}
					named := namedOf(tv.Type)
					if named == nil || named.Obj().Pkg() == nil {
						return true
					}
					for _, el := range n.Elts {
						kv, ok := el.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						key, ok := kv.Key.(*ast.Ident)
						if !ok {
							continue
						}
						if call, ok := ast.Unparen(kv.Value).(*ast.CallExpr); ok && isPkgFunc(pkg.Info, call, "sync", "NewCond") && len(call.Args) == 1 {
							condID := named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + key.Name
							guard := ""
							if u, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr); ok && u.Op == token.AND {
								if id, _ := lockIdent(pkg, u.X); id != "" {
									guard = id
								}
							}
							if prev, ok := lo.condGuards[condID]; ok && prev != guard {
								conflicted[condID] = true
							}
							lo.condGuards[condID] = guard
						}
					}
				}
				return true
			})
		}
	}
	for id := range conflicted {
		lo.condGuards[id] = ""
	}
}

// reportCycles finds strongly connected components of the acquisition
// graph and reports one diagnostic per cycle, anchored at its earliest
// witnessing acquisition.
func (lo *lockOrder) reportCycles() {
	nodes := make([]string, 0, len(lo.edges))
	seen := make(map[string]bool)
	for from, tos := range lo.edges {
		if !seen[from] {
			seen[from] = true
			nodes = append(nodes, from)
		}
		for to := range tos {
			if !seen[to] {
				seen[to] = true
				nodes = append(nodes, to)
			}
		}
	}
	sort.Strings(nodes)
	succ := func(id string) []string {
		tos := make([]string, 0, len(lo.edges[id]))
		for to := range lo.edges[id] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		return tos
	}
	for _, comp := range tarjanIDs(nodes, succ) {
		if len(comp) == 1 {
			id := comp[0]
			if _, self := lo.edges[id][id]; !self {
				continue
			}
		}
		lo.reportCycle(comp)
	}
}

// reportCycle reconstructs one concrete cycle through the component
// and reports it.
func (lo *lockOrder) reportCycle(comp []string) {
	inComp := make(map[string]bool, len(comp))
	for _, id := range comp {
		inComp[id] = true
	}
	start := comp[0] // comp is sorted; deterministic anchor
	// DFS for a path start -> ... -> start inside the component.
	var path []string
	var dfs func(id string) bool
	visited := make(map[string]bool)
	dfs = func(id string) bool {
		tos := make([]string, 0, len(lo.edges[id]))
		for to := range lo.edges[id] {
			if inComp[to] {
				tos = append(tos, to)
			}
		}
		sort.Strings(tos)
		for _, to := range tos {
			if to == start {
				path = append(path, to)
				return true
			}
			if visited[to] {
				continue
			}
			visited[to] = true
			path = append(path, to)
			if dfs(to) {
				return true
			}
			path = path[:len(path)-1]
		}
		return false
	}
	if !dfs(start) {
		return // unreachable for a real SCC; stay silent rather than lie
	}

	var b strings.Builder
	fmt.Fprintf(&b, "lock ordering cycle: %s", shortLockID(start))
	prev := start
	var anchor lockEdge
	for _, to := range path {
		e := lo.edges[prev][to]
		if anchor.pkg == nil || e.pos < anchor.pos {
			anchor = e
		}
		p := e.pkg.Fset.Position(e.pos)
		fmt.Fprintf(&b, " -> %s (%s:%d)", shortLockID(to), filepath.Base(p.Filename), p.Line)
		prev = to
	}
	b.WriteString("; consistent acquisition order required")
	lo.pass.Report(anchor.pkg, anchor.pos, "%s", b.String())
}

// tarjanIDs computes SCCs over string ids (recursive: lock graphs are
// tiny). Components come out in reverse topological order; each is
// sorted.
func tarjanIDs(nodes []string, succ func(string) []string) [][]string {
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var sccs [][]string
	next := 0
	var strong func(v string)
	strong = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range succ(v) {
			if _, ok := index[w]; !ok {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Strings(comp)
			sccs = append(sccs, comp)
		}
	}
	for _, v := range nodes {
		if _, ok := index[v]; !ok {
			strong(v)
		}
	}
	return sccs
}

// lockIdent computes a stable identity for a mutex (or cond) holder
// expression. Struct fields collapse to "pkgpath.Type.field" — the
// granularity lock-order analysis wants: ordering is a property of the
// code paths touching a field, not of one instance. Package-level vars
// are "pkgpath.name". Locals get a function-scoped identity usable for
// guard matching but excluded (global=false) from the acquisition
// graph, where cross-function identity would be meaningless.
func lockIdent(pkg *Package, e ast.Expr) (id string, global bool) {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if n := namedOf(sel.Recv()); n != nil && n.Obj().Pkg() != nil {
				return n.Obj().Pkg().Path() + "." + n.Obj().Name() + "." + e.Sel.Name, true
			}
			return "", false
		}
		if v, ok := pkg.Info.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil && pkgLevel(v) {
			return v.Pkg().Path() + "." + v.Name(), true
		}
	case *ast.Ident:
		v, ok := pkg.Info.Uses[e].(*types.Var)
		if !ok {
			v, ok = pkg.Info.Defs[e].(*types.Var)
		}
		if ok {
			if pkgLevel(v) && v.Pkg() != nil {
				return v.Pkg().Path() + "." + v.Name(), true
			}
			return fmt.Sprintf("local@%d.%s", v.Pos(), v.Name()), false
		}
	}
	return "", false
}

// condIdent is lockIdent for sync.Cond expressions (identical rules).
func condIdent(pkg *Package, e ast.Expr) (string, bool) {
	return lockIdent(pkg, e)
}

// shortLockID trims the module prefix for readable diagnostics:
// "rnb/internal/memcache.Pool.mu" -> "memcache.Pool.mu".
func shortLockID(id string) string {
	if i := strings.LastIndexByte(id, '/'); i >= 0 {
		return id[i+1:]
	}
	return id
}
