package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// lockWalker is the CFG engine shared by lockheld and lockorder: it
// threads a held-mutex set through a function body — straight-line
// code, branches (a path that unlocks and returns does not poison the
// code after the branch), and loops — and fires hooks at mutex
// acquisitions, blocking operations, and call sites. Function literals
// start with a clean slate: they run at some other time, under some
// other goroutine's locks.
type lockWalker struct {
	pkg   *Package
	hooks lockHooks
	loop  int // current for/range nesting depth, literals reset it
}

// lockHooks receives the walker's events. Every hook gets the held set
// at the event point; hooks decide what held-state means.
type lockHooks interface {
	// acquire fires just before a sync.Mutex/RWMutex Lock or RLock
	// takes effect; held is the set already held at that point.
	acquire(recv ast.Expr, op string, call *ast.CallExpr, held heldSet)
	// blocking fires at channel sends and receives, blocking selects,
	// and ranges over channels.
	blocking(pos token.Pos, label string, held heldSet)
	// call fires at every synchronous call expression (mutex ops, `go`
	// calls, and deferred calls excluded). inLoop reports whether the
	// call sits inside a for/range body of the same function — the
	// lexical signal lockorder's Cond.Wait recheck rule keys on.
	call(call *ast.CallExpr, held heldSet, inLoop bool)
}

// heldLock records one held mutex: where it was locked and the
// receiver expression it was locked through.
type heldLock struct {
	pos  token.Pos
	expr ast.Expr
}

// heldSet maps the printed form of a mutex expression ("c.mu") to its
// acquisition record.
type heldSet map[string]heldLock

func newHeldSet() heldSet { return heldSet{} }

func (h heldSet) clone() heldSet {
	c := make(heldSet, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// intersect keeps only mutexes held in both sets — the merge rule at
// control-flow joins, chosen to under-approximate "held" so a branch
// that unlocks cannot cause false positives downstream.
func (h heldSet) intersect(o heldSet) heldSet {
	c := make(heldSet)
	for k, v := range h {
		if _, ok := o[k]; ok {
			c[k] = v
		}
	}
	return c
}

// walkFunc runs the walker over one function body.
func (l *lockWalker) walkFunc(body *ast.BlockStmt) {
	l.block(body.List, newHeldSet())
}

// block processes a statement list sequentially, threading lock state
// through it, and returns the state at its end.
func (l *lockWalker) block(stmts []ast.Stmt, held heldSet) heldSet {
	for _, s := range stmts {
		held = l.stmt(s, held)
	}
	return held
}

// terminates reports whether a statement list ends by leaving the
// enclosing flow (return, branch, panic), so its lock state cannot
// reach the code after the construct it belongs to.
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch s := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func (l *lockWalker) stmt(s ast.Stmt, held heldSet) heldSet {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if name, ok := l.mutexOp(call); ok {
				switch name {
				case "Lock", "RLock":
					l.hooks.acquire(mutexRecv(call), name, call, held)
					held[types.ExprString(mutexRecv(call))] = heldLock{pos: call.Pos(), expr: mutexRecv(call)}
				case "Unlock", "RUnlock":
					delete(held, types.ExprString(mutexRecv(call)))
				}
				return held
			}
		}
		l.checkExpr(s.X, held)
		return held
	case *ast.DeferStmt:
		// A deferred unlock keeps the mutex held to the end of the
		// function (correct: later statements still run locked). The
		// deferred call's own body, if a literal, starts lock-free.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			l.walkLit(lit)
		}
		return held
	case *ast.GoStmt:
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			l.walkLit(lit)
		}
		l.checkArgs(s.Call, held)
		return held
	case *ast.SendStmt:
		l.hooks.blocking(s.Pos(), "channel send", held)
		return held
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			l.hooks.blocking(s.Pos(), "blocking select", held)
		}
		out := held.clone()
		first := true
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			after := l.block(cc.Body, held.clone())
			if terminates(cc.Body) {
				continue
			}
			if first {
				out, first = after, false
			} else {
				out = out.intersect(after)
			}
		}
		return out
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			l.checkExpr(e, held)
		}
		for _, e := range s.Lhs {
			l.checkExpr(e, held)
		}
		return held
	case *ast.DeclStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				l.checkExpr(e, held)
				return false
			}
			return true
		})
		return held
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			l.checkExpr(e, held)
		}
		return held
	case *ast.IfStmt:
		if s.Init != nil {
			held = l.stmt(s.Init, held)
		}
		l.checkExpr(s.Cond, held)
		thenOut := l.block(s.Body.List, held.clone())
		thenTerm := terminates(s.Body.List)
		elseOut := held.clone()
		elseTerm := false
		if s.Else != nil {
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				elseOut = l.block(e.List, held.clone())
				elseTerm = terminates(e.List)
			default:
				elseOut = l.stmt(s.Else, held.clone())
			}
		}
		switch {
		case thenTerm && elseTerm:
			return held
		case thenTerm:
			return elseOut
		case elseTerm:
			return thenOut
		default:
			return thenOut.intersect(elseOut)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			held = l.stmt(s.Init, held)
		}
		if s.Cond != nil {
			l.checkExpr(s.Cond, held)
		}
		l.loop++
		body := l.block(s.Body.List, held.clone())
		l.loop--
		if s.Post != nil {
			l.stmt(s.Post, body)
		}
		return held.intersect(body)
	case *ast.RangeStmt:
		l.checkExpr(s.X, held)
		if tv, ok := l.pkg.Info.Types[s.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				l.hooks.blocking(s.Pos(), "range over channel", held)
			}
		}
		l.loop++
		body := l.block(s.Body.List, held.clone())
		l.loop--
		return held.intersect(body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = l.stmt(s.Init, held)
		}
		if s.Tag != nil {
			l.checkExpr(s.Tag, held)
		}
		return l.caseClauses(s.Body.List, held)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held = l.stmt(s.Init, held)
		}
		return l.caseClauses(s.Body.List, held)
	case *ast.BlockStmt:
		return l.block(s.List, held.clone()).intersect(held.clone())
	case *ast.LabeledStmt:
		return l.stmt(s.Stmt, held)
	}
	return held
}

func (l *lockWalker) caseClauses(clauses []ast.Stmt, held heldSet) heldSet {
	out := held.clone() // no case may match (or empty switch)
	for _, c := range clauses {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			l.checkExpr(e, held)
		}
		after := l.block(cc.Body, held.clone())
		if !terminates(cc.Body) {
			out = out.intersect(after)
		}
	}
	return out
}

// walkLit analyzes a function literal's body with a clean slate: no
// held locks and a loop depth of zero (the literal may run far from
// the loop it is written in).
func (l *lockWalker) walkLit(lit *ast.FuncLit) {
	outer := l.loop
	l.loop = 0
	l.block(lit.Body.List, newHeldSet())
	l.loop = outer
}

// mutexOp reports whether call is Lock/RLock/Unlock/RUnlock on a
// sync.Mutex or sync.RWMutex receiver.
func (l *lockWalker) mutexOp(call *ast.CallExpr) (string, bool) {
	recv, name, ok := callReceiver(l.pkg.Info, call)
	if !ok {
		return "", false
	}
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", false
	}
	if isNamedType(recv, "sync", "Mutex") || isNamedType(recv, "sync", "RWMutex") {
		return name, true
	}
	return "", false
}

// mutexRecv returns the receiver expression of a method call
// ("c.mu" in "c.mu.Lock()").
func mutexRecv(call *ast.CallExpr) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return call.Fun
}

// checkExpr walks an expression firing receive/call hooks. Function
// literals start with a clean slate.
func (l *lockWalker) checkExpr(e ast.Expr, held heldSet) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			l.walkLit(n)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				l.hooks.blocking(n.Pos(), "channel receive", held)
			}
		case *ast.CallExpr:
			l.hooks.call(n, held, l.loop > 0)
		}
		return true
	})
}

func (l *lockWalker) checkArgs(call *ast.CallExpr, held heldSet) {
	for _, a := range call.Args {
		l.checkExpr(a, held)
	}
}
