package lint

import (
	"go/ast"
	"regexp"
	"strings"
)

// MetricName promotes the obs registry's runtime name validation to a
// compile gate. Every string-literal name (or prefix) passed to a
// Registry registration call must match the Prometheus name grammar,
// duration histograms must be named *_seconds, and no family may end
// in another unit suffix (_ms, _ns, ...) — the unit-drift guard that
// currently panics at first scrape moves to `make lint`, where it
// fails before the binary ever runs. Names computed at runtime are
// out of scope (the registry still panics on those).
//
// Production registrations must also live in one of the repo's
// sanctioned namespaces (rnb_, proxy_, memd_ — e.g. the rnb_trace_*
// sampling counters and the memd_* server phase histograms), so a new
// family can't silently open a fourth namespace or drop the prefix the
// dashboards key on. Test files are exempt — they register throwaway
// names on purpose — via the framework's per-analyzer opt-out
// (ExemptTestFiles), not a loader gap: the loader hands every analyzer
// the test files, and each analyzer declares its own test-file policy.
var MetricName = &Analyzer{
	Name:            "metricname",
	Doc:             "metric registration literals must match the Prometheus grammar, use a sanctioned namespace, and name duration families *_seconds",
	ExemptTestFiles: true,
	Run:             runMetricName,
}

// metricNamespaces are the sanctioned family prefixes: client (rnb_,
// including rnb_trace_*), proxy (proxy_), and server daemon (memd_).
var metricNamespaces = []string{"rnb_", "proxy_", "memd_"}

// promNameRE is the Prometheus metric name grammar, as enforced at
// runtime by internal/obs.
var promNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// wrongUnitSuffixes are duration-ish suffixes that indicate unit drift
// away from the repo's seconds-only export policy.
var wrongUnitSuffixes = []string{
	"_ns", "_nanos", "_nanoseconds", "_us", "_micros", "_microseconds",
	"_ms", "_millis", "_milliseconds", "_minutes", "_hours",
}

// registryMethods maps registration method names (on any type named
// Registry) to whether the name argument is a full family name or a
// prefix.
var registryMethods = map[string]bool{ // method -> isPrefix
	"Register": false, "RegisterFunc": false, "RegisterDurationHist": false,
	"RegisterUint64Map": true, "RegisterInt64Map": true,
}

func runMetricName(pass *Pass) {
	pkgs, report := pass.Pkgs, pass.Report
	for _, pkg := range pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				recv, method, ok := callReceiver(info, call)
				if !ok {
					return true
				}
				isPrefix, ok := registryMethods[method]
				if !ok || len(call.Args) == 0 {
					return true
				}
				if n := namedOf(recv); n == nil || n.Obj().Name() != "Registry" {
					return true
				}
				name, ok := stringLit(info, call.Args[0])
				if !ok {
					return true // runtime-computed; registry validates at startup
				}
				if !promNameRE.MatchString(name) {
					report(pkg, call.Args[0].Pos(),
						"metric %s %q does not match the Prometheus name grammar [a-zA-Z_:][a-zA-Z0-9_:]*",
						argKind(isPrefix), name)
					return true
				}
				if method == "RegisterDurationHist" && !strings.HasSuffix(name, "_seconds") {
					report(pkg, call.Args[0].Pos(),
						"duration histogram %q must be named *_seconds (durations are exported in seconds)", name)
					return true
				}
				if !hasMetricNamespace(name) {
					report(pkg, call.Args[0].Pos(),
						"metric %s %q is outside the sanctioned namespaces (%s)",
						argKind(isPrefix), name, strings.Join(metricNamespaces, ", "))
					return true
				}
				if !isPrefix {
					for _, suf := range wrongUnitSuffixes {
						if strings.HasSuffix(name, suf) {
							report(pkg, call.Args[0].Pos(),
								"metric name %q ends in %q; durations are exported in seconds (*_seconds)", name, suf)
							break
						}
					}
				}
				return true
			})
		}
	}
}

func argKind(isPrefix bool) string {
	if isPrefix {
		return "prefix"
	}
	return "name"
}

// hasMetricNamespace reports whether name lives in a sanctioned family
// namespace.
func hasMetricNamespace(name string) bool {
	for _, ns := range metricNamespaces {
		if strings.HasPrefix(name, ns) {
			return true
		}
	}
	return false
}
