package lint

import (
	"strings"
	"testing"
)

// TestHistoricalRegressions loads the distilled reproductions of bugs
// that actually shipped in this repo and asserts the suite still
// catches each one. These fixtures are the analyzers' reason to exist:
// if a refactor of the framework ever stops flagging them, that is a
// regression no matter how green everything else is. CI runs this as
// its own "regression lint" step (make lint-regress).
func TestHistoricalRegressions(t *testing.T) {
	cases := []struct {
		name     string // historical bug, for the failure message
		pattern  string
		analyzer string
		want     []string // message substrings that must each appear
	}{
		{
			// The binary-transport pool's dial-slot limiter: releaseSlot
			// broadcast after dropping the lock, and the slow path waited
			// on the condition outside a re-checked loop — under churn,
			// wakeups were lost and dialers parked forever.
			name:     "dial-slot cond misuse (pool deadlock)",
			pattern:  "./testdata/src/regress/dialslot",
			analyzer: "lockorder",
			want: []string{
				"sync.Cond.Broadcast without the guarding lock",
				"outside a rechecked-condition loop",
			},
		},
		{
			// The adaptive placement's SetBase wrote the new base into
			// the currently published snapshot in place, so in-flight
			// readers saw a base inconsistent with the rest of the value.
			name:     "SetBase published-snapshot mutation",
			pattern:  "./testdata/src/regress/setbase",
			analyzer: "frozen",
			want: []string{
				"write to field base of a published setbase.placement value",
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.analyzer, func(t *testing.T) {
			pkgs, err := Load(".", tc.pattern)
			if err != nil {
				t.Fatalf("load %s: %v", tc.pattern, err)
			}
			diags := Run(pkgs, Analyzers())
			for _, want := range tc.want {
				found := false
				for _, d := range diags {
					if d.Analyzer == tc.analyzer && strings.Contains(d.Message, want) {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("%s: %s no longer reports %q — the historical bug would ship again.\ngot:\n%s",
						tc.name, tc.analyzer, want, renderDiags(diags))
				}
			}
		})
	}
}

func renderDiags(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString("  " + d.String() + "\n")
	}
	if b.Len() == 0 {
		return "  (no diagnostics)"
	}
	return b.String()
}
