package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SeededRand keeps the experiment pipeline reproducible: inside the
// simulation and workload packages (any package with a path segment
// in seededRandSegments), the global math/rand generator is forbidden
// — its stream is shared, seedable from anywhere, and (since Go 1.20)
// randomly seeded — and rand.New sources must not be seeded from the
// clock. Every RNG in those packages flows from an explicit seed in
// the experiment config, which is what makes `rnbsim` runs, the
// paper-figure reproductions, and the chaos fault mixes replayable.
var SeededRand = &Analyzer{
	Name: "seededrand",
	Doc:  "experiment packages must use explicitly seeded RNGs, never global math/rand or clock seeds",
	Run:  runSeededRand,
}

// seededRandSegments are the path segments naming determinism-critical
// packages.
var seededRandSegments = map[string]bool{
	"sim": true, "workload": true, "chaos": true, "hotspot": true,
}

// randConstructors are allowed package-level functions of math/rand
// (and v2): building a generator is fine, the analyzer polices how it
// is seeded and that the global stream stays untouched.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 constructors
	"NewPCG": true, "NewChaCha8": true,
}

func seededRandApplies(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if seededRandSegments[seg] {
			return true
		}
	}
	return false
}

func runSeededRand(pass *Pass) {
	pkgs, report := pass.Pkgs, pass.Report
	for _, pkg := range pkgs {
		if !seededRandApplies(strings.TrimSuffix(pkg.Path, "_test")) {
			continue
		}
		info := pkg.Info
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(info, call)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				path := fn.Pkg().Path()
				if path != "math/rand" && path != "math/rand/v2" {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true // methods on *rand.Rand / *rand.Zipf are fine
				}
				if !randConstructors[fn.Name()] {
					report(pkg, call.Pos(), "global %s.%s in a determinism-critical package; use an explicitly seeded *rand.Rand", path, fn.Name())
					return true
				}
				// Constructor: reject clock-derived seeds anywhere in the
				// arguments (time.Now().UnixNano() and friends).
				for _, arg := range call.Args {
					if pos, found := clockCall(info, arg); found {
						report(pkg, pos, "%s.%s seeded from the clock; thread an explicit seed through the config", path, fn.Name())
					}
				}
				return true
			})
		}
	}
}

// clockCall finds a call to time.Now (or time.Since) inside e.
func clockCall(info *types.Info, e ast.Expr) (pos token.Pos, found bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isPkgFunc(info, call, "time", "Now") || isPkgFunc(info, call, "time", "Since") {
			pos, found = call.Pos(), true
			return false
		}
		return true
	})
	return pos, found
}
