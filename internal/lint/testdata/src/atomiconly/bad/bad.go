// Package bad mixes sync/atomic and plain accesses to the same
// fields — the data-race class atomiconly exists to catch.
package bad

import "sync/atomic"

type counters struct {
	hits    uint64
	misses  uint64
	buckets []uint64
}

func (c *counters) record(i int) {
	atomic.AddUint64(&c.hits, 1)
	atomic.AddUint64(&c.misses, 1)
	atomic.AddUint64(&c.buckets[i], 1)
}

func (c *counters) snapshotRacy() uint64 {
	return c.hits // want atomiconly "field bad.counters.hits is accessed with sync/atomic elsewhere"
}

func (c *counters) resetRacy() {
	c.misses = 0 // want atomiconly "field bad.counters.misses is accessed with sync/atomic elsewhere"
}

func (c *counters) bucketRacy() uint64 {
	return c.buckets[0] // want atomiconly "elements of bad.counters.buckets are accessed with sync/atomic elsewhere"
}
