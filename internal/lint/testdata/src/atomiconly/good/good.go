// Package good uses sync/atomic consistently: every access to an
// atomic field goes through the atomic API (or the typed wrappers,
// which cannot be misused), and plainly-accessed fields never appear
// as atomic operands.
package good

import "sync/atomic"

type counters struct {
	hits    uint64
	typed   atomic.Uint64
	plain   int
	buckets []uint64
}

func (c *counters) record(i int) {
	atomic.AddUint64(&c.hits, 1)
	c.typed.Add(1)
	atomic.AddUint64(&c.buckets[i], 1)
	c.plain++ // never touched atomically: plain access is fine
}

func (c *counters) snapshot() (uint64, uint64) {
	return atomic.LoadUint64(&c.hits), c.typed.Load()
}

func (c *counters) bucketSum() uint64 {
	var sum uint64
	for i := range c.buckets { // reading the slice header, not elements
		sum += atomic.LoadUint64(&c.buckets[i])
	}
	return sum
}
