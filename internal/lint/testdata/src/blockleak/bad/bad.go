// Package bad leaks goroutines: blocking operations reachable from a
// go statement with no escape edge anywhere in the program — receives
// nobody sends to, sends nobody receives, ranges over channels never
// closed, Cond.Waits never notified, WaitGroup.Waits never Done'd —
// both directly in goroutine literals and through called functions.
package bad

import "sync"

type worker struct {
	quit chan struct{}
	jobs chan int
	n    int
}

// recvNoSender parks forever: nothing ever sends on or closes idle.
func recvNoSender() {
	idle := make(chan struct{})
	go func() {
		<-idle // want blockleak "has no send or close"
	}()
}

// sendNoReceiver parks forever: the channel is unbuffered and nobody
// receives.
func sendNoReceiver() {
	res := make(chan int)
	go func() {
		res <- 42 // want blockleak "has no receiver or buffer"
	}()
}

// rangeNeverClosed can never leave the loop: no close(w.jobs) exists.
func rangeNeverClosed(w *worker) {
	go func() {
		for j := range w.jobs { // want blockleak "never closed"
			w.n += j
		}
	}()
}

// blockInCallee leaks through a call: the go statement launches a
// named function whose body blocks on the quit field nothing closes.
func blockInCallee(w *worker) {
	go awaitQuit(w)
}

func awaitQuit(w *worker) {
	<-w.quit // want blockleak "has no send or close"
}

type gate struct {
	mu    sync.Mutex
	cond  *sync.Cond
	ready bool
}

func newGate() *gate {
	g := &gate{}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// waitNeverNotified: no Signal or Broadcast on gate.cond exists
// anywhere, so the waiter sleeps forever.
func waitNeverNotified(g *gate) {
	go func() {
		g.mu.Lock()
		for !g.ready {
			g.cond.Wait() // want blockleak "no Signal or Broadcast"
		}
		g.mu.Unlock()
	}()
}

// wgNeverDone: Add without a single Done leaves Wait parked forever.
func wgNeverDone() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		wg.Wait() // want blockleak "Done is never called"
	}()
}

// selectNoViableArm: every arm is trackable and none can ever fire.
func selectNoViableArm() {
	never := make(chan int)
	go func() {
		select { // want blockleak "no select arm can ever proceed"
		case <-never:
		}
	}()
}
