// Package good holds goroutine shapes blockleak must accept: shutdown
// select arms, channels closed or drained elsewhere, buffered error
// sends, WaitGroups with Done, channels handed to foreign code
// (signal.Notify), and parameters (whose escape edges belong to the
// caller).
package good

import (
	"os"
	"os/signal"
	"sync"
	"time"
)

type server struct {
	quit chan struct{}
	jobs chan int
	n    int
}

// loopWithShutdown blocks only in a select that carries a shutdown
// arm; Stop closes quit.
func (s *server) loopWithShutdown() {
	go func() {
		for {
			select {
			case j := <-s.jobs:
				s.n += j
			case <-s.quit:
				return
			}
		}
	}()
}

// Stop is the escape edge for quit.
func (s *server) Stop() {
	close(s.quit)
}

// Feed is the escape edge for jobs.
func (s *server) Feed(j int) {
	s.jobs <- j
}

// bufferedErrSend never blocks: capacity one, sender is the only
// writer.
func bufferedErrSend(run func() error) {
	errCh := make(chan error, 1)
	go func() {
		errCh <- run()
	}()
}

// timerFallback's second arm is a call result the analyzer cannot
// track — exactly the shutdown/timeout arm convention.
func (s *server) timerFallback() {
	go func() {
		select {
		case j := <-s.jobs:
			s.n += j
		case <-time.After(time.Second):
		}
	}()
}

// wgWithDone: every Add is paired with a deferred Done.
func wgWithDone(work []func()) {
	var wg sync.WaitGroup
	for _, f := range work {
		wg.Add(1)
		go func(f func()) {
			defer wg.Done()
			f()
		}(f)
	}
	go func() {
		wg.Wait()
	}()
}

// signalWait hands its channel to the runtime: foreign code sends on
// it, so the receive is escapable even though no send is visible.
func signalWait() {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt)
	go func() {
		<-sigs
	}()
}

// paramBlock blocks on a parameter: the caller wired it up (and closes
// it), so the callee's view is not a leak.
func paramBlock(stop <-chan struct{}) {
	<-stop
}

func launchParamBlock() {
	stop := make(chan struct{})
	go paramBlock(stop)
	close(stop)
}
