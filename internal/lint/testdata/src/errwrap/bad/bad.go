// Package bad flattens error causes with %v/%s, breaking errors.Is
// and errors.As through the wrap.
package bad

import (
	"errors"
	"fmt"
)

var errSentinel = errors.New("sentinel")

func flattenV(err error) error {
	return fmt.Errorf("load failed: %v", err) // want errwrap "error operand formatted with %v"
}

func flattenS(err error) error {
	return fmt.Errorf("load failed: %s", err) // want errwrap "error operand formatted with %s"
}

func flattenSecondOperand(name string, err error) error {
	return fmt.Errorf("load %q: %v", name, err) // want errwrap "error operand formatted with %v"
}

func flattenAfterWrap(err error) error {
	return fmt.Errorf("%w: %v", errSentinel, err) // want errwrap "error operand formatted with %v"
}
