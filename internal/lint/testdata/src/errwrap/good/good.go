// Package good wraps error operands with %w and uses %v only for
// non-error values — nothing here should fire.
package good

import (
	"errors"
	"fmt"
)

var errSentinel = errors.New("sentinel")

func wrap(err error) error {
	return fmt.Errorf("load failed: %w", err)
}

func wrapTwo(err error) error {
	return fmt.Errorf("%w: %w", errSentinel, err)
}

func nonErrorOperands(name string, n int) error {
	return fmt.Errorf("bad size %v for %q at %d%%", n, name, n)
}

func starWidth(n int, err error) error {
	return fmt.Errorf("%*d: %w", 8, n, err)
}

func indexedFormatSkipped(err error) error {
	// Explicit argument indexes are out of scope; the analyzer must
	// skip rather than mis-map operands.
	return fmt.Errorf("%[1]v", err)
}
