// Package extest exists to prove external test packages
// ("package extest_test") are loaded and analyzed: for a long time the
// loader read the wrong go list field for them and they silently
// loaded as zero files. The library half is clean; the violation lives
// in extest_test.go.
package extest

// Double is just enough API for the external test to import.
func Double(n int) int { return 2 * n }
