// External test package: if the loader drops these files (the
// historical XTestGoFiles/GoFiles mixup), the want below goes
// unmatched and the golden test fails.
package extest_test

import (
	"testing"

	"rnb/internal/lint/testdata/src/extest"
)

func mustDouble(t *testing.T, n, want int) { // want thelper "test helper mustDouble must call t.Helper()"
	if got := extest.Double(n); got != want {
		t.Fatalf("Double(%d) = %d, want %d", n, got, want)
	}
}

func TestDouble(t *testing.T) {
	mustDouble(t, 2, 4)
}
