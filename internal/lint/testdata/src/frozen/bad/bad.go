// Package bad mutates //rnb:frozen-after-publish values after they
// escape: the Load-then-mutate shape, a direct write through a Load
// expression, a map-field write, mutation hidden behind a helper call
// (visible only through mutation summaries), and write-after-Store.
package bad

import "sync/atomic"

// snap is a lock-free snapshot: readers Load it and trust it never to
// change.
//
//rnb:frozen-after-publish
type snap struct {
	count int
	names map[string]int
}

type holder struct {
	cur atomic.Pointer[snap]
}

// loadThenMutate edits the very snapshot concurrent readers hold.
func loadThenMutate(h *holder) {
	s := h.cur.Load()
	s.count++ // want frozen "write to field count of a published bad.snap value"
}

// directExprWrite does it without even naming a variable.
func directExprWrite(h *holder) {
	h.cur.Load().count = 7 // want frozen "write to field count of a published bad.snap value"
}

// mapFieldWrite mutates shared state through a map field — the write
// goes through the element, but the snapshot is what changed.
func mapFieldWrite(h *holder) {
	s := h.cur.Load()
	s.names["x"] = 1 // want frozen "write to field names of a published bad.snap value"
}

// reset writes through its parameter; calling it with a published
// value is the violation, at the call site.
func reset(s *snap) {
	s.count = 0
}

func viaHelper(h *holder) {
	s := h.cur.Load()
	reset(s) // want frozen "mutates a published bad.snap value"
}

// publishThenWrite builds a fresh snapshot (fine), stores it, then
// keeps writing through the old alias.
func publishThenWrite(h *holder) {
	s := &snap{names: map[string]int{}}
	s.count = 1 // fresh: mutation is the point
	h.cur.Store(s)
	s.count = 2 // want frozen "write to field count of a published bad.snap value"
}
