// Package good holds the copy-on-write patterns frozen must accept:
// constructor mutation before publish, clone-then-mutate-then-
// republish, plain reads of published snapshots, and loops that build
// a fresh value every iteration.
package good

import "sync/atomic"

// view is a published-immutable snapshot.
//
//rnb:frozen-after-publish
type view struct {
	count int
	names map[string]int
}

type keeper struct {
	cur atomic.Pointer[view]
}

// newView mutates freely before the value ever escapes.
func newView(n int) *view {
	v := &view{names: map[string]int{}}
	v.count = n
	v.names["init"] = n
	return v
}

// clone returns a private copy the caller may edit.
func clone(v *view) *view {
	c := &view{count: v.count, names: map[string]int{}}
	for k, val := range v.names {
		c.names[k] = val
	}
	return c
}

// swap is the sanctioned update path: clone the published value,
// mutate the clone, republish.
func (k *keeper) swap(delta int) {
	old := k.cur.Load()
	next := clone(old) // a call returning a frozen type hands back a fresh value
	next.count += delta
	next.names["last"] = delta
	k.cur.Store(next)
}

// read only reads: published values are for reading.
func (k *keeper) read() int {
	v := k.cur.Load()
	return v.count + len(v.names)
}

// rebuildLoop publishes a fresh value every iteration; the write at
// the top of the body always touches the new one, never the one
// published at the bottom.
func (k *keeper) rebuildLoop(rounds int) {
	for i := 0; i < rounds; i++ {
		v := &view{names: map[string]int{}}
		v.count = i
		k.cur.Store(v)
	}
}
