// Package bad holds lockheld violations: blocking operations while a
// sync mutex is held. Each flagged line carries a want expectation.
package bad

import (
	"net"
	"sync"
	"time"
)

type server struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	ch   chan int
	wg   sync.WaitGroup
	conn net.Conn
}

func (s *server) sleepUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) // want lockheld "time.Sleep while s.mu is held"
}

func (s *server) sendUnderLock(v int) {
	s.mu.Lock()
	s.ch <- v // want lockheld "channel send while s.mu is held"
	s.mu.Unlock()
}

func (s *server) recvUnderRLock() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return <-s.ch // want lockheld "channel receive while s.rw is held"
}

func (s *server) selectUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want lockheld "blocking select while s.mu is held"
	case v := <-s.ch:
		_ = v
	case s.ch <- 1:
	}
}

func (s *server) waitUnderLock() {
	s.mu.Lock()
	s.wg.Wait() // want lockheld "WaitGroup.Wait while s.mu is held"
	s.mu.Unlock()
}

func (s *server) dialUnderLock(addr string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	conn, err := net.Dial("tcp", addr) // want lockheld "net.Dial while s.mu is held"
	if err != nil {
		return err
	}
	s.conn = conn
	return nil
}

func (s *server) writeUnderLock(p []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.conn.Write(p) // want lockheld "net conn Write while s.mu is held"
}

func (s *server) rangeUnderLock() (sum int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for v := range s.ch { // want lockheld "range over channel while s.mu is held"
		sum += v
	}
	return sum
}

// relockThenBlock checks that state tracking survives an unlock/lock
// pair: the second critical section is flagged, not the gap.
func (s *server) relockThenBlock() {
	s.mu.Lock()
	s.mu.Unlock()
	time.Sleep(time.Millisecond) // not held here
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want lockheld "time.Sleep while s.mu is held"
	s.mu.Unlock()
}
