// Package good holds lock-discipline patterns lockheld must accept:
// blocking only after unlocking, cond.Wait (which releases the lock),
// non-blocking selects, early-return unlock branches, and goroutines
// launched under a lock that block only in their own frame.
package good

import (
	"sync"
	"time"
)

type server struct {
	mu     sync.Mutex
	cond   *sync.Cond
	ch     chan int
	closed bool
	n      int
}

func (s *server) unlockThenSleep() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	time.Sleep(time.Millisecond)
}

func (s *server) condWait() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.n == 0 {
		s.cond.Wait() // releases s.mu while waiting: allowed
	}
}

func (s *server) nonBlockingSelect() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- 1:
		return true
	default:
		return false
	}
}

// earlyReturnBranch unlocks on the fast path and returns; the sleep
// after the branch runs unlocked on that path and is not reached
// locked on any path.
func (s *server) earlyReturnBranch() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.n++
	s.mu.Unlock()
	time.Sleep(time.Millisecond)
}

// goUnderLock launches a goroutine while holding the lock; the
// goroutine's own blocking runs in a frame that holds nothing.
func (s *server) goUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		time.Sleep(time.Millisecond)
		s.ch <- 1
	}()
}

// drain receives what goUnderLock's goroutine sends, giving the send
// its escape edge.
func (s *server) drain() int { return <-s.ch }

// deferredUnlockNoBlocking is the common pattern: a pure in-memory
// critical section under a deferred unlock.
func (s *server) deferredUnlockNoBlocking() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	return s.n
}
