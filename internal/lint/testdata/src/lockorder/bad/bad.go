// Package bad holds lock-order violations: an AB-BA cycle spelled
// directly, the same cycle hidden behind helper calls (visible only
// through acquisition summaries), a guaranteed self-deadlock, and the
// sync.Cond misuse shapes — Wait outside a rechecked-condition loop
// and notification without the guarding lock.
package bad

import "sync"

type left struct {
	mu sync.Mutex
	n  int
}

type right struct {
	mu sync.Mutex
	n  int
}

var gl left
var gr right

// lockLR and lockRL together form the classic AB-BA cycle; the report
// anchors at the earliest witnessing acquisition.
func lockLR() {
	gl.mu.Lock()
	gr.mu.Lock() // want lockorder "lock ordering cycle"
	gr.n++
	gr.mu.Unlock()
	gl.mu.Unlock()
}

func lockRL() {
	gr.mu.Lock()
	gl.mu.Lock()
	gl.n++
	gl.mu.Unlock()
	gr.mu.Unlock()
}

type up struct {
	mu sync.Mutex
	n  int
}

type down struct {
	mu sync.Mutex
	n  int
}

var gu up
var gd down

// The same cycle, laced through helpers: holdUpThenDown holds up.mu
// and calls a helper that (transitively) locks down.mu; the mirror
// function inverts the order. Neither function names both locks.
func holdUpThenDown() {
	gu.mu.Lock()
	bumpDown() // want lockorder "lock ordering cycle"
	gu.mu.Unlock()
}

func bumpDown() {
	gd.mu.Lock()
	gd.n++
	gd.mu.Unlock()
}

func holdDownThenUp() {
	gd.mu.Lock()
	bumpUp()
	gd.mu.Unlock()
}

func bumpUp() {
	gu.mu.Lock()
	gu.n++
	gu.mu.Unlock()
}

// relock takes the same mutex twice without unlocking: a guaranteed
// self-deadlock, reported at the second acquisition.
func relock() {
	gl.mu.Lock()
	gl.mu.Lock() // want lockorder "guaranteed self-deadlock"
	gl.mu.Unlock()
}

type queue struct {
	mu    sync.Mutex
	cond  *sync.Cond
	ready int
}

func newQueue() *queue {
	q := &queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// waitNoLoop re-checks the predicate only once: a spurious or stale
// wakeup slips straight past the check.
func (q *queue) waitNoLoop() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.ready == 0 {
		q.cond.Wait() // want lockorder "outside a rechecked-condition loop"
	}
	q.ready--
}

// signalUnlocked wakes waiters without holding the guard: the wake can
// land between a waiter's re-check and its Wait and be lost.
func (q *queue) signalUnlocked() {
	q.mu.Lock()
	q.ready++
	q.mu.Unlock()
	q.cond.Signal() // want lockorder "without the guarding lock"
}

// waitWithoutLock calls Wait without its lock held at all — that
// panics at runtime.
func (q *queue) waitWithoutLock() {
	for q.ready == 0 {
		q.cond.Wait() // want lockorder "without holding its lock"
	}
}
