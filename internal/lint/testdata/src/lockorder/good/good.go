// Package good holds lock patterns lockorder must accept: a
// consistent two-lock acquisition order (directly and through
// helpers), release-before-inverse-order, reader locks taken twice on
// different instances, and the full correct sync.Cond discipline.
package good

import "sync"

type outer struct {
	mu sync.Mutex
	n  int
}

type inner struct {
	mu sync.Mutex
	n  int
}

var go1 outer
var gi inner

// Everyone locks outer before inner: a DAG, not a cycle.
func outerThenInner() {
	go1.mu.Lock()
	gi.mu.Lock()
	gi.n++
	gi.mu.Unlock()
	go1.mu.Unlock()
}

func outerThenInnerViaHelper() {
	go1.mu.Lock()
	bumpInner()
	go1.mu.Unlock()
}

func bumpInner() {
	gi.mu.Lock()
	gi.n++
	gi.mu.Unlock()
}

// releaseThenInverse drops outer before taking inner on the "reverse"
// path, so no edge inner->outer ever forms.
func releaseThenInverse() {
	gi.mu.Lock()
	gi.n++
	gi.mu.Unlock()
	go1.mu.Lock()
	go1.n++
	go1.mu.Unlock()
}

// relockAfterUnlock reuses the same mutex sequentially: not a
// self-deadlock.
func relockAfterUnlock() {
	go1.mu.Lock()
	go1.n++
	go1.mu.Unlock()
	go1.mu.Lock()
	go1.n--
	go1.mu.Unlock()
}

type waiter struct {
	mu    sync.Mutex
	cond  *sync.Cond
	ready int
}

func newWaiter() *waiter {
	w := &waiter{}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// take is the canonical consumer: Wait under the lock, inside a loop
// that re-checks the predicate.
func (w *waiter) take() {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.ready == 0 {
		w.cond.Wait()
	}
	w.ready--
}

// put is the canonical producer: state change and notification both
// under the guard, so no wake can fall into a waiter's re-check gap.
func (w *waiter) put() {
	w.mu.Lock()
	w.ready++
	w.cond.Broadcast()
	w.mu.Unlock()
}
