// Package bad registers metrics whose literal names violate the
// Prometheus grammar or the seconds-only unit policy. The Registry
// type is a local stub: metricname keys on the type name and method
// set, so fixtures need not import internal/obs.
package bad

type Registry struct{}

func (r *Registry) Register(name, help, kind string, collect func() float64)       {}
func (r *Registry) RegisterDurationHist(name, help string)                         {}
func (r *Registry) RegisterUint64Map(prefix, help string, collect func() []uint64) {}

func register(r *Registry) {
	r.Register("rnb bad name", "spaces are not allowed", "gauge", nil) // want metricname "does not match the Prometheus name grammar"
	r.Register("9starts_with_digit", "leading digit", "gauge", nil)    // want metricname "does not match the Prometheus name grammar"
	r.RegisterDurationHist("rnb_req_latency", "missing unit suffix")   // want metricname "must be named *_seconds"
	r.Register("rnb_poll_interval_ms", "wrong unit", "gauge", nil)     // want metricname "durations are exported in seconds (*_seconds)"
	r.RegisterUint64Map("bad-prefix", "dashes are not allowed", nil)   // want metricname "does not match the Prometheus name grammar"
	r.Register("trace_started", "missing namespace", "counter", nil)   // want metricname "outside the sanctioned namespaces"
	r.RegisterUint64Map("cache_", "unknown namespace", nil)            // want metricname "outside the sanctioned namespaces"
}
