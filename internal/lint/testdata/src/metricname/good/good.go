// Package good registers metrics that satisfy the grammar and unit
// policy, plus the cases metricname must leave alone: runtime-computed
// names (the registry validates those at startup) and registration
// methods on types not named Registry.
package good

type Registry struct{}

func (r *Registry) Register(name, help, kind string, collect func() float64)       {}
func (r *Registry) RegisterDurationHist(name, help string)                         {}
func (r *Registry) RegisterUint64Map(prefix, help string, collect func() []uint64) {}

type fakeSink struct{}

func (fakeSink) Register(name, help, kind string, collect func() float64) {}

func register(r *Registry, dynamic string) {
	r.Register("rnb_pool_conns_active", "open connections", "gauge", nil)
	r.Register("rnb_hotspot_promotions_total", "promotions", "counter", nil)
	r.Register("rnb_trace_started", "head-sampled traces", "counter", nil)
	r.Register("proxy_requests", "proxy requests", "counter", nil)
	r.Register("memd_traced_transactions", "traced transactions", "counter", nil)
	r.RegisterDurationHist("rnb_request_latency_seconds", "request latency")
	r.RegisterDurationHist("memd_queue_wait_seconds", "server queue wait")
	r.RegisterUint64Map("rnb_server_ops", "per-server op counts", nil)
	r.Register(dynamic, "computed names are checked at startup", "gauge", nil)
	fakeSink{}.Register("not a metric name", "different receiver type", "gauge", nil)
}
