// In-package test file: metricname declares ExemptTestFiles, so this
// deliberately awful registration must produce no diagnostic (there is
// no want comment in this file — a finding here fails the golden test
// as unexpected). Tests register throwaway names on purpose.
package good

func registerThrowaway(r *Registry) {
	r.Register("totally bad name in a test", "exempt", "gauge", nil)
	r.RegisterDurationHist("test_latency_ms", "exempt too")
}
