// Package dialslot is the distilled reproduction of the pooled
// transport's historical dial-slot deadlock. The pool capped
// concurrent dials with a sync.Cond; the release path notified AFTER
// dropping the lock, and one waiter re-checked the predicate outside a
// loop. Under load, a release's wake landed in the window between a
// waiter's re-check and its Wait and was lost — every router then
// queued behind a slot nobody would ever signal again. lockorder must
// flag both halves of the shape forever.
package dialslot

import "sync"

const maxDialing = 2

type pool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	dialing int
}

func newPool() *pool {
	p := &pool{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// acquireSlot is the correct waiter: loop plus lock.
func (p *pool) acquireSlot() {
	p.mu.Lock()
	for p.dialing >= maxDialing {
		p.cond.Wait()
	}
	p.dialing++
	p.mu.Unlock()
}

// releaseSlot is the bug's first half: the broadcast runs outside the
// guard, so it can fall into a waiter's re-check gap and vanish.
func (p *pool) releaseSlot() {
	p.mu.Lock()
	p.dialing--
	p.mu.Unlock()
	p.cond.Broadcast() // want lockorder "without the guarding lock"
}

// acquireSlotOnce is the bug's second half: the predicate is checked
// once, so a wake taken by another goroutine (or a spurious one)
// slips straight through into an over-admitted dial.
func (p *pool) acquireSlotOnce() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dialing >= maxDialing {
		p.cond.Wait() // want lockorder "outside a rechecked-condition loop"
	}
	p.dialing++
}
