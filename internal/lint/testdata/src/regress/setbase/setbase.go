// Package setbase is the distilled reproduction of the adaptive
// placement's historical SetBase snapshot leak. Rebasing loaded the
// currently published placement snapshot and wrote the new base into
// it in place — mutating the very value in-flight requests had
// already loaded, so a request could see a base naming server indices
// its slot table had never heard of. frozen must flag the
// Load-then-mutate shape forever; the fixed path clones.
package setbase

import "sync/atomic"

// placement is the published routing snapshot.
//
//rnb:frozen-after-publish
type placement struct {
	base    []int
	boosted map[uint64][]int
}

type adaptive struct {
	cur atomic.Pointer[placement]
}

// SetBaseLeaky is the bug: the published snapshot is edited in place
// under every concurrent reader.
func (a *adaptive) SetBaseLeaky(base []int) {
	p := a.cur.Load()
	p.base = base // want frozen "write to field base of a published setbase.placement value"
}

// SetBaseFixed is the fix that shipped: build a successor, republish.
func (a *adaptive) SetBaseFixed(base []int) {
	old := a.cur.Load()
	next := &placement{base: base, boosted: old.boosted}
	a.cur.Store(next)
}
