// Package sccgraph is a synthetic call topology for the SCC-ordering
// unit test (callgraph_test.go): a mutually recursive pair, a
// self-recursive function, a shared leaf, and a root calling into all
// of it. No analyzer should report anything here — the package exists
// purely to pin BottomUp's callees-first contract.
package sccgraph

func leaf() int { return 1 }

// evenStep and oddStep are mutually recursive: they must land in the
// same strongly connected component.
func evenStep(n int) int {
	if n <= 0 {
		return leaf()
	}
	return oddStep(n - 1)
}

func oddStep(n int) int {
	if n <= 0 {
		return 0
	}
	return evenStep(n-1) + leaf()
}

// selfRec is directly recursive: a singleton component that still
// counts as cyclic.
func selfRec(n int) int {
	if n <= 0 {
		return leaf()
	}
	return selfRec(n - 1)
}

// Top is the root: every other component must be emitted before its
// own.
func Top(n int) int {
	return evenStep(n) + selfRec(n)
}
