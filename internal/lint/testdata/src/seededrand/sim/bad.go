// Package sim lives under a determinism-critical path segment ("sim")
// and misuses math/rand in the ways seededrand forbids: the global
// generator and clock-derived seeds.
package sim

import (
	"math/rand"
	"time"
)

func pickShard(n int) int {
	return rand.Intn(n) // want seededrand "global math/rand.Intn"
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want seededrand "global math/rand.Shuffle"
}

func clockSeeded() *rand.Rand {
	src := rand.NewSource(time.Now().UnixNano()) // want seededrand "math/rand.NewSource seeded from the clock"
	return rand.New(src)
}
