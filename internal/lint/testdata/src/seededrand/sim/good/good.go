// Package good is inside seededrand's scope (its path contains the
// "sim" segment) but does everything right: generators built from
// explicit seeds, drawn from via methods, never the global stream.
package good

import "math/rand"

func newRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func zipf(seed int64) *rand.Zipf {
	r := rand.New(rand.NewSource(seed))
	return rand.NewZipf(r, 1.1, 1, 1<<20)
}

func draw(r *rand.Rand, n int) int {
	return r.Intn(n) // method on an explicit generator: fine
}
