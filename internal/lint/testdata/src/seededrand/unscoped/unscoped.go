// Package unscoped is outside seededrand's scope (no determinism-
// critical path segment), so the global generator is permitted here.
package unscoped

import "math/rand"

func jitter(n int) int {
	return rand.Intn(n)
}
