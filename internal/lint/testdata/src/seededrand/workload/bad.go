// Package workload lives under the determinism-critical "workload"
// path segment and shows the mistakes an adversarial request generator
// must not make: the shared global stream (irreproducible bundles) and
// clock-derived seeds (different hot spots every run).
package workload

import (
	"math/rand"
	"time"
)

type bundle struct {
	items []uint64
}

func (b *bundle) pickStart(pool int) int {
	return rand.Intn(pool) // want seededrand "global math/rand.Intn"
}

func (b *bundle) shuffleGroups(gs []int) {
	rand.Shuffle(len(gs), func(i, j int) { gs[i], gs[j] = gs[j], gs[i] }) // want seededrand "global math/rand.Shuffle"
}

func newAdversary() *rand.Rand {
	src := rand.NewSource(time.Now().UnixNano()) // want seededrand "math/rand.NewSource seeded from the clock"
	return rand.New(src)
}
