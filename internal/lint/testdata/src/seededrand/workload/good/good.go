// Package good mirrors the real adversarial generator's idiom
// (internal/workload): one *rand.Rand built from an explicit seed at
// construction, drawn from via methods only — equal seeds give equal
// worst-case request streams.
package good

import "math/rand"

type adversary struct {
	rng  *rand.Rand
	pool int
}

func newAdversary(seed int64, pool int) *adversary {
	return &adversary{rng: rand.New(rand.NewSource(seed)), pool: pool}
}

func (a *adversary) next() int {
	return a.rng.Intn(a.pool) // method on an explicit generator: fine
}
