// Package suppress exercises //rnblint:ignore directive handling:
// well-formed directives (own-line and trailing) silence the named
// analyzer, and malformed directives are themselves diagnostics and
// suppress nothing. Expectations for this package live in
// TestSuppressionDirectives, not in want comments, because the
// rnblint diagnostics land on comment-only lines.
package suppress

import "fmt"

func suppressedAbove(err error) error {
	//rnblint:ignore errwrap fixture proves an own-line suppression covers the next line
	return fmt.Errorf("op: %v", err)
}

func suppressedTrailing(err error) error {
	return fmt.Errorf("op: %v", err) //rnblint:ignore errwrap fixture proves a trailing suppression covers its own line
}

func suppressedList(err error) error {
	//rnblint:ignore errwrap,lockheld fixture proves a comma list names several analyzers
	return fmt.Errorf("op: %v", err)
}

func bareDirective(err error) error {
	//rnblint:ignore
	return fmt.Errorf("op: %v", err)
}

func unknownAnalyzer(err error) error {
	//rnblint:ignore nosuchanalyzer the analyzer name is checked before the reason
	return fmt.Errorf("op: %v", err)
}

func missingReason(err error) error {
	//rnblint:ignore errwrap
	return fmt.Errorf("op: %v", err)
}

func deadDirective(err error) error {
	//rnblint:ignore lockheld well-formed but suppresses nothing: this line holds no lock
	return fmt.Errorf("op: %w", err)
}
