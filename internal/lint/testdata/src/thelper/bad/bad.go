// Package bad declares test helpers that never call Helper(), so
// their failures would point at the helper body instead of the caller.
package bad

import "testing"

func mustPut(t *testing.T, key string) { // want thelper "test helper mustPut must call t.Helper()"
	if key == "" {
		t.Fatal("empty key")
	}
}

func helperInLit(t *testing.T) { // want thelper "test helper helperInLit must call t.Helper()"
	f := func() { t.Helper() } // inside a nested literal: marks the literal, not helperInLit
	f()
}

func benchSetup(b *testing.B) { // want thelper "test helper benchSetup must call b.Helper()"
	b.ReportAllocs()
}
