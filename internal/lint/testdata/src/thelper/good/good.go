// Package good covers what thelper must accept: helpers that call
// Helper(), Test/Benchmark entry points (which must not call it),
// function literals (exempt), and functions without testing params.
package good

import "testing"

func mustPut(t *testing.T, key string) {
	t.Helper()
	if key == "" {
		t.Fatal("empty key")
	}
}

func anyTB(tb testing.TB) {
	tb.Helper()
	tb.Log("ok")
}

func TestEntryPoint(t *testing.T) {
	mustPut(t, "k")
}

func BenchmarkEntryPoint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = plainFunc(i)
	}
}

func TestSubtests(t *testing.T) {
	t.Run("case", func(t *testing.T) {
		t.Log("function literals are exempt")
	})
}

func plainFunc(n int) int {
	return n + 1
}
