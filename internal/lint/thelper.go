package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

// THelper requires test helpers — declared functions with a
// *testing.T, *testing.B, or testing.TB parameter that are not
// themselves Test/Benchmark/Fuzz entry points — to call t.Helper().
// Without it, every failure a helper reports points at the helper's
// own file and line, and a broken assertion in a ten-call-site helper
// sends the reader to the wrong place ten different ways. Function
// literals (subtest bodies passed to t.Run) are exempt.
var THelper = &Analyzer{
	Name: "thelper",
	Doc:  "test helpers taking *testing.T must call t.Helper()",
	Run:  runTHelper,
}

var testEntryRE = regexp.MustCompile(`^(Test|Benchmark|Fuzz|Example)`)

func runTHelper(pass *Pass) {
	pkgs, report := pass.Pkgs, pass.Report
	for _, pkg := range pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil || testEntryRE.MatchString(fn.Name.Name) {
					continue
				}
				params := testingParams(info, fn)
				if len(params) == 0 {
					continue
				}
				if callsHelper(info, fn.Body, params) {
					continue
				}
				report(pkg, fn.Pos(), "test helper %s must call %s.Helper() so failures point at its callers", fn.Name.Name, params[0].Name())
			}
		}
	}
}

// testingParams returns the function's parameters of type *testing.T,
// *testing.B, or testing.TB.
func testingParams(info *types.Info, fn *ast.FuncDecl) []*types.Var {
	var out []*types.Var
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			obj, ok := info.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			t := obj.Type()
			if isNamedType(t, "testing", "T") || isNamedType(t, "testing", "B") || isNamedType(t, "testing", "TB") {
				out = append(out, obj)
			}
		}
	}
	return out
}

// callsHelper reports whether body contains param.Helper() for any of
// the given parameters, outside nested function literals.
func callsHelper(info *types.Info, body *ast.BlockStmt, params []*types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Helper" {
			return true
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		for _, p := range params {
			if info.Uses[id] == p {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
