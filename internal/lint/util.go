package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// calleeFunc resolves a call's callee to its types.Func (package-level
// function or method), or nil for calls through function values,
// conversions, and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fn].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fn.Sel].(*types.Func)
		return f
	}
	return nil
}

// isPkgFunc reports whether call invokes the package-level function
// pkgPath.name.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return f.Pkg().Path() == pkgPath && f.Name() == name
}

// callReceiver returns the receiver type and method name of a method
// call, or ok=false for anything else.
func callReceiver(info *types.Info, call *ast.CallExpr) (recv types.Type, method string, ok bool) {
	f := calleeFunc(info, call)
	if f == nil {
		return nil, "", false
	}
	sig, sok := f.Type().(*types.Signature)
	if !sok || sig.Recv() == nil {
		return nil, "", false
	}
	return sig.Recv().Type(), f.Name(), true
}

// namedOf unwraps pointers and aliases down to a named type, or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// isNamedType reports whether t (possibly behind a pointer) is the
// named type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}

// namedTypePkgPath returns the declaring package path of t's named
// type (behind pointers), or "".
func namedTypePkgPath(t types.Type) string {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Path()
}

// pkgLevel reports whether v is declared at package scope.
func pkgLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// stringLit returns the value of a compile-time string constant
// (literals, literal concatenation, named constants), with ok=false
// for anything runtime-computed.
func stringLit(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// errorType is the universe error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError reports whether t satisfies the error interface.
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorType) ||
		types.Implements(types.NewPointer(t), errorType)
}
