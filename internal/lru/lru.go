// Package lru implements an O(1) least-recently-used cache with two
// service classes: ordinary entries, evicted LRU-first, and *pinned*
// entries that are never evicted.
//
// This is the "two service classes in LRU based caching systems"
// mechanism from the RnB paper (§I-C): each memcached server keeps the
// *distinguished* copy of every item mapped to it pinned in memory —
// guaranteeing a distinguished copy never misses — while extra replica
// copies compete for the remaining space under plain LRU. Overbooking
// (declaring more logical replicas than physically fit, §III-C-1) falls
// out naturally: cold replicas are simply evicted.
//
// Capacity is expressed as an abstract cost so the same cache backs both
// the simulator (cost 1 per item) and the memcached clone (cost =
// bytes).
package lru

// Cache is an LRU cache with pinned entries. It is not safe for
// concurrent use; callers shard or lock externally.
type Cache[K comparable, V any] struct {
	capacity   int64
	cost       int64 // total cost of resident entries (incl. pinned)
	pinnedCost int64
	entries    map[K]*entry[K, V]
	// Intrusive doubly-linked list of *unpinned* entries; head is the
	// most recently used, tail the eviction candidate.
	head, tail *entry[K, V]
	onEvict    func(K, V)
	evictions  uint64
}

type entry[K comparable, V any] struct {
	key        K
	value      V
	cost       int64
	pinned     bool
	prev, next *entry[K, V]
}

// New returns a cache that holds at most capacity total cost of
// unpinned + pinned entries. Pinned inserts are always accepted, even
// past capacity (the caller sizes pinned data to fit); unpinned inserts
// evict unpinned LRU entries to make room and fail if they cannot.
func New[K comparable, V any](capacity int64) *Cache[K, V] {
	if capacity < 0 {
		panic("lru: negative capacity")
	}
	return &Cache[K, V]{
		capacity: capacity,
		entries:  make(map[K]*entry[K, V]),
	}
}

// OnEvict registers a callback invoked with each evicted key/value.
// Deletes do not trigger it; only capacity evictions do.
func (c *Cache[K, V]) OnEvict(fn func(K, V)) { c.onEvict = fn }

// Len returns the number of resident entries (pinned included).
func (c *Cache[K, V]) Len() int { return len(c.entries) }

// Cost returns the total resident cost (pinned included).
func (c *Cache[K, V]) Cost() int64 { return c.cost }

// PinnedCost returns the cost held by pinned entries.
func (c *Cache[K, V]) PinnedCost() int64 { return c.pinnedCost }

// Capacity returns the configured capacity.
func (c *Cache[K, V]) Capacity() int64 { return c.capacity }

// Evictions returns the number of entries evicted for capacity.
func (c *Cache[K, V]) Evictions() uint64 { return c.evictions }

// Contains reports residency without touching recency.
func (c *Cache[K, V]) Contains(k K) bool {
	_, ok := c.entries[k]
	return ok
}

// Get returns the value for k and promotes it to most-recently-used.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	e, ok := c.entries[k]
	if !ok {
		var zero V
		return zero, false
	}
	c.touch(e)
	return e.value, true
}

// Peek returns the value for k without changing recency. This is the
// hitchhiker read path (§III-C-2): the paper leaves "should a server's
// LRU be updated based on a hitchhiker" as policy; Peek lets the caller
// choose not to.
func (c *Cache[K, V]) Peek(k K) (V, bool) {
	e, ok := c.entries[k]
	if !ok {
		var zero V
		return zero, false
	}
	return e.value, true
}

// Touch promotes k to most-recently-used if resident.
func (c *Cache[K, V]) Touch(k K) bool {
	e, ok := c.entries[k]
	if !ok {
		return false
	}
	c.touch(e)
	return true
}

func (c *Cache[K, V]) touch(e *entry[K, V]) {
	if e.pinned || c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

// Put inserts or updates k with the given cost. Pinned entries are
// always accepted and never evicted. An unpinned insert evicts unpinned
// LRU entries until it fits; if it cannot fit (cost exceeds the space
// not held by pinned entries), the insert is rejected and false is
// returned. Updating an existing key keeps its pinned status unless the
// new insert is pinned (promotion to pinned is allowed; demotion is
// not — use Delete first).
func (c *Cache[K, V]) Put(k K, v V, cost int64, pinned bool) bool {
	if cost < 0 {
		panic("lru: negative cost")
	}
	if e, ok := c.entries[k]; ok {
		// Update in place.
		delta := cost - e.cost
		if !e.pinned && !pinned && c.cost+delta > c.capacity {
			if !c.makeRoom(delta, e) {
				return false
			}
		}
		if pinned && !e.pinned {
			c.unlink(e)
			e.pinned = true
			c.pinnedCost += cost
		} else if e.pinned {
			c.pinnedCost += delta
		}
		c.cost += delta
		e.value = v
		e.cost = cost
		if !e.pinned {
			c.touch(e)
		}
		return true
	}
	if !pinned && !c.makeRoom(cost, nil) {
		return false
	}
	e := &entry[K, V]{key: k, value: v, cost: cost, pinned: pinned}
	c.entries[k] = e
	c.cost += cost
	if pinned {
		c.pinnedCost += cost
	} else {
		c.pushFront(e)
	}
	return true
}

// makeRoom evicts unpinned LRU entries until `extra` more cost fits.
// skip, if non-nil, is an entry being resized and must not be evicted.
func (c *Cache[K, V]) makeRoom(extra int64, skip *entry[K, V]) bool {
	// Feasibility: after evicting everything evictable, the resident
	// floor is the pinned cost (plus the entry being resized, which
	// cannot be evicted either); `extra` must fit above that floor.
	floor := c.pinnedCost + extra
	if skip != nil {
		floor += skip.cost
	}
	if floor > c.capacity {
		return false
	}
	for c.cost+extra > c.capacity {
		victim := c.tail
		for victim != nil && victim == skip {
			victim = victim.prev
		}
		if victim == nil {
			return false
		}
		c.evict(victim)
	}
	return true
}

func (c *Cache[K, V]) evict(e *entry[K, V]) {
	c.unlink(e)
	delete(c.entries, e.key)
	c.cost -= e.cost
	c.evictions++
	if c.onEvict != nil {
		c.onEvict(e.key, e.value)
	}
}

// Delete removes k if resident, returning whether it was present.
// Pinned entries can be deleted explicitly.
func (c *Cache[K, V]) Delete(k K) bool {
	e, ok := c.entries[k]
	if !ok {
		return false
	}
	if e.pinned {
		c.pinnedCost -= e.cost
	} else {
		c.unlink(e)
	}
	delete(c.entries, k)
	c.cost -= e.cost
	return true
}

// Keys returns the unpinned keys from most- to least-recently used.
// Intended for tests and diagnostics.
func (c *Cache[K, V]) Keys() []K {
	var out []K
	for e := c.head; e != nil; e = e.next {
		out = append(out, e.key)
	}
	return out
}

func (c *Cache[K, V]) pushFront(e *entry[K, V]) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache[K, V]) unlink(e *entry[K, V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.head == e {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}
