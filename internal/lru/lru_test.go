package lru

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestPutGet(t *testing.T) {
	c := New[string, int](10)
	if !c.Put("a", 1, 1, false) {
		t.Fatal("Put rejected")
	}
	v, ok := c.Get("a")
	if !ok || v != 1 {
		t.Fatalf("Get = %d,%v", v, ok)
	}
	if _, ok := c.Get("missing"); ok {
		t.Fatal("Get of missing key succeeded")
	}
}

func TestEvictsLRUOrder(t *testing.T) {
	c := New[int, int](3)
	var evicted []int
	c.OnEvict(func(k, _ int) { evicted = append(evicted, k) })
	for i := 1; i <= 3; i++ {
		c.Put(i, i, 1, false)
	}
	c.Get(1) // 1 becomes MRU; LRU order now 2,3
	c.Put(4, 4, 1, false)
	c.Put(5, 5, 1, false)
	if want := []int{2, 3}; !reflect.DeepEqual(evicted, want) {
		t.Fatalf("evicted %v, want %v", evicted, want)
	}
	if !c.Contains(1) || !c.Contains(4) || !c.Contains(5) {
		t.Fatal("wrong survivors")
	}
}

func TestPinnedNeverEvicted(t *testing.T) {
	c := New[int, int](3)
	c.Put(100, 0, 1, true)
	for i := 0; i < 50; i++ {
		c.Put(i, i, 1, false)
	}
	if !c.Contains(100) {
		t.Fatal("pinned entry was evicted")
	}
	if c.Cost() > c.Capacity() {
		t.Fatalf("cost %d exceeds capacity %d", c.Cost(), c.Capacity())
	}
}

func TestPinnedAcceptedPastCapacity(t *testing.T) {
	c := New[int, int](2)
	for i := 0; i < 5; i++ {
		if !c.Put(i, i, 1, true) {
			t.Fatalf("pinned Put %d rejected", i)
		}
	}
	if c.Len() != 5 || c.PinnedCost() != 5 {
		t.Fatalf("Len=%d PinnedCost=%d", c.Len(), c.PinnedCost())
	}
	// No room left for unpinned entries at all.
	if c.Put(99, 99, 1, false) {
		t.Fatal("unpinned Put accepted with pinned cost >= capacity")
	}
}

func TestUnpinnedRejectedWhenTooLarge(t *testing.T) {
	c := New[string, int](4)
	c.Put("pin", 0, 3, true)
	if c.Put("big", 0, 2, false) {
		t.Fatal("insert that can never fit was accepted")
	}
	if !c.Put("ok", 0, 1, false) {
		t.Fatal("fitting insert rejected")
	}
}

func TestPeekDoesNotPromote(t *testing.T) {
	c := New[int, int](2)
	c.Put(1, 1, 1, false)
	c.Put(2, 2, 1, false)
	if v, ok := c.Peek(1); !ok || v != 1 {
		t.Fatalf("Peek = %d,%v", v, ok)
	}
	c.Put(3, 3, 1, false) // should evict 1: Peek must not have promoted it
	if c.Contains(1) {
		t.Fatal("Peek promoted entry")
	}
	if _, ok := c.Peek(99); ok {
		t.Fatal("Peek of missing key succeeded")
	}
}

func TestTouchPromotes(t *testing.T) {
	c := New[int, int](2)
	c.Put(1, 1, 1, false)
	c.Put(2, 2, 1, false)
	if !c.Touch(1) {
		t.Fatal("Touch failed")
	}
	c.Put(3, 3, 1, false) // evicts 2
	if !c.Contains(1) || c.Contains(2) {
		t.Fatal("Touch did not promote")
	}
	if c.Touch(42) {
		t.Fatal("Touch of missing key succeeded")
	}
}

func TestUpdateExisting(t *testing.T) {
	c := New[string, string](10)
	c.Put("k", "v1", 2, false)
	c.Put("k", "v2", 5, false)
	v, _ := c.Get("k")
	if v != "v2" {
		t.Fatalf("value = %q", v)
	}
	if c.Cost() != 5 {
		t.Fatalf("Cost = %d, want 5 after resize", c.Cost())
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestUpdateResizeEvictsOthersNotSelf(t *testing.T) {
	c := New[int, int](4)
	c.Put(1, 1, 2, false)
	c.Put(2, 2, 2, false)
	// Growing key 1 to cost 4 must evict key 2, not key 1 itself.
	if !c.Put(1, 10, 4, false) {
		t.Fatal("resize rejected")
	}
	if !c.Contains(1) || c.Contains(2) {
		t.Fatal("resize evicted the wrong entry")
	}
	if c.Cost() != 4 {
		t.Fatalf("Cost = %d", c.Cost())
	}
}

func TestPromoteToPinned(t *testing.T) {
	c := New[int, int](3)
	c.Put(1, 1, 1, false)
	c.Put(1, 1, 1, true) // promote
	for i := 10; i < 20; i++ {
		c.Put(i, i, 1, false)
	}
	if !c.Contains(1) {
		t.Fatal("promoted entry evicted")
	}
	if c.PinnedCost() != 1 {
		t.Fatalf("PinnedCost = %d", c.PinnedCost())
	}
}

func TestDelete(t *testing.T) {
	c := New[int, int](5)
	c.Put(1, 1, 1, false)
	c.Put(2, 2, 2, true)
	if !c.Delete(1) || !c.Delete(2) {
		t.Fatal("Delete failed")
	}
	if c.Delete(1) {
		t.Fatal("double Delete succeeded")
	}
	if c.Len() != 0 || c.Cost() != 0 || c.PinnedCost() != 0 {
		t.Fatalf("Len=%d Cost=%d Pinned=%d after deletes", c.Len(), c.Cost(), c.PinnedCost())
	}
}

func TestDeleteDoesNotFireOnEvict(t *testing.T) {
	c := New[int, int](5)
	fired := false
	c.OnEvict(func(int, int) { fired = true })
	c.Put(1, 1, 1, false)
	c.Delete(1)
	if fired {
		t.Fatal("Delete fired OnEvict")
	}
}

func TestKeysMRUOrder(t *testing.T) {
	c := New[int, int](5)
	for i := 1; i <= 3; i++ {
		c.Put(i, i, 1, false)
	}
	c.Get(1)
	if want := []int{1, 3, 2}; !reflect.DeepEqual(c.Keys(), want) {
		t.Fatalf("Keys = %v, want %v", c.Keys(), want)
	}
}

func TestZeroCapacity(t *testing.T) {
	c := New[int, int](0)
	if c.Put(1, 1, 1, false) {
		t.Fatal("Put accepted into zero-capacity cache")
	}
	if !c.Put(2, 2, 1, true) {
		t.Fatal("pinned Put rejected (pinned always fits)")
	}
}

func TestNegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New[int, int](-1)
}

func TestNegativeCostPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New[int, int](1).Put(1, 1, -2, false)
}

func TestEvictionsCounter(t *testing.T) {
	c := New[int, int](2)
	for i := 0; i < 5; i++ {
		c.Put(i, i, 1, false)
	}
	if c.Evictions() != 3 {
		t.Fatalf("Evictions = %d, want 3", c.Evictions())
	}
}

// TestQuickInvariants drives a random op sequence and checks the cache's
// core invariants after every step.
func TestQuickInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const capacity = 20
		c := New[int, int](capacity)
		pinned := map[int]bool{}
		for op := 0; op < 300; op++ {
			k := r.Intn(30)
			switch r.Intn(5) {
			case 0, 1:
				pin := r.Intn(8) == 0
				cost := int64(1 + r.Intn(3))
				if ok := c.Put(k, k, cost, pin); ok && (pin || pinned[k]) {
					pinned[k] = true
				}
			case 2:
				c.Get(k)
			case 3:
				c.Touch(k)
			case 4:
				if c.Delete(k) {
					delete(pinned, k)
				}
			}
			// Invariant: unpinned cost never exceeds capacity...
			if c.Cost()-c.PinnedCost() > capacity {
				return false
			}
			// ...and if nothing is pinned past capacity, total fits too.
			if c.PinnedCost() <= capacity && c.Cost() > capacity+c.PinnedCost() {
				return false
			}
			// Invariant: every pinned key is still resident.
			for pk := range pinned {
				if !c.Contains(pk) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPutGet(b *testing.B) {
	c := New[int, int](1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Put(i&2047, i, 1, false)
		c.Get((i - 512) & 2047)
	}
}
