//go:build !race

// Allocation-budget regression gates for the transport hot paths (run
// via `make bench-alloc`; excluded under -race because the race
// runtime's shadow allocations distort testing.AllocsPerRun).
package memcache

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"testing"
	"time"
)

// allocGate fails when fn's steady-state allocation count exceeds the
// budget. The measured value is logged so regressions show their size.
func allocGate(t *testing.T, name string, budget float64, fn func()) {
	t.Helper()
	fn() // warm lazily initialized pools outside the measured window
	got := testing.AllocsPerRun(200, fn)
	t.Logf("%s: %.1f allocs/op (budget %.1f)", name, got, budget)
	if got > budget {
		t.Errorf("%s: %.1f allocs/op, budget %.1f", name, got, budget)
	}
}

// TestAllocBudgetEncode: command encoding — text and binary — must not
// allocate at all in steady state. The pooled writer loop calls these
// under its flush lock, so every alloc here is paid once per request on
// every connection.
func TestAllocBudgetEncode(t *testing.T) {
	w := bufio.NewWriter(io.Discard)
	keys := []string{"alloc:000", "alloc:001", "alloc:002", "alloc:003",
		"alloc:004", "alloc:005", "alloc:006", "alloc:007"}
	it := &Item{Key: "alloc:key", Value: bytes.Repeat([]byte("v"), 100), Flags: 7, Expiration: 60}

	allocGate(t, "text get encode", 0, func() {
		if err := writeGetCmd(w, "get", keys); err != nil {
			t.Fatal(err)
		}
		w.Reset(io.Discard)
	})
	allocGate(t, "text set encode", 0, func() {
		if err := writeStoreCmd(w, "set", it, 0); err != nil {
			t.Fatal(err)
		}
		w.Reset(io.Discard)
	})
	allocGate(t, "text incr encode", 0, func() {
		if err := writeIncrDecrCmd(w, "incr", "alloc:key", 42); err != nil {
			t.Fatal(err)
		}
		w.Reset(io.Discard)
	})
	allocGate(t, "binary multiget encode", 0, func() {
		if err := writeBinMultiGetCmd(w, keys); err != nil {
			t.Fatal(err)
		}
		w.Reset(io.Discard)
	})
	allocGate(t, "binary set encode", 0, func() {
		if err := writeBinStoreCmd(w, binOpSet, it, 0); err != nil {
			t.Fatal(err)
		}
		w.Reset(io.Discard)
	})
	allocGate(t, "binary incr encode", 0, func() {
		if err := writeBinIncrDecrCmd(w, binOpIncrement, "alloc:key", 42); err != nil {
			t.Fatal(err)
		}
		w.Reset(io.Discard)
	})
}

// TestAllocBudgetDecode: response decoding pays only what escapes into
// the result — per hit, the Item, its key string, and its value block
// (3 allocs) plus map growth — and nothing for protocol framing.
func TestAllocBudgetDecode(t *testing.T) {
	const hits = 8
	// Render one canned text multiget response and one binary response.
	var text bytes.Buffer
	for i := 0; i < hits; i++ {
		fmt.Fprintf(&text, "VALUE alloc:%03d %d 100 %d\r\n%s\r\n", i, i, i+1, bytes.Repeat([]byte("v"), 100))
	}
	text.WriteString("END\r\n")
	var bin bytes.Buffer
	bw := bufio.NewWriter(&bin)
	for i := 0; i < hits; i++ {
		extras := []byte{0, 0, 0, byte(i)}
		key := fmt.Sprintf("alloc:%03d", i)
		writeBinRes := func() {
			hdr := binResFrame(binOpGetKQ, binStatusOK, uint32(i), uint64(i+1), extras, key, string(bytes.Repeat([]byte("v"), 100)))
			bw.Write(hdr)
		}
		writeBinRes()
	}
	bw.Write(binResFrame(binOpNoop, binStatusOK, hits, 0, nil, "", ""))
	bw.Flush()

	// 3 allocs per hit (Item, key, value) + amortized map growth; the
	// budget leaves one alloc of slack per run, not per hit.
	budget := float64(3*hits) + 1
	rd := bytes.NewReader(nil)
	br := bufio.NewReader(nil)
	out := make(map[string]*Item, hits)
	allocGate(t, "text multiget decode", budget, func() {
		rd.Reset(text.Bytes())
		br.Reset(rd)
		clear(out)
		if err := readValuesInto(br, true, out); err != nil {
			t.Fatal(err)
		}
		if len(out) != hits {
			t.Fatalf("decoded %d hits", len(out))
		}
	})
	allocGate(t, "binary multiget decode", budget, func() {
		rd.Reset(bin.Bytes())
		br.Reset(rd)
		clear(out)
		if err := readBinMultiGetInto(br, hits, out); err != nil {
			t.Fatal(err)
		}
		if len(out) != hits {
			t.Fatalf("decoded %d hits", len(out))
		}
	})
	stored := []byte("STORED\r\n")
	allocGate(t, "text store reply decode", 0, func() {
		rd.Reset(stored)
		br.Reset(rd)
		if err := readStoreReply(br); err != nil {
			t.Fatal(err)
		}
	})
	storedFrame := binResFrame(binOpSet, binStatusOK, 0, 1, nil, "", "")
	allocGate(t, "binary store reply decode", 0, func() {
		rd.Reset(storedFrame)
		br.Reset(rd)
		if err := readBinStatusReply(br, binOpSet); err != nil {
			t.Fatal(err)
		}
	})
}

// TestAllocBudgetPoolRoundTrip bounds the whole pooled multiget path —
// routing, queueing, batched flush, demux — end to end against a live
// server. The budget is per GetMulti of 8 keys, all hits, and covers
// every goroutine (AllocsPerRun counts globally), so it gates the
// writer-loop flush path too.
func TestAllocBudgetPoolRoundTrip(t *testing.T) {
	for _, lane := range []struct {
		name   string
		binary bool
		budget float64
	}{
		// Measured 44 allocs/op (text) and 42 (binary) per 8-key
		// multiget: 3 per hit for the escaping items, ~1 per key of
		// server-side parsing, plus fixed request plumbing (poolRequest,
		// closures, done channel, result map). The slack absorbs map
		// growth jitter without letting a per-key regression through.
		{"text", false, 45},
		{"binary", true, 44},
	} {
		t.Run(lane.name, func(t *testing.T) {
			srv := NewServer(NewStore(0))
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			go srv.Serve(ln)
			defer srv.Close()
			p, err := NewPool(ln.Addr().String(), 2*time.Second, PoolConfig{Size: 1, Binary: lane.binary})
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			keys := make([]string, 8)
			for i := range keys {
				keys[i] = fmt.Sprintf("alloc:%03d", i)
				if err := p.Set(&Item{Key: keys[i], Value: bytes.Repeat([]byte("v"), 100)}); err != nil {
					t.Fatal(err)
				}
			}
			allocGate(t, lane.name+" pooled multiget", lane.budget, func() {
				items, err := p.GetMulti(keys)
				if err != nil {
					t.Fatal(err)
				}
				if len(items) != len(keys) {
					t.Fatalf("%d items", len(items))
				}
			})
		})
	}
}
