package memcache

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"rnb/internal/obs"
)

// Binary protocol support (the memcached binary wire format, which
// libmemcached-based tools such as memaslap use by default). The
// server sniffs the first byte of each connection: 0x80 selects the
// binary handler, anything else the text handler, mirroring memcached
// serving both protocols on one port.
//
// Multi-get in the binary protocol is a pipeline of quiet gets
// (GetQ/GetKQ) terminated by a Noop. The server accumulates the quiet
// batch and issues ONE Backend.GetMulti for it, so RnB bundling (and
// the proxy) work identically under both protocols.

const (
	binMagicReq = 0x80
	binMagicRes = 0x81

	binHeaderLen = 24
)

// Binary opcodes (subset).
const (
	binOpGet       = 0x00
	binOpSet       = 0x01
	binOpAdd       = 0x02
	binOpReplace   = 0x03
	binOpDelete    = 0x04
	binOpIncrement = 0x05
	binOpDecrement = 0x06
	binOpFlush     = 0x08
	binOpGetQ      = 0x09
	binOpNoop      = 0x0a
	binOpVersion   = 0x0b
	binOpGetK      = 0x0c
	binOpGetKQ     = 0x0d
	binOpAppend    = 0x0e
	binOpPrepend   = 0x0f
	binOpStat      = 0x10
	binOpTouch     = 0x1c
	binOpQuit      = 0x17
	// binOpSetP is this repository's pinning extension ("setp" in the
	// text protocol); chosen from the unused range.
	binOpSetP = 0xf0
)

// Binary status codes (subset).
const (
	binStatusOK          = 0x0000
	binStatusNotFound    = 0x0001
	binStatusExists      = 0x0002
	binStatusTooLarge    = 0x0003
	binStatusInvalidArgs = 0x0004
	binStatusNotStored   = 0x0005
	binStatusUnknownCmd  = 0x0081
	binStatusInternal    = 0x0084
)

// binHeader is a decoded request/response header.
type binHeader struct {
	magic    byte
	opcode   byte
	keyLen   uint16
	extraLen uint8
	status   uint16 // vbucket id in requests
	bodyLen  uint32
	opaque   uint32
	cas      uint64
}

func (h *binHeader) decode(buf []byte) error {
	if len(buf) < binHeaderLen {
		return fmt.Errorf("memcache: short binary header")
	}
	h.magic = buf[0]
	h.opcode = buf[1]
	h.keyLen = binary.BigEndian.Uint16(buf[2:4])
	h.extraLen = buf[4]
	// buf[5] is the data type, always 0.
	h.status = binary.BigEndian.Uint16(buf[6:8])
	h.bodyLen = binary.BigEndian.Uint32(buf[8:12])
	h.opaque = binary.BigEndian.Uint32(buf[12:16])
	h.cas = binary.BigEndian.Uint64(buf[16:24])
	if uint32(h.keyLen)+uint32(h.extraLen) > h.bodyLen {
		return fmt.Errorf("memcache: binary header key+extras exceed body")
	}
	return nil
}

func (h *binHeader) encode(buf []byte) {
	buf[0] = h.magic
	buf[1] = h.opcode
	binary.BigEndian.PutUint16(buf[2:4], h.keyLen)
	buf[4] = h.extraLen
	buf[5] = 0
	binary.BigEndian.PutUint16(buf[6:8], h.status)
	binary.BigEndian.PutUint32(buf[8:12], h.bodyLen)
	binary.BigEndian.PutUint32(buf[12:16], h.opaque)
	binary.BigEndian.PutUint64(buf[16:24], h.cas)
}

// binRequest is a fully read request.
type binRequest struct {
	binHeader
	extras []byte
	key    string
	value  []byte
}

// readBinRequest reads one request into req (reused across a
// connection's serve loop). The header is decoded in place inside the
// reader's buffer via Peek, so framing costs no allocation. Quiet gets
// — the pipelined hot path — parse their key straight out of the buffer
// too; only the key string survives the call. Value-carrying commands
// still copy the body onto the heap because the store retains it.
func readBinRequest(r *bufio.Reader, req *binRequest) error {
	hdr, err := r.Peek(binHeaderLen)
	if err != nil {
		return err
	}
	if err := req.decode(hdr); err != nil {
		return err
	}
	if req.magic != binMagicReq {
		return fmt.Errorf("memcache: bad binary magic 0x%02x", req.magic)
	}
	if req.bodyLen > MaxValueLen+uint32(req.keyLen)+uint32(req.extraLen) {
		return fmt.Errorf("memcache: binary body too large (%d)", req.bodyLen)
	}
	if _, err := r.Discard(binHeaderLen); err != nil {
		return err
	}
	if quiet := req.opcode == binOpGetQ || req.opcode == binOpGetKQ; quiet && req.bodyLen <= 4096 {
		body, err := r.Peek(int(req.bodyLen))
		if err != nil {
			return err
		}
		req.extras = nil
		req.key = string(body[req.extraLen : uint32(req.extraLen)+uint32(req.keyLen)])
		req.value = nil
		_, err = r.Discard(int(req.bodyLen))
		return err
	}
	body := make([]byte, req.bodyLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	req.extras = body[:req.extraLen]
	req.key = string(body[req.extraLen : uint32(req.extraLen)+uint32(req.keyLen)])
	req.value = body[uint32(req.extraLen)+uint32(req.keyLen):]
	return nil
}

// writeBinResponse emits one response frame. Header, extras, and key
// are assembled in a pooled buffer and written in one call (keeping
// callers' stack-built extras on the stack); only the value — already
// heap-resident — streams separately.
func writeBinResponse(w *bufio.Writer, opcode byte, status uint16, opaque uint32,
	cas uint64, extras []byte, key string, value []byte) error {
	h := binHeader{
		magic:    binMagicRes,
		opcode:   opcode,
		keyLen:   uint16(len(key)),
		extraLen: uint8(len(extras)),
		status:   status,
		bodyLen:  uint32(len(extras) + len(key) + len(value)),
		opaque:   opaque,
		cas:      cas,
	}
	scratch := lineScratch.Get().(*[320]byte)
	b := scratch[:binHeaderLen]
	h.encode(b)
	b = append(b, extras...)
	b = append(b, key...)
	_, err := w.Write(b)
	lineScratch.Put(scratch)
	if err != nil {
		return err
	}
	_, err = w.Write(value)
	return err
}

// pendingQuietGet is a buffered GetQ/GetKQ awaiting its batch flush.
type pendingQuietGet struct {
	opcode byte
	key    string
	opaque uint32
}

// serveBinary runs the binary-protocol loop on a connection.
func (s *Server) serveBinary(fr *fillReader, r *bufio.Reader, w *bufio.Writer) {
	var quiet []pendingQuietGet
	var pending obs.TraceContext
	var pendingOpaque uint32
	var ct *connTrace
	req := &binRequest{} // reused across frames; bodies are per-frame
	for {
		if err := readBinRequest(r, req); err != nil {
			return
		}
		if req.opcode == binOpTrace {
			// A trace frame arms the NEXT command; it is not a transaction
			// and gets no immediate response (its answer rides behind the
			// traced command's). Any quiet run in flight predates the
			// context, so it flushes untraced first. A malformed frame
			// answers invalid-args and arms nothing.
			if err := s.flushQuiet(w, &quiet, s.backend); err != nil {
				return
			}
			if len(req.extras) != 16 {
				if err := writeBinResponse(w, binOpTrace, binStatusInvalidArgs, req.opaque, 0, nil, "", nil); err != nil {
					return
				}
				if err := w.Flush(); err != nil {
					return
				}
				continue
			}
			pending = obs.TraceContext{
				TraceID: binary.BigEndian.Uint64(req.extras[0:8]),
				Parent:  binary.BigEndian.Uint64(req.extras[8:16]),
			}
			pendingOpaque = req.opaque
			continue
		}
		if pending.Valid() && ct == nil {
			ct = s.armTrace(pending, fr, binOpName(req.opcode))
			pending = obs.TraceContext{}
		}
		switch req.opcode {
		case binOpGetQ, binOpGetKQ:
			// Quiet gets batch until a blocking command; the whole run
			// counts as one transaction at its flush — the binary
			// analogue of a multi-key text "get" line. An armed trace
			// stays armed across the run and settles at its flush.
			quiet = append(quiet, pendingQuietGet{opcode: req.opcode, key: req.key, opaque: req.opaque})
			continue
		case binOpNoop:
			// A noop terminating a quiet run is that run's flush trigger,
			// not a command of its own; standalone noops count as a ping.
			if len(quiet) == 0 {
				s.stats.Transactions.Add(1)
			}
			if err := s.flushQuiet(w, &quiet, s.backendFor(ct)); err != nil {
				return
			}
			if err := writeBinResponse(w, binOpNoop, binStatusOK, req.opaque, 0, nil, "", nil); err != nil {
				return
			}
		case binOpQuit:
			s.stats.Transactions.Add(1)
			_ = s.flushQuiet(w, &quiet, s.backendFor(ct))
			_ = writeBinResponse(w, binOpQuit, binStatusOK, req.opaque, 0, nil, "", nil)
			_ = w.Flush()
			return
		default:
			s.stats.Transactions.Add(1)
			be := s.backendFor(ct)
			if err := s.flushQuiet(w, &quiet, be); err != nil {
				return
			}
			if err := s.dispatchBinary(req, w, be); err != nil {
				return
			}
		}
		var dispatchEnd time.Time
		if ct != nil {
			dispatchEnd = time.Now()
		}
		if err := w.Flush(); err != nil {
			return
		}
		if ct != nil {
			st := s.finishTrace(ct, dispatchEnd, time.Now())
			ct = nil
			if err := writeBinServerTraceResponse(w, pendingOpaque, &st); err != nil {
				return
			}
			if err := w.Flush(); err != nil {
				return
			}
		}
	}
}

// binOpName labels a traced binary command with the text-protocol verb
// it corresponds to, so ServerSpan.Op reads identically across wire
// formats.
func binOpName(op byte) string {
	switch op {
	case binOpGet, binOpGetK:
		return "get"
	case binOpGetQ, binOpGetKQ, binOpNoop:
		return "get_multi"
	case binOpSet:
		return "set"
	case binOpSetP:
		return "setp"
	case binOpAdd:
		return "add"
	case binOpReplace:
		return "replace"
	case binOpDelete:
		return "delete"
	case binOpIncrement:
		return "incr"
	case binOpDecrement:
		return "decr"
	case binOpAppend:
		return "append"
	case binOpPrepend:
		return "prepend"
	case binOpTouch:
		return "touch"
	case binOpFlush:
		return "flush_all"
	case binOpStat:
		return "stats"
	case binOpVersion:
		return "version"
	default:
		return fmt.Sprintf("op_0x%02x", op)
	}
}

// flushQuiet executes the buffered quiet gets as ONE backend multi-get
// against be and emits responses for hits only (quiet semantics).
func (s *Server) flushQuiet(w *bufio.Writer, quiet *[]pendingQuietGet, be Backend) error {
	batch := *quiet
	if len(batch) == 0 {
		return nil
	}
	*quiet = (*quiet)[:0]
	keys := make([]string, len(batch))
	for i, q := range batch {
		keys[i] = q.key
	}
	s.stats.Transactions.Add(1) // the whole quiet run is one transaction
	s.stats.CmdGet.Add(uint64(len(keys)))
	items, err := be.GetMulti(keys)
	if err != nil {
		// Report the failure on each pending opaque so the client does
		// not hang waiting for hits that will never come.
		for _, q := range batch {
			if werr := writeBinResponse(w, q.opcode, binStatusInternal, q.opaque, 0, nil, "", nil); werr != nil {
				return werr
			}
		}
		return nil
	}
	var extras [4]byte
	for _, q := range batch {
		it, ok := items[q.key]
		if !ok {
			s.stats.GetMisses.Add(1)
			continue // quiet: misses are silent
		}
		s.stats.GetHits.Add(1)
		binary.BigEndian.PutUint32(extras[:], it.Flags)
		key := ""
		if q.opcode == binOpGetKQ {
			key = q.key
		}
		if err := writeBinResponse(w, q.opcode, binStatusOK, q.opaque, it.CAS, extras[:], key, it.Value); err != nil {
			return err
		}
	}
	return nil
}

// dispatchBinary handles one blocking (non-quiet) request against be —
// the raw backend, or the per-command timing wrapper when traced.
func (s *Server) dispatchBinary(req *binRequest, w *bufio.Writer, be Backend) error {
	fail := func(status uint16) error {
		return writeBinResponse(w, req.opcode, status, req.opaque, 0, nil, "", nil)
	}
	switch req.opcode {
	case binOpGet, binOpGetK:
		s.stats.CmdGet.Add(1)
		items, err := be.GetMulti([]string{req.key})
		if err != nil {
			return fail(binStatusInternal)
		}
		it, ok := items[req.key]
		if !ok {
			s.stats.GetMisses.Add(1)
			return fail(binStatusNotFound)
		}
		s.stats.GetHits.Add(1)
		var extras [4]byte
		binary.BigEndian.PutUint32(extras[:], it.Flags)
		key := ""
		if req.opcode == binOpGetK {
			key = req.key
		}
		return writeBinResponse(w, req.opcode, binStatusOK, req.opaque, it.CAS, extras[:], key, it.Value)

	case binOpSet, binOpAdd, binOpReplace, binOpSetP:
		s.stats.CmdSet.Add(1)
		if len(req.extras) != 8 || req.key == "" {
			return fail(binStatusInvalidArgs)
		}
		it := &Item{
			Key:        req.key,
			Value:      req.value,
			Flags:      binary.BigEndian.Uint32(req.extras[0:4]),
			Expiration: int32(binary.BigEndian.Uint32(req.extras[4:8])),
		}
		var err error
		switch req.opcode {
		case binOpSet:
			if req.cas != 0 {
				it.CAS = req.cas
				err = be.CompareAndSwap(it)
			} else {
				err = be.Set(it)
			}
		case binOpSetP:
			err = be.SetPinned(it)
		case binOpAdd:
			err = be.Add(it)
		case binOpReplace:
			err = be.Replace(it)
		}
		switch {
		case err == nil:
			return writeBinResponse(w, req.opcode, binStatusOK, req.opaque, 0, nil, "", nil)
		case err == ErrNotStored:
			return fail(binStatusNotStored)
		case err == ErrCASConflict:
			return fail(binStatusExists)
		case err == ErrCacheMiss:
			return fail(binStatusNotFound)
		case err == ErrTooLarge:
			return fail(binStatusTooLarge)
		case err == ErrBadKey:
			return fail(binStatusInvalidArgs)
		default:
			return fail(binStatusInternal)
		}

	case binOpDelete:
		if req.key == "" {
			return fail(binStatusInvalidArgs)
		}
		if err := be.Delete(req.key); err != nil {
			return fail(binStatusNotFound)
		}
		return writeBinResponse(w, req.opcode, binStatusOK, req.opaque, 0, nil, "", nil)

	case binOpIncrement, binOpDecrement:
		// Extras: delta(8) initial(8) expiration(4). Matching the text
		// grammar, deltas are capped at 63 bits (the store computes in
		// int64) and a missing key is NOT_FOUND — auto-create (any
		// expiration other than 0xffffffff) is not supported, keeping
		// both wire formats byte-equivalent for the differential suite.
		if len(req.extras) != 20 || req.key == "" {
			return fail(binStatusInvalidArgs)
		}
		delta := binary.BigEndian.Uint64(req.extras[0:8])
		if exp := binary.BigEndian.Uint32(req.extras[16:20]); exp != binNoAutoCreate {
			return fail(binStatusInvalidArgs)
		}
		if !binDeltaInRange(delta) {
			return fail(binStatusInvalidArgs)
		}
		d := int64(delta)
		if req.opcode == binOpDecrement {
			d = -d
		}
		val, err := be.Increment(req.key, d)
		switch {
		case err == nil:
			var body [8]byte
			binary.BigEndian.PutUint64(body[:], val)
			return writeBinResponse(w, req.opcode, binStatusOK, req.opaque, 0, nil, "", body[:])
		case err == ErrCacheMiss:
			return fail(binStatusNotFound)
		case err == ErrBadKey:
			return fail(binStatusInvalidArgs)
		default:
			// e.g. non-numeric value: the text grammar answers
			// CLIENT_ERROR (a kept-connection reply error), so the binary
			// side must also map to the generic-status bucket.
			return fail(binStatusInternal)
		}

	case binOpAppend, binOpPrepend:
		if len(req.extras) != 0 || req.key == "" {
			return fail(binStatusInvalidArgs)
		}
		var err error
		if req.opcode == binOpAppend {
			err = be.Append(req.key, req.value)
		} else {
			err = be.Prepend(req.key, req.value)
		}
		switch {
		case err == nil:
			return writeBinResponse(w, req.opcode, binStatusOK, req.opaque, 0, nil, "", nil)
		case err == ErrNotStored, err == ErrCacheMiss:
			return fail(binStatusNotStored)
		case err == ErrTooLarge:
			return fail(binStatusTooLarge)
		case err == ErrBadKey:
			return fail(binStatusInvalidArgs)
		default:
			return fail(binStatusInternal)
		}

	case binOpTouch:
		if len(req.extras) != 4 || req.key == "" {
			return fail(binStatusInvalidArgs)
		}
		exp := int32(binary.BigEndian.Uint32(req.extras))
		if err := be.Touch(req.key, exp); err != nil {
			return fail(binStatusNotFound)
		}
		return writeBinResponse(w, req.opcode, binStatusOK, req.opaque, 0, nil, "", nil)

	case binOpFlush:
		if err := be.FlushAll(); err != nil {
			return fail(binStatusInternal)
		}
		return writeBinResponse(w, req.opcode, binStatusOK, req.opaque, 0, nil, "", nil)

	case binOpVersion:
		return writeBinResponse(w, req.opcode, binStatusOK, req.opaque, 0, nil, "", []byte(VersionBanner))

	case binOpStat:
		for k, v := range be.BackendStats() {
			if err := writeBinResponse(w, binOpStat, binStatusOK, req.opaque, 0, nil, k, []byte(v)); err != nil {
				return err
			}
		}
		// Terminator: empty key and value.
		return writeBinResponse(w, binOpStat, binStatusOK, req.opaque, 0, nil, "", nil)

	default:
		return fail(binStatusUnknownCmd)
	}
}
