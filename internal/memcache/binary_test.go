package memcache

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"
)

func startBinServer(t *testing.T, capacity int64) (*Server, *BinClient) {
	t.Helper()
	srv := NewServer(NewStore(capacity))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	cl, err := DialBinary(ln.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return srv, cl
}

func TestBinarySetGet(t *testing.T) {
	_, cl := startBinServer(t, 0)
	if err := cl.Set(&Item{Key: "k", Value: []byte("v"), Flags: 1234}); err != nil {
		t.Fatal(err)
	}
	it, err := cl.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if string(it.Value) != "v" || it.Flags != 1234 {
		t.Fatalf("round trip: %+v", it)
	}
	if it.CAS == 0 {
		t.Fatal("binary get returned no CAS token")
	}
	if _, err := cl.Get("missing"); !errors.Is(err, ErrCacheMiss) {
		t.Fatalf("miss: %v", err)
	}
}

func TestBinaryMultiGetIsOneTransaction(t *testing.T) {
	srv, cl := startBinServer(t, 0)
	keys := make([]string, 30)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%02d", i)
		if err := cl.Set(&Item{Key: keys[i], Value: []byte("v")}); err != nil {
			t.Fatal(err)
		}
	}
	// Include two misses.
	reqKeys := append(append([]string(nil), keys...), "m1", "m2")
	before := cl.Transactions()
	items, err := cl.GetMulti(reqKeys)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 30 {
		t.Fatalf("got %d items", len(items))
	}
	if got := cl.Transactions() - before; got != 1 {
		t.Fatalf("multi-get used %d client transactions", got)
	}
	// Server side: hits/misses counted through the quiet batch.
	if srv.Stats().GetMisses.Load() != 2 {
		t.Fatalf("server misses = %d", srv.Stats().GetMisses.Load())
	}
}

func TestBinaryBinaryValuesSurvive(t *testing.T) {
	_, cl := startBinServer(t, 0)
	vals := [][]byte{{}, {0, 1, 2, 0x80, 0x81, 255}, []byte(strings.Repeat("z", 5000))}
	for i, v := range vals {
		key := fmt.Sprintf("b%d", i)
		if err := cl.Set(&Item{Key: key, Value: v}); err != nil {
			t.Fatal(err)
		}
		it, err := cl.Get(key)
		if err != nil || string(it.Value) != string(v) {
			t.Fatalf("value %d corrupted", i)
		}
	}
}

func TestBinaryAddReplaceDelete(t *testing.T) {
	_, cl := startBinServer(t, 0)
	if err := cl.Add(&Item{Key: "k", Value: []byte("1")}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Add(&Item{Key: "k", Value: []byte("2")}); !errors.Is(err, ErrNotStored) {
		t.Fatalf("second add: %v", err)
	}
	if err := cl.Replace(&Item{Key: "k", Value: []byte("3")}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Delete("k"); !errors.Is(err, ErrCacheMiss) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestBinaryCASViaSet(t *testing.T) {
	_, cl := startBinServer(t, 0)
	_ = cl.Set(&Item{Key: "k", Value: []byte("a")})
	it, err := cl.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	it.Value = []byte("b")
	if err := cl.Set(it); err != nil { // CAS != 0 -> conditional store
		t.Fatalf("cas-set with fresh token: %v", err)
	}
	it.Value = []byte("c")
	if err := cl.Set(it); !errors.Is(err, ErrCASConflict) {
		t.Fatalf("stale cas-set: %v", err)
	}
	// Unconditional set (CAS 0) always works.
	if err := cl.Set(&Item{Key: "k", Value: []byte("d")}); err != nil {
		t.Fatal(err)
	}
}

func TestBinarySetPinnedSurvivesPressure(t *testing.T) {
	_, cl := startBinServer(t, 8*1024)
	if err := cl.SetPinned(&Item{Key: "pin", Value: []byte("stay")}); err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 200)
	for i := 0; i < 400; i++ {
		if err := cl.Set(&Item{Key: fmt.Sprintf("c%03d", i), Value: big}); err != nil {
			t.Fatal(err)
		}
	}
	if it, err := cl.Get("pin"); err != nil || string(it.Value) != "stay" {
		t.Fatalf("pinned entry lost: %v %v", it, err)
	}
}

func TestBinaryTouchFlushVersionStats(t *testing.T) {
	_, cl := startBinServer(t, 0)
	_ = cl.Set(&Item{Key: "k", Value: []byte("v")})
	if err := cl.Touch("k", 1000); err != nil {
		t.Fatal(err)
	}
	if err := cl.Touch("missing", 10); !errors.Is(err, ErrCacheMiss) {
		t.Fatalf("touch missing: %v", err)
	}
	v, err := cl.Version()
	if err != nil || !strings.Contains(v, "rnb-memcache") {
		t.Fatalf("version: %q %v", v, err)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st["curr_items"] != "1" {
		t.Fatalf("stats: %v", st)
	}
	if err := cl.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get("k"); !errors.Is(err, ErrCacheMiss) {
		t.Fatal("flush did not flush")
	}
}

func TestBinaryAndTextShareOnePort(t *testing.T) {
	// The same listener serves both protocols: write with text, read
	// with binary and vice versa.
	srv, bin := startBinServer(t, 0)
	text, err := Dial(srv.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer text.Close()

	if err := text.Set(&Item{Key: "from-text", Value: []byte("t")}); err != nil {
		t.Fatal(err)
	}
	if it, err := bin.Get("from-text"); err != nil || string(it.Value) != "t" {
		t.Fatalf("text->binary: %v %v", it, err)
	}
	if err := bin.Set(&Item{Key: "from-bin", Value: []byte("b")}); err != nil {
		t.Fatal(err)
	}
	if it, err := text.Get("from-bin"); err != nil || string(it.Value) != "b" {
		t.Fatalf("binary->text: %v %v", it, err)
	}
}

func TestBinaryUnknownOpcode(t *testing.T) {
	srv, _ := startBinServer(t, 0)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hdr := make([]byte, binHeaderLen)
	hdr[0] = binMagicReq
	hdr[1] = 0x7e // unassigned opcode
	if _, err := conn.Write(hdr); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	res := make([]byte, binHeaderLen)
	if _, err := readFullConn(conn, res); err != nil {
		t.Fatal(err)
	}
	if res[0] != binMagicRes {
		t.Fatalf("response magic 0x%02x", res[0])
	}
	if status := uint16(res[6])<<8 | uint16(res[7]); status != binStatusUnknownCmd {
		t.Fatalf("status 0x%04x, want unknown-command", status)
	}
}

func readFullConn(conn net.Conn, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		m, err := conn.Read(buf[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

func TestBinaryGarbageHeaderDropsConn(t *testing.T) {
	srv, _ := startBinServer(t, 0)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Valid magic, but body length that exceeds limits.
	hdr := make([]byte, binHeaderLen)
	hdr[0] = binMagicReq
	hdr[1] = binOpSet
	hdr[8], hdr[9], hdr[10], hdr[11] = 0xff, 0xff, 0xff, 0xff
	if _, err := conn.Write(hdr); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server kept the connection after an oversized frame")
	}
	// The server itself survives.
	cl, err := DialBinary(srv.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Set(&Item{Key: "ok", Value: []byte("v")}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryQuitClosesConn(t *testing.T) {
	srv, _ := startBinServer(t, 0)
	cl, err := DialBinary(srv.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Issue quit manually through the client internals.
	err = cl.roundTrip(func() error {
		if err := cl.writeReq(binOpQuit, 1, 0, nil, "", nil); err != nil {
			return err
		}
		if err := cl.w.Flush(); err != nil {
			return err
		}
		res, err := cl.readRes()
		if err != nil {
			return err
		}
		if res.opcode != binOpQuit {
			return fmt.Errorf("unexpected opcode %d", res.opcode)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBinaryEmptyMultiGet(t *testing.T) {
	_, cl := startBinServer(t, 0)
	items, err := cl.GetMulti(nil)
	if err != nil || len(items) != 0 {
		t.Fatalf("empty multi-get: %v %v", items, err)
	}
	if _, err := cl.GetMulti([]string{"bad key"}); !errors.Is(err, ErrBadKey) {
		t.Fatalf("bad key: %v", err)
	}
}
