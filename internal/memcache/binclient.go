package memcache

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"
)

// BinClient is a memcached binary-protocol client for a single server.
// Multi-gets are pipelined quiet gets (GetKQ…Noop) in one write — one
// transaction on the wire, like libmemcached's behavior that the
// paper's micro-benchmarks rely on.
type BinClient struct {
	addr    string
	timeout time.Duration

	mu     sync.Mutex
	conn   net.Conn
	r      *bufio.Reader
	w      *bufio.Writer
	opaque uint32

	transactions uint64
}

// DialBinary connects a binary-protocol client to addr.
func DialBinary(addr string, timeout time.Duration) (*BinClient, error) {
	c := &BinClient{addr: addr, timeout: timeout}
	if err := c.connect(); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *BinClient) connect() error {
	conn, err := net.Dial("tcp", c.addr)
	if err != nil {
		return err
	}
	c.conn = conn
	c.r = bufio.NewReaderSize(conn, 64<<10)
	c.w = bufio.NewWriterSize(conn, 64<<10)
	return nil
}

// Close tears down the connection.
func (c *BinClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// Addr returns the server address.
func (c *BinClient) Addr() string { return c.addr }

// Transactions returns the number of wire round-trips issued.
func (c *BinClient) Transactions() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.transactions
}

func (c *BinClient) roundTrip(fn func() error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		if err := c.connect(); err != nil {
			return err
		}
	}
	if c.timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.timeout))
	}
	c.transactions++
	if err := fn(); err != nil {
		c.conn.Close()
		c.conn = nil
		return err
	}
	return nil
}

// writeReq emits one request frame.
func (c *BinClient) writeReq(opcode byte, opaque uint32, cas uint64, extras []byte, key string, value []byte) error {
	h := binHeader{
		magic:    binMagicReq,
		opcode:   opcode,
		keyLen:   uint16(len(key)),
		extraLen: uint8(len(extras)),
		bodyLen:  uint32(len(extras) + len(key) + len(value)),
		opaque:   opaque,
		cas:      cas,
	}
	var hdr [binHeaderLen]byte
	h.encode(hdr[:])
	if _, err := c.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := c.w.Write(extras); err != nil {
		return err
	}
	if _, err := c.w.WriteString(key); err != nil {
		return err
	}
	_, err := c.w.Write(value)
	return err
}

// readRes reads one response frame.
func (c *BinClient) readRes() (*binRequest, error) {
	var hdr [binHeaderLen]byte
	if _, err := readFull(c.r, hdr[:]); err != nil {
		return nil, err
	}
	res := &binRequest{}
	if err := res.decode(hdr[:]); err != nil {
		return nil, err
	}
	if res.magic != binMagicRes {
		return nil, fmt.Errorf("memcache: bad response magic 0x%02x", res.magic)
	}
	body := make([]byte, res.bodyLen)
	if _, err := readFull(c.r, body); err != nil {
		return nil, err
	}
	res.extras = body[:res.extraLen]
	res.key = string(body[res.extraLen : uint32(res.extraLen)+uint32(res.keyLen)])
	res.value = body[uint32(res.extraLen)+uint32(res.keyLen):]
	return res, nil
}

// statusError maps a response status onto the protocol error set. The
// mapping (including the replyError default for unknown statuses, which
// keeps the connection usable) lives in bincodec.go so BinClient and
// the pooled binary transport cannot drift.
func statusError(status uint16) error { return binStatusError(status) }

// GetMulti fetches keys as one pipelined quiet-get transaction.
func (c *BinClient) GetMulti(keys []string) (map[string]*Item, error) {
	if len(keys) == 0 {
		return map[string]*Item{}, nil
	}
	for _, k := range keys {
		if !validKey(k) {
			return nil, ErrBadKey
		}
	}
	out := make(map[string]*Item, len(keys))
	err := c.roundTrip(func() error {
		base := c.opaque
		for i, k := range keys {
			if err := c.writeReq(binOpGetKQ, base+uint32(i), 0, nil, k, nil); err != nil {
				return err
			}
		}
		noopOpaque := base + uint32(len(keys))
		c.opaque = noopOpaque + 1
		if err := c.writeReq(binOpNoop, noopOpaque, 0, nil, "", nil); err != nil {
			return err
		}
		if err := c.w.Flush(); err != nil {
			return err
		}
		for {
			res, err := c.readRes()
			if err != nil {
				return err
			}
			if res.opcode == binOpNoop {
				return nil
			}
			if res.opcode != binOpGetKQ || res.status != binStatusOK {
				continue // errored quiet get: treated as a miss
			}
			it := &Item{Key: res.key, Value: res.value, CAS: res.cas}
			if len(res.extras) >= 4 {
				it.Flags = binary.BigEndian.Uint32(res.extras[:4])
			}
			out[it.Key] = it
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Get fetches one key.
func (c *BinClient) Get(key string) (*Item, error) {
	items, err := c.GetMulti([]string{key})
	if err != nil {
		return nil, err
	}
	it, ok := items[key]
	if !ok {
		return nil, ErrCacheMiss
	}
	return it, nil
}

func (c *BinClient) store(opcode byte, it *Item, cas uint64) error {
	if !validKey(it.Key) {
		return ErrBadKey
	}
	if len(it.Value) > MaxValueLen {
		return ErrTooLarge
	}
	var status uint16
	err := c.roundTrip(func() error {
		var extras [8]byte
		binary.BigEndian.PutUint32(extras[0:4], it.Flags)
		binary.BigEndian.PutUint32(extras[4:8], uint32(it.Expiration))
		op := c.opaque
		c.opaque++
		if err := c.writeReq(opcode, op, cas, extras[:], it.Key, it.Value); err != nil {
			return err
		}
		if err := c.w.Flush(); err != nil {
			return err
		}
		res, err := c.readRes()
		if err != nil {
			return err
		}
		status = res.status
		return nil
	})
	if err != nil {
		return err
	}
	return statusError(status)
}

// Set stores unconditionally (or CAS-conditionally when it.CAS != 0,
// per binary-protocol semantics).
func (c *BinClient) Set(it *Item) error { return c.store(binOpSet, it, it.CAS) }

// SetPinned stores via the RnB pinning extension opcode.
func (c *BinClient) SetPinned(it *Item) error { return c.store(binOpSetP, it, 0) }

// Add stores only if absent.
func (c *BinClient) Add(it *Item) error { return c.store(binOpAdd, it, 0) }

// Replace stores only if present.
func (c *BinClient) Replace(it *Item) error { return c.store(binOpReplace, it, 0) }

// simpleOp issues a keyed request with optional extras and maps the
// response status.
func (c *BinClient) simpleOp(opcode byte, key string, extras []byte) error {
	var status uint16
	err := c.roundTrip(func() error {
		op := c.opaque
		c.opaque++
		if err := c.writeReq(opcode, op, 0, extras, key, nil); err != nil {
			return err
		}
		if err := c.w.Flush(); err != nil {
			return err
		}
		res, err := c.readRes()
		if err != nil {
			return err
		}
		status = res.status
		return nil
	})
	if err != nil {
		return err
	}
	return statusError(status)
}

// Delete removes a key.
func (c *BinClient) Delete(key string) error {
	if !validKey(key) {
		return ErrBadKey
	}
	return c.simpleOp(binOpDelete, key, nil)
}

// Touch updates a key's expiration.
func (c *BinClient) Touch(key string, exp int32) error {
	if !validKey(key) {
		return ErrBadKey
	}
	var extras [4]byte
	binary.BigEndian.PutUint32(extras[:], uint32(exp))
	return c.simpleOp(binOpTouch, key, extras[:])
}

// FlushAll wipes the server.
func (c *BinClient) FlushAll() error { return c.simpleOp(binOpFlush, "", nil) }

// Version returns the server version banner.
func (c *BinClient) Version() (string, error) {
	var out string
	err := c.roundTrip(func() error {
		op := c.opaque
		c.opaque++
		if err := c.writeReq(binOpVersion, op, 0, nil, "", nil); err != nil {
			return err
		}
		if err := c.w.Flush(); err != nil {
			return err
		}
		res, err := c.readRes()
		if err != nil {
			return err
		}
		out = string(res.value)
		return statusError(res.status)
	})
	return out, err
}

// Stats fetches the server's stats map.
func (c *BinClient) Stats() (map[string]string, error) {
	out := map[string]string{}
	err := c.roundTrip(func() error {
		op := c.opaque
		c.opaque++
		if err := c.writeReq(binOpStat, op, 0, nil, "", nil); err != nil {
			return err
		}
		if err := c.w.Flush(); err != nil {
			return err
		}
		for {
			res, err := c.readRes()
			if err != nil {
				return err
			}
			if err := statusError(res.status); err != nil {
				return err
			}
			if res.key == "" {
				return nil // terminator
			}
			out[res.key] = string(res.value)
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
