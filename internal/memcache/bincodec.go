package memcache

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"math"
)

// This file is the binary-protocol request codec for the pooled
// transport: one write half and one read half per command, operating on
// bare bufio endpoints, exactly mirroring the text codec in codec.go.
// The split is what lets memcache.Pool pipeline binary requests with
// the same writer/reader machinery it uses for text — a request is
// fully described by (write, read), responses arrive strictly in
// request order, and FIFO demux is exact.
//
// Multi-get is the paper's case for the binary protocol: N quiet gets
// (GetKQ) plus one terminating Noop form ONE transaction on the wire
// (the server batches the quiet run into a single backend multi-get),
// where the text protocol spends one parsed "get k1 k2 ..." line and N
// "VALUE ..." header parses. Misses cost zero response bytes.
//
// Error taxonomy matches the text codec: a malformed or out-of-sequence
// frame leaves the stream position unknown and is conn-fatal, while a
// fully consumed negative status (not found, not stored, CAS conflict)
// keeps the connection usable.

// errBinDesync builds the canonical conn-fatal framing error.
func errBinDesync(format string, args ...interface{}) error {
	return fmt.Errorf("memcache: binary desync: "+format, args...)
}

// writeBinFrame emits one request frame. Allocation-free: header,
// extras, and key (24 + ≤20 + ≤250 bytes — always inside the shared
// 320-byte line scratch) are assembled in a pooled buffer and written
// once; only the value, which already lives on the caller's heap, is
// streamed separately. A stack buffer would not do: bufio.Writer.Write
// leaks its argument through the underlying io.Writer interface, so a
// stack-assembled header is forced to the heap once per frame.
func writeBinFrame(w *bufio.Writer, opcode byte, opaque uint32, cas uint64, extras []byte, key string, value []byte) error {
	h := binHeader{
		magic:    binMagicReq,
		opcode:   opcode,
		keyLen:   uint16(len(key)),
		extraLen: uint8(len(extras)),
		bodyLen:  uint32(len(extras) + len(key) + len(value)),
		opaque:   opaque,
		cas:      cas,
	}
	scratch := lineScratch.Get().(*[320]byte)
	b := scratch[:binHeaderLen]
	h.encode(b)
	b = append(b, extras...)
	b = append(b, key...)
	_, err := w.Write(b)
	lineScratch.Put(scratch)
	if err != nil {
		return err
	}
	_, err = w.Write(value)
	return err
}

// readBinHeader reads and validates one response header. Violations
// (wrong magic, impossible lengths) are conn-fatal by construction:
// the stream position afterwards would be unknown.
func readBinHeader(r *bufio.Reader, h *binHeader) error {
	// Peek+Discard instead of reading into a local buffer: the header is
	// decoded in place inside the reader's 64KiB buffer (always big
	// enough for 24 bytes), so the hot read path allocates nothing.
	hdr, err := r.Peek(binHeaderLen)
	if err != nil {
		return err
	}
	if err := h.decode(hdr); err != nil {
		return err
	}
	if _, err := r.Discard(binHeaderLen); err != nil {
		return err
	}
	if h.magic != binMagicRes {
		return errBinDesync("bad response magic 0x%02x", h.magic)
	}
	if h.bodyLen > MaxValueLen+uint32(h.keyLen)+uint32(h.extraLen) {
		// A corrupt (or hostile) header must not drive a giant
		// allocation or a multi-gigabyte discard.
		return errBinDesync("response body %d bytes exceeds limit", h.bodyLen)
	}
	return nil
}

// discardBinBody consumes a frame's body without retaining it.
func discardBinBody(r *bufio.Reader, h *binHeader) error {
	if h.bodyLen == 0 {
		return nil
	}
	if _, err := r.Discard(int(h.bodyLen)); err != nil {
		return err
	}
	return nil
}

// --- multi-get: GetKQ pipeline + Noop terminator ---------------------

// writeBinMultiGetCmd emits len(keys) quiet gets plus the terminating
// Noop. Quiet-get i carries opaque i and the Noop carries opaque
// len(keys), so the read half can detect reordered or foreign frames.
func writeBinMultiGetCmd(w *bufio.Writer, keys []string) error {
	for i, k := range keys {
		if err := writeBinFrame(w, binOpGetKQ, uint32(i), 0, nil, k, nil); err != nil {
			return err
		}
	}
	return writeBinFrame(w, binOpNoop, uint32(len(keys)), 0, nil, "", nil)
}

// readBinMultiGetInto consumes quiet-get responses until the
// terminating Noop, merging hits into out. Misses are silent (that is
// the point of GetKQ); an errored quiet get consumed a complete frame
// and counts as a miss. Frames violating the expected shape — wrong
// opcode, opaque out of range or out of order, corrupt lengths — are
// conn-fatal.
func readBinMultiGetInto(r *bufio.Reader, n int, out map[string]*Item) error {
	var h binHeader
	last := -1
	for {
		if err := readBinHeader(r, &h); err != nil {
			return err
		}
		switch h.opcode {
		case binOpNoop:
			if h.opaque != uint32(n) {
				return errBinDesync("noop opaque %d, want %d", h.opaque, n)
			}
			return discardBinBody(r, &h)
		case binOpGetKQ:
		default:
			return errBinDesync("opcode 0x%02x inside quiet-get pipeline", h.opcode)
		}
		if h.opaque >= uint32(n) || int(h.opaque) <= last {
			return errBinDesync("quiet-get opaque %d out of order (last %d, batch %d)", h.opaque, last, n)
		}
		last = int(h.opaque)
		if h.status != binStatusOK {
			// Quiet semantics: an errored get is a miss; the frame is
			// fully consumed so the stream stays in sync.
			if err := discardBinBody(r, &h); err != nil {
				return err
			}
			continue
		}
		if h.keyLen == 0 {
			return errBinDesync("quiet-get hit without key")
		}
		body := make([]byte, h.bodyLen)
		if _, err := readFull(r, body); err != nil {
			return err
		}
		it := &Item{
			Key:   string(body[h.extraLen : uint32(h.extraLen)+uint32(h.keyLen)]),
			Value: body[uint32(h.extraLen)+uint32(h.keyLen):],
			CAS:   h.cas,
		}
		if h.extraLen >= 4 {
			it.Flags = binary.BigEndian.Uint32(body[:4])
		}
		out[it.Key] = it
	}
}

// --- single-frame commands -------------------------------------------

// binStatusError maps a response status onto the protocol error set.
// Unknown statuses become replyErrors: the frame was fully consumed, so
// the connection stays usable — mirroring the text codec's
// "server answered" rule.
func binStatusError(status uint16) error {
	switch status {
	case binStatusOK:
		return nil
	case binStatusNotFound:
		return ErrCacheMiss
	case binStatusExists:
		return ErrCASConflict
	case binStatusNotStored:
		return ErrNotStored
	case binStatusTooLarge:
		return ErrTooLarge
	case binStatusInvalidArgs:
		return ErrBadKey
	default:
		return &replyError{msg: fmt.Sprintf("memcache: server answered binary status 0x%04x", status)}
	}
}

// readBinStatusReply consumes exactly one response frame for opcode and
// maps its status. The body (error text on failures, empty on success)
// is discarded, so the connection is in sync whatever the outcome.
func readBinStatusReply(r *bufio.Reader, opcode byte) error {
	var h binHeader
	if err := readBinHeader(r, &h); err != nil {
		return err
	}
	if h.opcode != opcode {
		return errBinDesync("response opcode 0x%02x, want 0x%02x", h.opcode, opcode)
	}
	if err := discardBinBody(r, &h); err != nil {
		return err
	}
	return binStatusError(h.status)
}

// writeBinStoreCmd emits one set/add/replace/setp frame (8-byte
// flags+exptime extras, per the memcached binary layout).
func writeBinStoreCmd(w *bufio.Writer, opcode byte, it *Item, cas uint64) error {
	var extras [8]byte
	binary.BigEndian.PutUint32(extras[0:4], it.Flags)
	binary.BigEndian.PutUint32(extras[4:8], uint32(it.Expiration))
	return writeBinFrame(w, opcode, 0, cas, extras[:], it.Key, it.Value)
}

// writeBinConcatCmd emits an append/prepend frame (no extras).
func writeBinConcatCmd(w *bufio.Writer, opcode byte, key string, data []byte) error {
	return writeBinFrame(w, opcode, 0, 0, nil, key, data)
}

// binNoAutoCreate in the incr/decr expiration field means "do not
// create missing counters" — the text protocol's semantics, which both
// transports must share for the differential suite to hold.
const binNoAutoCreate = 0xffffffff

// writeBinIncrDecrCmd emits an increment/decrement frame: 20-byte
// extras (delta, initial, expiration). Expiration is pinned to
// binNoAutoCreate so a missing key answers NotFound exactly like the
// text protocol's incr/decr.
func writeBinIncrDecrCmd(w *bufio.Writer, opcode byte, key string, delta uint64) error {
	var extras [20]byte
	binary.BigEndian.PutUint64(extras[0:8], delta)
	binary.BigEndian.PutUint32(extras[16:20], binNoAutoCreate)
	return writeBinFrame(w, opcode, 0, 0, extras[:], key, nil)
}

// readBinCounterReply consumes an incr/decr response and returns the
// new counter value (8-byte big-endian body on success).
func readBinCounterReply(r *bufio.Reader, opcode byte) (uint64, error) {
	var h binHeader
	if err := readBinHeader(r, &h); err != nil {
		return 0, err
	}
	if h.opcode != opcode {
		return 0, errBinDesync("response opcode 0x%02x, want 0x%02x", h.opcode, opcode)
	}
	if h.status != binStatusOK {
		if err := discardBinBody(r, &h); err != nil {
			return 0, err
		}
		return 0, binStatusError(h.status)
	}
	if h.bodyLen != 8 {
		return 0, errBinDesync("counter reply body %d bytes, want 8", h.bodyLen)
	}
	val, err := r.Peek(8)
	if err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint64(val)
	if _, err := r.Discard(8); err != nil {
		return 0, err
	}
	return v, nil
}

// writeBinTouchCmd emits a touch frame (4-byte expiration extras).
func writeBinTouchCmd(w *bufio.Writer, key string, exp int32) error {
	var extras [4]byte
	binary.BigEndian.PutUint32(extras[:], uint32(exp))
	return writeBinFrame(w, binOpTouch, 0, 0, extras[:], key, nil)
}

// readBinVersionReply consumes a version response and returns the
// banner.
func readBinVersionReply(r *bufio.Reader) (string, error) {
	var h binHeader
	if err := readBinHeader(r, &h); err != nil {
		return "", err
	}
	if h.opcode != binOpVersion {
		return "", errBinDesync("response opcode 0x%02x, want version", h.opcode)
	}
	body := make([]byte, h.bodyLen)
	if _, err := readFull(r, body); err != nil {
		return "", err
	}
	if err := binStatusError(h.status); err != nil {
		return "", err
	}
	return string(body[uint32(h.extraLen)+uint32(h.keyLen):]), nil
}

// readBinStatsInto consumes STAT frames until the empty-key
// terminator, merging entries into out.
func readBinStatsInto(r *bufio.Reader, out map[string]string) error {
	var h binHeader
	for {
		if err := readBinHeader(r, &h); err != nil {
			return err
		}
		if h.opcode != binOpStat {
			return errBinDesync("response opcode 0x%02x, want stat", h.opcode)
		}
		if h.status != binStatusOK {
			if err := discardBinBody(r, &h); err != nil {
				return err
			}
			return binStatusError(h.status)
		}
		if h.keyLen == 0 {
			return discardBinBody(r, &h) // terminator
		}
		body := make([]byte, h.bodyLen)
		if _, err := readFull(r, body); err != nil {
			return err
		}
		key := string(body[h.extraLen : uint32(h.extraLen)+uint32(h.keyLen)])
		out[key] = string(body[uint32(h.extraLen)+uint32(h.keyLen):])
	}
}

// binDeltaInRange reports whether a binary incr/decr delta fits the
// text grammar's 63-bit budget (the store computes in int64).
func binDeltaInRange(delta uint64) bool { return delta <= math.MaxInt64 }
