package memcache

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// binResFrame assembles one binary response frame for fuzz seeds.
func binResFrame(opcode byte, status uint16, opaque uint32, cas uint64, extras []byte, key, value string) []byte {
	body := len(extras) + len(key) + len(value)
	b := make([]byte, 24, 24+body)
	b[0] = binMagicRes
	b[1] = opcode
	binary.BigEndian.PutUint16(b[2:], uint16(len(key)))
	b[4] = byte(len(extras))
	binary.BigEndian.PutUint16(b[6:], status)
	binary.BigEndian.PutUint32(b[8:], uint32(body))
	binary.BigEndian.PutUint32(b[12:], opaque)
	binary.BigEndian.PutUint64(b[16:], cas)
	b = append(b, extras...)
	b = append(b, key...)
	b = append(b, value...)
	return b
}

// FuzzBinaryDemux is FuzzPoolDemux's twin for the quiet-get transport:
// a fake server answers every connection with an arbitrary byte stream
// while three concurrent binary multi-gets are in flight. Whatever the
// stream — bad magic, truncated extras, oversized declared body
// lengths, misordered opaques, wrong opcodes — the pool must neither
// panic, nor hang past its deadline, nor leak goroutines (Close must
// return).
func FuzzBinaryDemux(f *testing.F) {
	hit := func(opaque uint32, key, val string) []byte {
		return binResFrame(binOpGetKQ, binStatusOK, opaque, 1, []byte{0, 0, 0, 0}, key, val)
	}
	noop := func(opaque uint32) []byte {
		return binResFrame(binOpNoop, binStatusOK, opaque, 0, nil, "", "")
	}
	cat := func(frames ...[]byte) []byte { return bytes.Join(frames, nil) }
	seeds := [][]byte{
		cat(hit(0, "a", "x"), hit(1, "b", "y"), noop(3)),
		cat(noop(3), noop(3), noop(3)),
		cat(hit(2, "c", "z"), hit(0, "a", "x"), noop(3)), // opaque misorder
		cat(hit(7, "a", "x"), noop(3)),                   // opaque out of range
		hit(0, "a", "x")[:20],                            // truncated header
		cat(hit(0, "a", "x")[:25]),                       // truncated extras
		func() []byte { // oversized declared bodyLen
			b := hit(0, "a", "x")
			binary.BigEndian.PutUint32(b[8:], 0xffffffff)
			return b
		}(),
		func() []byte { // request magic where a response belongs
			b := cat(hit(0, "a", "x"), noop(3))
			b[0] = binMagicReq
			return b
		}(),
		cat(binResFrame(binOpSet, binStatusOK, 0, 0, nil, "", ""), noop(3)), // wrong opcode
		cat(hit(0, "a", "x"), binResFrame(binOpGetKQ, binStatusNotFound, 1, 0, nil, "", ""), noop(3)),
		{},
		{0xff, 0xfe, 0x00, 0x0d, 0x0a},
		[]byte("VALUE a 0 1\r\nx\r\nEND\r\n"), // text reply on a binary conn
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip()
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		go func() {
			for {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				go func(conn net.Conn) {
					defer conn.Close()
					go func() {
						buf := make([]byte, 4096)
						for {
							if _, err := conn.Read(buf); err != nil {
								return
							}
						}
					}()
					conn.Write(data)
					time.Sleep(400 * time.Millisecond)
				}(conn)
			}
		}()
		p, err := NewPool(ln.Addr().String(), 150*time.Millisecond, PoolConfig{Size: 2, Depth: 8, Binary: true})
		if err != nil {
			t.Skip() // accept raced the dial; nothing to fuzz
		}
		var wg sync.WaitGroup
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Errors are expected — panics and hangs are the bugs.
				p.GetMulti([]string{"a", "b", "c"})
			}()
		}
		wg.Wait()
		if err := p.Close(); err != nil {
			t.Fatalf("pool close after binary demux fuzz: %v", err)
		}
	})
}

// FuzzCrossProtocol decodes the fuzz input as an operation script and
// replays it over a text pool and a binary pool, each against its own
// server. Whatever the script, every op must land in the same result
// bucket on both wires and the final store states must be identical —
// the fuzz-shaped version of TestThreeWayDifferential.
func FuzzCrossProtocol(f *testing.F) {
	f.Add([]byte{0, 0, 10, 9, 1, 0, 5, 0, 0, 6, 1, 99})
	f.Add([]byte{2, 3, 0, 3, 3, 0, 4, 3, 0, 9, 0, 0})
	f.Add([]byte{6, 0, 7, 5, 0, 200, 6, 0, 255, 7, 1, 0, 8, 2, 0})
	f.Add([]byte{1, 4, 4, 2, 4, 4, 0, 4, 0, 5, 4, 5, 9, 4, 0})
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 300 {
			t.Skip()
		}
		textAddr, textStore := startLaneServer(t)
		binAddr, binStore := startLaneServer(t)
		tp := newTestPool(t, textAddr, PoolConfig{Size: 1})
		bp := newBinPool(t, binAddr, PoolConfig{Size: 1})

		const population = 8
		key := func(b byte) string { return fmt.Sprintf("fz:%d", b%population) }
		apply := func(c Conn, op [3]byte) (string, string) {
			k := key(op[1])
			switch op[0] % 10 {
			case 0:
				v := bytes.Repeat([]byte{op[2]}, int(op[2])%64)
				return errBucket(c.Set(&Item{Key: k, Value: v, Flags: uint32(op[2])})), ""
			case 1:
				return errBucket(c.Add(&Item{Key: k, Value: []byte{op[2]}})), ""
			case 2:
				return errBucket(c.Replace(&Item{Key: k, Value: []byte{op[2], op[2]}})), ""
			case 3:
				return errBucket(c.Append(k, []byte{'A', op[2]})), ""
			case 4:
				return errBucket(c.Prepend(k, []byte{'P', op[2]})), ""
			case 5:
				v, err := c.Incr(k, uint64(op[2]))
				if err != nil {
					return errBucket(err), ""
				}
				return "ok", fmt.Sprintf("%d", v)
			case 6:
				v, err := c.Decr(k, uint64(op[2]))
				if err != nil {
					return errBucket(err), ""
				}
				return "ok", fmt.Sprintf("%d", v)
			case 7:
				return errBucket(c.Delete(k)), ""
			case 8:
				return errBucket(c.Touch(k, 3600)), ""
			default:
				items, err := c.GetMulti([]string{k, key(op[1] + 1), key(op[1] + 2)})
				if err != nil {
					return errBucket(err), ""
				}
				var buf bytes.Buffer
				for i := byte(0); i < 3; i++ {
					if it, ok := items[key(op[1]+i)]; ok {
						fmt.Fprintf(&buf, "%s=%d:%d;", key(op[1]+i), len(it.Value), it.Flags)
					}
				}
				return "ok", buf.String()
			}
		}

		for i := 0; i+3 <= len(script); i += 3 {
			var op [3]byte
			copy(op[:], script[i:i+3])
			tb, tpay := apply(tp, op)
			bb, bpay := apply(bp, op)
			if tb != bb || tpay != bpay {
				t.Fatalf("op %d %v: text (%s, %q) vs binary (%s, %q)", i/3, op, tb, tpay, bb, bpay)
			}
		}
		if textStore.Len() != binStore.Len() || textStore.Bytes() != binStore.Bytes() {
			t.Fatalf("store state diverged: text %d items/%d bytes, binary %d items/%d bytes",
				textStore.Len(), textStore.Bytes(), binStore.Len(), binStore.Bytes())
		}
		allKeys := make([]string, population)
		for i := range allKeys {
			allKeys[i] = key(byte(i))
		}
		want, err := tp.GetMulti(allKeys)
		if err != nil {
			t.Fatal(err)
		}
		got, err := bp.GetMulti(allKeys)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("final sweep: text %d keys, binary %d", len(want), len(got))
		}
		for k, w := range want {
			g, ok := got[k]
			if !ok || !bytes.Equal(g.Value, w.Value) || g.Flags != w.Flags {
				t.Fatalf("final state diverged on %s", k)
			}
		}
	})
}
