package memcache

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"rnb/internal/chaos"
	"rnb/internal/leakcheck"
)

// newBinPool builds a pool speaking the binary protocol (quiet-get
// pipelining) against addr.
func newBinPool(t *testing.T, addr string, cfg PoolConfig) *Pool {
	t.Helper()
	cfg.Binary = true
	return newTestPool(t, addr, cfg)
}

// TestBinaryPoolBasicOps drives every Conn operation once through the
// binary pooled transport — the getq/noop analogue of TestPoolBasicOps.
func TestBinaryPoolBasicOps(t *testing.T) {
	leakcheck.Check(t)
	p := newBinPool(t, poolTestServer(t, nil), PoolConfig{})
	if err := p.Set(&Item{Key: "k", Value: []byte("v"), Flags: 7}); err != nil {
		t.Fatal(err)
	}
	it, err := p.Get("k")
	if err != nil || string(it.Value) != "v" || it.Flags != 7 {
		t.Fatalf("Get: %v %v", it, err)
	}
	if _, err := p.Get("absent"); err != ErrCacheMiss {
		t.Fatalf("miss: %v", err)
	}
	if err := p.Add(&Item{Key: "k", Value: []byte("x")}); err != ErrNotStored {
		t.Fatalf("Add existing: %v", err)
	}
	if err := p.Replace(&Item{Key: "k", Value: []byte("v2")}); err != nil {
		t.Fatalf("Replace: %v", err)
	}
	if err := p.Replace(&Item{Key: "nope", Value: []byte("x")}); err != ErrNotStored {
		t.Fatalf("Replace absent: %v", err)
	}
	items, err := p.GetsMulti([]string{"k"})
	if err != nil || items["k"] == nil || items["k"].CAS == 0 {
		t.Fatalf("GetsMulti: %v %v", items, err)
	}
	stale := &Item{Key: "k", Value: []byte("v3"), CAS: items["k"].CAS + 99}
	if err := p.CompareAndSwap(stale); err != ErrCASConflict {
		t.Fatalf("stale CAS: %v", err)
	}
	fresh := &Item{Key: "k", Value: []byte("v3"), CAS: items["k"].CAS}
	if err := p.CompareAndSwap(fresh); err != nil {
		t.Fatalf("fresh CAS: %v", err)
	}
	// CAS 0 is never a token the store hands out; the binary wire would
	// read it as an unconditional set, so the client must refuse it.
	if err := p.CompareAndSwap(&Item{Key: "k", Value: []byte("x"), CAS: 0}); err != ErrCASConflict {
		t.Fatalf("zero CAS: %v", err)
	}
	if err := p.Append("k", []byte("!")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := p.Prepend("k", []byte("!")); err != nil {
		t.Fatalf("Prepend: %v", err)
	}
	if it, err := p.Get("k"); err != nil || string(it.Value) != "!v3!" {
		t.Fatalf("after concat: %v %v", it, err)
	}
	if err := p.Append("ghost", []byte("!")); err != ErrNotStored {
		t.Fatalf("Append absent: %v", err)
	}
	if err := p.Set(&Item{Key: "n", Value: []byte("10")}); err != nil {
		t.Fatal(err)
	}
	if v, err := p.Incr("n", 5); err != nil || v != 15 {
		t.Fatalf("Incr: %d %v", v, err)
	}
	if v, err := p.Decr("n", 20); err != nil || v != 0 {
		t.Fatalf("Decr clamp: %d %v", v, err)
	}
	if _, err := p.Incr("absent", 1); err != ErrCacheMiss {
		t.Fatalf("Incr absent: %v", err)
	}
	if err := p.Set(&Item{Key: "nan", Value: []byte("pear")}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Incr("nan", 1); err == nil || isConnFatal(err) {
		t.Fatalf("Incr non-numeric should answer, not kill the conn: %v", err)
	}
	if err := p.Touch("k", 60); err != nil {
		t.Fatalf("Touch: %v", err)
	}
	if err := p.Touch("absent", 60); err != ErrCacheMiss {
		t.Fatalf("Touch absent: %v", err)
	}
	if err := p.Delete("k"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := p.Delete("k"); err != ErrCacheMiss {
		t.Fatalf("Delete absent: %v", err)
	}
	if err := p.SetPinned(&Item{Key: "pin", Value: []byte("p")}); err != nil {
		t.Fatalf("SetPinned: %v", err)
	}
	if _, err := p.Version(); err != nil {
		t.Fatalf("Version: %v", err)
	}
	stats, err := p.Stats()
	if err != nil || len(stats) == 0 {
		t.Fatalf("Stats: %v %v", stats, err)
	}
	if err := p.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	if _, err := p.Get("pin"); err != ErrCacheMiss {
		t.Fatalf("post-flush: %v", err)
	}
	if p.Transactions() == 0 {
		t.Fatal("no transactions counted")
	}
}

// TestBinaryPoolPipelines: the quiet-get transport must actually
// pipeline — concurrent multigets over one connection overlap on the
// wire instead of taking turns.
func TestBinaryPoolPipelines(t *testing.T) {
	leakcheck.Check(t)
	p := newBinPool(t, poolTestServer(t, nil), PoolConfig{Size: 1, Depth: 64})
	if err := p.Set(&Item{Key: "k", Value: []byte("v")}); err != nil {
		t.Fatal(err)
	}
	const G = 32
	var wg sync.WaitGroup
	errs := make(chan error, G)
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				items, err := p.GetMulti([]string{"k", "absent"})
				if err != nil {
					errs <- err
					return
				}
				if len(items) != 1 || string(items["k"].Value) != "v" {
					errs <- fmt.Errorf("demux cross-wired: %v", items)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if p.ConnsOpen() != 1 {
		t.Fatalf("pool grew beyond Size=1: %d conns", p.ConnsOpen())
	}
	if hw := p.Gauges().PipelineHighWater.Load(); hw < 2 {
		t.Fatalf("pipeline high water %d; requests never overlapped", hw)
	}
}

// TestBinaryPoolQuietGetIsOneTransaction pins the tentpole's whole
// point: a pooled binary multiget of N keys lands on the server as ONE
// backend transaction (the getq run batches into a single GetMulti),
// not N.
func TestBinaryPoolQuietGetIsOneTransaction(t *testing.T) {
	leakcheck.Check(t)
	store := NewStore(0)
	srv := NewServer(store)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	p := newBinPool(t, ln.Addr().String(), PoolConfig{Size: 1})

	ks := make([]string, 16)
	for i := range ks {
		ks[i] = fmt.Sprintf("k%02d", i)
		if err := p.Set(&Item{Key: ks[i], Value: []byte("v")}); err != nil {
			t.Fatal(err)
		}
	}
	before := srv.Stats().Transactions.Load()
	items, err := p.GetMulti(ks)
	if err != nil || len(items) != len(ks) {
		t.Fatalf("GetMulti: %d items, %v", len(items), err)
	}
	if got := srv.Stats().Transactions.Load() - before; got != 1 {
		t.Fatalf("16-key binary multiget cost %d server transactions, want 1", got)
	}
}

// TestBinaryPoolIdempotentReplay mirrors TestPoolIdempotentReplay over
// the binary wire: reads replay once on a fresh conn, invisibly.
func TestBinaryPoolIdempotentReplay(t *testing.T) {
	leakcheck.Check(t)
	in := chaos.New(chaos.Profile{Seed: 1, Script: []chaos.ConnPlan{{ResetAfterWrites: 1}, {}, {}, {}}})
	p := newBinPool(t, poolTestServer(t, in), PoolConfig{Size: 2})
	if err := p.Set(&Item{Key: "k", Value: []byte("v")}); err != nil {
		t.Fatal(err)
	}
	it, err := p.Get("k")
	if err != nil {
		t.Fatalf("read not replayed over a fresh connection: %v", err)
	}
	if string(it.Value) != "v" {
		t.Fatalf("replayed read returned %q", it.Value)
	}
	if p.Gauges().Replays.Load() == 0 {
		t.Fatal("replay gauge not bumped; conn death was never exercised")
	}
}

// TestBinaryPoolMutationsNotReplayed: binary mutations on a dying conn
// surface the error — same per-request failure semantics as text.
func TestBinaryPoolMutationsNotReplayed(t *testing.T) {
	leakcheck.Check(t)
	in := chaos.New(chaos.Profile{Seed: 1, Script: []chaos.ConnPlan{{ResetAfterWrites: 1}, {}, {}, {}}})
	p := newBinPool(t, poolTestServer(t, in), PoolConfig{Size: 2})
	if err := p.Set(&Item{Key: "k", Value: []byte("v")}); err != nil {
		t.Fatal(err)
	}
	if err := p.Set(&Item{Key: "k", Value: []byte("w")}); err == nil {
		t.Fatal("mutation on a dying connection silently replayed")
	}
	if err := p.Set(&Item{Key: "k", Value: []byte("w")}); err != nil {
		t.Fatalf("recovery after conn death: %v", err)
	}
	if p.Gauges().Replays.Load() != 0 {
		t.Fatalf("pool replayed a mutation %d times", p.Gauges().Replays.Load())
	}
}

// TestBinaryPoolBadKeyAndTooLarge: validation happens before any wire
// contact, identically to the text transports.
func TestBinaryPoolBadKeyAndTooLarge(t *testing.T) {
	leakcheck.Check(t)
	p := newBinPool(t, poolTestServer(t, nil), PoolConfig{})
	if _, err := p.GetMulti([]string{"has space"}); err != ErrBadKey {
		t.Fatalf("bad key: %v", err)
	}
	if err := p.Set(&Item{Key: "k", Value: make([]byte, MaxValueLen+1)}); err != ErrTooLarge {
		t.Fatalf("too large: %v", err)
	}
	if before := p.Transactions(); before != 0 {
		t.Fatalf("invalid requests reached the wire: %d transactions", before)
	}
}

// errBucket collapses an operation error into a category for the
// differential matrix: two transports agree iff every op lands in the
// same bucket (values compared separately). "other" covers protocol-
// answered errors (text CLIENT_ERROR / binary non-OK status) that keep
// the connection — a conn-fatal error would fail the op loop itself.
func errBucket(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrCacheMiss):
		return "miss"
	case errors.Is(err, ErrNotStored):
		return "notstored"
	case errors.Is(err, ErrCASConflict):
		return "casconflict"
	case errors.Is(err, ErrBadKey):
		return "badkey"
	case errors.Is(err, ErrTooLarge):
		return "toolarge"
	default:
		return "other"
	}
}

// transportLane is one column of the differential matrix: a transport
// speaking to its own private server/store.
type transportLane struct {
	name  string
	conn  Conn
	store *Store
}

// startLaneServer starts a fresh server and returns its address and
// backing store (for the end-of-run state comparison).
func startLaneServer(t *testing.T) (string, *Store) {
	t.Helper()
	store := NewStore(0)
	srv := NewServer(store)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String(), store
}

// TestThreeWayDifferential is the matrix oracle: one seeded op sequence
// covering the full grammar (set/add/replace/cas/append/prepend/incr/
// decr/delete/touch/get/gets multiget) replayed over three transports —
// text single-connection, text pooled, binary pooled — each against its
// own server. Every op must land in the same result bucket with the
// same payload on all three, and the final store states must be
// identical (same keys, values, flags, byte counts).
func TestThreeWayDifferential(t *testing.T) {
	leakcheck.Check(t)
	lanes := make([]transportLane, 3)
	for i, name := range []string{"text-single", "text-pooled", "binary-pooled"} {
		addr, store := startLaneServer(t)
		var conn Conn
		switch i {
		case 0:
			cl, err := Dial(addr, time.Second)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { cl.Close() })
			conn = cl
		case 1:
			conn = newTestPool(t, addr, PoolConfig{Size: 2, Depth: 8})
		case 2:
			conn = newBinPool(t, addr, PoolConfig{Size: 2, Depth: 8})
		}
		lanes[i] = transportLane{name: name, conn: conn, store: store}
	}

	const population = 24
	key := func(i int) string { return fmt.Sprintf("dk:%02d", ((i%population)+population)%population) }
	rng := rand.New(rand.NewSource(99))
	value := func(n int) []byte {
		v := make([]byte, n)
		for i := range v {
			v[i] = byte('a' + (n+i)%26)
		}
		return v
	}
	sizes := []int{0, 1, 17, 300, 4096, 70_000}

	// apply runs one op against a lane and returns (bucket, payload).
	// The payload captures whatever the op returned beyond the error:
	// counter values, fetched items — so divergence in content, not just
	// category, fails the matrix.
	type opFunc func(c Conn) (string, string)
	ops := []func() opFunc{
		func() opFunc { // set
			k, v, fl := key(rng.Intn(population)), value(sizes[rng.Intn(len(sizes))]), uint32(rng.Intn(1<<16))
			return func(c Conn) (string, string) {
				return errBucket(c.Set(&Item{Key: k, Value: v, Flags: fl})), ""
			}
		},
		func() opFunc { // add
			k, v := key(rng.Intn(population)), value(8)
			return func(c Conn) (string, string) { return errBucket(c.Add(&Item{Key: k, Value: v})), "" }
		},
		func() opFunc { // replace
			k, v := key(rng.Intn(population)), value(11)
			return func(c Conn) (string, string) { return errBucket(c.Replace(&Item{Key: k, Value: v})), "" }
		},
		func() opFunc { // cas: fetch the lane's own token, maybe go stale
			k, v, stale := key(rng.Intn(population)), value(9), rng.Intn(2) == 0
			return func(c Conn) (string, string) {
				items, err := c.GetsMulti([]string{k})
				if err != nil {
					return "gets:" + errBucket(err), ""
				}
				it, ok := items[k]
				if !ok {
					return "gets:miss", ""
				}
				cas := it.CAS
				if stale {
					cas += 99
				}
				return "cas:" + errBucket(c.CompareAndSwap(&Item{Key: k, Value: v, CAS: cas})), ""
			}
		},
		func() opFunc { // append / prepend
			k, v, pre := key(rng.Intn(population)), value(5), rng.Intn(2) == 0
			return func(c Conn) (string, string) {
				if pre {
					return errBucket(c.Prepend(k, v)), ""
				}
				return errBucket(c.Append(k, v)), ""
			}
		},
		func() opFunc { // incr / decr (sometimes on non-numeric values)
			k, d, inc := key(rng.Intn(population)), uint64(rng.Intn(1000)), rng.Intn(2) == 0
			return func(c Conn) (string, string) {
				var v uint64
				var err error
				if inc {
					v, err = c.Incr(k, d)
				} else {
					v, err = c.Decr(k, d)
				}
				if err != nil {
					return errBucket(err), ""
				}
				return "ok", fmt.Sprintf("%d", v)
			}
		},
		func() opFunc { // counter seed: make some keys numeric
			k, n := key(rng.Intn(population)), rng.Intn(100000)
			return func(c Conn) (string, string) {
				return errBucket(c.Set(&Item{Key: k, Value: []byte(fmt.Sprintf("%d", n))})), ""
			}
		},
		func() opFunc { // delete
			k := key(rng.Intn(population))
			return func(c Conn) (string, string) { return errBucket(c.Delete(k)), "" }
		},
		func() opFunc { // touch
			k := key(rng.Intn(population))
			return func(c Conn) (string, string) { return errBucket(c.Touch(k, 3600)), "" }
		},
		func() opFunc { // multiget (get or gets), random subset
			start, n, gets := rng.Intn(population), 1+rng.Intn(10), rng.Intn(2) == 0
			return func(c Conn) (string, string) {
				ks := make([]string, 0, n)
				for j := 0; j < n; j++ {
					ks = append(ks, key(start+j))
				}
				var items map[string]*Item
				var err error
				if gets {
					items, err = c.GetsMulti(ks)
				} else {
					items, err = c.GetMulti(ks)
				}
				if err != nil {
					return errBucket(err), ""
				}
				// Render deterministically; CAS tokens are per-server so
				// they stay out of the payload.
				var buf bytes.Buffer
				for _, k := range ks {
					if it, ok := items[k]; ok {
						fmt.Fprintf(&buf, "%s=%d:%d;", k, len(it.Value), it.Flags)
						if len(it.Value) > 0 {
							buf.WriteByte(it.Value[0])
						}
					}
				}
				return "ok", buf.String()
			}
		},
	}

	for round := 0; round < 400; round++ {
		op := ops[rng.Intn(len(ops))]()
		bucket0, payload0 := "", ""
		for i, lane := range lanes {
			b, pl := op(lane.conn)
			if i == 0 {
				bucket0, payload0 = b, pl
				continue
			}
			if b != bucket0 {
				t.Fatalf("round %d: %s bucket %q, %s bucket %q",
					round, lanes[0].name, bucket0, lane.name, b)
			}
			if pl != payload0 {
				t.Fatalf("round %d: %s payload %q, %s payload %q",
					round, lanes[0].name, payload0, lane.name, pl)
			}
		}
	}

	// Final store-state comparison: identical item counts and byte
	// totals, and every key byte-identical across lanes.
	for _, lane := range lanes[1:] {
		if got, want := lane.store.Len(), lanes[0].store.Len(); got != want {
			t.Fatalf("store length diverged: %s=%d %s=%d", lanes[0].name, want, lane.name, got)
		}
		if got, want := lane.store.Bytes(), lanes[0].store.Bytes(); got != want {
			t.Fatalf("store bytes diverged: %s=%d %s=%d", lanes[0].name, want, lane.name, got)
		}
	}
	allKeys := make([]string, population)
	for i := range allKeys {
		allKeys[i] = key(i)
	}
	ref, err := lanes[0].conn.GetMulti(allKeys)
	if err != nil {
		t.Fatal(err)
	}
	for _, lane := range lanes[1:] {
		got, err := lane.conn.GetMulti(allKeys)
		if err != nil {
			t.Fatalf("%s: final sweep: %v", lane.name, err)
		}
		if len(got) != len(ref) {
			t.Fatalf("final state: %s has %d keys, %s has %d", lanes[0].name, len(ref), lane.name, len(got))
		}
		for k, w := range ref {
			g, ok := got[k]
			if !ok {
				t.Fatalf("final state: %s missing %s", lane.name, k)
			}
			if !bytes.Equal(g.Value, w.Value) || g.Flags != w.Flags {
				t.Fatalf("final state: %s diverges on %s (%d bytes flags %d vs %d bytes flags %d)",
					lane.name, k, len(g.Value), g.Flags, len(w.Value), w.Flags)
			}
		}
	}
}

// TestBinaryPoolDifferentialLargeValues pushes values past the bufio
// buffer through the quiet-get path and cross-checks against the text
// client, including deliberate misses interleaved mid-run.
func TestBinaryPoolDifferentialLargeValues(t *testing.T) {
	leakcheck.Check(t)
	addr, _ := startLaneServer(t)
	pool := newBinPool(t, addr, PoolConfig{Size: 3, Depth: 8})
	cl, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })

	rng := rand.New(rand.NewSource(43))
	sizes := []int{0, 1, 5, 128, 4096, 70_000}
	population := make([]string, 0, 64)
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("bdiff:%03d", i)
		population = append(population, key)
		if i%3 == 2 {
			continue // every third key is a deliberate miss
		}
		size := sizes[rng.Intn(len(sizes))]
		val := make([]byte, size)
		for j := range val {
			val[j] = byte('a' + (i+j)%26)
		}
		if err := cl.Set(&Item{Key: key, Value: val, Flags: uint32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 40; round++ {
		perm := rng.Perm(len(population))
		n := 1 + rng.Intn(20)
		keys := make([]string, 0, n)
		for _, idx := range perm[:n] {
			keys = append(keys, population[idx])
		}
		want, err := cl.GetMulti(keys)
		if err != nil {
			t.Fatalf("round %d: client: %v", round, err)
		}
		got, err := pool.GetMulti(keys)
		if err != nil {
			t.Fatalf("round %d: binary pool: %v", round, err)
		}
		if len(got) != len(want) {
			t.Fatalf("round %d: binary pool returned %d items, client %d", round, len(got), len(want))
		}
		for k, w := range want {
			g, ok := got[k]
			if !ok {
				t.Fatalf("round %d: binary pool missing %s", round, k)
			}
			if !bytes.Equal(g.Value, w.Value) {
				t.Fatalf("round %d: %s: binary %d bytes, client %d bytes", round, k, len(g.Value), len(w.Value))
			}
			if g.Flags != w.Flags {
				t.Fatalf("round %d: %s: flags %d vs %d", round, k, g.Flags, w.Flags)
			}
			if g.CAS == 0 {
				t.Fatalf("round %d: %s: binary multiget lost the CAS token", round, k)
			}
		}
	}
}

// TestServerSetProtocols pins the -protocols gate: a binary-only server
// drops text connections at the sniff and vice versa, and unknown modes
// are rejected.
func TestServerSetProtocols(t *testing.T) {
	leakcheck.Check(t)
	if err := NewServer(NewStore(0)).SetProtocols("carrier-pigeon"); err == nil {
		t.Fatal("unknown protocol mode accepted")
	}
	for _, tc := range []struct {
		mode          string
		textOK, binOK bool
	}{
		{"both", true, true},
		{"text", true, false},
		{"binary", false, true},
	} {
		srv := NewServer(NewStore(0))
		if err := srv.SetProtocols(tc.mode); err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		addr := ln.Addr().String()

		textErr := func() error {
			cl, err := Dial(addr, 300*time.Millisecond)
			if err != nil {
				return err
			}
			defer cl.Close()
			return cl.Set(&Item{Key: "t", Value: []byte("v")})
		}()
		binErr := func() error {
			p, err := NewPool(addr, 300*time.Millisecond, PoolConfig{Size: 1, Binary: true})
			if err != nil {
				return err
			}
			defer p.Close()
			return p.Set(&Item{Key: "b", Value: []byte("v")})
		}()
		if (textErr == nil) != tc.textOK {
			t.Fatalf("mode %s: text err=%v, want ok=%v", tc.mode, textErr, tc.textOK)
		}
		if (binErr == nil) != tc.binOK {
			t.Fatalf("mode %s: binary err=%v, want ok=%v", tc.mode, binErr, tc.binOK)
		}
		srv.Close()
	}
}
