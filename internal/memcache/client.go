package memcache

import (
	"bufio"
	"net"
	"sync"
	"time"

	"rnb/internal/obs"
)

// Client is a memcached text-protocol client for a single server. It
// multiplexes all calls over one connection guarded by a mutex —
// adequate for benchmarking and simple tools, where each load-generator
// goroutine owns its own Client. High-fan-out callers (the RnB client
// with many goroutines per server) should use Pool, the pooled,
// pipelined transport built on the same request codec.
type Client struct {
	addr    string
	timeout time.Duration

	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer

	// Reconnect policy: redialAttempts extra dial attempts with
	// exponential backoff starting at redialBackoff (see SetRedial).
	redialAttempts int
	redialBackoff  time.Duration

	// rttObs, when set, receives the wall time of every round trip —
	// failures and timeouts included, since they are the latency tail.
	rttObs func(time.Duration)

	// Transactions counts protocol round-trips issued — the quantity
	// RnB minimizes.
	transactions uint64

	// tracing enables wire-level trace propagation; traceOK caches the
	// handshake outcome (0 unknown, 1 negotiated, 2 plain server). With
	// tracing off — the default — the wire carries zero extra bytes.
	tracing bool
	traceOK int8
}

// Dial connects to a server at addr. timeout <= 0 means no I/O
// deadline.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	c := &Client{addr: addr, timeout: timeout}
	if err := c.connect(); err != nil {
		return nil, err
	}
	return c, nil
}

// SetRedial configures reconnect-with-backoff: when (re)establishing
// the connection fails, up to attempts additional dials are made with
// exponential backoff starting at backoff (default 10ms when <= 0).
// The default of 0 attempts keeps failures fast, which is what a
// circuit-breaking caller wants; daemons that prefer riding out brief
// listener restarts can opt in.
func (c *Client) SetRedial(attempts int, backoff time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.redialAttempts = attempts
	c.redialBackoff = backoff
}

// SetRTTObserver installs a per-round-trip latency observer (nil
// disables). Every round trip is stamped, replays and failed trips
// included: errors and timeouts are exactly the latency tail an
// operator wants visible.
func (c *Client) SetRTTObserver(obs func(time.Duration)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rttObs = obs
}

func (c *Client) connect() error {
	backoff := c.redialBackoff
	if backoff <= 0 {
		backoff = 10 * time.Millisecond
	}
	for attempt := 0; ; attempt++ {
		conn, err := net.Dial("tcp", c.addr)
		if err == nil {
			c.conn = conn
			c.r = bufio.NewReaderSize(conn, 64<<10)
			c.w = bufio.NewWriterSize(conn, 64<<10)
			return nil
		}
		if attempt >= c.redialAttempts {
			return err
		}
		time.Sleep(backoff)
		backoff *= 2
	}
}

// Close tears down the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// Addr returns the server address.
func (c *Client) Addr() string { return c.addr }

// Transactions returns the number of round-trips issued so far.
func (c *Client) Transactions() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.transactions
}

// armDeadline (re)arms the per-round-trip I/O deadline. It runs at the
// start of EVERY round trip — arming when a timeout is configured,
// clearing otherwise — so a pooled connection can never carry a stale
// deadline from an earlier operation into a later one.
func (c *Client) armDeadline() {
	if c.conn == nil {
		return
	}
	if c.timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.timeout))
	} else {
		c.conn.SetDeadline(time.Time{})
	}
}

// clearDeadline removes the deadline after a completed round trip, so
// a long-idle pooled connection is not sitting armed.
func (c *Client) clearDeadline() {
	if c.conn != nil {
		c.conn.SetDeadline(time.Time{})
	}
}

// roundTrip runs fn under the connection lock, counting a transaction.
func (c *Client) roundTrip(fn func() error) error {
	return c.do(fn, false)
}

// roundTripIdempotent is roundTrip with one transparent retry: if the
// operation fails on a *reused* pooled connection (stale after a
// server restart or an idle reset), the client reconnects and replays
// it once. Only read-only operations go through here — replaying a
// mutation could apply it twice.
func (c *Client) roundTripIdempotent(fn func() error) error {
	return c.do(fn, true)
}

func (c *Client) do(fn func() error, idempotent bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.doLocked(fn, idempotent)
}

func (c *Client) doLocked(fn func() error, idempotent bool) error {
	fresh := false
	if c.conn == nil {
		if err := c.connect(); err != nil {
			return err
		}
		fresh = true
	}
	c.armDeadline()
	c.transactions++
	start := time.Now()
	err := fn()
	if c.rttObs != nil {
		c.rttObs(time.Since(start))
	}
	if !isConnFatal(err) {
		// Success, or a protocol-level outcome (miss, CAS conflict,
		// declined store, status-line error): the reply was consumed in
		// full and the connection stays in sync.
		c.clearDeadline()
		return err
	}
	// Connection state is unknown after an I/O error; drop it.
	c.conn.Close()
	c.conn = nil
	if !idempotent || fresh {
		return err
	}
	// The pooled connection went stale between round trips; a fresh
	// connection gets one replay.
	if cerr := c.connect(); cerr != nil {
		return err
	}
	c.armDeadline()
	c.transactions++
	start = time.Now()
	err2 := fn()
	if c.rttObs != nil {
		c.rttObs(time.Since(start))
	}
	if isConnFatal(err2) {
		c.conn.Close()
		c.conn = nil
		return err2
	}
	c.clearDeadline()
	return err2
}

// Get fetches a single key.
func (c *Client) Get(key string) (*Item, error) {
	items, err := c.GetMulti([]string{key})
	if err != nil {
		return nil, err
	}
	it, ok := items[key]
	if !ok {
		return nil, ErrCacheMiss
	}
	return it, nil
}

// GetMulti fetches any number of keys in ONE transaction (a memcached
// multi-get) and returns the found items. Missing keys are simply
// absent from the result.
func (c *Client) GetMulti(keys []string) (map[string]*Item, error) {
	return c.getMulti("get", keys)
}

// GetsMulti is GetMulti with CAS tokens populated.
func (c *Client) GetsMulti(keys []string) (map[string]*Item, error) {
	return c.getMulti("gets", keys)
}

func (c *Client) getMulti(verb string, keys []string) (map[string]*Item, error) {
	if len(keys) == 0 {
		return map[string]*Item{}, nil
	}
	for _, k := range keys {
		if !validKey(k) {
			return nil, ErrBadKey
		}
	}
	out := make(map[string]*Item, len(keys))
	err := c.roundTripIdempotent(func() error {
		if err := writeGetCmd(c.w, verb, keys); err != nil {
			return err
		}
		if err := c.w.Flush(); err != nil {
			return err
		}
		return readValuesInto(c.r, verb == "gets", out)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SetTracing enables (or disables) wire-level trace propagation. The
// first traced round trip probes the server's version banner; only a
// server announcing rnb-memcache support ever sees a trace prefix, so
// plain memcached keeps receiving stock protocol bytes.
func (c *Client) SetTracing(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tracing == on {
		return
	}
	c.tracing = on
	c.traceOK = 0
}

// probeLocked resolves the tracing handshake with one version round
// trip. Called with the mutex held; a failure leaves the outcome
// unknown so a later traced request retries.
func (c *Client) probeLocked() {
	var banner string
	err := c.doLocked(func() error {
		if err := writeVersionCmd(c.w); err != nil {
			return err
		}
		if err := c.w.Flush(); err != nil {
			return err
		}
		var rerr error
		banner, rerr = readVersionReply(c.r)
		return rerr
	}, true)
	if err != nil {
		return
	}
	if bannerSupportsTracing(banner) {
		c.traceOK = 1
	} else {
		c.traceOK = 2
	}
}

// TracedGetMulti is GetMulti carrying a distributed-trace context. It
// returns the items, the client-side queue wait (time spent blocked on
// the connection mutex, in nanoseconds), and the server's phase
// timings — nil when the server did not negotiate tracing, in which
// case the request degraded to a stock multi-get.
func (c *Client) TracedGetMulti(tc obs.TraceContext, keys []string) (map[string]*Item, int64, *obs.ServerTimings, error) {
	if len(keys) == 0 {
		return map[string]*Item{}, 0, nil, nil
	}
	for _, k := range keys {
		if !validKey(k) {
			return nil, 0, nil, ErrBadKey
		}
	}
	lockStart := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	queueNS := time.Since(lockStart).Nanoseconds()
	if c.tracing && c.traceOK == 0 {
		c.probeLocked()
	}
	traced := c.tracing && c.traceOK == 1 && tc.Valid()
	out := make(map[string]*Item, len(keys))
	var st *obs.ServerTimings
	err := c.doLocked(func() error {
		if traced {
			if err := writeTraceCmd(c.w, tc); err != nil {
				return err
			}
		}
		if err := writeGetCmd(c.w, "get", keys); err != nil {
			return err
		}
		if err := c.w.Flush(); err != nil {
			return err
		}
		if err := readValuesInto(c.r, false, out); err != nil {
			return err
		}
		if traced {
			st = new(obs.ServerTimings)
			if err := readTraceReply(c.r, st); err != nil {
				st = nil
				return err
			}
		}
		return nil
	}, true)
	if err != nil {
		return nil, queueNS, nil, err
	}
	return out, queueNS, st, nil
}

// Set stores an item unconditionally.
func (c *Client) Set(it *Item) error { return c.store("set", it, 0) }

// SetPinned stores an item exempt from LRU eviction, via this server's
// RnB "setp" protocol extension. Distinguished copies are stored this
// way so they can never miss (paper §III-C-1). Not supported by stock
// memcached.
func (c *Client) SetPinned(it *Item) error { return c.store("setp", it, 0) }

// Add stores an item only if absent.
func (c *Client) Add(it *Item) error { return c.store("add", it, 0) }

// Replace stores an item only if present.
func (c *Client) Replace(it *Item) error { return c.store("replace", it, 0) }

// CompareAndSwap stores an item only if its CAS token still matches.
func (c *Client) CompareAndSwap(it *Item) error { return c.store("cas", it, it.CAS) }

// Append concatenates data after an existing value.
func (c *Client) Append(key string, data []byte) error {
	return c.store("append", &Item{Key: key, Value: data}, 0)
}

// Prepend concatenates data before an existing value.
func (c *Client) Prepend(key string, data []byte) error {
	return c.store("prepend", &Item{Key: key, Value: data}, 0)
}

// Incr adds delta to a decimal value, returning the new value.
func (c *Client) Incr(key string, delta uint64) (uint64, error) {
	return c.incrDecr("incr", key, delta)
}

// Decr subtracts delta from a decimal value (clamped at zero),
// returning the new value.
func (c *Client) Decr(key string, delta uint64) (uint64, error) {
	return c.incrDecr("decr", key, delta)
}

func (c *Client) incrDecr(verb, key string, delta uint64) (uint64, error) {
	if !validKey(key) {
		return 0, ErrBadKey
	}
	var out uint64
	err := c.roundTrip(func() error {
		if err := writeIncrDecrCmd(c.w, verb, key, delta); err != nil {
			return err
		}
		if err := c.w.Flush(); err != nil {
			return err
		}
		var rerr error
		out, rerr = readIncrDecrReply(c.r, verb)
		return rerr
	})
	return out, err
}

func (c *Client) store(verb string, it *Item, cas uint64) error {
	if !validKey(it.Key) {
		return ErrBadKey
	}
	if len(it.Value) > MaxValueLen {
		return ErrTooLarge
	}
	return c.roundTrip(func() error {
		if err := writeStoreCmd(c.w, verb, it, cas); err != nil {
			return err
		}
		if err := c.w.Flush(); err != nil {
			return err
		}
		return readStoreReply(c.r)
	})
}

// Touch updates a key's expiration time.
func (c *Client) Touch(key string, exp int32) error {
	if !validKey(key) {
		return ErrBadKey
	}
	return c.roundTrip(func() error {
		if err := writeTouchCmd(c.w, key, exp); err != nil {
			return err
		}
		if err := c.w.Flush(); err != nil {
			return err
		}
		return readTouchReply(c.r)
	})
}

// Delete removes a key.
func (c *Client) Delete(key string) error {
	if !validKey(key) {
		return ErrBadKey
	}
	return c.roundTrip(func() error {
		if err := writeDeleteCmd(c.w, key); err != nil {
			return err
		}
		if err := c.w.Flush(); err != nil {
			return err
		}
		return readDeleteReply(c.r)
	})
}

// FlushAll wipes the server.
func (c *Client) FlushAll() error {
	return c.roundTrip(func() error {
		if err := writeFlushAllCmd(c.w); err != nil {
			return err
		}
		if err := c.w.Flush(); err != nil {
			return err
		}
		return readFlushAllReply(c.r)
	})
}

// Version returns the server version banner.
func (c *Client) Version() (string, error) {
	var banner string
	err := c.roundTripIdempotent(func() error {
		if err := writeVersionCmd(c.w); err != nil {
			return err
		}
		if err := c.w.Flush(); err != nil {
			return err
		}
		var rerr error
		banner, rerr = readVersionReply(c.r)
		return rerr
	})
	return banner, err
}

// Stats fetches the server's stats map.
func (c *Client) Stats() (map[string]string, error) {
	out := map[string]string{}
	err := c.roundTripIdempotent(func() error {
		if err := writeStatsCmd(c.w); err != nil {
			return err
		}
		if err := c.w.Flush(); err != nil {
			return err
		}
		return readStatsInto(c.r, out)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
