package memcache

import (
	"net"
	"testing"
	"time"

	"rnb/internal/chaos"
)

// dialTestServer starts an in-process server (optionally behind a
// chaos injector) and returns a connected client.
func dialTestServer(t *testing.T, in *chaos.Injector, timeout time.Duration) *Client {
	t.Helper()
	srv := NewServer(NewStore(0))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wrapped := net.Listener(ln)
	if in != nil {
		wrapped = in.Wrap(ln)
	}
	go srv.Serve(wrapped)
	t.Cleanup(func() { srv.Close() })
	cl, err := Dial(ln.Addr().String(), timeout)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// TestDeadlineRearmedAfterIdle is the regression test for the stale-
// deadline bug: a pooled connection must not inherit the previous
// round trip's deadline. After sitting idle for several multiples of
// the timeout, operations must still succeed because every round trip
// (re)arms a fresh deadline and successful trips clear it.
func TestDeadlineRearmedAfterIdle(t *testing.T) {
	cl := dialTestServer(t, nil, 60*time.Millisecond)
	if err := cl.Set(&Item{Key: "k", Value: []byte("v")}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		time.Sleep(150 * time.Millisecond) // well past the armed deadline
		it, err := cl.Get("k")
		if err != nil {
			t.Fatalf("idle round %d: stale deadline killed the trip: %v", i, err)
		}
		if string(it.Value) != "v" {
			t.Fatalf("idle round %d: value %q", i, it.Value)
		}
	}
}

// TestDeadlineStillEnforced: the deadline must still fire against a
// server that accepts but never answers (black hole), bounding the
// round trip to roughly the configured timeout.
func TestDeadlineStillEnforced(t *testing.T) {
	in := chaos.New(chaos.Profile{Seed: 1, PBlackhole: 1})
	cl := dialTestServer(t, in, 100*time.Millisecond)
	start := time.Now()
	_, err := cl.Get("k")
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("black-holed round trip succeeded")
	}
	// One attempt plus the transparent idempotent replay: at most ~2
	// timeouts plus slack, never unbounded.
	if elapsed > time.Second {
		t.Fatalf("round trip took %v; deadline not armed", elapsed)
	}
}

// TestStaleConnectionReplay: a server that resets the connection after
// every response (restart-per-op) must be invisible to read callers —
// the client reconnects and replays idempotent reads once.
func TestStaleConnectionReplay(t *testing.T) {
	in := chaos.New(chaos.Profile{Seed: 1, Script: []chaos.ConnPlan{{ResetAfterWrites: 1}}})
	cl := dialTestServer(t, in, time.Second)
	if err := cl.Set(&Item{Key: "k", Value: []byte("v")}); err != nil {
		t.Fatal(err) // first op on a fresh conn: served, then the conn dies
	}
	for i := 0; i < 5; i++ {
		it, err := cl.Get("k")
		if err != nil {
			t.Fatalf("read %d not replayed over a fresh connection: %v", i, err)
		}
		if string(it.Value) != "v" {
			t.Fatalf("read %d: value %q", i, it.Value)
		}
	}
	if in.Stats().Resets == 0 {
		t.Fatal("chaos injected no resets; test proves nothing")
	}
}

// TestMutationsNotReplayed: non-idempotent operations must surface the
// stale-connection error instead of being silently replayed.
func TestMutationsNotReplayed(t *testing.T) {
	in := chaos.New(chaos.Profile{Seed: 1, Script: []chaos.ConnPlan{{ResetAfterWrites: 1}}})
	cl := dialTestServer(t, in, time.Second)
	if err := cl.Set(&Item{Key: "k", Value: []byte("v")}); err != nil {
		t.Fatal(err)
	}
	// The pooled connection is now dead; the next mutation must fail
	// rather than replay.
	if err := cl.Set(&Item{Key: "k", Value: []byte("w")}); err == nil {
		t.Fatal("mutation on a stale connection silently replayed")
	}
	// But the client recovers on the following round trip.
	if err := cl.Set(&Item{Key: "k", Value: []byte("w")}); err != nil {
		t.Fatalf("recovery after stale-conn error: %v", err)
	}
}

// TestRedialBackoff: with a reconnect policy, dial failures are
// retried with backoff instead of failing immediately.
func TestRedialBackoff(t *testing.T) {
	// No listener at all: every dial fails.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	cl, err := Dial(addr, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ln.Close() // kill the listener; the pooled conn dies with it

	cl.SetRedial(2, 20*time.Millisecond)
	start := time.Now()
	_, gerr := cl.Get("k")
	elapsed := time.Since(start)
	if gerr == nil {
		t.Fatal("read against a dead address succeeded")
	}
	// Two redials sleep 20ms + 40ms (per connect; the idempotent
	// replay may dial twice). At least one backed-off connect ran.
	if elapsed < 50*time.Millisecond {
		t.Fatalf("failed in %v; redial backoff not applied", elapsed)
	}
}

// TestRedialRecoversRestartedListener: a server restarted on the same
// address within the backoff window is transparently reconnected to.
func TestRedialRecoversRestartedListener(t *testing.T) {
	srv := NewServer(NewStore(0))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	go srv.Serve(ln)
	cl, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetRedial(10, 20*time.Millisecond)
	if err := cl.Set(&Item{Key: "k", Value: []byte("v")}); err != nil {
		t.Fatal(err)
	}

	// Restart the server on the same port after a short outage.
	srv.Close()
	go func() {
		time.Sleep(60 * time.Millisecond)
		srv2 := NewServer(NewStore(0))
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			return
		}
		go srv2.Serve(ln2)
	}()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := cl.Get("k"); err == nil || err == ErrCacheMiss {
			return // reconnected (the restarted store is empty: a miss is fine)
		}
		if time.Now().After(deadline) {
			t.Fatal("client never reconnected to the restarted listener")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
