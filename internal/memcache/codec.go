package memcache

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// This file is the text-protocol request codec: one write function and
// one read function per command, operating on bare bufio endpoints.
// Both transports are built on it — the single-connection Client wraps
// each write/read pair in a locked round trip, while the pipelined Pool
// lets a writer goroutine issue many write halves back to back and a
// reader goroutine demultiplex the read halves in request order. The
// split is what makes pipelining sound: a request is fully described by
// (write, read), so in-order execution against one connection needs no
// other shared state.

// replyError is a well-formed but negative or unexpected server reply
// ("SERVER_ERROR ...", an unknown status line, ...). The response was
// fully consumed, so the connection remains in sync and MUST NOT be
// torn down — unlike I/O and framing errors.
type replyError struct{ msg string }

func (e *replyError) Error() string { return e.msg }

// answeredError builds the canonical "server answered" replyError.
func answeredError(status string) error {
	return &replyError{msg: fmt.Sprintf("memcache: server answered %q", status)}
}

// isConnFatal reports whether err leaves the connection in an unknown
// or unsynchronized state (I/O error, corrupt frame). Protocol-level
// outcomes — cache misses, CAS conflicts, declined stores, error
// status lines — consumed a complete reply and keep the connection
// usable.
func isConnFatal(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrCacheMiss) || errors.Is(err, ErrNotStored) || errors.Is(err, ErrCASConflict) {
		return false
	}
	var re *replyError
	return !errors.As(err, &re)
}

// --- get / gets -------------------------------------------------------

func writeGetCmd(w *bufio.Writer, verb string, keys []string) error {
	var sb strings.Builder
	sb.WriteString(verb)
	for _, k := range keys {
		sb.WriteByte(' ')
		sb.WriteString(k)
	}
	sb.WriteString("\r\n")
	_, err := w.WriteString(sb.String())
	return err
}

// readValuesInto consumes VALUE blocks until END, merging items into
// out. Any framing violation is conn-fatal: once a VALUE header fails
// to parse the stream position is unknown.
func readValuesInto(r *bufio.Reader, withCAS bool, out map[string]*Item) error {
	for {
		line, err := readLine(r)
		if err != nil {
			return err
		}
		if bytes.Equal(line, []byte("END")) {
			return nil
		}
		it, err := readValue(r, line, withCAS)
		if err != nil {
			return err
		}
		out[it.Key] = it
	}
}

// readValue parses one "VALUE <key> <flags> <bytes> [cas]" header line
// plus its data block.
func readValue(r *bufio.Reader, line []byte, withCAS bool) (*Item, error) {
	fields := strings.Fields(string(line))
	want := 4
	if withCAS {
		want = 5
	}
	if len(fields) != want || fields[0] != "VALUE" {
		return nil, fmt.Errorf("memcache: unexpected response line %q", line)
	}
	flags, err := parseUint(fields[2], 32)
	if err != nil {
		return nil, err
	}
	size, err := parseUint(fields[3], 31)
	if err != nil {
		return nil, err
	}
	if size > MaxValueLen {
		// A corrupt (or hostile) header must not drive the allocation
		// below: no legitimate server exceeds the protocol's value cap.
		return nil, fmt.Errorf("memcache: VALUE header declares %d bytes (limit %d)", size, MaxValueLen)
	}
	it := &Item{Key: fields[1], Flags: uint32(flags)}
	if withCAS {
		if it.CAS, err = parseUint(fields[4], 64); err != nil {
			return nil, err
		}
	}
	data := make([]byte, size+2)
	if _, err := readFull(r, data); err != nil {
		return nil, err
	}
	if !bytes.HasSuffix(data, []byte("\r\n")) {
		return nil, fmt.Errorf("memcache: corrupt data block for %s", it.Key)
	}
	it.Value = data[:size]
	return it, nil
}

func readFull(r *bufio.Reader, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		m, err := r.Read(buf[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// --- storage commands -------------------------------------------------

func writeStoreCmd(w *bufio.Writer, verb string, it *Item, cas uint64) error {
	var sb strings.Builder
	sb.WriteString(verb)
	sb.WriteByte(' ')
	sb.WriteString(it.Key)
	sb.WriteByte(' ')
	sb.WriteString(strconv.FormatUint(uint64(it.Flags), 10))
	sb.WriteByte(' ')
	sb.WriteString(strconv.FormatInt(int64(it.Expiration), 10))
	sb.WriteByte(' ')
	sb.WriteString(strconv.Itoa(len(it.Value)))
	if verb == "cas" {
		sb.WriteByte(' ')
		sb.WriteString(strconv.FormatUint(cas, 10))
	}
	sb.WriteString("\r\n")
	if _, err := w.WriteString(sb.String()); err != nil {
		return err
	}
	if _, err := w.Write(it.Value); err != nil {
		return err
	}
	_, err := w.WriteString("\r\n")
	return err
}

func readStoreReply(r *bufio.Reader) error {
	line, err := readLine(r)
	if err != nil {
		return err
	}
	switch status := string(line); status {
	case "STORED":
		return nil
	case "NOT_STORED":
		return ErrNotStored
	case "EXISTS":
		return ErrCASConflict
	case "NOT_FOUND":
		return ErrCacheMiss
	default:
		return answeredError(status)
	}
}

// --- incr / decr ------------------------------------------------------

func writeIncrDecrCmd(w *bufio.Writer, verb, key string, delta uint64) error {
	_, err := fmt.Fprintf(w, "%s %s %d\r\n", verb, key, delta)
	return err
}

func readIncrDecrReply(r *bufio.Reader, verb string) (uint64, error) {
	line, err := readLine(r)
	if err != nil {
		return 0, err
	}
	status := string(line)
	if status == "NOT_FOUND" {
		return 0, ErrCacheMiss
	}
	if strings.HasPrefix(status, "CLIENT_ERROR") || strings.HasPrefix(status, "SERVER_ERROR") {
		return 0, answeredError(status)
	}
	v, perr := strconv.ParseUint(status, 10, 64)
	if perr != nil {
		return 0, &replyError{msg: fmt.Sprintf("memcache: unexpected %s response %q", verb, status)}
	}
	return v, nil
}

// --- delete / touch / flush_all --------------------------------------

func writeDeleteCmd(w *bufio.Writer, key string) error {
	_, err := fmt.Fprintf(w, "delete %s\r\n", key)
	return err
}

func readDeleteReply(r *bufio.Reader) error {
	line, err := readLine(r)
	if err != nil {
		return err
	}
	switch status := string(line); status {
	case "DELETED":
		return nil
	case "NOT_FOUND":
		return ErrCacheMiss
	default:
		return answeredError(status)
	}
}

func writeTouchCmd(w *bufio.Writer, key string, exp int32) error {
	_, err := fmt.Fprintf(w, "touch %s %d\r\n", key, exp)
	return err
}

func readTouchReply(r *bufio.Reader) error {
	line, err := readLine(r)
	if err != nil {
		return err
	}
	switch status := string(line); status {
	case "TOUCHED":
		return nil
	case "NOT_FOUND":
		return ErrCacheMiss
	default:
		return answeredError(status)
	}
}

func writeFlushAllCmd(w *bufio.Writer) error {
	_, err := w.WriteString("flush_all\r\n")
	return err
}

func readFlushAllReply(r *bufio.Reader) error {
	line, err := readLine(r)
	if err != nil {
		return err
	}
	if status := string(line); status != "OK" {
		return answeredError(status)
	}
	return nil
}

// --- version / stats --------------------------------------------------

func writeVersionCmd(w *bufio.Writer) error {
	_, err := w.WriteString("version\r\n")
	return err
}

func readVersionReply(r *bufio.Reader) (string, error) {
	line, err := readLine(r)
	if err != nil {
		return "", err
	}
	return strings.TrimPrefix(string(line), "VERSION "), nil
}

func writeStatsCmd(w *bufio.Writer) error {
	_, err := w.WriteString("stats\r\n")
	return err
}

func readStatsInto(r *bufio.Reader, out map[string]string) error {
	for {
		line, err := readLine(r)
		if err != nil {
			return err
		}
		if bytes.Equal(line, []byte("END")) {
			return nil
		}
		fields := strings.SplitN(string(line), " ", 3)
		if len(fields) == 3 && fields[0] == "STAT" {
			out[fields[1]] = fields[2]
		}
	}
}
