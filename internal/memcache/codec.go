package memcache

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"sync"
)

// This file is the text-protocol request codec: one write function and
// one read function per command, operating on bare bufio endpoints.
// Both transports are built on it — the single-connection Client wraps
// each write/read pair in a locked round trip, while the pipelined Pool
// lets a writer goroutine issue many write halves back to back and a
// reader goroutine demultiplex the read halves in request order. The
// split is what makes pipelining sound: a request is fully described by
// (write, read), so in-order execution against one connection needs no
// other shared state.
//
// The codec is written to stay off the allocator on the steady-state
// path: command lines are assembled in pooled scratch buffers, response
// lines are borrowed from the bufio buffer via ReadSlice instead of
// copied out, and numeric fields parse straight from bytes. The
// allocation-budget tests in alloc_test.go gate these properties.

// replyError is a well-formed but negative or unexpected server reply
// ("SERVER_ERROR ...", an unknown status line, ...). The response was
// fully consumed, so the connection remains in sync and MUST NOT be
// torn down — unlike I/O and framing errors.
type replyError struct{ msg string }

func (e *replyError) Error() string { return e.msg }

// answeredError builds the canonical "server answered" replyError.
func answeredError(status string) error {
	return &replyError{msg: fmt.Sprintf("memcache: server answered %q", status)}
}

// isConnFatal reports whether err leaves the connection in an unknown
// or unsynchronized state (I/O error, corrupt frame). Protocol-level
// outcomes — cache misses, CAS conflicts, declined stores, key/size
// rejections, error status lines — consumed a complete reply (or never
// touched the wire) and keep the connection usable. ErrBadKey and
// ErrTooLarge matter for the binary transport, whose status replies map
// onto them; the text read halves never return either, so listing them
// is harmless there.
func isConnFatal(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrCacheMiss) || errors.Is(err, ErrNotStored) || errors.Is(err, ErrCASConflict) ||
		errors.Is(err, ErrBadKey) || errors.Is(err, ErrTooLarge) {
		return false
	}
	var re *replyError
	return !errors.As(err, &re)
}

// lineScratch pools the scratch buffers command lines are assembled in.
// 320 bytes covers the longest single-key line: verb + key (≤250) +
// three uint fields + a CAS token + separators.
var lineScratch = sync.Pool{New: func() interface{} { return new([320]byte) }}

// readClientLine returns one CRLF-terminated response line WITHOUT
// copying it out of the bufio buffer: the slice is only valid until the
// next read. Client-facing response lines are bounded (the longest is a
// VALUE header: ~290 bytes), so a line overflowing the buffer is a
// protocol violation, reported as conn-fatal rather than ballooning.
func readClientLine(r *bufio.Reader) ([]byte, error) {
	line, err := r.ReadSlice('\n')
	if err != nil {
		if err == bufio.ErrBufferFull {
			return nil, fmt.Errorf("memcache: response line exceeds buffer")
		}
		return nil, err
	}
	// Trim the trailing \r\n (tolerating bare \n like the server does).
	line = line[:len(line)-1]
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, nil
}

// parseUintBytes is parseUint for borrowed byte slices — parsing in
// place avoids materializing a string per numeric field.
func parseUintBytes(b []byte, bits int) (uint64, error) {
	if len(b) == 0 || len(b) > 20 {
		return 0, fmt.Errorf("memcache: bad number %q", b)
	}
	var v uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("memcache: bad number %q", b)
		}
		d := uint64(c - '0')
		if v > (1<<64-1-d)/10 {
			return 0, fmt.Errorf("memcache: bad number %q", b)
		}
		v = v*10 + d
	}
	if bits < 64 && v >= 1<<uint(bits) {
		return 0, fmt.Errorf("memcache: bad number %q", b)
	}
	return v, nil
}

// nextField splits the first space-delimited token off line, returning
// (token, rest). Runs of spaces are skipped, mirroring strings.Fields.
func nextField(line []byte) (tok, rest []byte) {
	for len(line) > 0 && line[0] == ' ' {
		line = line[1:]
	}
	i := bytes.IndexByte(line, ' ')
	if i < 0 {
		return line, nil
	}
	return line[:i], line[i:]
}

// --- get / gets -------------------------------------------------------

func writeGetCmd(w *bufio.Writer, verb string, keys []string) error {
	if _, err := w.WriteString(verb); err != nil {
		return err
	}
	for _, k := range keys {
		if err := w.WriteByte(' '); err != nil {
			return err
		}
		if _, err := w.WriteString(k); err != nil {
			return err
		}
	}
	_, err := w.WriteString("\r\n")
	return err
}

// readValuesInto consumes VALUE blocks until END, merging items into
// out. Any framing violation is conn-fatal: once a VALUE header fails
// to parse the stream position is unknown.
func readValuesInto(r *bufio.Reader, withCAS bool, out map[string]*Item) error {
	for {
		line, err := readClientLine(r)
		if err != nil {
			return err
		}
		if bytes.Equal(line, []byte("END")) {
			return nil
		}
		it, err := readValue(r, line, withCAS)
		if err != nil {
			return err
		}
		out[it.Key] = it
	}
}

// readValue parses one "VALUE <key> <flags> <bytes> [cas]" header line
// plus its data block. line is borrowed from the read buffer, so every
// retained field is copied out before the data-block read invalidates
// it. Steady-state cost is three allocations per hit — the Item, its
// key string, and its data block — all of which escape into the result.
func readValue(r *bufio.Reader, line []byte, withCAS bool) (*Item, error) {
	verb, rest := nextField(line)
	if !bytes.Equal(verb, []byte("VALUE")) {
		return nil, fmt.Errorf("memcache: unexpected response line %q", line)
	}
	key, rest := nextField(rest)
	flagsTok, rest := nextField(rest)
	sizeTok, rest := nextField(rest)
	var casTok []byte
	if withCAS {
		casTok, rest = nextField(rest)
	}
	if tail, _ := nextField(rest); len(key) == 0 || len(sizeTok) == 0 || len(tail) != 0 ||
		(withCAS && len(casTok) == 0) {
		return nil, fmt.Errorf("memcache: unexpected response line %q", line)
	}
	flags, err := parseUintBytes(flagsTok, 32)
	if err != nil {
		return nil, err
	}
	size, err := parseUintBytes(sizeTok, 31)
	if err != nil {
		return nil, err
	}
	if size > MaxValueLen {
		// A corrupt (or hostile) header must not drive the allocation
		// below: no legitimate server exceeds the protocol's value cap.
		return nil, fmt.Errorf("memcache: VALUE header declares %d bytes (limit %d)", size, MaxValueLen)
	}
	it := &Item{Key: string(key), Flags: uint32(flags)}
	if withCAS {
		if it.CAS, err = parseUintBytes(casTok, 64); err != nil {
			return nil, err
		}
	}
	data := make([]byte, size+2)
	if _, err := readFull(r, data); err != nil {
		return nil, err
	}
	if !bytes.HasSuffix(data, []byte("\r\n")) {
		return nil, fmt.Errorf("memcache: corrupt data block for %s", it.Key)
	}
	it.Value = data[:size]
	return it, nil
}

func readFull(r *bufio.Reader, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		m, err := r.Read(buf[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// --- storage commands -------------------------------------------------

func writeStoreCmd(w *bufio.Writer, verb string, it *Item, cas uint64) error {
	scratch := lineScratch.Get().(*[320]byte)
	b := scratch[:0]
	b = append(b, verb...)
	b = append(b, ' ')
	b = append(b, it.Key...)
	b = append(b, ' ')
	b = strconv.AppendUint(b, uint64(it.Flags), 10)
	b = append(b, ' ')
	b = strconv.AppendInt(b, int64(it.Expiration), 10)
	b = append(b, ' ')
	b = strconv.AppendInt(b, int64(len(it.Value)), 10)
	if verb == "cas" {
		b = append(b, ' ')
		b = strconv.AppendUint(b, cas, 10)
	}
	b = append(b, '\r', '\n')
	_, err := w.Write(b)
	lineScratch.Put(scratch)
	if err != nil {
		return err
	}
	if _, err := w.Write(it.Value); err != nil {
		return err
	}
	_, err = w.WriteString("\r\n")
	return err
}

func readStoreReply(r *bufio.Reader) error {
	line, err := readClientLine(r)
	if err != nil {
		return err
	}
	switch {
	case bytes.Equal(line, []byte("STORED")):
		return nil
	case bytes.Equal(line, []byte("NOT_STORED")):
		return ErrNotStored
	case bytes.Equal(line, []byte("EXISTS")):
		return ErrCASConflict
	case bytes.Equal(line, []byte("NOT_FOUND")):
		return ErrCacheMiss
	default:
		return answeredError(string(line))
	}
}

// --- incr / decr ------------------------------------------------------

func writeIncrDecrCmd(w *bufio.Writer, verb, key string, delta uint64) error {
	scratch := lineScratch.Get().(*[320]byte)
	b := scratch[:0]
	b = append(b, verb...)
	b = append(b, ' ')
	b = append(b, key...)
	b = append(b, ' ')
	b = strconv.AppendUint(b, delta, 10)
	b = append(b, '\r', '\n')
	_, err := w.Write(b)
	lineScratch.Put(scratch)
	return err
}

func readIncrDecrReply(r *bufio.Reader, verb string) (uint64, error) {
	line, err := readClientLine(r)
	if err != nil {
		return 0, err
	}
	if bytes.Equal(line, []byte("NOT_FOUND")) {
		return 0, ErrCacheMiss
	}
	if bytes.HasPrefix(line, []byte("CLIENT_ERROR")) || bytes.HasPrefix(line, []byte("SERVER_ERROR")) {
		return 0, answeredError(string(line))
	}
	v, perr := parseUintBytes(line, 64)
	if perr != nil {
		return 0, &replyError{msg: fmt.Sprintf("memcache: unexpected %s response %q", verb, line)}
	}
	return v, nil
}

// --- delete / touch / flush_all --------------------------------------

func writeDeleteCmd(w *bufio.Writer, key string) error {
	if _, err := w.WriteString("delete "); err != nil {
		return err
	}
	if _, err := w.WriteString(key); err != nil {
		return err
	}
	_, err := w.WriteString("\r\n")
	return err
}

func readDeleteReply(r *bufio.Reader) error {
	line, err := readClientLine(r)
	if err != nil {
		return err
	}
	switch {
	case bytes.Equal(line, []byte("DELETED")):
		return nil
	case bytes.Equal(line, []byte("NOT_FOUND")):
		return ErrCacheMiss
	default:
		return answeredError(string(line))
	}
}

func writeTouchCmd(w *bufio.Writer, key string, exp int32) error {
	scratch := lineScratch.Get().(*[320]byte)
	b := scratch[:0]
	b = append(b, "touch "...)
	b = append(b, key...)
	b = append(b, ' ')
	b = strconv.AppendInt(b, int64(exp), 10)
	b = append(b, '\r', '\n')
	_, err := w.Write(b)
	lineScratch.Put(scratch)
	return err
}

func readTouchReply(r *bufio.Reader) error {
	line, err := readClientLine(r)
	if err != nil {
		return err
	}
	switch {
	case bytes.Equal(line, []byte("TOUCHED")):
		return nil
	case bytes.Equal(line, []byte("NOT_FOUND")):
		return ErrCacheMiss
	default:
		return answeredError(string(line))
	}
}

func writeFlushAllCmd(w *bufio.Writer) error {
	_, err := w.WriteString("flush_all\r\n")
	return err
}

func readFlushAllReply(r *bufio.Reader) error {
	line, err := readClientLine(r)
	if err != nil {
		return err
	}
	if !bytes.Equal(line, []byte("OK")) {
		return answeredError(string(line))
	}
	return nil
}

// --- version / stats --------------------------------------------------

func writeVersionCmd(w *bufio.Writer) error {
	_, err := w.WriteString("version\r\n")
	return err
}

func readVersionReply(r *bufio.Reader) (string, error) {
	line, err := readClientLine(r)
	if err != nil {
		return "", err
	}
	return string(bytes.TrimPrefix(line, []byte("VERSION "))), nil
}

func writeStatsCmd(w *bufio.Writer) error {
	_, err := w.WriteString("stats\r\n")
	return err
}

func readStatsInto(r *bufio.Reader, out map[string]string) error {
	for {
		line, err := readClientLine(r)
		if err != nil {
			return err
		}
		if bytes.Equal(line, []byte("END")) {
			return nil
		}
		verb, rest := nextField(line)
		if !bytes.Equal(verb, []byte("STAT")) {
			continue
		}
		key, rest := nextField(rest)
		if len(key) == 0 {
			continue
		}
		for len(rest) > 0 && rest[0] == ' ' {
			rest = rest[1:]
		}
		out[string(key)] = string(rest)
	}
}
