package memcache

// Conn is the per-server transport handle: everything the RnB client
// (and the proxy behind it) needs from a memcached connection,
// satisfied both by the single-connection Client and by the pooled,
// pipelined Pool. Callers choose the transport at construction and
// treat the handle uniformly afterwards; in particular, error semantics
// are identical — a network-level failure surfaces as an error on the
// operation that hit it (feeding the caller's circuit breaker), and
// only idempotent reads are ever replayed transparently.
type Conn interface {
	// Addr returns the server address the handle is bound to.
	Addr() string
	// Close tears down every underlying connection. Safe to call twice.
	Close() error
	// Transactions returns the number of protocol round trips issued.
	Transactions() uint64

	Get(key string) (*Item, error)
	GetMulti(keys []string) (map[string]*Item, error)
	GetsMulti(keys []string) (map[string]*Item, error)
	Set(it *Item) error
	SetPinned(it *Item) error
	Add(it *Item) error
	Replace(it *Item) error
	CompareAndSwap(it *Item) error
	Append(key string, data []byte) error
	Prepend(key string, data []byte) error
	Incr(key string, delta uint64) (uint64, error)
	Decr(key string, delta uint64) (uint64, error)
	Delete(key string) error
	Touch(key string, exp int32) error
	FlushAll() error
	Version() (string, error)
	Stats() (map[string]string, error)
}

var (
	_ Conn = (*Client)(nil)
	_ Conn = (*Pool)(nil)
)
