package memcache

import "rnb/internal/obs"

// Conn is the per-server transport handle: everything the RnB client
// (and the proxy behind it) needs from a memcached connection,
// satisfied both by the single-connection Client and by the pooled,
// pipelined Pool. Callers choose the transport at construction and
// treat the handle uniformly afterwards; in particular, error semantics
// are identical — a network-level failure surfaces as an error on the
// operation that hit it (feeding the caller's circuit breaker), and
// only idempotent reads are ever replayed transparently.
type Conn interface {
	// Addr returns the server address the handle is bound to.
	Addr() string
	// Close tears down every underlying connection. Safe to call twice.
	Close() error
	// Transactions returns the number of protocol round trips issued.
	Transactions() uint64

	Get(key string) (*Item, error)
	GetMulti(keys []string) (map[string]*Item, error)
	GetsMulti(keys []string) (map[string]*Item, error)
	Set(it *Item) error
	SetPinned(it *Item) error
	Add(it *Item) error
	Replace(it *Item) error
	CompareAndSwap(it *Item) error
	Append(key string, data []byte) error
	Prepend(key string, data []byte) error
	Incr(key string, delta uint64) (uint64, error)
	Decr(key string, delta uint64) (uint64, error)
	Delete(key string) error
	Touch(key string, exp int32) error
	FlushAll() error
	Version() (string, error)
	Stats() (map[string]string, error)

	// SetTracing enables wire-level distributed-trace propagation. The
	// transport negotiates support via the server's version banner; a
	// plain memcached server keeps seeing stock protocol bytes, and with
	// tracing off the wire is byte-identical to an untraced build.
	SetTracing(on bool)
	// TracedGetMulti is GetMulti carrying a trace context. It returns
	// the items, the client-side queue wait in nanoseconds (time spent
	// between submission and the request's bytes reaching the wire), and
	// the server's phase attribution — nil when tracing did not
	// negotiate, in which case the call degraded to a stock GetMulti.
	TracedGetMulti(tc obs.TraceContext, keys []string) (map[string]*Item, int64, *obs.ServerTimings, error)
}

var (
	_ Conn = (*Client)(nil)
	_ Conn = (*Pool)(nil)
)
