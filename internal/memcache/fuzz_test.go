package memcache

import (
	"net"
	"testing"
	"time"
)

// fuzzTarget sends an arbitrary byte stream to a live server and
// verifies the server neither panics nor wedges: a well-behaved client
// must still be served afterwards.
func fuzzTarget(t *testing.T, data []byte) {
	srv := NewServer(NewStore(1 << 20))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn.SetDeadline(time.Now().Add(300 * time.Millisecond))
	_, _ = conn.Write(data)
	buf := make([]byte, 4096)
	for {
		if _, err := conn.Read(buf); err != nil {
			break
		}
	}
	conn.Close()

	cl, err := Dial(ln.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatalf("server unreachable after fuzz input: %v", err)
	}
	defer cl.Close()
	if err := cl.Set(&Item{Key: "alive", Value: []byte("yes")}); err != nil {
		t.Fatalf("server broken after fuzz input: %v", err)
	}
}

func FuzzTextProtocol(f *testing.F) {
	seeds := [][]byte{
		[]byte("get a b c\r\n"),
		[]byte("set k 0 0 3\r\nabc\r\n"),
		[]byte("set k 0 0 999999999\r\n"),
		[]byte("gets \r\ncas k 1 2 3 4\r\nxxx\r\n"),
		[]byte("delete\r\nstats\r\nversion\r\nquit\r\n"),
		[]byte("touch k -1\r\nflush_all noreply\r\n"),
		{0x80, 0x01, 0, 3, 8, 0, 0, 0, 0, 0, 0, 14, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		{0x80, 0xff, 0xff, 0xff},
		[]byte("set k 0 0 5 noreply\r\nab"),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip()
		}
		fuzzTarget(t, data)
	})
}

func FuzzStoreKeys(f *testing.F) {
	f.Add("key", "value")
	f.Add("", "")
	f.Add("a b", "v")
	f.Add(string([]byte{0, 1, 2}), "v")
	f.Fuzz(func(t *testing.T, key, value string) {
		s := NewStore(1 << 16)
		// Whatever the inputs, the store must not panic and must keep
		// its byte budget.
		_ = s.Set(&Item{Key: key, Value: []byte(value)})
		_, _ = s.Get(key)
		_ = s.Delete(key)
		if s.Bytes() > 1<<16 {
			t.Fatalf("store exceeded capacity: %d", s.Bytes())
		}
	})
}
