package memcache

import (
	"net"
	"sync"
	"testing"
	"time"
)

// fuzzTarget sends an arbitrary byte stream to a live server and
// verifies the server neither panics nor wedges: a well-behaved client
// must still be served afterwards.
func fuzzTarget(t *testing.T, data []byte) {
	t.Helper()
	srv := NewServer(NewStore(1 << 20))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn.SetDeadline(time.Now().Add(300 * time.Millisecond))
	_, _ = conn.Write(data)
	buf := make([]byte, 4096)
	for {
		if _, err := conn.Read(buf); err != nil {
			break
		}
	}
	conn.Close()

	cl, err := Dial(ln.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatalf("server unreachable after fuzz input: %v", err)
	}
	defer cl.Close()
	if err := cl.Set(&Item{Key: "alive", Value: []byte("yes")}); err != nil {
		t.Fatalf("server broken after fuzz input: %v", err)
	}
}

func FuzzTextProtocol(f *testing.F) {
	seeds := [][]byte{
		[]byte("get a b c\r\n"),
		[]byte("set k 0 0 3\r\nabc\r\n"),
		[]byte("set k 0 0 999999999\r\n"),
		[]byte("gets \r\ncas k 1 2 3 4\r\nxxx\r\n"),
		[]byte("delete\r\nstats\r\nversion\r\nquit\r\n"),
		[]byte("touch k -1\r\nflush_all noreply\r\n"),
		{0x80, 0x01, 0, 3, 8, 0, 0, 0, 0, 0, 0, 14, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		{0x80, 0xff, 0xff, 0xff},
		[]byte("set k 0 0 5 noreply\r\nab"),
		// Pipelined streams: many commands land in the server's read
		// buffer before it has answered the first — the shape the pooled
		// transport's batched flushes produce.
		[]byte("get a\r\nget b\r\nget c\r\nget d\r\nget e\r\n"),
		[]byte("set k 0 0 1\r\nx\r\nget k\r\ndelete k\r\nget k\r\nincr k 1\r\nversion\r\n"),
		[]byte("set a 0 0 0\r\n\r\nset b 0 0 2\r\nhi\r\ngets a b\r\ntouch a 9\r\nstats\r\n"),
		// Pipelined garbage: a framing error mid-stream must not wedge
		// the commands behind it (the server drops the conn; the client
		// resyncs by reconnecting).
		[]byte("get a\r\nBOGUS x y\r\nget b\r\n"),
		[]byte("set k 0 0 3\r\nabget c\r\nget d\r\n"),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip()
		}
		fuzzTarget(t, data)
	})
}

// FuzzPoolDemux attacks the pooled transport's response demultiplexer
// from the server side: a fake server answers every connection with an
// arbitrary byte stream while three concurrent multi-gets are in
// flight. Whatever the stream — truncated VALUE blocks, oversized
// declared lengths, interleaved garbage, empty replies — the pool must
// neither panic, nor hang past its deadline, nor leak its goroutines
// (Close must return).
func FuzzPoolDemux(f *testing.F) {
	seeds := [][]byte{
		[]byte("END\r\nEND\r\nEND\r\n"),
		[]byte("VALUE a 0 1\r\nx\r\nEND\r\nVALUE b 0 2\r\nhi\r\nEND\r\nEND\r\n"),
		[]byte("VALUE a 0 5\r\nab"),              // truncated data block
		[]byte("VALUE a 0 999999999\r\n"),        // hostile declared size
		[]byte("VALUE a zero 1\r\nx\r\nEND\r\n"), // unparsable header
		[]byte("STORED\r\nNOT_FOUND\r\nSERVER_ERROR out of memory\r\n"),
		[]byte("garbage\r\nmore garbage\r\nEND\r\n"),
		{},
		{0xff, 0xfe, 0x00, 0x0d, 0x0a},
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip()
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		// Fake server: drain whatever the client writes, answer with the
		// fuzz bytes, then hold the conn open (the client's deadline
		// bounds the wait).
		go func() {
			for {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				go func(conn net.Conn) {
					defer conn.Close()
					go func() {
						buf := make([]byte, 4096)
						for {
							if _, err := conn.Read(buf); err != nil {
								return
							}
						}
					}()
					conn.Write(data)
					time.Sleep(400 * time.Millisecond)
				}(conn)
			}
		}()
		p, err := NewPool(ln.Addr().String(), 150*time.Millisecond, PoolConfig{Size: 2, Depth: 8})
		if err != nil {
			t.Skip() // accept raced the dial; nothing to fuzz
		}
		var wg sync.WaitGroup
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				// Errors are expected — panics and hangs are the bugs.
				p.GetMulti([]string{"a", "b", "c"})
			}(g)
		}
		wg.Wait()
		if err := p.Close(); err != nil {
			t.Fatalf("pool close after demux fuzz: %v", err)
		}
	})
}

func FuzzStoreKeys(f *testing.F) {
	f.Add("key", "value")
	f.Add("", "")
	f.Add("a b", "v")
	f.Add(string([]byte{0, 1, 2}), "v")
	f.Fuzz(func(t *testing.T, key, value string) {
		s := NewStore(1 << 16)
		// Whatever the inputs, the store must not panic and must keep
		// its byte budget.
		_ = s.Set(&Item{Key: key, Value: []byte(value)})
		_, _ = s.Get(key)
		_ = s.Delete(key)
		if s.Bytes() > 1<<16 {
			t.Fatalf("store exceeded capacity: %d", s.Bytes())
		}
	})
}
