package memcache

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rnb/internal/metrics"
	"rnb/internal/obs"
)

// Pool is a pooled, pipelined client for a single server, replacing
// the one-mutex-one-connection Client on hot paths. It speaks the text
// protocol by default and the binary protocol (quiet-get pipelining)
// when PoolConfig.Binary is set; both formats answer strictly in
// request order, so the same FIFO machinery drives either.
//
// Why it exists: RnB's premise (paper §II, §V) is that per-transaction
// server cost dominates, so the client must drive many servers
// concurrently with few, fat transactions. A single mutex-guarded
// connection serializes every concurrent caller on one round trip at a
// time; with M goroutines the fan-out the planner earns is thrown away
// at the socket. The Pool removes that ceiling twice over:
//
//   - connection pooling: up to Size connections per server, dialed on
//     demand and reaped when idle, so independent requests ride
//     independent round trips;
//   - request pipelining: each connection runs a single writer
//     goroutine that coalesces concurrently submitted requests into
//     batched writes (one flush for many commands) and a single reader
//     goroutine that demultiplexes the responses in request order —
//     the text protocol answers strictly in order, so FIFO demux is
//     exact. M concurrent callers therefore share one in-flight
//     connection without ever waiting a full round trip each.
//
// Error semantics mirror Client: a network-level failure fails the
// operation (the caller's breaker quarantines the server), and only
// idempotent requests are replayed — once, per pipelined request, when
// their connection dies under them. Requests that never reached the
// wire are rerouted to another connection regardless of idempotence,
// because nothing was applied server-side.
type Pool struct {
	addr    string
	timeout time.Duration
	size    int
	depth   int
	idle    time.Duration
	bin     bool
	gauges  *metrics.PoolGauges
	rttObs  func(time.Duration)

	mu      sync.Mutex
	cond    *sync.Cond
	conns   []*pconn
	rr      int
	dialing int
	closed  bool

	reapStop chan struct{}
	reapDone chan struct{}

	transactions atomic.Uint64

	// tracing enables wire-level trace propagation; traceOK caches the
	// handshake outcome pool-wide (0 unknown, 1 negotiated, 2 plain
	// server) — one address speaks one banner, so the answer holds for
	// every connection. With tracing off the wire carries zero extra
	// bytes.
	tracing atomic.Bool
	traceOK atomic.Int32
}

// PoolConfig parameterizes a Pool. The zero value picks the defaults.
type PoolConfig struct {
	// Size is the maximum number of connections to the server
	// (default 4). Connections are dialed on demand: a fresh pool holds
	// one, and grows only while every open connection is saturated.
	Size int
	// Depth is the per-connection pipeline target: a connection with
	// this many requests queued or in flight is considered saturated
	// and further requests prefer another connection (default 32).
	Depth int
	// IdleTimeout reaps connections that served no request for this
	// long (default 30s; <= 0 disables reaping). A reaped-to-empty pool
	// redials on the next request.
	IdleTimeout time.Duration
	// Gauges, when non-nil, receives the pool's instrumentation;
	// several pools (one per server) may share one PoolGauges for a
	// tier-wide view.
	Gauges *metrics.PoolGauges
	// RTTObserver, when non-nil, receives every request's wall time
	// from submission to completion — queueing for a connection and
	// replays included, because that is the latency the caller actually
	// experienced. Failed requests are stamped too (they are the tail).
	RTTObserver func(time.Duration)
	// Binary switches the pool to the memcached binary wire format: a
	// multiget is pipelined as N quiet gets (GetKQ) plus one terminating
	// Noop instead of N text "VALUE" parses, and every other command
	// becomes a fixed 24-byte-header frame. The pipelining machinery,
	// failure semantics (never-written resubmit, idempotent replay-once)
	// and RTT observation are identical in both formats — only the
	// write/read halves differ. The server sniffs the first byte per
	// connection, so text and binary pools coexist on one port.
	Binary bool
}

// Pool defaults.
const (
	DefaultPoolSize    = 4
	DefaultPoolDepth   = 32
	DefaultIdleTimeout = 30 * time.Second
)

// errPoolClosed fails requests submitted after Close.
var errPoolClosed = errors.New("memcache: pool closed")

// NewPool connects a pooled, pipelined client to the server at addr.
// Exactly like Dial, one connection is established eagerly so an
// unreachable server fails construction; timeout <= 0 disables I/O
// deadlines.
func NewPool(addr string, timeout time.Duration, cfg PoolConfig) (*Pool, error) {
	if cfg.Size <= 0 {
		cfg.Size = DefaultPoolSize
	}
	if cfg.Depth <= 0 {
		cfg.Depth = DefaultPoolDepth
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = DefaultIdleTimeout
	}
	if cfg.Gauges == nil {
		cfg.Gauges = &metrics.PoolGauges{}
	}
	p := &Pool{
		addr:    addr,
		timeout: timeout,
		size:    cfg.Size,
		depth:   cfg.Depth,
		idle:    cfg.IdleTimeout,
		bin:     cfg.Binary,
		gauges:  cfg.Gauges,
		rttObs:  cfg.RTTObserver,
	}
	p.cond = sync.NewCond(&p.mu)
	c, err := p.dial()
	if err != nil {
		return nil, err
	}
	p.conns = append(p.conns, c)
	if p.idle > 0 {
		p.reapStop = make(chan struct{})
		p.reapDone = make(chan struct{})
		go p.reapLoop()
	}
	return p, nil
}

// Addr returns the server address.
func (p *Pool) Addr() string { return p.addr }

// Transactions returns the number of round trips issued so far
// (replays included).
func (p *Pool) Transactions() uint64 { return p.transactions.Load() }

// Gauges returns the pool's instrumentation.
func (p *Pool) Gauges() *metrics.PoolGauges { return p.gauges }

// ConnsOpen reports the number of currently established connections.
func (p *Pool) ConnsOpen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.conns)
}

// Close tears down every connection, fails every pending request, and
// waits for the pool's goroutines to exit. Safe to call twice.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	conns := append([]*pconn(nil), p.conns...)
	p.cond.Broadcast()
	p.mu.Unlock()
	if p.reapStop != nil {
		close(p.reapStop)
		<-p.reapDone
	}
	for _, c := range conns {
		c.teardown(errPoolClosed)
	}
	for _, c := range conns {
		<-c.drained
	}
	return nil
}

// reapLoop closes connections that have been idle past the idle
// timeout. Dial-on-demand brings them back, so a quiet tier holds no
// sockets.
func (p *Pool) reapLoop() {
	defer close(p.reapDone)
	period := p.idle / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-p.reapStop:
			return
		case <-tick.C:
		}
		now := time.Now().UnixNano()
		var victims []*pconn
		p.mu.Lock()
		for _, c := range p.conns {
			if c.load() == 0 && now-c.lastDone.Load() > int64(p.idle) {
				victims = append(victims, c)
			}
		}
		p.mu.Unlock()
		for _, c := range victims {
			p.gauges.ConnsReaped.Add(1)
			c.teardown(errors.New("memcache: idle connection reaped"))
		}
	}
}

// dial establishes one pipelined connection and starts its writer and
// reader goroutines.
func (p *Pool) dial() (*pconn, error) {
	conn, err := net.Dial("tcp", p.addr)
	if err != nil {
		return nil, err
	}
	c := &pconn{
		pool:     p,
		conn:     conn,
		r:        bufio.NewReaderSize(conn, 64<<10),
		w:        bufio.NewWriterSize(conn, 64<<10),
		reqs:     make(chan *poolRequest, p.depth),
		inflight: make(chan *poolRequest, p.depth),
		stop:     make(chan struct{}),
		drained:  make(chan struct{}),
	}
	c.lastDone.Store(time.Now().UnixNano())
	c.wg.Add(2)
	go c.writeLoop()
	go c.readLoop()
	p.gauges.ConnsDialed.Add(1)
	p.gauges.ConnsOpen.Add(1)
	return c, nil
}

// route returns a connection with pipeline headroom, dialing a new one
// when every open connection is saturated and the pool is below Size,
// and blocking (a "waiter") when the pool is saturated outright.
func (p *Pool) route() (*pconn, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	registered := false
	unregister := func() {
		if registered {
			p.gauges.Waiters.Add(-1)
			registered = false
		}
	}
	for {
		if p.closed {
			unregister()
			return nil, errPoolClosed
		}
		// Drop dead connections from the rotation.
		live := p.conns[:0]
		for _, c := range p.conns {
			if !c.isDead() {
				live = append(live, c)
			}
		}
		p.conns = live
		// Round-robin over connections with headroom.
		if n := len(p.conns); n > 0 {
			for i := 0; i < n; i++ {
				c := p.conns[(p.rr+i)%n]
				if c.load() < p.depth {
					p.rr = (p.rr + i + 1) % n
					unregister()
					return c, nil
				}
			}
		}
		if len(p.conns)+p.dialing < p.size {
			unregister()
			p.dialing++
			p.mu.Unlock()
			c, err := p.dial()
			p.mu.Lock()
			p.dialing--
			// The dial slot just freed (and on success a fresh connection
			// is about to join the rotation) — both change the capacity
			// picture waiters parked on. Without this wake, a pool whose
			// Size dial slots all failed (a killed server can RST the
			// handshake so net.Dial itself errors) strands every waiter
			// that parked while those dials were in flight: the dialers
			// return their errors, the pool sits empty, and no completion
			// ever comes to broadcast. Holding p.mu here makes the wake
			// race-free against a waiter between its re-scan and Wait.
			if p.gauges.Waiters.Load() > 0 {
				p.cond.Broadcast()
			}
			if err != nil {
				return nil, err
			}
			if p.closed {
				p.mu.Unlock()
				c.teardown(errPoolClosed)
				<-c.drained
				p.mu.Lock()
				return nil, errPoolClosed
			}
			p.conns = append(p.conns, c)
			return c, nil
		}
		if !registered {
			// Register BEFORE the decisive re-scan, not after it: notify()
			// skips the broadcast when Waiters reads zero without taking
			// the pool lock, so a completion racing an unregistered scan
			// could otherwise slip between "scan saw no headroom" and
			// "waiter registered" and be missed forever. With the
			// register-then-rescan order, any completion the re-scan does
			// not observe must follow it (atomics are sequentially
			// consistent), and therefore observes the waiter.
			p.gauges.Waiters.Add(1)
			registered = true
			continue
		}
		// Saturated: wait for a completion (or a death) to free capacity.
		p.cond.Wait()
	}
}

// notify wakes routing waiters after a completion or a connection
// death changed pool capacity. The broadcast is skipped when nobody is
// waiting — the common case on the steady-state pipelined path, where a
// per-completion unconditional Broadcast showed up as avoidable
// cross-core traffic at high goroutine counts. See route() for why the
// unlocked Waiters check cannot strand a waiter.
//
// When somebody IS waiting, the broadcast must happen under the pool
// lock: a waiter holds p.mu from its decisive re-scan until Wait parks
// it on the cond's ticket list, so a lockless broadcast can land
// exactly in that window and be lost — if it was the last completion,
// the waiter strands forever. Taking the lock forces the broadcast to
// happen either before the re-scan (which then observes the freed
// capacity) or after the ticket exists (so the broadcast wakes it).
func (p *Pool) notify() {
	if p.gauges.Waiters.Load() == 0 {
		return
	}
	p.mu.Lock()
	p.cond.Broadcast()
	p.mu.Unlock()
}

// connClosed finalizes a connection's teardown.
func (p *Pool) connClosed(c *pconn) {
	p.mu.Lock()
	for i, have := range p.conns {
		if have == c {
			p.conns = append(p.conns[:i], p.conns[i+1:]...)
			break
		}
	}
	p.mu.Unlock()
	p.gauges.ConnsOpen.Add(-1)
	p.notify()
}

// poolRequest is one pipelined request: a write half, a read half, and
// a completion channel. written flips before the request's first byte
// can hit the wire; a request that failed with written=false is safe
// to reroute even if it is a mutation.
type poolRequest struct {
	write      func(w *bufio.Writer) error
	read       func(r *bufio.Reader) error
	idempotent bool
	written    bool
	done       chan error

	// Traced requests measure their pool queue wait: submitted is
	// stamped at submission and queueNS (when non-nil) receives the
	// submit-to-wire delay, written by the writer goroutine just before
	// the request's bytes go out. The completion channel orders that
	// write before the caller's read.
	submitted time.Time
	queueNS   *int64
}

func (r *poolRequest) complete(err error) { r.done <- err }

// connDeadError marks request failures caused by the connection dying
// (as opposed to the request's own I/O), so do() can distinguish
// "this request's socket broke" for replay accounting.
type connDeadError struct{ cause error }

func (e *connDeadError) Error() string { return "memcache: connection failed: " + e.cause.Error() }
func (e *connDeadError) Unwrap() error { return e.cause }

// do submits one request and waits for its completion, handling
// rerouting and the per-request idempotent replay rule.
func (p *Pool) do(idempotent bool, write func(w *bufio.Writer) error, read func(r *bufio.Reader) error) error {
	return p.submit(&poolRequest{write: write, read: read, idempotent: idempotent, done: make(chan error, 1)})
}

// submit routes req until it completes, applying the resubmit and
// replay rules.
func (p *Pool) submit(req *poolRequest) error {
	if p.rttObs != nil {
		start := time.Now()
		defer func() { p.rttObs(time.Since(start)) }()
	}
	idempotent := req.idempotent
	replayed := false
	resubmits := 0
	for {
		c, err := p.route()
		if err != nil {
			// Routing fails only when the pool is closed or a fresh dial
			// failed — the fast server-down signal the breakers feed on.
			return err
		}
		if !c.enqueue(req) {
			// The connection died or filled between route and enqueue;
			// route again (no wire contact, so this costs nothing).
			continue
		}
		err = <-req.done
		if !isConnFatal(err) {
			return err
		}
		if !req.written {
			// Never hit the wire: safe to resubmit, mutation or not —
			// bounded so a flapping pool cannot spin forever.
			resubmits++
			if resubmits > 4 {
				return err
			}
			p.gauges.Resubmits.Add(1)
			continue
		}
		// The request was written and its connection died. Replay only
		// idempotent requests, and only once per request — the
		// single-connection Client's stale-conn replay rule, applied per
		// pipelined request instead of per connection.
		if !idempotent || replayed {
			return err
		}
		replayed = true
		p.gauges.Replays.Add(1)
		req.written = false
	}
}

// pconn is one pipelined connection: a writer goroutine coalescing
// queued requests into batched flushes, and a reader goroutine
// completing them in FIFO order.
type pconn struct {
	pool *Pool
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer

	reqs     chan *poolRequest // submitted, not yet written
	inflight chan *poolRequest // written, awaiting their response

	qmu  sync.Mutex
	dead bool

	queued   atomic.Int32
	pending  atomic.Int32
	lastDone atomic.Int64 // unixnano of the last completion (or dial)

	stop     chan struct{}
	cause    error // teardown cause; written before close(stop), read only after <-stop
	stopOnce sync.Once
	wg       sync.WaitGroup
	drained  chan struct{}
}

// load returns how many requests this connection owns (queued plus in
// flight) — the routing measure of saturation.
func (c *pconn) load() int {
	return int(c.queued.Load()) + int(c.pending.Load())
}

func (c *pconn) isDead() bool {
	c.qmu.Lock()
	defer c.qmu.Unlock()
	return c.dead
}

// enqueue hands a request to the writer goroutine. It returns false —
// and the caller reroutes — when the connection is dead or its queue
// is full. The qmu guard makes enqueue/teardown atomic: after teardown
// flips dead, no request can slip into the queue and be stranded.
func (c *pconn) enqueue(req *poolRequest) bool {
	c.qmu.Lock()
	defer c.qmu.Unlock()
	if c.dead {
		return false
	}
	select {
	case c.reqs <- req:
		c.queued.Add(1)
		c.pool.gauges.Queued.Add(1)
		return true
	default:
		return false
	}
}

// writeLoop is the connection's single writer: it takes queued
// requests, writes as many as are immediately available into the
// buffered writer, and flushes once — concurrent callers' commands
// ride one syscall.
func (c *pconn) writeLoop() {
	defer c.wg.Done()
	for {
		var req *poolRequest
		select {
		case <-c.stop:
			return
		case req = <-c.reqs:
		}
		for {
			c.queued.Add(-1)
			c.pool.gauges.Queued.Add(-1)
			req.written = true
			if req.queueNS != nil {
				*req.queueNS = time.Since(req.submitted).Nanoseconds()
			}
			c.pool.transactions.Add(1)
			if err := req.write(c.w); err != nil {
				req.complete(err)
				c.teardown(err)
				return
			}
			c.pending.Add(1)
			c.pool.gauges.RecordInFlight()
			select {
			case c.inflight <- req:
			case <-c.stop:
				// The conn died while we held req: it is in neither channel,
				// so drain cannot see it — complete it here or its caller
				// blocks forever.
				c.pending.Add(-1)
				c.pool.gauges.InFlight.Add(-1)
				req.complete(&connDeadError{cause: c.cause})
				return
			}
			// Coalesce: anything else already queued joins this flush.
			select {
			case req = <-c.reqs:
				continue
			default:
			}
			break
		}
		if c.pool.timeout > 0 {
			c.conn.SetWriteDeadline(time.Now().Add(c.pool.timeout))
		}
		if err := c.w.Flush(); err != nil {
			c.teardown(err)
			return
		}
	}
}

// readLoop is the connection's single reader: it demultiplexes
// responses onto their requests strictly in write order (the text
// protocol guarantees in-order replies).
func (c *pconn) readLoop() {
	defer c.wg.Done()
	for {
		var req *poolRequest
		select {
		case <-c.stop:
			return
		case req = <-c.inflight:
		}
		if c.pool.timeout > 0 {
			c.conn.SetReadDeadline(time.Now().Add(c.pool.timeout))
		}
		err := req.read(c.r)
		c.pending.Add(-1)
		c.pool.gauges.InFlight.Add(-1)
		c.lastDone.Store(time.Now().UnixNano())
		req.complete(err)
		if isConnFatal(err) {
			// The stream is out of sync (I/O error or corrupt frame):
			// every response behind this one is unusable. Fail fast.
			c.teardown(err)
			return
		}
		c.pool.notify()
	}
}

// teardown kills the connection: marks it dead (no new enqueues),
// stops the writer and reader, closes the socket, and fails everything
// still queued or in flight with cause. Idempotent.
func (c *pconn) teardown(cause error) {
	c.stopOnce.Do(func() {
		c.qmu.Lock()
		c.dead = true
		c.qmu.Unlock()
		c.cause = cause
		close(c.stop)
		c.conn.Close()
		if cause != errPoolClosed {
			c.pool.gauges.ConnsFailed.Add(1)
		}
		// The writer or reader itself may be calling teardown; draining
		// must wait for both to exit, so it runs on its own goroutine.
		go c.drain(cause)
	})
}

// drain completes teardown once the writer and reader have exited:
// every stranded request fails with a conn-dead error (in-flight
// requests were written — only idempotent ones replay; queued ones
// were not — they reroute freely).
func (c *pconn) drain(cause error) {
	c.wg.Wait()
	for {
		select {
		case req := <-c.inflight:
			c.pending.Add(-1)
			c.pool.gauges.InFlight.Add(-1)
			req.complete(&connDeadError{cause: cause})
		case req := <-c.reqs:
			c.queued.Add(-1)
			c.pool.gauges.Queued.Add(-1)
			req.complete(&connDeadError{cause: cause})
		default:
			c.pool.connClosed(c)
			close(c.drained)
			return
		}
	}
}

// --- Conn implementation ---------------------------------------------

// Get fetches a single key.
func (p *Pool) Get(key string) (*Item, error) {
	items, err := p.GetMulti([]string{key})
	if err != nil {
		return nil, err
	}
	it, ok := items[key]
	if !ok {
		return nil, ErrCacheMiss
	}
	return it, nil
}

// GetMulti fetches any number of keys in one pipelined transaction.
func (p *Pool) GetMulti(keys []string) (map[string]*Item, error) {
	return p.getMulti("get", keys)
}

// GetsMulti is GetMulti with CAS tokens populated.
func (p *Pool) GetsMulti(keys []string) (map[string]*Item, error) {
	return p.getMulti("gets", keys)
}

func (p *Pool) getMulti(verb string, keys []string) (map[string]*Item, error) {
	if len(keys) == 0 {
		return map[string]*Item{}, nil
	}
	for _, k := range keys {
		if !validKey(k) {
			return nil, ErrBadKey
		}
	}
	out := make(map[string]*Item, len(keys))
	var err error
	if p.bin {
		// Binary frames always carry the CAS token, so "get" and "gets"
		// collapse onto the same quiet-get pipeline.
		err = p.do(true,
			func(w *bufio.Writer) error { return writeBinMultiGetCmd(w, keys) },
			func(r *bufio.Reader) error { return readBinMultiGetInto(r, len(keys), out) })
	} else {
		err = p.do(true,
			func(w *bufio.Writer) error { return writeGetCmd(w, verb, keys) },
			func(r *bufio.Reader) error { return readValuesInto(r, verb == "gets", out) })
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SetTracing enables (or disables) wire-level trace propagation. The
// first traced request probes the server's version banner — once, pool
// wide — and only a server announcing rnb-memcache support ever sees a
// trace frame; plain memcached keeps receiving stock protocol bytes.
func (p *Pool) SetTracing(on bool) {
	p.tracing.Store(on)
	if on {
		p.traceOK.Store(0)
	}
}

// probeTracing resolves the tracing handshake with one version round
// trip. A failure leaves the outcome unknown so a later traced request
// retries; concurrent probes are harmless (version is idempotent).
func (p *Pool) probeTracing() {
	banner, err := p.Version()
	if err != nil {
		return
	}
	if bannerSupportsTracing(banner) {
		p.traceOK.Store(1)
	} else {
		p.traceOK.Store(2)
	}
}

// TracedGetMulti is GetMulti carrying a distributed-trace context. It
// returns the items, the client-side queue wait (submission to the
// wire, in nanoseconds), and the server's phase timings — nil when the
// server did not negotiate tracing, in which case the request degraded
// to a stock multi-get.
func (p *Pool) TracedGetMulti(tc obs.TraceContext, keys []string) (map[string]*Item, int64, *obs.ServerTimings, error) {
	if len(keys) == 0 {
		return map[string]*Item{}, 0, nil, nil
	}
	for _, k := range keys {
		if !validKey(k) {
			return nil, 0, nil, ErrBadKey
		}
	}
	if p.tracing.Load() && p.traceOK.Load() == 0 {
		p.probeTracing()
	}
	traced := p.tracing.Load() && p.traceOK.Load() == 1 && tc.Valid()
	out := make(map[string]*Item, len(keys))
	var queueNS int64
	var st *obs.ServerTimings
	var write func(w *bufio.Writer) error
	var read func(r *bufio.Reader) error
	if p.bin {
		write = func(w *bufio.Writer) error {
			if traced {
				if err := writeBinTraceCmd(w, tc); err != nil {
					return err
				}
			}
			return writeBinMultiGetCmd(w, keys)
		}
		read = func(r *bufio.Reader) error {
			if err := readBinMultiGetInto(r, len(keys), out); err != nil {
				return err
			}
			if traced {
				st = new(obs.ServerTimings)
				if err := readBinTraceReply(r, st); err != nil {
					st = nil
					return err
				}
			}
			return nil
		}
	} else {
		write = func(w *bufio.Writer) error {
			if traced {
				if err := writeTraceCmd(w, tc); err != nil {
					return err
				}
			}
			return writeGetCmd(w, "get", keys)
		}
		read = func(r *bufio.Reader) error {
			if err := readValuesInto(r, false, out); err != nil {
				return err
			}
			if traced {
				st = new(obs.ServerTimings)
				if err := readTraceReply(r, st); err != nil {
					st = nil
					return err
				}
			}
			return nil
		}
	}
	req := &poolRequest{
		write: write, read: read, idempotent: true,
		done: make(chan error, 1), submitted: time.Now(), queueNS: &queueNS,
	}
	if err := p.submit(req); err != nil {
		return nil, queueNS, nil, err
	}
	return out, queueNS, st, nil
}

// Set stores an item unconditionally.
func (p *Pool) Set(it *Item) error { return p.store("set", it, 0) }

// SetPinned stores an item exempt from LRU eviction ("setp").
func (p *Pool) SetPinned(it *Item) error { return p.store("setp", it, 0) }

// Add stores an item only if absent.
func (p *Pool) Add(it *Item) error { return p.store("add", it, 0) }

// Replace stores an item only if present.
func (p *Pool) Replace(it *Item) error { return p.store("replace", it, 0) }

// CompareAndSwap stores an item only if its CAS token still matches.
func (p *Pool) CompareAndSwap(it *Item) error { return p.store("cas", it, it.CAS) }

// Append concatenates data after an existing value.
func (p *Pool) Append(key string, data []byte) error {
	return p.store("append", &Item{Key: key, Value: data}, 0)
}

// Prepend concatenates data before an existing value.
func (p *Pool) Prepend(key string, data []byte) error {
	return p.store("prepend", &Item{Key: key, Value: data}, 0)
}

func (p *Pool) store(verb string, it *Item, cas uint64) error {
	if !validKey(it.Key) {
		return ErrBadKey
	}
	if len(it.Value) > MaxValueLen {
		return ErrTooLarge
	}
	if p.bin {
		return p.binStore(verb, it, cas)
	}
	return p.do(false,
		func(w *bufio.Writer) error { return writeStoreCmd(w, verb, it, cas) },
		func(r *bufio.Reader) error { return readStoreReply(r) })
}

// binStore maps the text storage verbs onto binary frames. A cas store
// rides a Set frame carrying the token (the server routes cas != 0 to
// CompareAndSwap); token zero means "unconditional" on the binary wire,
// so it is rejected client-side rather than silently demoted to a plain
// set — zero is never a token the store hands out.
func (p *Pool) binStore(verb string, it *Item, cas uint64) error {
	var opcode byte
	switch verb {
	case "set":
		opcode = binOpSet
	case "setp":
		opcode = binOpSetP
	case "add":
		opcode = binOpAdd
	case "replace":
		opcode = binOpReplace
	case "cas":
		if cas == 0 {
			return ErrCASConflict
		}
		opcode = binOpSet
	case "append", "prepend":
		opcode = binOpAppend
		if verb == "prepend" {
			opcode = binOpPrepend
		}
		return p.do(false,
			func(w *bufio.Writer) error { return writeBinConcatCmd(w, opcode, it.Key, it.Value) },
			func(r *bufio.Reader) error { return readBinStatusReply(r, opcode) })
	}
	return p.do(false,
		func(w *bufio.Writer) error { return writeBinStoreCmd(w, opcode, it, cas) },
		func(r *bufio.Reader) error { return readBinStatusReply(r, opcode) })
}

// Incr adds delta to a decimal value, returning the new value.
func (p *Pool) Incr(key string, delta uint64) (uint64, error) {
	return p.incrDecr("incr", key, delta)
}

// Decr subtracts delta from a decimal value (clamped at zero).
func (p *Pool) Decr(key string, delta uint64) (uint64, error) {
	return p.incrDecr("decr", key, delta)
}

func (p *Pool) incrDecr(verb, key string, delta uint64) (uint64, error) {
	if !validKey(key) {
		return 0, ErrBadKey
	}
	var out uint64
	var err error
	if p.bin {
		opcode := byte(binOpIncrement)
		if verb == "decr" {
			opcode = binOpDecrement
		}
		err = p.do(false,
			func(w *bufio.Writer) error { return writeBinIncrDecrCmd(w, opcode, key, delta) },
			func(r *bufio.Reader) error {
				var rerr error
				out, rerr = readBinCounterReply(r, opcode)
				return rerr
			})
	} else {
		err = p.do(false,
			func(w *bufio.Writer) error { return writeIncrDecrCmd(w, verb, key, delta) },
			func(r *bufio.Reader) error {
				var rerr error
				out, rerr = readIncrDecrReply(r, verb)
				return rerr
			})
	}
	return out, err
}

// Delete removes a key.
func (p *Pool) Delete(key string) error {
	if !validKey(key) {
		return ErrBadKey
	}
	if p.bin {
		return p.do(false,
			func(w *bufio.Writer) error { return writeBinFrame(w, binOpDelete, 0, 0, nil, key, nil) },
			func(r *bufio.Reader) error { return readBinStatusReply(r, binOpDelete) })
	}
	return p.do(false,
		func(w *bufio.Writer) error { return writeDeleteCmd(w, key) },
		func(r *bufio.Reader) error { return readDeleteReply(r) })
}

// Touch updates a key's expiration time.
func (p *Pool) Touch(key string, exp int32) error {
	if !validKey(key) {
		return ErrBadKey
	}
	if p.bin {
		return p.do(false,
			func(w *bufio.Writer) error { return writeBinTouchCmd(w, key, exp) },
			func(r *bufio.Reader) error { return readBinStatusReply(r, binOpTouch) })
	}
	return p.do(false,
		func(w *bufio.Writer) error { return writeTouchCmd(w, key, exp) },
		func(r *bufio.Reader) error { return readTouchReply(r) })
}

// FlushAll wipes the server.
func (p *Pool) FlushAll() error {
	if p.bin {
		return p.do(false,
			func(w *bufio.Writer) error { return writeBinFrame(w, binOpFlush, 0, 0, nil, "", nil) },
			func(r *bufio.Reader) error { return readBinStatusReply(r, binOpFlush) })
	}
	return p.do(false,
		func(w *bufio.Writer) error { return writeFlushAllCmd(w) },
		func(r *bufio.Reader) error { return readFlushAllReply(r) })
}

// Version returns the server version banner.
func (p *Pool) Version() (string, error) {
	var banner string
	var err error
	if p.bin {
		err = p.do(true,
			func(w *bufio.Writer) error { return writeBinFrame(w, binOpVersion, 0, 0, nil, "", nil) },
			func(r *bufio.Reader) error {
				var rerr error
				banner, rerr = readBinVersionReply(r)
				return rerr
			})
	} else {
		err = p.do(true,
			func(w *bufio.Writer) error { return writeVersionCmd(w) },
			func(r *bufio.Reader) error {
				var rerr error
				banner, rerr = readVersionReply(r)
				return rerr
			})
	}
	return banner, err
}

// Stats fetches the server's stats map.
func (p *Pool) Stats() (map[string]string, error) {
	out := map[string]string{}
	var err error
	if p.bin {
		err = p.do(true,
			func(w *bufio.Writer) error { return writeBinFrame(w, binOpStat, 0, 0, nil, "", nil) },
			func(r *bufio.Reader) error { return readBinStatsInto(r, out) })
	} else {
		err = p.do(true,
			func(w *bufio.Writer) error { return writeStatsCmd(w) },
			func(r *bufio.Reader) error { return readStatsInto(r, out) })
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}
