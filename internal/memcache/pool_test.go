package memcache

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"rnb/internal/chaos"
	"rnb/internal/leakcheck"
)

// poolTestServer starts an in-process server (optionally behind a
// chaos injector) and returns its address.
func poolTestServer(t *testing.T, in *chaos.Injector) string {
	t.Helper()
	srv := NewServer(NewStore(0))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wrapped := net.Listener(ln)
	if in != nil {
		wrapped = in.Wrap(ln)
	}
	go srv.Serve(wrapped)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String()
}

func newTestPool(t *testing.T, addr string, cfg PoolConfig) *Pool {
	t.Helper()
	p, err := NewPool(addr, time.Second, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// TestPoolBasicOps drives every Conn operation once through the
// pipelined transport.
func TestPoolBasicOps(t *testing.T) {
	leakcheck.Check(t)
	p := newTestPool(t, poolTestServer(t, nil), PoolConfig{})
	if err := p.Set(&Item{Key: "k", Value: []byte("v")}); err != nil {
		t.Fatal(err)
	}
	it, err := p.Get("k")
	if err != nil || string(it.Value) != "v" {
		t.Fatalf("Get: %v %v", it, err)
	}
	if _, err := p.Get("absent"); err != ErrCacheMiss {
		t.Fatalf("miss: %v", err)
	}
	if err := p.Add(&Item{Key: "k", Value: []byte("x")}); err != ErrNotStored {
		t.Fatalf("Add existing: %v", err)
	}
	if err := p.Replace(&Item{Key: "k", Value: []byte("v2")}); err != nil {
		t.Fatalf("Replace: %v", err)
	}
	items, err := p.GetsMulti([]string{"k"})
	if err != nil || items["k"] == nil || items["k"].CAS == 0 {
		t.Fatalf("GetsMulti: %v %v", items, err)
	}
	stale := &Item{Key: "k", Value: []byte("v3"), CAS: items["k"].CAS + 99}
	if err := p.CompareAndSwap(stale); err != ErrCASConflict {
		t.Fatalf("stale CAS: %v", err)
	}
	if err := p.Append("k", []byte("!")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := p.Prepend("k", []byte("!")); err != nil {
		t.Fatalf("Prepend: %v", err)
	}
	if err := p.Set(&Item{Key: "n", Value: []byte("10")}); err != nil {
		t.Fatal(err)
	}
	if v, err := p.Incr("n", 5); err != nil || v != 15 {
		t.Fatalf("Incr: %d %v", v, err)
	}
	if v, err := p.Decr("n", 20); err != nil || v != 0 {
		t.Fatalf("Decr clamp: %d %v", v, err)
	}
	if err := p.Touch("k", 60); err != nil {
		t.Fatalf("Touch: %v", err)
	}
	if err := p.Delete("k"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := p.Delete("k"); err != ErrCacheMiss {
		t.Fatalf("Delete absent: %v", err)
	}
	if err := p.SetPinned(&Item{Key: "pin", Value: []byte("p")}); err != nil {
		t.Fatalf("SetPinned: %v", err)
	}
	if _, err := p.Version(); err != nil {
		t.Fatalf("Version: %v", err)
	}
	if _, err := p.Stats(); err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if err := p.FlushAll(); err != nil {
		t.Fatalf("FlushAll: %v", err)
	}
	if _, err := p.Get("pin"); err != ErrCacheMiss {
		t.Fatalf("post-flush: %v", err)
	}
	if p.Transactions() == 0 {
		t.Fatal("no transactions counted")
	}
}

// TestPoolPipelines proves requests actually share connections: with a
// single-connection pool, many concurrent getters must all complete,
// and the observed pipeline depth must exceed one (they overlapped on
// the wire instead of taking turns).
func TestPoolPipelines(t *testing.T) {
	leakcheck.Check(t)
	p := newTestPool(t, poolTestServer(t, nil), PoolConfig{Size: 1, Depth: 64})
	if err := p.Set(&Item{Key: "k", Value: []byte("v")}); err != nil {
		t.Fatal(err)
	}
	const G = 32
	var wg sync.WaitGroup
	errs := make(chan error, G)
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := p.Get("k"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if p.ConnsOpen() != 1 {
		t.Fatalf("pool grew beyond Size=1: %d conns", p.ConnsOpen())
	}
	if hw := p.Gauges().PipelineHighWater.Load(); hw < 2 {
		t.Fatalf("pipeline high water %d; requests never overlapped", hw)
	}
}

// TestPoolGrowsUnderLoad: with Depth 1 every in-flight request
// saturates its connection, so concurrent callers force dial-on-demand
// up to Size.
func TestPoolGrowsUnderLoad(t *testing.T) {
	leakcheck.Check(t)
	p := newTestPool(t, poolTestServer(t, nil), PoolConfig{Size: 4, Depth: 1})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				p.Set(&Item{Key: fmt.Sprintf("k%d", g), Value: []byte("v")})
			}
		}(g)
	}
	wg.Wait()
	if dialed := p.Gauges().ConnsDialed.Load(); dialed < 2 {
		t.Fatalf("pool never grew: %d dials", dialed)
	}
	if open := p.ConnsOpen(); open > 4 {
		t.Fatalf("pool exceeded Size: %d conns", open)
	}
}

// TestPoolIdleReap: an idle pool sheds its connections, then revives
// transparently via dial-on-demand.
func TestPoolIdleReap(t *testing.T) {
	leakcheck.Check(t)
	p := newTestPool(t, poolTestServer(t, nil), PoolConfig{IdleTimeout: 50 * time.Millisecond})
	if err := p.Set(&Item{Key: "k", Value: []byte("v")}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for p.ConnsOpen() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("idle connections never reaped: %d open", p.ConnsOpen())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if p.Gauges().ConnsReaped.Load() == 0 {
		t.Fatal("reap gauge not bumped")
	}
	// Dial-on-demand revival.
	it, err := p.Get("k")
	if err != nil || string(it.Value) != "v" {
		t.Fatalf("post-reap Get: %v %v", it, err)
	}
}

// TestPoolIdempotentReplay: a connection that dies mid-use must be
// invisible to read callers — the request replays once on a fresh
// connection. Mirrors the Client's stale-conn rule, per request.
func TestPoolIdempotentReplay(t *testing.T) {
	leakcheck.Check(t)
	// First accepted conn serves one op then resets; later conns are
	// clean.
	in := chaos.New(chaos.Profile{Seed: 1, Script: []chaos.ConnPlan{{ResetAfterWrites: 1}, {}, {}, {}}})
	p := newTestPool(t, poolTestServer(t, in), PoolConfig{Size: 2})
	if err := p.Set(&Item{Key: "k", Value: []byte("v")}); err != nil {
		t.Fatal(err) // op #1 on the doomed conn: served, then it dies
	}
	it, err := p.Get("k")
	if err != nil {
		t.Fatalf("read not replayed over a fresh connection: %v", err)
	}
	if string(it.Value) != "v" {
		t.Fatalf("replayed read returned %q", it.Value)
	}
	if p.Gauges().Replays.Load() == 0 {
		t.Fatal("replay gauge not bumped; conn death was never exercised")
	}
	if in.Stats().Resets == 0 {
		t.Fatal("chaos injected no resets; test proves nothing")
	}
}

// TestPoolMutationsNotReplayed: a mutation whose connection dies after
// the bytes went out must surface the error, never silently replay.
func TestPoolMutationsNotReplayed(t *testing.T) {
	leakcheck.Check(t)
	in := chaos.New(chaos.Profile{Seed: 1, Script: []chaos.ConnPlan{{ResetAfterWrites: 1}, {}, {}, {}}})
	p := newTestPool(t, poolTestServer(t, in), PoolConfig{Size: 2})
	if err := p.Set(&Item{Key: "k", Value: []byte("v")}); err != nil {
		t.Fatal(err)
	}
	if err := p.Set(&Item{Key: "k", Value: []byte("w")}); err == nil {
		t.Fatal("mutation on a dying connection silently replayed")
	}
	// The pool recovers on the next call via a fresh connection.
	if err := p.Set(&Item{Key: "k", Value: []byte("w")}); err != nil {
		t.Fatalf("recovery after conn death: %v", err)
	}
	if p.Gauges().Replays.Load() != 0 {
		t.Fatalf("pool replayed a mutation %d times", p.Gauges().Replays.Load())
	}
}

// TestPoolKillFailsFast: once the server is killed, in-flight requests
// fail, and subsequent requests fail on the dial instead of hanging.
func TestPoolKillFailsFast(t *testing.T) {
	leakcheck.Check(t)
	in := chaos.New(chaos.Profile{Seed: 1})
	p := newTestPool(t, poolTestServer(t, in), PoolConfig{})
	if err := p.Set(&Item{Key: "k", Value: []byte("v")}); err != nil {
		t.Fatal(err)
	}
	in.Kill()
	start := time.Now()
	if _, err := p.Get("k"); err == nil {
		t.Fatal("request against a killed server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("killed-server failure took %v; not fail-fast", elapsed)
	}
	// Revival: dial-on-demand reconnects.
	in.Revive()
	if err := p.Set(&Item{Key: "k", Value: []byte("v2")}); err != nil {
		t.Fatalf("post-revive op: %v", err)
	}
}

// TestPoolCloseIdempotentAndFailsPending: Close is safe to call twice
// and new requests after Close fail immediately.
func TestPoolCloseIdempotentAndFailsPending(t *testing.T) {
	leakcheck.Check(t)
	p := newTestPool(t, poolTestServer(t, nil), PoolConfig{})
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := p.Get("k"); err != errPoolClosed {
		t.Fatalf("post-Close Get: %v", err)
	}
	if open := p.Gauges().ConnsOpen.Load(); open != 0 {
		t.Fatalf("%d conns leaked past Close", open)
	}
}

// TestPoolDifferentialAgainstClient is the differential oracle: the
// pooled, pipelined transport must be byte-for-byte indistinguishable
// from the single-connection Client across randomized key sets, value
// sizes (including empty and >64KiB — past the bufio buffer), and miss
// patterns.
func TestPoolDifferentialAgainstClient(t *testing.T) {
	leakcheck.Check(t)
	addr := poolTestServer(t, nil)
	pool := newTestPool(t, addr, PoolConfig{Size: 3, Depth: 8})
	cl, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })

	rng := rand.New(rand.NewSource(42))
	sizes := []int{0, 1, 5, 128, 4096, 70_000} // 70_000 > the 64KiB bufio size
	population := make([]string, 0, 64)
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("diff:%03d", i)
		population = append(population, key)
		if i%3 == 2 {
			continue // every third key is a deliberate miss
		}
		size := sizes[rng.Intn(len(sizes))]
		val := make([]byte, size)
		for j := range val {
			val[j] = byte('a' + (i+j)%26)
		}
		if err := cl.Set(&Item{Key: key, Value: val, Flags: uint32(i)}); err != nil {
			t.Fatal(err)
		}
	}

	for round := 0; round < 40; round++ {
		// Random subset, random order, no duplicates.
		perm := rng.Perm(len(population))
		n := 1 + rng.Intn(20)
		keys := make([]string, 0, n)
		for _, idx := range perm[:n] {
			keys = append(keys, population[idx])
		}
		want, err := cl.GetMulti(keys)
		if err != nil {
			t.Fatalf("round %d: client: %v", round, err)
		}
		got, err := pool.GetMulti(keys)
		if err != nil {
			t.Fatalf("round %d: pool: %v", round, err)
		}
		if len(got) != len(want) {
			t.Fatalf("round %d: pool returned %d items, client %d", round, len(got), len(want))
		}
		for k, w := range want {
			g, ok := got[k]
			if !ok {
				t.Fatalf("round %d: pool missing %s", round, k)
			}
			if !bytes.Equal(g.Value, w.Value) {
				t.Fatalf("round %d: %s: pool %d bytes, client %d bytes", round, k, len(g.Value), len(w.Value))
			}
			if g.Flags != w.Flags {
				t.Fatalf("round %d: %s: flags %d vs %d", round, k, g.Flags, w.Flags)
			}
		}
	}
}

// TestPoolDifferentialConcurrent repeats the oracle under concurrency:
// pipelined responses must demux onto the right requests even when
// many multi-gets share a connection.
func TestPoolDifferentialConcurrent(t *testing.T) {
	leakcheck.Check(t)
	addr := poolTestServer(t, nil)
	pool := newTestPool(t, addr, PoolConfig{Size: 2, Depth: 16})
	cl, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })

	const N = 40
	for i := 0; i < N; i++ {
		val := bytes.Repeat([]byte{byte('A' + i%26)}, 100+i*37)
		if err := cl.Set(&Item{Key: fmt.Sprintf("c:%02d", i), Value: val}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for round := 0; round < 30; round++ {
				perm := rng.Perm(N)
				keys := make([]string, 0, 8)
				for _, idx := range perm[:1+rng.Intn(8)] {
					keys = append(keys, fmt.Sprintf("c:%02d", idx))
				}
				items, err := pool.GetMulti(keys)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d round %d: %w", g, round, err)
					return
				}
				for _, k := range keys {
					it, ok := items[k]
					if !ok {
						errs <- fmt.Errorf("goroutine %d: %s missing", g, k)
						return
					}
					var idx int
					fmt.Sscanf(k, "c:%02d", &idx)
					if len(it.Value) != 100+idx*37 || (len(it.Value) > 0 && it.Value[0] != byte('A'+idx%26)) {
						errs <- fmt.Errorf("goroutine %d: %s got cross-wired value (%d bytes)", g, k, len(it.Value))
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestPoolBadKeyAndTooLarge: input validation happens before any wire
// contact, identically to Client.
func TestPoolBadKeyAndTooLarge(t *testing.T) {
	leakcheck.Check(t)
	p := newTestPool(t, poolTestServer(t, nil), PoolConfig{})
	if _, err := p.GetMulti([]string{"has space"}); err != ErrBadKey {
		t.Fatalf("bad key: %v", err)
	}
	if err := p.Set(&Item{Key: "k", Value: make([]byte, MaxValueLen+1)}); err != ErrTooLarge {
		t.Fatalf("too large: %v", err)
	}
	if before := p.Transactions(); before != 0 {
		t.Fatalf("invalid requests reached the wire: %d transactions", before)
	}
}
