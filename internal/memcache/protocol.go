// Package memcache implements a memcached-compatible key-value store —
// server and client — over the classic text protocol.
//
// This is the proof-of-concept substrate of paper §IV and the
// device-under-test for the micro-benchmarks of Appendix A (figs.
// 13–14): a real TCP server whose per-transaction parsing/syscall cost
// dominates per-item cost for small values, which is precisely the
// regime where the multi-get hole appears and RnB pays off.
//
// Supported commands: get/gets (multi-key), set, add, replace, cas,
// delete, touch, flush_all, version, stats, quit. Expiration uses
// absolute/relative unix semantics like memcached (values <= 30 days
// are relative).
package memcache

import (
	"errors"
	"fmt"
	"strconv"
)

// Protocol limits, mirroring memcached's defaults.
const (
	MaxKeyLen   = 250
	MaxValueLen = 1 << 20 // 1 MiB
)

// Common protocol errors.
var (
	ErrCacheMiss   = errors.New("memcache: cache miss")
	ErrNotStored   = errors.New("memcache: item not stored")
	ErrCASConflict = errors.New("memcache: CAS conflict")
	ErrBadKey      = errors.New("memcache: invalid key")
	ErrTooLarge    = errors.New("memcache: value too large")
)

// Item is one stored object.
type Item struct {
	Key   string
	Value []byte
	Flags uint32
	// Expiration in memcached semantics: 0 = never, <= 30 days =
	// relative seconds, otherwise absolute unix time.
	Expiration int32
	// CAS is the compare-and-swap token returned by gets.
	CAS uint64
}

// validKey enforces memcached's key rules: 1..250 bytes, no spaces or
// control characters.
func validKey(key string) bool {
	if len(key) == 0 || len(key) > MaxKeyLen {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if c <= ' ' || c == 0x7f {
			return false
		}
	}
	return true
}

// parseUint parses a decimal field, rejecting junk.
func parseUint(s string, bits int) (uint64, error) {
	v, err := strconv.ParseUint(s, 10, bits)
	if err != nil {
		return 0, fmt.Errorf("memcache: bad number %q", s)
	}
	return v, nil
}

// parseInt32 parses a signed 32-bit decimal field (exptime can be -1).
func parseInt32(s string) (int32, error) {
	v, err := strconv.ParseInt(s, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("memcache: bad number %q", s)
	}
	return int32(v), nil
}
