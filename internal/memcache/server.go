package memcache

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rnb/internal/obs"
)

// ServerStats are the counters exposed via the "stats" command.
type ServerStats struct {
	CmdGet       atomic.Uint64
	CmdSet       atomic.Uint64
	GetHits      atomic.Uint64
	GetMisses    atomic.Uint64
	Transactions atomic.Uint64 // one per client command (text line or binary command; a quiet-get run counts once at its flush)
	CurrConns    atomic.Int64
	TotalConns   atomic.Uint64
}

// Backend is what a protocol Server serves from: the local Store, or —
// for an RnB proxy — a whole replicated cluster. GetMulti receives the
// complete key list of a get/gets command so a proxy can bundle it.
type Backend interface {
	GetMulti(keys []string) (map[string]*Item, error)
	// GetsMulti is GetMulti with authoritative CAS tokens: an RnB proxy
	// must read from distinguished copies here, because only their
	// tokens are valid for a subsequent cas.
	GetsMulti(keys []string) (map[string]*Item, error)
	Set(it *Item) error
	// SetPinned services the RnB "setp" extension.
	SetPinned(it *Item) error
	Add(it *Item) error
	Replace(it *Item) error
	CompareAndSwap(it *Item) error
	Append(key string, data []byte) error
	Prepend(key string, data []byte) error
	// Increment adjusts a decimal value by delta (negative decrements,
	// clamping at zero) and returns the new value.
	Increment(key string, delta int64) (uint64, error)
	Delete(key string) error
	Touch(key string, exp int32) error
	FlushAll() error
	// BackendStats returns extra "STAT <key> <value>" lines.
	BackendStats() map[string]string
}

// storeBackend adapts a Store to the Backend interface.
type storeBackend struct{ s *Store }

func (b storeBackend) GetMulti(keys []string) (map[string]*Item, error) {
	out := make(map[string]*Item, len(keys))
	for _, k := range keys {
		if it, err := b.s.Get(k); err == nil {
			out[k] = it
		}
	}
	return out, nil
}
func (b storeBackend) GetsMulti(keys []string) (map[string]*Item, error) {
	return b.GetMulti(keys) // local tokens are always authoritative
}

// GetMultiTimed implements timedBackend: the traced read path, also
// reporting the shard-lock wait the batch accumulated.
func (b storeBackend) GetMultiTimed(keys []string) (map[string]*Item, int64, error) {
	out := make(map[string]*Item, len(keys))
	var wait int64
	for _, k := range keys {
		it, w, err := b.s.GetTimed(k)
		wait += w
		if err == nil {
			out[k] = it
		}
	}
	return out, wait, nil
}
func (b storeBackend) Set(it *Item) error                    { return b.s.Set(it) }
func (b storeBackend) SetPinned(it *Item) error              { return b.s.SetPinned(it, true) }
func (b storeBackend) Add(it *Item) error                    { return b.s.Add(it) }
func (b storeBackend) Replace(it *Item) error                { return b.s.Replace(it) }
func (b storeBackend) CompareAndSwap(it *Item) error         { return b.s.CompareAndSwap(it) }
func (b storeBackend) Append(key string, data []byte) error  { return b.s.Append(key, data) }
func (b storeBackend) Prepend(key string, data []byte) error { return b.s.Prepend(key, data) }
func (b storeBackend) Increment(key string, delta int64) (uint64, error) {
	return b.s.Increment(key, delta)
}
func (b storeBackend) Delete(key string) error { return b.s.Delete(key) }
func (b storeBackend) Touch(key string, exp int32) error {
	return b.s.Touch(key, exp)
}
func (b storeBackend) FlushAll() error { b.s.FlushAll(); return nil }
func (b storeBackend) BackendStats() map[string]string {
	return map[string]string{
		"curr_items": fmt.Sprintf("%d", b.s.Len()),
		"bytes":      fmt.Sprintf("%d", b.s.Bytes()),
		"evictions":  fmt.Sprintf("%d", b.s.Evictions()),
	}
}

// Server is a memcached protocol server over a Backend. It speaks both
// the text and the binary wire format on one port (sniffing the first
// byte per connection, like memcached -B auto); SetProtocols can
// restrict it to one of them.
type Server struct {
	store   *Store // nil when serving a non-Store backend
	backend Backend
	stats   ServerStats

	// recorder is the server-side flight recorder: per-phase histograms
	// plus a ring of recent ServerSpans, fed by every traced command.
	// Always present — tracing is a per-command client decision, so the
	// server must stand ready on every connection.
	recorder *obs.ServerRecorder

	// noText / noBinary disable one wire format (SetProtocols). Both
	// false — the zero value — serves both.
	noText   bool
	noBinary bool

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer wraps a Store in a protocol server.
func NewServer(store *Store) *Server {
	return &Server{
		store:    store,
		backend:  storeBackend{s: store},
		recorder: obs.NewServerRecorder(0),
		conns:    make(map[net.Conn]struct{}),
	}
}

// NewServerBackend serves an arbitrary Backend (e.g. an RnB proxy).
func NewServerBackend(b Backend) *Server {
	return &Server{
		backend:  b,
		recorder: obs.NewServerRecorder(0),
		conns:    make(map[net.Conn]struct{}),
	}
}

// Recorder returns the server-side flight recorder (per-phase
// histograms plus the ServerSpan ring fed by traced commands).
func (s *Server) Recorder() *obs.ServerRecorder { return s.recorder }

// Store returns the server's storage engine, or nil when serving a
// custom backend.
func (s *Server) Store() *Store { return s.store }

// SetProtocols restricts the wire formats the server accepts ("text",
// "binary", or "both", the default). A connection opening with the
// disabled format is dropped at the sniff, before any command is
// processed. Must be called before Serve; it is not synchronized with
// live connections.
func (s *Server) SetProtocols(mode string) error {
	switch mode {
	case "both":
		s.noText, s.noBinary = false, false
	case "text":
		s.noText, s.noBinary = false, true
	case "binary":
		s.noText, s.noBinary = true, false
	default:
		return fmt.Errorf("memcache: unknown protocol mode %q (want text, binary, or both)", mode)
	}
	return nil
}

// Stats returns the server's counters.
func (s *Server) Stats() *ServerStats { return &s.stats }

// ListenAndServe listens on addr ("host:port"; ":0" picks a free port)
// and serves until Close. It returns the bound address via Addr once
// listening.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("memcache: server closed")
	}
	s.listener = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.stats.CurrConns.Add(1)
		s.stats.TotalConns.Add(1)
		go s.handleConn(conn)
	}
}

// Addr returns the listener address, or "" before Serve.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// Close stops the listener, closes live connections, and waits for
// handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) dropConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	conn.Close()
	s.stats.CurrConns.Add(-1)
}

func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer s.dropConn(conn)
	// The fill reader stamps when bytes actually arrive, so traced
	// commands can report how long they queued in the read buffer.
	fr := &fillReader{c: conn}
	r := bufio.NewReaderSize(fr, 64<<10)
	w := bufio.NewWriterSize(conn, 64<<10)
	// Protocol sniff, as memcached does on a shared port: binary
	// requests always start with the 0x80 magic, which is not a
	// printable text-command byte.
	if first, err := r.Peek(1); err == nil && first[0] == binMagicReq {
		if s.noBinary {
			return
		}
		s.serveBinary(fr, r, w)
		return
	}
	if s.noText {
		return
	}
	var pending obs.TraceContext
	for {
		line, err := readLine(r)
		if err != nil {
			return
		}
		if len(line) == 0 {
			continue
		}
		// The trace prefix arms the NEXT command; it is not a
		// transaction of its own and sends no reply. A malformed prefix
		// answers ERROR and arms nothing.
		if tc, ok, malformed := parseTraceLine(line); ok || malformed {
			pending = tc
			if malformed {
				if _, err := w.WriteString("ERROR\r\n"); err != nil {
					return
				}
				if err := w.Flush(); err != nil {
					return
				}
			}
			continue
		}
		s.stats.Transactions.Add(1)
		var ct *connTrace
		if pending.Valid() {
			verb, _ := nextField(line)
			ct = s.armTrace(pending, fr, string(verb))
			pending = obs.TraceContext{}
		}
		quit, err := s.dispatch(line, r, w, s.backendFor(ct))
		if err != nil {
			return
		}
		var dispatchEnd time.Time
		if ct != nil {
			dispatchEnd = time.Now()
		}
		if err := w.Flush(); err != nil {
			return
		}
		if ct != nil {
			st := s.finishTrace(ct, dispatchEnd, time.Now())
			if err := writeServerTraceLine(w, &st); err != nil {
				return
			}
			if err := w.Flush(); err != nil {
				return
			}
		}
		if quit {
			return
		}
	}
}

// readLine reads one \r\n- (or \n-) terminated line without the
// terminator.
func readLine(r *bufio.Reader) ([]byte, error) {
	line, err := r.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	line = bytes.TrimRight(line, "\r\n")
	return line, nil
}

// dispatch processes one command line against be — the raw backend, or
// the per-command timing wrapper when the command is traced. It
// returns quit=true for the "quit" command and a non-nil error for
// connection-fatal conditions.
func (s *Server) dispatch(line []byte, r *bufio.Reader, w *bufio.Writer, be Backend) (quit bool, err error) {
	fields := strings.Fields(string(line))
	if len(fields) == 0 {
		_, err = w.WriteString("ERROR\r\n")
		return false, err
	}
	switch fields[0] {
	case "get":
		return false, s.handleGet(fields[1:], w, false, be)
	case "gets":
		return false, s.handleGet(fields[1:], w, true, be)
	case "set", "add", "replace", "setp", "append", "prepend":
		return false, s.handleStore(fields[0], fields[1:], r, w, be)
	case "cas":
		return false, s.handleCas(fields[1:], r, w, be)
	case "incr", "decr":
		return false, s.handleIncrDecr(fields[0] == "decr", fields[1:], w, be)
	case "delete":
		return false, s.handleDelete(fields[1:], w, be)
	case "touch":
		return false, s.handleTouch(fields[1:], w, be)
	case "flush_all":
		ferr := be.FlushAll()
		if !hasNoreply(fields[1:]) {
			if ferr != nil {
				_, err = fmt.Fprintf(w, "SERVER_ERROR %s\r\n", ferr)
			} else {
				_, err = w.WriteString("OK\r\n")
			}
		}
		return false, err
	case "version":
		_, err = w.WriteString("VERSION " + VersionBanner + "\r\n")
		return false, err
	case "stats":
		return false, s.handleStats(w)
	case "quit":
		return true, nil
	default:
		_, err = w.WriteString("ERROR\r\n")
		return false, err
	}
}

func hasNoreply(fields []string) bool {
	return len(fields) > 0 && fields[len(fields)-1] == "noreply"
}

func (s *Server) handleGet(keys []string, w *bufio.Writer, withCAS bool, be Backend) error {
	if len(keys) == 0 {
		_, err := w.WriteString("ERROR\r\n")
		return err
	}
	s.stats.CmdGet.Add(uint64(len(keys)))
	var items map[string]*Item
	var gerr error
	if withCAS {
		items, gerr = be.GetsMulti(keys)
	} else {
		items, gerr = be.GetMulti(keys)
	}
	if gerr != nil {
		_, err := fmt.Fprintf(w, "SERVER_ERROR %s\r\n", gerr)
		return err
	}
	for _, key := range keys {
		it, ok := items[key]
		if !ok {
			s.stats.GetMisses.Add(1)
			continue
		}
		s.stats.GetHits.Add(1)
		if withCAS {
			fmt.Fprintf(w, "VALUE %s %d %d %d\r\n", it.Key, it.Flags, len(it.Value), it.CAS)
		} else {
			fmt.Fprintf(w, "VALUE %s %d %d\r\n", it.Key, it.Flags, len(it.Value))
		}
		if _, err := w.Write(it.Value); err != nil {
			return err
		}
		if _, err := w.WriteString("\r\n"); err != nil {
			return err
		}
	}
	_, err := w.WriteString("END\r\n")
	return err
}

// readStorePayload parses "<key> <flags> <exptime> <bytes> [noreply]"
// plus the data block. On a malformed command line it still consumes
// the client's data block (by declared size when parseable, otherwise
// one line) so the connection stays in sync, as memcached does.
func readStorePayload(fields []string, extra int, r *bufio.Reader) (it *Item, casID uint64, noreply bool, cerr string, err error) {
	// discard swallows the pending data block after a client error when
	// its size is known; with an unparseable size nothing is consumed
	// (the client cannot have meant a well-formed block).
	discard := func(size int64, sized bool) error {
		if !sized {
			return nil
		}
		_, derr := io.CopyN(io.Discard, r, size+2)
		return derr
	}

	want := 4 + extra
	if len(fields) == want+1 && fields[want] == "noreply" {
		noreply = true
		fields = fields[:want]
	}
	var size uint64
	var sizeOK bool
	if len(fields) >= 4 {
		if v, serr := parseUint(fields[3], 31); serr == nil && v <= MaxValueLen {
			size, sizeOK = v, true
		}
	}
	fail := func(msg string) (*Item, uint64, bool, string, error) {
		return nil, 0, noreply, msg, discard(int64(size), sizeOK)
	}
	if len(fields) != want {
		return fail("bad command line format")
	}
	flags, ferr := parseUint(fields[1], 32)
	if ferr != nil {
		return fail("bad flags")
	}
	exp, eerr := parseInt32(fields[2])
	if eerr != nil {
		return fail("bad exptime")
	}
	if !sizeOK {
		return fail("bad data chunk size")
	}
	if extra == 1 {
		if casID, err = parseUint(fields[4], 64); err != nil {
			return fail("bad cas id")
		}
	}
	data := make([]byte, size+2)
	if _, err := io.ReadFull(r, data); err != nil {
		return nil, 0, noreply, "", err
	}
	if !bytes.HasSuffix(data, []byte("\r\n")) {
		return nil, 0, noreply, "bad data chunk", nil
	}
	return &Item{
		Key:        fields[0],
		Value:      data[:size],
		Flags:      uint32(flags),
		Expiration: exp,
	}, casID, noreply, "", nil
}

func (s *Server) handleStore(cmd string, fields []string, r *bufio.Reader, w *bufio.Writer, be Backend) error {
	s.stats.CmdSet.Add(1)
	it, _, noreply, cerr, err := readStorePayload(fields, 0, r)
	if err != nil {
		return err
	}
	if cerr != "" {
		_, err := fmt.Fprintf(w, "CLIENT_ERROR %s\r\n", cerr)
		return err
	}
	var serr error
	switch cmd {
	case "set":
		serr = be.Set(it)
	case "setp":
		// RnB extension (§IV): a pinned set. The stored copy is exempt
		// from LRU eviction — used for distinguished copies so they can
		// never miss. Not part of stock memcached.
		serr = be.SetPinned(it)
	case "add":
		serr = be.Add(it)
	case "replace":
		serr = be.Replace(it)
	case "append":
		serr = be.Append(it.Key, it.Value)
	case "prepend":
		serr = be.Prepend(it.Key, it.Value)
	}
	if noreply {
		return nil
	}
	switch {
	case serr == nil:
		_, err = w.WriteString("STORED\r\n")
	case errors.Is(serr, ErrNotStored):
		_, err = w.WriteString("NOT_STORED\r\n")
	case errors.Is(serr, ErrBadKey):
		_, err = w.WriteString("CLIENT_ERROR bad key\r\n")
	case errors.Is(serr, ErrTooLarge):
		_, err = w.WriteString("SERVER_ERROR object too large for cache\r\n")
	default:
		_, err = fmt.Fprintf(w, "SERVER_ERROR %s\r\n", serr)
	}
	return err
}

func (s *Server) handleCas(fields []string, r *bufio.Reader, w *bufio.Writer, be Backend) error {
	s.stats.CmdSet.Add(1)
	it, casID, noreply, cerr, err := readStorePayload(fields, 1, r)
	if err != nil {
		return err
	}
	if cerr != "" {
		_, err := fmt.Fprintf(w, "CLIENT_ERROR %s\r\n", cerr)
		return err
	}
	it.CAS = casID
	serr := be.CompareAndSwap(it)
	if noreply {
		return nil
	}
	switch {
	case serr == nil:
		_, err = w.WriteString("STORED\r\n")
	case errors.Is(serr, ErrCASConflict):
		_, err = w.WriteString("EXISTS\r\n")
	case errors.Is(serr, ErrCacheMiss):
		_, err = w.WriteString("NOT_FOUND\r\n")
	default:
		_, err = fmt.Fprintf(w, "SERVER_ERROR %s\r\n", serr)
	}
	return err
}

func (s *Server) handleIncrDecr(decr bool, fields []string, w *bufio.Writer, be Backend) error {
	noreply := hasNoreply(fields)
	if noreply {
		fields = fields[:len(fields)-1]
	}
	if len(fields) != 2 {
		_, err := w.WriteString("CLIENT_ERROR bad command line format\r\n")
		return err
	}
	delta, derr := parseUint(fields[1], 63)
	if derr != nil {
		_, err := w.WriteString("CLIENT_ERROR invalid numeric delta argument\r\n")
		return err
	}
	d := int64(delta)
	if decr {
		d = -d
	}
	val, serr := be.Increment(fields[0], d)
	if noreply {
		return nil
	}
	var err error
	switch {
	case serr == nil:
		_, err = fmt.Fprintf(w, "%d\r\n", val)
	case errors.Is(serr, ErrCacheMiss):
		_, err = w.WriteString("NOT_FOUND\r\n")
	default:
		_, err = fmt.Fprintf(w, "CLIENT_ERROR %s\r\n", serr)
	}
	return err
}

func (s *Server) handleDelete(fields []string, w *bufio.Writer, be Backend) error {
	noreply := hasNoreply(fields)
	if noreply {
		fields = fields[:len(fields)-1]
	}
	if len(fields) != 1 {
		_, err := w.WriteString("CLIENT_ERROR bad command line format\r\n")
		return err
	}
	serr := be.Delete(fields[0])
	if noreply {
		return nil
	}
	var err error
	if serr == nil {
		_, err = w.WriteString("DELETED\r\n")
	} else {
		_, err = w.WriteString("NOT_FOUND\r\n")
	}
	return err
}

func (s *Server) handleTouch(fields []string, w *bufio.Writer, be Backend) error {
	noreply := hasNoreply(fields)
	if noreply {
		fields = fields[:len(fields)-1]
	}
	if len(fields) != 2 {
		_, err := w.WriteString("CLIENT_ERROR bad command line format\r\n")
		return err
	}
	exp, err := parseInt32(fields[1])
	if err != nil {
		_, werr := w.WriteString("CLIENT_ERROR bad exptime\r\n")
		return werr
	}
	serr := be.Touch(fields[0], exp)
	if noreply {
		return nil
	}
	var werr error
	if serr == nil {
		_, werr = w.WriteString("TOUCHED\r\n")
	} else {
		_, werr = w.WriteString("NOT_FOUND\r\n")
	}
	return werr
}

func (s *Server) handleStats(w *bufio.Writer) error {
	fmt.Fprintf(w, "STAT cmd_get %d\r\n", s.stats.CmdGet.Load())
	fmt.Fprintf(w, "STAT cmd_set %d\r\n", s.stats.CmdSet.Load())
	fmt.Fprintf(w, "STAT get_hits %d\r\n", s.stats.GetHits.Load())
	fmt.Fprintf(w, "STAT get_misses %d\r\n", s.stats.GetMisses.Load())
	fmt.Fprintf(w, "STAT transactions %d\r\n", s.stats.Transactions.Load())
	fmt.Fprintf(w, "STAT curr_connections %d\r\n", s.stats.CurrConns.Load())
	fmt.Fprintf(w, "STAT total_connections %d\r\n", s.stats.TotalConns.Load())
	extra := s.backend.BackendStats()
	keys := make([]string, 0, len(extra))
	for k := range extra {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "STAT %s %s\r\n", k, extra[k])
	}
	_, err := w.WriteString("END\r\n")
	return err
}
