package memcache

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// startServer spins up a server on a random loopback port and returns a
// connected client.
func startServer(t *testing.T, capacity int64) (*Server, *Client) {
	t.Helper()
	srv := NewServer(NewStore(capacity))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	cl, err := Dial(ln.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return srv, cl
}

func TestEndToEndSetGet(t *testing.T) {
	_, cl := startServer(t, 0)
	if err := cl.Set(&Item{Key: "hello", Value: []byte("world"), Flags: 42}); err != nil {
		t.Fatal(err)
	}
	it, err := cl.Get("hello")
	if err != nil {
		t.Fatal(err)
	}
	if string(it.Value) != "world" || it.Flags != 42 {
		t.Fatalf("round trip: %+v", it)
	}
	if _, err := cl.Get("missing"); !errors.Is(err, ErrCacheMiss) {
		t.Fatalf("miss: %v", err)
	}
}

func TestEndToEndMultiGetIsOneTransaction(t *testing.T) {
	srv, cl := startServer(t, 0)
	keys := make([]string, 50)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%02d", i)
		if err := cl.Set(&Item{Key: keys[i], Value: []byte("v")}); err != nil {
			t.Fatal(err)
		}
	}
	before := srv.Stats().Transactions.Load()
	items, err := cl.GetMulti(keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 50 {
		t.Fatalf("got %d items", len(items))
	}
	if got := srv.Stats().Transactions.Load() - before; got != 1 {
		t.Fatalf("multi-get cost %d server transactions, want 1", got)
	}
}

func TestEndToEndMultiGetPartialHits(t *testing.T) {
	_, cl := startServer(t, 0)
	_ = cl.Set(&Item{Key: "a", Value: []byte("1")})
	_ = cl.Set(&Item{Key: "c", Value: []byte("3")})
	items, err := cl.GetMulti([]string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 || items["b"] != nil {
		t.Fatalf("partial hits: %v", items)
	}
}

func TestEndToEndEmptyAndBinaryValues(t *testing.T) {
	_, cl := startServer(t, 0)
	vals := [][]byte{{}, {0, 1, 2, 255}, []byte("line\r\nbreak"), []byte(strings.Repeat("x", 10000))}
	for i, v := range vals {
		key := fmt.Sprintf("bin%d", i)
		if err := cl.Set(&Item{Key: key, Value: v}); err != nil {
			t.Fatal(err)
		}
		it, err := cl.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		if string(it.Value) != string(v) {
			t.Fatalf("value %d corrupted: %q != %q", i, it.Value, v)
		}
	}
}

func TestEndToEndAddReplaceDelete(t *testing.T) {
	_, cl := startServer(t, 0)
	if err := cl.Add(&Item{Key: "k", Value: []byte("1")}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Add(&Item{Key: "k", Value: []byte("2")}); !errors.Is(err, ErrNotStored) {
		t.Fatalf("second add: %v", err)
	}
	if err := cl.Replace(&Item{Key: "k", Value: []byte("3")}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Delete("k"); !errors.Is(err, ErrCacheMiss) {
		t.Fatalf("second delete: %v", err)
	}
	if err := cl.Replace(&Item{Key: "k", Value: []byte("4")}); !errors.Is(err, ErrNotStored) {
		t.Fatalf("replace after delete: %v", err)
	}
}

func TestEndToEndCAS(t *testing.T) {
	_, cl := startServer(t, 0)
	_ = cl.Set(&Item{Key: "k", Value: []byte("a")})
	items, err := cl.GetsMulti([]string{"k"})
	if err != nil {
		t.Fatal(err)
	}
	it := items["k"]
	if it == nil || it.CAS == 0 {
		t.Fatalf("gets did not return CAS: %+v", it)
	}
	it.Value = []byte("b")
	if err := cl.CompareAndSwap(it); err != nil {
		t.Fatal(err)
	}
	// The token is now stale.
	it.Value = []byte("c")
	if err := cl.CompareAndSwap(it); !errors.Is(err, ErrCASConflict) {
		t.Fatalf("stale cas: %v", err)
	}
	it.Key = "missing"
	if err := cl.CompareAndSwap(it); !errors.Is(err, ErrCacheMiss) {
		t.Fatalf("cas missing: %v", err)
	}
}

func TestEndToEndFlushAllAndVersion(t *testing.T) {
	_, cl := startServer(t, 0)
	_ = cl.Set(&Item{Key: "k", Value: []byte("v")})
	if err := cl.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get("k"); !errors.Is(err, ErrCacheMiss) {
		t.Fatal("flush_all did not flush")
	}
	v, err := cl.Version()
	if err != nil || v == "" {
		t.Fatalf("version: %q, %v", v, err)
	}
}

func TestEndToEndStats(t *testing.T) {
	_, cl := startServer(t, 0)
	_ = cl.Set(&Item{Key: "k", Value: []byte("v")})
	_, _ = cl.Get("k")
	_, _ = cl.Get("nope")
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st["cmd_get"] != "2" || st["get_hits"] != "1" || st["get_misses"] != "1" {
		t.Fatalf("stats: %v", st)
	}
	if st["curr_items"] != "1" {
		t.Fatalf("curr_items: %v", st["curr_items"])
	}
}

func TestServerRejectsGarbage(t *testing.T) {
	srv, _ := startServer(t, 0)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	send := func(s string) string {
		if _, err := conn.Write([]byte(s)); err != nil {
			t.Fatal(err)
		}
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		return strings.TrimRight(line, "\r\n")
	}
	if got := send("bogus\r\n"); got != "ERROR" {
		t.Fatalf("bogus command: %q", got)
	}
	if got := send("get\r\n"); got != "ERROR" {
		t.Fatalf("get with no keys: %q", got)
	}
	if got := send("set k notanumber 0 1\r\nx\r\n"); !strings.HasPrefix(got, "CLIENT_ERROR") {
		t.Fatalf("bad flags: %q", got)
	}
	if got := send("set k 0 0 abc\r\n"); !strings.HasPrefix(got, "CLIENT_ERROR") {
		t.Fatalf("bad size: %q", got)
	}
	if got := send("delete\r\n"); !strings.HasPrefix(got, "CLIENT_ERROR") {
		t.Fatalf("delete with no key: %q", got)
	}
	// The connection must still work after client errors.
	if got := send("version\r\n"); !strings.HasPrefix(got, "VERSION") {
		t.Fatalf("connection broken after errors: %q", got)
	}
}

func TestServerNoreply(t *testing.T) {
	srv, cl := startServer(t, 0)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Two noreply sets followed by a version command; only the version
	// banner should come back.
	if _, err := conn.Write([]byte("set a 0 0 1 noreply\r\nx\r\nset b 0 0 1 noreply\r\ny\r\nversion\r\n")); err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(line, "VERSION") {
		t.Fatalf("noreply leaked a response: %q", line)
	}
	if it, err := cl.Get("a"); err != nil || string(it.Value) != "x" {
		t.Fatalf("noreply set lost: %v %v", it, err)
	}
}

func TestServerQuit(t *testing.T) {
	srv, _ := startServer(t, 0)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("quit\r\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("connection still open after quit")
	}
}

func TestServerCloseIdempotentAndRefusesServe(t *testing.T) {
	srv := NewServer(NewStore(0))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	time.Sleep(10 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal("second close errored:", err)
	}
	ln2, _ := net.Listen("tcp", "127.0.0.1:0")
	if err := srv.Serve(ln2); err == nil {
		t.Fatal("Serve after Close succeeded")
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, _ := startServer(t, 0)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl, err := Dial(srv.Addr(), 5*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("g%d-%d", g, i)
				if err := cl.Set(&Item{Key: key, Value: []byte("v")}); err != nil {
					errs <- err
					return
				}
				if _, err := cl.Get(key); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestClientTransactionsCounter(t *testing.T) {
	_, cl := startServer(t, 0)
	base := cl.Transactions()
	_ = cl.Set(&Item{Key: "k", Value: []byte("v")})
	_, _ = cl.GetMulti([]string{"k", "a", "b"})
	if got := cl.Transactions() - base; got != 2 {
		t.Fatalf("transactions = %d, want 2", got)
	}
}

func TestClientEmptyMultiGetIsFree(t *testing.T) {
	_, cl := startServer(t, 0)
	base := cl.Transactions()
	items, err := cl.GetMulti(nil)
	if err != nil || len(items) != 0 {
		t.Fatalf("empty GetMulti: %v %v", items, err)
	}
	if cl.Transactions() != base {
		t.Fatal("empty GetMulti issued a round trip")
	}
}

func TestClientBadKeyRejectedLocally(t *testing.T) {
	_, cl := startServer(t, 0)
	if _, err := cl.GetMulti([]string{"bad key"}); !errors.Is(err, ErrBadKey) {
		t.Fatalf("want ErrBadKey, got %v", err)
	}
	if err := cl.Set(&Item{Key: "bad key", Value: []byte("v")}); !errors.Is(err, ErrBadKey) {
		t.Fatalf("want ErrBadKey, got %v", err)
	}
}

func TestEndToEndAppendPrepend(t *testing.T) {
	_, cl := startServer(t, 0)
	if err := cl.Append("k", []byte("x")); !errors.Is(err, ErrNotStored) {
		t.Fatalf("append to missing: %v", err)
	}
	_ = cl.Set(&Item{Key: "k", Value: []byte("mid")})
	if err := cl.Append("k", []byte("-end")); err != nil {
		t.Fatal(err)
	}
	if err := cl.Prepend("k", []byte("start-")); err != nil {
		t.Fatal(err)
	}
	it, err := cl.Get("k")
	if err != nil || string(it.Value) != "start-mid-end" {
		t.Fatalf("concat result: %v %v", it, err)
	}
}

func TestEndToEndIncrDecr(t *testing.T) {
	_, cl := startServer(t, 0)
	if _, err := cl.Incr("counter", 1); !errors.Is(err, ErrCacheMiss) {
		t.Fatalf("incr missing: %v", err)
	}
	_ = cl.Set(&Item{Key: "counter", Value: []byte("10")})
	v, err := cl.Incr("counter", 5)
	if err != nil || v != 15 {
		t.Fatalf("incr: %d %v", v, err)
	}
	v, err = cl.Decr("counter", 20)
	if err != nil || v != 0 {
		t.Fatalf("decr clamps at zero: %d %v", v, err)
	}
	// Non-numeric values error without corrupting.
	_ = cl.Set(&Item{Key: "text", Value: []byte("abc")})
	if _, err := cl.Incr("text", 1); err == nil {
		t.Fatal("incr of non-numeric value succeeded")
	}
	it, _ := cl.Get("text")
	if string(it.Value) != "abc" {
		t.Fatal("failed incr corrupted the value")
	}
}

func TestIncrBumpsCAS(t *testing.T) {
	_, cl := startServer(t, 0)
	_ = cl.Set(&Item{Key: "c", Value: []byte("1")})
	before, _ := cl.GetsMulti([]string{"c"})
	if _, err := cl.Incr("c", 1); err != nil {
		t.Fatal(err)
	}
	after, _ := cl.GetsMulti([]string{"c"})
	if after["c"].CAS <= before["c"].CAS {
		t.Fatal("incr did not advance the CAS token")
	}
}

func TestSetPinnedEndToEnd(t *testing.T) {
	// A small server under heavy churn must keep the pinned entry.
	srv := NewServer(NewStore(8 * 1024))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	cl, err := Dial(ln.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.SetPinned(&Item{Key: "pinned", Value: []byte("stay")}); err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 200)
	for i := 0; i < 500; i++ {
		if err := cl.Set(&Item{Key: fmt.Sprintf("churn-%03d", i), Value: big}); err != nil {
			t.Fatal(err)
		}
	}
	it, err := cl.Get("pinned")
	if err != nil || string(it.Value) != "stay" {
		t.Fatalf("pinned entry lost: %v %v", it, err)
	}
	if srv.Store().Evictions() == 0 {
		t.Fatal("test premise broken: no eviction pressure")
	}
}

func TestServerSurvivesGarbageStreams(t *testing.T) {
	// Deterministic fuzz: random byte streams and half-valid command
	// streams must never crash the server or wedge the listener; after
	// each stream a fresh client must still work.
	srv, cl := startServer(t, 0)
	streams := []string{
		"\r\n\r\n\r\n",
		"get\r\nget \r\n",
		"set\r\n",
		"set k 0 0 5\r\nab\r\n", // short data block
		"gets\r\ncas k 0 0 1 notanumber\r\nx\r\n",
		"VALUE who what\r\nEND\r\n",
		"stats stats stats\r\n",
		"touch\r\ntouch k\r\ntouch k abc\r\n",
		string([]byte{0, 1, 2, 255, '\n', 'g', 'e', 't', '\n'}),
		"delete  \r\n",
		"flush_all noreply\r\nversion\r\n",
	}
	for i, stream := range streams {
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		conn.SetDeadline(time.Now().Add(300 * time.Millisecond))
		_, _ = conn.Write([]byte(stream))
		// Drain whatever comes back, then drop the connection.
		buf := make([]byte, 4096)
		for {
			if _, err := conn.Read(buf); err != nil {
				break
			}
		}
		conn.Close()
		// The server must still serve a well-behaved client.
		key := fmt.Sprintf("after-%d", i)
		if err := cl.Set(&Item{Key: key, Value: []byte("ok")}); err != nil {
			t.Fatalf("stream %d wedged the server: %v", i, err)
		}
		if _, err := cl.Get(key); err != nil {
			t.Fatalf("stream %d broke gets: %v", i, err)
		}
	}
}

func TestClientReconnectsAfterServerSideClose(t *testing.T) {
	srv, cl := startServer(t, 0)
	// Force-break the client's connection by restarting... simplest:
	// close all conns on server, then the next client op fails once and
	// the one after succeeds via reconnect.
	srv.mu.Lock()
	for c := range srv.conns {
		c.Close()
	}
	srv.mu.Unlock()
	// First op may fail (broken pipe), second must succeed.
	_ = cl.Set(&Item{Key: "k", Value: []byte("v")})
	if err := cl.Set(&Item{Key: "k", Value: []byte("v")}); err != nil {
		t.Fatalf("client did not reconnect: %v", err)
	}
}
