package memcache

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"rnb/internal/lru"
	"rnb/internal/xhash"
)

const defaultShards = 16

// Store is the server-side storage engine: a sharded, byte-budgeted LRU
// map. Each shard owns an lru.Cache keyed by string; entry cost is the
// stored value size plus a fixed per-entry overhead, mirroring how
// memcached accounts slab memory. Pinning support is exposed so an
// RnB deployment can pin distinguished copies (§III-C-1).
type Store struct {
	shards []storeShard
	nowFn  func() int64 // unix seconds; replaceable for tests
	casSeq uint64       // global CAS counter (atomically via shard locks)
	casMu  sync.Mutex
}

type storeShard struct {
	mu    sync.Mutex
	cache *lru.Cache[string, *Item]
}

// entryOverhead approximates per-item metadata cost in bytes.
const entryOverhead = 56

// NewStore builds a store with the given total capacity in bytes,
// split over shards. capacity <= 0 means effectively unbounded.
func NewStore(capacity int64) *Store {
	if capacity <= 0 {
		capacity = 1 << 62
	}
	s := &Store{
		shards: make([]storeShard, defaultShards),
		nowFn:  func() int64 { return time.Now().Unix() },
	}
	per := capacity / defaultShards
	if per < 1 {
		per = 1
	}
	for i := range s.shards {
		s.shards[i].cache = lru.New[string, *Item](per)
	}
	return s
}

// SetClock replaces the store's time source (tests).
func (s *Store) SetClock(now func() int64) { s.nowFn = now }

func (s *Store) shard(key string) *storeShard {
	return &s.shards[xhash.String(key)%defaultShards]
}

func (s *Store) nextCAS() uint64 {
	s.casMu.Lock()
	s.casSeq++
	v := s.casSeq
	s.casMu.Unlock()
	return v
}

// expired reports whether it has lapsed at unix second now.
func expired(it *Item, now int64) bool {
	if it.Expiration == 0 {
		return false
	}
	return int64(it.Expiration) <= now
}

// absExpiration converts memcached exptime semantics to absolute unix
// seconds: 0 stays 0 (never); values <= 30 days are relative.
func absExpiration(exp int32, now int64) int32 {
	const thirtyDays = 60 * 60 * 24 * 30
	if exp == 0 {
		return 0
	}
	if exp < 0 {
		// Negative exptime means "immediately expired" in memcached.
		return int32(now - 1)
	}
	if exp <= thirtyDays {
		return int32(now + int64(exp))
	}
	return exp
}

func itemCost(it *Item) int64 {
	return int64(len(it.Key) + len(it.Value) + entryOverhead)
}

// Get returns the item for key, or ErrCacheMiss.
func (s *Store) Get(key string) (*Item, error) {
	if !validKey(key) {
		return nil, ErrBadKey
	}
	sh := s.shard(key)
	now := s.nowFn()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	it, ok := sh.cache.Get(key)
	if !ok {
		return nil, ErrCacheMiss
	}
	if expired(it, now) {
		sh.cache.Delete(key)
		return nil, ErrCacheMiss
	}
	return it, nil
}

// GetTimed is Get plus the time spent waiting for the shard lock, in
// nanoseconds — the store-contention share of a traced command.
func (s *Store) GetTimed(key string) (*Item, int64, error) {
	if !validKey(key) {
		return nil, 0, ErrBadKey
	}
	sh := s.shard(key)
	now := s.nowFn()
	lockStart := time.Now()
	sh.mu.Lock()
	wait := time.Since(lockStart).Nanoseconds()
	defer sh.mu.Unlock()
	it, ok := sh.cache.Get(key)
	if !ok {
		return nil, wait, ErrCacheMiss
	}
	if expired(it, now) {
		sh.cache.Delete(key)
		return nil, wait, ErrCacheMiss
	}
	return it, wait, nil
}

// Peek is Get without LRU promotion (hitchhiker policy hook).
func (s *Store) Peek(key string) (*Item, error) {
	if !validKey(key) {
		return nil, ErrBadKey
	}
	sh := s.shard(key)
	now := s.nowFn()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	it, ok := sh.cache.Peek(key)
	if !ok {
		return nil, ErrCacheMiss
	}
	if expired(it, now) {
		sh.cache.Delete(key)
		return nil, ErrCacheMiss
	}
	return it, nil
}

// Set unconditionally stores the item (memcached "set").
func (s *Store) Set(it *Item) error {
	return s.SetPinned(it, false)
}

// SetPinned stores the item, optionally pinning it against eviction.
func (s *Store) SetPinned(it *Item, pinned bool) error {
	if !validKey(it.Key) {
		return ErrBadKey
	}
	if len(it.Value) > MaxValueLen {
		return ErrTooLarge
	}
	stored := *it
	stored.Expiration = absExpiration(it.Expiration, s.nowFn())
	stored.CAS = s.nextCAS()
	sh := s.shard(it.Key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if !sh.cache.Put(it.Key, &stored, itemCost(&stored), pinned) {
		return ErrNotStored
	}
	return nil
}

// Add stores only if the key is absent (memcached "add").
func (s *Store) Add(it *Item) error {
	if !validKey(it.Key) {
		return ErrBadKey
	}
	sh := s.shard(it.Key)
	now := s.nowFn()
	sh.mu.Lock()
	existing, ok := sh.cache.Peek(it.Key)
	if ok && !expired(existing, now) {
		sh.mu.Unlock()
		return ErrNotStored
	}
	sh.mu.Unlock()
	return s.Set(it)
}

// Replace stores only if the key is present (memcached "replace").
func (s *Store) Replace(it *Item) error {
	if !validKey(it.Key) {
		return ErrBadKey
	}
	sh := s.shard(it.Key)
	now := s.nowFn()
	sh.mu.Lock()
	existing, ok := sh.cache.Peek(it.Key)
	if !ok || expired(existing, now) {
		sh.mu.Unlock()
		return ErrNotStored
	}
	sh.mu.Unlock()
	return s.Set(it)
}

// CompareAndSwap stores only if the resident CAS token matches
// (memcached "cas").
func (s *Store) CompareAndSwap(it *Item) error {
	if !validKey(it.Key) {
		return ErrBadKey
	}
	if len(it.Value) > MaxValueLen {
		return ErrTooLarge
	}
	sh := s.shard(it.Key)
	now := s.nowFn()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	existing, ok := sh.cache.Peek(it.Key)
	if !ok || expired(existing, now) {
		return ErrCacheMiss
	}
	if existing.CAS != it.CAS {
		return ErrCASConflict
	}
	stored := *it
	stored.Expiration = absExpiration(it.Expiration, now)
	stored.CAS = s.nextCAS()
	if !sh.cache.Put(it.Key, &stored, itemCost(&stored), false) {
		return ErrNotStored
	}
	return nil
}

// Append concatenates data after an existing value (memcached
// "append"). Missing keys return ErrNotStored.
func (s *Store) Append(key string, data []byte) error {
	return s.concat(key, data, false)
}

// Prepend concatenates data before an existing value (memcached
// "prepend").
func (s *Store) Prepend(key string, data []byte) error {
	return s.concat(key, data, true)
}

func (s *Store) concat(key string, data []byte, front bool) error {
	if !validKey(key) {
		return ErrBadKey
	}
	sh := s.shard(key)
	now := s.nowFn()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	existing, ok := sh.cache.Peek(key)
	if !ok || expired(existing, now) {
		return ErrNotStored
	}
	if len(existing.Value)+len(data) > MaxValueLen {
		return ErrTooLarge
	}
	merged := make([]byte, 0, len(existing.Value)+len(data))
	if front {
		merged = append(append(merged, data...), existing.Value...)
	} else {
		merged = append(append(merged, existing.Value...), data...)
	}
	updated := *existing
	updated.Value = merged
	updated.CAS = s.nextCAS()
	if !sh.cache.Put(key, &updated, itemCost(&updated), false) {
		return ErrNotStored
	}
	return nil
}

// Increment adjusts a decimal-uint64 value by delta (negative =
// decrement, clamped at zero like memcached). It returns the new
// value. Non-numeric values return an error; missing keys return
// ErrCacheMiss.
func (s *Store) Increment(key string, delta int64) (uint64, error) {
	if !validKey(key) {
		return 0, ErrBadKey
	}
	sh := s.shard(key)
	now := s.nowFn()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	existing, ok := sh.cache.Peek(key)
	if !ok || expired(existing, now) {
		return 0, ErrCacheMiss
	}
	cur, err := parseUint(string(existing.Value), 64)
	if err != nil {
		return 0, fmt.Errorf("memcache: cannot increment non-numeric value")
	}
	var next uint64
	if delta >= 0 {
		next = cur + uint64(delta) // wraps like memcached on overflow
	} else {
		d := uint64(-delta)
		if d > cur {
			next = 0 // clamped, like memcached decr
		} else {
			next = cur - d
		}
	}
	updated := *existing
	updated.Value = []byte(strconv.FormatUint(next, 10))
	updated.CAS = s.nextCAS()
	if !sh.cache.Put(key, &updated, itemCost(&updated), false) {
		return 0, ErrNotStored
	}
	return next, nil
}

// Delete removes key, or returns ErrCacheMiss.
func (s *Store) Delete(key string) error {
	if !validKey(key) {
		return ErrBadKey
	}
	sh := s.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if !sh.cache.Delete(key) {
		return ErrCacheMiss
	}
	return nil
}

// Touch updates an item's expiration, or returns ErrCacheMiss.
func (s *Store) Touch(key string, exp int32) error {
	if !validKey(key) {
		return ErrBadKey
	}
	sh := s.shard(key)
	now := s.nowFn()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	it, ok := sh.cache.Get(key)
	if !ok || expired(it, now) {
		return ErrCacheMiss
	}
	it.Expiration = absExpiration(exp, now)
	return nil
}

// FlushAll removes every item.
func (s *Store) FlushAll() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		per := sh.cache.Capacity()
		sh.cache = lru.New[string, *Item](per)
		sh.mu.Unlock()
	}
}

// Len returns the number of resident items (expired-but-unreaped
// included).
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += sh.cache.Len()
		sh.mu.Unlock()
	}
	return n
}

// Bytes returns total resident cost in bytes.
func (s *Store) Bytes() int64 {
	var n int64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += sh.cache.Cost()
		sh.mu.Unlock()
	}
	return n
}

// Evictions returns the total capacity evictions across shards.
func (s *Store) Evictions() uint64 {
	var n uint64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += sh.cache.Evictions()
		sh.mu.Unlock()
	}
	return n
}
