package memcache

import (
	"errors"
	"fmt"
	"testing"
)

func newTestStore() (*Store, *int64) {
	s := NewStore(1 << 20)
	now := int64(1_700_000_000) // must exceed the 30-day relative/absolute threshold
	s.SetClock(func() int64 { return now })
	return s, &now
}

func TestStoreSetGet(t *testing.T) {
	s, _ := newTestStore()
	if err := s.Set(&Item{Key: "k", Value: []byte("v"), Flags: 7}); err != nil {
		t.Fatal(err)
	}
	it, err := s.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if string(it.Value) != "v" || it.Flags != 7 {
		t.Fatalf("got %+v", it)
	}
	if _, err := s.Get("missing"); !errors.Is(err, ErrCacheMiss) {
		t.Fatalf("want miss, got %v", err)
	}
}

func TestStoreBadKeys(t *testing.T) {
	s, _ := newTestStore()
	long := make([]byte, MaxKeyLen+1)
	for i := range long {
		long[i] = 'a'
	}
	bad := []string{"", "has space", "has\nnewline", "ctrl\x01", string(long)}
	for _, k := range bad {
		if err := s.Set(&Item{Key: k, Value: []byte("v")}); !errors.Is(err, ErrBadKey) {
			t.Errorf("key %q: want ErrBadKey, got %v", k, err)
		}
		if _, err := s.Get(k); !errors.Is(err, ErrBadKey) {
			t.Errorf("get %q: want ErrBadKey, got %v", k, err)
		}
	}
}

func TestStoreValueTooLarge(t *testing.T) {
	s, _ := newTestStore()
	big := make([]byte, MaxValueLen+1)
	if err := s.Set(&Item{Key: "k", Value: big}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
}

func TestStoreAddReplace(t *testing.T) {
	s, _ := newTestStore()
	if err := s.Replace(&Item{Key: "k", Value: []byte("1")}); !errors.Is(err, ErrNotStored) {
		t.Fatalf("replace missing: %v", err)
	}
	if err := s.Add(&Item{Key: "k", Value: []byte("1")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(&Item{Key: "k", Value: []byte("2")}); !errors.Is(err, ErrNotStored) {
		t.Fatalf("add existing: %v", err)
	}
	if err := s.Replace(&Item{Key: "k", Value: []byte("3")}); err != nil {
		t.Fatal(err)
	}
	it, _ := s.Get("k")
	if string(it.Value) != "3" {
		t.Fatalf("value = %q", it.Value)
	}
}

func TestStoreCAS(t *testing.T) {
	s, _ := newTestStore()
	if err := s.Set(&Item{Key: "k", Value: []byte("a")}); err != nil {
		t.Fatal(err)
	}
	it, _ := s.Get("k")
	// Correct token succeeds.
	if err := s.CompareAndSwap(&Item{Key: "k", Value: []byte("b"), CAS: it.CAS}); err != nil {
		t.Fatal(err)
	}
	// Stale token conflicts.
	if err := s.CompareAndSwap(&Item{Key: "k", Value: []byte("c"), CAS: it.CAS}); !errors.Is(err, ErrCASConflict) {
		t.Fatalf("stale cas: %v", err)
	}
	// Missing key.
	if err := s.CompareAndSwap(&Item{Key: "nope", Value: []byte("c"), CAS: 1}); !errors.Is(err, ErrCacheMiss) {
		t.Fatalf("cas missing: %v", err)
	}
}

func TestStoreCASTokensIncrease(t *testing.T) {
	s, _ := newTestStore()
	var last uint64
	for i := 0; i < 5; i++ {
		if err := s.Set(&Item{Key: "k", Value: []byte("v")}); err != nil {
			t.Fatal(err)
		}
		it, _ := s.Get("k")
		if it.CAS <= last {
			t.Fatalf("CAS not increasing: %d then %d", last, it.CAS)
		}
		last = it.CAS
	}
}

func TestStoreDelete(t *testing.T) {
	s, _ := newTestStore()
	_ = s.Set(&Item{Key: "k", Value: []byte("v")})
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("k"); !errors.Is(err, ErrCacheMiss) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestStoreExpiration(t *testing.T) {
	s, now := newTestStore()
	if err := s.Set(&Item{Key: "k", Value: []byte("v"), Expiration: 60}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("k"); err != nil {
		t.Fatal("not yet expired:", err)
	}
	*now += 61
	if _, err := s.Get("k"); !errors.Is(err, ErrCacheMiss) {
		t.Fatalf("expired item served: %v", err)
	}
}

func TestStoreNegativeExpirationImmediate(t *testing.T) {
	s, _ := newTestStore()
	_ = s.Set(&Item{Key: "k", Value: []byte("v"), Expiration: -1})
	if _, err := s.Get("k"); !errors.Is(err, ErrCacheMiss) {
		t.Fatalf("negative exptime item served: %v", err)
	}
}

func TestStoreAbsoluteExpiration(t *testing.T) {
	s, now := newTestStore()
	// > 30 days means absolute unix time.
	abs := int32(*now + 100)
	_ = s.Set(&Item{Key: "k", Value: []byte("v"), Expiration: abs})
	if _, err := s.Get("k"); err != nil {
		t.Fatal(err)
	}
	*now += 101
	if _, err := s.Get("k"); !errors.Is(err, ErrCacheMiss) {
		t.Fatal("absolute expiration ignored")
	}
}

func TestStoreTouch(t *testing.T) {
	s, now := newTestStore()
	_ = s.Set(&Item{Key: "k", Value: []byte("v"), Expiration: 10})
	if err := s.Touch("k", 1000); err != nil {
		t.Fatal(err)
	}
	*now += 500
	if _, err := s.Get("k"); err != nil {
		t.Fatal("touch did not extend expiration:", err)
	}
	if err := s.Touch("missing", 10); !errors.Is(err, ErrCacheMiss) {
		t.Fatalf("touch missing: %v", err)
	}
}

func TestStoreAddOverExpired(t *testing.T) {
	s, now := newTestStore()
	_ = s.Set(&Item{Key: "k", Value: []byte("v"), Expiration: 10})
	*now += 11
	// Expired entries count as absent for add.
	if err := s.Add(&Item{Key: "k", Value: []byte("w")}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreAppendPrepend(t *testing.T) {
	s, _ := newTestStore()
	if err := s.Append("k", []byte("x")); !errors.Is(err, ErrNotStored) {
		t.Fatalf("append missing: %v", err)
	}
	if err := s.Prepend("k", []byte("x")); !errors.Is(err, ErrNotStored) {
		t.Fatalf("prepend missing: %v", err)
	}
	_ = s.Set(&Item{Key: "k", Value: []byte("b")})
	if err := s.Append("k", []byte("c")); err != nil {
		t.Fatal(err)
	}
	if err := s.Prepend("k", []byte("a")); err != nil {
		t.Fatal(err)
	}
	it, _ := s.Get("k")
	if string(it.Value) != "abc" {
		t.Fatalf("value = %q", it.Value)
	}
	// Oversize concat rejected (needs an unbounded store to hold the
	// max-size base value in the first place).
	ub := NewStore(0)
	big := make([]byte, MaxValueLen)
	if err := ub.Set(&Item{Key: "big", Value: big}); err != nil {
		t.Fatal(err)
	}
	if err := ub.Append("big", []byte("x")); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize append: %v", err)
	}
	if err := s.Append("bad key", []byte("x")); !errors.Is(err, ErrBadKey) {
		t.Fatalf("bad key: %v", err)
	}
}

func TestStoreIncrement(t *testing.T) {
	s, _ := newTestStore()
	if _, err := s.Increment("missing", 1); !errors.Is(err, ErrCacheMiss) {
		t.Fatalf("incr missing: %v", err)
	}
	_ = s.Set(&Item{Key: "c", Value: []byte("7")})
	v, err := s.Increment("c", 3)
	if err != nil || v != 10 {
		t.Fatalf("incr: %d %v", v, err)
	}
	v, err = s.Increment("c", -4)
	if err != nil || v != 6 {
		t.Fatalf("decr: %d %v", v, err)
	}
	v, err = s.Increment("c", -100)
	if err != nil || v != 0 {
		t.Fatalf("decr clamp: %d %v", v, err)
	}
	_ = s.Set(&Item{Key: "t", Value: []byte("xyz")})
	if _, err := s.Increment("t", 1); err == nil {
		t.Fatal("non-numeric increment succeeded")
	}
	if _, err := s.Increment("bad key", 1); !errors.Is(err, ErrBadKey) {
		t.Fatalf("bad key: %v", err)
	}
}

func TestStoreFlushAll(t *testing.T) {
	s, _ := newTestStore()
	for i := 0; i < 10; i++ {
		_ = s.Set(&Item{Key: fmt.Sprintf("k%d", i), Value: []byte("v")})
	}
	s.FlushAll()
	if s.Len() != 0 {
		t.Fatalf("Len = %d after flush", s.Len())
	}
}

func TestStoreEvictionUnderPressure(t *testing.T) {
	s := NewStore(16 * 1024)
	val := make([]byte, 100)
	for i := 0; i < 1000; i++ {
		if err := s.Set(&Item{Key: fmt.Sprintf("key-%04d", i), Value: val}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Evictions() == 0 {
		t.Fatal("no evictions under pressure")
	}
	if s.Bytes() > 16*1024 {
		t.Fatalf("resident bytes %d exceed capacity", s.Bytes())
	}
	if s.Len() == 0 {
		t.Fatal("store empty after inserts")
	}
}

func TestStorePinnedSurvivesPressure(t *testing.T) {
	s := NewStore(16 * 1024)
	if err := s.SetPinned(&Item{Key: "pinned", Value: []byte("p")}, true); err != nil {
		t.Fatal(err)
	}
	val := make([]byte, 100)
	for i := 0; i < 2000; i++ {
		_ = s.Set(&Item{Key: fmt.Sprintf("key-%04d", i), Value: val})
	}
	if _, err := s.Get("pinned"); err != nil {
		t.Fatal("pinned item evicted:", err)
	}
}

func TestStorePeekDoesNotPromote(t *testing.T) {
	// Build a single-shard-sized scenario is fiddly with sharding; just
	// verify Peek returns data and misses correctly.
	s, _ := newTestStore()
	_ = s.Set(&Item{Key: "k", Value: []byte("v")})
	if it, err := s.Peek("k"); err != nil || string(it.Value) != "v" {
		t.Fatalf("Peek = %v, %v", it, err)
	}
	if _, err := s.Peek("missing"); !errors.Is(err, ErrCacheMiss) {
		t.Fatalf("Peek missing: %v", err)
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	s := NewStore(1 << 22)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			var err error
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("g%d-k%d", g, i%50)
				if e := s.Set(&Item{Key: k, Value: []byte("v")}); e != nil {
					err = e
					break
				}
				if _, e := s.Get(k); e != nil {
					err = e
					break
				}
			}
			done <- err
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
