package memcache

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"rnb/internal/obs"
)

// Distributed-tracing support, both wire formats.
//
// A traced command is prefixed with a compact trace context — trace id
// plus parent (client) span id — and followed by the server's phase
// attribution for the transaction it caused:
//
//	text:    trace <id> <span>\r\n
//	         get k1 k2\r\n
//	         ... normal VALUE/END response ...
//	         TRACE <id> <srvspan> <queue> <parse> <wait> <exec> <flush>\r\n
//
//	binary:  [binOpTrace request, 16-byte extras][GetKQ×N][Noop]
//	         ... quiet hits ... [Noop response]
//	         [binOpTrace response, 56-byte body: id srvspan q p w x f]
//
// Propagation is negotiated, never assumed: a transport only emits the
// prefix after a version handshake whose banner names this server
// ("rnb-memcache/..."), so plain memcached servers are untouched, and
// with tracing disabled the wire is byte-identical to the untraced
// protocol. The server side needs no negotiation — it always
// understands the prefix, and answers a trailing timing record for
// every traced command, so client framing is deterministic.

// VersionBanner is the version string both protocol handlers answer;
// the trace handshake keys on the "rnb-memcache" prefix.
const VersionBanner = "rnb-memcache/1.0"

// bannerSupportsTracing is the client side of the handshake.
func bannerSupportsTracing(banner string) bool {
	return strings.HasPrefix(banner, "rnb-memcache")
}

// binOpTrace is this repository's trace-context extension opcode,
// chosen from the unused range next to binOpSetP.
const binOpTrace = 0xf1

// binTraceBodyLen is the trace response body: 7 big-endian 64-bit
// fields (trace id, server span id, queue, parse, wait, exec, flush).
const binTraceBodyLen = 56

// --- client write/read halves (text) ---------------------------------

// writeTraceCmd emits the text trace prefix line.
func writeTraceCmd(w *bufio.Writer, tc obs.TraceContext) error {
	scratch := lineScratch.Get().(*[320]byte)
	b := scratch[:0]
	b = append(b, "trace "...)
	b = strconv.AppendUint(b, tc.TraceID, 10)
	b = append(b, ' ')
	b = strconv.AppendUint(b, tc.Parent, 10)
	b = append(b, '\r', '\n')
	_, err := w.Write(b)
	lineScratch.Put(scratch)
	return err
}

// readTraceReply consumes the trailing TRACE line of a traced command.
// Any other line here means the client lost track of the response
// framing, so every violation is conn-fatal.
func readTraceReply(r *bufio.Reader, st *obs.ServerTimings) error {
	line, err := readClientLine(r)
	if err != nil {
		return err
	}
	verb, rest := nextField(line)
	if !bytes.Equal(verb, []byte("TRACE")) {
		return fmt.Errorf("memcache: expected TRACE reply, got %q", line)
	}
	var vals [7]uint64
	for i := range vals {
		var tok []byte
		tok, rest = nextField(rest)
		v, perr := parseUintBytes(tok, 64)
		if perr != nil {
			return fmt.Errorf("memcache: corrupt TRACE reply %q", line)
		}
		vals[i] = v
	}
	if tail, _ := nextField(rest); len(tail) != 0 {
		return fmt.Errorf("memcache: corrupt TRACE reply %q", line)
	}
	st.TraceID = vals[0]
	st.SpanID = vals[1]
	st.QueueNS = int64(vals[2])
	st.ParseNS = int64(vals[3])
	st.WaitNS = int64(vals[4])
	st.ExecNS = int64(vals[5])
	st.FlushNS = int64(vals[6])
	return nil
}

// --- client write/read halves (binary) -------------------------------

// writeBinTraceCmd emits the binary trace-context frame: binOpTrace
// with the two ids in 16-byte extras. The server sends no immediate
// response (quiet-like) — the timing record follows the traced
// command's own response.
func writeBinTraceCmd(w *bufio.Writer, tc obs.TraceContext) error {
	var extras [16]byte
	binary.BigEndian.PutUint64(extras[0:8], tc.TraceID)
	binary.BigEndian.PutUint64(extras[8:16], tc.Parent)
	return writeBinFrame(w, binOpTrace, 0, 0, extras[:], "", nil)
}

// readBinTraceReply consumes the trailing binOpTrace response frame.
func readBinTraceReply(r *bufio.Reader, st *obs.ServerTimings) error {
	var h binHeader
	if err := readBinHeader(r, &h); err != nil {
		return err
	}
	if h.opcode != binOpTrace {
		return errBinDesync("response opcode 0x%02x, want trace", h.opcode)
	}
	if h.status != binStatusOK {
		if err := discardBinBody(r, &h); err != nil {
			return err
		}
		return binStatusError(h.status)
	}
	if h.bodyLen != binTraceBodyLen {
		return errBinDesync("trace reply body %d bytes, want %d", h.bodyLen, binTraceBodyLen)
	}
	body, err := r.Peek(binTraceBodyLen)
	if err != nil {
		return err
	}
	st.TraceID = binary.BigEndian.Uint64(body[0:8])
	st.SpanID = binary.BigEndian.Uint64(body[8:16])
	st.QueueNS = int64(binary.BigEndian.Uint64(body[16:24]))
	st.ParseNS = int64(binary.BigEndian.Uint64(body[24:32]))
	st.WaitNS = int64(binary.BigEndian.Uint64(body[32:40]))
	st.ExecNS = int64(binary.BigEndian.Uint64(body[40:48]))
	st.FlushNS = int64(binary.BigEndian.Uint64(body[48:56]))
	_, err = r.Discard(binTraceBodyLen)
	return err
}

// --- server write halves ---------------------------------------------

// writeServerTraceLine emits the text timing record.
func writeServerTraceLine(w *bufio.Writer, st *obs.ServerTimings) error {
	scratch := lineScratch.Get().(*[320]byte)
	b := scratch[:0]
	b = append(b, "TRACE "...)
	b = strconv.AppendUint(b, st.TraceID, 10)
	for _, v := range [6]int64{int64(st.SpanID), st.QueueNS, st.ParseNS, st.WaitNS, st.ExecNS, st.FlushNS} {
		b = append(b, ' ')
		b = strconv.AppendInt(b, v, 10)
	}
	b = append(b, '\r', '\n')
	_, err := w.Write(b)
	lineScratch.Put(scratch)
	return err
}

// writeBinServerTraceResponse emits the binary timing record.
func writeBinServerTraceResponse(w *bufio.Writer, opaque uint32, st *obs.ServerTimings) error {
	var body [binTraceBodyLen]byte
	binary.BigEndian.PutUint64(body[0:8], st.TraceID)
	binary.BigEndian.PutUint64(body[8:16], st.SpanID)
	binary.BigEndian.PutUint64(body[16:24], uint64(st.QueueNS))
	binary.BigEndian.PutUint64(body[24:32], uint64(st.ParseNS))
	binary.BigEndian.PutUint64(body[32:40], uint64(st.WaitNS))
	binary.BigEndian.PutUint64(body[40:48], uint64(st.ExecNS))
	binary.BigEndian.PutUint64(body[48:56], uint64(st.FlushNS))
	return writeBinResponse(w, binOpTrace, binStatusOK, opaque, 0, nil, "", body[:])
}

// parseTraceLine recognizes the text trace prefix. It returns the
// context and ok=true for a well-formed line, malformed=true for a
// line that names the trace command but fails to parse (the dispatcher
// answers ERROR and arms nothing), and all-false for any other command.
func parseTraceLine(line []byte) (tc obs.TraceContext, ok, malformed bool) {
	verb, rest := nextField(line)
	if !bytes.Equal(verb, []byte("trace")) {
		return obs.TraceContext{}, false, false
	}
	idTok, rest := nextField(rest)
	spanTok, rest := nextField(rest)
	if tail, _ := nextField(rest); len(tail) != 0 {
		return obs.TraceContext{}, false, true
	}
	id, err1 := parseUintBytes(idTok, 64)
	span, err2 := parseUintBytes(spanTok, 64)
	if err1 != nil || err2 != nil || id == 0 {
		return obs.TraceContext{}, false, true
	}
	return obs.TraceContext{TraceID: id, Parent: span}, true, false
}

// --- server-side measurement -----------------------------------------

// fillReader wraps the server side of a connection, stamping the wall
// time of every raw read. The gap between a command's processing start
// and the last fill is how long its bytes sat in the user-space read
// buffer — an honest lower bound on same-connection queueing (an idle
// blocking read measures ~0 because the read that delivers the command
// is itself the fill). The stamp costs one time.Now per buffer fill,
// not per command.
type fillReader struct {
	c        io.Reader
	lastFill atomic.Int64 // unixnano of the most recent Read return
}

func (f *fillReader) Read(p []byte) (int, error) {
	n, err := f.c.Read(p)
	f.lastFill.Store(time.Now().UnixNano())
	return n, err
}

// sinceLastFill returns now minus the last fill stamp, clamped at 0.
func (f *fillReader) sinceLastFill(now time.Time) int64 {
	lf := f.lastFill.Load()
	if lf == 0 {
		return 0
	}
	d := now.UnixNano() - lf
	if d < 0 {
		d = 0
	}
	return d
}

// connTrace is the per-command trace state: armed by the wire prefix,
// filled during dispatch by the timing backend wrapper, finalized into
// an obs.ServerTimings after the response flush.
type connTrace struct {
	tc     obs.TraceContext
	spanID uint64 // minted at arm time so downstream calls can parent on it
	op     string
	start  time.Time // dispatch start

	queueNS   int64
	keys      int
	waitNS    int64
	execNS    int64
	execStart time.Time
	execEnd   time.Time
}

// armTrace builds the trace state for one traced command.
func (s *Server) armTrace(tc obs.TraceContext, fr *fillReader, op string) *connTrace {
	now := time.Now()
	return &connTrace{
		tc:      tc,
		spanID:  s.recorder.NextID(),
		op:      op,
		start:   now,
		queueNS: fr.sinceLastFill(now),
	}
}

// finishTrace closes the books on a traced command: derives the parse
// and flush phases from the dispatch/flush stamps, records the span in
// the server flight recorder, and returns the timings to put on the
// wire. dispatchEnd is when command processing finished (response
// serialized into the buffer), flushEnd when the flush syscall
// returned.
func (s *Server) finishTrace(ct *connTrace, dispatchEnd, flushEnd time.Time) obs.ServerTimings {
	st := obs.ServerTimings{
		TraceID: ct.tc.TraceID,
		SpanID:  ct.spanID,
		QueueNS: ct.queueNS,
		WaitNS:  ct.waitNS,
		ExecNS:  ct.execNS,
	}
	if ct.execStart.IsZero() {
		// No backend call (protocol error, empty get): everything before
		// the flush is parse.
		st.ParseNS = dispatchEnd.Sub(ct.start).Nanoseconds()
		st.FlushNS = flushEnd.Sub(dispatchEnd).Nanoseconds()
	} else {
		st.ParseNS = ct.execStart.Sub(ct.start).Nanoseconds()
		// Response serialization happens between the last backend call
		// and the flush; attribute it to the flush phase.
		st.FlushNS = flushEnd.Sub(ct.execEnd).Nanoseconds()
	}
	if st.ParseNS < 0 {
		st.ParseNS = 0
	}
	if st.FlushNS < 0 {
		st.FlushNS = 0
	}
	op := ct.op
	if op == "get" && ct.keys > 1 {
		op = "get_multi" // match the binary protocol's quiet-run label
	}
	s.recorder.Record(obs.ServerSpan{
		ID:      ct.spanID,
		Op:      op,
		Start:   ct.start,
		Keys:    ct.keys,
		Parent:  ct.tc.Parent,
		Timings: st,
	})
	return st
}

// timedBackend is an optional Backend refinement: a backend that can
// attribute lock wait inside its multi-get. storeBackend implements it
// via Store.GetTimed; backends that cannot (the proxy) report wait 0.
type timedBackend interface {
	GetMultiTimed(keys []string) (map[string]*Item, int64, error)
}

// tracedBackend is an optional Backend refinement for backends that
// can propagate the trace context further downstream — the RnB proxy,
// whose client re-fans the keys onto the server tier. When the traced
// command's backend implements it, the server passes the trace id with
// its own span as parent, chaining app → proxy → tier into one trace.
type tracedBackend interface {
	GetMultiTraced(tc obs.TraceContext, keys []string) (map[string]*Item, error)
}

// timingBackend wraps the server's Backend for the duration of one
// traced command, accumulating execution (and, when the backend can
// attribute it, lock-wait) time into the connTrace.
type timingBackend struct {
	inner Backend
	ct    *connTrace
}

func (tb *timingBackend) begin() time.Time {
	now := time.Now()
	if tb.ct.execStart.IsZero() {
		tb.ct.execStart = now
	}
	return now
}

func (tb *timingBackend) end(start time.Time) {
	now := time.Now()
	tb.ct.execNS += now.Sub(start).Nanoseconds()
	tb.ct.execEnd = now
}

func (tb *timingBackend) GetMulti(keys []string) (map[string]*Item, error) {
	tb.ct.keys += len(keys)
	start := tb.begin()
	var items map[string]*Item
	var err error
	switch inner := tb.inner.(type) {
	case tracedBackend:
		items, err = inner.GetMultiTraced(
			obs.TraceContext{TraceID: tb.ct.tc.TraceID, Parent: tb.ct.spanID}, keys)
	case timedBackend:
		var wait int64
		items, wait, err = inner.GetMultiTimed(keys)
		tb.ct.waitNS += wait
	default:
		items, err = tb.inner.GetMulti(keys)
	}
	tb.end(start)
	return items, err
}

func (tb *timingBackend) GetsMulti(keys []string) (map[string]*Item, error) {
	tb.ct.keys += len(keys)
	start := tb.begin()
	items, err := tb.inner.GetsMulti(keys)
	tb.end(start)
	return items, err
}

func (tb *timingBackend) Set(it *Item) error { return tb.one(func() error { return tb.inner.Set(it) }) }
func (tb *timingBackend) SetPinned(it *Item) error {
	return tb.one(func() error { return tb.inner.SetPinned(it) })
}
func (tb *timingBackend) Add(it *Item) error { return tb.one(func() error { return tb.inner.Add(it) }) }
func (tb *timingBackend) Replace(it *Item) error {
	return tb.one(func() error { return tb.inner.Replace(it) })
}
func (tb *timingBackend) CompareAndSwap(it *Item) error {
	return tb.one(func() error { return tb.inner.CompareAndSwap(it) })
}
func (tb *timingBackend) Append(key string, data []byte) error {
	return tb.one(func() error { return tb.inner.Append(key, data) })
}
func (tb *timingBackend) Prepend(key string, data []byte) error {
	return tb.one(func() error { return tb.inner.Prepend(key, data) })
}
func (tb *timingBackend) Increment(key string, delta int64) (uint64, error) {
	tb.ct.keys++
	start := tb.begin()
	v, err := tb.inner.Increment(key, delta)
	tb.end(start)
	return v, err
}
func (tb *timingBackend) Delete(key string) error {
	return tb.one(func() error { return tb.inner.Delete(key) })
}
func (tb *timingBackend) Touch(key string, exp int32) error {
	return tb.one(func() error { return tb.inner.Touch(key, exp) })
}
func (tb *timingBackend) FlushAll() error {
	start := tb.begin()
	err := tb.inner.FlushAll()
	tb.end(start)
	return err
}
func (tb *timingBackend) BackendStats() map[string]string { return tb.inner.BackendStats() }

// one times a single-key mutation.
func (tb *timingBackend) one(fn func() error) error {
	tb.ct.keys++
	start := tb.begin()
	err := fn()
	tb.end(start)
	return err
}

// backendFor returns the Backend dispatch should use: the timing
// wrapper for a traced command, the raw backend otherwise.
func (s *Server) backendFor(ct *connTrace) Backend {
	if ct == nil {
		return s.backend
	}
	return &timingBackend{inner: s.backend, ct: ct}
}
