package memcache

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// UDP transport, in memcached's framing: every datagram carries an
// 8-byte header — request id, sequence number, total datagrams,
// reserved — followed by (a fragment of) the text protocol stream.
//
// The paper's Appendix A tried UDP for the micro-benchmarks and
// abandoned it: "the benchmark program suffered, as expected, from
// considerable packet loss issues when attempting to communicate with
// the server as fast as possible over a protocol without flow
// control." This implementation exists to make that trade-off
// reproducible: the UDP client detects datagram loss (gaps in the
// sequence) and reports ErrUDPLoss instead of hanging, and the
// transport is deliberately request/response only (no retransmission),
// exactly like memcached's.

// udpHeaderLen is the memcached UDP frame header size.
const udpHeaderLen = 8

// DefaultUDPPayload is the per-datagram payload budget. 1400 fits a
// standard MTU; the paper's setup used 8KB jumbo frames.
const DefaultUDPPayload = 1400

// ErrUDPLoss reports a response with missing datagrams.
var ErrUDPLoss = errors.New("memcache: udp response datagrams lost")

func putUDPHeader(buf []byte, reqID, seq, total uint16) {
	binary.BigEndian.PutUint16(buf[0:2], reqID)
	binary.BigEndian.PutUint16(buf[2:4], seq)
	binary.BigEndian.PutUint16(buf[4:6], total)
	binary.BigEndian.PutUint16(buf[6:8], 0)
}

func parseUDPHeader(buf []byte) (reqID, seq, total uint16, err error) {
	if len(buf) < udpHeaderLen {
		return 0, 0, 0, fmt.Errorf("memcache: short udp frame (%d bytes)", len(buf))
	}
	return binary.BigEndian.Uint16(buf[0:2]),
		binary.BigEndian.Uint16(buf[2:4]),
		binary.BigEndian.Uint16(buf[4:6]),
		nil
}

// UDPServer serves the text protocol over UDP datagrams, one request
// per datagram, responses split across framed datagrams.
type UDPServer struct {
	srv     *Server // reuses the text dispatch over the same backend
	conn    *net.UDPConn
	payload int

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// NewUDPServer wraps the given (TCP) protocol server's backend for
// UDP. payload <= 0 selects DefaultUDPPayload.
func NewUDPServer(srv *Server, payload int) *UDPServer {
	if payload <= 0 {
		payload = DefaultUDPPayload
	}
	return &UDPServer{srv: srv, payload: payload}
}

// ListenAndServe binds addr ("127.0.0.1:0" picks a port) and serves
// until Close.
func (u *UDPServer) ListenAndServe(addr string) error {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return err
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return err
	}
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		conn.Close()
		return errors.New("memcache: udp server closed")
	}
	u.conn = conn
	u.mu.Unlock()

	buf := make([]byte, 64<<10)
	for {
		n, raddr, err := conn.ReadFromUDP(buf)
		if err != nil {
			u.mu.Lock()
			closed := u.closed
			u.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		pkt := make([]byte, n)
		copy(pkt, buf[:n])
		u.mu.Lock()
		if u.closed {
			u.mu.Unlock()
			return nil
		}
		u.wg.Add(1)
		u.mu.Unlock()
		go func() {
			defer u.wg.Done()
			u.handlePacket(pkt, raddr)
		}()
	}
}

// Addr returns the bound address, or "" before ListenAndServe.
func (u *UDPServer) Addr() string {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.conn == nil {
		return ""
	}
	return u.conn.LocalAddr().String()
}

// Close stops the server.
func (u *UDPServer) Close() error {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return nil
	}
	u.closed = true
	conn := u.conn
	u.mu.Unlock()
	var err error
	if conn != nil {
		err = conn.Close()
	}
	u.wg.Wait()
	return err
}

// handlePacket processes one request datagram and sends the framed
// response.
func (u *UDPServer) handlePacket(pkt []byte, raddr *net.UDPAddr) {
	reqID, seq, total, err := parseUDPHeader(pkt)
	if err != nil || seq != 0 || total != 1 {
		return // multi-datagram requests are not part of the protocol
	}
	body := pkt[udpHeaderLen:]
	r := bufio.NewReader(bytes.NewReader(body))
	line, err := readLine(r)
	if err != nil || len(line) == 0 {
		return
	}
	var out bytes.Buffer
	w := bufio.NewWriter(&out)
	u.srv.stats.Transactions.Add(1)
	if _, err := u.srv.dispatch(line, r, w, u.srv.backend); err != nil {
		return
	}
	if err := w.Flush(); err != nil {
		return
	}
	u.sendResponse(reqID, out.Bytes(), raddr)
}

func (u *UDPServer) sendResponse(reqID uint16, payload []byte, raddr *net.UDPAddr) {
	chunks := (len(payload) + u.payload - 1) / u.payload
	if chunks == 0 {
		chunks = 1
	}
	if chunks > 0xffff {
		return // cannot be represented; drop, as memcached does
	}
	frame := make([]byte, udpHeaderLen+u.payload)
	for i := 0; i < chunks; i++ {
		lo := i * u.payload
		hi := lo + u.payload
		if hi > len(payload) {
			hi = len(payload)
		}
		putUDPHeader(frame, reqID, uint16(i), uint16(chunks))
		n := copy(frame[udpHeaderLen:], payload[lo:hi])
		u.conn.WriteToUDP(frame[:udpHeaderLen+n], raddr)
	}
}

// UDPClient is a minimal text-protocol client over UDP. One in-flight
// request at a time (guarded); no retransmission — lost datagrams
// surface as ErrUDPLoss or a timeout, reproducing the paper's
// observation about flow control.
type UDPClient struct {
	mu      sync.Mutex
	conn    *net.UDPConn
	timeout time.Duration
	reqID   uint16
	// Losses counts responses abandoned due to missing datagrams or
	// timeouts.
	losses uint64
}

// DialUDP connects (in the UDP sense) to addr.
func DialUDP(addr string, timeout time.Duration) (*UDPClient, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, udpAddr)
	if err != nil {
		return nil, err
	}
	if timeout <= 0 {
		timeout = time.Second
	}
	return &UDPClient{conn: conn, timeout: timeout}, nil
}

// Close releases the socket.
func (c *UDPClient) Close() error { return c.conn.Close() }

// Losses reports how many responses were lost or incomplete.
func (c *UDPClient) Losses() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.losses
}

// roundTrip sends one framed text command and reassembles the framed
// response.
func (c *UDPClient) roundTrip(cmd []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reqID++
	id := c.reqID

	frame := make([]byte, udpHeaderLen+len(cmd))
	putUDPHeader(frame, id, 0, 1)
	copy(frame[udpHeaderLen:], cmd)
	// The mutex intentionally makes this transport single-flight: the
	// response is matched to the request by reqID on a shared socket
	// and read buffer, so exclusivity must span the full round trip.
	//rnblint:ignore lockheld single-flight UDP transport; the lock must span the socket round trip
	if _, err := c.conn.Write(frame); err != nil {
		return nil, err
	}

	deadline := time.Now().Add(c.timeout)
	buf := make([]byte, 64<<10)
	var parts [][]byte
	total := -1
	received := 0
	for {
		c.conn.SetReadDeadline(deadline)
		//rnblint:ignore lockheld single-flight UDP transport; the lock must span the socket round trip
		n, err := c.conn.Read(buf)
		if err != nil {
			c.losses++
			return nil, fmt.Errorf("%w: %w", ErrUDPLoss, err)
		}
		reqID, seq, tot, err := parseUDPHeader(buf[:n])
		if err != nil {
			continue
		}
		if reqID != id {
			continue // stale response from a previous (lost) request
		}
		if total == -1 {
			total = int(tot)
			parts = make([][]byte, total)
		}
		if int(seq) >= total || parts[seq] != nil {
			continue
		}
		parts[seq] = append([]byte(nil), buf[udpHeaderLen:n]...)
		received++
		if received == total {
			break
		}
	}
	var out bytes.Buffer
	for _, p := range parts {
		out.Write(p)
	}
	return out.Bytes(), nil
}

// Get fetches keys over UDP in one request datagram.
func (c *UDPClient) Get(keys ...string) (map[string]*Item, error) {
	if len(keys) == 0 {
		return map[string]*Item{}, nil
	}
	for _, k := range keys {
		if !validKey(k) {
			return nil, ErrBadKey
		}
	}
	var cmd bytes.Buffer
	cmd.WriteString("get")
	for _, k := range keys {
		cmd.WriteByte(' ')
		cmd.WriteString(k)
	}
	cmd.WriteString("\r\n")
	resp, err := c.roundTrip(cmd.Bytes())
	if err != nil {
		return nil, err
	}
	return parseTextValues(resp)
}

// Set stores an item over UDP. Responses are awaited (no noreply), so
// the caller learns about loss.
func (c *UDPClient) Set(it *Item) error {
	if !validKey(it.Key) {
		return ErrBadKey
	}
	if len(it.Value) > MaxValueLen {
		return ErrTooLarge
	}
	var cmd bytes.Buffer
	fmt.Fprintf(&cmd, "set %s %d %d %d\r\n", it.Key, it.Flags, it.Expiration, len(it.Value))
	cmd.Write(it.Value)
	cmd.WriteString("\r\n")
	resp, err := c.roundTrip(cmd.Bytes())
	if err != nil {
		return err
	}
	status := string(bytes.TrimRight(resp, "\r\n"))
	if status != "STORED" {
		return fmt.Errorf("memcache: udp set answered %q", status)
	}
	return nil
}

// Version fetches the server banner over UDP.
func (c *UDPClient) Version() (string, error) {
	resp, err := c.roundTrip([]byte("version\r\n"))
	if err != nil {
		return "", err
	}
	line := string(bytes.TrimRight(resp, "\r\n"))
	return string(bytes.TrimPrefix([]byte(line), []byte("VERSION "))), nil
}

// parseTextValues parses a VALUE.../END response buffer.
func parseTextValues(resp []byte) (map[string]*Item, error) {
	out := map[string]*Item{}
	r := bufio.NewReader(bytes.NewReader(resp))
	for {
		line, err := readLine(r)
		if err != nil {
			return nil, fmt.Errorf("memcache: truncated udp response")
		}
		if bytes.Equal(line, []byte("END")) {
			return out, nil
		}
		fields := bytes.Fields(line)
		if len(fields) != 4 || !bytes.Equal(fields[0], []byte("VALUE")) {
			return nil, fmt.Errorf("memcache: unexpected udp line %q", line)
		}
		size, err := parseUint(string(fields[3]), 31)
		if err != nil {
			return nil, err
		}
		flags, err := parseUint(string(fields[2]), 32)
		if err != nil {
			return nil, err
		}
		data := make([]byte, size+2)
		if _, err := readFull(r, data); err != nil {
			return nil, fmt.Errorf("memcache: truncated udp data block")
		}
		if !bytes.HasSuffix(data, []byte("\r\n")) {
			return nil, fmt.Errorf("memcache: corrupt udp data block")
		}
		out[string(fields[1])] = &Item{
			Key:   string(fields[1]),
			Value: data[:size],
			Flags: uint32(flags),
		}
	}
}
