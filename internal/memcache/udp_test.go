package memcache

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func startUDPServer(t *testing.T, payload int) (*UDPServer, *UDPClient) {
	t.Helper()
	srv := NewServer(NewStore(0))
	udp := NewUDPServer(srv, payload)
	errCh := make(chan error, 1)
	go func() { errCh <- udp.ListenAndServe("127.0.0.1:0") }()
	// Wait for bind.
	for i := 0; i < 100 && udp.Addr() == ""; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	if udp.Addr() == "" {
		t.Fatal("udp server did not bind")
	}
	t.Cleanup(func() { udp.Close() })
	cl, err := DialUDP(udp.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return udp, cl
}

func TestUDPSetGet(t *testing.T) {
	_, cl := startUDPServer(t, 0)
	if err := cl.Set(&Item{Key: "k", Value: []byte("v"), Flags: 3}); err != nil {
		t.Fatal(err)
	}
	items, err := cl.Get("k", "missing")
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 || string(items["k"].Value) != "v" || items["k"].Flags != 3 {
		t.Fatalf("udp get: %v", items)
	}
}

func TestUDPVersion(t *testing.T) {
	_, cl := startUDPServer(t, 0)
	v, err := cl.Version()
	if err != nil || !strings.Contains(v, "rnb-memcache") {
		t.Fatalf("version: %q %v", v, err)
	}
}

func TestUDPMultiDatagramResponse(t *testing.T) {
	// A tiny payload budget forces the response to span many datagrams;
	// reassembly must produce the exact value.
	_, cl := startUDPServer(t, 100)
	big := []byte(strings.Repeat("x", 2000))
	if err := cl.Set(&Item{Key: "big", Value: big}); err != nil {
		t.Fatal(err)
	}
	items, err := cl.Get("big")
	if err != nil {
		t.Fatal(err)
	}
	if string(items["big"].Value) != string(big) {
		t.Fatal("multi-datagram reassembly corrupted the value")
	}
}

func TestUDPLossSurfacesAsError(t *testing.T) {
	// Query a dead port: no response datagrams -> timeout -> ErrUDPLoss.
	cl, err := DialUDP("127.0.0.1:9", 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Get("k"); !errors.Is(err, ErrUDPLoss) {
		t.Fatalf("want ErrUDPLoss, got %v", err)
	}
	if cl.Losses() != 1 {
		t.Fatalf("losses = %d", cl.Losses())
	}
}

func TestUDPBadKey(t *testing.T) {
	_, cl := startUDPServer(t, 0)
	if _, err := cl.Get("bad key"); !errors.Is(err, ErrBadKey) {
		t.Fatalf("bad key: %v", err)
	}
	if err := cl.Set(&Item{Key: "bad key", Value: []byte("v")}); !errors.Is(err, ErrBadKey) {
		t.Fatalf("bad key set: %v", err)
	}
}

func TestUDPManySequentialRequests(t *testing.T) {
	// Sequential request/response over loopback should be loss-free and
	// exercise request-id matching.
	_, cl := startUDPServer(t, 0)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("k%02d", i)
		if err := cl.Set(&Item{Key: key, Value: []byte("v")}); err != nil {
			t.Fatal(err)
		}
		items, err := cl.Get(key)
		if err != nil || len(items) != 1 {
			t.Fatalf("iteration %d: %v %v", i, items, err)
		}
	}
	if cl.Losses() != 0 {
		t.Fatalf("sequential loopback lost %d responses", cl.Losses())
	}
}

func TestUDPServerCloseIdempotent(t *testing.T) {
	udp, _ := startUDPServer(t, 0)
	if err := udp.Close(); err != nil {
		t.Fatal(err)
	}
	if err := udp.Close(); err != nil {
		t.Fatal(err)
	}
}
