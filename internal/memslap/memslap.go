// Package memslap is a load generator for the memcache server, modeled
// on the memaslap utility the paper uses for its micro-benchmarks
// (Appendix A, figs. 13–14).
//
// Like the paper's setup, it issues multi-get transactions of a
// configurable size over tiny values (10 bytes by default), mixes in
// one single-item set per 1000 items fetched, and reports the item
// fetch rate. Sweeping the transaction size reproduces the shape of
// fig. 13: items/s grows nearly linearly with transaction size while
// the per-transaction cost dominates.
package memslap

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"rnb/internal/memcache"
	"rnb/internal/workload"
)

// Config parameterizes one benchmark run.
type Config struct {
	// Addr is the server to slam.
	Addr string
	// Concurrency is the number of client goroutines (each with its own
	// connection), like memaslap's --concurrency.
	Concurrency int
	// TxnSize is the number of keys per get transaction.
	TxnSize int
	// Keys is the key-universe size; keys are "key-<n>".
	Keys int
	// ValueSize is the stored value size in bytes (the paper uses 10).
	ValueSize int
	// Transactions is the total number of get transactions to issue
	// across all workers.
	Transactions int
	// SetPerItems issues one single-item set per this many items
	// fetched (the paper uses 1000). 0 disables sets.
	SetPerItems int
	// Seed makes key selection reproducible.
	Seed int64
	// Skew, when > 0, draws keys Zipf(Skew)-distributed over the key
	// universe (key-0 hottest) instead of uniformly — the hot-key
	// workload for exercising adaptive replication end to end.
	Skew float64
	// Timeout is the per-operation network timeout.
	Timeout time.Duration
	// Binary selects the memcached binary protocol (quiet-get
	// pipelines) instead of the text protocol, like memaslap's --binary.
	Binary bool
}

// kvConn is the protocol-independent slice of client behavior the load
// generator needs; both memcache.Client and memcache.BinClient satisfy
// it.
type kvConn interface {
	GetMulti(keys []string) (map[string]*memcache.Item, error)
	Set(it *memcache.Item) error
	Close() error
}

func dial(cfg Config) (kvConn, error) {
	if cfg.Binary {
		return memcache.DialBinary(cfg.Addr, cfg.Timeout)
	}
	return memcache.Dial(cfg.Addr, cfg.Timeout)
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Concurrency <= 0 {
		out.Concurrency = 1
	}
	if out.TxnSize <= 0 {
		out.TxnSize = 1
	}
	if out.Keys <= 0 {
		out.Keys = 10000
	}
	if out.ValueSize <= 0 {
		out.ValueSize = 10
	}
	if out.Transactions <= 0 {
		out.Transactions = 1000
	}
	if out.SetPerItems < 0 {
		out.SetPerItems = 0
	}
	if out.Timeout <= 0 {
		out.Timeout = 10 * time.Second
	}
	return out
}

// Result summarizes a run.
type Result struct {
	Transactions uint64
	ItemsFetched uint64
	Misses       uint64
	Sets         uint64
	Elapsed      time.Duration
}

// ItemsPerSecond returns the headline metric of fig. 13.
func (r Result) ItemsPerSecond() float64 {
	s := r.Elapsed.Seconds()
	if s <= 0 {
		return 0
	}
	return float64(r.ItemsFetched) / s
}

// TransactionsPerSecond returns the transaction completion rate.
func (r Result) TransactionsPerSecond() float64 {
	s := r.Elapsed.Seconds()
	if s <= 0 {
		return 0
	}
	return float64(r.Transactions) / s
}

// Key returns the canonical benchmark key for index i.
func Key(i int) string { return fmt.Sprintf("key-%08d", i) }

// Preload stores all benchmark keys on the server so get transactions
// hit.
func Preload(addr string, keys, valueSize int, timeout time.Duration) error {
	cl, err := memcache.Dial(addr, timeout)
	if err != nil {
		return err
	}
	defer cl.Close()
	val := make([]byte, valueSize)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	for i := 0; i < keys; i++ {
		if err := cl.Set(&memcache.Item{Key: Key(i), Value: val}); err != nil {
			return fmt.Errorf("memslap: preload key %d: %w", i, err)
		}
	}
	return nil
}

// Run executes the benchmark and returns aggregate counters. The
// server must already hold the keys (see Preload); misses are counted
// but do not abort the run.
func Run(cfg Config) (Result, error) {
	c := cfg.withDefaults()
	var (
		issued  atomic.Int64 // transactions handed out
		items   atomic.Uint64
		misses  atomic.Uint64
		sets    atomic.Uint64
		txns    atomic.Uint64
		wg      sync.WaitGroup
		errOnce sync.Once
		runErr  error
	)
	val := make([]byte, c.ValueSize)
	for i := range val {
		val[i] = byte('a' + i%26)
	}

	start := time.Now()
	for w := 0; w < c.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := dial(c)
			if err != nil {
				errOnce.Do(func() { runErr = err })
				return
			}
			defer cl.Close()
			rng := rand.New(rand.NewSource(c.Seed + int64(w)*7919))
			var zipf *workload.Zipf
			if c.Skew > 0 {
				zipf = workload.NewZipf(c.Skew, c.Keys, c.Seed+int64(w)*7919)
			}
			keys := make([]string, c.TxnSize)
			sinceSet := 0
			for {
				if issued.Add(1) > int64(c.Transactions) {
					return
				}
				for i := range keys {
					if zipf != nil {
						keys[i] = Key(int(zipf.Next()))
					} else {
						keys[i] = Key(rng.Intn(c.Keys))
					}
				}
				found, err := cl.GetMulti(keys)
				if err != nil {
					errOnce.Do(func() { runErr = err })
					return
				}
				txns.Add(1)
				items.Add(uint64(len(found)))
				misses.Add(uint64(len(keys) - len(found)))
				sinceSet += len(found)
				if c.SetPerItems > 0 && sinceSet >= c.SetPerItems {
					sinceSet = 0
					it := &memcache.Item{Key: Key(rng.Intn(c.Keys)), Value: val}
					if err := cl.Set(it); err != nil {
						errOnce.Do(func() { runErr = err })
						return
					}
					sets.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	res := Result{
		Transactions: txns.Load(),
		ItemsFetched: items.Load(),
		Misses:       misses.Load(),
		Sets:         sets.Load(),
		Elapsed:      time.Since(start),
	}
	return res, runErr
}

// SweepPoint is one (transaction size, result) pair from Sweep.
type SweepPoint struct {
	TxnSize int
	Result  Result
}

// Sweep runs the benchmark across several transaction sizes, holding
// the total item volume roughly constant so each point gets comparable
// measurement time. This regenerates fig. 13 (one client process) and,
// with Concurrency doubled, fig. 14.
func Sweep(base Config, txnSizes []int, itemsPerPoint int) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, k := range txnSizes {
		cfg := base
		cfg.TxnSize = k
		cfg.Transactions = itemsPerPoint / k
		if cfg.Transactions < 1 {
			cfg.Transactions = 1
		}
		res, err := Run(cfg)
		if err != nil {
			return out, fmt.Errorf("memslap: sweep txn size %d: %w", k, err)
		}
		out = append(out, SweepPoint{TxnSize: k, Result: res})
	}
	return out, nil
}
