package memslap

import (
	"net"
	"testing"
	"time"

	"rnb/internal/memcache"
)

func startServer(t *testing.T) string {
	t.Helper()
	srv := memcache.NewServer(memcache.NewStore(0))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String()
}

func TestPreloadAndRun(t *testing.T) {
	addr := startServer(t)
	if err := Preload(addr, 500, 10, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Addr: addr, Concurrency: 2, TxnSize: 10, Keys: 500,
		Transactions: 100, SetPerItems: 100, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Transactions != 100 {
		t.Fatalf("transactions = %d, want 100", res.Transactions)
	}
	// Random keys within a preloaded universe: every key hits, but a
	// transaction may pick the same key twice (the server returns it
	// once), so fetched <= issued.
	if res.ItemsFetched == 0 || res.ItemsFetched > 1000 {
		t.Fatalf("items fetched = %d", res.ItemsFetched)
	}
	if res.Sets == 0 {
		t.Fatal("no sets issued despite SetPerItems")
	}
	if res.ItemsPerSecond() <= 0 || res.TransactionsPerSecond() <= 0 {
		t.Fatal("rates not positive")
	}
}

func TestRunCountsMisses(t *testing.T) {
	addr := startServer(t)
	// No preload: everything misses.
	res, err := Run(Config{
		Addr: addr, Concurrency: 1, TxnSize: 5, Keys: 100,
		Transactions: 20, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ItemsFetched != 0 {
		t.Fatalf("fetched %d items from empty server", res.ItemsFetched)
	}
	if res.Misses != 100 {
		t.Fatalf("misses = %d, want 100", res.Misses)
	}
}

func TestRunDefaults(t *testing.T) {
	addr := startServer(t)
	if err := Preload(addr, 100, 10, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Zero values everywhere: defaults kick in; Keys defaults to 10000
	// while only 100 are loaded, so expect partial hits but no error.
	res, err := Run(Config{Addr: addr, Transactions: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Transactions != 10 {
		t.Fatalf("transactions = %d", res.Transactions)
	}
}

func TestRunBadAddr(t *testing.T) {
	if _, err := Run(Config{Addr: "127.0.0.1:1", Transactions: 1, Timeout: 200 * time.Millisecond}); err == nil {
		t.Fatal("connecting to a closed port succeeded")
	}
}

func TestSweep(t *testing.T) {
	addr := startServer(t)
	if err := Preload(addr, 1000, 10, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	points, err := Sweep(Config{Addr: addr, Concurrency: 2, Keys: 1000, Seed: 3},
		[]int{1, 4, 16}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
	for _, p := range points {
		if p.Result.Transactions == 0 {
			t.Fatalf("txn size %d ran nothing", p.TxnSize)
		}
	}
	// The paper's headline shape: larger transactions fetch items
	// faster. Loopback TCP is noisy in CI, so require only that the
	// largest size beats the smallest.
	if points[2].Result.ItemsPerSecond() <= points[0].Result.ItemsPerSecond() {
		t.Logf("warning: items/s not increasing (%f vs %f) — noisy environment?",
			points[0].Result.ItemsPerSecond(), points[2].Result.ItemsPerSecond())
	}
}

func TestRunBinaryProtocol(t *testing.T) {
	addr := startServer(t)
	if err := Preload(addr, 300, 10, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Addr: addr, Concurrency: 2, TxnSize: 8, Keys: 300,
		Transactions: 50, SetPerItems: 100, Seed: 4, Binary: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Transactions != 50 {
		t.Fatalf("transactions = %d", res.Transactions)
	}
	if res.ItemsFetched == 0 {
		t.Fatal("binary run fetched nothing")
	}
	if res.Sets == 0 {
		t.Fatal("binary run issued no sets")
	}
}

func TestKeyFormat(t *testing.T) {
	if Key(7) != "key-00000007" {
		t.Fatalf("Key(7) = %q", Key(7))
	}
}

func TestResultZeroElapsed(t *testing.T) {
	var r Result
	if r.ItemsPerSecond() != 0 || r.TransactionsPerSecond() != 0 {
		t.Fatal("zero-elapsed rates should be 0")
	}
}
