package metrics

import (
	"sync/atomic"
)

// Hotspot tracks the adaptive hot-key replication machinery (package
// internal/hotspot) with atomic counters: epoch rotations, promotions
// and demotions of keys to/from boosted replication, and the live
// summary-error signal from the heat tracker. All methods are safe for
// concurrent use; the zero value is ready.
type Hotspot struct {
	// Epochs counts heat-table rotations (controller runs).
	Epochs atomic.Uint64
	// Observed counts keys ingested from the request stream.
	Observed atomic.Uint64
	// Promotions counts keys granted a boosted replication degree
	// (re-promotions to a higher boost level included).
	Promotions atomic.Uint64
	// Demotions counts keys returned to the baseline degree.
	Demotions atomic.Uint64

	// HotKeys is a gauge: keys currently boosted.
	HotKeys atomic.Uint64
	// BoostReplicas is a gauge: total extra replicas currently granted
	// across all boosted keys (the RAM-overhead upper bound, in items).
	BoostReplicas atomic.Uint64

	// SketchErrGap accumulates, per harvest, the gap between the
	// Count-Min upper bound and the SpaceSaving lower bound over the
	// harvested keys — a live measure of how noisy the heat signal is.
	SketchErrGap atomic.Uint64
}

// Snapshot returns the counters as a name -> value map (stable names,
// suitable for stats outputs).
func (h *Hotspot) Snapshot() map[string]uint64 {
	return map[string]uint64{
		"hotspot_epochs":         h.Epochs.Load(),
		"hotspot_observed":       h.Observed.Load(),
		"hotspot_promotions":     h.Promotions.Load(),
		"hotspot_demotions":      h.Demotions.Load(),
		"hotspot_hot_keys":       h.HotKeys.Load(),
		"hotspot_boost_replicas": h.BoostReplicas.Load(),
		"hotspot_sketch_err_gap": h.SketchErrGap.Load(),
	}
}

// String renders the non-zero counters compactly, in stable order.
func (h *Hotspot) String() string {
	return FormatCompact("hotspot", "hotspot_", h.Snapshot())
}
