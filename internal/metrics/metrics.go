// Package metrics provides the counters and histograms the simulator
// reports: transactions per request (TPR), per-server rates (TPRPS),
// and the transaction-size histogram that calibration converts into
// throughput estimates (paper §III-B).
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// IntHist is a histogram over small non-negative integers (e.g. the
// number of items in a transaction). The zero value is ready to use.
type IntHist struct {
	counts []uint64
	n      uint64
	sum    uint64
}

// Add records one observation of value v (>= 0).
func (h *IntHist) Add(v int) {
	if v < 0 {
		panic("metrics: negative histogram value")
	}
	if v >= len(h.counts) {
		grown := make([]uint64, v+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[v]++
	h.n++
	h.sum += uint64(v)
}

// AddN records c observations of value v.
func (h *IntHist) AddN(v int, c uint64) {
	if v < 0 {
		panic("metrics: negative histogram value")
	}
	if v >= len(h.counts) {
		grown := make([]uint64, v+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[v] += c
	h.n += c
	h.sum += uint64(v) * c
}

// Count returns the number of observations.
func (h *IntHist) Count() uint64 { return h.n }

// Sum returns the sum of all observed values.
func (h *IntHist) Sum() uint64 { return h.sum }

// Mean returns the mean observation, or 0 with no data.
func (h *IntHist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Max returns the largest observed value, or 0 with no data.
func (h *IntHist) Max() int {
	for v := len(h.counts) - 1; v >= 0; v-- {
		if h.counts[v] > 0 {
			return v
		}
	}
	return 0
}

// Quantile returns the smallest value v such that at least q of the
// observations are <= v. q is clamped to [0,1].
func (h *IntHist) Quantile(q float64) int {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	need := uint64(math.Ceil(q * float64(h.n)))
	if need == 0 {
		need = 1
	}
	var acc uint64
	for v, c := range h.counts {
		acc += c
		if acc >= need {
			return v
		}
	}
	return len(h.counts) - 1
}

// CountOf returns the number of observations equal to v.
func (h *IntHist) CountOf(v int) uint64 {
	if v < 0 || v >= len(h.counts) {
		return 0
	}
	return h.counts[v]
}

// Buckets returns (value, count) pairs for all non-empty buckets,
// ascending by value.
func (h *IntHist) Buckets() [][2]uint64 {
	var out [][2]uint64
	for v, c := range h.counts {
		if c > 0 {
			out = append(out, [2]uint64{uint64(v), c})
		}
	}
	return out
}

// Merge adds all of o's observations into h.
func (h *IntHist) Merge(o *IntHist) {
	for v, c := range o.counts {
		if c > 0 {
			h.AddN(v, c)
		}
	}
}

// String renders a compact summary.
func (h *IntHist) String() string {
	return fmt.Sprintf("n=%d mean=%.2f p50=%d p99=%d max=%d",
		h.n, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
}

// Tally accumulates per-request simulation counters.
type Tally struct {
	Requests     uint64
	Transactions uint64 // round-1 + round-2 transactions
	Round2       uint64 // transactions issued to fetch distinguished copies after misses
	ItemsWanted  uint64 // items requested
	ItemsFetched uint64 // items obtained (≥ wanted is possible with hitchhikers... no: obtained ≤ wanted)
	Misses       uint64 // items that missed in round 1
	HitchhikeHit uint64 // items obtained via a hitchhiker rather than their primary copy
	DBFetches    uint64 // items that fell through to the authoritative store (server failures)

	// TxnSize is the histogram of items per transaction (primary +
	// hitchhikers actually transferred), the input to calibration.
	TxnSize IntHist
	// TPRHist is the histogram of transactions per request.
	TPRHist IntHist
	// BottleneckHist is the histogram of per-request bottlenecks: the
	// most keys any single server was asked for while serving one
	// request. Its Max is what the Combinatorial Batch Code guarantee
	// (internal/cbc) bounds.
	BottleneckHist IntHist
}

// TPR returns mean transactions per request.
func (t *Tally) TPR() float64 {
	if t.Requests == 0 {
		return 0
	}
	return float64(t.Transactions) / float64(t.Requests)
}

// TPRPS returns mean transactions per request per server.
func (t *Tally) TPRPS(servers int) float64 {
	if servers <= 0 {
		return 0
	}
	return t.TPR() / float64(servers)
}

// IPR returns mean items obtained per request — placement-agnostic
// accounting: whatever the placement and assignment strategy, a full
// fetch obtains every requested item, so IPR equals the mean request
// size.
func (t *Tally) IPR() float64 {
	if t.Requests == 0 {
		return 0
	}
	return float64(t.ItemsFetched) / float64(t.Requests)
}

// MissRate returns round-1 misses per requested item.
func (t *Tally) MissRate() float64 {
	if t.ItemsWanted == 0 {
		return 0
	}
	return float64(t.Misses) / float64(t.ItemsWanted)
}

// Merge adds o's counters into t.
func (t *Tally) Merge(o *Tally) {
	t.Requests += o.Requests
	t.Transactions += o.Transactions
	t.Round2 += o.Round2
	t.ItemsWanted += o.ItemsWanted
	t.ItemsFetched += o.ItemsFetched
	t.Misses += o.Misses
	t.HitchhikeHit += o.HitchhikeHit
	t.DBFetches += o.DBFetches
	t.TxnSize.Merge(&o.TxnSize)
	t.TPRHist.Merge(&o.TPRHist)
	t.BottleneckHist.Merge(&o.BottleneckHist)
}

// String renders the headline numbers.
func (t *Tally) String() string {
	return fmt.Sprintf("requests=%d tpr=%.3f round2=%d missRate=%.4f dbFetches=%d txn[%s]",
		t.Requests, t.TPR(), t.Round2, t.MissRate(), t.DBFetches, t.TxnSize.String())
}

// Summary holds order statistics for a float series (used by sweep
// outputs and EXPERIMENTS.md tables).
type Summary struct {
	N              int
	Mean, Min, Max float64
	P50, P95       float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum float64
	for _, x := range sorted {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	s.P50 = quantileSorted(sorted, 0.5)
	s.P95 = quantileSorted(sorted, 0.95)
	return s
}

func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
