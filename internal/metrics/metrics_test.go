package metrics

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntHistBasics(t *testing.T) {
	var h IntHist
	for _, v := range []int{1, 2, 2, 3, 10} {
		h.Add(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Sum() != 18 {
		t.Fatalf("Sum = %d", h.Sum())
	}
	if h.Mean() != 3.6 {
		t.Fatalf("Mean = %g", h.Mean())
	}
	if h.Max() != 10 {
		t.Fatalf("Max = %d", h.Max())
	}
	if h.CountOf(2) != 2 || h.CountOf(99) != 0 || h.CountOf(-1) != 0 {
		t.Fatal("CountOf wrong")
	}
}

func TestIntHistQuantile(t *testing.T) {
	var h IntHist
	for v := 1; v <= 100; v++ {
		h.Add(v)
	}
	if q := h.Quantile(0.5); q != 50 {
		t.Fatalf("p50 = %d", q)
	}
	if q := h.Quantile(0.99); q != 99 {
		t.Fatalf("p99 = %d", q)
	}
	if q := h.Quantile(0); q != 1 {
		t.Fatalf("p0 = %d", q)
	}
	if q := h.Quantile(1); q != 100 {
		t.Fatalf("p100 = %d", q)
	}
	if q := h.Quantile(-3); q != 1 {
		t.Fatalf("clamped low = %d", q)
	}
	if q := h.Quantile(7); q != 100 {
		t.Fatalf("clamped high = %d", q)
	}
}

func TestIntHistEmpty(t *testing.T) {
	var h IntHist
	if h.Mean() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty hist not zeroed")
	}
}

func TestIntHistNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	var h IntHist
	h.Add(-1)
}

func TestIntHistAddN(t *testing.T) {
	var h IntHist
	h.AddN(5, 10)
	if h.Count() != 10 || h.Sum() != 50 {
		t.Fatalf("AddN: count=%d sum=%d", h.Count(), h.Sum())
	}
}

func TestIntHistBuckets(t *testing.T) {
	var h IntHist
	h.Add(2)
	h.Add(2)
	h.Add(5)
	got := h.Buckets()
	if len(got) != 2 || got[0] != [2]uint64{2, 2} || got[1] != [2]uint64{5, 1} {
		t.Fatalf("Buckets = %v", got)
	}
}

func TestIntHistMerge(t *testing.T) {
	var a, b IntHist
	a.Add(1)
	b.Add(2)
	b.Add(2)
	a.Merge(&b)
	if a.Count() != 3 || a.Sum() != 5 {
		t.Fatalf("merged: count=%d sum=%d", a.Count(), a.Sum())
	}
}

func TestQuickHistMeanMatchesDirect(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var h IntHist
		sum, n := 0, 40
		for i := 0; i < n; i++ {
			v := r.Intn(50)
			h.Add(v)
			sum += v
		}
		return h.Mean() == float64(sum)/float64(n) && h.Count() == uint64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTally(t *testing.T) {
	var ta Tally
	ta.Requests = 10
	ta.Transactions = 35
	if ta.TPR() != 3.5 {
		t.Fatalf("TPR = %g", ta.TPR())
	}
	if ta.TPRPS(7) != 0.5 {
		t.Fatalf("TPRPS = %g", ta.TPRPS(7))
	}
	if ta.TPRPS(0) != 0 {
		t.Fatal("TPRPS(0) should be 0")
	}
	ta.ItemsWanted = 100
	ta.Misses = 25
	if ta.MissRate() != 0.25 {
		t.Fatalf("MissRate = %g", ta.MissRate())
	}
	var empty Tally
	if empty.TPR() != 0 || empty.MissRate() != 0 {
		t.Fatal("empty tally not zeroed")
	}
}

func TestTallyMerge(t *testing.T) {
	var a, b Tally
	a.Requests, a.Transactions = 1, 2
	b.Requests, b.Transactions = 3, 4
	b.TxnSize.Add(7)
	a.Merge(&b)
	if a.Requests != 4 || a.Transactions != 6 {
		t.Fatalf("merge: %+v", a)
	}
	if a.TxnSize.Count() != 1 {
		t.Fatal("hist not merged")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 || s.Mean != 2.5 {
		t.Fatalf("Summarize = %+v", s)
	}
	if s.P50 != 2.5 {
		t.Fatalf("P50 = %g", s.P50)
	}
	if got := Summarize(nil); got.N != 0 {
		t.Fatal("empty summarize")
	}
}

func TestStringersDoNotPanic(t *testing.T) {
	var h IntHist
	h.Add(3)
	_ = h.String()
	var ta Tally
	ta.Requests = 1
	ta.Transactions = 2
	_ = ta.String()
}
