package metrics

import (
	"sync/atomic"
)

// PoolGauges tracks the pooled, pipelined transport
// (internal/memcache.Pool): connection lifecycle, queue occupancy, and
// pipeline depth. One PoolGauges is typically shared by every
// per-server pool of a client, so the numbers are tier-wide. All
// fields are atomics; the zero value is ready.
type PoolGauges struct {
	// Connection lifecycle.
	ConnsOpen   atomic.Int64  // currently established connections
	ConnsDialed atomic.Uint64 // total dials that succeeded
	ConnsReaped atomic.Uint64 // idle connections closed by the reaper
	ConnsFailed atomic.Uint64 // connections torn down by an I/O error

	// Request flow.
	Queued   atomic.Int64 // accepted requests not yet written to a socket
	InFlight atomic.Int64 // requests written, awaiting their response
	Waiters  atomic.Int64 // goroutines blocked waiting for pool capacity

	// PipelineHighWater is the maximum in-flight depth ever observed on
	// the whole pool — how much pipelining the workload actually got.
	PipelineHighWater atomic.Int64

	// Recovery.
	Replays   atomic.Uint64 // idempotent requests replayed after a conn death
	Resubmits atomic.Uint64 // never-written requests rerouted after a conn death
}

// RecordInFlight bumps InFlight and ratchets PipelineHighWater.
func (g *PoolGauges) RecordInFlight() {
	d := g.InFlight.Add(1)
	for {
		hw := g.PipelineHighWater.Load()
		if d <= hw || g.PipelineHighWater.CompareAndSwap(hw, d) {
			return
		}
	}
}

// Snapshot returns the gauges as a name -> value map (stable names,
// suitable for stats outputs).
func (g *PoolGauges) Snapshot() map[string]int64 {
	return map[string]int64{
		"pool_conns_open":          g.ConnsOpen.Load(),
		"pool_conns_dialed":        int64(g.ConnsDialed.Load()),
		"pool_conns_reaped":        int64(g.ConnsReaped.Load()),
		"pool_conns_failed":        int64(g.ConnsFailed.Load()),
		"pool_queued":              g.Queued.Load(),
		"pool_in_flight":           g.InFlight.Load(),
		"pool_waiters":             g.Waiters.Load(),
		"pool_pipeline_high_water": g.PipelineHighWater.Load(),
		"pool_replays":             int64(g.Replays.Load()),
		"pool_resubmits":           int64(g.Resubmits.Load()),
	}
}

// String renders the non-zero gauges compactly, in stable order.
func (g *PoolGauges) String() string {
	return FormatCompact("pool", "", g.Snapshot())
}
