package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// This file is the shared registry adapter over the Snapshot-style
// counter maps (Resilience, Hotspot, PoolGauges): one place that
// decides iteration order, so every stats renderer — proxy stats,
// rnbproxy -stats-every lines, the /metrics exporter in internal/obs —
// walks the same sorted names instead of whatever order a Go map
// iteration deals.

// Number covers the value types the snapshot maps use.
type Number interface {
	~uint64 | ~int64 | ~float64
}

// SortedNames returns m's keys in sorted order.
func SortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// FormatCompact renders the non-zero entries of a snapshot map as
// "tag[k1=v1 k2=v2]" in sorted key order, with trimPrefix stripped
// from the keys; an all-zero map renders as "tag[quiet]".
func FormatCompact[V Number](tag, trimPrefix string, snap map[string]V) string {
	parts := make([]string, 0, len(snap))
	for _, name := range SortedNames(snap) {
		if snap[name] != 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", strings.TrimPrefix(name, trimPrefix), int64(snap[name])))
		}
	}
	if len(parts) == 0 {
		return tag + "[quiet]"
	}
	return tag + "[" + strings.Join(parts, " ") + "]"
}
