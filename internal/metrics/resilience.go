package metrics

import (
	"sync/atomic"
)

// Resilience tracks the client's failure-handling machinery with
// atomic counters: circuit-breaker state transitions, half-open probe
// outcomes, and read retries/re-plans. All methods are safe for
// concurrent use; the zero value is ready.
type Resilience struct {
	// Breaker state transitions.
	BreakerOpened   atomic.Uint64 // closed/half-open -> open
	BreakerHalfOpen atomic.Uint64 // open -> half-open (cooldown elapsed)
	BreakerClosed   atomic.Uint64 // half-open -> closed (probe succeeded)

	// Half-open probe outcomes.
	Probes         atomic.Uint64
	ProbeSuccesses atomic.Uint64
	ProbeFailures  atomic.Uint64

	// Read-path retries.
	Replans           atomic.Uint64 // mid-request re-plan rounds
	RetryTransactions atomic.Uint64 // transactions issued by re-plans
}

// Snapshot returns the counters as a name -> value map (stable names,
// suitable for stats outputs).
func (r *Resilience) Snapshot() map[string]uint64 {
	return map[string]uint64{
		"breaker_opened":     r.BreakerOpened.Load(),
		"breaker_half_open":  r.BreakerHalfOpen.Load(),
		"breaker_closed":     r.BreakerClosed.Load(),
		"probes":             r.Probes.Load(),
		"probe_successes":    r.ProbeSuccesses.Load(),
		"probe_failures":     r.ProbeFailures.Load(),
		"replans":            r.Replans.Load(),
		"retry_transactions": r.RetryTransactions.Load(),
	}
}

// String renders the non-zero counters compactly, in stable order.
func (r *Resilience) String() string {
	return FormatCompact("resilience", "", r.Snapshot())
}
