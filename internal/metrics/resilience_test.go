package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestResilienceSnapshot(t *testing.T) {
	var r Resilience
	if got := r.String(); got != "resilience[quiet]" {
		t.Fatalf("zero value: %q", got)
	}
	r.BreakerOpened.Add(2)
	r.Probes.Add(1)
	r.ProbeSuccesses.Add(1)
	snap := r.Snapshot()
	if snap["breaker_opened"] != 2 || snap["probes"] != 1 || snap["probe_successes"] != 1 {
		t.Fatalf("snapshot: %v", snap)
	}
	if snap["breaker_closed"] != 0 {
		t.Fatalf("untouched counter non-zero: %v", snap)
	}
	s := r.String()
	if !strings.Contains(s, "breaker_opened=2") || strings.Contains(s, "breaker_closed") {
		t.Fatalf("string: %q", s)
	}
}

func TestResilienceConcurrent(t *testing.T) {
	var r Resilience
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Replans.Add(1)
				r.RetryTransactions.Add(2)
			}
		}()
	}
	wg.Wait()
	if got := r.Snapshot()["replans"]; got != 8000 {
		t.Fatalf("replans = %d, want 8000", got)
	}
	if got := r.Snapshot()["retry_transactions"]; got != 16000 {
		t.Fatalf("retry_transactions = %d, want 16000", got)
	}
}
