package metrics

import (
	"sync/atomic"
)

// Topology tracks the dynamic-membership machinery: joins, drains,
// epoch retirements, and the warm-handoff prewarm traffic. All fields
// are safe for concurrent use; the zero value is ready.
type Topology struct {
	// Epoch mirrors the membership state machine's current epoch
	// (gauge; bumps on every accepted transition).
	Epoch atomic.Uint64

	// Membership transitions.
	Joins   atomic.Uint64 // servers added (first time or rejoin)
	Rejoins atomic.Uint64 // of those, revivals of a previously drained slot
	Drains  atomic.Uint64 // drains initiated

	// Drain completions.
	DrainsCompleted atomic.Uint64 // connection closed with zero in-flight requests
	DrainsForced    atomic.Uint64 // drain timeout expired with requests still in flight

	// Transition-window bookkeeping.
	EpochsRetired atomic.Uint64 // superseded epochs dropped from the union

	// Warm handoff.
	PrewarmKeys   atomic.Uint64 // hot keys copied onto their new owners
	PrewarmErrors atomic.Uint64 // best-effort copies that failed

	// Config reloads (file watch / SIGHUP via SetServers).
	Reloads      atomic.Uint64
	ReloadErrors atomic.Uint64
}

// Snapshot returns the counters as a name -> value map (stable names,
// suitable for stats outputs).
func (t *Topology) Snapshot() map[string]uint64 {
	return map[string]uint64{
		"epoch":            t.Epoch.Load(),
		"joins":            t.Joins.Load(),
		"rejoins":          t.Rejoins.Load(),
		"drains":           t.Drains.Load(),
		"drains_completed": t.DrainsCompleted.Load(),
		"drains_forced":    t.DrainsForced.Load(),
		"epochs_retired":   t.EpochsRetired.Load(),
		"prewarm_keys":     t.PrewarmKeys.Load(),
		"prewarm_errors":   t.PrewarmErrors.Load(),
		"reloads":          t.Reloads.Load(),
		"reload_errors":    t.ReloadErrors.Load(),
	}
}

// String renders the non-zero counters compactly, in stable order.
func (t *Topology) String() string {
	return FormatCompact("topology", "", t.Snapshot())
}
