// Package obs is the unified observability layer: a lock-free
// log-linear latency histogram (this file), per-request lifecycle
// spans with a flight-recorder ring and sampled slow-request log
// (tracer.go), and a Prometheus-text-format metric registry with a
// stable, sorted namespace served over HTTP alongside pprof
// (registry.go, http.go).
//
// The paper's argument (§III-B, §V) is quantitative: RnB is judged by
// measured per-transaction cost and by tail behavior under load, not
// by means. Everything in this package exists so a running client,
// proxy, or benchmark can answer "where did the time go, and what is
// the p99" without stopping.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// The histogram is log-linear, HdrHistogram style: values (nanoseconds)
// are bucketed by power of two, with each power subdivided into
// subCount linear sub-buckets, so the relative quantization error is
// bounded by 1/subCount (~3.1%) at every magnitude. Values below
// subCount nanoseconds are recorded exactly.
const (
	subBits  = 5
	subCount = 1 << subBits // linear sub-buckets per power of two

	// Group 0 holds the exact values [0, subCount); groups 1.. hold one
	// power of two each, for MSB positions subBits..62 (any non-negative
	// int64 nanosecond count fits).
	numGroups  = 64 - subBits
	numBuckets = numGroups * subCount
)

// bucketIndex maps a non-negative nanosecond value to its bucket.
func bucketIndex(ns int64) int {
	if ns < subCount {
		return int(ns)
	}
	msb := 63 - bits.LeadingZeros64(uint64(ns))
	g := msb - subBits + 1
	sub := int((uint64(ns) >> uint(msb-subBits)) & (subCount - 1))
	return g*subCount + sub
}

// bucketUpper returns the largest nanosecond value the bucket holds —
// the value quantiles report, so quantiles never under-estimate.
func bucketUpper(idx int) int64 {
	if idx < subCount {
		return int64(idx)
	}
	g := idx / subCount
	sub := idx % subCount
	msb := g + subBits - 1
	shift := uint(msb - subBits)
	lower := (int64(subCount) + int64(sub)) << shift
	return lower + (int64(1) << shift) - 1
}

// Hist is a concurrent latency histogram: every operation is a handful
// of atomic adds, with no locks anywhere, so writers on different CPUs
// never serialize. The zero value is ready to use. Histograms are
// mergeable: per-worker shards accumulated independently and combined
// with Merge hold exactly the observations a single shared histogram
// would (the property internal/obs tests enforce).
type Hist struct {
	counts [numBuckets]atomic.Uint64
	n      atomic.Uint64
	sum    atomic.Int64 // nanoseconds
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Hist) Observe(d time.Duration) { h.ObserveNS(int64(d)) }

// ObserveNS records one duration given in nanoseconds.
func (h *Hist) ObserveNS(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketIndex(ns)].Add(1)
	h.n.Add(1)
	h.sum.Add(ns)
}

// Count returns the number of observations.
func (h *Hist) Count() uint64 { return h.n.Load() }

// SumNS returns the sum of all observations in nanoseconds.
func (h *Hist) SumNS() int64 { return h.sum.Load() }

// Merge adds o's observations into h. Merging while o is still being
// written gives a momentarily consistent view; for exact equality with
// a single-writer histogram, quiesce the shard first.
func (h *Hist) Merge(o *Hist) {
	for i := range o.counts {
		if c := o.counts[i].Load(); c > 0 {
			h.counts[i].Add(c)
		}
	}
	h.n.Add(o.n.Load())
	h.sum.Add(o.sum.Load())
}

// Quantile returns the smallest recorded magnitude d such that at
// least a fraction q of observations are <= d, with relative error
// bounded by 1/subCount. q is clamped to [0, 1]; an empty histogram
// returns 0.
func (h *Hist) Quantile(q float64) time.Duration {
	return h.Snapshot().Quantile(q)
}

// Snapshot copies the histogram's current state for consistent
// reading (quantiles, Prometheus rendering) while writers continue.
func (h *Hist) Snapshot() *HistSnapshot {
	s := &HistSnapshot{N: h.n.Load(), SumNS: h.sum.Load()}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistSnapshot is a point-in-time, plain (non-atomic) copy of a Hist.
type HistSnapshot struct {
	Counts [numBuckets]uint64
	N      uint64
	SumNS  int64
}

// Quantile is Hist.Quantile over the snapshot.
func (s *HistSnapshot) Quantile(q float64) time.Duration {
	if s.N == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	need := uint64(math.Ceil(q * float64(s.N)))
	if need == 0 {
		need = 1
	}
	var acc uint64
	for i, c := range s.Counts {
		acc += c
		if acc >= need {
			return time.Duration(bucketUpper(i))
		}
	}
	return time.Duration(bucketUpper(numBuckets - 1))
}

// Mean returns the mean observation, or 0 with no data.
func (s *HistSnapshot) Mean() time.Duration {
	if s.N == 0 {
		return 0
	}
	return time.Duration(s.SumNS / int64(s.N))
}

// CumulativeLE returns how many observations fall in buckets whose
// upper bound is <= ns — the cumulative count Prometheus "le" buckets
// are built from. Boundary error is one log-linear bucket (~3.1%).
func (s *HistSnapshot) CumulativeLE(ns int64) uint64 {
	var acc uint64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if bucketUpper(i) > ns {
			break
		}
		acc += c
	}
	return acc
}
