package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestBucketRoundTrip checks that every value lands in a bucket whose
// range contains it, and that the bucket upper bound never under- or
// over-estimates by more than the advertised relative error.
func TestBucketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	values := []int64{0, 1, 31, 32, 33, 63, 64, 65, 1000, 1e6, 1e9, 1e12, 1<<62 - 1}
	for i := 0; i < 10000; i++ {
		values = append(values, rng.Int63())
	}
	for _, v := range values {
		idx := bucketIndex(v)
		up := bucketUpper(idx)
		if up < v {
			t.Fatalf("bucketUpper(%d)=%d < value %d", idx, up, v)
		}
		if v >= subCount {
			// Relative error bound: the bucket width is lower/subCount.
			if float64(up-v) > float64(v)/subCount {
				t.Fatalf("value %d: upper %d exceeds relative error bound", v, up)
			}
		} else if up != v {
			t.Fatalf("small value %d not exact: upper %d", v, up)
		}
	}
}

// TestBucketUpperMonotone: CumulativeLE's early break depends on
// bucketUpper increasing with the index.
func TestBucketUpperMonotone(t *testing.T) {
	prev := int64(-1)
	for i := 0; i < numBuckets; i++ {
		up := bucketUpper(i)
		if up <= prev {
			t.Fatalf("bucketUpper(%d)=%d <= bucketUpper(%d)=%d", i, up, i-1, prev)
		}
		prev = up
	}
}

// TestMergeEqualsSingleWriter is the property the benchmark sharding
// relies on: per-worker shards merged after the fact hold exactly the
// observations a single shared histogram records.
func TestMergeEqualsSingleWriter(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const shardsN = 7
	shards := make([]*Hist, shardsN)
	for i := range shards {
		shards[i] = &Hist{}
	}
	single := &Hist{}
	for i := 0; i < 50000; i++ {
		ns := rng.Int63n(int64(10 * time.Second))
		shards[i%shardsN].ObserveNS(ns)
		single.ObserveNS(ns)
	}
	merged := &Hist{}
	for _, sh := range shards {
		merged.Merge(sh)
	}
	a, b := merged.Snapshot(), single.Snapshot()
	if a.N != b.N || a.SumNS != b.SumNS || a.Counts != b.Counts {
		t.Fatalf("merged shards differ from single writer: n=%d/%d sum=%d/%d",
			a.N, b.N, a.SumNS, b.SumNS)
	}
}

// TestQuantileErrorBound compares histogram quantiles against the
// exact order statistics of the same sample.
func TestQuantileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := &Hist{}
	var exact []int64
	for i := 0; i < 20000; i++ {
		// Log-uniform magnitudes, 1µs..1s — spans many bucket groups.
		ns := int64(float64(time.Microsecond) * math.Pow(1e6, rng.Float64()))
		h.ObserveNS(ns)
		exact = append(exact, ns)
	}
	sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		want := exact[int(q*float64(len(exact)-1))]
		got := int64(h.Quantile(q))
		if got < want {
			t.Fatalf("q=%v: histogram %d under-estimates exact %d", q, got, want)
		}
		if float64(got-want) > 2*float64(want)/subCount {
			t.Fatalf("q=%v: histogram %d vs exact %d exceeds error bound", q, got, want)
		}
	}
}

// TestQuantileEdges covers the empty histogram and clamped q.
func TestQuantileEdges(t *testing.T) {
	h := &Hist{}
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	h.ObserveNS(10) // < subCount: recorded exactly
	if got := h.Quantile(-1); got != 10 {
		t.Fatalf("q<0 = %v, want 10ns", got)
	}
	if got := h.Quantile(2); got != 10 {
		t.Fatalf("q>1 = %v, want 10ns", got)
	}
	h.ObserveNS(-5) // clamps to 0
	if h.Count() != 2 || h.SumNS() != 10 {
		t.Fatalf("negative clamp: count=%d sum=%d", h.Count(), h.SumNS())
	}
}

// TestHistConcurrent hammers one histogram from many goroutines while
// a reader takes snapshots, then checks nothing was lost. Run with
// -race for the memory-model half of the claim.
func TestHistConcurrent(t *testing.T) {
	h := &Hist{}
	const writers = 8
	const perWriter = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				_ = h.Quantile(0.99)
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWriter; i++ {
				h.ObserveNS(rng.Int63n(1e9))
			}
		}(int64(w))
	}
	wg.Wait()
	close(stop)
	if h.Count() != writers*perWriter {
		t.Fatalf("count = %d, want %d", h.Count(), writers*perWriter)
	}
	snap := h.Snapshot()
	var total uint64
	for _, c := range snap.Counts {
		total += c
	}
	if total != writers*perWriter {
		t.Fatalf("bucket sum = %d, want %d", total, writers*perWriter)
	}
}

// TestCumulativeLE pins the bucket-boundary semantics /metrics depends
// on.
func TestCumulativeLE(t *testing.T) {
	h := &Hist{}
	h.ObserveNS(int64(time.Millisecond))
	h.ObserveNS(int64(10 * time.Millisecond))
	h.ObserveNS(int64(time.Second))
	snap := h.Snapshot()
	if got := snap.CumulativeLE(int64(2 * time.Millisecond)); got != 1 {
		t.Fatalf("le 2ms = %d, want 1", got)
	}
	if got := snap.CumulativeLE(int64(100 * time.Millisecond)); got != 2 {
		t.Fatalf("le 100ms = %d, want 2", got)
	}
	if got := snap.CumulativeLE(int64(10 * time.Second)); got != 3 {
		t.Fatalf("le 10s = %d, want 3", got)
	}
	if got := snap.Mean(); got <= 0 {
		t.Fatalf("mean = %v, want > 0", got)
	}
}
