package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// RequestSource yields flight-recorder dumps; *Tracer implements it.
type RequestSource interface {
	Requests() []Span
}

// NewMux assembles the debug endpoint:
//
//	/metrics         Prometheus text format, stable sorted names
//	/debug/requests  flight-recorder dump as JSON, newest first (?n= caps it)
//	/debug/pprof/*   the standard net/http/pprof handlers
//
// src may be nil (a daemon with no request tracer); /debug/requests
// then serves an empty list.
func NewMux(reg *Registry, src RequestSource) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg)
	mux.HandleFunc("/debug/requests", func(w http.ResponseWriter, r *http.Request) {
		spans := []Span{}
		if src != nil {
			spans = src.Requests()
		}
		if s := r.URL.Query().Get("n"); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n >= 0 && n < len(spans) {
				spans = spans[:n]
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Count    int    `json:"count"`
			Requests []Span `json:"requests"`
		}{Count: len(spans), Requests: spans})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ListenAndServe binds addr and serves handler in a background
// goroutine, returning the listener so the caller can report the bound
// address and close it on shutdown.
func ListenAndServe(addr string, handler http.Handler) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() { _ = http.Serve(ln, handler) }()
	return ln, nil
}
