package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"
)

// RequestSource yields flight-recorder dumps; *Tracer implements it.
type RequestSource interface {
	Requests() []Span
}

// RequestsSchemaVersion stamps /debug/requests dumps so scripted
// consumers can detect shape changes. Bump it when the envelope (not
// the additive Span fields) changes incompatibly.
const RequestsSchemaVersion = 2

// NewMux assembles the debug endpoint:
//
//	/metrics         Prometheus text format, stable sorted names
//	/debug/requests  flight-recorder dump as JSON, newest first
//	                 (?n= caps the count, ?min_dur= keeps only spans at
//	                 least that slow, e.g. ?min_dur=50ms)
//	/debug/pprof/*   the standard net/http/pprof handlers
//
// src may be nil (a daemon with no request tracer); /debug/requests
// then serves an empty list.
func NewMux(reg *Registry, src RequestSource) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg)
	mux.HandleFunc("/debug/requests", func(w http.ResponseWriter, r *http.Request) {
		spans := []Span{}
		if src != nil {
			spans = src.Requests()
		}
		if s := r.URL.Query().Get("min_dur"); s != "" {
			min, err := time.ParseDuration(s)
			if err != nil {
				http.Error(w, "bad min_dur: "+err.Error(), http.StatusBadRequest)
				return
			}
			kept := spans[:0]
			for _, sp := range spans {
				if sp.TotalNS >= int64(min) {
					kept = append(kept, sp)
				}
			}
			spans = kept
		}
		if s := r.URL.Query().Get("n"); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n >= 0 && n < len(spans) {
				spans = spans[:n]
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Schema   int    `json:"schema"`
			Count    int    `json:"count"`
			Requests []Span `json:"requests"`
		}{Schema: RequestsSchemaVersion, Count: len(spans), Requests: spans})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// TraceSource yields kept distributed traces; *TraceBuffer implements
// it.
type TraceSource interface {
	Traces() []Span
	Trace(id uint64) (Span, bool)
}

// HandleTraces mounts the distributed-tracing endpoints on mux:
//
//	/debug/traces       index of kept traces (tail-sampled), newest
//	                    slow traces first then the reservoir
//	/debug/trace/<id>   one trace as Chrome trace-event JSON (load the
//	                    response in Perfetto); ?format=span returns the
//	                    raw Span record instead
func HandleTraces(mux *http.ServeMux, src TraceSource) {
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		type entry struct {
			TraceID uint64    `json:"trace_id"`
			Op      string    `json:"op"`
			Start   time.Time `json:"start"`
			Keys    int       `json:"keys"`
			TotalNS int64     `json:"total_ns"`
			Err     string    `json:"err,omitempty"`
		}
		spans := src.Traces()
		index := make([]entry, 0, len(spans))
		for _, sp := range spans {
			index = append(index, entry{
				TraceID: sp.TraceID, Op: sp.Op, Start: sp.Start,
				Keys: sp.Keys, TotalNS: sp.TotalNS, Err: sp.Err,
			})
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Schema int     `json:"schema"`
			Count  int     `json:"count"`
			Traces []entry `json:"traces"`
		}{Schema: RequestsSchemaVersion, Count: len(index), Traces: index})
	})
	mux.HandleFunc("/debug/trace/", func(w http.ResponseWriter, r *http.Request) {
		idStr := strings.TrimPrefix(r.URL.Path, "/debug/trace/")
		id, err := strconv.ParseUint(idStr, 10, 64)
		if err != nil {
			http.Error(w, "bad trace id", http.StatusBadRequest)
			return
		}
		sp, ok := src.Trace(id)
		if !ok {
			http.Error(w, "trace not found", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if r.URL.Query().Get("format") == "span" {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(&sp)
			return
		}
		_ = WriteTraceEvents(w, []Span{sp})
	})
}

// ServerSpanSource yields the server-side flight recorder's ring;
// *ServerRecorder implements it.
type ServerSpanSource interface {
	Spans() []ServerSpan
}

// HandleServerSpans mounts /debug/spans: the server-side flight
// recorder dumped as JSON, newest first — one record per *traced*
// transaction with its phase attribution (queue/parse/wait/exec/flush)
// and the client span it was issued under. ?n= caps the count.
func HandleServerSpans(mux *http.ServeMux, src ServerSpanSource) {
	mux.HandleFunc("/debug/spans", func(w http.ResponseWriter, r *http.Request) {
		spans := src.Spans()
		if s := r.URL.Query().Get("n"); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n >= 0 && n < len(spans) {
				spans = spans[:n]
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Schema int          `json:"schema"`
			Count  int          `json:"count"`
			Spans  []ServerSpan `json:"spans"`
		}{Schema: RequestsSchemaVersion, Count: len(spans), Spans: spans})
	})
}

// ListenAndServe binds addr and serves handler in a background
// goroutine, returning the listener so the caller can report the bound
// address and close it on shutdown.
func ListenAndServe(addr string, handler http.Handler) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() { _ = http.Serve(ln, handler) }()
	return ln, nil
}
