package obs

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Kind is a Prometheus metric type.
type Kind int

const (
	// Counter is a monotonically increasing total.
	Counter Kind = iota
	// Gauge is a value that can go up and down.
	Gauge
)

func (k Kind) String() string {
	if k == Counter {
		return "counter"
	}
	return "gauge"
}

// Sample is one exported value of a family: an optional pre-rendered
// label set (built with Labels) and the value.
type Sample struct {
	Labels string
	Value  float64
}

// Labels renders a label set from key/value pairs, escaping values,
// e.g. Labels("server", "3", "addr", "10.0.0.1:11211").
func Labels(kv ...string) string {
	if len(kv)%2 != 0 {
		panic("obs: Labels needs key/value pairs")
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(kv[i])
		sb.WriteString("=\"")
		sb.WriteString(escapeLabel(kv[i+1]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

var validName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// family is one registered metric name with its collector.
type family struct {
	name    string
	help    string
	kind    Kind
	collect func() []Sample
	hist    *Hist // non-nil for histogram families
}

// Registry is the scrape-side half of the observability layer: every
// metric family the process exports, under one stable namespace. Names
// are validated and sorted once, at registration — every render walks
// the same order, so /metrics output and stats lines derived from it
// are deterministic. Collectors run at scrape time; they must be safe
// for concurrent use.
type Registry struct {
	mu   sync.Mutex
	fams []*family // sorted by name
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// register inserts f in sorted position, panicking on an invalid or
// duplicate name: both are programmer errors, caught by any test that
// touches the registry.
func (r *Registry) register(f *family) {
	if !validName.MatchString(f.name) {
		panic("obs: invalid metric name " + f.name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	i := sort.Search(len(r.fams), func(i int) bool { return r.fams[i].name >= f.name })
	if i < len(r.fams) && r.fams[i].name == f.name {
		panic("obs: duplicate metric name " + f.name)
	}
	r.fams = append(r.fams, nil)
	copy(r.fams[i+1:], r.fams[i:])
	r.fams[i] = f
}

// Register adds a family whose samples are gathered by collect at
// scrape time (use for labeled families).
func (r *Registry) Register(name, help string, kind Kind, collect func() []Sample) {
	r.register(&family{name: name, help: help, kind: kind, collect: collect})
}

// RegisterFunc adds a single-sample family.
func (r *Registry) RegisterFunc(name, help string, kind Kind, f func() float64) {
	r.Register(name, help, kind, func() []Sample {
		return []Sample{{Value: f()}}
	})
}

// RegisterUint64Map expands a Snapshot-style map into one family per
// key, named prefix + key. The key set is read once, here, and sorted
// into the registry — the fix for stats outputs that used to iterate
// the map in whatever order the runtime dealt.
func (r *Registry) RegisterUint64Map(prefix, help string, kind Kind, collect func() map[string]uint64) {
	for name := range collect() {
		name := name
		r.RegisterFunc(prefix+name, help, kind, func() float64 {
			return float64(collect()[name])
		})
	}
}

// RegisterInt64Map is RegisterUint64Map for int64-valued snapshots.
func (r *Registry) RegisterInt64Map(prefix, help string, kind Kind, collect func() map[string]int64) {
	for name := range collect() {
		name := name
		r.RegisterFunc(prefix+name, help, kind, func() float64 {
			return float64(collect()[name])
		})
	}
}

// durationBounds is the bucket ladder exported for duration
// histograms, in seconds: a 1-2.5-5 decade ladder from 10µs to 10s.
// The native log-linear buckets are far finer (~3.1% relative error);
// the ladder only shapes the Prometheus view.
var durationBounds = []float64{
	10e-6, 25e-6, 50e-6,
	100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3,
	10e-3, 25e-3, 50e-3,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// RegisterDurationHist adds a histogram family over h. Durations are
// recorded in nanoseconds internally but exported in seconds, and the
// name must say so: anything not ending in "_seconds" panics — the
// guard that keeps ns/µs/ms unit drift out of the exported namespace.
func (r *Registry) RegisterDurationHist(name, help string, h *Hist) {
	if !strings.HasSuffix(name, "_seconds") {
		panic("obs: duration histogram " + name + " must be named *_seconds")
	}
	if !validName.MatchString(name) {
		panic("obs: invalid metric name " + name)
	}
	r.register(&family{name: name, help: help, hist: h})
}

// Render writes the registry in Prometheus text exposition format,
// families in name order.
func (r *Registry) Render(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if f.hist != nil {
			if err := writeHist(w, f.name, f.hist); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.collect() {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.Labels, formatValue(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHist(w io.Writer, name string, h *Hist) error {
	snap := h.Snapshot()
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	for _, le := range durationBounds {
		c := snap.CumulativeLE(int64(le * 1e9))
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, formatValue(le), c); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, snap.N); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", name, formatValue(float64(snap.SumNS)/1e9)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, snap.N)
	return err
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ServeHTTP serves the registry as a /metrics scrape handler.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.Render(w)
}
