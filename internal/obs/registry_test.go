package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestSortedDeterministicOutput registers families out of order and
// checks every render walks the same sorted sequence — the fix for
// stats output that used to follow map iteration order.
func TestSortedDeterministicOutput(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"zeta_total", "alpha_total", "mid_total"} {
		name := name
		r.RegisterFunc(name, "test.", Counter, func() float64 { return 1 })
	}
	first := render(t, r)
	ia := strings.Index(first, "alpha_total")
	im := strings.Index(first, "mid_total")
	iz := strings.Index(first, "zeta_total")
	if !(ia < im && im < iz) {
		t.Fatalf("families not sorted:\n%s", first)
	}
	for i := 0; i < 10; i++ {
		if got := render(t, r); got != first {
			t.Fatalf("render %d differs from first:\n%s\nvs\n%s", i, got, first)
		}
	}
}

// TestRegisterMapExpandsSorted: a Snapshot map becomes one family per
// key, all in the sorted namespace.
func TestRegisterMapExpandsSorted(t *testing.T) {
	r := NewRegistry()
	snap := map[string]uint64{"bravo": 2, "alpha": 1, "charlie": 3}
	r.RegisterUint64Map("t_", "test.", Counter, func() map[string]uint64 { return snap })
	out := render(t, r)
	for _, line := range []string{"t_alpha 1", "t_bravo 2", "t_charlie 3"} {
		if !strings.Contains(out, line) {
			t.Fatalf("missing %q in:\n%s", line, out)
		}
	}
	if !(strings.Index(out, "t_alpha") < strings.Index(out, "t_bravo") &&
		strings.Index(out, "t_bravo") < strings.Index(out, "t_charlie")) {
		t.Fatalf("map families not sorted:\n%s", out)
	}
	snap["alpha"] = 42 // live: collectors re-read at scrape time
	if !strings.Contains(render(t, r), "t_alpha 42") {
		t.Fatalf("collector not live")
	}
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	f()
}

func TestRegistryPanics(t *testing.T) {
	r := NewRegistry()
	r.RegisterFunc("dup_total", "x.", Counter, func() float64 { return 0 })
	mustPanic(t, "duplicate name", func() {
		r.RegisterFunc("dup_total", "x.", Counter, func() float64 { return 0 })
	})
	mustPanic(t, "invalid name", func() {
		r.RegisterFunc("bad name", "x.", Counter, func() float64 { return 0 })
	})
	mustPanic(t, "duration histogram without _seconds suffix", func() {
		r.RegisterDurationHist("latency_ms", "x.", &Hist{})
	})
	mustPanic(t, "odd Labels", func() { Labels("key") })
}

// TestHistogramRendering pins the Prometheus histogram layout: the
// seconds-unit ladder, cumulative buckets, +Inf, _sum, _count.
func TestHistogramRendering(t *testing.T) {
	h := &Hist{}
	h.Observe(5 * time.Millisecond)
	h.Observe(5 * time.Millisecond)
	h.Observe(2 * time.Second)
	r := NewRegistry()
	r.RegisterDurationHist("req_duration_seconds", "test.", h)
	out := render(t, r)
	for _, line := range []string{
		"# TYPE req_duration_seconds histogram",
		`req_duration_seconds_bucket{le="0.01"} 2`,
		`req_duration_seconds_bucket{le="2.5"} 3`,
		`req_duration_seconds_bucket{le="+Inf"} 3`,
		"req_duration_seconds_count 3",
	} {
		if !strings.Contains(out, line) {
			t.Fatalf("missing %q in:\n%s", line, out)
		}
	}
}

// TestLabels checks rendering and escaping.
func TestLabels(t *testing.T) {
	got := Labels("server", "3", "addr", `va"l\ue`)
	want := `{server="3",addr="va\"l\\ue"}`
	if got != want {
		t.Fatalf("Labels = %s, want %s", got, want)
	}
}

// TestServeHTTP checks the scrape handler end to end.
func TestServeHTTP(t *testing.T) {
	r := NewRegistry()
	r.RegisterFunc("up", "test.", Gauge, func() float64 { return 1 })
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "up 1") {
		t.Fatalf("body missing sample:\n%s", rec.Body.String())
	}
}
