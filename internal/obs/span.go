package obs

import "time"

// TxnRTT is one server round trip inside a request: which server, how
// many keys rode the transaction, which phase issued it, and how long
// the client waited for it. In the pooled transport the duration
// includes queueing for a connection — it is the latency the request
// actually experienced, not the wire time alone.
type TxnRTT struct {
	// Server is the client's server index.
	Server int `json:"server"`
	// Addr is the server address.
	Addr string `json:"addr"`
	// Keys is the number of keys requested (primaries + hitchhikers).
	Keys int `json:"keys"`
	// Phase labels which stage issued the trip: "fanout" (the planned
	// round-1 multi-gets), "replan" (mid-request re-plan rounds), or
	// "round2" (distinguished-copy recovery).
	Phase string `json:"phase"`
	// Round is the 1-based re-plan round for phase "replan", 0
	// otherwise.
	Round int `json:"round,omitempty"`
	// DurNS is the round trip's wall time in nanoseconds.
	DurNS int64 `json:"dur_ns"`
	// Err is the failure, if the transaction hit one.
	Err string `json:"err,omitempty"`

	// Distributed-tracing fields, present only on traced requests.

	// SpanID is the client-side span id minted for this round trip;
	// server spans it caused name it as their parent.
	SpanID uint64 `json:"span_id,omitempty"`
	// OffsetNS is the trip's start offset from the owning Span.Start.
	OffsetNS int64 `json:"offset_ns,omitempty"`
	// QueueNS is the client-side share of DurNS spent waiting to reach
	// the wire (pool submit-to-write wait, or single-conn mutex wait).
	QueueNS int64 `json:"queue_ns,omitempty"`
	// ServerTimings is the server's phase attribution for the trip,
	// returned in-band; nil when the server did not negotiate tracing.
	// DurNS − QueueNS − ServerTimings.TotalNS() is the wire residual.
	ServerTimings *ServerTimings `json:"server_timings,omitempty"`
}

// WireNS returns the round trip's wire residual: the part of DurNS not
// attributed to client queueing or the server's phases, clamped at
// zero (clock noise can push the subtraction slightly negative).
func (r *TxnRTT) WireNS() int64 {
	if r.ServerTimings == nil {
		return 0
	}
	wire := r.DurNS - r.QueueNS - r.ServerTimings.TotalNS()
	if wire < 0 {
		wire = 0
	}
	return wire
}

// Span is one request's lifecycle record: where the time went (plan,
// fan-out, recovery, loader), what the planner decided, and what went
// wrong. Spans land in the flight recorder for post-mortem dumps and,
// above the slow threshold, in the slow-request log. All durations are
// nanoseconds internally; exported metric names derived from spans use
// seconds (see registry.go).
type Span struct {
	// ID is a monotonically increasing per-tracer sequence number.
	ID uint64 `json:"id"`
	// Op names the API call ("get_multi", "get_multi_limit",
	// "get_multi_budget").
	Op string `json:"op"`
	// Start is when the request began.
	Start time.Time `json:"start"`
	// Keys is the number of keys requested.
	Keys int `json:"keys"`

	// Phase durations, nanoseconds.
	PlanNS   int64 `json:"plan_ns"`   // greedy set-cover planning
	FanoutNS int64 `json:"fanout_ns"` // round-1 fan-out plus re-plan rounds
	Round2NS int64 `json:"round2_ns"` // distinguished-copy recovery
	LoaderNS int64 `json:"loader_ns"` // cache-aside backing-store fetch
	TotalNS  int64 `json:"total_ns"`

	// Plan/outcome counters (mirroring rnb.Stats).
	Transactions int `json:"transactions"`
	Round2       int `json:"round2"`
	Hitchhikers  int `json:"hitchhikers"`
	Retries      int `json:"retries"`
	Replans      int `json:"replans"`
	Failed       int `json:"failed"`
	Loaded       int `json:"loaded"`
	ItemsFound   int `json:"items_found"`
	// BreakerTrips is how many breaker open transitions the whole tier
	// saw while this request ran (concurrent requests share the
	// breakers, so trips caused by neighbors are counted too).
	BreakerTrips int `json:"breaker_trips"`

	// RTTs holds every server round trip the request issued.
	RTTs []TxnRTT `json:"rtts,omitempty"`
	// Err is the request-level failure, if any.
	Err string `json:"err,omitempty"`

	// TraceID is the distributed trace id propagated on the wire; zero
	// when the request was not head-sampled for tracing.
	TraceID uint64 `json:"trace_id,omitempty"`
	// ParentSpan is the upstream client span this request serves (a
	// proxy's server-side parent); zero at the originating client.
	ParentSpan uint64 `json:"parent_span,omitempty"`
}

// Total returns the span's wall time.
func (sp *Span) Total() time.Duration { return time.Duration(sp.TotalNS) }
