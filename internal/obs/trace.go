package obs

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// TraceContext is the compact cross-process trace identity carried on
// the wire ahead of a traced command: which causal trace the command
// belongs to and which client-side span issued it. Both wire formats
// encode exactly these two words — a "trace <id> <span>" prefix line on
// the text protocol, a binOpTrace extras frame on the binary protocol —
// and both are only emitted after the handshake confirmed an RnB peer,
// so plain memcached servers never see them.
type TraceContext struct {
	// TraceID identifies the whole causal trace (one client request and
	// every server transaction it fanned into). Zero means "untraced".
	TraceID uint64 `json:"trace_id"`
	// Parent is the span id of the client-side span that issued the
	// traced command; server spans attach under it.
	Parent uint64 `json:"parent"`
}

// Valid reports whether tc names a real trace.
func (tc TraceContext) Valid() bool { return tc.TraceID != 0 }

// ServerTimings is a server's phase attribution for one traced
// transaction, returned to the client on the same connection so the
// client can split its observed RTT into queue/wire/server components.
// WaitNS (store shard-lock wait) is a component *inside* ExecNS, not an
// additional phase, so the server-side total is Queue+Parse+Exec+Flush.
type ServerTimings struct {
	// TraceID echoes the propagated trace id (framing check).
	TraceID uint64 `json:"trace_id"`
	// SpanID is the server-side span id minted for this transaction.
	SpanID uint64 `json:"span_id"`
	// QueueNS is how long the command's bytes sat in the connection's
	// user-space read buffer before the server began this transaction —
	// a lower bound on same-connection backlog (an idle blocking read
	// measures ~0 because the read that delivers the bytes is the fill).
	QueueNS int64 `json:"queue_ns"`
	// ParseNS covers command read+decode up to the backend call.
	ParseNS int64 `json:"parse_ns"`
	// WaitNS is store shard-lock acquisition wait, a slice of ExecNS.
	WaitNS int64 `json:"wait_ns"`
	// ExecNS is the backend (store) execution time.
	ExecNS int64 `json:"exec_ns"`
	// FlushNS is response serialization plus the flush to the socket.
	FlushNS int64 `json:"flush_ns"`
}

// TotalNS is the server's whole share of the round trip (WaitNS is
// already inside ExecNS).
func (st *ServerTimings) TotalNS() int64 {
	return st.QueueNS + st.ParseNS + st.ExecNS + st.FlushNS
}

// ServerSpan is one transaction's record in the server-side flight
// recorder: what ran, when, over how many keys, and where its time
// went. Untraced transactions are not recorded — the recorder exists to
// explain traced (sampled) traffic, and recording every transaction
// would put a mutex on the server hot path.
type ServerSpan struct {
	// ID is the server-local span id (== Timings.SpanID).
	ID uint64 `json:"id"`
	// Op is the wire command ("get", "get_multi", "set", ...).
	Op string `json:"op"`
	// Start is when the server began the transaction.
	Start time.Time `json:"start"`
	// Keys is the number of keys in the transaction.
	Keys int `json:"keys"`
	// Timings is the phase attribution (includes trace/parent linkage).
	Timings ServerTimings `json:"timings"`
	// Parent is the client span id the transaction was issued under.
	Parent uint64 `json:"parent,omitempty"`
}

// ServerRecorder is the server-side analogue of Tracer: per-phase
// histograms fed by every traced transaction plus a ring of the most
// recent ServerSpans. All methods are safe for concurrent use.
type ServerRecorder struct {
	// Per-phase histograms (nanoseconds in, seconds out via the
	// registry's duration-histogram path).
	Queue Hist
	Parse Hist
	Wait  Hist
	Exec  Hist
	Flush Hist

	nextID atomic.Uint64
	traced atomic.Uint64

	mu   sync.Mutex
	ring []ServerSpan
	head int
	n    int
}

// NewServerRecorder builds a recorder with a size-span ring (size <= 0
// selects DefaultRingSize).
func NewServerRecorder(size int) *ServerRecorder {
	if size <= 0 {
		size = DefaultRingSize
	}
	return &ServerRecorder{ring: make([]ServerSpan, size)}
}

// NextID mints a server-local span id.
func (r *ServerRecorder) NextID() uint64 { return r.nextID.Add(1) }

// Traced returns how many traced transactions the recorder has seen.
func (r *ServerRecorder) Traced() uint64 { return r.traced.Load() }

// Record feeds the phase histograms and stores sp in the ring.
func (r *ServerRecorder) Record(sp ServerSpan) {
	r.traced.Add(1)
	r.Queue.ObserveNS(sp.Timings.QueueNS)
	r.Parse.ObserveNS(sp.Timings.ParseNS)
	r.Wait.ObserveNS(sp.Timings.WaitNS)
	r.Exec.ObserveNS(sp.Timings.ExecNS)
	r.Flush.ObserveNS(sp.Timings.FlushNS)
	r.mu.Lock()
	r.ring[r.head] = sp
	r.head = (r.head + 1) % len(r.ring)
	if r.n < len(r.ring) {
		r.n++
	}
	r.mu.Unlock()
}

// RegisterMetrics exports the recorder's per-phase histograms and
// traced-transaction counter under stable memd_* names — the Prometheus
// face of the server-side attribution the wire protocol reports per
// transaction.
func (r *ServerRecorder) RegisterMetrics(reg *Registry) {
	reg.RegisterDurationHist("memd_queue_wait_seconds",
		"Traced transactions: wait between the request bytes arriving and processing starting.", &r.Queue)
	reg.RegisterDurationHist("memd_parse_seconds",
		"Traced transactions: command parse time.", &r.Parse)
	reg.RegisterDurationHist("memd_store_wait_seconds",
		"Traced transactions: store shard-lock wait (a subset of exec).", &r.Wait)
	reg.RegisterDurationHist("memd_exec_seconds",
		"Traced transactions: store execution, lock wait included.", &r.Exec)
	reg.RegisterDurationHist("memd_flush_seconds",
		"Traced transactions: response serialization and socket flush.", &r.Flush)
	reg.RegisterFunc("memd_traced_transactions",
		"Transactions that carried a trace context.", Counter,
		func() float64 { return float64(r.Traced()) })
}

// Spans dumps the ring, newest first.
func (r *ServerRecorder) Spans() []ServerSpan {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ServerSpan, 0, r.n)
	for i := 1; i <= r.n; i++ {
		out = append(out, r.ring[(r.head-i+len(r.ring))%len(r.ring)])
	}
	return out
}

// Trace-buffer defaults.
const (
	DefaultSlowCapacity      = 64
	DefaultReservoirCapacity = 32
)

// TraceConfig parameterizes client-side trace collection.
type TraceConfig struct {
	// SampleEvery is the head-sampling rate: every Nth multiget carries
	// a TraceContext on the wire (default 1 — trace everything; the
	// tail sampler below decides what is *kept*).
	SampleEvery int
	// SlowThreshold is the tail-sampling keep-always bound: finished
	// traces at least this slow always land in the slow ring (0 keeps
	// none by the slow rule; the reservoir still samples).
	SlowThreshold time.Duration
	// SlowCapacity is the slow ring's size (default 64).
	SlowCapacity int
	// ReservoirCapacity is the uniform reservoir over normal (fast)
	// traces (default 32; < 0 disables the reservoir).
	ReservoirCapacity int
	// Seed seeds the reservoir sampler (0 uses a fixed default so runs
	// are reproducible unless told otherwise).
	Seed int64
	// OnFinish, when set, observes every finished traced span before
	// the sampling decision (the bench's aggregation hook).
	OnFinish func(sp *Span)
}

// TraceBuffer implements tail sampling over finished traces: every
// trace slower than SlowThreshold is kept in a ring, and a uniform
// reservoir keeps a representative sample of the normal ones. All
// methods are safe for concurrent use.
type TraceBuffer struct {
	slowNS      int64
	sampleEvery uint64
	seq         atomic.Uint64
	started     atomic.Uint64
	finished    atomic.Uint64
	keptSlow    atomic.Uint64
	keptRes     atomic.Uint64
	onFinish    func(sp *Span)

	mu       sync.Mutex
	rng      *rand.Rand
	slow     []Span
	slowHead int
	slowN    int
	res      []Span
	resSeen  uint64
}

// NewTraceBuffer builds a buffer from cfg.
func NewTraceBuffer(cfg TraceConfig) *TraceBuffer {
	every := cfg.SampleEvery
	if every <= 0 {
		every = 1
	}
	slowCap := cfg.SlowCapacity
	if slowCap <= 0 {
		slowCap = DefaultSlowCapacity
	}
	resCap := cfg.ReservoirCapacity
	if resCap == 0 {
		resCap = DefaultReservoirCapacity
	}
	if resCap < 0 {
		resCap = 0
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &TraceBuffer{
		slowNS:      int64(cfg.SlowThreshold),
		sampleEvery: uint64(every),
		onFinish:    cfg.OnFinish,
		rng:         rand.New(rand.NewSource(seed)),
		slow:        make([]Span, slowCap),
		res:         make([]Span, 0, resCap),
	}
}

// ShouldTrace makes the head-sampling decision for the next request:
// whether it carries a TraceContext on the wire at all.
func (b *TraceBuffer) ShouldTrace() bool {
	if (b.seq.Add(1)-1)%b.sampleEvery != 0 {
		return false
	}
	b.started.Add(1)
	return true
}

// Finish hands a completed traced span to the tail sampler. The span is
// copied (RTT backing array included); the caller may reuse it.
func (b *TraceBuffer) Finish(sp *Span) {
	b.finished.Add(1)
	if b.onFinish != nil {
		b.onFinish(sp)
	}
	cp := *sp
	cp.RTTs = append([]TxnRTT(nil), sp.RTTs...)
	if b.slowNS > 0 && cp.TotalNS >= b.slowNS {
		b.keptSlow.Add(1)
		b.mu.Lock()
		b.slow[b.slowHead] = cp
		b.slowHead = (b.slowHead + 1) % len(b.slow)
		if b.slowN < len(b.slow) {
			b.slowN++
		}
		b.mu.Unlock()
		return
	}
	if cap(b.res) == 0 {
		return
	}
	b.mu.Lock()
	b.resSeen++
	if len(b.res) < cap(b.res) {
		b.res = append(b.res, cp)
		b.keptRes.Add(1)
	} else if j := b.rng.Int63n(int64(b.resSeen)); int(j) < cap(b.res) {
		b.res[j] = cp
		b.keptRes.Add(1)
	}
	b.mu.Unlock()
}

// Traces dumps the kept traces: slow ring newest first, then the
// reservoir of normal traces.
func (b *TraceBuffer) Traces() []Span {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Span, 0, b.slowN+len(b.res))
	for i := 1; i <= b.slowN; i++ {
		out = append(out, b.slow[(b.slowHead-i+len(b.slow))%len(b.slow)])
	}
	out = append(out, b.res...)
	return out
}

// Trace looks a kept trace up by trace id.
func (b *TraceBuffer) Trace(id uint64) (Span, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := 1; i <= b.slowN; i++ {
		if sp := b.slow[(b.slowHead-i+len(b.slow))%len(b.slow)]; sp.TraceID == id {
			return sp, true
		}
	}
	for _, sp := range b.res {
		if sp.TraceID == id {
			return sp, true
		}
	}
	return Span{}, false
}

// Started counts head-sampled traces begun; Finished counts completed
// traced spans handed to the tail sampler; KeptSlow/KeptReservoir count
// keep decisions by rule.
func (b *TraceBuffer) Started() uint64       { return b.started.Load() }
func (b *TraceBuffer) Finished() uint64      { return b.finished.Load() }
func (b *TraceBuffer) KeptSlow() uint64      { return b.keptSlow.Load() }
func (b *TraceBuffer) KeptReservoir() uint64 { return b.keptRes.Load() }
