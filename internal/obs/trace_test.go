package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func spanNS(trace uint64, total int64) *Span {
	return &Span{ID: trace, TraceID: trace, Op: "get_multi", TotalNS: total,
		RTTs: []TxnRTT{{Server: 0, DurNS: total}}}
}

// TestTraceBufferTailSampling: traces at or above the slow threshold
// always land in the slow ring; fast ones go through the uniform
// reservoir; lookup by id finds both.
func TestTraceBufferTailSampling(t *testing.T) {
	b := NewTraceBuffer(TraceConfig{
		SlowThreshold:     time.Millisecond,
		SlowCapacity:      4,
		ReservoirCapacity: 8,
	})
	for i := uint64(1); i <= 6; i++ { // 6 slow spans through a 4-slot ring
		b.Finish(spanNS(i, int64(time.Millisecond)+int64(i)))
	}
	for i := uint64(100); i < 103; i++ { // 3 fast spans, reservoir has room
		b.Finish(spanNS(i, int64(time.Microsecond)))
	}
	if got := b.KeptSlow(); got != 6 {
		t.Fatalf("KeptSlow = %d, want 6", got)
	}
	if got := b.KeptReservoir(); got != 3 {
		t.Fatalf("KeptReservoir = %d, want 3", got)
	}
	if got := b.Finished(); got != 9 {
		t.Fatalf("Finished = %d, want 9", got)
	}
	traces := b.Traces()
	if len(traces) != 4+3 {
		t.Fatalf("Traces holds %d spans, want 7 (4 slow + 3 reservoir)", len(traces))
	}
	// Slow ring dumps newest first; the two oldest slow traces were
	// overwritten.
	if traces[0].TraceID != 6 || traces[3].TraceID != 3 {
		t.Fatalf("slow ring order: got %d..%d, want 6..3", traces[0].TraceID, traces[3].TraceID)
	}
	if _, ok := b.Trace(1); ok {
		t.Fatal("evicted slow trace 1 still found")
	}
	for _, id := range []uint64{4, 101} {
		sp, ok := b.Trace(id)
		if !ok || sp.TraceID != id {
			t.Fatalf("Trace(%d): ok=%v id=%d", id, ok, sp.TraceID)
		}
	}
	if _, ok := b.Trace(999); ok {
		t.Fatal("Trace(999) found a span that was never finished")
	}
}

// TestTraceBufferCopiesRTTs: Finish deep-copies the span's RTT slice,
// so the caller reusing its backing array cannot corrupt a kept trace.
func TestTraceBufferCopiesRTTs(t *testing.T) {
	b := NewTraceBuffer(TraceConfig{SlowThreshold: time.Nanosecond})
	sp := spanNS(1, int64(time.Second))
	b.Finish(sp)
	sp.RTTs[0].Server = 42
	kept, ok := b.Trace(1)
	if !ok || kept.RTTs[0].Server != 0 {
		t.Fatalf("kept trace shares the caller's RTT array: %+v", kept.RTTs)
	}
}

// TestTraceBufferHeadSampling: ShouldTrace admits every Nth request.
func TestTraceBufferHeadSampling(t *testing.T) {
	b := NewTraceBuffer(TraceConfig{SampleEvery: 3})
	var yes int
	for i := 0; i < 9; i++ {
		if b.ShouldTrace() {
			yes++
		}
	}
	if yes != 3 || b.Started() != 3 {
		t.Fatalf("SampleEvery=3 over 9 requests: traced %d (started %d), want 3", yes, b.Started())
	}
}

// TestTraceBufferOnFinish: the hook observes every finished span before
// the sampling decision, including ones the sampler then drops.
func TestTraceBufferOnFinish(t *testing.T) {
	var seen []uint64
	b := NewTraceBuffer(TraceConfig{
		SlowThreshold:     time.Hour, // nothing is slow
		ReservoirCapacity: -1,        // and the reservoir is off
		OnFinish:          func(sp *Span) { seen = append(seen, sp.TraceID) },
	})
	b.Finish(spanNS(1, 10))
	b.Finish(spanNS(2, 20))
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Fatalf("OnFinish saw %v, want [1 2]", seen)
	}
	if got := b.Traces(); len(got) != 0 {
		t.Fatalf("sampler kept %d spans with both rules disabled", len(got))
	}
}

// TestTraceBufferConcurrent hammers Finish against Traces/Trace from
// many goroutines; run under -race this is the data-race gate for the
// tail sampler.
func TestTraceBufferConcurrent(t *testing.T) {
	b := NewTraceBuffer(TraceConfig{SlowThreshold: time.Microsecond})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				total := int64(time.Microsecond) // slow ring
				if i%2 == 0 {
					total = 10 // reservoir
				}
				b.Finish(spanNS(uint64(g*1000+i+1), total))
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b.Traces()
				b.Trace(uint64(i))
			}
		}()
	}
	wg.Wait()
	if b.Finished() != 800 {
		t.Fatalf("Finished = %d, want 800", b.Finished())
	}
}

// TestServerRecorderRing: Record feeds the phase histograms and the
// ring dumps newest first.
func TestServerRecorderRing(t *testing.T) {
	r := NewServerRecorder(4)
	for i := uint64(1); i <= 6; i++ {
		r.Record(ServerSpan{ID: i, Op: "get_multi", Keys: 3,
			Timings: ServerTimings{SpanID: i, QueueNS: 10, ParseNS: 20, WaitNS: 5, ExecNS: 30, FlushNS: 40}})
	}
	if r.Traced() != 6 {
		t.Fatalf("Traced = %d, want 6", r.Traced())
	}
	spans := r.Spans()
	if len(spans) != 4 || spans[0].ID != 6 || spans[3].ID != 3 {
		t.Fatalf("ring dump: %d spans, ids %d..%d; want 4 spans 6..3",
			len(spans), spans[0].ID, spans[len(spans)-1].ID)
	}
	for _, h := range []*Hist{&r.Queue, &r.Parse, &r.Wait, &r.Exec, &r.Flush} {
		if h.Count() != 6 {
			t.Fatalf("phase histogram count = %d, want 6", h.Count())
		}
	}
}

// TestServerRecorderMetrics: RegisterMetrics exports the memd_* phase
// families and the traced-transaction counter.
func TestServerRecorderMetrics(t *testing.T) {
	r := NewServerRecorder(4)
	r.Record(ServerSpan{ID: 1, Op: "get", Timings: ServerTimings{ExecNS: int64(time.Millisecond)}})
	reg := NewRegistry()
	r.RegisterMetrics(reg)
	var sb strings.Builder
	if err := reg.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, family := range []string{
		"memd_queue_wait_seconds_count 1", "memd_parse_seconds_count 1",
		"memd_store_wait_seconds_count 1", "memd_exec_seconds_count 1",
		"memd_flush_seconds_count 1", "memd_traced_transactions 1",
	} {
		if !strings.Contains(out, family) {
			t.Fatalf("render missing %q:\n%s", family, out)
		}
	}
}

// TestServerRecorderConcurrent: Record vs Spans vs NextID under -race.
func TestServerRecorderConcurrent(t *testing.T) {
	r := NewServerRecorder(16)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := r.NextID()
				r.Record(ServerSpan{ID: id, Op: "get_multi",
					Timings: ServerTimings{SpanID: id, ExecNS: int64(i)}})
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Spans()
				r.Traced()
			}
		}()
	}
	wg.Wait()
	if r.Traced() != 800 {
		t.Fatalf("Traced = %d, want 800", r.Traced())
	}
}

// TestTracerSlowLogConcurrent: the slow-request log's sampling counters
// and sink stay consistent with concurrent Record and Requests readers.
func TestTracerSlowLogConcurrent(t *testing.T) {
	var mu sync.Mutex
	var logged []uint64
	tr := New(Config{
		RingSize:      16,
		SlowThreshold: time.Microsecond,
		SlowSample:    2,
		SlowLog: func(sp *Span) {
			mu.Lock()
			logged = append(logged, sp.ID)
			mu.Unlock()
		},
	})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Record(&Span{ID: tr.NextID(), Op: "get_multi",
					TotalNS: int64(time.Millisecond), RTTs: []TxnRTT{{DurNS: 1}}})
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Requests()
			}
		}()
	}
	wg.Wait()
	if tr.SlowSeen() != 800 {
		t.Fatalf("SlowSeen = %d, want 800", tr.SlowSeen())
	}
	mu.Lock()
	n := uint64(len(logged))
	mu.Unlock()
	if n != tr.SlowLogged() || n != 400 {
		t.Fatalf("slow log: sink saw %d, SlowLogged = %d, want 400 (every 2nd of 800)", n, tr.SlowLogged())
	}
}

// TestWriteTraceEvents: the exporter emits valid Chrome trace-event
// JSON with client phase slices, per-server RTT slices, and the nested
// queue/server attribution slices Perfetto renders.
func TestWriteTraceEvents(t *testing.T) {
	st := &ServerTimings{TraceID: 7, SpanID: 99, QueueNS: 1000, ParseNS: 500, WaitNS: 200, ExecNS: 2000, FlushNS: 300}
	sp := Span{
		ID: 1, TraceID: 7, Op: "get_multi", Start: time.Unix(1700000000, 0),
		Keys: 8, Transactions: 2, TotalNS: int64(40 * time.Microsecond),
		PlanNS: 1000, FanoutNS: 30000,
		RTTs: []TxnRTT{
			{Server: 0, Addr: "a:1", Keys: 5, Phase: "fanout", DurNS: 30000,
				SpanID: 2, QueueNS: 4000, ServerTimings: st},
			{Server: 1, Addr: "b:1", Keys: 3, Phase: "fanout", DurNS: 25000, SpanID: 3},
		},
	}
	var buf bytes.Buffer
	if err := WriteTraceEvents(&buf, []Span{sp}); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
		DisplayUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("exporter output is not valid JSON: %v\n%s", err, buf.String())
	}
	if out.DisplayUnit != "ms" || len(out.TraceEvents) == 0 {
		t.Fatalf("bad envelope: unit=%q events=%d", out.DisplayUnit, len(out.TraceEvents))
	}
	byName := map[string]int{}
	for _, ev := range out.TraceEvents {
		if ev.Ph != "X" && ev.Ph != "M" {
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
		byName[ev.Name]++
	}
	for _, want := range []string{
		"process_name", "thread_name", "get_multi", "plan", "fanout",
		"client queue", "srv queue", "parse", "exec", "lock wait", "flush",
	} {
		if byName[want] == 0 {
			t.Fatalf("exporter emitted no %q slice; got %v", want, byName)
		}
	}
	// Two servers -> two RTT threads plus the client thread.
	if byName["thread_name"] != 3 {
		t.Fatalf("thread_name count = %d, want 3", byName["thread_name"])
	}
}
