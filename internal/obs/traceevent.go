package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// traceEvent is one entry of the Chrome trace-event JSON format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// ph "X" complete events with microsecond ts/dur, ph "M" metadata
// naming processes and threads. Perfetto and chrome://tracing both
// load the {"traceEvents": [...]} envelope directly.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

func usNS(ns int64) float64 { return float64(ns) / float64(time.Microsecond) }

// WriteTraceEvents renders spans as Chrome trace-event JSON, loadable
// in Perfetto. Each span becomes one process (pid) on a shared
// wall-clock timeline: tid 0 is the client with its phase slices
// (plan → fanout → round2 → loader), and each server the request
// touched gets its own thread carrying the round-trip slices. Traced
// round trips nest client-queue and server-phase slices inside the
// RTT, with the wire residual as the unattributed remainder, so the
// queue/wire/server split is visible directly in the UI.
func WriteTraceEvents(w io.Writer, spans []Span) error {
	events := make([]traceEvent, 0, len(spans)*8)
	for i, sp := range spans {
		pid := i + 1
		events = append(events, buildSpanEvents(pid, &sp)...)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []traceEvent `json:"traceEvents"`
		DisplayUnit string       `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayUnit: "ms"})
}

func buildSpanEvents(pid int, sp *Span) []traceEvent {
	base := usNS(sp.Start.UnixNano())
	name := fmt.Sprintf("trace %d · %s", sp.TraceID, sp.Op)
	if sp.TraceID == 0 {
		name = fmt.Sprintf("span %d · %s", sp.ID, sp.Op)
	}
	events := []traceEvent{
		{Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name}},
		{Name: "thread_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]any{"name": "client"}},
		{Name: sp.Op, Ph: "X", Pid: pid, Tid: 0, Ts: base, Dur: usNS(sp.TotalNS),
			Args: map[string]any{
				"trace_id": sp.TraceID, "span_id": sp.ID, "keys": sp.Keys,
				"transactions": sp.Transactions, "retries": sp.Retries,
				"failed": sp.Failed, "err": sp.Err,
			}},
	}
	// Client phases laid out sequentially — the client runs them in
	// this order, and their durations are measured back to back.
	off := int64(0)
	for _, ph := range []struct {
		name string
		ns   int64
	}{{"plan", sp.PlanNS}, {"fanout", sp.FanoutNS}, {"round2", sp.Round2NS}, {"loader", sp.LoaderNS}} {
		if ph.ns <= 0 {
			continue
		}
		events = append(events, traceEvent{
			Name: ph.name, Ph: "X", Pid: pid, Tid: 0,
			Ts: base + usNS(off), Dur: usNS(ph.ns),
		})
		off += ph.ns
	}
	// One thread per server; round trips nest their attribution.
	tids := map[int]int{}
	for _, r := range sp.RTTs {
		tid, ok := tids[r.Server]
		if !ok {
			tid = len(tids) + 1
			tids[r.Server] = tid
			events = append(events, traceEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"name": fmt.Sprintf("s%d %s", r.Server, r.Addr)},
			})
		}
		events = append(events, rttEvents(pid, tid, base, &r)...)
	}
	return events
}

// rttEvents renders one round trip: the RTT slice itself, then (when
// the server returned timings) nested slices for the client queue wait
// and the server's phases. The server block is placed after the
// client queue plus half the wire residual — the wire cost is split
// between the request and response halves — so the gaps on either
// side of it read as wire time.
func rttEvents(pid, tid int, base float64, r *TxnRTT) []traceEvent {
	rttName := fmt.Sprintf("rtt %s (%d keys)", r.Phase, r.Keys)
	args := map[string]any{"span_id": r.SpanID, "keys": r.Keys, "err": r.Err}
	st := r.ServerTimings
	if st != nil {
		args["queue_ns"] = r.QueueNS
		args["server_ns"] = st.TotalNS()
		args["wire_ns"] = r.WireNS()
	}
	start := base + usNS(r.OffsetNS)
	events := []traceEvent{{
		Name: rttName, Ph: "X", Pid: pid, Tid: tid,
		Ts: start, Dur: usNS(r.DurNS), Args: args,
	}}
	if r.QueueNS > 0 {
		events = append(events, traceEvent{
			Name: "client queue", Ph: "X", Pid: pid, Tid: tid,
			Ts: start, Dur: usNS(r.QueueNS),
		})
	}
	if st == nil {
		return events
	}
	srvStart := start + usNS(r.QueueNS+r.WireNS()/2)
	cursor := srvStart
	for _, ph := range []struct {
		name string
		ns   int64
	}{{"srv queue", st.QueueNS}, {"parse", st.ParseNS}, {"exec", st.ExecNS}, {"flush", st.FlushNS}} {
		if ph.ns <= 0 {
			continue
		}
		events = append(events, traceEvent{
			Name: ph.name, Ph: "X", Pid: pid, Tid: tid,
			Ts: cursor, Dur: usNS(ph.ns),
			Args: map[string]any{"server_span": st.SpanID},
		})
		if ph.name == "exec" && st.WaitNS > 0 {
			events = append(events, traceEvent{
				Name: "lock wait", Ph: "X", Pid: pid, Tid: tid,
				Ts: cursor, Dur: usNS(st.WaitNS),
			})
		}
		cursor += usNS(ph.ns)
	}
	return events
}
