package obs

import (
	"log"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer defaults.
const (
	DefaultRingSize   = 256
	DefaultSlowSample = 1
)

// Config parameterizes a Tracer. The zero value is ready: a 256-entry
// flight recorder, histograms always on, slow-request logging off.
type Config struct {
	// RingSize is the flight recorder's capacity in spans (default 256;
	// < 0 disables the recorder entirely).
	RingSize int
	// SlowThreshold turns on the slow-request log: finished spans whose
	// total exceeds it are handed to SlowLog (0 disables).
	SlowThreshold time.Duration
	// SlowSample thins the slow log: only every Nth slow span is logged
	// (default 1 — every slow span). The SlowSeen counter still counts
	// them all.
	SlowSample int
	// SlowLog receives sampled slow spans (default: the standard log
	// package, one compact line per span).
	SlowLog func(sp *Span)
}

// Tracer is the per-client observability hub: latency histograms for
// each request phase, the always-on flight recorder of the last
// RingSize spans, and the sampled slow-request log. All methods are
// safe for concurrent use.
type Tracer struct {
	// Request-level histograms. Total spans the whole request; Plan and
	// Fanout isolate the planning and fan-out phases. RTT is fed by the
	// transports with every server round trip (including single Gets
	// and writes, which carry no span).
	Total  Hist
	Plan   Hist
	Fanout Hist
	RTT    Hist

	slowNS     int64
	slowSample uint64
	slowLog    func(sp *Span)
	slowSeen   atomic.Uint64
	slowLogged atomic.Uint64

	nextID atomic.Uint64

	mu   sync.Mutex
	ring []Span
	head int // next write position
	n    int // spans recorded, saturating at len(ring)
}

// New builds a Tracer from cfg.
func New(cfg Config) *Tracer {
	size := cfg.RingSize
	if size == 0 {
		size = DefaultRingSize
	}
	if size < 0 {
		size = 0
	}
	sample := cfg.SlowSample
	if sample <= 0 {
		sample = DefaultSlowSample
	}
	slowLog := cfg.SlowLog
	if slowLog == nil {
		slowLog = logSlowSpan
	}
	return &Tracer{
		slowNS:     int64(cfg.SlowThreshold),
		slowSample: uint64(sample),
		slowLog:    slowLog,
		ring:       make([]Span, size),
	}
}

func logSlowSpan(sp *Span) {
	log.Printf("obs: slow request op=%s keys=%d total=%v plan=%v fanout=%v round2=%v loader=%v txns=%d retries=%d failed=%d",
		sp.Op, sp.Keys, time.Duration(sp.TotalNS), time.Duration(sp.PlanNS),
		time.Duration(sp.FanoutNS), time.Duration(sp.Round2NS),
		time.Duration(sp.LoaderNS), sp.Transactions, sp.Retries, sp.Failed)
}

// NextID stamps a fresh span id.
func (t *Tracer) NextID() uint64 { return t.nextID.Add(1) }

// ObserveRTT feeds the transport-level round-trip histogram; both the
// single-connection and the pooled transport call it once per request.
func (t *Tracer) ObserveRTT(d time.Duration) { t.RTT.Observe(d) }

// Record finishes a span: phase histograms, flight recorder, slow log.
// The span is copied into the ring; the caller may reuse it.
func (t *Tracer) Record(sp *Span) {
	t.Total.ObserveNS(sp.TotalNS)
	t.Plan.ObserveNS(sp.PlanNS)
	t.Fanout.ObserveNS(sp.FanoutNS)
	if t.slowNS > 0 && sp.TotalNS > t.slowNS {
		seen := t.slowSeen.Add(1)
		if (seen-1)%t.slowSample == 0 {
			t.slowLogged.Add(1)
			t.slowLog(sp)
		}
	}
	if len(t.ring) == 0 {
		return
	}
	t.mu.Lock()
	t.ring[t.head] = *sp
	// The ring owns its own RTT backing arrays: the caller's slice may
	// be appended to after Record returns.
	t.ring[t.head].RTTs = append([]TxnRTT(nil), sp.RTTs...)
	t.head = (t.head + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	t.mu.Unlock()
}

// Requests dumps the flight recorder, newest span first.
func (t *Tracer) Requests() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, t.n)
	for i := 1; i <= t.n; i++ {
		out = append(out, t.ring[(t.head-i+len(t.ring))%len(t.ring)])
	}
	return out
}

// SlowSeen returns how many finished spans exceeded the slow
// threshold; SlowLogged how many of those the sampler actually logged.
func (t *Tracer) SlowSeen() uint64   { return t.slowSeen.Load() }
func (t *Tracer) SlowLogged() uint64 { return t.slowLogged.Load() }
