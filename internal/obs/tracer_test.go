package obs

import (
	"sync"
	"testing"
	"time"
)

func span(id uint64, total time.Duration) *Span {
	return &Span{ID: id, Op: "get_multi", TotalNS: int64(total)}
}

// TestRingNewestFirst fills the flight recorder past capacity and
// checks Requests dumps the newest RingSize spans, newest first.
func TestRingNewestFirst(t *testing.T) {
	tr := New(Config{RingSize: 4})
	for i := 1; i <= 10; i++ {
		tr.Record(span(uint64(i), time.Millisecond))
	}
	got := tr.Requests()
	if len(got) != 4 {
		t.Fatalf("len = %d, want 4", len(got))
	}
	for i, want := range []uint64{10, 9, 8, 7} {
		if got[i].ID != want {
			t.Fatalf("got[%d].ID = %d, want %d", i, got[i].ID, want)
		}
	}
	if tr.Total.Count() != 10 {
		t.Fatalf("Total histogram count = %d, want 10", tr.Total.Count())
	}
}

// TestRingDisabled: RingSize < 0 turns the recorder off but keeps the
// histograms.
func TestRingDisabled(t *testing.T) {
	tr := New(Config{RingSize: -1})
	tr.Record(span(1, time.Millisecond))
	if got := tr.Requests(); len(got) != 0 {
		t.Fatalf("disabled ring returned %d spans", len(got))
	}
	if tr.Total.Count() != 1 {
		t.Fatalf("histogram skipped with disabled ring")
	}
}

// TestRingCopiesRTTs: the ring must own its RTT slices — the caller
// reuses and appends to the original after Record.
func TestRingCopiesRTTs(t *testing.T) {
	tr := New(Config{RingSize: 2})
	sp := span(1, time.Millisecond)
	sp.RTTs = append(sp.RTTs, TxnRTT{Server: 0, Keys: 3, Phase: "fanout", DurNS: 100})
	tr.Record(sp)
	sp.RTTs[0].Keys = 999
	sp.RTTs = append(sp.RTTs, TxnRTT{Server: 1})
	got := tr.Requests()
	if len(got) != 1 || len(got[0].RTTs) != 1 || got[0].RTTs[0].Keys != 3 {
		t.Fatalf("ring shares the caller's RTT backing array: %+v", got)
	}
}

// TestSlowSampling: every slow span counts, every Nth is logged.
func TestSlowSampling(t *testing.T) {
	var mu sync.Mutex
	var logged []uint64
	tr := New(Config{
		RingSize:      1,
		SlowThreshold: 10 * time.Millisecond,
		SlowSample:    3,
		SlowLog: func(sp *Span) {
			mu.Lock()
			logged = append(logged, sp.ID)
			mu.Unlock()
		},
	})
	for i := 1; i <= 7; i++ {
		tr.Record(span(uint64(i), 20*time.Millisecond))
	}
	tr.Record(span(8, time.Millisecond)) // fast: not slow
	if tr.SlowSeen() != 7 {
		t.Fatalf("SlowSeen = %d, want 7", tr.SlowSeen())
	}
	if tr.SlowLogged() != 3 {
		t.Fatalf("SlowLogged = %d, want 3 (spans 1, 4, 7)", tr.SlowLogged())
	}
	if len(logged) != 3 || logged[0] != 1 || logged[1] != 4 || logged[2] != 7 {
		t.Fatalf("logged IDs = %v, want [1 4 7]", logged)
	}
}

// TestTracerConcurrent exercises Record/Requests/ObserveRTT under
// contention; run with -race.
func TestTracerConcurrent(t *testing.T) {
	tr := New(Config{RingSize: 8, SlowThreshold: time.Nanosecond, SlowSample: 2, SlowLog: func(*Span) {}})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				sp := span(tr.NextID(), time.Millisecond)
				sp.RTTs = []TxnRTT{{Server: i % 4, DurNS: int64(i)}}
				tr.Record(sp)
				tr.ObserveRTT(time.Microsecond)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			_ = tr.Requests()
		}
	}()
	wg.Wait()
	<-done
	if tr.Total.Count() != 2000 || tr.RTT.Count() != 2000 {
		t.Fatalf("counts: total=%d rtt=%d, want 2000 each", tr.Total.Count(), tr.RTT.Count())
	}
	if got := tr.Requests(); len(got) != 8 {
		t.Fatalf("ring holds %d spans, want 8", len(got))
	}
}
