// Package proxy implements an RnB-aware memcached proxy, in the spirit
// of moxi (paper §III-E ref. [12]): legacy applications keep speaking
// plain memcached to a single address, while the proxy replicates
// writes, bundles multi-gets with the greedy planner, recovers misses
// from distinguished copies, and writes items back where the planner
// wants them.
//
// This is the deployment story of §I-C ("relatively easy to deploy and
// configure") made concrete: inserting RnB requires no application
// changes at all — only repointing the memcached address at the proxy.
//
//	app ──memcached protocol──► proxy ──RnB bundling──► server tier
package proxy

import (
	"errors"
	"fmt"
	"sync/atomic"

	"rnb"
	"rnb/internal/memcache"
	"rnb/internal/obs"
)

// Proxy adapts an rnb.Client to the memcache.Backend interface so a
// memcache.Server can front it.
type Proxy struct {
	client *rnb.Client

	// counters
	requests     atomic.Uint64
	backendTxns  atomic.Uint64
	round2       atomic.Uint64
	hitchhikers  atomic.Uint64
	loadedFromDB atomic.Uint64
}

// New wraps an RnB client. The caller owns the client's lifetime.
func New(client *rnb.Client) *Proxy {
	return &Proxy{client: client}
}

// Client returns the underlying RnB client.
func (p *Proxy) Client() *rnb.Client { return p.client }

// RegisterMetrics exports the proxy's request counters plus every
// family of the underlying client (resilience, hotspot, pool, latency
// histograms, per-server breaker gauges) into reg, under stable sorted
// names — the /metrics side of BackendStats.
func (p *Proxy) RegisterMetrics(reg *obs.Registry) {
	reg.RegisterFunc("proxy_requests", "Multi-get requests served.",
		obs.Counter, func() float64 { return float64(p.requests.Load()) })
	reg.RegisterFunc("proxy_backend_txns", "Backend round trips issued for those requests.",
		obs.Counter, func() float64 { return float64(p.backendTxns.Load()) })
	reg.RegisterFunc("proxy_round2_txns", "Distinguished-copy recovery round trips.",
		obs.Counter, func() float64 { return float64(p.round2.Load()) })
	reg.RegisterFunc("proxy_hitchhikers", "Extra keys piggybacked onto planned transactions.",
		obs.Counter, func() float64 { return float64(p.hitchhikers.Load()) })
	reg.RegisterFunc("proxy_db_loads", "Keys fetched from the cache-aside loader.",
		obs.Counter, func() float64 { return float64(p.loadedFromDB.Load()) })
	reg.RegisterFunc("proxy_replicas", "Configured logical replication level.",
		obs.Gauge, func() float64 { return float64(p.client.Replicas()) })
	reg.RegisterFunc("proxy_servers", "Backend server count.",
		obs.Gauge, func() float64 { return float64(len(p.client.Servers())) })
	p.client.RegisterMetrics(reg)
}

// GetMulti implements memcache.Backend with full RnB bundling.
func (p *Proxy) GetMulti(keys []string) (map[string]*memcache.Item, error) {
	p.requests.Add(1)
	items, stats, err := p.client.GetMulti(keys)
	if err != nil {
		return nil, err
	}
	p.backendTxns.Add(uint64(stats.Transactions))
	p.round2.Add(uint64(stats.Round2))
	p.hitchhikers.Add(uint64(stats.Hitchhikers))
	p.loadedFromDB.Add(uint64(stats.Loaded))
	return items, nil
}

// GetMultiTraced implements the memcache server's tracedBackend
// extension: a trace context that arrived on the proxy's front wire is
// carried through the RnB client onto the backend wire, so one trace id
// stitches app → proxy → server tier. Stats are accounted exactly like
// GetMulti.
func (p *Proxy) GetMultiTraced(tc obs.TraceContext, keys []string) (map[string]*memcache.Item, error) {
	p.requests.Add(1)
	items, stats, err := p.client.GetMultiTraced(tc, keys)
	if err != nil {
		return nil, err
	}
	p.backendTxns.Add(uint64(stats.Transactions))
	p.round2.Add(uint64(stats.Round2))
	p.hitchhikers.Add(uint64(stats.Hitchhikers))
	p.loadedFromDB.Add(uint64(stats.Loaded))
	return items, nil
}

// GetsMulti implements memcache.Backend: CAS tokens must be
// authoritative, so keys are read from their distinguished servers
// (bundled per server), not from whichever replica the planner would
// prefer.
func (p *Proxy) GetsMulti(keys []string) (map[string]*memcache.Item, error) {
	items, err := p.client.GetsDistinguished(keys)
	if err != nil {
		return nil, err
	}
	return items, nil
}

// Set implements memcache.Backend: replicate to every replica server.
func (p *Proxy) Set(it *memcache.Item) error { return p.client.Set(it) }

// SetPinned implements memcache.Backend. The RnB client already pins
// the distinguished copy on Set, so "setp" through the proxy is the
// same operation.
func (p *Proxy) SetPinned(it *memcache.Item) error { return p.client.Set(it) }

// Add implements memcache.Backend: succeed only if the key is absent
// from its distinguished server, then replicate.
func (p *Proxy) Add(it *memcache.Item) error {
	if _, err := p.client.Get(it.Key); err == nil {
		return memcache.ErrNotStored
	} else if !errors.Is(err, memcache.ErrCacheMiss) {
		return err
	}
	return p.client.Set(it)
}

// Replace implements memcache.Backend: succeed only if the key exists
// on its distinguished server, then replicate.
func (p *Proxy) Replace(it *memcache.Item) error {
	if _, err := p.client.Get(it.Key); err != nil {
		if errors.Is(err, memcache.ErrCacheMiss) {
			return memcache.ErrNotStored
		}
		return err
	}
	return p.client.Set(it)
}

// CompareAndSwap implements memcache.Backend using the §IV atomic
// scheme: CAS against the distinguished copy; on success the stale
// replicas are dropped and repopulate on demand.
func (p *Proxy) CompareAndSwap(it *memcache.Item) error {
	if err := p.client.UpdateCAS(it); err != nil {
		return err
	}
	return nil
}

// Append implements memcache.Backend via the §IV distinguished-copy
// mutation scheme.
func (p *Proxy) Append(key string, data []byte) error { return p.client.Append(key, data) }

// Prepend implements memcache.Backend.
func (p *Proxy) Prepend(key string, data []byte) error { return p.client.Prepend(key, data) }

// Increment implements memcache.Backend.
func (p *Proxy) Increment(key string, delta int64) (uint64, error) {
	return p.client.Increment(key, delta)
}

// Delete implements memcache.Backend: remove every replica.
func (p *Proxy) Delete(key string) error { return p.client.Delete(key) }

// Touch implements memcache.Backend: touch every replica.
func (p *Proxy) Touch(key string, exp int32) error { return p.client.Touch(key, exp) }

// FlushAll implements memcache.Backend: flush the whole tier.
func (p *Proxy) FlushAll() error { return p.client.FlushAll() }

// BackendStats implements memcache.Backend.
func (p *Proxy) BackendStats() map[string]string {
	reqs := p.requests.Load()
	txns := p.backendTxns.Load()
	out := map[string]string{
		"proxy_requests":     fmt.Sprintf("%d", reqs),
		"proxy_backend_txns": fmt.Sprintf("%d", txns),
		"proxy_round2_txns":  fmt.Sprintf("%d", p.round2.Load()),
		"proxy_hitchhikers":  fmt.Sprintf("%d", p.hitchhikers.Load()),
		"proxy_db_loads":     fmt.Sprintf("%d", p.loadedFromDB.Load()),
		"proxy_replicas":     fmt.Sprintf("%d", p.client.Replicas()),
		"proxy_servers":      fmt.Sprintf("%d", len(p.client.Servers())),
	}
	if reqs > 0 {
		out["proxy_tpr_milli"] = fmt.Sprintf("%d", txns*1000/reqs)
	}
	// Per-backend breaker health, so "stats" against the proxy shows
	// which servers are quarantined and why. Keys are the stable slot
	// index; a drained backend's keys disappear with it (ServerStates
	// omits completed drains), so resizes leave no ghost entries.
	for _, st := range p.client.ServerStates() {
		out[fmt.Sprintf("proxy_server_%d_addr", st.Index)] = st.Addr
		out[fmt.Sprintf("proxy_server_%d_phase", st.Index)] = st.Phase
		out[fmt.Sprintf("proxy_server_%d_state", st.Index)] = st.State.String()
		out[fmt.Sprintf("proxy_server_%d_failures", st.Index)] = fmt.Sprintf("%d", st.ConsecutiveFailures)
	}
	// Dynamic-membership counters: epoch, joins/drains, warm handoff.
	for k, v := range p.client.Topology().Snapshot() {
		out["proxy_topology_"+k] = fmt.Sprintf("%d", v)
	}
	for k, v := range p.client.Resilience().Snapshot() {
		out["proxy_"+k] = fmt.Sprintf("%d", v)
	}
	// Adaptive-replication heat counters (all zero when the feature is
	// off) — promoted-key count, promotion/demotion totals, sketch
	// error, exposed alongside the resilience keys.
	for k, v := range p.client.Hotspot().Snapshot() {
		out["proxy_"+k] = fmt.Sprintf("%d", v)
	}
	out["proxy_adaptive"] = fmt.Sprintf("%t", p.client.AdaptiveEnabled())
	// Pooled-transport gauges (absent when the client runs the
	// single-connection transport).
	if g := p.client.PoolGauges(); g != nil {
		for k, v := range g.Snapshot() {
			out["proxy_"+k] = fmt.Sprintf("%d", v)
		}
	}
	return out
}

var _ memcache.Backend = (*Proxy)(nil)
